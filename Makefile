# Tier-1 gate: everything `make check` runs must stay green.

GO ?= go
GOTEST_TIMEOUT ?= 20m

.PHONY: check ci build test race vet fmt lint staticcheck vulncheck cover fuzz fuzz-smoke bench bench-faults bench-compare bench-guard bench-tables bench-tables-report bench-tables-recover study-smoke recover-smoke cluster-smoke soak

# cover runs the whole suite under -race, so it subsumes the race target.
check: fmt vet cover study-smoke recover-smoke cluster-smoke

# ci mirrors the GitHub Actions pipeline locally: the tier-1 gate, the
# lint pass, the short fuzz pass and the benchmark regression guard.
ci: check lint fuzz-smoke bench-guard
	@echo "ci OK"

build:
	$(GO) build ./...

test:
	$(GO) test -timeout $(GOTEST_TIMEOUT) ./...

# The chaos tests ride along in the regular packages, so -race covers the
# fault-injection and retry paths too.
race:
	$(GO) test -race -timeout $(GOTEST_TIMEOUT) ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Static analysis beyond vet. The staticcheck binary is pinned so CI
# results are reproducible; when it is neither installed nor fetchable
# (an offline dev box) the target warn-skips instead of failing — CI
# always runs it for real.
lint: fmt vet staticcheck

STATICCHECK_VERSION ?= 2025.1.1
STATICCHECK_BIN ?= /tmp/arrow-tools/staticcheck
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif [ -x $(STATICCHECK_BIN) ]; then \
		$(STATICCHECK_BIN) ./...; \
	elif mkdir -p $(dir $(STATICCHECK_BIN)) && \
		GOBIN=$(abspath $(dir $(STATICCHECK_BIN))) $(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) 2>/dev/null; then \
		$(STATICCHECK_BIN) ./...; \
	else \
		echo "staticcheck: not installed and module proxy unreachable; skipping (CI runs the pinned $(STATICCHECK_VERSION))"; \
	fi

# Known-vulnerability scan over the module graph and the reachable call
# graph. Advisory, not a gate: the CI job runs it with continue-on-error
# and uploads the report, so a fresh CVE in a dependency surfaces as an
# artifact without blocking unrelated merges. Gated like staticcheck for
# offline dev boxes.
GOVULNCHECK_VERSION ?= v1.1.4
GOVULNCHECK_BIN ?= /tmp/arrow-tools/govulncheck
VULN_OUT ?= /tmp/arrow-govulncheck.txt
vulncheck:
	@bin=""; \
	if command -v govulncheck >/dev/null 2>&1; then \
		bin=govulncheck; \
	elif [ -x $(GOVULNCHECK_BIN) ]; then \
		bin=$(GOVULNCHECK_BIN); \
	elif mkdir -p $(dir $(GOVULNCHECK_BIN)) && \
		GOBIN=$(abspath $(dir $(GOVULNCHECK_BIN))) $(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) 2>/dev/null; then \
		bin=$(GOVULNCHECK_BIN); \
	fi; \
	if [ -z "$$bin" ]; then \
		echo "govulncheck: not installed and module proxy unreachable; skipping (CI runs the pinned $(GOVULNCHECK_VERSION))" | tee $(VULN_OUT); \
	else \
		$$bin ./... >$(VULN_OUT) 2>&1; st=$$?; cat $(VULN_OUT); exit $$st; \
	fi

# Race-detected coverage gate: the whole suite runs under -race with
# statement coverage, and the total must not fall below the baseline.
# Raise the baseline when coverage improves; never lower it to ship.
COVER_BASELINE ?= 82.0
COVER_PROFILE ?= /tmp/arrow-cover.out
cover:
	$(GO) test -race -timeout $(GOTEST_TIMEOUT) -coverprofile=$(COVER_PROFILE) ./...
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit !(t+0 < b+0) }' && \
		{ echo "coverage $$total% fell below the $(COVER_BASELINE)% baseline"; exit 1; } || true

# Fuzz the trace decoders, the cache shard loader, the serve-layer
# request decoders, and the session journal's line decoder, shard
# recovery scan and CRC'd snapshot payload decoder, FUZZTIME each.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run xxx -fuzz FuzzDecodeLine -fuzztime $(FUZZTIME) ./internal/telemetry
	$(GO) test -run xxx -fuzz FuzzReadAll -fuzztime $(FUZZTIME) ./internal/telemetry
	$(GO) test -run xxx -fuzz FuzzLoadShard -fuzztime $(FUZZTIME) ./internal/runcache
	$(GO) test -run xxx -fuzz FuzzDecodeSessionRequest -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run xxx -fuzz FuzzDecodeObserveRequest -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run xxx -fuzz FuzzDecodeNextBatchRequest -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run xxx -fuzz FuzzDecodeLine -fuzztime $(FUZZTIME) ./internal/journal
	$(GO) test -run xxx -fuzz FuzzScanShard -fuzztime $(FUZZTIME) ./internal/journal
	$(GO) test -run xxx -fuzz FuzzDecodeSnapshot -fuzztime $(FUZZTIME) ./internal/journal

# The CI-sized fuzz pass: every target for 10s — long enough to catch a
# decoder regression, short enough for every push.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=10s

bench-faults:
	$(GO) test -run xxx -bench BenchmarkRobustnessFaultInjection -benchtime 1x .

# Hot-path benchmarks with a fixed iteration count, recorded as a JSON
# report so performance changes land as a reviewable diff. The fixed
# -benchtime keeps runs comparable across machines with different
# auto-calibration.
BENCH_OUT ?= BENCH_PR9.json
BENCH_RAW ?= /tmp/arrow-bench-raw.txt
bench:
	$(GO) test -run xxx -benchmem -benchtime 20x \
		-bench 'BenchmarkForestFit$$|BenchmarkGPFit|BenchmarkFullSearchNaive|BenchmarkFullSearchAugmented' . \
		> /tmp/arrow-bench-root.txt
	$(GO) test -run xxx -benchmem -benchtime 300x \
		-bench 'BenchmarkAdvisorNext' . \
		> /tmp/arrow-bench-advisor.txt
	$(GO) test -run xxx -benchmem -benchtime 20x \
		-bench 'BenchmarkForestFitParallel|BenchmarkForestPredictBatch|BenchmarkForestRefit' ./internal/forest \
		> /tmp/arrow-bench-forest.txt
	$(GO) test -run xxx -benchmem -benchtime 50x \
		-bench 'BenchmarkGPExtend' ./internal/gp \
		> /tmp/arrow-bench-gp.txt
	$(GO) test -run xxx -benchmem -benchtime 200x \
		-bench 'BenchmarkAugmentedIteration' ./internal/core \
		> /tmp/arrow-bench-core.txt
	$(GO) test -run xxx -benchmem -benchtime 300x \
		-bench 'BenchmarkServeSession|BenchmarkServeJSONPlumbing|BenchmarkServeNextPipelined' ./internal/serve \
		> /tmp/arrow-bench-serve.txt
	$(GO) test -run xxx -benchmem -benchtime 1x \
		-bench 'BenchmarkStudyThroughputCold' ./internal/study \
		> /tmp/arrow-bench-study.txt
	$(GO) test -run xxx -benchmem -benchtime 500x \
		-bench 'BenchmarkStudyThroughputWarm' ./internal/study \
		> /tmp/arrow-bench-study-warm.txt
	$(GO) test -run xxx -benchmem -benchtime 20x -timeout 40m \
		-bench 'BenchmarkRecoverSnapshot$$' ./internal/serve \
		> /tmp/arrow-bench-recover.txt
	$(GO) test -run xxx -benchmem -benchtime 3x -timeout 40m \
		-bench 'BenchmarkRecoverFullReplay' ./internal/serve \
		>> /tmp/arrow-bench-recover.txt
	cat /tmp/arrow-bench-root.txt /tmp/arrow-bench-advisor.txt \
		/tmp/arrow-bench-forest.txt /tmp/arrow-bench-gp.txt \
		/tmp/arrow-bench-core.txt /tmp/arrow-bench-serve.txt \
		/tmp/arrow-bench-study.txt /tmp/arrow-bench-study-warm.txt \
		/tmp/arrow-bench-recover.txt \
		> $(BENCH_RAW)
	$(GO) run ./cmd/arrow-bench -o $(BENCH_OUT) < $(BENCH_RAW)
	@echo "wrote $(BENCH_OUT)"

# Diff the current report against the previous PR's baseline.
bench-compare:
	$(GO) run ./cmd/arrow-bench -compare BENCH_PR8.json BENCH_PR9.json

# Quartile summary of the refit-sensitive hot paths: each benchmark runs
# BENCH_TABLE_COUNT times and the samples render as a q1/median/q3 table
# (add BENCH_TABLE_FLAGS=-markdown for a PR-pasteable version).
BENCH_TABLE_COUNT ?= 5
BENCH_TABLE_FLAGS ?=
bench-tables:
	$(GO) test -run xxx -benchmem -benchtime 20x -count $(BENCH_TABLE_COUNT) \
		-bench 'BenchmarkForestFit$$|BenchmarkForestRefit' ./internal/forest \
		> /tmp/arrow-bench-tables.txt
	$(GO) test -run xxx -benchmem -benchtime 20x -count $(BENCH_TABLE_COUNT) \
		-bench 'BenchmarkGPExtend' ./internal/gp >> /tmp/arrow-bench-tables.txt
	$(GO) test -run xxx -benchmem -benchtime 30x -count $(BENCH_TABLE_COUNT) \
		-bench 'BenchmarkAugmentedIteration' ./internal/core >> /tmp/arrow-bench-tables.txt
	$(GO) run ./cmd/arrow-bench -tables $(BENCH_TABLE_FLAGS) < /tmp/arrow-bench-tables.txt

# Render the table from an existing raw run (the one bench/bench-guard
# just measured into BENCH_RAW) without re-measuring anything — what the
# CI success path appends to the job summary.
bench-tables-report:
	$(GO) run ./cmd/arrow-bench -tables $(BENCH_TABLE_FLAGS) < $(BENCH_RAW)

# Quartile table for the recovery-latency contract alone: snapshot
# restore vs full replay of the same 300-observation session, sampled
# BENCH_TABLE_COUNT times (this is the table EXPERIMENTS.md quotes).
bench-tables-recover:
	$(GO) test -run xxx -benchmem -benchtime 1x -timeout 60m -count $(BENCH_TABLE_COUNT) \
		-bench 'BenchmarkRecoverSnapshot|BenchmarkRecoverFullReplay' ./internal/serve \
		> /tmp/arrow-bench-tables-recover.txt
	$(GO) run ./cmd/arrow-bench -tables $(BENCH_TABLE_FLAGS) < /tmp/arrow-bench-tables-recover.txt

# Regression guard: re-measure the hot paths into a scratch report and
# fail when a headline benchmark regressed more than its budget, with
# the measured run rendered as a quartile table first so a CI failure
# shows readable numbers in the job log instead of raw JSON. The
# budgets are 5% — several PRs of same-machine baselines show the
# fixed-iteration runs holding well inside that band. BenchmarkForestFit
# (the plain one-shot fit, untouched by PR 7) still guards against
# BENCH_PR5.json; the search-loop and refit benchmarks guard against
# BENCH_PR7.json because PR 7 changed the sampling scheme and made
# refits incremental, so older entries measure a different computation,
# and StudyThroughputWarm re-anchors there too because its protocol
# changed again (50 -> 500 iterations: post-speedup the 50x run timed
# only ~10 ms, which swung far past any honest budget).
# BenchmarkAdvisorNext and BenchmarkServeSession re-anchor against
# BENCH_PR8.json with 5% budgets: PR 8 raised their fixed iteration
# count to 300x, which tightened the run-to-run spread enough to guard
# the k=1 serving path (the speculation PR must not tax the sequential
# loop), and the PR7-era 100x entries measure a different protocol.
# BenchmarkAdvisorNextBatch and BenchmarkServeNextPipelined are
# recorded but not guarded — their headline numbers are the latency
# quantile extras, which the guard does not read; track them via
# bench-compare. The committed BENCH_PR8.json entries are per-benchmark
# medians of three runs.
# BenchmarkRecoverSnapshot and BenchmarkRecoverFullReplay are new in
# PR 9 and guard against BENCH_PR9.json at 5%: the snapshot restore is
# the recovery-time contract (`p99 bounded by the snapshot interval`)
# and the full-replay baseline is what keeps the ≥5x headline honest.
# Everything previously guarded keeps its anchor — PR 9 did not change
# any measured protocol.
BENCH_GUARD ?= BenchmarkForestFit=5
BENCH_GUARD_PR7 ?= BenchmarkAugmentedIteration=5,BenchmarkFullSearchAugmented=5,BenchmarkForestRefitIncremental=5,BenchmarkGPExtend=5,BenchmarkStudyThroughputWarm=5
BENCH_GUARD_PR8 ?= BenchmarkAdvisorNext=5,BenchmarkServeSession=5
BENCH_GUARD_PR9 ?= BenchmarkRecoverSnapshot=5,BenchmarkRecoverFullReplay=5
BENCH_GUARD_OUT ?= /tmp/arrow-bench-guard.json
bench-guard:
	$(MAKE) bench BENCH_OUT=$(BENCH_GUARD_OUT)
	$(GO) run ./cmd/arrow-bench -tables < $(BENCH_RAW)
	$(GO) run ./cmd/arrow-bench -compare -guard '$(BENCH_GUARD)' BENCH_PR5.json $(BENCH_GUARD_OUT)
	$(GO) run ./cmd/arrow-bench -compare -guard '$(BENCH_GUARD_PR7)' BENCH_PR7.json $(BENCH_GUARD_OUT)
	$(GO) run ./cmd/arrow-bench -compare -guard '$(BENCH_GUARD_PR8)' BENCH_PR8.json $(BENCH_GUARD_OUT)
	$(GO) run ./cmd/arrow-bench -compare -guard '$(BENCH_GUARD_PR9)' BENCH_PR9.json $(BENCH_GUARD_OUT)

# Race-detected end-to-end smoke of the study executor: a cold run fills
# the cache, a warm run at a different -concurrency must reproduce the
# same stdout and CSV bytes, and the throughput benchmarks run once
# under -race.
SMOKE_DIR ?= /tmp/arrow-study-smoke
SMOKE_WORKLOADS = als/spark2.1/medium,pagerank/hadoop2.7/medium,lr/spark1.5/medium,terasort/hadoop2.7/large
study-smoke:
	rm -rf $(SMOKE_DIR)
	mkdir -p $(SMOKE_DIR)/cold $(SMOKE_DIR)/warm
	$(GO) run -race ./cmd/arrow-study -seeds 2 -concurrency 4 \
		-workloads '$(SMOKE_WORKLOADS)' -figures fig1,fig9,fig12 \
		-out $(SMOKE_DIR)/cold -cache-dir $(SMOKE_DIR)/cache \
		-trace $(SMOKE_DIR)/cold-trace.jsonl \
		> $(SMOKE_DIR)/cold.txt
	$(GO) run -race ./cmd/arrow-study -seeds 2 -concurrency 2 \
		-workloads '$(SMOKE_WORKLOADS)' -figures fig1,fig9,fig12 \
		-out $(SMOKE_DIR)/warm -cache-dir $(SMOKE_DIR)/cache \
		-trace $(SMOKE_DIR)/warm-trace.jsonl \
		> $(SMOKE_DIR)/warm.txt
	diff $(SMOKE_DIR)/cold.txt $(SMOKE_DIR)/warm.txt
	diff -r $(SMOKE_DIR)/cold $(SMOKE_DIR)/warm
	sed -E 's/,"wall":\{[^}]*\}//' $(SMOKE_DIR)/cold-trace.jsonl > $(SMOKE_DIR)/cold-trace.stripped
	sed -E 's/,"wall":\{[^}]*\}//' $(SMOKE_DIR)/warm-trace.jsonl > $(SMOKE_DIR)/warm-trace.stripped
	diff $(SMOKE_DIR)/cold-trace.stripped $(SMOKE_DIR)/warm-trace.stripped
	$(GO) test -race -run xxx -benchtime 1x -bench 'BenchmarkStudyThroughput' ./internal/study
	@echo "study smoke OK: cold and warm runs and wall-stripped traces byte-identical"

# Race-detected crash-recovery smoke: the kill -9 chaos test (a real
# arrow-serve process SIGKILLed mid-session, restarted, every session
# finished with a byte-identical result) plus the serve-layer recovery
# suite — damaged journals, rolling restarts, two-replica partitions.
recover-smoke:
	$(GO) test -race -run 'TestServeCLIKillNineRecovery' ./cmd/arrow-serve
	$(GO) test -race -run 'TestCrashRecover|TestGracefulShutdownRehydrates|TestRecover|TestTwoReplicas' ./internal/serve
	@echo "recover smoke OK: kill -9 and restart lost zero acknowledged observations"

# Race-detected registry-cluster smoke: one process hosts the shard
# registry, three replicas with separate journal directories lease from
# it over HTTP; one is SIGKILLed (heartbeat-expiry reclaim with epoch
# bumps, cross-directory session adoption) and one is SIGTERMed with
# -drain-migrate (live sessions streamed to a successor). Fast enough
# to ride every push.
cluster-smoke:
	$(GO) test -race -run 'TestRegistryClusterSmoke' ./cmd/arrow-serve
	@echo "cluster smoke OK: registry failover and drain migration lost zero acknowledged observations"

# The multi-replica chaos/soak harness at nightly scale: ARROW_SOAK_SESSIONS
# concurrent sessions across 4 real arrow-serve processes sharing one
# journal directory, snapshots every 2 observations, shard compaction
# running concurrently, one replica SIGKILLed mid-traffic and its shard
# leases reclaimed by the survivors — all under the race detector.
# Asserted: zero lost acked observations, sampled results byte-identical
# to a journal-less reference server, reclaim recovery p99 bounded by
# the snapshot interval. The same test rides `make check` (via cover) at
# its 120-session short default; this target is the 10k nightly run.
# ARROW_SOAK_OUT collects a machine-readable summary (session count,
# journal bytes, compactions, reclaim p99) for the CI artifact.
# REGISTRY=1 soaks the cross-host topology instead: a registry process
# and per-replica journal directories with heartbeat leases, so the
# victim's sessions are adopted by scanning its directory rather than
# through a shared journal.
ARROW_SOAK_SESSIONS ?= 10000
ARROW_SOAK_OUT ?= /tmp/arrow-soak.json
REGISTRY ?= 0
soak:
	ARROW_SOAK_SESSIONS=$(ARROW_SOAK_SESSIONS) ARROW_SOAK_OUT=$(ARROW_SOAK_OUT) \
		ARROW_SOAK_REGISTRY=$(REGISTRY) \
		$(GO) test -race -timeout 120m -run 'TestSoakMultiReplicaChaos' -v ./cmd/arrow-serve
	@echo "soak OK: summary in $(ARROW_SOAK_OUT)"
