# Tier-1 gate: everything `make check` runs must stay green.

GO ?= go
GOTEST_TIMEOUT ?= 20m

.PHONY: check ci build test race vet fmt cover fuzz fuzz-smoke bench bench-faults bench-compare bench-guard study-smoke recover-smoke

# cover runs the whole suite under -race, so it subsumes the race target.
check: fmt vet cover study-smoke recover-smoke

# ci mirrors the GitHub Actions pipeline locally: the tier-1 gate plus
# the short fuzz pass and the benchmark regression guard.
ci: check fuzz-smoke bench-guard
	@echo "ci OK"

build:
	$(GO) build ./...

test:
	$(GO) test -timeout $(GOTEST_TIMEOUT) ./...

# The chaos tests ride along in the regular packages, so -race covers the
# fault-injection and retry paths too.
race:
	$(GO) test -race -timeout $(GOTEST_TIMEOUT) ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Race-detected coverage gate: the whole suite runs under -race with
# statement coverage, and the total must not fall below the baseline.
# Raise the baseline when coverage improves; never lower it to ship.
COVER_BASELINE ?= 82.0
COVER_PROFILE ?= /tmp/arrow-cover.out
cover:
	$(GO) test -race -timeout $(GOTEST_TIMEOUT) -coverprofile=$(COVER_PROFILE) ./...
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit !(t+0 < b+0) }' && \
		{ echo "coverage $$total% fell below the $(COVER_BASELINE)% baseline"; exit 1; } || true

# Fuzz the trace decoders, the cache shard loader, the serve-layer
# request decoders, and the session journal's line decoder and shard
# recovery scan, FUZZTIME each.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run xxx -fuzz FuzzDecodeLine -fuzztime $(FUZZTIME) ./internal/telemetry
	$(GO) test -run xxx -fuzz FuzzReadAll -fuzztime $(FUZZTIME) ./internal/telemetry
	$(GO) test -run xxx -fuzz FuzzLoadShard -fuzztime $(FUZZTIME) ./internal/runcache
	$(GO) test -run xxx -fuzz FuzzDecodeSessionRequest -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run xxx -fuzz FuzzDecodeObserveRequest -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run xxx -fuzz FuzzDecodeLine -fuzztime $(FUZZTIME) ./internal/journal
	$(GO) test -run xxx -fuzz FuzzScanShard -fuzztime $(FUZZTIME) ./internal/journal

# The CI-sized fuzz pass: every target for 10s — long enough to catch a
# decoder regression, short enough for every push.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=10s

bench-faults:
	$(GO) test -run xxx -bench BenchmarkRobustnessFaultInjection -benchtime 1x .

# Hot-path benchmarks with a fixed iteration count, recorded as a JSON
# report so performance changes land as a reviewable diff. The fixed
# -benchtime keeps runs comparable across machines with different
# auto-calibration.
BENCH_OUT ?= BENCH_PR6.json
bench:
	$(GO) test -run xxx -benchmem -benchtime 20x \
		-bench 'BenchmarkForestFit$$|BenchmarkGPFit|BenchmarkFullSearchNaive|BenchmarkFullSearchAugmented|BenchmarkAdvisorNext' . \
		> /tmp/arrow-bench-root.txt
	$(GO) test -run xxx -benchmem -benchtime 20x \
		-bench 'BenchmarkForestFitParallel|BenchmarkForestPredictBatch' ./internal/forest \
		> /tmp/arrow-bench-forest.txt
	$(GO) test -run xxx -benchmem -benchtime 30x \
		-bench 'BenchmarkAugmentedIteration' ./internal/core \
		> /tmp/arrow-bench-core.txt
	$(GO) test -run xxx -benchmem -benchtime 1x \
		-bench 'BenchmarkStudyThroughputCold' ./internal/study \
		> /tmp/arrow-bench-study.txt
	$(GO) test -run xxx -benchmem -benchtime 50x \
		-bench 'BenchmarkStudyThroughputWarm' ./internal/study \
		> /tmp/arrow-bench-study-warm.txt
	cat /tmp/arrow-bench-root.txt /tmp/arrow-bench-forest.txt /tmp/arrow-bench-core.txt \
		/tmp/arrow-bench-study.txt /tmp/arrow-bench-study-warm.txt \
		| $(GO) run ./cmd/arrow-bench -o $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

# Diff the current report against the previous PR's baseline.
bench-compare:
	$(GO) run ./cmd/arrow-bench -compare BENCH_PR5.json BENCH_PR6.json

# Regression guard: re-measure the hot paths into a scratch report and
# fail when a headline benchmark regressed more than its budget. The
# budgets tightened from the early 25% to 5% now that several PRs of
# same-machine baselines show the fixed-iteration runs holding well
# inside that band. The compute benchmarks guard against the committed
# BENCH_PR5.json; StudyThroughputWarm guards against BENCH_PR6.json
# because this PR changed its measurement protocol (1 iteration -> 50,
# the single-shot number was noise-dominated), so the PR5 entry is not
# comparable.
BENCH_GUARD ?= BenchmarkForestFit=5,BenchmarkAugmentedIteration=5,BenchmarkFullSearchAugmented=5
BENCH_GUARD_WARM ?= BenchmarkStudyThroughputWarm=5
BENCH_GUARD_OUT ?= /tmp/arrow-bench-guard.json
bench-guard:
	$(MAKE) bench BENCH_OUT=$(BENCH_GUARD_OUT)
	$(GO) run ./cmd/arrow-bench -compare -guard '$(BENCH_GUARD)' BENCH_PR5.json $(BENCH_GUARD_OUT)
	$(GO) run ./cmd/arrow-bench -compare -guard '$(BENCH_GUARD_WARM)' BENCH_PR6.json $(BENCH_GUARD_OUT)

# Race-detected end-to-end smoke of the study executor: a cold run fills
# the cache, a warm run at a different -concurrency must reproduce the
# same stdout and CSV bytes, and the throughput benchmarks run once
# under -race.
SMOKE_DIR ?= /tmp/arrow-study-smoke
SMOKE_WORKLOADS = als/spark2.1/medium,pagerank/hadoop2.7/medium,lr/spark1.5/medium,terasort/hadoop2.7/large
study-smoke:
	rm -rf $(SMOKE_DIR)
	mkdir -p $(SMOKE_DIR)/cold $(SMOKE_DIR)/warm
	$(GO) run -race ./cmd/arrow-study -seeds 2 -concurrency 4 \
		-workloads '$(SMOKE_WORKLOADS)' -figures fig1,fig9,fig12 \
		-out $(SMOKE_DIR)/cold -cache-dir $(SMOKE_DIR)/cache \
		-trace $(SMOKE_DIR)/cold-trace.jsonl \
		> $(SMOKE_DIR)/cold.txt
	$(GO) run -race ./cmd/arrow-study -seeds 2 -concurrency 2 \
		-workloads '$(SMOKE_WORKLOADS)' -figures fig1,fig9,fig12 \
		-out $(SMOKE_DIR)/warm -cache-dir $(SMOKE_DIR)/cache \
		-trace $(SMOKE_DIR)/warm-trace.jsonl \
		> $(SMOKE_DIR)/warm.txt
	diff $(SMOKE_DIR)/cold.txt $(SMOKE_DIR)/warm.txt
	diff -r $(SMOKE_DIR)/cold $(SMOKE_DIR)/warm
	sed -E 's/,"wall":\{[^}]*\}//' $(SMOKE_DIR)/cold-trace.jsonl > $(SMOKE_DIR)/cold-trace.stripped
	sed -E 's/,"wall":\{[^}]*\}//' $(SMOKE_DIR)/warm-trace.jsonl > $(SMOKE_DIR)/warm-trace.stripped
	diff $(SMOKE_DIR)/cold-trace.stripped $(SMOKE_DIR)/warm-trace.stripped
	$(GO) test -race -run xxx -benchtime 1x -bench 'BenchmarkStudyThroughput' ./internal/study
	@echo "study smoke OK: cold and warm runs and wall-stripped traces byte-identical"

# Race-detected crash-recovery smoke: the kill -9 chaos test (a real
# arrow-serve process SIGKILLed mid-session, restarted, every session
# finished with a byte-identical result) plus the serve-layer recovery
# suite — damaged journals, rolling restarts, two-replica partitions.
recover-smoke:
	$(GO) test -race -run 'TestServeCLIKillNineRecovery' ./cmd/arrow-serve
	$(GO) test -race -run 'TestCrashRecover|TestGracefulShutdownRehydrates|TestRecover|TestTwoReplicas' ./internal/serve
	@echo "recover smoke OK: kill -9 and restart lost zero acknowledged observations"
