# Tier-1 gate: everything `make check` runs must stay green.

GO ?= go

.PHONY: check build test race vet fmt bench bench-faults

check: fmt vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The chaos tests ride along in the regular packages, so -race covers the
# fault-injection and retry paths too.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench-faults:
	$(GO) test -run xxx -bench BenchmarkRobustnessFaultInjection -benchtime 1x .

# Hot-path benchmarks with a fixed iteration count, recorded as a JSON
# report so performance changes land as a reviewable diff. The fixed
# -benchtime keeps runs comparable across machines with different
# auto-calibration.
BENCH_OUT ?= BENCH_PR2.json
bench:
	$(GO) test -run xxx -benchmem -benchtime 20x \
		-bench 'BenchmarkForestFit$$|BenchmarkGPFit|BenchmarkFullSearchNaive|BenchmarkFullSearchAugmented' . \
		> /tmp/arrow-bench-root.txt
	$(GO) test -run xxx -benchmem -benchtime 20x \
		-bench 'BenchmarkForestFitParallel|BenchmarkForestPredictBatch' ./internal/forest \
		> /tmp/arrow-bench-forest.txt
	$(GO) test -run xxx -benchmem -benchtime 30x \
		-bench 'BenchmarkAugmentedIteration' ./internal/core \
		> /tmp/arrow-bench-core.txt
	cat /tmp/arrow-bench-root.txt /tmp/arrow-bench-forest.txt /tmp/arrow-bench-core.txt \
		| $(GO) run ./cmd/arrow-bench -o $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"
