# Tier-1 gate: everything `make check` runs must stay green.

GO ?= go

.PHONY: check build test race vet fmt bench-faults

check: fmt vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The chaos tests ride along in the regular packages, so -race covers the
# fault-injection and retry paths too.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench-faults:
	$(GO) test -run xxx -bench BenchmarkRobustnessFaultInjection -benchtime 1x .
