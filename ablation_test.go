// Ablation benchmarks for the design choices DESIGN.md calls out: the
// value of the low-level augmentation itself, the hybrid handover point,
// the initial-design strategy, and historical warm starting.
package arrow

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/study"
	"repro/internal/workloads"
)

// ablationWorkloads is a small, diverse slice of the study set used by the
// ablation benchmarks (full-set sweeps live in the Fig benchmarks).
func ablationWorkloads(b *testing.B) []workloads.Workload {
	b.Helper()
	r := benchRunner()
	ids := []string{
		"lr/spark1.5/medium",             // memory bottleneck
		"classification/spark2.1/medium", // memory bottleneck
		"scan/hadoop2.7/medium",          // I/O bound
		"word2vec/spark2.1/medium",       // CPU bound
		"als/spark2.1/medium",            // mixed
		"bayes/spark2.1/medium",          // mixed
		"kmeans/spark1.5/medium",         // mixed
		"terasort/hadoop2.7/large",       // I/O bound
	}
	var out []workloads.Workload
	for _, id := range ids {
		w, err := r.WorkloadByID(id)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, w)
	}
	return out
}

// meanStepsToOptimal averages (over workloads x seeds) the step at which
// the optimizer first measured the true optimal VM.
func meanStepsToOptimal(b *testing.B, mc study.MethodConfig, ws []workloads.Workload, objective core.Objective) float64 {
	b.Helper()
	r := benchRunner()
	total, n := 0.0, 0
	for _, w := range ws {
		for seed := 0; seed < benchSeeds(); seed++ {
			summary, err := r.RunSearch(mc, w, objective, int64(seed))
			if err != nil {
				b.Fatal(err)
			}
			step := summary.StepOptimal
			if step == 0 {
				step = r.Catalog().Len() + 1
			}
			total += float64(step)
			n++
		}
	}
	return total / float64(n)
}

// BenchmarkAblationLowLevel quantifies the paper's central design choice:
// the same pairwise Extra-Trees optimizer with and without the low-level
// metric columns.
func BenchmarkAblationLowLevel(b *testing.B) {
	r := benchRunner()
	ws := ablationWorkloads(b)
	run := func(disable bool) float64 {
		total, n := 0.0, 0
		for _, w := range ws {
			truth, err := r.TruthValues(w, core.MinimizeCost)
			if err != nil {
				b.Fatal(err)
			}
			optIdx := 0
			for i, v := range truth {
				if v < truth[optIdx] {
					optIdx = i
				}
			}
			for seed := 0; seed < benchSeeds(); seed++ {
				aug, err := core.NewAugmentedBO(core.AugmentedBOConfig{
					Objective:       core.MinimizeCost,
					DeltaThreshold:  -1,
					DisableLowLevel: disable,
					Seed:            int64(seed),
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := aug.Search(r.Simulator().NewTarget(w, int64(seed)))
				if err != nil {
					b.Fatal(err)
				}
				step := res.MeasuredAtStep(optIdx)
				if step == 0 {
					step = r.Catalog().Len() + 1
				}
				total += float64(step)
				n++
			}
		}
		return total / float64(n)
	}
	var full, ablated float64
	for i := 0; i < b.N; i++ {
		full = run(false)
		ablated = run(true)
	}
	b.StopTimer()
	fmt.Printf("\nAblation (cost objective, mean steps to optimal over %d workloads x %d seeds):\n", len(ws), benchSeeds())
	fmt.Printf("  with low-level metrics:    %.2f\n", full)
	fmt.Printf("  without low-level metrics: %.2f\n", ablated)
}

// BenchmarkAblationHybridSwitch sweeps Hybrid BO's handover point.
func BenchmarkAblationHybridSwitch(b *testing.B) {
	ws := ablationWorkloads(b)
	results := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, switchAfter := range []int{3, 4, 6, 8} {
			results[switchAfter] = meanStepsToOptimal(b,
				study.MethodConfig{Method: study.MethodHybrid, SwitchAfter: switchAfter, Delta: -1},
				ws, core.MinimizeCost)
		}
	}
	b.StopTimer()
	fmt.Printf("\nAblation: Hybrid BO handover point (mean steps to optimal):\n")
	for _, s := range []int{3, 4, 6, 8} {
		fmt.Printf("  switch after %d measurements: %.2f\n", s, results[s])
	}
}

// BenchmarkAblationInitialDesign compares the quasi-random max-min design
// against uniform sampling and the Sobol' sequence for Naive BO
// (Section III-C).
func BenchmarkAblationInitialDesign(b *testing.B) {
	ws := ablationWorkloads(b)
	var quasi, uniform, sobol float64
	for i := 0; i < b.N; i++ {
		quasi = meanStepsToOptimal(b,
			study.MethodConfig{Method: study.MethodNaive, EIStop: -1,
				Design: core.DesignConfig{Kind: core.DesignQuasiRandom}},
			ws, core.MinimizeCost)
		uniform = meanStepsToOptimal(b,
			study.MethodConfig{Method: study.MethodNaive, EIStop: -1,
				Design: core.DesignConfig{Kind: core.DesignUniform}},
			ws, core.MinimizeCost)
		sobol = meanStepsToOptimal(b,
			study.MethodConfig{Method: study.MethodNaive, EIStop: -1,
				Design: core.DesignConfig{Kind: core.DesignSobol}},
			ws, core.MinimizeCost)
	}
	b.StopTimer()
	fmt.Printf("\nAblation: initial design for Naive BO (mean steps to optimal):\n")
	fmt.Printf("  quasi-random (max-min): %.2f\n", quasi)
	fmt.Printf("  uniform random:         %.2f\n", uniform)
	fmt.Printf("  sobol sequence:         %.2f\n", sobol)
}

// BenchmarkWarmStart measures the future-work extension: warm-starting
// Augmented BO with history from the same application at a different
// input size.
func BenchmarkWarmStart(b *testing.B) {
	r := benchRunner()
	target, err := r.WorkloadByID("kmeans/spark2.1/medium")
	if err != nil {
		b.Fatal(err)
	}
	historyW, err := r.WorkloadByID("kmeans/spark2.1/small")
	if err != nil {
		b.Fatal(err)
	}
	// Record full history of the small-input run.
	var history []core.PriorObservation
	ht := r.Simulator().NewTarget(historyW, 1234)
	for i := 0; i < ht.NumCandidates(); i++ {
		out, err := ht.Measure(i)
		if err != nil {
			b.Fatal(err)
		}
		history = append(history, core.PriorObservation{
			Features: ht.Features(i),
			Metrics:  out.Metrics,
			Value:    out.CostUSD,
		})
	}
	truth, err := r.TruthValues(target, core.MinimizeCost)
	if err != nil {
		b.Fatal(err)
	}
	optIdx := 0
	for i, v := range truth {
		if v < truth[optIdx] {
			optIdx = i
		}
	}

	run := func(warm []core.PriorObservation) float64 {
		total, n := 0.0, 0
		for seed := 0; seed < benchSeeds(); seed++ {
			aug, err := core.NewAugmentedBO(core.AugmentedBOConfig{
				Objective:      core.MinimizeCost,
				DeltaThreshold: -1,
				WarmStart:      warm,
				Seed:           int64(seed),
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := aug.Search(r.Simulator().NewTarget(target, int64(seed)))
			if err != nil {
				b.Fatal(err)
			}
			step := res.MeasuredAtStep(optIdx)
			if step == 0 {
				step = r.Catalog().Len() + 1
			}
			total += float64(step)
			n++
		}
		return total / float64(n)
	}
	var cold, warm float64
	for i := 0; i < b.N; i++ {
		cold = run(nil)
		warm = run(history)
	}
	b.StopTimer()
	fmt.Printf("\nWarm start (kmeans/spark2.1 medium seeded by small-input history):\n")
	fmt.Printf("  cold start mean steps to optimal: %.2f\n", cold)
	fmt.Printf("  warm start mean steps to optimal: %.2f\n", warm)
}
