// Benchmark comparing Naive BO's acquisition variants and the ARD
// extension, complementing the paper's EI-only baseline.
package arrow

import (
	"fmt"
	"testing"

	"repro/internal/acquisition"
	"repro/internal/core"
)

// BenchmarkAcquisitionComparison sweeps the GP acquisitions (EI, PI,
// GP-UCB, MES) plus ARD-enabled EI over the ablation workload set and
// reports mean steps to the optimum.
func BenchmarkAcquisitionComparison(b *testing.B) {
	r := benchRunner()
	ws := ablationWorkloads(b)
	type variant struct {
		label string
		cfg   core.NaiveBOConfig
	}
	variants := []variant{
		{"EI (CherryPick)", core.NaiveBOConfig{Acquisition: acquisition.ExpectedImprovement}},
		{"PI", core.NaiveBOConfig{Acquisition: acquisition.ProbabilityOfImprovement}},
		{"GP-UCB", core.NaiveBOConfig{Acquisition: acquisition.UpperConfidenceBound}},
		{"MES", core.NaiveBOConfig{Acquisition: acquisition.EntropySearch}},
		{"EI + ARD", core.NaiveBOConfig{Acquisition: acquisition.ExpectedImprovement, ARD: true}},
		{"EI + auto-kernel", core.NaiveBOConfig{Acquisition: acquisition.ExpectedImprovement, AutoKernel: true}},
	}
	results := make([]float64, len(variants))
	for i := 0; i < b.N; i++ {
		for vi, v := range variants {
			total, n := 0.0, 0
			for _, w := range ws {
				truth, err := r.TruthValues(w, core.MinimizeCost)
				if err != nil {
					b.Fatal(err)
				}
				optIdx := 0
				for j, val := range truth {
					if val < truth[optIdx] {
						optIdx = j
					}
				}
				for seed := 0; seed < benchSeeds(); seed++ {
					cfg := v.cfg
					cfg.Objective = core.MinimizeCost
					cfg.EIStopFraction = -1
					cfg.Seed = int64(seed)
					naive, err := core.NewNaiveBO(cfg)
					if err != nil {
						b.Fatal(err)
					}
					res, err := naive.Search(r.Simulator().NewTarget(w, int64(seed)))
					if err != nil {
						b.Fatal(err)
					}
					step := res.MeasuredAtStep(optIdx)
					if step == 0 {
						step = r.Catalog().Len() + 1
					}
					total += float64(step)
					n++
				}
			}
			results[vi] = total / float64(n)
		}
	}
	b.StopTimer()
	fmt.Printf("\nNaive BO acquisition comparison (cost objective, mean steps to optimal over %d workloads x %d seeds):\n",
		len(ws), benchSeeds())
	for vi, v := range variants {
		fmt.Printf("  %-18s %.2f\n", v.label, results[vi])
	}
}
