package arrow

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/lowlevel"
)

// This file is the advisor (optimizer-as-a-service) surface: the same
// four optimizers, inverted from "pull measurements out of a Target"
// into a step-wise Suggest/Observe state machine that never measures
// anything itself. A client loops Next -> measure -> Observe until Next
// reports Done, then reads Result. The step-driven search runs the
// exact batch search loop (internal/core's Stepper runs it against a
// channel-backed target), so the same seed and observations produce the
// same recommendation and the same deterministic trace as Search.

// Candidate describes one advisable option: a name and the same
// instance-space feature encoding Target.Features would return.
type Candidate struct {
	Name     string    `json:"name"`
	Features []float64 `json:"features"`
}

// CatalogCandidates returns the built-in 18-type AWS catalog as advisor
// candidates, in the same order as CatalogVMs.
func CatalogCandidates() []Candidate {
	vms := CatalogVMs()
	out := make([]Candidate, len(vms))
	for i, vm := range vms {
		out[i] = Candidate{Name: vm.Name, Features: vm.Features}
	}
	return out
}

// TargetCandidates extracts the candidate catalog from a Target, for
// driving an Advisor whose measurements come from that target.
func TargetCandidates(t Target) []Candidate {
	out := make([]Candidate, t.NumCandidates())
	for i := range out {
		out[i] = Candidate{
			Name:     t.Name(i),
			Features: append([]float64(nil), t.Features(i)...),
		}
	}
	return out
}

// Suggestion is one advisor step: the candidate to measure next, or
// Done when the search is over and Result is ready.
type Suggestion struct {
	// Index / Name identify the candidate; Index is -1 when Done.
	Index int    `json:"index"`
	Name  string `json:"name,omitempty"`
	// Step counts the observations delivered before this suggestion. For
	// a batch suggestion the step is provisional: concurrent suggestions
	// are delivered to the optimizer in issue order, so a suggestion
	// observed out of order settles at a later step than advertised.
	Step int `json:"step"`
	// Seq is the suggestion's issue ordinal, stable across repeated Next
	// and NextBatch calls — the key for deduplicating retries.
	Seq int `json:"seq"`
	// Done reports that the search has finished.
	Done bool `json:"done,omitempty"`
}

// ErrBadBatchSize reports a NextBatch call with k < 1.
var ErrBadBatchSize = errors.New("arrow: batch size must be at least 1")

// ErrSearchRunning reports a Result call before the advisor finished.
var ErrSearchRunning = errors.New("arrow: search still running; result not ready")

// ErrNoPendingSuggestion reports an Observe with nothing pending: Next
// was never called, the suggestion was already observed, or the search
// is over.
var ErrNoPendingSuggestion = errors.New("arrow: no pending suggestion to observe")

// ErrSuggestionMismatch reports an Observe whose candidate index does
// not match the pending suggestion.
var ErrSuggestionMismatch = errors.New("arrow: observation does not match the pending suggestion")

// Advisor is a step-wise session of one configured Optimizer over a
// fixed candidate catalog. Construct with Optimizer.NewAdvisor; all
// methods are safe for concurrent use. Callers that abandon an Advisor
// before Next reports Done must call Abort to release its resources.
type Advisor struct {
	stepper *core.Stepper
	cat     *advisorCatalog
}

// ResumeScript is a recorded advisor decision log: every model-phase
// candidate selection and batch-plan result a live session produced, in
// order. Export one with Advisor.Script, carry it in a session
// snapshot, and hand it to NewResumedAdvisor to replay the session's
// suggest/observe history without refitting a single surrogate.
type ResumeScript = core.ResumeScript

// NewAdvisor builds a step-wise advisor session for the optimizer's
// configuration over the given candidates. Measurement middleware
// options (WithRetry, WithMeasureTimeout) do not apply — the advisor
// never measures; retrying is the measuring client's decision.
func (o *Optimizer) NewAdvisor(candidates []Candidate) (*Advisor, error) {
	return o.newAdvisor(candidates, core.ResumeScript{})
}

// NewResumedAdvisor builds an advisor that consumes a previously
// recorded decision script while the caller replays the exact
// suggestion/observation sequence it was recorded under. Scripted steps
// skip the surrogate fits, which is what makes snapshot recovery
// O(snapshot interval) instead of O(session length); once the script is
// exhausted the advisor computes — and records — like a live one.
func (o *Optimizer) NewResumedAdvisor(candidates []Candidate, script ResumeScript) (*Advisor, error) {
	return o.newAdvisor(candidates, script)
}

func (o *Optimizer) newAdvisor(candidates []Candidate, script core.ResumeScript) (*Advisor, error) {
	if len(candidates) == 0 {
		return nil, errors.New("arrow: advisor needs at least one candidate")
	}
	cat := &advisorCatalog{}
	dims := -1
	for i, c := range candidates {
		if dims == -1 {
			dims = len(c.Features)
		}
		if len(c.Features) != dims || dims == 0 {
			return nil, fmt.Errorf("arrow: candidate %d (%q) has %d features, want %d", i, c.Name, len(c.Features), dims)
		}
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("candidate-%d", i)
		}
		cat.names = append(cat.names, name)
		cat.features = append(cat.features, append([]float64(nil), c.Features...))
	}
	opt, err := buildCore(o.cfg)
	if err != nil {
		return nil, err
	}
	return &Advisor{stepper: core.ResumeStepper(opt, cat, script), cat: cat}, nil
}

// Script exports a copy of the decision script recorded so far. It must
// only be called while a suggestion is pending (right after Next or
// NextBatch returned one) or after the search finished — called while
// the optimizer is mid-plan it blocks until the plan parks.
func (a *Advisor) Script() ResumeScript { return a.stepper.Script() }

// Next returns the candidate the advisor wants measured next, blocking
// while the optimizer plans (model fit + acquisition — milliseconds, not
// a measurement). While a suggestion is pending, Next returns the same
// suggestion again. After the search ends it returns Done. ctx bounds
// the wait; nil means no deadline.
func (a *Advisor) Next(ctx context.Context) (Suggestion, error) {
	sug, err := a.stepper.Next(ctx)
	if err != nil {
		return Suggestion{}, err
	}
	return convertSuggestion(sug), nil
}

// NextBatch returns up to k concurrent suggestions: the suggestion Next
// would return plus extra candidates planned by fantasizing outcomes for
// every suggestion still in flight (posterior-mean imputation for the GP
// methods, virtual pair rows for the forest-backed ones). Fewer than k
// come back when the optimizer's budget or stopping rule is near, or the
// method cannot plan ahead at this point; at least one is always
// returned, and k=1 is exactly Next. Suggestions may be observed in any
// order — Observe matches on candidate index — and like Next, NextBatch
// is idempotent: until observations arrive it returns the same
// suggestions again. After the search ends it returns a single Done
// suggestion.
func (a *Advisor) NextBatch(ctx context.Context, k int) ([]Suggestion, error) {
	sugs, err := a.stepper.NextBatch(ctx, k)
	if err != nil {
		if errors.Is(err, core.ErrBadBatchSize) {
			return nil, fmt.Errorf("%w: got %d", ErrBadBatchSize, k)
		}
		return nil, err
	}
	out := make([]Suggestion, len(sugs))
	for i, sug := range sugs {
		out[i] = convertSuggestion(sug)
	}
	return out, nil
}

// convertSuggestion maps a stepper suggestion onto the public type.
func convertSuggestion(sug core.StepSuggestion) Suggestion {
	return Suggestion{Index: sug.Index, Name: sug.Name, Step: sug.Step, Seq: sug.Seq, Done: sug.Done}
}

// Observe delivers the measurement of the pending suggestion. The index
// must match; out.Metrics may be nil when low-level metrics are
// unavailable (Augmented BO requires them, like in a batch search).
func (a *Advisor) Observe(index int, out Outcome) error {
	var metrics lowlevel.Vector
	if out.Metrics != nil {
		var err error
		metrics, err = lowlevel.FromSlice(out.Metrics)
		if err != nil {
			return fmt.Errorf("arrow: observation for candidate %d has a bad metric vector: %w", index, err)
		}
	}
	return a.convertStepErr(a.stepper.Observe(index, core.Outcome{
		TimeSec: out.TimeSec,
		CostUSD: out.CostUSD,
		Metrics: metrics,
	}, nil))
}

// ObserveFailure reports that measuring the pending suggestion failed.
// The advisor quarantines the candidate and plans around it, exactly as
// a batch search does when Target.Measure errors. cause may be nil.
func (a *Advisor) ObserveFailure(index int, cause error) error {
	if cause == nil {
		cause = errors.New("measurement failed")
	}
	return a.convertStepErr(a.stepper.Observe(index, core.Outcome{}, cause))
}

// Done reports whether the search has finished and Result is ready.
func (a *Advisor) Done() bool { return a.stepper.Done() }

// Result returns the finished search outcome, converted exactly as
// Search would: before the search ends it returns ErrSearchRunning;
// after an abort it returns the salvaged Partial result alongside the
// abort error.
func (a *Advisor) Result() (*Result, error) {
	res, err := a.stepper.Result()
	if errors.Is(err, core.ErrStepperRunning) {
		return nil, ErrSearchRunning
	}
	if res == nil {
		return nil, err
	}
	return convertResult(res, a.cat), err
}

// Abort ends the session now, salvaging a Partial result that keeps
// every delivered observation (the same path SearchContext cancellation
// takes). It blocks until the search loop has finalized. Aborting a
// finished advisor returns the finished result unchanged.
func (a *Advisor) Abort(cause error) (*Result, error) {
	res, err := a.stepper.Abort(cause)
	if res == nil {
		return nil, err
	}
	return convertResult(res, a.cat), err
}

// NumCandidates returns the session's catalog size.
func (a *Advisor) NumCandidates() int { return a.cat.NumCandidates() }

// convertStepErr maps internal stepper errors onto the public sentinels.
func (a *Advisor) convertStepErr(err error) error {
	switch {
	case errors.Is(err, core.ErrNoPendingSuggestion):
		return ErrNoPendingSuggestion
	case errors.Is(err, core.ErrSuggestionMismatch):
		return fmt.Errorf("%w: %v", ErrSuggestionMismatch, err)
	}
	return err
}

// advisorCatalog is the advisor's candidate table. It implements
// core.Catalog for the stepper and the name-lookup part of Target for
// convertResult; Measure must never be called.
type advisorCatalog struct {
	names    []string
	features [][]float64
}

var _ core.Catalog = (*advisorCatalog)(nil)
var _ Target = (*advisorCatalog)(nil)

func (c *advisorCatalog) NumCandidates() int       { return len(c.names) }
func (c *advisorCatalog) Features(i int) []float64 { return c.features[i] }
func (c *advisorCatalog) Name(i int) string        { return c.names[i] }

func (c *advisorCatalog) Measure(int) (Outcome, error) {
	return Outcome{}, errors.New("arrow: advisor catalogs cannot measure")
}
