package arrow

import (
	"context"
	"sort"
	"testing"
	"time"
)

// BenchmarkAdvisorNext measures per-suggestion planning latency through
// the serving-facing Advisor: each iteration runs one full augmented-BO
// advisor session against the simulated target, timing every Next call
// (the surrogate fit + acquisition pass a serve request pays). ns/op is
// the whole-session cost; the p50-ns and p99-ns extra metrics are the
// per-suggestion latency distribution across all sessions of the run,
// the planning-latency SLO numbers for the serve layer. Use -count to
// widen the sample.
func BenchmarkAdvisorNext(b *testing.B) {
	target, err := NewSimulatedTarget("als/spark2.1/medium", 1)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var lat []time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := New(WithMethod(MethodAugmentedBO), WithSeed(int64(42+i)))
		if err != nil {
			b.Fatal(err)
		}
		advisor, err := opt.NewAdvisor(CatalogCandidates())
		if err != nil {
			b.Fatal(err)
		}
		for {
			t0 := time.Now()
			sug, err := advisor.Next(ctx)
			lat = append(lat, time.Since(t0))
			if err != nil {
				b.Fatal(err)
			}
			if sug.Done {
				break
			}
			out, merr := target.Measure(sug.Index)
			if merr != nil {
				if err := advisor.ObserveFailure(sug.Index, merr); err != nil {
					b.Fatal(err)
				}
				continue
			}
			if err := advisor.Observe(sug.Index, out); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	quantile := func(q float64) float64 {
		idx := int(q * float64(len(lat)-1))
		return float64(lat[idx].Nanoseconds())
	}
	b.ReportMetric(quantile(0.50), "p50-ns")
	b.ReportMetric(quantile(0.99), "p99-ns")
	b.ReportMetric(float64(len(lat))/float64(b.N), "suggestions/session")
}

// BenchmarkAdvisorNextBatch measures batched planning latency: the same
// augmented-BO advisor session as BenchmarkAdvisorNext, but each
// planning round asks NextBatch(4) — one real plan plus up to three
// fantasized ones — and observes the whole batch before the next round.
// The p50-ns / p99-ns extra metrics time each NextBatch call, so
// dividing by suggestions/batch gives the amortized per-suggestion cost
// a batching client pays.
func BenchmarkAdvisorNextBatch(b *testing.B) {
	const k = 4
	target, err := NewSimulatedTarget("als/spark2.1/medium", 1)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var lat []time.Duration
	batches, suggested := 0, 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := New(WithMethod(MethodAugmentedBO), WithSeed(int64(42+i)))
		if err != nil {
			b.Fatal(err)
		}
		advisor, err := opt.NewAdvisor(CatalogCandidates())
		if err != nil {
			b.Fatal(err)
		}
		for {
			t0 := time.Now()
			sugs, err := advisor.NextBatch(ctx, k)
			lat = append(lat, time.Since(t0))
			if err != nil {
				b.Fatal(err)
			}
			if sugs[0].Done {
				break
			}
			batches++
			suggested += len(sugs)
			for _, sug := range sugs {
				out, merr := target.Measure(sug.Index)
				if merr != nil {
					if err := advisor.ObserveFailure(sug.Index, merr); err != nil {
						b.Fatal(err)
					}
					continue
				}
				if err := advisor.Observe(sug.Index, out); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	quantile := func(q float64) float64 {
		idx := int(q * float64(len(lat)-1))
		return float64(lat[idx].Nanoseconds())
	}
	b.ReportMetric(quantile(0.50), "p50-ns")
	b.ReportMetric(quantile(0.99), "p99-ns")
	if batches > 0 {
		b.ReportMetric(float64(suggested)/float64(batches), "suggestions/batch")
	}
}
