package arrow

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// driveAdvisor plays a full advisor session, answering every suggestion
// with the target's own measurement — the advisor-equivalence harness.
func driveAdvisor(t *testing.T, a *Advisor, target Target) {
	t.Helper()
	for {
		sug, err := a.Next(context.Background())
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if sug.Done {
			return
		}
		out, merr := target.Measure(sug.Index)
		if merr != nil {
			if err := a.ObserveFailure(sug.Index, merr); err != nil {
				t.Fatalf("ObserveFailure(%d): %v", sug.Index, err)
			}
			continue
		}
		if err := a.Observe(sug.Index, out); err != nil {
			t.Fatalf("Observe(%d): %v", sug.Index, err)
		}
	}
}

// TestAdvisorMatchesBatchSearch is the advisor-equivalence acceptance
// test: for every method, a fixed-seed advisor session fed a simulated
// target's measurements must reproduce the batch Search result AND the
// wall-stripped deterministic trace, byte for byte.
func TestAdvisorMatchesBatchSearch(t *testing.T) {
	methods := map[string]Method{
		"naive-bo":      MethodNaiveBO,
		"augmented-bo":  MethodAugmentedBO,
		"hybrid-bo":     MethodHybridBO,
		"random-search": MethodRandomSearch,
	}
	for name, method := range methods {
		t.Run(name, func(t *testing.T) {
			target, err := NewSimulatedTarget("als/spark2.1/medium", 1)
			if err != nil {
				t.Fatal(err)
			}

			batchRec := NewTraceRecorder()
			batchOpt, err := New(WithMethod(method), WithSeed(42), WithTracer(batchRec))
			if err != nil {
				t.Fatal(err)
			}
			want, err := batchOpt.Search(target)
			if err != nil {
				t.Fatalf("batch Search: %v", err)
			}

			stepRec := NewTraceRecorder()
			stepOpt, err := New(WithMethod(method), WithSeed(42), WithTracer(stepRec))
			if err != nil {
				t.Fatal(err)
			}
			advisor, err := stepOpt.NewAdvisor(TargetCandidates(target))
			if err != nil {
				t.Fatal(err)
			}
			driveAdvisor(t, advisor, target)
			got, err := advisor.Result()
			if err != nil {
				t.Fatalf("Result: %v", err)
			}

			if !reflect.DeepEqual(got, want) {
				t.Errorf("advisor result diverges from batch:\n advisor: %+v\n   batch: %+v", got, want)
			}

			batchEvents, stepEvents := batchRec.Events(), stepRec.Events()
			if len(batchEvents) != len(stepEvents) {
				t.Fatalf("trace length: advisor %d events, batch %d", len(stepEvents), len(batchEvents))
			}
			for i := range batchEvents {
				if b, s := batchEvents[i].StripWall(), stepEvents[i].StripWall(); !reflect.DeepEqual(b, s) {
					t.Fatalf("trace diverges at event %d:\n advisor: %+v\n   batch: %+v", i, s, b)
				}
			}
		})
	}
}

func TestAdvisorValidatesCandidates(t *testing.T) {
	opt, err := New(WithMethod(MethodRandomSearch), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.NewAdvisor(nil); err == nil {
		t.Error("empty catalog should fail")
	}
	if _, err := opt.NewAdvisor([]Candidate{
		{Name: "a", Features: []float64{1, 2}},
		{Name: "b", Features: []float64{1}},
	}); err == nil {
		t.Error("ragged feature dims should fail")
	}
	if _, err := opt.NewAdvisor([]Candidate{{Name: "a"}}); err == nil {
		t.Error("zero-dim features should fail")
	}
}

func TestAdvisorNamesDefaultWhenEmpty(t *testing.T) {
	opt, err := New(WithMethod(MethodRandomSearch), WithSeed(1), WithMaxMeasurements(1))
	if err != nil {
		t.Fatal(err)
	}
	advisor, err := opt.NewAdvisor([]Candidate{
		{Features: []float64{1}},
		{Features: []float64{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer advisor.Abort(nil)
	sug, err := advisor.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{0: "candidate-0", 1: "candidate-1"}[sug.Index]
	if sug.Name != want {
		t.Errorf("suggestion name = %q, want %q", sug.Name, want)
	}
}

func TestAdvisorErrorSurface(t *testing.T) {
	opt, err := New(WithMethod(MethodRandomSearch), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	advisor, err := opt.NewAdvisor(CatalogCandidates())
	if err != nil {
		t.Fatal(err)
	}
	defer advisor.Abort(nil)

	if _, err := advisor.Result(); !errors.Is(err, ErrSearchRunning) {
		t.Errorf("Result while running = %v, want ErrSearchRunning", err)
	}
	if err := advisor.Observe(0, Outcome{TimeSec: 1, CostUSD: 1}); !errors.Is(err, ErrNoPendingSuggestion) {
		t.Errorf("Observe before Next = %v, want ErrNoPendingSuggestion", err)
	}
	sug, err := advisor.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wrong := (sug.Index + 1) % advisor.NumCandidates()
	if err := advisor.Observe(wrong, Outcome{TimeSec: 1, CostUSD: 1}); !errors.Is(err, ErrSuggestionMismatch) {
		t.Errorf("mismatched Observe = %v, want ErrSuggestionMismatch", err)
	}
	if err := advisor.Observe(sug.Index, Outcome{TimeSec: 1, CostUSD: 1, Metrics: []float64{1}}); err == nil {
		t.Error("bad metric vector length should fail")
	}
	// A failure report with a nil cause is accepted (the advisor
	// substitutes a generic one) and quarantines the candidate.
	if err := advisor.ObserveFailure(sug.Index, nil); err != nil {
		t.Errorf("ObserveFailure with nil cause = %v", err)
	}
}

func TestAdvisorAbortSalvagesPartial(t *testing.T) {
	opt, err := New(WithMethod(MethodAugmentedBO), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	target, err := NewSimulatedTarget("kmeans/spark2.1/medium", 2)
	if err != nil {
		t.Fatal(err)
	}
	advisor, err := opt.NewAdvisor(TargetCandidates(target))
	if err != nil {
		t.Fatal(err)
	}
	for range 2 {
		sug, err := advisor.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out, merr := target.Measure(sug.Index)
		if merr != nil {
			t.Fatal(merr)
		}
		if err := advisor.Observe(sug.Index, out); err != nil {
			t.Fatal(err)
		}
	}
	cause := errors.New("client went away")
	res, err := advisor.Abort(cause)
	if err == nil || !errors.Is(err, cause) {
		t.Fatalf("Abort err = %v, want wrapped cause", err)
	}
	if res == nil || !res.Partial || res.NumMeasurements() != 2 {
		t.Fatalf("Abort result = %+v, want Partial with 2 observations", res)
	}
	if !advisor.Done() {
		t.Error("advisor not Done after Abort")
	}
	if res.BestName == "" {
		t.Error("salvaged result lost the best VM's name")
	}
}
