// Package arrow is the public API of this repository: a Go implementation
// of low-level augmented Bayesian optimization for finding the best cloud
// VM, reproducing Hsu, Nair, Freeh and Menzies, "Low-Level Augmented
// Bayesian Optimization for Finding the Best Cloud VM" (ICDCS 2018,
// arXiv:1712.10081).
//
// The package exposes three sequential model-based optimizers over a
// finite catalog of VM types:
//
//   - MethodNaiveBO — the CherryPick baseline: Gaussian-process surrogate
//     (Matérn 5/2 by default), Expected-Improvement acquisition, and an
//     EI-fraction stopping rule;
//   - MethodAugmentedBO — Arrow: an Extra-Trees surrogate over the
//     instance space augmented with the low-level performance metrics of
//     every measured VM, a Prediction-Delta acquisition, and a
//     Prediction-Delta stopping rule;
//   - MethodHybridBO — Naive BO's strong start followed by Augmented BO's
//     strong finish.
//
// Anything that can run a workload on a candidate and report its time,
// cost and low-level metrics can implement Target. A simulator-backed
// Target over the paper's 18 AWS VM types and 107 big-data workloads is
// built in (NewSimulatedTarget), so the whole evaluation is reproducible
// on a laptop:
//
//	target, _ := arrow.NewSimulatedTarget("als/spark2.1/medium", 1)
//	opt, _ := arrow.New(
//		arrow.WithMethod(arrow.MethodAugmentedBO),
//		arrow.WithObjective(arrow.MinimizeCost),
//	)
//	result, _ := opt.Search(target)
//	fmt.Println(result.BestName, result.BestValue)
package arrow

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/lowlevel"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// Objective selects what a search minimizes.
type Objective int

// The supported objectives.
const (
	// MinimizeTime minimizes execution time.
	MinimizeTime Objective = iota + 1
	// MinimizeCost minimizes deployment cost (time x hourly price).
	MinimizeCost
	// MinimizeTimeCostProduct minimizes the time-cost product, the
	// paper's equal-weight trade-off objective (Section VI-B).
	MinimizeTimeCostProduct
)

// String names the objective.
func (o Objective) String() string { return o.toCore().String() }

func (o Objective) toCore() core.Objective {
	switch o {
	case MinimizeTime:
		return core.MinimizeTime
	case MinimizeCost:
		return core.MinimizeCost
	case MinimizeTimeCostProduct:
		return core.MinimizeTimeCostProduct
	default:
		return 0
	}
}

// Method selects the search algorithm.
type Method int

// The supported methods.
const (
	// MethodNaiveBO is the CherryPick-style GP + EI baseline.
	MethodNaiveBO Method = iota + 1
	// MethodAugmentedBO is the paper's contribution.
	MethodAugmentedBO
	// MethodHybridBO switches from Naive to Augmented after a few
	// measurements.
	MethodHybridBO
	// MethodRandomSearch is a calibration baseline.
	MethodRandomSearch
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodNaiveBO:
		return "naive-bo"
	case MethodAugmentedBO:
		return "augmented-bo"
	case MethodHybridBO:
		return "hybrid-bo"
	case MethodRandomSearch:
		return "random-search"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Kernel selects the GP covariance family for MethodNaiveBO.
type Kernel int

// The supported kernels (Section III-B of the paper).
const (
	KernelRBF Kernel = iota + 1
	KernelMatern12
	KernelMatern32
	KernelMatern52
)

func (k Kernel) toInternal() kernel.Kind {
	switch k {
	case KernelRBF:
		return kernel.RBF
	case KernelMatern12:
		return kernel.Matern12
	case KernelMatern32:
		return kernel.Matern32
	case KernelMatern52:
		return kernel.Matern52
	default:
		return 0
	}
}

// String names the kernel.
func (k Kernel) String() string { return k.toInternal().String() }

// Outcome is one measurement of a candidate.
type Outcome struct {
	// TimeSec is the workload's execution time in seconds.
	TimeSec float64 `json:"time_sec"`
	// CostUSD is the deployment cost of the run.
	CostUSD float64 `json:"cost_usd"`
	// Metrics holds the low-level performance metrics collected during
	// the run, in MetricNames order. Leave nil if unavailable — Naive BO
	// ignores it; Augmented BO requires it.
	Metrics []float64 `json:"metrics,omitempty"`
}

// MetricNames returns the names of the low-level metric vector entries,
// in the order Outcome.Metrics must use.
func MetricNames() []string { return lowlevel.Names() }

// NumMetrics is the required length of Outcome.Metrics.
const NumMetrics = int(lowlevel.NumMetrics)

// Target abstracts the system under optimization: a finite catalog of
// candidates (VM types), each with a numeric feature encoding, that can
// be measured at a cost.
type Target interface {
	// NumCandidates returns the catalog size.
	NumCandidates() int
	// Features returns the instance-space encoding of candidate i. All
	// candidates must share one dimensionality.
	Features(i int) []float64
	// Name returns a human-readable name for candidate i.
	Name(i int) string
	// Measure runs the workload on candidate i.
	Measure(i int) (Outcome, error)
}

// Observation is one measured candidate of a finished search.
type Observation struct {
	Index   int     `json:"index"`
	Name    string  `json:"name"`
	Value   float64 `json:"value"`
	Outcome Outcome `json:"outcome"`
}

// Failure documents one candidate the search gave up on: its measurement
// failed (or kept producing invalid outcomes) even after the configured
// retries, and the candidate was quarantined so the search could continue.
type Failure struct {
	// Index / Name identify the candidate.
	Index int    `json:"index"`
	Name  string `json:"name"`
	// Attempts is how many Measure calls were made (1 without WithRetry).
	Attempts int `json:"attempts"`
	// FromDesign is true when the failure hit the initial design; the
	// failed point was replaced by another quasi-random pick.
	FromDesign bool `json:"from_design,omitempty"`
	// Reason is the final error, as text for serialization.
	Reason string `json:"error"`
	// Err is the final error; errors.Is/As work against it.
	Err error `json:"-"`
}

// Result is a completed (or salvaged) search.
type Result struct {
	// Method that produced the result.
	Method string `json:"method"`
	// Observations in measurement order; its length is the search cost.
	Observations []Observation `json:"observations"`
	// BestIndex / BestName / BestValue identify the best VM found.
	// BestIndex is -1 (and BestName empty) only when nothing at all was
	// measured.
	BestIndex int     `json:"best_index"`
	BestName  string  `json:"best_name"`
	BestValue float64 `json:"best_value"`
	// StoppedEarly reports whether the stopping rule fired before the
	// catalog was exhausted, and StopReason says why the search ended.
	StoppedEarly bool   `json:"stopped_early"`
	StopReason   string `json:"stop_reason,omitempty"`
	// SLOSatisfied is false only when WithMaxTimeSLO was set and no
	// measured VM met it; Best* then point at the fastest VM observed.
	SLOSatisfied bool `json:"slo_satisfied"`
	// Failures lists the quarantined candidates. A non-empty list does
	// not make the result partial: the search completed over the
	// candidates that survived.
	Failures []Failure `json:"failures,omitempty"`
	// Partial is true when the search could not run to its own stopping
	// rule — canceled, aborted by a fatal target error, or every
	// candidate failed. Search then returns this result alongside a
	// non-nil error, so the completed observations are never lost.
	Partial bool `json:"partial,omitempty"`
}

// NumMeasurements returns the search cost.
func (r *Result) NumMeasurements() int { return len(r.Observations) }

// Optimizer runs searches. Construct with New; a zero Optimizer is not
// usable.
type Optimizer struct {
	method Method
	cfg    config
}

type config struct {
	method          Method
	objective       Objective
	kernel          Kernel
	autoKernel      bool
	ard             bool
	acquisition     Acquisition
	eiStop          float64
	delta           float64
	switchAfter     int
	seed            int64
	numInitial      int
	initialIndices  []int
	designKind      Design
	maxMeasurements int
	disableLowLevel bool
	fullRefit       bool
	warmStart       []core.PriorObservation
	maxTimeSLO      float64
	retry           *RetryPolicy
	measureTimeout  time.Duration
	tracer          telemetry.Tracer
}

// Option configures an Optimizer.
type Option func(*config) error

// WithObjective sets the objective (default MinimizeCost, the paper's
// harder setting).
func WithObjective(o Objective) Option {
	return func(c *config) error {
		if o.toCore() == 0 {
			return fmt.Errorf("arrow: invalid objective %d", int(o))
		}
		c.objective = o
		return nil
	}
}

// WithKernel sets Naive BO's GP kernel (default Matérn 5/2).
func WithKernel(k Kernel) Option {
	return func(c *config) error {
		if k.toInternal() == 0 {
			return fmt.Errorf("arrow: invalid kernel %d", int(k))
		}
		c.kernel = k
		return nil
	}
}

// WithEIStopFraction sets Naive BO's stopping rule: stop when the maximum
// Expected Improvement drops below this fraction of the incumbent
// (default 0.10, per CherryPick). Pass a negative value to disable.
func WithEIStopFraction(f float64) Option {
	return func(c *config) error {
		if f > 1 {
			return fmt.Errorf("arrow: EI stop fraction %v > 1", f)
		}
		c.eiStop = f
		return nil
	}
}

// WithDeltaThreshold sets Augmented BO's Prediction-Delta stopping
// threshold (default 1.1, the paper's recommendation). The search stops
// when no unmeasured VM is predicted better than threshold x incumbent.
// Pass a negative value to disable.
func WithDeltaThreshold(t float64) Option {
	return func(c *config) error {
		c.delta = t
		return nil
	}
}

// WithSwitchAfter sets Hybrid BO's handover point in measurements
// (default 4).
func WithSwitchAfter(n int) Option {
	return func(c *config) error {
		if n < 2 {
			return fmt.Errorf("arrow: switch-after %d < 2", n)
		}
		c.switchAfter = n
		return nil
	}
}

// WithSeed seeds the initial design and surrogate randomization; searches
// with the same seed and target are reproducible.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithNumInitial sets the initial quasi-random design size (default 3).
func WithNumInitial(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("arrow: initial design size %d < 1", n)
		}
		c.numInitial = n
		return nil
	}
}

// WithInitialCandidates fixes the initial design to specific candidate
// indices, overriding the quasi-random sample (the paper's Section III-C
// sensitivity experiment).
func WithInitialCandidates(indices ...int) Option {
	return func(c *config) error {
		if len(indices) == 0 {
			return errors.New("arrow: empty initial design")
		}
		c.initialIndices = append([]int(nil), indices...)
		return nil
	}
}

// WithMaxMeasurements caps the search cost (default: the whole catalog).
func WithMaxMeasurements(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("arrow: max measurements %d < 1", n)
		}
		c.maxMeasurements = n
		return nil
	}
}

// WithMethod selects the algorithm (default MethodAugmentedBO).
func WithMethod(m Method) Option {
	return func(c *config) error {
		switch m {
		case MethodNaiveBO, MethodAugmentedBO, MethodHybridBO, MethodRandomSearch:
		default:
			return fmt.Errorf("arrow: invalid method %d", int(m))
		}
		c.method = m
		return nil
	}
}

// New builds an Optimizer.
func New(opts ...Option) (*Optimizer, error) {
	cfg := config{
		objective: MinimizeCost,
		kernel:    KernelMatern52,
		method:    MethodAugmentedBO,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	// Validate eagerly by building the underlying optimizer once.
	if _, err := buildCore(cfg); err != nil {
		return nil, err
	}
	return &Optimizer{method: cfg.method, cfg: cfg}, nil
}

// Method returns the configured search method.
func (o *Optimizer) Method() Method { return o.cfg.method }

// Objective returns the configured objective.
func (o *Optimizer) Objective() Objective { return o.cfg.objective }

func (cfg config) designConfig() core.DesignConfig {
	if len(cfg.initialIndices) > 0 {
		return core.DesignConfig{
			Kind:       core.DesignFixed,
			NumInitial: len(cfg.initialIndices),
			Fixed:      cfg.initialIndices,
		}
	}
	return core.DesignConfig{Kind: cfg.designKind.toCore(), NumInitial: cfg.numInitial}
}

func buildCore(cfg config) (core.Optimizer, error) {
	switch cfg.method {
	case MethodNaiveBO:
		return core.NewNaiveBO(core.NaiveBOConfig{
			Objective:               cfg.objective.toCore(),
			Kernel:                  cfg.kernel.toInternal(),
			AutoKernel:              cfg.autoKernel,
			ARD:                     cfg.ard,
			Acquisition:             cfg.acquisition.toInternal(),
			EIStopFraction:          cfg.eiStop,
			MaxTimeSLO:              cfg.maxTimeSLO,
			MaxMeasurements:         cfg.maxMeasurements,
			Design:                  cfg.designConfig(),
			Seed:                    cfg.seed,
			DisableIncrementalRefit: cfg.fullRefit,
			Tracer:                  cfg.tracer,
		})
	case MethodAugmentedBO:
		return core.NewAugmentedBO(core.AugmentedBOConfig{
			Objective:               cfg.objective.toCore(),
			DeltaThreshold:          cfg.delta,
			MaxTimeSLO:              cfg.maxTimeSLO,
			MaxMeasurements:         cfg.maxMeasurements,
			Design:                  cfg.designConfig(),
			Seed:                    cfg.seed,
			DisableLowLevel:         cfg.disableLowLevel,
			DisableIncrementalRefit: cfg.fullRefit,
			WarmStart:               cfg.warmStart,
			Tracer:                  cfg.tracer,
		})
	case MethodHybridBO:
		return core.NewHybridBO(core.HybridBOConfig{
			Naive: core.NaiveBOConfig{
				Objective:               cfg.objective.toCore(),
				Kernel:                  cfg.kernel.toInternal(),
				AutoKernel:              cfg.autoKernel,
				ARD:                     cfg.ard,
				Acquisition:             cfg.acquisition.toInternal(),
				MaxTimeSLO:              cfg.maxTimeSLO,
				Design:                  cfg.designConfig(),
				Seed:                    cfg.seed,
				DisableIncrementalRefit: cfg.fullRefit,
			},
			Augmented: core.AugmentedBOConfig{
				Objective:               cfg.objective.toCore(),
				DeltaThreshold:          cfg.delta,
				MaxTimeSLO:              cfg.maxTimeSLO,
				MaxMeasurements:         cfg.maxMeasurements,
				Seed:                    cfg.seed,
				DisableLowLevel:         cfg.disableLowLevel,
				DisableIncrementalRefit: cfg.fullRefit,
				WarmStart:               cfg.warmStart,
			},
			SwitchAfter: cfg.switchAfter,
			Tracer:      cfg.tracer,
		})
	case MethodRandomSearch:
		return core.NewRandomSearch(core.RandomSearchConfig{
			Objective:       cfg.objective.toCore(),
			MaxMeasurements: cfg.maxMeasurements,
			Seed:            cfg.seed,
			Tracer:          cfg.tracer,
		})
	default:
		return nil, fmt.Errorf("arrow: invalid method %d", int(cfg.method))
	}
}

// Search runs the configured optimizer against target.
//
// When the search cannot run to completion — canceled, aborted by a
// fatal measurement error, or every candidate quarantined — Search
// returns BOTH a non-nil *Result carrying every completed observation
// (with Partial set) and a non-nil error saying why. Callers that only
// check the error can stay unchanged; callers on an expensive target
// should salvage the partial result.
func (o *Optimizer) Search(target Target) (*Result, error) {
	return o.searchTarget(target, nil)
}

// searchTarget wraps target with the configured measurement middleware
// (timeout, then retries), then with outer (cancellation/progress), runs
// the core optimizer, and converts the result. outer is applied last so
// cancellation checks and progress callbacks see exactly the measurements
// the search loop accepts.
func (o *Optimizer) searchTarget(target Target, outer func(Target) Target) (*Result, error) {
	opt, err := buildCore(o.cfg)
	if err != nil {
		return nil, err
	}
	wrapped := o.cfg.wrapTarget(target)
	if outer != nil {
		wrapped = outer(wrapped)
	}
	res, err := opt.Search(&targetAdapter{t: wrapped})
	if res == nil {
		// Configuration-level failure before any measurement.
		return nil, err
	}
	return convertResult(res, target), err
}

// convertResult translates the internal result to the public one.
func convertResult(res *core.Result, target Target) *Result {
	out := &Result{
		Method:       res.Method,
		BestIndex:    res.BestIndex,
		BestValue:    res.BestValue,
		StoppedEarly: res.StoppedEarly,
		StopReason:   res.StopReason,
		SLOSatisfied: res.SLOSatisfied,
		Partial:      res.Partial,
	}
	if res.BestIndex >= 0 {
		out.BestName = target.Name(res.BestIndex)
	}
	for _, obs := range res.Observations {
		out.Observations = append(out.Observations, Observation{
			Index: obs.Index,
			Name:  target.Name(obs.Index),
			Value: obs.Value,
			Outcome: Outcome{
				TimeSec: obs.Outcome.TimeSec,
				CostUSD: obs.Outcome.CostUSD,
				Metrics: obs.Outcome.Metrics.Slice(),
			},
		})
	}
	for _, f := range res.Failures {
		attempts := 1
		var ex *RetryExhaustedError
		if errors.As(f.Err, &ex) {
			attempts = ex.Attempts
		}
		reason := ""
		if f.Err != nil {
			reason = f.Err.Error()
		}
		out.Failures = append(out.Failures, Failure{
			Index:      f.Index,
			Name:       target.Name(f.Index),
			Attempts:   attempts,
			FromDesign: f.FromDesign,
			Reason:     reason,
			Err:        f.Err,
		})
	}
	return out
}

// targetAdapter bridges the public Target to the internal one, validating
// the metrics vector on the way in.
type targetAdapter struct {
	t Target
}

var _ core.Target = (*targetAdapter)(nil)

func (a *targetAdapter) NumCandidates() int       { return a.t.NumCandidates() }
func (a *targetAdapter) Features(i int) []float64 { return a.t.Features(i) }
func (a *targetAdapter) Name(i int) string        { return a.t.Name(i) }

func (a *targetAdapter) Measure(i int) (core.Outcome, error) {
	out, err := a.t.Measure(i)
	if err != nil {
		return core.Outcome{}, err
	}
	var metrics lowlevel.Vector
	if out.Metrics != nil {
		metrics, err = lowlevel.FromSlice(out.Metrics)
		if err != nil {
			return core.Outcome{}, fmt.Errorf("arrow: candidate %s returned a bad metric vector: %w", a.t.Name(i), err)
		}
	}
	return core.Outcome{TimeSec: out.TimeSec, CostUSD: out.CostUSD, Metrics: metrics}, nil
}

// VMInfo describes one VM type of the built-in simulated catalog.
type VMInfo struct {
	Name       string
	VCPUs      int
	MemGiB     float64
	PricePerHr float64
	Features   []float64
}

// CatalogVMs lists the built-in 18-type AWS catalog used by the simulated
// targets, in candidate-index order.
func CatalogVMs() []VMInfo {
	cat := cloud.DefaultCatalog()
	out := make([]VMInfo, cat.Len())
	for i := 0; i < cat.Len(); i++ {
		vm := cat.VM(i)
		out[i] = VMInfo{
			Name:       vm.Name(),
			VCPUs:      vm.VCPUs,
			MemGiB:     vm.MemGiB,
			PricePerHr: vm.PricePerHr,
			Features:   vm.Encode(),
		}
	}
	return out
}

// WorkloadIDs lists the built-in study workloads ("app/system/size"),
// the paper's 107-workload set.
func WorkloadIDs() []string {
	s := sim.New(cloud.DefaultCatalog())
	ws := s.StudyWorkloads()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.ID()
	}
	return out
}

// NewSimulatedTarget builds a Target backed by the built-in simulator for
// the named study workload. The trial index seeds the measurement noise:
// different trials model independent deployments under different cloud
// interference, while equal trials reproduce exactly.
func NewSimulatedTarget(workloadID string, trial int64) (Target, error) {
	s := sim.New(cloud.DefaultCatalog())
	w, err := workloads.ByID(workloadID)
	if err != nil {
		return nil, err
	}
	if !s.RunsEverywhere(w) {
		return nil, fmt.Errorf("arrow: workload %q is not runnable on every VM (excluded from the study set)", workloadID)
	}
	return &simTargetAdapter{t: s.NewTarget(w, trial)}, nil
}

// simTargetAdapter exposes the internal simulator target as a public one.
type simTargetAdapter struct {
	t *sim.Target
}

var _ Target = (*simTargetAdapter)(nil)

func (a *simTargetAdapter) NumCandidates() int       { return a.t.NumCandidates() }
func (a *simTargetAdapter) Features(i int) []float64 { return a.t.Features(i) }
func (a *simTargetAdapter) Name(i int) string        { return a.t.Name(i) }

func (a *simTargetAdapter) Measure(i int) (Outcome, error) {
	out, err := a.t.Measure(i)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{TimeSec: out.TimeSec, CostUSD: out.CostUSD, Metrics: out.Metrics.Slice()}, nil
}
