package arrow

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
)

func TestWorkloadIDsCount(t *testing.T) {
	ids := WorkloadIDs()
	if len(ids) != 107 {
		t.Fatalf("%d workloads, want the paper's 107", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate %q", id)
		}
		seen[id] = true
	}
}

func TestCatalogVMs(t *testing.T) {
	vms := CatalogVMs()
	if len(vms) != 18 {
		t.Fatalf("%d VMs, want 18", len(vms))
	}
	for _, vm := range vms {
		if vm.Name == "" || vm.VCPUs <= 0 || vm.MemGiB <= 0 || vm.PricePerHr <= 0 {
			t.Errorf("bad VM info: %+v", vm)
		}
		if len(vm.Features) != 4 {
			t.Errorf("%s: %d features", vm.Name, len(vm.Features))
		}
	}
}

func TestMetricNames(t *testing.T) {
	names := MetricNames()
	if len(names) != NumMetrics {
		t.Fatalf("%d metric names, want %d", len(names), NumMetrics)
	}
}

func TestNewSimulatedTarget(t *testing.T) {
	target, err := NewSimulatedTarget("als/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	if target.NumCandidates() != 18 {
		t.Errorf("%d candidates", target.NumCandidates())
	}
	out, err := target.Measure(0)
	if err != nil {
		t.Fatal(err)
	}
	if out.TimeSec <= 0 || out.CostUSD <= 0 || len(out.Metrics) != NumMetrics {
		t.Errorf("bad outcome: %+v", out)
	}
}

func TestNewSimulatedTargetUnknown(t *testing.T) {
	if _, err := NewSimulatedTarget("nope/spark9/medium", 1); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestNewSimulatedTargetExcludedWorkload(t *testing.T) {
	// classification/spark1.5/large is a valid candidate but OOM-excluded
	// from the study set.
	if _, err := NewSimulatedTarget("classification/spark1.5/large", 1); err == nil {
		t.Error("excluded workload should be rejected")
	}
}

func TestOptionValidation(t *testing.T) {
	bad := []struct {
		name string
		opt  Option
	}{
		{"objective", WithObjective(Objective(0))},
		{"kernel", WithKernel(Kernel(99))},
		{"ei>1", WithEIStopFraction(1.5)},
		{"switch<2", WithSwitchAfter(1)},
		{"numInitial<1", WithNumInitial(0)},
		{"empty design", WithInitialCandidates()},
		{"max<1", WithMaxMeasurements(0)},
		{"method", WithMethod(Method(0))},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.opt); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestDefaults(t *testing.T) {
	opt, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Method() != MethodAugmentedBO {
		t.Errorf("default method = %v", opt.Method())
	}
	if opt.Objective() != MinimizeCost {
		t.Errorf("default objective = %v", opt.Objective())
	}
}

func TestSearchAllMethodsOnSimulatedTarget(t *testing.T) {
	for _, method := range []Method{MethodNaiveBO, MethodAugmentedBO, MethodHybridBO, MethodRandomSearch} {
		t.Run(method.String(), func(t *testing.T) {
			target, err := NewSimulatedTarget("kmeans/spark2.1/medium", 2)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := New(
				WithMethod(method),
				WithObjective(MinimizeCost),
				WithSeed(7),
				WithEIStopFraction(-1),
				WithDeltaThreshold(-1),
			)
			if err != nil {
				t.Fatal(err)
			}
			res, err := opt.Search(target)
			if err != nil {
				t.Fatal(err)
			}
			if res.NumMeasurements() != 18 {
				t.Errorf("measured %d with stopping disabled", res.NumMeasurements())
			}
			if res.BestName == "" || res.BestValue <= 0 {
				t.Errorf("bad result: %+v", res)
			}
			// BestValue must equal the smallest observed value.
			minVal := res.Observations[0].Value
			for _, obs := range res.Observations {
				if obs.Value < minVal {
					minVal = obs.Value
				}
			}
			if res.BestValue != minVal {
				t.Errorf("BestValue %v != min observed %v", res.BestValue, minVal)
			}
		})
	}
}

func TestSearchStopsEarlyByDefault(t *testing.T) {
	target, err := NewSimulatedTarget("pearson/spark2.1/medium", 3)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedEarly {
		t.Log("note: search exhausted the catalog (acceptable but unusual)")
	}
	if res.StopReason == "" {
		t.Error("empty stop reason")
	}
}

func TestSearchReproducibleWithSeed(t *testing.T) {
	run := func() []string {
		target, err := NewSimulatedTarget("svd/spark2.1/medium", 5)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := New(WithMethod(MethodNaiveBO), WithSeed(11), WithEIStopFraction(-1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Search(target)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, obs := range res.Observations {
			names = append(names, obs.Name)
		}
		return names
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, a, b)
		}
	}
}

func TestWithInitialCandidates(t *testing.T) {
	target, err := NewSimulatedTarget("scan/hadoop2.7/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(
		WithMethod(MethodNaiveBO),
		WithInitialCandidates(17, 0, 9),
		WithEIStopFraction(-1),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{17, 0, 9} {
		if res.Observations[i].Index != want {
			t.Errorf("step %d measured %d, want %d", i, res.Observations[i].Index, want)
		}
	}
}

func TestWithMaxMeasurements(t *testing.T) {
	target, err := NewSimulatedTarget("scan/hadoop2.7/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(WithMethod(MethodAugmentedBO), WithMaxMeasurements(5), WithDeltaThreshold(-1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumMeasurements() != 5 {
		t.Errorf("measured %d, want 5", res.NumMeasurements())
	}
}

// customTarget checks the public Target interface with user-provided
// metrics (and without).
type customTarget struct {
	withMetrics bool
	badMetrics  bool
}

func (c *customTarget) NumCandidates() int { return 6 }
func (c *customTarget) Features(i int) []float64 {
	return []float64{float64(i), float64(i * i)}
}
func (c *customTarget) Name(i int) string { return fmt.Sprintf("cfg-%d", i) }
func (c *customTarget) Measure(i int) (Outcome, error) {
	out := Outcome{TimeSec: float64(10 - i), CostUSD: float64(i + 1)}
	if c.withMetrics {
		m := make([]float64, NumMetrics)
		for j := range m {
			m[j] = float64(j + 1)
		}
		out.Metrics = m
	}
	if c.badMetrics {
		out.Metrics = []float64{-1, 2}
	}
	return out, nil
}

func TestCustomTargetWithoutMetricsNaive(t *testing.T) {
	opt, err := New(WithMethod(MethodNaiveBO), WithObjective(MinimizeTime), WithEIStopFraction(-1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(&customTarget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestName != "cfg-5" {
		t.Errorf("best = %s, want cfg-5 (smallest time)", res.BestName)
	}
}

func TestCustomTargetWithMetricsAugmented(t *testing.T) {
	opt, err := New(WithMethod(MethodAugmentedBO), WithObjective(MinimizeCost), WithDeltaThreshold(-1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(&customTarget{withMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestName != "cfg-0" {
		t.Errorf("best = %s, want cfg-0 (cheapest)", res.BestName)
	}
}

func TestCustomTargetBadMetricsRejected(t *testing.T) {
	opt, err := New(WithMethod(MethodAugmentedBO), WithObjective(MinimizeCost))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Search(&customTarget{badMetrics: true}); err == nil {
		t.Error("malformed metrics should fail")
	}
}

func TestObjectiveAndMethodStrings(t *testing.T) {
	if MinimizeTime.String() != "time" || MinimizeCost.String() != "cost" {
		t.Error("objective names wrong")
	}
	if MethodNaiveBO.String() != "naive-bo" || MethodAugmentedBO.String() != "augmented-bo" {
		t.Error("method names wrong")
	}
	if KernelMatern52.String() != "MATERN 5/2" {
		t.Errorf("kernel name %q", KernelMatern52.String())
	}
}

func TestErrorsAreErrors(t *testing.T) {
	_, err := NewSimulatedTarget("classification/spark1.5/large", 1)
	if err == nil {
		t.Fatal("want error")
	}
	var dummy *Optimizer
	_ = dummy
	if errors.Is(err, nil) {
		t.Error("nonsense")
	}
}

func TestProductObjective(t *testing.T) {
	target, err := NewSimulatedTarget("bayes/spark2.1/medium", 4)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(
		WithMethod(MethodAugmentedBO),
		WithObjective(MinimizeTimeCostProduct),
		WithDeltaThreshold(1.05),
		WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	// The best value must equal time x cost of the best observation.
	for _, obs := range res.Observations {
		if obs.Index == res.BestIndex {
			if want := obs.Outcome.TimeSec * obs.Outcome.CostUSD; res.BestValue != want {
				t.Errorf("product = %v, want %v", res.BestValue, want)
			}
		}
	}
}

func TestWorkloadIDsSorted(t *testing.T) {
	ids := WorkloadIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted at %d: %q >= %q", i, ids[i-1], ids[i])
		}
	}
}

func TestCatalogVMsReturnsCopies(t *testing.T) {
	a := CatalogVMs()
	a[0].Name = "mutated"
	a[0].Features[0] = -99
	b := CatalogVMs()
	if b[0].Name == "mutated" || b[0].Features[0] == -99 {
		t.Error("CatalogVMs aliases shared state")
	}
}

func TestSimulatedTargetFeaturesStable(t *testing.T) {
	target, err := NewSimulatedTarget("als/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	a := target.Features(0)
	b := target.Features(0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("features changed between calls")
		}
	}
}

func TestSimulatedTargetNoiseVariesAcrossTrials(t *testing.T) {
	t1, err := NewSimulatedTarget("als/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewSimulatedTarget("als/spark2.1/medium", 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := t1.Measure(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := t2.Measure(0)
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeSec == b.TimeSec {
		t.Error("different trials produced identical measurements")
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	target, err := NewSimulatedTarget("pearson/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(WithMaxMeasurements(4), WithDeltaThreshold(-1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.BestName != res.BestName || back.NumMeasurements() != res.NumMeasurements() {
		t.Errorf("round trip diverged: %+v vs %+v", back, res)
	}
}
