// Benchmark for the PARIS-style offline-model baseline of Section II-D:
// fixed online cost (2 reference measurements) against bounded prediction
// accuracy, compared with the search-based methods.
package arrow

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/paris"
	"repro/internal/study"
	"repro/internal/workloads"
)

// BenchmarkBaselinePARIS runs a hold-one-out evaluation of the offline
// model on a slice of the study set and contrasts its decision quality
// with Augmented BO at the same (tiny) and at its natural search cost.
func BenchmarkBaselinePARIS(b *testing.B) {
	r := benchRunner()
	all := r.Workloads()
	// Every 4th workload: 27 diverse workloads keeps hold-one-out
	// tractable (each fold trains 36 forests).
	var ws []workloads.Workload
	for i := 0; i < len(all); i += 4 {
		ws = append(ws, all[i])
	}

	var res *paris.EvalResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = paris.HoldOneOut(r.Simulator(), paris.Config{
			Forest: forest.Config{NumTrees: 40},
		}, ws)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	// Augmented BO on the same workloads, stopping rule on.
	var sumNorm, sumCost float64
	n := 0
	for _, w := range ws {
		for seed := 0; seed < benchSeeds(); seed++ {
			summary, err := r.RunSearch(
				study.MethodConfig{Method: study.MethodAugmented, Delta: 1.1},
				w, core.MinimizeCost, int64(seed))
			if err != nil {
				b.Fatal(err)
			}
			sumNorm += summary.FoundNorm
			sumCost += float64(summary.Measurements)
			n++
		}
	}

	fmt.Printf("\nPARIS-style baseline, leave-one-application-out over %d workloads:\n", res.Workloads)
	fmt.Printf("  prediction RMSE: %.0f%% (paper quotes 'up to 50%% RMSE' on real clouds)\n", res.RMSEPct)
	fmt.Printf("  online cost: 2 measurements + an offline benchmark phase of %d runs\n",
		(len(ws)-1)*r.Catalog().Len())
	fmt.Printf("  picked VM averages %.2fx optimal (time), %.2fx (cost)\n",
		res.MeanFoundNormTime, res.MeanFoundNormCost)
	fmt.Printf("  Augmented BO (delta 1.1): %.1f measurements, NO offline phase; picked VM averages %.2fx optimal (cost)\n",
		sumCost/float64(n), sumNorm/float64(n))
	fmt.Printf("  note: the analytic simulator's 4-parameter demand space makes offline\n")
	fmt.Printf("  generalization easier than the paper's real-cloud setting (see EXPERIMENTS.md)\n")
}
