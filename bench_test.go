// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates the corresponding data
// series on the simulator substrate and prints the same rows the paper
// reports, so `go test -bench=. -benchmem` doubles as the reproduction
// run. EXPERIMENTS.md records paper-vs-measured for each one.
//
// The repetition count per workload defaults to a laptop-friendly value;
// set ARROW_BENCH_SEEDS=100 to match the paper's 100 repeats.
package arrow

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/study"
	"repro/internal/workloads"
)

// benchSeeds returns the per-workload repetition count.
func benchSeeds() int {
	if v := os.Getenv("ARROW_BENCH_SEEDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 8
}

var (
	benchRunnerOnce sync.Once
	benchRunnerVal  *study.Runner
)

// benchRunner lazily builds one shared full-study Runner.
func benchRunner() *study.Runner {
	benchRunnerOnce.Do(func() {
		benchRunnerVal = study.NewRunner(sim.New(cloud.DefaultCatalog()))
	})
	return benchRunnerVal
}

// BenchmarkTable1Inventory regenerates Table I: the application inventory
// and the 107-workload study set.
func BenchmarkTable1Inventory(b *testing.B) {
	var studySet []workloads.Workload
	for i := 0; i < b.N; i++ {
		studySet = sim.New(cloud.DefaultCatalog()).StudyWorkloads()
	}
	b.StopTimer()
	counts := map[workloads.Category]int{}
	for _, w := range studySet {
		counts[w.Category]++
	}
	fmt.Printf("\nTable I: %d applications; %d candidates; %d study workloads\n",
		workloads.NumApplications, len(workloads.All()), len(studySet))
	for _, cat := range []workloads.Category{workloads.Micro, workloads.OLAP, workloads.Statistics, workloads.MachineLearning} {
		fmt.Printf("  %-20s %3d study workloads\n", cat, counts[cat])
	}
}

// BenchmarkFig1NaiveBOCDF regenerates Figure 1: the CDF of Naive BO's
// search cost across the 107 workloads and the Region I/II/III split.
func BenchmarkFig1NaiveBOCDF(b *testing.B) {
	r := benchRunner()
	var cdfs []study.MethodCDF
	for i := 0; i < b.N; i++ {
		var err error
		cdfs, err = r.SearchCostCDF([]study.MethodConfig{{Method: study.MethodNaive}}, core.MinimizeTime, benchSeeds())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cdf := cdfs[0]
	fmt.Printf("\nFig 1 (time objective, %d seeds): paper: 50%% within 6, 85%% within 12\n", benchSeeds())
	for _, m := range []int{2, 4, 6, 8, 10, 12, 14, 16, 18} {
		fmt.Printf("  within %2d measurements: %5.1f%%\n", m, 100*cdf.FractionWithin(m))
	}
}

// BenchmarkFig2ALSTrajectory regenerates Figure 2: Naive BO's sluggish
// trajectory on ALS (a Region III workload in the paper).
func BenchmarkFig2ALSTrajectory(b *testing.B) {
	r := benchRunner()
	w, err := r.WorkloadByID("als/spark2.1/medium")
	if err != nil {
		b.Fatal(err)
	}
	var rep *study.TrajectoryReport
	for i := 0; i < b.N; i++ {
		rep, err = r.Trajectories(study.MethodConfig{Method: study.MethodNaive}, w, core.MinimizeTime, benchSeeds())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Printf("\nFig 2 (als on Spark, normalized time): paper shows slow convergence\n")
	for _, p := range rep.Points {
		if p.Step%2 == 0 || p.Step == 1 {
			fmt.Printf("  step %2d: median %.3f [Q1 %.3f, Q3 %.3f]\n", p.Step, p.Median, p.Q1, p.Q3)
		}
	}
	fmt.Printf("  median steps to optimum: %.1f\n", rep.MedianStepOptimal)
}

// BenchmarkFig3Spread regenerates Figure 3: up-to-20x execution-time and
// up-to-10x deployment-cost spreads.
func BenchmarkFig3Spread(b *testing.B) {
	r := benchRunner()
	var rows []study.SpreadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.Spread(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sort.Slice(rows, func(i, j int) bool { return rows[i].TimeRatio > rows[j].TimeRatio })
	fmt.Printf("\nFig 3: paper: up to 20x time, 10x cost; measured extremes:\n")
	for _, row := range rows[:5] {
		fmt.Printf("  %-34s time %5.1fx  cost %4.1fx\n", row.WorkloadID, row.TimeRatio, row.CostRatio)
	}
}

// BenchmarkFig4ExpensiveCheap regenerates Figure 4: fixed most-expensive
// VMs under time and least-expensive VMs under cost.
func BenchmarkFig4ExpensiveCheap(b *testing.B) {
	r := benchRunner()
	var expensive, cheap []study.FixedVMSeries
	for i := 0; i < b.N; i++ {
		var err error
		expensive, err = r.FixedVMDistribution([]string{"c4.2xlarge", "m4.2xlarge", "r4.2xlarge"}, core.MinimizeTime)
		if err != nil {
			b.Fatal(err)
		}
		cheap, err = r.FixedVMDistribution([]string{"c4.large", "m4.large", "r4.large"}, core.MinimizeCost)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Printf("\nFig 4(a) (time, most expensive VMs): paper: c4.2xlarge best for ~50%%\n")
	for _, s := range expensive {
		worst := s.NormalizedSorted[len(s.NormalizedSorted)-1]
		fmt.Printf("  %-11s optimal for %4.0f%% of workloads; worst case %.1fx\n", s.VMName, 100*s.OptimalFraction, worst)
	}
	fmt.Printf("Fig 4(b) (cost, least expensive VMs): paper: c4.large does not rule either\n")
	for _, s := range cheap {
		worst := s.NormalizedSorted[len(s.NormalizedSorted)-1]
		fmt.Printf("  %-11s optimal for %4.0f%% of workloads; worst case %.1fx\n", s.VMName, 100*s.OptimalFraction, worst)
	}
}

// BenchmarkFig5InputSize regenerates Figure 5: the best VM changes with
// input size.
func BenchmarkFig5InputSize(b *testing.B) {
	r := benchRunner()
	pairs := []study.AppSystem{
		{App: "pagerank", System: workloads.Hadoop27},
		{App: "bayes", System: workloads.Spark21},
		{App: "als", System: workloads.Spark21},
		{App: "wordcount", System: workloads.Spark21},
		{App: "terasort", System: workloads.Hadoop27},
	}
	var rows []study.InputSizeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.InputSizeEffect(pairs, "m4.xlarge", core.MinimizeCost)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Printf("\nFig 5 (cost objective): paper: optimal VM shifts with input size\n")
	for _, row := range rows {
		fmt.Printf("  %-22s", row.AppName+"/"+row.System.String())
		for _, size := range workloads.Sizes() {
			if cell := row.PerSize[size]; cell != nil {
				fmt.Printf("  %s=%s", size, cell.BestVM)
			}
		}
		fmt.Printf("  (changes: %v)\n", row.BestVMChanges)
	}
}

// BenchmarkFig6LevelPlayingField regenerates Figure 6: cost compresses the
// differences between VM types for the regression workload.
func BenchmarkFig6LevelPlayingField(b *testing.B) {
	r := benchRunner()
	var lf *study.LevelField
	for i := 0; i < b.N; i++ {
		var err error
		lf, err = r.LevelPlayingField("regression/spark1.5/medium")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Printf("\nFig 6 (regression/spark1.5): time spread %.1fx vs cost spread %.1fx\n", lf.TimeSpread, lf.CostSpread)
	for _, row := range lf.Rows {
		fmt.Printf("  %-11s time %6.2f  cost %5.2f\n", row.VMName, row.NormTime, row.NormCost)
	}
}

// BenchmarkFig7KernelComparison regenerates Figure 7: how the GP kernel
// changes Naive BO's search cost, on als (time) and bayes (cost).
func BenchmarkFig7KernelComparison(b *testing.B) {
	r := benchRunner()
	panels := []struct {
		workload  string
		objective core.Objective
	}{
		{"als/spark2.1/medium", core.MinimizeTime},
		{"bayes/spark2.1/medium", core.MinimizeCost},
	}
	type panelResult struct {
		label   string
		reports []*study.TrajectoryReport
	}
	var results []panelResult
	for i := 0; i < b.N; i++ {
		results = results[:0]
		for _, p := range panels {
			w, err := r.WorkloadByID(p.workload)
			if err != nil {
				b.Fatal(err)
			}
			reports, err := r.KernelComparison(w, p.objective, kernel.All(), benchSeeds())
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, panelResult{label: fmt.Sprintf("%s (%s)", p.workload, p.objective), reports: reports})
		}
	}
	b.StopTimer()
	fmt.Printf("\nFig 7: paper: no kernel wins both panels\n")
	for _, pr := range results {
		fmt.Printf("  %s\n", pr.label)
		for _, rep := range pr.reports {
			fmt.Printf("    %-11s median steps to optimum %4.1f\n", rep.Label, rep.MedianStepOptimal)
		}
	}
}

// BenchmarkFig8MemoryBottleneck regenerates Figure 8: low-level metrics
// exposing the memory bottleneck of logistic regression.
func BenchmarkFig8MemoryBottleneck(b *testing.B) {
	r := benchRunner()
	var rows []study.BottleneckRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.BottleneckProfile("lr/spark1.5/medium")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Printf("\nFig 8 (lr/spark1.5): paper: c3.large 14.8x with memory pressure; c4.2xlarge best\n")
	for _, row := range rows {
		fmt.Printf("  %-11s (%5.1fx)  %%commit %6.1f  %%iowait %5.1f\n", row.VMName, row.NormTime, row.MemCommit, row.IOWait)
	}
}

// BenchmarkFig9SearchCostCDF regenerates Figure 9: Naive vs Augmented vs
// Hybrid search-cost CDFs under both objectives.
func BenchmarkFig9SearchCostCDF(b *testing.B) {
	r := benchRunner()
	methods := []study.MethodConfig{
		{Method: study.MethodNaive},
		{Method: study.MethodAugmented},
		{Method: study.MethodHybrid},
	}
	type panel struct {
		label string
		cdfs  []study.MethodCDF
	}
	var panels []panel
	for i := 0; i < b.N; i++ {
		panels = panels[:0]
		for _, obj := range []core.Objective{core.MinimizeTime, core.MinimizeCost} {
			cdfs, err := r.SearchCostCDF(methods, obj, benchSeeds())
			if err != nil {
				b.Fatal(err)
			}
			panels = append(panels, panel{label: obj.String(), cdfs: cdfs})
		}
	}
	b.StopTimer()
	fmt.Printf("\nFig 9 (%d seeds): paper: Augmented overtakes Naive past ~6 measurements; Hybrid dominates Naive\n", benchSeeds())
	for _, p := range panels {
		fmt.Printf("  objective %s:\n", p.label)
		for _, cdf := range p.cdfs {
			fmt.Printf("    %-12s within6 %4.0f%%  within10 %4.0f%%  within12 %4.0f%%\n",
				cdf.Label, 100*cdf.FractionWithin(6), 100*cdf.FractionWithin(10), 100*cdf.FractionWithin(12))
		}
	}
}

// BenchmarkFig10Trajectories regenerates Figure 10: trajectories with IQR
// bands on the paper's three example workloads.
func BenchmarkFig10Trajectories(b *testing.B) {
	r := benchRunner()
	panels := []struct {
		id, workload string
		objective    core.Objective
	}{
		{"a", "pagerank/hadoop2.7/medium", core.MinimizeTime},
		{"b", "als/spark2.1/medium", core.MinimizeTime},
		{"c", "lr/spark1.5/medium", core.MinimizeCost},
	}
	type row struct {
		panel string
		reps  []*study.TrajectoryReport
	}
	var rowsOut []row
	for i := 0; i < b.N; i++ {
		rowsOut = rowsOut[:0]
		for _, p := range panels {
			w, err := r.WorkloadByID(p.workload)
			if err != nil {
				b.Fatal(err)
			}
			var reps []*study.TrajectoryReport
			for _, mc := range []study.MethodConfig{{Method: study.MethodNaive}, {Method: study.MethodAugmented}} {
				rep, err := r.Trajectories(mc, w, p.objective, benchSeeds())
				if err != nil {
					b.Fatal(err)
				}
				reps = append(reps, rep)
			}
			rowsOut = append(rowsOut, row{panel: p.id + " " + p.workload, reps: reps})
		}
	}
	b.StopTimer()
	fmt.Printf("\nFig 10: paper: Augmented BO reaches the optimum sooner with narrower IQR\n")
	for _, ro := range rowsOut {
		fmt.Printf("  panel %s\n", ro.panel)
		for _, rep := range ro.reps {
			var iqr float64
			for _, p := range rep.Points {
				iqr += p.Q3 - p.Q1
			}
			fmt.Printf("    %-12s median steps %4.1f  mean IQR %.3f\n",
				rep.Label, rep.MedianStepOptimal, iqr/float64(len(rep.Points)))
		}
	}
}

// BenchmarkFig11StoppingTradeoff regenerates Figure 11: the stopping-
// criterion sweep per region under the cost objective.
func BenchmarkFig11StoppingTradeoff(b *testing.B) {
	r := benchRunner()
	var points []study.SweepPoint
	var regions map[string]study.Region
	for i := 0; i < b.N; i++ {
		var err error
		regions, err = r.ClassifyRegions(core.MinimizeCost, benchSeeds())
		if err != nil {
			b.Fatal(err)
		}
		points, err = r.StoppingSweep(core.MinimizeCost, benchSeeds(),
			[]float64{0.05, 0.10, 0.20},
			[]float64{0.9, 1.0, 1.1, 1.2, 1.3},
			regions)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	counts := map[study.Region]int{}
	for _, reg := range regions {
		counts[reg]++
	}
	fmt.Printf("\nFig 11 (cost objective): regions I=%d II=%d III=%d; paper recommends delta 1.1\n",
		counts[study.RegionI], counts[study.RegionII], counts[study.RegionIII])
	for _, reg := range []study.Region{study.RegionI, study.RegionII, study.RegionIII} {
		fmt.Printf("  %s:\n", reg)
		for _, p := range points {
			if p.Region == reg {
				fmt.Printf("    %-28s search %5.2f  norm cost %.3f\n", p.Label, p.SearchCost, p.FoundNorm)
			}
		}
	}
}

// BenchmarkFig12WinLoss regenerates Figure 12: the per-workload comparison
// of Augmented (delta 1.1) vs Naive (EI 10%) under the cost objective.
func BenchmarkFig12WinLoss(b *testing.B) {
	r := benchRunner()
	rep := benchCompare(b, r, core.MinimizeCost, 1.1)
	fmt.Printf("\nFig 12 (cost): paper: win 46 / same 39 / draw 17 / loss 5\n")
	fmt.Printf("  measured: win %d / same %d / draw %d / loss %d\n",
		rep.Counts[study.Win], rep.Counts[study.Same], rep.Counts[study.Draw], rep.Counts[study.Loss])
}

// BenchmarkFig13TimeCostProduct regenerates Figure 13: the same comparison
// under the time-cost-product objective with delta 1.05.
func BenchmarkFig13TimeCostProduct(b *testing.B) {
	r := benchRunner()
	rep := benchCompare(b, r, core.MinimizeTimeCostProduct, 1.05)
	fmt.Printf("\nFig 13 (time-cost product): paper: win 53 / same 14 / draw 32+2 / loss 6\n")
	fmt.Printf("  measured: win %d / same %d / draw %d / loss %d\n",
		rep.Counts[study.Win], rep.Counts[study.Same], rep.Counts[study.Draw], rep.Counts[study.Loss])
	var maxRed float64
	for _, p := range rep.Points {
		if p.SearchCostReduction > maxRed {
			maxRed = p.SearchCostReduction
		}
	}
	fmt.Printf("  max search-cost reduction: %.0f%% (paper: >50%%)\n", maxRed)
}

func benchCompare(b *testing.B, r *study.Runner, objective core.Objective, delta float64) *study.CompareReport {
	b.Helper()
	var rep *study.CompareReport
	for i := 0; i < b.N; i++ {
		regions, err := r.ClassifyRegions(core.MinimizeCost, benchSeeds())
		if err != nil {
			b.Fatal(err)
		}
		rep, err = r.Compare(
			study.MethodConfig{Method: study.MethodNaive, EIStop: 0.10},
			study.MethodConfig{Method: study.MethodAugmented, Delta: delta},
			objective, benchSeeds(), regions)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	return rep
}

// BenchmarkInitialPointSensitivity regenerates the Section III-C
// experiment: Naive BO's sensitivity to the fixed initial VM triplet.
func BenchmarkInitialPointSensitivity(b *testing.B) {
	r := benchRunner()
	var reports []study.InitialPointReport
	for i := 0; i < b.N; i++ {
		var err error
		reports, err = r.InitialPointSensitivity(core.MinimizeCost, map[string][]string{
			"paper-triplet": {"c4.xlarge", "m4.large", "r3.2xlarge"},
			"all-large":     {"c4.large", "m4.large", "r4.large"},
			"all-2xlarge":   {"c4.2xlarge", "m4.2xlarge", "r4.2xlarge"},
			"diverse":       {"c3.large", "m4.xlarge", "r4.2xlarge"},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Printf("\nSec III-C: paper: ~15%% of workloads miss the optimum within 6 for a bad triplet\n")
	for _, rep := range reports {
		fmt.Printf("  %-15s miss-within-6 rate %4.0f%%\n", rep.Label, 100*rep.FailFraction)
	}
}

// BenchmarkCategoryBreakdown reports search cost per Table I category —
// a finer view of which workload families are hard than the paper gives.
func BenchmarkCategoryBreakdown(b *testing.B) {
	r := benchRunner()
	var naive, augmented []study.GroupStats
	for i := 0; i < b.N; i++ {
		var err error
		naive, err = r.BreakdownByGroup(study.MethodConfig{Method: study.MethodNaive}, core.MinimizeCost, benchSeeds(), study.ByCategory)
		if err != nil {
			b.Fatal(err)
		}
		augmented, err = r.BreakdownByGroup(study.MethodConfig{Method: study.MethodAugmented}, core.MinimizeCost, benchSeeds(), study.ByCategory)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Printf("\nSearch cost per Table I category (cost objective, mean of per-workload medians):\n")
	fmt.Printf("  %-22s %-6s %-10s %-10s\n", "category", "n", "Naive", "Augmented")
	for i := range naive {
		fmt.Printf("  %-22s %-6d %-10.2f %-10.2f\n", naive[i].Group, naive[i].Workloads, naive[i].MeanStep, augmented[i].MeanStep)
	}
}

// --- Micro-benchmarks of the core components -----------------------------

// BenchmarkGPFit measures one GP hyperparameter-grid fit at catalog scale.
func BenchmarkGPFit(b *testing.B) {
	xs := make([][]float64, 18)
	ys := make([]float64, 18)
	for i := range xs {
		xs[i] = []float64{float64(i) / 18, float64(i % 3), float64(i % 2)}
		ys[i] = float64(i*i%7) + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gp.Fit(gp.Config{Kernel: kernel.Matern52}, xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestFit measures one Extra-Trees fit at the pairwise training
// set's full size (18 x 17 rows, 14 features).
func BenchmarkForestFit(b *testing.B) {
	const rows, dims = 18 * 17, 14
	xs := make([][]float64, rows)
	ys := make([]float64, rows)
	for i := range xs {
		xs[i] = make([]float64, dims)
		for j := range xs[i] {
			xs[i][j] = float64((i*31 + j*17) % 100)
		}
		ys[i] = float64(i % 13)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forest.Fit(forest.Config{Seed: int64(i)}, xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorMeasure measures one simulated cloud measurement.
func BenchmarkSimulatorMeasure(b *testing.B) {
	s := sim.New(cloud.DefaultCatalog())
	w, err := workloads.ByID("als/spark2.1/medium")
	if err != nil {
		b.Fatal(err)
	}
	vm := s.Catalog().VM(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Measure(w, vm, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSearchNaive measures one complete Naive BO search.
func BenchmarkFullSearchNaive(b *testing.B) {
	benchFullSearch(b, study.MethodConfig{Method: study.MethodNaive, EIStop: -1})
}

// BenchmarkFullSearchAugmented measures one complete Augmented BO search.
// No tracer is attached, so this doubles as the no-op observability
// guard: every emission site costs one nil check here.
func BenchmarkFullSearchAugmented(b *testing.B) {
	benchFullSearch(b, study.MethodConfig{Method: study.MethodAugmented, Delta: -1})
}

// BenchmarkFullSearchAugmentedTraced runs the same search with a metrics
// aggregator attached, quantifying the live-tracing overhead against the
// untraced benchmark above.
func BenchmarkFullSearchAugmentedTraced(b *testing.B) {
	target, err := NewSimulatedTarget("als/spark2.1/medium", 1)
	if err != nil {
		b.Fatal(err)
	}
	metrics := NewTraceMetrics()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := New(WithMethod(MethodAugmentedBO), WithDeltaThreshold(-1),
			WithSeed(int64(i)), WithTracer(metrics))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := opt.Search(target); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFullSearch(b *testing.B, mc study.MethodConfig) {
	b.Helper()
	r := benchRunner()
	w, err := r.WorkloadByID("als/spark2.1/medium")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunSearch(mc, w, core.MinimizeCost, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterSearch extends the search to the joint (VM type, node
// count) space CherryPick targeted: 72 candidates instead of 18, same
// optimizers.
func BenchmarkClusterSearch(b *testing.B) {
	single := sim.New(cloud.DefaultCatalog())
	clusterCatalog, err := cluster.NewCatalog(single.Catalog(), nil)
	if err != nil {
		b.Fatal(err)
	}
	cs := cluster.NewSimulator(single)
	ids := []string{"word2vec/spark2.1/medium", "lr/spark1.5/medium", "scan/hadoop2.7/medium", "als/spark2.1/medium"}

	type row struct {
		method string
		cost   float64
		norm   float64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, mc := range []study.MethodConfig{
			{Method: study.MethodNaive, EIStop: 0.1},
			{Method: study.MethodAugmented, Delta: 1.1},
		} {
			var sumCost, sumNorm float64
			n := 0
			for _, id := range ids {
				w, err := workloads.ByID(id)
				if err != nil {
					b.Fatal(err)
				}
				// Ground truth over the 72-config space.
				best := -1.0
				truth := make([]float64, clusterCatalog.Len())
				for ci := 0; ci < clusterCatalog.Len(); ci++ {
					res, err := cs.Truth(w, clusterCatalog.Config(ci))
					if err != nil {
						b.Fatal(err)
					}
					truth[ci] = res.CostUSD
					if best < 0 || res.CostUSD < best {
						best = res.CostUSD
					}
				}
				for seed := 0; seed < benchSeeds(); seed++ {
					opt, err := mc.Build(core.MinimizeCost, int64(seed))
					if err != nil {
						b.Fatal(err)
					}
					res, err := opt.Search(cs.NewTarget(clusterCatalog, w, int64(seed)))
					if err != nil {
						b.Fatal(err)
					}
					sumCost += float64(res.NumMeasurements())
					sumNorm += truth[res.BestIndex] / best
					n++
				}
			}
			rows = append(rows, row{method: mc.Label(), cost: sumCost / float64(n), norm: sumNorm / float64(n)})
		}
	}
	b.StopTimer()
	fmt.Printf("\nCluster-scale search (72 configs, cost objective, %d workloads x %d seeds):\n", len(ids), benchSeeds())
	for _, r := range rows {
		fmt.Printf("  %-26s mean search cost %.1f, found %.2fx optimal\n", r.method, r.cost, r.norm)
	}
}
