package arrow

import (
	"math"

	"repro/internal/faults"
)

// This file exposes the chaos harness: a fault-injecting Target wrapper
// for testing how a search configuration holds up against the failures a
// real cloud serves — transient capacity errors, permanently unavailable
// instance types, and corrupted telemetry. Pair it with WithRetry to see
// the measurement layer absorb the damage.

// ChaosConfig parameterizes NewChaosTarget. All rates are probabilities
// in [0,1]; the zero value injects nothing.
type ChaosConfig struct {
	// Seed drives every injection decision; equal seeds reproduce the
	// fault sequence exactly.
	Seed int64
	// TransientRate is the probability, per Measure call, of a
	// retryable failure (spot reclaim, throttled API, network reset).
	TransientRate float64
	// CorruptRate is the probability, per otherwise-successful Measure
	// call, of a corrupted outcome: NaN/Inf/negative time, negative
	// cost, a poisoned or truncated metric vector.
	CorruptRate float64
	// PermanentFailures lists candidate indices whose every measurement
	// fails with a permanent error.
	PermanentFailures []int
}

// ChaosStats counts the injected faults.
type ChaosStats struct {
	// Calls is the number of Measure calls seen.
	Calls int
	// Transient / Permanent / Corrupt count the injected faults.
	Transient int
	Permanent int
	Corrupt   int
}

// ChaosTarget wraps a Target with seeded fault injection. Construct with
// NewChaosTarget.
type ChaosTarget struct {
	t   Target
	inj *faults.Injector
}

var _ Target = (*ChaosTarget)(nil)

// NewChaosTarget builds a fault-injecting view of target.
func NewChaosTarget(target Target, cfg ChaosConfig) *ChaosTarget {
	return &ChaosTarget{
		t: target,
		inj: faults.NewInjector(faults.Config{
			Seed:          cfg.Seed,
			TransientRate: cfg.TransientRate,
			CorruptRate:   cfg.CorruptRate,
			Permanent:     cfg.PermanentFailures,
		}),
	}
}

// Stats returns a snapshot of the injection counters.
func (c *ChaosTarget) Stats() ChaosStats {
	s := c.inj.Stats()
	return ChaosStats{Calls: s.Calls, Transient: s.Transient, Permanent: s.Permanent, Corrupt: s.Corrupt}
}

// NumCandidates implements Target.
func (c *ChaosTarget) NumCandidates() int { return c.t.NumCandidates() }

// Features implements Target.
func (c *ChaosTarget) Features(i int) []float64 { return c.t.Features(i) }

// Name implements Target.
func (c *ChaosTarget) Name(i int) string { return c.t.Name(i) }

// Measure implements Target, injecting faults per the config. Injected
// transient errors satisfy Retryable; permanent ones do not.
func (c *ChaosTarget) Measure(i int) (Outcome, error) {
	p := c.inj.Decide(i)
	if err := c.inj.Err(i, p); err != nil {
		return Outcome{}, err
	}
	out, err := c.t.Measure(i)
	if err != nil {
		return Outcome{}, err
	}
	if p.Corrupt {
		out = corruptPublicOutcome(out, p.Kind)
	}
	return out, nil
}

// corruptPublicOutcome applies a corruption at the []float64 layer, where
// a truncated metric vector is expressible.
func corruptPublicOutcome(out Outcome, kind faults.CorruptKind) Outcome {
	switch kind {
	case faults.CorruptNaNTime:
		out.TimeSec = math.NaN()
	case faults.CorruptInfTime:
		out.TimeSec = math.Inf(1)
	case faults.CorruptNegativeTime:
		out.TimeSec = -out.TimeSec
	case faults.CorruptNegativeCost:
		out.CostUSD = -1
	case faults.CorruptNaNMetric:
		if len(out.Metrics) > 0 {
			out.Metrics = append([]float64(nil), out.Metrics...)
			out.Metrics[0] = math.NaN()
		} else {
			out.TimeSec = math.NaN()
		}
	case faults.CorruptShortMetrics:
		if len(out.Metrics) > 1 {
			out.Metrics = append([]float64(nil), out.Metrics[:len(out.Metrics)-1]...)
		} else {
			out.TimeSec = math.NaN()
		}
	}
	return out
}
