package arrow

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

const chaosWorkload = "pearson/spark2.1/medium"

// noSleep makes retry backoffs free for tests.
func noSleep(time.Duration) {}

func chaosMethods() []Method {
	return []Method{MethodNaiveBO, MethodAugmentedBO, MethodHybridBO, MethodRandomSearch}
}

// TestChaosTransientsDoNotChangeOutcomeDistribution is the acceptance
// check of the fault-tolerant measurement layer: with a 20% transient
// failure rate and the default retry policy, every method must land on
// the same distribution of best VMs over 20 seeds as its fault-free run.
func TestChaosTransientsDoNotChangeOutcomeDistribution(t *testing.T) {
	const seeds = 20
	for _, method := range chaosMethods() {
		t.Run(method.String(), func(t *testing.T) {
			faultFree := map[string]int{}
			chaotic := map[string]int{}
			injected := 0
			for seed := int64(0); seed < seeds; seed++ {
				target, err := NewSimulatedTarget(chaosWorkload, seed)
				if err != nil {
					t.Fatal(err)
				}
				opt, err := New(WithMethod(method), WithObjective(MinimizeCost), WithSeed(seed))
				if err != nil {
					t.Fatal(err)
				}
				want, err := opt.Search(target)
				if err != nil {
					t.Fatal(err)
				}
				faultFree[want.BestName]++

				chaos := NewChaosTarget(target, ChaosConfig{Seed: seed + 1, TransientRate: 0.2})
				optRetry, err := New(WithMethod(method), WithObjective(MinimizeCost), WithSeed(seed),
					WithRetry(RetryPolicy{Seed: seed, Sleep: noSleep}))
				if err != nil {
					t.Fatal(err)
				}
				got, err := optRetry.Search(chaos)
				if err != nil {
					t.Fatalf("seed %d: chaos search failed: %v", seed, err)
				}
				if got.Partial {
					t.Fatalf("seed %d: chaos search returned a partial result", seed)
				}
				chaotic[got.BestName]++
				injected += chaos.Stats().Transient
			}
			if injected == 0 {
				t.Fatal("the chaos target injected no faults; the test proves nothing")
			}
			for name, n := range faultFree {
				if chaotic[name] != n {
					t.Errorf("best-VM distribution shifted under faults: fault-free %v, chaotic %v", faultFree, chaotic)
					break
				}
			}
		})
	}
}

// TestChaosPermanentFailureQuarantinesCandidate checks the second half of
// the acceptance criterion: a permanently failing, non-optimal candidate
// is quarantined — recorded in Failures — without aborting the search,
// and the search still finds the fault-free best VM.
func TestChaosPermanentFailureQuarantinesCandidate(t *testing.T) {
	target, err := NewSimulatedTarget(chaosWorkload, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive fault-free search establishes the true best.
	opts := []Option{
		WithMethod(MethodAugmentedBO), WithObjective(MinimizeCost),
		WithSeed(4), WithDeltaThreshold(-1),
	}
	opt, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := opt.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	down := (want.BestIndex + 1) % target.NumCandidates()

	chaos := NewChaosTarget(target, ChaosConfig{Seed: 2, TransientRate: 0.2, PermanentFailures: []int{down}})
	optRetry, err := New(append(opts, WithRetry(RetryPolicy{Seed: 2, Sleep: noSleep}))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := optRetry.Search(chaos)
	if err != nil {
		t.Fatalf("a permanently failing candidate must not abort the search: %v", err)
	}
	if res.Partial {
		t.Fatal("result should not be partial")
	}
	found := false
	for _, f := range res.Failures {
		if f.Index == down {
			found = true
			if f.Attempts != 1 {
				t.Errorf("permanent failure retried %d times, want none", f.Attempts-1)
			}
			if f.Name != target.Name(down) {
				t.Errorf("failure name = %q, want %q", f.Name, target.Name(down))
			}
		}
	}
	if !found {
		t.Fatalf("failures = %+v, want candidate %d quarantined", res.Failures, down)
	}
	if res.BestIndex != want.BestIndex {
		t.Errorf("best = %s, fault-free best = %s", res.BestName, want.BestName)
	}
	for _, obs := range res.Observations {
		if obs.Index == down {
			t.Error("the quarantined candidate still shows up in the observations")
		}
	}
}

// TestChaosCorruptionAbsorbedByRetries checks that corrupted outcomes —
// NaN/Inf/negative time, truncated metric vectors — are remeasured by the
// retry layer instead of poisoning the surrogates.
func TestChaosCorruptionAbsorbedByRetries(t *testing.T) {
	target, err := NewSimulatedTarget(chaosWorkload, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(WithMethod(MethodAugmentedBO), WithObjective(MinimizeCost), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	want, err := opt.Search(target)
	if err != nil {
		t.Fatal(err)
	}

	chaos := NewChaosTarget(target, ChaosConfig{Seed: 9, CorruptRate: 0.3})
	optRetry, err := New(WithMethod(MethodAugmentedBO), WithObjective(MinimizeCost), WithSeed(6),
		WithRetry(RetryPolicy{Seed: 9, Sleep: noSleep}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := optRetry.Search(chaos)
	if err != nil {
		t.Fatal(err)
	}
	if chaos.Stats().Corrupt == 0 {
		t.Fatal("no corruption injected; the test proves nothing")
	}
	if got.Partial || len(got.Failures) != 0 {
		t.Fatalf("corruption should be absorbed: partial=%v failures=%+v", got.Partial, got.Failures)
	}
	if got.BestIndex != want.BestIndex {
		t.Errorf("best under corruption = %s, fault-free = %s", got.BestName, want.BestName)
	}
}

// TestChaosPartialResultOnTotalOutage: when every candidate is down, the
// search must hand back a non-nil result carrying the failure records,
// not a bare error.
func TestChaosPartialResultOnTotalOutage(t *testing.T) {
	target, err := NewSimulatedTarget(chaosWorkload, 1)
	if err != nil {
		t.Fatal(err)
	}
	down := make([]int, target.NumCandidates())
	for i := range down {
		down[i] = i
	}
	chaos := NewChaosTarget(target, ChaosConfig{Seed: 1, PermanentFailures: down})
	opt, err := New(WithMethod(MethodHybridBO), WithObjective(MinimizeCost), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(chaos)
	if !errors.Is(err, ErrAllCandidatesFailed) {
		t.Fatalf("error = %v, want ErrAllCandidatesFailed", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("result = %+v, want a non-nil partial result", res)
	}
	if res.BestIndex != -1 || res.BestName != "" {
		t.Errorf("best = (%d, %q), want (-1, empty) when nothing was measured", res.BestIndex, res.BestName)
	}
	if len(res.Failures) == 0 {
		t.Error("no failure records in the salvaged result")
	}
	for _, f := range res.Failures {
		if f.Reason == "" {
			t.Errorf("failure %d has no reason text", f.Index)
		}
	}
}

// TestChaosStatsCount sanity-checks the injection counters.
func TestChaosStatsCount(t *testing.T) {
	target, err := NewSimulatedTarget(chaosWorkload, 1)
	if err != nil {
		t.Fatal(err)
	}
	chaos := NewChaosTarget(target, ChaosConfig{Seed: 5, TransientRate: 1})
	if _, err := chaos.Measure(0); err == nil {
		t.Fatal("rate-1 transient injection should fail every measurement")
	} else if !Retryable(err) {
		t.Errorf("injected transient error %v should be retryable", err)
	}
	chaos2 := NewChaosTarget(target, ChaosConfig{Seed: 5, PermanentFailures: []int{3}})
	if _, err := chaos2.Measure(3); err == nil {
		t.Fatal("permanent candidate should fail")
	} else if Retryable(err) {
		t.Errorf("injected permanent error %v should not be retryable", err)
	}
	if _, err := chaos2.Measure(4); err != nil {
		t.Fatalf("healthy candidate failed: %v", err)
	}
	s := chaos2.Stats()
	if s.Calls != 2 || s.Permanent != 1 {
		t.Errorf("stats = %+v, want 2 calls and 1 permanent injection", s)
	}
}

// TestChaosSeedReproducible: equal seeds produce identical fault
// sequences.
func TestChaosSeedReproducible(t *testing.T) {
	target, err := NewSimulatedTarget(chaosWorkload, 1)
	if err != nil {
		t.Fatal(err)
	}
	trace := func() string {
		chaos := NewChaosTarget(target, ChaosConfig{Seed: 42, TransientRate: 0.5, CorruptRate: 0.5})
		s := ""
		for i := 0; i < target.NumCandidates(); i++ {
			if _, err := chaos.Measure(i); err != nil {
				s += "x"
			} else {
				s += "."
			}
		}
		return fmt.Sprintf("%s %+v", s, chaos.Stats())
	}
	if a, b := trace(), trace(); a != b {
		t.Errorf("same seed, different fault sequences:\n%s\n%s", a, b)
	}
}
