// Command arrow-bench converts `go test -bench` output into a JSON report
// mapping each benchmark to its ns/op, B/op and allocs/op. `make bench`
// pipes the hot-path benchmarks through it to produce BENCH_PR2.json, so
// performance regressions show up as a reviewable diff.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | arrow-bench -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "arrow-bench:", err)
		os.Exit(1)
	}
}

// Metrics is one benchmark's measured costs. BytesPerOp and AllocsPerOp
// are present only when the run used -benchmem.
type Metrics struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("arrow-bench", flag.ContinueOnError)
	outPath := fs.String("o", "", "write the JSON report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	report, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(report) == 0 {
		return fmt.Errorf("no benchmark result lines found on stdin")
	}

	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// parseBench scans `go test -bench` output for result lines of the form
//
//	BenchmarkName-8   50   8012345 ns/op   1404032 B/op   511 allocs/op
//
// and returns them keyed by benchmark name with the -GOMAXPROCS suffix
// stripped. Repeated names (e.g. -count > 1) keep the last measurement.
func parseBench(in io.Reader) (map[string]Metrics, error) {
	report := make(map[string]Metrics)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a print line that happens to start with "Benchmark"
		}
		m := Metrics{Iterations: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
				ok = true
			case "B/op":
				m.BytesPerOp = &v
			case "allocs/op":
				m.AllocsPerOp = &v
			}
		}
		if ok {
			report[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}

// sortedNames is a test seam: the JSON encoder already sorts map keys, but
// textual summaries want a stable order too.
func sortedNames(report map[string]Metrics) []string {
	names := make([]string, 0, len(report))
	for name := range report {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
