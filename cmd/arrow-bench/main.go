// Command arrow-bench converts `go test -bench` output into a JSON report
// mapping each benchmark to its ns/op, B/op and allocs/op. `make bench`
// pipes the hot-path benchmarks through it to produce BENCH_PR3.json, so
// performance regressions show up as a reviewable diff. Custom metrics
// emitted via b.ReportMetric (e.g. the study cache's dedup-ratio) land in
// each benchmark's "extra" map.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | arrow-bench -o BENCH.json
//	arrow-bench -compare BENCH_PR2.json BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "arrow-bench:", err)
		os.Exit(1)
	}
}

// Metrics is one benchmark's measured costs. BytesPerOp and AllocsPerOp
// are present only when the run used -benchmem.
type Metrics struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units, e.g. "dedup-ratio".
	Extra map[string]float64 `json:"extra,omitempty"`
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("arrow-bench", flag.ContinueOnError)
	outPath := fs.String("o", "", "write the JSON report to this file instead of stdout")
	compare := fs.Bool("compare", false, "compare two JSON reports: arrow-bench -compare old.json new.json")
	guard := fs.String("guard", "", "with -compare, fail when a benchmark regresses past its budget: 'BenchmarkFullSearchAugmented=25,BenchmarkOther=10' (percent ns/op)")
	tables := fs.Bool("tables", false, "summarize multi-sample output (go test -bench -count=N) as a quartile table instead of JSON")
	markdown := fs.Bool("markdown", false, "with -tables, use Markdown table notation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *guard != "" && !*compare {
		return fmt.Errorf("-guard only applies with -compare")
	}
	if *markdown && !*tables {
		return fmt.Errorf("-markdown only applies with -tables")
	}
	if *tables && *compare {
		return fmt.Errorf("-tables and -compare are mutually exclusive")
	}
	if *tables {
		return runTables(in, out, *markdown)
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two reports: old.json new.json")
		}
		if err := runCompare(fs.Arg(0), fs.Arg(1), out); err != nil {
			return err
		}
		return runGuard(fs.Arg(0), fs.Arg(1), *guard, out)
	}

	report, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(report) == 0 {
		return fmt.Errorf("no benchmark result lines found on stdin")
	}

	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// parseBench scans `go test -bench` output for result lines of the form
//
//	BenchmarkName-8   50   8012345 ns/op   1404032 B/op   511 allocs/op
//
// and returns them keyed by benchmark name with the -GOMAXPROCS suffix
// stripped. Repeated names (e.g. -count > 1) keep the last measurement.
func parseBench(in io.Reader) (map[string]Metrics, error) {
	report := make(map[string]Metrics)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if name, m, ok := parseBenchLine(sc.Text()); ok {
			report[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}

// runCompare diffs two JSON reports benchmark by benchmark, printing
// old/new ns/op with the relative change, plus custom metrics and
// "(new)"/"(gone)" markers for benchmarks present on only one side.
// `make bench-compare` uses it to diff BENCH_PR3.json against
// BENCH_PR2.json.
func runCompare(oldPath, newPath string, out io.Writer) error {
	oldRep, err := readReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := readReport(newPath)
	if err != nil {
		return err
	}
	names := make(map[string]bool, len(oldRep)+len(newRep))
	for name := range oldRep {
		names[name] = true
	}
	for name := range newRep {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	fmt.Fprintf(out, "%-36s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range sorted {
		o, inOld := oldRep[name]
		n, inNew := newRep[name]
		switch {
		case !inOld:
			fmt.Fprintf(out, "%-36s %14s %14.0f %9s%s\n", name, "-", n.NsPerOp, "(new)", extraSuffix(n))
		case !inNew:
			fmt.Fprintf(out, "%-36s %14.0f %14s %9s\n", name, o.NsPerOp, "-", "(gone)")
		default:
			delta := "n/a"
			if o.NsPerOp != 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(n.NsPerOp-o.NsPerOp)/o.NsPerOp)
			}
			fmt.Fprintf(out, "%-36s %14.0f %14.0f %9s%s\n", name, o.NsPerOp, n.NsPerOp, delta, extraSuffix(n))
		}
	}
	return nil
}

// extraSuffix renders a benchmark's custom metrics in key order.
func extraSuffix(m Metrics) string {
	if len(m.Extra) == 0 {
		return ""
	}
	units := make([]string, 0, len(m.Extra))
	for unit := range m.Extra {
		units = append(units, unit)
	}
	sort.Strings(units)
	var sb strings.Builder
	for _, unit := range units {
		fmt.Fprintf(&sb, "  %s=%.4g", unit, m.Extra[unit])
	}
	return sb.String()
}

// runGuard enforces per-benchmark regression budgets against two
// reports already known to read cleanly (runCompare ran first). spec is
// a comma-separated list of name=percent entries; a guarded benchmark
// missing from either report fails, because a guard that silently
// evaluates nothing is worse than no guard. An empty spec is a no-op.
func runGuard(oldPath, newPath, spec string, out io.Writer) error {
	if spec == "" {
		return nil
	}
	oldRep, err := readReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := readReport(newPath)
	if err != nil {
		return err
	}
	var failures []string
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, budgetStr, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("bad -guard entry %q, want Name=percent", entry)
		}
		budget, err := strconv.ParseFloat(budgetStr, 64)
		if err != nil || budget < 0 {
			return fmt.Errorf("bad -guard budget in %q, want a non-negative percent", entry)
		}
		o, inOld := oldRep[name]
		n, inNew := newRep[name]
		switch {
		case !inOld:
			failures = append(failures, fmt.Sprintf("%s missing from baseline %s", name, oldPath))
		case !inNew:
			failures = append(failures, fmt.Sprintf("%s missing from %s", name, newPath))
		case o.NsPerOp <= 0:
			failures = append(failures, fmt.Sprintf("%s has a non-positive baseline ns/op", name))
		default:
			delta := 100 * (n.NsPerOp - o.NsPerOp) / o.NsPerOp
			if delta > budget {
				failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (%.0f -> %.0f ns/op), budget %.1f%%",
					name, delta, o.NsPerOp, n.NsPerOp, budget))
			} else {
				fmt.Fprintf(out, "guard ok: %s %+.1f%% within %.1f%% budget\n", name, delta, budget)
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench guard failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func readReport(path string) (map[string]Metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report map[string]Metrics
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return report, nil
}

// sortedNames is a test seam: the JSON encoder already sorts map keys, but
// textual summaries want a stable order too.
func sortedNames(report map[string]Metrics) []string {
	names := make([]string, 0, len(report))
	for name := range report {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
