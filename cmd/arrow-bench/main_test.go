package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkForestFit-8   	     148	   8012345 ns/op	 1404032 B/op	     511 allocs/op
BenchmarkForestPredictBatch-8  	  120000	      9876 ns/op	       0 B/op	       0 allocs/op
Benchmark output line that is not a result
BenchmarkGPFit-8        	      10	 120000000 ns/op
PASS
ok  	repro	12.3s
`

func TestParseBench(t *testing.T) {
	report, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BenchmarkForestFit", "BenchmarkForestPredictBatch", "BenchmarkGPFit"}
	if got := sortedNames(report); !reflect.DeepEqual(got, want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	fit := report["BenchmarkForestFit"]
	if fit.Iterations != 148 || fit.NsPerOp != 8012345 {
		t.Errorf("ForestFit = %+v", fit)
	}
	if fit.BytesPerOp == nil || *fit.BytesPerOp != 1404032 {
		t.Errorf("ForestFit B/op = %v", fit.BytesPerOp)
	}
	if fit.AllocsPerOp == nil || *fit.AllocsPerOp != 511 {
		t.Errorf("ForestFit allocs/op = %v", fit.AllocsPerOp)
	}
	// Without -benchmem the memory fields must be absent, not zero.
	gpFit := report["BenchmarkGPFit"]
	if gpFit.BytesPerOp != nil || gpFit.AllocsPerOp != nil {
		t.Errorf("GPFit memory fields = %v %v, want nil", gpFit.BytesPerOp, gpFit.AllocsPerOp)
	}
}

func TestParseBenchLastMeasurementWins(t *testing.T) {
	in := "BenchmarkX-4 10 200 ns/op\nBenchmarkX-4 10 100 ns/op\n"
	report, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := report["BenchmarkX"].NsPerOp; got != 100 {
		t.Errorf("ns/op = %v, want the last run's 100", got)
	}
}

func TestRunWritesJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	if err := run([]string{"-o", path}, strings.NewReader(sampleOutput), &stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report map[string]Metrics
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(report) != 3 {
		t.Errorf("report has %d entries, want 3", len(report))
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout not empty with -o: %q", stdout.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("expected an error for input without benchmark lines")
	}
}
