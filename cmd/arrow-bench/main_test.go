package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkForestFit-8   	     148	   8012345 ns/op	 1404032 B/op	     511 allocs/op
BenchmarkForestPredictBatch-8  	  120000	      9876 ns/op	       0 B/op	       0 allocs/op
Benchmark output line that is not a result
BenchmarkGPFit-8        	      10	 120000000 ns/op
PASS
ok  	repro	12.3s
`

func TestParseBench(t *testing.T) {
	report, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BenchmarkForestFit", "BenchmarkForestPredictBatch", "BenchmarkGPFit"}
	if got := sortedNames(report); !reflect.DeepEqual(got, want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	fit := report["BenchmarkForestFit"]
	if fit.Iterations != 148 || fit.NsPerOp != 8012345 {
		t.Errorf("ForestFit = %+v", fit)
	}
	if fit.BytesPerOp == nil || *fit.BytesPerOp != 1404032 {
		t.Errorf("ForestFit B/op = %v", fit.BytesPerOp)
	}
	if fit.AllocsPerOp == nil || *fit.AllocsPerOp != 511 {
		t.Errorf("ForestFit allocs/op = %v", fit.AllocsPerOp)
	}
	// Without -benchmem the memory fields must be absent, not zero.
	gpFit := report["BenchmarkGPFit"]
	if gpFit.BytesPerOp != nil || gpFit.AllocsPerOp != nil {
		t.Errorf("GPFit memory fields = %v %v, want nil", gpFit.BytesPerOp, gpFit.AllocsPerOp)
	}
}

func TestParseBenchLastMeasurementWins(t *testing.T) {
	in := "BenchmarkX-4 10 200 ns/op\nBenchmarkX-4 10 100 ns/op\n"
	report, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := report["BenchmarkX"].NsPerOp; got != 100 {
		t.Errorf("ns/op = %v, want the last run's 100", got)
	}
}

func TestRunWritesJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	if err := run([]string{"-o", path}, strings.NewReader(sampleOutput), &stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report map[string]Metrics
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(report) != 3 {
		t.Errorf("report has %d entries, want 3", len(report))
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout not empty with -o: %q", stdout.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("expected an error for input without benchmark lines")
	}
}

func TestParseBenchCustomMetrics(t *testing.T) {
	in := "BenchmarkStudyThroughputCold-4 1 780398197 ns/op 0.2857 dedup-ratio 12 B/op 3 allocs/op\n"
	report, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	m := report["BenchmarkStudyThroughputCold"]
	if m.NsPerOp != 780398197 {
		t.Errorf("ns/op = %v", m.NsPerOp)
	}
	if got := m.Extra["dedup-ratio"]; got != 0.2857 {
		t.Errorf("dedup-ratio = %v, want 0.2857", got)
	}
	// Pairs after the custom metric must still be parsed.
	if m.BytesPerOp == nil || *m.BytesPerOp != 12 {
		t.Errorf("B/op = %v, want 12", m.BytesPerOp)
	}
	// A benchmark without custom metrics keeps extra absent from the JSON.
	plain, err := parseBench(strings.NewReader("BenchmarkX-4 10 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(plain["BenchmarkX"])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "extra") {
		t.Errorf("empty extra map serialized: %s", data)
	}
}

func writeReport(t *testing.T, name string, report map[string]Metrics) string {
	t.Helper()
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareReports(t *testing.T) {
	oldPath := writeReport(t, "old.json", map[string]Metrics{
		"BenchmarkShared": {Iterations: 10, NsPerOp: 200},
		"BenchmarkGone":   {Iterations: 10, NsPerOp: 50},
	})
	newPath := writeReport(t, "new.json", map[string]Metrics{
		"BenchmarkShared": {Iterations: 10, NsPerOp: 100},
		"BenchmarkFresh":  {Iterations: 1, NsPerOp: 42, Extra: map[string]float64{"dedup-ratio": 0.64}},
	})
	var out bytes.Buffer
	if err := run([]string{"-compare", oldPath, newPath}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"-50.0%", "(new)", "(gone)", "dedup-ratio=0.64"} {
		if !strings.Contains(text, want) {
			t.Errorf("compare output missing %q:\n%s", want, text)
		}
	}
}

func TestCompareRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-compare", "only-one.json"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("one positional arg should fail")
	}
	good := writeReport(t, "good.json", map[string]Metrics{"BenchmarkX": {NsPerOp: 1}})
	if err := run([]string{"-compare", good, "/does/not/exist.json"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("missing report file should fail")
	}
}

func TestGuardPassesWithinBudget(t *testing.T) {
	oldPath := writeReport(t, "old.json", map[string]Metrics{
		"BenchmarkFullSearchAugmented": {Iterations: 10, NsPerOp: 1000},
	})
	newPath := writeReport(t, "new.json", map[string]Metrics{
		"BenchmarkFullSearchAugmented": {Iterations: 10, NsPerOp: 1200},
	})
	var out bytes.Buffer
	err := run([]string{"-compare", "-guard", "BenchmarkFullSearchAugmented=25", oldPath, newPath},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatalf("20%% regression within a 25%% budget should pass: %v", err)
	}
	if !strings.Contains(out.String(), "guard ok") {
		t.Errorf("output missing guard confirmation:\n%s", out.String())
	}
}

func TestGuardFailsPastBudget(t *testing.T) {
	oldPath := writeReport(t, "old.json", map[string]Metrics{
		"BenchmarkFullSearchAugmented": {Iterations: 10, NsPerOp: 1000},
	})
	newPath := writeReport(t, "new.json", map[string]Metrics{
		"BenchmarkFullSearchAugmented": {Iterations: 10, NsPerOp: 1400},
	})
	err := run([]string{"-compare", "-guard", "BenchmarkFullSearchAugmented=25", oldPath, newPath},
		strings.NewReader(""), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "regressed 40.0%") {
		t.Fatalf("40%% regression past a 25%% budget should fail, got %v", err)
	}
}

func TestGuardFailsOnMissingBenchmark(t *testing.T) {
	oldPath := writeReport(t, "old.json", map[string]Metrics{"BenchmarkOther": {NsPerOp: 5}})
	newPath := writeReport(t, "new.json", map[string]Metrics{"BenchmarkOther": {NsPerOp: 5}})
	err := run([]string{"-compare", "-guard", "BenchmarkFullSearchAugmented=25", oldPath, newPath},
		strings.NewReader(""), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "missing from baseline") {
		t.Fatalf("guarding an absent benchmark should fail, got %v", err)
	}
}

func TestGuardRejectsBadSpecs(t *testing.T) {
	good := writeReport(t, "good.json", map[string]Metrics{"BenchmarkX": {NsPerOp: 1}})
	for _, spec := range []string{"BenchmarkX", "BenchmarkX=fast", "BenchmarkX=-5"} {
		if err := run([]string{"-compare", "-guard", spec, good, good},
			strings.NewReader(""), &bytes.Buffer{}); err == nil {
			t.Errorf("spec %q should be rejected", spec)
		}
	}
	if err := run([]string{"-guard", "BenchmarkX=25"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("-guard without -compare should be rejected")
	}
}

func TestGuardMultipleEntries(t *testing.T) {
	oldPath := writeReport(t, "old.json", map[string]Metrics{
		"BenchmarkA": {NsPerOp: 100},
		"BenchmarkB": {NsPerOp: 100},
	})
	newPath := writeReport(t, "new.json", map[string]Metrics{
		"BenchmarkA": {NsPerOp: 105},
		"BenchmarkB": {NsPerOp: 180},
	})
	err := run([]string{"-compare", "-guard", "BenchmarkA=10, BenchmarkB=50", oldPath, newPath},
		strings.NewReader(""), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "BenchmarkB") || strings.Contains(err.Error(), "BenchmarkA regressed") {
		t.Fatalf("only BenchmarkB should fail, got %v", err)
	}
}
