package main

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// samples collects every measurement of one benchmark across a
// `go test -bench -count=N` run, one slice entry per result line.
type samples struct {
	nsPerOp     []float64
	bytesPerOp  []float64
	allocsPerOp []float64
}

// parseBenchLine parses one `go test -bench` result line, returning the
// benchmark name with the -GOMAXPROCS suffix stripped. ok is false for
// anything that is not a result line (including print lines that happen
// to start with "Benchmark").
func parseBenchLine(line string) (name string, m Metrics, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Metrics{}, false
	}
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Metrics{}, false
	}
	m = Metrics{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			m.NsPerOp = v
			ok = true
		case "B/op":
			m.BytesPerOp = &v
		case "allocs/op":
			m.AllocsPerOp = &v
		default:
			// A custom b.ReportMetric unit like "dedup-ratio".
			if m.Extra == nil {
				m.Extra = make(map[string]float64)
			}
			m.Extra[unit] = v
		}
	}
	return name, m, ok
}

// parseBenchSamples scans multi-sample `go test -bench -count=N` output,
// keeping every measurement per benchmark (where parseBench keeps only
// the last). The quartile tables are built from these.
func parseBenchSamples(in io.Reader) (map[string]*samples, error) {
	all := make(map[string]*samples)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		name, m, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		s := all[name]
		if s == nil {
			s = &samples{}
			all[name] = s
		}
		s.nsPerOp = append(s.nsPerOp, m.NsPerOp)
		if m.BytesPerOp != nil {
			s.bytesPerOp = append(s.bytesPerOp, *m.BytesPerOp)
		}
		if m.AllocsPerOp != nil {
			s.allocsPerOp = append(s.allocsPerOp, *m.AllocsPerOp)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return all, nil
}

// median of a sorted slice.
func median(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// quartiles returns Tukey's hinges (q1, median, q3): the medians of the
// lower and upper halves, the halves sharing the middle element when the
// sample count is odd. On a single sample all three collapse to it.
func quartiles(vals []float64) (q1, med, q3 float64) {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	n := len(sorted)
	med = median(sorted)
	if n < 2 {
		return med, med, med
	}
	q1 = median(sorted[:(n+1)/2])
	q3 = median(sorted[n/2:])
	return q1, med, q3
}

// fmtQuartiles renders "q1 / med / q3" with thousands grouping, or "-"
// when the metric was never reported (no -benchmem).
func fmtQuartiles(vals []float64) string {
	if len(vals) == 0 {
		return "-"
	}
	q1, med, q3 := quartiles(vals)
	return fmt.Sprintf("%s / %s / %s", group(q1), group(med), group(q3))
}

// group renders a value with underscore thousands separators, matching
// how Go source formats large literals; fractional values keep one digit
// and group their integer part the same way.
func group(v float64) string {
	digits := 0
	if v != float64(int64(v)) {
		digits = 1
	}
	s := strconv.FormatFloat(v, 'f', digits, 64)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	intPart, frac, _ := strings.Cut(s, ".")
	var sb strings.Builder
	for i, r := range intPart {
		if i > 0 && (len(intPart)-i)%3 == 0 {
			sb.WriteByte('_')
		}
		sb.WriteRune(r)
	}
	out := sb.String()
	if frac != "" {
		out += "." + frac
	}
	if neg {
		return "-" + out
	}
	return out
}

// runTables renders the quartile summary of multi-sample benchmark output
// as a table: one row per benchmark, quartiles (q1 / median / q3) for
// ns/op, B/op and allocs/op. markdown switches from aligned plain text to
// Markdown table notation, for pasting into PRs and job summaries.
func runTables(in io.Reader, out io.Writer, markdown bool) error {
	all, err := parseBenchSamples(in)
	if err != nil {
		return err
	}
	if len(all) == 0 {
		return fmt.Errorf("no benchmark result lines found on stdin")
	}
	names := make([]string, 0, len(all))
	for name := range all {
		names = append(names, name)
	}
	sort.Strings(names)

	if markdown {
		fmt.Fprintln(out, "| benchmark | n | ns/op (q1 / med / q3) | B/op (q1 / med / q3) | allocs/op (q1 / med / q3) |")
		fmt.Fprintln(out, "| :-- | --: | --: | --: | --: |")
		for _, name := range names {
			s := all[name]
			fmt.Fprintf(out, "| %s | %d | %s | %s | %s |\n",
				strings.TrimPrefix(name, "Benchmark"), len(s.nsPerOp),
				fmtQuartiles(s.nsPerOp), fmtQuartiles(s.bytesPerOp), fmtQuartiles(s.allocsPerOp))
		}
		return nil
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "BENCHMARK\tN\tNS/OP (Q1 / MED / Q3)\tB/OP (Q1 / MED / Q3)\tALLOCS/OP (Q1 / MED / Q3)")
	for _, name := range names {
		s := all[name]
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\n",
			strings.TrimPrefix(name, "Benchmark"), len(s.nsPerOp),
			fmtQuartiles(s.nsPerOp), fmtQuartiles(s.bytesPerOp), fmtQuartiles(s.allocsPerOp))
	}
	return tw.Flush()
}
