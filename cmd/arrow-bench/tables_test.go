package main

import (
	"bytes"
	"strings"
	"testing"
)

// multiSample mimics `go test -bench -count=5 -benchmem` output: five
// measurements per benchmark, one without -benchmem.
const multiSample = `goos: linux
BenchmarkA-8 100 500 ns/op 64 B/op 2 allocs/op
BenchmarkA-8 100 100 ns/op 64 B/op 2 allocs/op
BenchmarkA-8 100 300 ns/op 80 B/op 3 allocs/op
BenchmarkA-8 100 200 ns/op 64 B/op 2 allocs/op
BenchmarkA-8 100 400 ns/op 96 B/op 2 allocs/op
BenchmarkB-8 10 1000000 ns/op
BenchmarkB-8 10 3000000 ns/op
PASS
`

func TestQuartiles(t *testing.T) {
	tests := []struct {
		vals        []float64
		q1, med, q3 float64
	}{
		{[]float64{5}, 5, 5, 5},
		{[]float64{1, 2}, 1, 1.5, 2},
		{[]float64{500, 100, 300, 200, 400}, 200, 300, 400},
		{[]float64{1, 2, 3, 4}, 1.5, 2.5, 3.5},
	}
	for _, tt := range tests {
		q1, med, q3 := quartiles(tt.vals)
		if q1 != tt.q1 || med != tt.med || q3 != tt.q3 {
			t.Errorf("quartiles(%v) = (%v, %v, %v), want (%v, %v, %v)",
				tt.vals, q1, med, q3, tt.q1, tt.med, tt.q3)
		}
	}
}

func TestGroup(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{5, "5"},
		{1.5, "1.5"},
		{1234, "1_234"},
		{1234567.5, "1_234_567.5"},
		{-1234.5, "-1_234.5"},
		{1000000, "1_000_000"},
	}
	for _, tt := range tests {
		if got := group(tt.v); got != tt.want {
			t.Errorf("group(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestRunTablesPlain(t *testing.T) {
	var out bytes.Buffer
	if err := runTables(strings.NewReader(multiSample), &out, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"BENCHMARK", "A", "200 / 300 / 400", // ns/op hinges over 5 samples
		"64 / 64 / 80", // B/op hinges of {64,64,64,80,96}
		"2 / 2 / 2",    // allocs/op hinges of {2,2,2,2,3}
	} {
		if !strings.Contains(got, want) {
			t.Errorf("plain table missing %q:\n%s", want, got)
		}
	}
	// B has no -benchmem fields: the cells must render as "-".
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "B ") && !strings.Contains(line, "-") {
			t.Errorf("benchmark B should show '-' memory cells: %q", line)
		}
	}
}

func TestRunTablesMarkdown(t *testing.T) {
	var out bytes.Buffer
	if err := runTables(strings.NewReader(multiSample), &out, true); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"| benchmark |", "| :-- |", "| A | 5 |",
		"| B | 2 | 1_000_000 / 2_000_000 / 3_000_000 | - | - |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("markdown table missing %q:\n%s", want, got)
		}
	}
}

func TestRunTablesFlagValidation(t *testing.T) {
	if err := run([]string{"-markdown"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("-markdown without -tables should fail")
	}
	if err := run([]string{"-tables", "-compare"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("-tables with -compare should fail")
	}
	if err := run([]string{"-tables"}, strings.NewReader("nothing"), &bytes.Buffer{}); err == nil {
		t.Error("empty input should fail")
	}
}
