// Command arrow-catalog prints the study's inventory: the 18-type VM
// catalog with its published characteristics and the paper's numeric
// encoding, and the Table I application/workload inventory with resolved
// resource demands and study-set membership.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/cloud"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "arrow-catalog:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("arrow-catalog", flag.ContinueOnError)
	var (
		showVMs       = fs.Bool("vms", true, "print the VM catalog")
		showApps      = fs.Bool("apps", true, "print the Table I application inventory")
		showWorkloads = fs.Bool("workloads", false, "print every workload with resolved demands")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	catalog := cloud.DefaultCatalog()
	simulator := sim.New(catalog)

	if *showVMs {
		if err := printVMs(out, catalog); err != nil {
			return err
		}
	}
	if *showApps {
		if err := printApps(out, simulator); err != nil {
			return err
		}
	}
	if *showWorkloads {
		if err := printWorkloads(out, simulator); err != nil {
			return err
		}
	}
	return nil
}

func printVMs(out io.Writer, catalog *cloud.Catalog) error {
	fmt.Fprintf(out, "VM catalog (%d types; late-2017 us-east-1 on-demand pricing)\n\n", catalog.Len())
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tVCPUS\tMEM_GIB\tUSD/HR\tEBS_MIBPS\tSPEED\tENCODING\tDESCRIPTION")
	for i := 0; i < catalog.Len(); i++ {
		vm := catalog.VM(i)
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.3f\t%.0f\t%.2f\t%v\t%s\n",
			vm.Name(), vm.VCPUs, vm.MemGiB, vm.PricePerHr, vm.EBSMiBps, vm.CoreSpeed, vm.Encode(), vm.Description)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return nil
}

func printApps(out io.Writer, simulator *sim.Simulator) error {
	study := map[string]bool{}
	for _, w := range simulator.StudyWorkloads() {
		study[w.ID()] = true
	}
	apps := workloads.Applications()
	fmt.Fprintf(out, "Table I application inventory (%d applications; %d study workloads)\n\n",
		len(apps), len(study))
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "APPLICATION\tCATEGORY\tSYSTEMS\tIN_STUDY/CANDIDATES\tDESCRIPTION")
	for _, app := range apps {
		candidates, inStudy := 0, 0
		systems := ""
		for i, system := range app.Systems {
			if i > 0 {
				systems += ","
			}
			systems += system.String()
			for _, size := range workloads.Sizes() {
				candidates++
				if study[workloads.Resolve(app, system, size).ID()] {
					inStudy++
				}
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d/%d\t%s\n", app.Name, app.Category, systems, inStudy, candidates, app.Description)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return nil
}

func printWorkloads(out io.Writer, simulator *sim.Simulator) error {
	fmt.Fprintln(out, "Workloads (resolved demands; EXCL = OOM-excluded from the study set)")
	fmt.Fprintln(out)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "WORKLOAD\tCPU_CORE_S\tSERIAL\tWSET_GIB\tIO_GIB\tSTATUS")
	for _, w := range workloads.All() {
		status := "study"
		if !simulator.RunsEverywhere(w) {
			status = "EXCL"
		}
		d := w.Demands
		fmt.Fprintf(tw, "%s\t%.0f\t%.2f\t%.2f\t%.1f\t%s\n",
			w.ID(), d.CPUCoreSeconds, d.SerialFraction, d.WorkingSetGiB, d.IOGiB, status)
	}
	return tw.Flush()
}
