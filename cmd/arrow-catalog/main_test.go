package main

import (
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"VM catalog (18 types", "Table I", "c4.2xlarge", "als", "107 study workloads"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunWorkloads(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-vms=false", "-apps=false", "-workloads"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "EXCL") {
		t.Error("excluded workloads not marked")
	}
	if !strings.Contains(out, "classification/spark1.5/large") {
		t.Error("candidate workload missing")
	}
	// 135 candidates + headers.
	if lines := strings.Count(out, "\n"); lines < 135 {
		t.Errorf("only %d lines", lines)
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Error("unknown flag should fail")
	}
}
