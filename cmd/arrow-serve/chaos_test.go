package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	arrow "repro"
	"repro/internal/serve"
)

// TestChaosChild is not a test: it is the server process the kill -9
// chaos test spawns and murders. It runs only under the chaos env vars,
// serving until signalled (or killed).
func TestChaosChild(t *testing.T) {
	if os.Getenv("ARROW_SERVE_CHAOS_CHILD") == "" {
		t.Skip("helper process for TestServeCLIKillNineRecovery")
	}
	args := strings.Split(os.Getenv("ARROW_SERVE_CHAOS_ARGS"), "\x1f")
	if err := run(args, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "chaos child:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// chaosProc is one spawned server process.
type chaosProc struct {
	cmd    *exec.Cmd
	base   string
	stdout *syncBuffer
	stderr *syncBuffer
}

// spawnServer re-execs the test binary as a real arrow-serve process
// (the TestChaosChild entry point) so the chaos test can SIGKILL it —
// an in-process server cannot be killed mid-write, a subprocess can.
func spawnServer(t *testing.T, args ...string) *chaosProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestChaosChild$")
	cmd.Env = append(os.Environ(),
		"ARROW_SERVE_CHAOS_CHILD=1",
		"ARROW_SERVE_CHAOS_ARGS="+strings.Join(append([]string{"-addr", "127.0.0.1:0"}, args...), "\x1f"),
	)
	p := &chaosProc{cmd: cmd, stdout: &syncBuffer{}, stderr: &syncBuffer{}}
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	errPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { io.Copy(p.stdout, outPipe) }()
	go func() { io.Copy(p.stderr, errPipe) }()
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	deadline := time.Now().Add(20 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(p.stderr.String()); m != nil {
			p.base = "http://" + m[1]
			return p
		}
		if time.Now().After(deadline) {
			t.Fatalf("chaos child never announced its address:\nstderr: %s\nstdout: %s", p.stderr.String(), p.stdout.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// kill9 SIGKILLs the process and reaps it.
func (p *chaosProc) kill9(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

// terminate asks for a graceful exit and waits for it.
func (p *chaosProc) terminate(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("chaos child did not exit on SIGTERM:\n%s", p.stderr.String())
	}
}

// recoveryReport parses the JSON report the server prints to stdout on
// boot (the only '{'-line there; test-framework chatter never is).
func (p *chaosProc) recoveryReport(t *testing.T) serve.RecoveryReport {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(p.stdout.String()))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "{") {
			var report serve.RecoveryReport
			if err := json.Unmarshal([]byte(line), &report); err != nil {
				t.Fatalf("undecodable recovery report %q: %v", line, err)
			}
			return report
		}
	}
	t.Fatalf("no recovery report on stdout:\n%s", p.stdout.String())
	return serve.RecoveryReport{}
}

// httpClient is the minimal measuring client the chaos test drives over
// real HTTP against a real process.
type httpClient struct {
	t    *testing.T
	base string
}

func (c *httpClient) postJSON(path string, body any, out any) int {
	c.t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func (c *httpClient) getJSON(path string, out any) int {
	c.t.Helper()
	resp, err := http.Get(c.base + path)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func (c *httpClient) create(req serve.SessionRequest) string {
	c.t.Helper()
	var info serve.SessionInfo
	if st := c.postJSON("/v1/sessions", req, &info); st != http.StatusCreated {
		c.t.Fatalf("create: status %d", st)
	}
	return info.ID
}

func (c *httpClient) next(id string) arrow.Suggestion {
	c.t.Helper()
	var sug arrow.Suggestion
	if st := c.getJSON("/v1/sessions/"+id+"/next", &sug); st != http.StatusOK {
		c.t.Fatalf("next %s: status %d", id, st)
	}
	return sug
}

// step drives up to n observe rounds and returns how many were acked.
func (c *httpClient) step(id string, target arrow.Target, n int) int {
	c.t.Helper()
	acked := 0
	sug := c.next(id)
	for i := 0; i < n && !sug.Done; i++ {
		out, merr := target.Measure(sug.Index)
		var req serve.ObserveRequest
		if merr != nil {
			req = serve.ObserveRequest{Index: sug.Index, Failed: true, Reason: merr.Error()}
		} else {
			req = serve.ObserveRequest{Index: sug.Index, TimeSec: out.TimeSec, CostUSD: out.CostUSD, Metrics: out.Metrics}
		}
		var resp serve.ObserveResponse
		if st := c.postJSON("/v1/sessions/"+id+"/observe", req, &resp); st != http.StatusOK {
			c.t.Fatalf("observe %s: status %d", id, st)
		}
		acked++
		if resp.Next != nil {
			sug = *resp.Next
		} else {
			// The server acked early and is speculating; fetch the
			// follow-up, which the speculative plan makes a cache hit.
			sug = c.next(id)
		}
	}
	return acked
}

// nextBatch fetches k concurrent suggestions.
func (c *httpClient) nextBatch(id string, k int) []arrow.Suggestion {
	c.t.Helper()
	var resp serve.NextBatchResponse
	if st := c.postJSON("/v1/sessions/"+id+"/nextbatch", serve.NextBatchRequest{K: k}, &resp); st != http.StatusOK {
		c.t.Fatalf("nextbatch %s: status %d", id, st)
	}
	if len(resp.Suggestions) == 0 {
		c.t.Fatalf("nextbatch %s: empty batch", id)
	}
	return resp.Suggestions
}

// observe delivers one measurement for the candidate.
func (c *httpClient) observe(id string, target arrow.Target, index int) {
	c.t.Helper()
	out, merr := target.Measure(index)
	var req serve.ObserveRequest
	if merr != nil {
		req = serve.ObserveRequest{Index: index, Failed: true, Reason: merr.Error()}
	} else {
		req = serve.ObserveRequest{Index: index, TimeSec: out.TimeSec, CostUSD: out.CostUSD, Metrics: out.Metrics}
	}
	if st := c.postJSON("/v1/sessions/"+id+"/observe", req, nil); st != http.StatusOK {
		c.t.Fatalf("observe %s: status %d", id, st)
	}
}

// finish runs the session to completion and returns the raw result
// body, the byte-comparison artifact.
func (c *httpClient) finish(id string, target arrow.Target) []byte {
	c.t.Helper()
	c.step(id, target, 1<<20)
	resp, err := http.Get(c.base + "/v1/sessions/" + id + "/result")
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("result %s: status %d: %s", id, resp.StatusCode, body)
	}
	return body
}

// TestServeCLIKillNineRecovery is the tentpole chaos test: SIGKILL a
// real arrow-serve process mid-session, restart it over the same
// journal directory, and finish every session — with zero acknowledged
// observations lost and the result byte-identical to an uninterrupted
// run of the same session. Session C dies with batch suggestions
// pending, one of them observed out of order, and a speculative plan in
// flight: recovery must replay only the acked history (the batch record
// and the one observation — never an unacked fantasy) and still finish
// byte-identically.
func TestServeCLIKillNineRecovery(t *testing.T) {
	target, err := arrow.NewSimulatedTarget("als/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	reqA := serve.SessionRequest{Method: "augmented-bo", Seed: 42, Trace: true}
	reqB := serve.SessionRequest{Method: "naive-bo", Seed: 7}
	reqC := serve.SessionRequest{Method: "hybrid-bo", Seed: 11, Trace: true}

	// Uninterrupted reference runs (no journal, same session ids — B is
	// created in between only to keep the id sequence aligned).
	refBase, refShutdown := startServer(t)
	ref := &httpClient{t: t, base: refBase}
	refID := ref.create(reqA)
	want := ref.finish(refID, target)
	ref.create(reqB)
	refCID := ref.create(reqC)
	refSugs := ref.nextBatch(refCID, 3)
	if len(refSugs) > 1 {
		ref.observe(refCID, target, refSugs[1].Index)
	}
	wantC := ref.finish(refCID, target)
	refShutdown()

	// The victim process, journaling with fsync always.
	dir := filepath.Join(t.TempDir(), "journal")
	jargs := []string{"-journal-dir", dir, "-fsync", "always", "-replica", "chaos"}
	p1 := spawnServer(t, jargs...)
	c1 := &httpClient{t: t, base: p1.base}
	idA := c1.create(reqA)
	if idA != refID {
		t.Fatalf("id skew breaks the byte comparison: %s vs %s", idA, refID)
	}
	idB := c1.create(reqB)
	idC := c1.create(reqC)
	if idC != refCID {
		t.Fatalf("id skew breaks the byte comparison: %s vs %s", idC, refCID)
	}
	ackedA := c1.step(idA, target, 3)
	ackedB := c1.step(idB, target, 2)

	// Session C: take a batch of concurrent suggestions, observe one out
	// of order. The ack kicks off a speculative plan that is (at most
	// milliseconds later) still in flight when the process dies.
	sugsC := c1.nextBatch(idC, 3)
	if len(sugsC) != len(refSugs) {
		t.Fatalf("batch skew breaks the byte comparison: %d vs %d suggestions", len(sugsC), len(refSugs))
	}
	ackedC := 0
	if len(sugsC) > 1 {
		if sugsC[1].Index != refSugs[1].Index {
			t.Fatalf("batch skew: victim suggests %d, reference %d", sugsC[1].Index, refSugs[1].Index)
		}
		c1.observe(idC, target, sugsC[1].Index)
		ackedC = 1
	}

	// kill -9: no flush, no lease release, no goodbye.
	p1.kill9(t)

	// Restart over the same journal. The dead process's leases are
	// stolen (same replica name and a dead pid), every session replays.
	p2 := spawnServer(t, jargs...)
	report := p2.recoveryReport(t)
	if report.Recovered != 3 {
		t.Fatalf("recovered %d sessions, want 3 (report %+v)", report.Recovered, report)
	}
	// Only acked observations replay: the speculative plan and the
	// unobserved batch fantasies left no journal records.
	if report.Observations != ackedA+ackedB+ackedC {
		t.Fatalf("replayed %d observations, want %d acked (report %+v)", report.Observations, ackedA+ackedB+ackedC, report)
	}
	if len(report.Damaged) != 0 {
		t.Fatalf("fsync=always journal reported damage after kill -9: %v", report.Damaged)
	}

	// Finish every session against the restarted process. Zero lost
	// observations: sessions A and C must produce results byte-identical
	// to the uninterrupted runs, wall-stripped traces included.
	c2 := &httpClient{t: t, base: p2.base}
	got := c2.finish(idA, target)
	if !bytes.Equal(got, want) {
		t.Errorf("post-crash result diverged from uninterrupted run:\n got %s\nwant %s", got, want)
	}
	var resB serve.ResultResponse
	if err := json.Unmarshal(c2.finish(idB, target), &resB); err != nil {
		t.Fatal(err)
	}
	if resB.Result == nil || resB.Result.Partial {
		t.Fatalf("session B did not finish cleanly after recovery: %+v", resB.Result)
	}
	gotC := c2.finish(idC, target)
	if !bytes.Equal(gotC, wantC) {
		t.Errorf("post-crash batch session diverged from uninterrupted run:\n got %s\nwant %s", gotC, wantC)
	}

	p2.terminate(t)
}
