package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	arrow "repro"
	"repro/internal/registry"
	"repro/internal/serve"
)

// This file is the fast registry-mode cluster smoke that rides `go
// test` / make check: one process hosts the shard registry, three
// replicas — each with its OWN journal directory, no shared filesystem
// — lease shards from it over HTTP. It exercises the two failover
// paths end to end across real processes: SIGKILL one replica and let
// heartbeat expiry hand its shards (and its in-flight sessions, adopted
// from its directory) to the survivors with bumped lease epochs; then
// SIGTERM a -drain-migrate replica and check it streamed its live
// sessions to a successor before exiting. The nightly registry-mode
// soak scales the same topology to thousands of sessions.

// registryState fetches the lease table through the hosting process's
// serving port.
func registryState(t *testing.T, base string) *registry.StateResponse {
	t.Helper()
	resp, err := http.Get(base + "/registry/v1/state")
	if err != nil {
		t.Fatalf("registry state: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("registry state: status %d", resp.StatusCode)
	}
	var st registry.StateResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("undecodable registry state: %v", err)
	}
	return &st
}

// waitForState polls the registry until cond holds, returning the state
// that satisfied it.
func waitForState(t *testing.T, base, desc string, cond func(*registry.StateResponse) bool) *registry.StateResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := registryState(t, base)
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			dump, _ := json.Marshal(st)
			t.Fatalf("registry never reached %q: %s", desc, dump)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func containsShard(shards []int, shard int) bool {
	for _, s := range shards {
		if s == shard {
			return true
		}
	}
	return false
}

func TestRegistryClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster smoke skipped in -short mode")
	}
	target, err := arrow.NewSimulatedTarget("als/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	parent := t.TempDir()
	regProc := spawnServer(t,
		"-registry",
		"-registry-state", filepath.Join(parent, "registry.json"),
		"-lease-ttl", "2s",
	)

	const replicas = 3
	sc := &soakCluster{
		alive: make([]atomic.Bool, replicas),
		hc:    &http.Client{Timeout: 60 * time.Second},
	}
	for i := 0; i < replicas; i++ {
		args := []string{
			"-journal-dir", filepath.Join(parent, fmt.Sprintf("journal-%d", i)),
			"-fsync", "always",
			"-replica", fmt.Sprintf("smoke-%d", i),
			"-registry-addr", regProc.base,
			"-claim-shards", "3",
			"-snapshot-interval", "2",
			"-heartbeat-interval", "200ms",
			"-reclaim-interval", "200ms",
			"-session-ttl", "30s",
		}
		if i == replicas-1 {
			args = append(args, "-drain-migrate")
		}
		p := spawnServer(t, args...)
		sc.procs = append(sc.procs, p)
		sc.alive[i].Store(true)
	}

	// Boot order fixes the claim split: 3 + 3 + 2 of the 8 shards.
	heldBy := map[string][]int{}
	epochs := map[int]uint64{}
	pre := registryState(t, regProc.base)
	for _, l := range pre.Leases {
		if l.Holder == "" {
			t.Fatalf("shard %d unclaimed after cluster boot: %+v", l.Shard, pre.Leases)
		}
		heldBy[l.Holder] = append(heldBy[l.Holder], l.Shard)
		epochs[l.Shard] = l.Epoch
	}
	if len(heldBy["smoke-0"]) != 3 || len(heldBy["smoke-1"]) != 3 || len(heldBy["smoke-2"]) != 2 {
		t.Fatalf("unexpected claim split: %v", heldBy)
	}

	// Healthy-cluster traffic: a couple of sessions through the
	// retrying cluster client, observations acked == observed.
	for i := 0; i < 2; i++ {
		body, acked, err := soakSession(sc, soakRequest(i, false), target)
		if err != nil {
			t.Fatalf("healthy session %d: %v", i, err)
		}
		var res serve.ResultResponse
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("healthy session %d: undecodable result: %v", i, err)
		}
		if res.Result == nil || res.Result.Partial || len(res.Result.Observations) != acked {
			t.Fatalf("healthy session %d: %d acked, result %s", i, acked, body)
		}
	}

	// Three sessions pinned to the victim (a create answered by a
	// replica lives on that replica's shards), each two observations
	// in. DeltaThreshold -1 disarms the early stop so they are still
	// mid-flight when the process dies.
	longReq := func(seed int64) serve.SessionRequest {
		return serve.SessionRequest{Method: "augmented-bo", Seed: seed, DeltaThreshold: -1, MaxMeasurements: 8}
	}
	vc := &httpClient{t: t, base: sc.procs[0].base}
	var victimIDs []string
	for k := 0; k < 3; k++ {
		id := vc.create(longReq(int64(100 + k)))
		if got := vc.step(id, target, 2); got != 2 {
			t.Fatalf("session %s acked %d of 2 pre-kill observations", id, got)
		}
		victimIDs = append(victimIDs, id)
	}
	sc.alive[0].Store(false)
	sc.procs[0].kill9(t)

	// No release, no goodbye: the shards move by heartbeat expiry
	// alone, and every regrant mints a strictly larger epoch — the
	// fence that keeps a paused old owner from acking into them.
	post := waitForState(t, regProc.base, "victim's shards reassigned", func(st *registry.StateResponse) bool {
		for _, l := range st.Leases {
			if l.Holder == "smoke-0" || l.Holder == "" {
				return false
			}
		}
		return true
	})
	for _, l := range post.Leases {
		if containsShard(heldBy["smoke-0"], l.Shard) && l.Epoch <= epochs[l.Shard] {
			t.Errorf("reclaimed shard %d kept epoch %d (was %d)", l.Shard, l.Epoch, epochs[l.Shard])
		}
	}

	// The victim's sessions finish through the survivors, who adopted
	// them by scanning the victim's journal directory: zero lost acked
	// observations, no duplicates.
	for _, id := range victimIDs {
		body, total, err := driveSession(sc, id, "", target, 2)
		if err != nil {
			t.Fatalf("finishing adopted session %s: %v", id, err)
		}
		var res serve.ResultResponse
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("adopted session %s: undecodable result: %v", id, err)
		}
		if res.Result == nil || res.Result.Partial {
			t.Fatalf("adopted session %s did not finish cleanly: %s", id, body)
		}
		if len(res.Result.Observations) != total {
			t.Errorf("adopted session %s: %d observations in the result, %d acked on the wire",
				id, len(res.Result.Observations), total)
		}
	}

	// The survivors' stdout reclaim reports must cover exactly the
	// victim's shards.
	claimed := map[int]bool{}
	for i := 1; i < replicas; i++ {
		for _, line := range strings.Split(sc.procs[i].stdout.String(), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "{") {
				continue
			}
			var probe map[string]json.RawMessage
			if err := json.Unmarshal([]byte(line), &probe); err != nil || probe["claimed"] == nil {
				continue
			}
			var rep serve.ReclaimReport
			if err := json.Unmarshal([]byte(line), &rep); err != nil {
				t.Fatalf("undecodable reclaim report %q: %v", line, err)
			}
			for _, shard := range rep.Claimed {
				claimed[shard] = true
			}
		}
	}
	if len(claimed) != len(heldBy["smoke-0"]) {
		t.Errorf("survivors reclaimed shards %v, want the victim's %v", sortedKeys(claimed), heldBy["smoke-0"])
	}

	// Graceful exit second: a session mid-flight on the -drain-migrate
	// replica survives a SIGTERM by being streamed to a successor. Wait
	// for the dead victim to drop out of the live set first — the
	// drainer picks the first live peer by name, and a freshly-dead
	// "smoke-0" would sort ahead of "smoke-1".
	waitForState(t, regProc.base, "victim aged out of the live set", func(st *registry.StateResponse) bool {
		for _, r := range st.Replicas {
			if r.Replica == "smoke-0" && r.Live {
				return false
			}
		}
		return true
	})
	dc := &httpClient{t: t, base: sc.procs[2].base}
	drainID := dc.create(longReq(999))
	if got := dc.step(drainID, target, 2); got != 2 {
		t.Fatalf("drain session acked %d of 2 observations", got)
	}
	sc.alive[2].Store(false)
	sc.procs[2].terminate(t)

	var mig *serve.MigrateReport
	for _, line := range strings.Split(sc.procs[2].stdout.String(), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "{") || !strings.Contains(line, `"successor"`) {
			continue
		}
		mig = &serve.MigrateReport{}
		if err := json.Unmarshal([]byte(line), mig); err != nil {
			t.Fatalf("undecodable migration report %q: %v", line, err)
		}
	}
	if mig == nil {
		t.Fatalf("draining replica printed no migration report:\nstdout: %s\nstderr: %s",
			sc.procs[2].stdout.String(), sc.procs[2].stderr.String())
	}
	if mig.Successor != sc.procs[1].base {
		t.Errorf("drained to %q, want the surviving replica %q", mig.Successor, sc.procs[1].base)
	}
	if mig.Sessions != 1 || mig.Observations != 2 || len(mig.Damaged) != 0 {
		t.Errorf("migration report moved %d sessions / %d observations (damage %v), want 1/2 clean",
			mig.Sessions, mig.Observations, mig.Damaged)
	}

	// The migrated session finishes on the successor, nothing lost.
	body, total, err := driveSession(sc, drainID, sc.procs[1].base, target, 2)
	if err != nil {
		t.Fatalf("finishing migrated session: %v", err)
	}
	var res serve.ResultResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("migrated session: undecodable result: %v", err)
	}
	if res.Result == nil || res.Result.Partial || len(res.Result.Observations) != total {
		t.Errorf("migrated session: %d acked, result %s", total, body)
	}

	sc.procs[1].terminate(t)
	regProc.terminate(t)
}
