// Command arrow-serve runs the optimizers as a service: a long-running
// HTTP server where each client session is an interactive advisor — the
// server plans which VM to measure next, the client measures it and
// reports back, until the session's own stopping rule fires.
//
//	POST   /v1/sessions               open a session (method, seed, budget…)
//	GET    /v1/sessions               list live sessions
//	GET    /v1/sessions/{id}/next     which candidate to measure next
//	POST   /v1/sessions/{id}/nextbatch  up to k concurrent suggestions
//	POST   /v1/sessions/{id}/observe  report a measurement (or failure)
//	GET    /v1/sessions/{id}/result   the recommendation once done
//	DELETE /v1/sessions/{id}          abort now, salvaging a partial result
//	POST   /v1/migrate                adopt a shard streamed by a draining peer
//	GET    /healthz                   liveness + session count
//	GET    /metricsz                  aggregated telemetry counters
//
// The store holds at most -max-sessions advisors and evicts sessions
// idle past -session-ttl (evicted ids answer 410 Gone). Planning compute
// is bounded by -workers. After every acknowledged observation the
// server speculatively plans the following suggestion while the client
// is measuring, so the next GET next is a cache hit (-no-speculate
// restores the synchronous plan-on-demand path); /nextbatch hands out
// up to -batch concurrent suggestions per request, which the client may
// observe in any order. On SIGINT/SIGTERM the server stops accepting
// sessions, flushes every in-flight session to a salvaged partial
// result, drains the listener, then exits.
//
// With -journal-dir, sessions are durable: every state transition is
// appended to a write-ahead journal (fsync policy -fsync) before it is
// acknowledged, and on startup the journal is scanned — live sessions
// are rehydrated by deterministic replay (a recovery report goes to
// stdout), ended ones answer 410 across the restart. Several replicas
// may share one journal directory: each claims a disjoint set of shard
// leases (-replica names the claimant, -claim-shards caps the claim)
// and answers 421 for sessions the others own. Sessions survive both
// kill -9 and graceful rolling restarts with zero acknowledged
// observations lost.
//
// -snapshot-interval N journals a CRC'd checkpoint of each session
// every N accepted observations (config fingerprint, op history, resume
// script, trace), so recovery replays from the latest snapshot instead
// of the chain head — recovery time is bounded by the interval, not the
// session length. -compact-interval periodically rewrites each owned
// shard in place (atomic rename), dropping ended and damaged chains
// into a tombstone index (410s survive) and pre-snapshot history the
// snapshots already carry; each round prints one JSON stats line per
// compacted shard to stdout. -reclaim-interval makes survivor replicas
// periodically take over the shard leases of provably dead peers and
// adopt their live sessions, printing a JSON reclaim report when
// anything was claimed.
//
// Cross-host clusters replace the pid-checked filesystem lease files
// with a network registry. One process hosts the lease table with
// -registry (mounted under /registry/v1/, persisted to -registry-state,
// grants live -lease-ttl without renewal); every replica points at it
// with -registry-addr and then needs no shared filesystem — each keeps
// its own -journal-dir, heartbeats every -heartbeat-interval, and a
// replica that stops renewing loses its shards to a survivor, which
// adopts the sessions by scanning the dead peer's directory (the
// registry remembers whose directory holds what). -advertise is how
// peers reach this replica; -drain-migrate makes a graceful shutdown
// stream each owned shard's live sessions (latest snapshot + journal
// suffix) straight to a surviving replica, so planned restarts hand
// over in milliseconds instead of a lease timeout.
//
// Usage:
//
//	arrow-serve -addr :8080
//	arrow-serve -addr :8080 -audit audit.jsonl -max-sessions 128 -session-ttl 10m
//	arrow-serve -addr :8080 -journal-dir /var/lib/arrow/journal -fsync always
//	arrow-serve -addr :8080 -registry -registry-state /var/lib/arrow/registry.json -journal-dir /var/lib/arrow/j0
//	arrow-serve -addr :8081 -registry-addr http://host0:8080 -journal-dir /var/lib/arrow/j1 -drain-migrate
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"repro/internal/journal"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "arrow-serve:", err)
		os.Exit(1)
	}
}

// clusterPeer is what the maintenance loops need from registry mode,
// satisfied by both the HTTP client and the in-process LocalManager of
// a self-hosted registry.
type clusterPeer interface {
	Heartbeat() error
	State() (*registry.StateResponse, error)
}

// advertiseBase turns the bound listener address into a base URL peers
// can dial. A wildcard host (":8080" binds "[::]" or "0.0.0.0") is
// rewritten to the loopback address — right for single-host clusters
// and tests; multi-host deployments pass -advertise explicitly.
func advertiseBase(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// run parses flags, serves until a signal or until stop is closed, and
// returns after the graceful shutdown completed. stop is a test seam; a
// nil stop means serve until SIGINT/SIGTERM. Announcing the bound
// address (and everything else) goes to errOut.
func run(args []string, errOut io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("arrow-serve", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		maxSessions = fs.Int("max-sessions", serve.DefaultMaxSessions, "live session cap; creates past it answer 429")
		sessionTTL  = fs.Duration("session-ttl", serve.DefaultSessionTTL, "evict sessions idle longer than this (negative disables)")
		reqTimeout  = fs.Duration("request-timeout", serve.DefaultRequestTimeout, "per-request planning deadline (negative disables)")
		workers     = fs.Int("workers", 0, "max concurrent planning computations, 0 = GOMAXPROCS")
		auditPath   = fs.String("audit", "", "append a JSONL audit stream (requests, session lifecycle, search events) to this file")
		drainWait   = fs.Duration("drain", 10*time.Second, "how long shutdown waits for in-flight requests to drain")
		journalDir  = fs.String("journal-dir", "", "write-ahead session journal directory; empty disables durability")
		fsyncPolicy = fs.String("fsync", "always", "journal fsync policy: always (durable through kill -9) or never (faster, crash loses the unsynced tail)")
		replica     = fs.String("replica", "", "replica name for journal shard leases (default host-<hostname>)")
		claimShards = fs.Int("claim-shards", 0, "max journal shards to claim, 0 = all unclaimed; run R replicas with shards/R each")
		maxBatch    = fs.Int("batch", serve.DefaultMaxBatch, "per-request cap on the /nextbatch batch size k")
		noSpeculate = fs.Bool("no-speculate", false, "disable speculative planning; observe responses carry the next suggestion synchronously")

		snapInterval    = fs.Int("snapshot-interval", 0, "journal a session checkpoint every N accepted observations, 0 disables; recovery replays from the latest snapshot")
		compactInterval = fs.Duration("compact-interval", 0, "compact owned journal shards this often (drop ended/damaged chains and snapshotted history), 0 disables")
		compactMinBytes = fs.Int64("compact-min-bytes", 64<<10, "skip compacting shards smaller than this")
		compactRatio    = fs.Float64("compact-min-dead-ratio", 0.25, "skip rewrites that would shrink a shard by less than this fraction")
		reclaimInterval = fs.Duration("reclaim-interval", 0, "try to take over dead peers' journal shards this often, 0 disables")

		hostRegistry   = fs.Bool("registry", false, "host the cluster shard registry in this process (mounted under /registry/v1/)")
		registryState  = fs.String("registry-state", "", "persist the registry lease table to this file (with -registry), surviving registry restarts")
		registryAddr   = fs.String("registry-addr", "", "base URL of the cluster registry, e.g. http://host:8080; replaces filesystem shard leases with heartbeat leases")
		leaseTTL       = fs.Duration("lease-ttl", registry.DefaultLeaseTTL, "how long a registry shard lease lives without renewal (with -registry)")
		heartbeatEvery = fs.Duration("heartbeat-interval", time.Second, "how often to heartbeat the registry and renew shard leases (registry mode)")
		advertise      = fs.String("advertise", "", "base URL peers use to reach this replica (default http://<bound addr>)")
		drainMigrate   = fs.Bool("drain-migrate", false, "on graceful shutdown, stream owned shards' live sessions to a surviving replica (registry mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *hostRegistry && *registryAddr != "" {
		return fmt.Errorf("-registry and -registry-addr are exclusive: a registry host uses its own lease table in-process")
	}
	if *drainMigrate && !*hostRegistry && *registryAddr == "" {
		return fmt.Errorf("-drain-migrate needs registry mode (-registry or -registry-addr): filesystem leases have no fenced transfer")
	}
	if *heartbeatEvery <= 0 {
		return fmt.Errorf("-heartbeat-interval must be positive, got %v", *heartbeatEvery)
	}

	var tracer telemetry.Tracer
	if *auditPath != "" {
		f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("audit file: %w", err)
		}
		defer f.Close()
		jw := telemetry.NewJSONLWriter(f, false)
		defer jw.Flush()
		tracer = jw
	}

	// Bind before opening the journal: registry mode advertises the
	// bound address to peers, and the default -advertise derives from
	// it. Nothing is served until hs.Serve below.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	selfBase := *advertise
	if selfBase == "" {
		selfBase = advertiseBase(ln.Addr())
	}
	replicaName := *replica
	if replicaName == "" {
		host, _ := os.Hostname()
		replicaName = "host-" + host
	}

	var reg *registry.Registry
	if *hostRegistry {
		reg, err = registry.New(registry.Config{
			LeaseTTL:  *leaseTTL,
			StatePath: *registryState,
			Warnf: func(format string, args ...any) {
				fmt.Fprintf(errOut, "arrow-serve: registry: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
	}

	var peer clusterPeer
	var jnl *journal.Journal
	if *journalDir != "" {
		sync, err := journal.ParseSync(*fsyncPolicy)
		if err != nil {
			return err
		}
		opts := []journal.Option{journal.WithSync(sync), journal.WithReplica(replicaName)}
		if *claimShards > 0 {
			opts = append(opts, journal.WithClaimLimit(*claimShards))
		}
		absDir, err := filepath.Abs(*journalDir)
		if err != nil {
			return fmt.Errorf("journal dir: %w", err)
		}
		switch {
		case *registryAddr != "":
			client := registry.NewClient(*registryAddr, replicaName, selfBase, absDir)
			// The registry may still be booting alongside this replica
			// (cluster bring-up is unordered); retry registration briefly
			// before giving up.
			var rerr error
			for deadline := time.Now().Add(10 * time.Second); ; {
				if rerr = client.Register(); rerr == nil {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("registering with %s: %w", *registryAddr, rerr)
				}
				time.Sleep(100 * time.Millisecond)
			}
			n, err := client.Shards()
			if err != nil {
				return err
			}
			opts = append(opts, journal.WithShards(n), journal.WithLeaseManager(client))
			peer = client
		case reg != nil:
			mgr := reg.LocalManager(replicaName, selfBase, absDir)
			opts = append(opts, journal.WithShards(reg.Shards()), journal.WithLeaseManager(mgr))
			peer = mgr
		}
		jnl, err = journal.Open(absDir, opts...)
		if err != nil {
			return err
		}
		defer jnl.Close()
	}

	if *maxBatch < 1 {
		return fmt.Errorf("-batch must be at least 1, got %d", *maxBatch)
	}
	srv := serve.New(serve.Config{
		MaxSessions:        *maxSessions,
		SessionTTL:         *sessionTTL,
		RequestTimeout:     *reqTimeout,
		Workers:            *workers,
		Tracer:             tracer,
		Journal:            jnl,
		SnapshotInterval:   *snapInterval,
		MaxBatch:           *maxBatch,
		DisableSpeculation: *noSpeculate,
		Registry:           reg,
	})

	if jnl != nil {
		// Rehydrate before the listener opens so no request can race the
		// replay. The report goes to stdout as one JSON object — the
		// machine-readable half of the crash-recovery contract.
		report, err := srv.Recover(context.Background())
		if err != nil {
			return fmt.Errorf("journal recovery: %w", err)
		}
		line, err := json.Marshal(report)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stdout, "%s\n", line)
		fmt.Fprintf(errOut, "arrow-serve: journal %s, replica %s owns shards %v; recovered %d sessions (%d observations), %d ended, %d torn tails, %d damaged\n",
			*journalDir, report.Replica, report.OwnedShards, report.Recovered, report.Observations, report.Ended, report.TruncatedTails, len(report.Damaged))
		for _, d := range report.Damaged {
			fmt.Fprintf(errOut, "arrow-serve: journal damage: %s\n", d)
		}
	}

	// Background journal maintenance: periodic shard compaction, dead-
	// peer shard reclaim, and (registry mode) the heartbeat/renew loop.
	// The first two print machine-readable JSON lines to stdout (like
	// the boot recovery report); all stop at shutdown.
	maint := make(chan struct{})
	defer close(maint)
	if jnl != nil && *compactInterval > 0 {
		go func() {
			tick := time.NewTicker(*compactInterval)
			defer tick.Stop()
			for {
				select {
				case <-maint:
					return
				case <-tick.C:
				}
				stats, err := srv.CompactJournal(journal.CompactOptions{
					MinBytes:     *compactMinBytes,
					MinDeadRatio: *compactRatio,
				})
				if err != nil {
					fmt.Fprintf(errOut, "arrow-serve: compaction: %v\n", err)
				}
				for _, st := range stats {
					if !st.Compacted {
						continue
					}
					if line, err := json.Marshal(st); err == nil {
						fmt.Fprintf(os.Stdout, "%s\n", line)
					}
				}
			}
		}()
	}
	if jnl != nil && *reclaimInterval > 0 {
		go func() {
			tick := time.NewTicker(*reclaimInterval)
			defer tick.Stop()
			for {
				select {
				case <-maint:
					return
				case <-tick.C:
				}
				report, err := srv.ReclaimShards(context.Background())
				if err != nil {
					fmt.Fprintf(errOut, "arrow-serve: shard reclaim: %v\n", err)
					continue
				}
				if len(report.Claimed) == 0 {
					continue
				}
				if line, err := json.Marshal(report); err == nil {
					fmt.Fprintf(os.Stdout, "%s\n", line)
				}
				fmt.Fprintf(errOut, "arrow-serve: reclaimed shards %v from dead peers; adopted %d sessions (%d snapshot restores)\n",
					report.Claimed, report.Recovered, report.SnapshotRestores)
			}
		}()
	}
	if jnl != nil && peer != nil {
		go func() {
			tick := time.NewTicker(*heartbeatEvery)
			defer tick.Stop()
			for {
				select {
				case <-maint:
					return
				case <-tick.C:
				}
				if err := peer.Heartbeat(); err != nil {
					fmt.Fprintf(errOut, "arrow-serve: heartbeat: %v\n", err)
				}
				lost, err := jnl.RenewLeases()
				if err != nil {
					fmt.Fprintf(errOut, "arrow-serve: lease renew: %v\n", err)
				}
				if len(lost) > 0 {
					evicted := srv.DropShards(lost)
					fmt.Fprintf(errOut, "arrow-serve: lost shard leases %v; evicted %d sessions for their new owner\n", lost, evicted)
				}
			}
		}()
	}

	hs := &http.Server{Handler: srv}
	mode := "filesystem leases"
	switch {
	case *registryAddr != "":
		mode = "registry " + *registryAddr
	case reg != nil:
		mode = fmt.Sprintf("hosting registry (%d shards, lease ttl %v)", reg.Shards(), reg.LeaseTTL())
	}
	fmt.Fprintf(errOut, "arrow-serve: listening on %s (max-sessions %d, session-ttl %v, workers %d, %s)\n",
		ln.Addr(), *maxSessions, *sessionTTL, *workers, mode)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	if stop == nil {
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
		defer signal.Stop(sigCh)
		select {
		case sig := <-sigCh:
			fmt.Fprintf(errOut, "arrow-serve: %v, shutting down\n", sig)
		case err := <-serveErr:
			return err
		}
	} else {
		select {
		case <-stop:
		case err := <-serveErr:
			return err
		}
	}

	// With -drain-migrate, hand owned shards to a surviving replica
	// before flushing: sessions keep running on the successor instead of
	// being salvaged here. The listener is still serving, so the
	// successor's lease transfer and any client retries land normally.
	if *drainMigrate && jnl != nil && peer != nil {
		if err := migrateOnDrain(jnl, srv, peer, replicaName, *drainWait, errOut); err != nil {
			fmt.Fprintf(errOut, "arrow-serve: drain migration: %v (remaining sessions will be salvaged; shards move by lease expiry)\n", err)
		}
	}

	// Flush every in-flight session to a salvaged partial result first —
	// those results stay readable while the listener drains — then stop
	// the listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(errOut, "arrow-serve: session flush incomplete: %v\n", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("draining listener: %w", err)
	}
	fmt.Fprintln(errOut, "arrow-serve: drained, bye")
	return nil
}

// migrateOnDrain picks the first live peer (by name) from the registry's
// view and streams every owned shard to it. The migration report goes
// to stdout as one JSON line, mirroring the recovery report.
func migrateOnDrain(jnl *journal.Journal, srv *serve.Server, peer clusterPeer, self string, wait time.Duration, errOut io.Writer) error {
	if len(jnl.Owned()) == 0 {
		return nil
	}
	st, err := peer.State()
	if err != nil {
		return fmt.Errorf("cluster state: %w", err)
	}
	var succ *registry.ReplicaInfo
	sort.Slice(st.Replicas, func(a, b int) bool { return st.Replicas[a].Replica < st.Replicas[b].Replica })
	for i := range st.Replicas {
		r := &st.Replicas[i]
		if r.Live && r.Replica != self && r.Addr != "" {
			succ = r
			break
		}
	}
	if succ == nil {
		return fmt.Errorf("no live successor registered")
	}
	ctx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()
	report, err := srv.MigrateShards(ctx, succ.Addr)
	if report != nil && len(report.Shards) > 0 {
		if line, jerr := json.Marshal(report); jerr == nil {
			fmt.Fprintf(os.Stdout, "%s\n", line)
		}
		fmt.Fprintf(errOut, "arrow-serve: migrated shards %v (%d sessions, %d observations) to %s at %s\n",
			report.Shards, report.Sessions, report.Observations, succ.Replica, succ.Addr)
	}
	return err
}
