// Command arrow-serve runs the optimizers as a service: a long-running
// HTTP server where each client session is an interactive advisor — the
// server plans which VM to measure next, the client measures it and
// reports back, until the session's own stopping rule fires.
//
//	POST   /v1/sessions               open a session (method, seed, budget…)
//	GET    /v1/sessions               list live sessions
//	GET    /v1/sessions/{id}/next     which candidate to measure next
//	POST   /v1/sessions/{id}/observe  report a measurement (or failure)
//	GET    /v1/sessions/{id}/result   the recommendation once done
//	DELETE /v1/sessions/{id}          abort now, salvaging a partial result
//	GET    /healthz                   liveness + session count
//	GET    /metricsz                  aggregated telemetry counters
//
// The store holds at most -max-sessions advisors and evicts sessions
// idle past -session-ttl (evicted ids answer 410 Gone). Planning compute
// is bounded by -workers. On SIGINT/SIGTERM the server stops accepting
// sessions, flushes every in-flight session to a salvaged partial
// result, drains the listener, then exits.
//
// Usage:
//
//	arrow-serve -addr :8080
//	arrow-serve -addr :8080 -audit audit.jsonl -max-sessions 128 -session-ttl 10m
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "arrow-serve:", err)
		os.Exit(1)
	}
}

// run parses flags, serves until a signal or until stop is closed, and
// returns after the graceful shutdown completed. stop is a test seam; a
// nil stop means serve until SIGINT/SIGTERM. Announcing the bound
// address (and everything else) goes to errOut.
func run(args []string, errOut io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("arrow-serve", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		maxSessions = fs.Int("max-sessions", serve.DefaultMaxSessions, "live session cap; creates past it answer 429")
		sessionTTL  = fs.Duration("session-ttl", serve.DefaultSessionTTL, "evict sessions idle longer than this (negative disables)")
		reqTimeout  = fs.Duration("request-timeout", serve.DefaultRequestTimeout, "per-request planning deadline (negative disables)")
		workers     = fs.Int("workers", 0, "max concurrent planning computations, 0 = GOMAXPROCS")
		auditPath   = fs.String("audit", "", "append a JSONL audit stream (requests, session lifecycle, search events) to this file")
		drainWait   = fs.Duration("drain", 10*time.Second, "how long shutdown waits for in-flight requests to drain")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	var tracer telemetry.Tracer
	if *auditPath != "" {
		f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("audit file: %w", err)
		}
		defer f.Close()
		jw := telemetry.NewJSONLWriter(f, false)
		defer jw.Flush()
		tracer = jw
	}

	srv := serve.New(serve.Config{
		MaxSessions:    *maxSessions,
		SessionTTL:     *sessionTTL,
		RequestTimeout: *reqTimeout,
		Workers:        *workers,
		Tracer:         tracer,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	fmt.Fprintf(errOut, "arrow-serve: listening on %s (max-sessions %d, session-ttl %v, workers %d)\n",
		ln.Addr(), *maxSessions, *sessionTTL, *workers)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	if stop == nil {
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
		defer signal.Stop(sigCh)
		select {
		case sig := <-sigCh:
			fmt.Fprintf(errOut, "arrow-serve: %v, shutting down\n", sig)
		case err := <-serveErr:
			return err
		}
	} else {
		select {
		case <-stop:
		case err := <-serveErr:
			return err
		}
	}

	// Flush every in-flight session to a salvaged partial result first —
	// those results stay readable while the listener drains — then stop
	// the listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(errOut, "arrow-serve: session flush incomplete: %v\n", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("draining listener: %w", err)
	}
	fmt.Fprintln(errOut, "arrow-serve: drained, bye")
	return nil
}
