package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// syncBuffer makes the server's stderr readable while run is writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startServer runs the CLI on an ephemeral port and returns its base
// URL plus a shutdown function that waits for the graceful exit.
func startServer(t *testing.T, extraArgs ...string) (string, func() error) {
	t.Helper()
	var errOut syncBuffer
	stop := make(chan struct{})
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { done <- run(args, &errOut, stop) }()

	deadline := time.Now().Add(5 * time.Second)
	var addr string
	for addr == "" {
		if m := listenRE.FindStringSubmatch(errOut.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address:\n%s", errOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	var shutdownOnce sync.Once
	var shutdownErr error
	shutdown := func() error {
		shutdownOnce.Do(func() {
			close(stop)
			select {
			case shutdownErr = <-done:
			case <-time.After(10 * time.Second):
				shutdownErr = fmt.Errorf("server did not exit:\n%s", errOut.String())
			}
		})
		return shutdownErr
	}
	t.Cleanup(func() { shutdown() })
	return "http://" + addr, shutdown
}

func TestServeCLIEndToEnd(t *testing.T) {
	audit := filepath.Join(t.TempDir(), "audit.jsonl")
	base, shutdown := startServer(t, "-audit", audit, "-max-sessions", "8")

	// Open a session and step it once over real HTTP.
	body := strings.NewReader(`{"method":"random-search","seed":7,"max_measurements":2}`)
	resp, err := http.Post(base+"/v1/sessions", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || info.ID == "" {
		t.Fatalf("create: status %d, id %q", resp.StatusCode, info.ID)
	}

	resp, err = http.Get(base + "/v1/sessions/" + info.ID + "/next")
	if err != nil {
		t.Fatal(err)
	}
	var sug struct {
		Index int `json:"index"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sug); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	obs := fmt.Sprintf(`{"index":%d,"time_sec":4.2,"cost_usd":0.1}`, sug.Index)
	resp, err = http.Post(base+"/v1/sessions/"+info.ID+"/observe", "application/json", strings.NewReader(obs))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	// Graceful exit must flush the in-flight session and report no error.
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The audit stream must be valid JSONL carrying both HTTP and
	// session lifecycle events, stamped with the session id.
	f, err := os.Open(audit)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, skipped, err := telemetry.ReadAll(f)
	if err != nil || skipped != 0 {
		t.Fatalf("audit stream: %d skipped lines, err %v", skipped, err)
	}
	seen := map[telemetry.Kind]bool{}
	stamped := false
	for _, e := range events {
		seen[e.Kind] = true
		if e.Workload == info.ID {
			stamped = true
		}
	}
	for _, kind := range []telemetry.Kind{
		telemetry.KindHTTPRequest,
		telemetry.KindSessionCreate,
		telemetry.KindSessionEnd,
		telemetry.KindSearchStart,
	} {
		if !seen[kind] {
			t.Errorf("audit stream missing %s events", kind)
		}
	}
	if !stamped {
		t.Error("no audit event stamped with the session id")
	}
}

func TestServeCLIRejectsBadFlags(t *testing.T) {
	var errOut syncBuffer
	if err := run([]string{"-addr"}, &errOut, nil); err == nil {
		t.Error("dangling -addr should fail")
	}
	if err := run([]string{"positional"}, &errOut, nil); err == nil {
		t.Error("positional args should fail")
	}
	if err := run([]string{"-audit", "/does/not/exist/audit.jsonl", "-addr", "127.0.0.1:0"}, &errOut, nil); err == nil {
		t.Error("unwritable audit path should fail")
	}
}

func TestServeCLIAddrInUse(t *testing.T) {
	base, _ := startServer(t)
	var errOut syncBuffer
	addr := strings.TrimPrefix(base, "http://")
	if err := run([]string{"-addr", addr}, &errOut, make(chan struct{})); err == nil {
		t.Error("binding a taken address should fail")
	}
}
