package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	arrow "repro"
	"repro/internal/serve"
)

// This file is the multi-replica chaos/soak harness: many sessions
// pipelined across four real arrow-serve processes sharing one journal
// directory, one process SIGKILLed mid-traffic, survivors reclaiming
// its shard leases and adopting its sessions, with snapshots and
// concurrent shard compaction on the whole time. Invariants held at
// scale: zero acknowledged observations lost, sampled sessions finish
// with result and trace sub-objects byte-identical to journal-less
// reference runs, and the reclaim reports bound per-session recovery
// latency.
//
// The default run is the short mode that rides `go test` / make check
// (~120 sessions); `make soak` sets ARROW_SOAK_SESSIONS=10000 for the
// nightly 10k-session run.

// soakSessions picks the session count: the env override, or the short
// default.
func soakSessions() int {
	if v := os.Getenv("ARROW_SOAK_SESSIONS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 120
}

// soakRegistryMode switches the cluster topology: ARROW_SOAK_REGISTRY=1
// replaces the shared journal directory and its pid-checked lease files
// with a network registry process, per-replica journal directories and
// heartbeat leases — the cross-host deployment, soaked on one host.
func soakRegistryMode() bool {
	switch os.Getenv("ARROW_SOAK_REGISTRY") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// soakCluster tracks the replica processes and which are still alive.
type soakCluster struct {
	procs []*chaosProc
	alive []atomic.Bool
	hc    *http.Client
}

// bases snapshots the base URLs of the live replicas.
func (sc *soakCluster) bases() []string {
	var out []string
	for i, p := range sc.procs {
		if sc.alive[i].Load() {
			out = append(out, p.base)
		}
	}
	return out
}

// errRetry is the sentinel a soak request returns when every replica
// answered "not mine" (421), "not yet adopted" (404), "over capacity"
// (429) or was unreachable — all transient during a kill/reclaim window.
var errRetry = fmt.Errorf("no replica could serve the request yet")

// tryEach fires the request at preferBase first, then every live
// replica, returning the first conclusive answer. 421/404/429 and
// connection errors are inconclusive: the session's shard may be
// mid-reclaim.
func (sc *soakCluster) tryEach(method, preferBase, path string, body []byte) (int, []byte, string, error) {
	order := sc.bases()
	if preferBase != "" {
		order = append([]string{preferBase}, order...)
	}
	for _, base := range order {
		req, err := http.NewRequest(method, base+path, bytes.NewReader(body))
		if err != nil {
			return 0, nil, "", err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := sc.hc.Do(req)
		if err != nil {
			continue // dead or dying replica
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		switch resp.StatusCode {
		case http.StatusMisdirectedRequest, http.StatusNotFound, http.StatusTooManyRequests:
			continue
		}
		return resp.StatusCode, data, base, nil
	}
	return 0, nil, "", errRetry
}

// request retries tryEach until a conclusive answer or the deadline.
func (sc *soakCluster) request(method, preferBase, path string, body []byte) (int, []byte, string, error) {
	deadline := time.Now().Add(90 * time.Second)
	for {
		st, data, base, err := sc.tryEach(method, preferBase, path, body)
		if err == nil {
			return st, data, base, nil
		}
		if time.Now().After(deadline) {
			return 0, nil, "", fmt.Errorf("%s %s: %w", method, path, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// soakSession drives one session start to finish through the cluster,
// returning the final result body and the acknowledged observation
// count. Connection failures mid-kill are retried; an observe whose ack
// was lost on the wire shows up as a 409 on retry and still counts — it
// is journaled server-side, which is exactly what "acked" means here.
func soakSession(sc *soakCluster, req serve.SessionRequest, target arrow.Target) ([]byte, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	st, data, base, err := sc.request("POST", "", "/v1/sessions", body)
	if err != nil {
		return nil, 0, err
	}
	if st != http.StatusCreated {
		return nil, 0, fmt.Errorf("create: status %d: %s", st, data)
	}
	var info serve.SessionInfo
	if err := json.Unmarshal(data, &info); err != nil {
		return nil, 0, err
	}
	return driveSession(sc, info.ID, base, target, 0)
}

// driveSession finishes an already-created session through the cluster
// from wherever it stands — the session may have been created elsewhere
// and adopted since — returning the result body and the total acked
// observation count, starting from acked.
func driveSession(sc *soakCluster, id, base string, target arrow.Target, acked int) ([]byte, int, error) {
	for {
		st, data, b, err := sc.request("GET", base, "/v1/sessions/"+id+"/next", nil)
		if err != nil {
			return nil, acked, err
		}
		base = b
		if st != http.StatusOK {
			return nil, acked, fmt.Errorf("next %s: status %d: %s", id, st, data)
		}
		var sug arrow.Suggestion
		if err := json.Unmarshal(data, &sug); err != nil {
			return nil, acked, err
		}
		if sug.Done {
			break
		}
		out, merr := target.Measure(sug.Index)
		var oreq serve.ObserveRequest
		if merr != nil {
			oreq = serve.ObserveRequest{Index: sug.Index, Failed: true, Reason: merr.Error()}
		} else {
			oreq = serve.ObserveRequest{Index: sug.Index, TimeSec: out.TimeSec, CostUSD: out.CostUSD, Metrics: out.Metrics}
		}
		obody, err := json.Marshal(oreq)
		if err != nil {
			return nil, acked, err
		}
		st, data, b, err = sc.request("POST", base, "/v1/sessions/"+id+"/observe", obody)
		if err != nil {
			return nil, acked, err
		}
		base = b
		switch st {
		case http.StatusOK, http.StatusConflict:
			// 409 = the previous delivery was journaled and acked but the
			// response was lost to the kill; the observation is in.
			acked++
		default:
			return nil, acked, fmt.Errorf("observe %s: status %d: %s", id, st, data)
		}
	}
	st, data, _, err := sc.request("GET", base, "/v1/sessions/"+id+"/result", nil)
	if err != nil {
		return nil, acked, err
	}
	if st != http.StatusOK {
		return nil, acked, fmt.Errorf("result %s: status %d: %s", id, st, data)
	}
	return data, acked, nil
}

// soakRequest builds the i-th session's config: a deterministic mix of
// methods with the stop rules left at their defaults, small budgets for
// throughput, and traces on the sampled sessions.
func soakRequest(i int, sampled bool) serve.SessionRequest {
	methods := []string{"random-search", "random-search", "naive-bo", "augmented-bo", "hybrid-bo"}
	return serve.SessionRequest{
		Method:          methods[i%len(methods)],
		Seed:            int64(1000 + i),
		MaxMeasurements: 6,
		Trace:           sampled,
	}
}

// resultSubObjects extracts the id-free projection of a result body —
// the recommendation and the wall-stripped trace — for byte comparison
// across servers that minted different session ids.
func resultSubObjects(t *testing.T, body []byte) []byte {
	t.Helper()
	var res serve.ResultResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("undecodable result %s: %v", body, err)
	}
	if res.Result == nil || res.Result.Partial {
		t.Fatalf("session did not finish cleanly: %s", body)
	}
	proj, err := json.Marshal(struct {
		Result any `json:"result"`
		Trace  any `json:"trace"`
	}{res.Result, res.Trace})
	if err != nil {
		t.Fatal(err)
	}
	return proj
}

// TestSoakMultiReplicaChaos is the soak harness entry point.
func TestSoakMultiReplicaChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak harness skipped in -short mode")
	}
	sessions := soakSessions()

	// The journal-less reference server for sampled byte comparisons.
	// Finished sessions leave the store only through the idle TTL sweep,
	// so a long soak needs a short TTL to keep the cap from filling.
	refBase, refShutdown := startServer(t, "-max-sessions", "512", "-session-ttl", "15s")
	defer refShutdown()

	registryMode := soakRegistryMode()
	parent := t.TempDir()
	dir := filepath.Join(parent, "journal")
	const replicas = 4
	sc := &soakCluster{
		alive: make([]atomic.Bool, replicas),
		hc:    &http.Client{Timeout: 60 * time.Second},
	}
	var regProc *chaosProc
	if registryMode {
		regProc = spawnServer(t,
			"-registry",
			"-registry-state", filepath.Join(parent, "registry.json"),
			"-lease-ttl", "2s",
		)
	}
	for i := 0; i < replicas; i++ {
		args := []string{
			"-fsync", "always",
			"-replica", fmt.Sprintf("soak-%d", i),
			"-claim-shards", "2",
			"-max-sessions", "512",
			"-session-ttl", "30s",
			"-snapshot-interval", "2",
			"-compact-interval", "250ms",
			"-compact-min-bytes", "1024",
			"-compact-min-dead-ratio", "0.05",
			"-reclaim-interval", "300ms",
		}
		if registryMode {
			// No shared filesystem: each replica journals into its own
			// directory and leases shards from the registry; the victim's
			// sessions are adopted by scanning its directory read-only.
			args = append(args,
				"-journal-dir", filepath.Join(parent, fmt.Sprintf("journal-%d", i)),
				"-registry-addr", regProc.base,
				"-heartbeat-interval", "250ms",
			)
		} else {
			args = append(args, "-journal-dir", dir)
		}
		p := spawnServer(t, args...)
		sc.procs = append(sc.procs, p)
		sc.alive[i].Store(true)
	}

	// The chaos controller: once a third of the sessions have finished,
	// SIGKILL one replica mid-traffic. Survivors reclaim its shards.
	var finished atomic.Int64
	var trafficDone atomic.Bool
	victim := rand.New(rand.NewSource(int64(sessions))).Intn(replicas)
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for finished.Load() < int64(sessions/3) {
			if trafficDone.Load() {
				return // traffic collapsed before the kill threshold
			}
			time.Sleep(20 * time.Millisecond)
		}
		sc.alive[victim].Store(false)
		sc.procs[victim].kill9(t)
	}()

	// The traffic generators.
	workers := 12
	if sessions < workers {
		workers = sessions
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker target: measurements are pure functions of the
			// (workload, vm, trial) triple, but the shared handle keeps a
			// measurement counter that would race across workers.
			target, err := arrow.NewSimulatedTarget("als/spark2.1/medium", 1)
			if err != nil {
				fail("worker target: %v", err)
				return
			}
			for i := range work {
				sampled := i%10 == 0
				req := soakRequest(i, sampled)
				body, acked, err := soakSession(sc, req, target)
				if err != nil {
					fail("session %d: %v", i, err)
					continue
				}
				var res serve.ResultResponse
				if err := json.Unmarshal(body, &res); err != nil {
					fail("session %d: undecodable result: %v", i, err)
					continue
				}
				if res.Result == nil || res.Result.Partial {
					fail("session %d did not finish cleanly: %s", i, body)
					continue
				}
				// Zero lost acked observations — and zero duplicated ones.
				if len(res.Result.Observations) != acked {
					fail("session %d: %d observations in the result, %d acked on the wire",
						i, len(res.Result.Observations), acked)
					continue
				}
				if sampled {
					refClient := &httpClient{t: t, base: refBase}
					refID := refClient.create(req)
					want := resultSubObjects(t, refClient.finish(refID, target))
					got := resultSubObjects(t, body)
					if !bytes.Equal(got, want) {
						fail("session %d: result diverged from journal-less reference:\n got %s\nwant %s", i, got, want)
						continue
					}
				}
				finished.Add(1)
			}
		}()
	}
	for i := 0; i < sessions; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	trafficDone.Store(true)
	<-killed

	if len(failures) > 0 {
		max := len(failures)
		if max > 20 {
			max = 20
		}
		t.Fatalf("%d session failures, first %d:\n%s", len(failures), max, strings.Join(failures[:max], "\n"))
	}
	if got := finished.Load(); got != int64(sessions) {
		t.Fatalf("finished %d of %d sessions", got, sessions)
	}

	// The survivors' stdout carries the machine-readable half of the
	// story: reclaim reports for the victim's shards and compaction
	// stats lines from the concurrent compactor. The reclaim may trail
	// the traffic — in registry mode the victim's leases take a full
	// TTL to expire after the kill — so poll until it surfaces.
	var (
		claimed     map[int]bool
		compactions int
		worstP99    int64
	)
	collect := func() {
		claimed = map[int]bool{}
		compactions = 0
		worstP99 = 0
		for i, p := range sc.procs {
			if i == victim {
				continue
			}
			for _, line := range strings.Split(p.stdout.String(), "\n") {
				line = strings.TrimSpace(line)
				if !strings.HasPrefix(line, "{") {
					continue
				}
				var probe map[string]json.RawMessage
				if err := json.Unmarshal([]byte(line), &probe); err != nil {
					t.Fatalf("replica %d printed undecodable JSON %q: %v", i, line, err)
				}
				switch {
				case probe["claimed"] != nil:
					var rep serve.ReclaimReport
					if err := json.Unmarshal([]byte(line), &rep); err != nil {
						t.Fatalf("undecodable reclaim report %q: %v", line, err)
					}
					for _, shard := range rep.Claimed {
						claimed[shard] = true
					}
					if rep.RecoverP99Micros > worstP99 {
						worstP99 = rep.RecoverP99Micros
					}
				case probe["compacted"] != nil:
					compactions++
				}
			}
		}
	}
	for deadline := time.Now().Add(30 * time.Second); ; {
		collect()
		if len(claimed) >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if len(claimed) != 2 {
		t.Errorf("survivors reclaimed shards %v, want the victim's 2", claimed)
	}
	if compactions == 0 {
		t.Error("no shard was compacted during the soak")
	}
	// Snapshots every 2 observations bound per-session recovery: the
	// p99 over adopted sessions must stay far below a full cold replay
	// of the whole journal. The bound is deliberately loose — CI runs
	// this under the race detector.
	if worstP99 > 5_000_000 {
		t.Errorf("reclaim recovery p99 %dµs exceeds the 5s soak budget", worstP99)
	}

	for i, p := range sc.procs {
		if i != victim {
			p.terminate(t)
		}
	}
	if regProc != nil {
		regProc.terminate(t)
	}

	mode := "filesystem"
	if registryMode {
		mode = "registry"
	}
	writeSoakSummary(t, soakSummary{
		Mode:             mode,
		Sessions:         sessions,
		Replicas:         replicas,
		Victim:           victim,
		ClaimedShards:    sortedKeys(claimed),
		Compactions:      compactions,
		ReclaimP99Micros: worstP99,
		JournalBytes:     dirBytes(t, parent),
	})
}

// soakSummary is the machine-readable run record the nightly CI job
// uploads as an artifact: the journal's on-disk footprint after
// concurrent compaction and the worst per-session recovery p99 across
// every reclaim are the two numbers the recovery-time model predicts.
type soakSummary struct {
	Mode             string `json:"mode"`
	Sessions         int    `json:"sessions"`
	Replicas         int    `json:"replicas"`
	Victim           int    `json:"victim"`
	ClaimedShards    []int  `json:"claimed_shards"`
	Compactions      int    `json:"compactions"`
	ReclaimP99Micros int64  `json:"reclaim_p99_micros"`
	JournalBytes     int64  `json:"journal_bytes"`
}

// writeSoakSummary records the run summary at $ARROW_SOAK_OUT; unset
// (the default short run in make check) writes nothing.
func writeSoakSummary(t *testing.T, sum soakSummary) {
	out := os.Getenv("ARROW_SOAK_OUT")
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatalf("marshaling soak summary: %v", err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("writing soak summary: %v", err)
	}
	t.Logf("soak summary: %s", data)
}

// dirBytes totals the size of every file under dir.
func dirBytes(t *testing.T, dir string) int64 {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	if err != nil {
		t.Fatalf("sizing journal dir: %v", err)
	}
	return total
}

// sortedKeys flattens a set of shard numbers into a sorted list.
func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
