package main

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/study"
	"repro/internal/textplot"
	"repro/internal/workloads"
)

func runTable1(c *ctx, out io.Writer) error {
	studySet := map[string]bool{}
	for _, w := range c.runner.Workloads() {
		studySet[w.ID()] = true
	}
	var rows [][]string
	for _, w := range workloads.All() {
		status := "study"
		if !studySet[w.ID()] {
			status = "excluded"
		}
		d := w.Demands
		rows = append(rows, []string{
			w.ID(), w.AppName, w.Category.String(), w.System.String(), w.Size.String(),
			f(d.CPUCoreSeconds), f(d.SerialFraction), f(d.WorkingSetGiB), f(d.IOGiB), status,
		})
	}
	if err := c.writeCSV("table1_inventory.csv",
		[]string{"workload", "app", "category", "system", "size",
			"cpu_core_s", "serial_frac", "working_set_gib", "io_gib", "status"}, rows); err != nil {
		return err
	}
	fmt.Fprintf(out, "%d applications, %d candidate workloads, %d in the study set\n",
		workloads.NumApplications, len(workloads.All()), len(c.runner.Workloads()))
	return nil
}

func runFig1(c *ctx, out io.Writer) error {
	cdfs, err := c.runner.SearchCostCDF([]study.MethodConfig{{Method: study.MethodNaive}}, core.MinimizeTime, c.seeds)
	if err != nil {
		return err
	}
	cdf := cdfs[0]
	var rows [][]string
	for m, frac := range cdf.FractionByBudget {
		rows = append(rows, []string{fmt.Sprint(m + 1), f(frac)})
	}
	if err := c.writeCSV("fig1_naive_cdf.csv", []string{"measurements", "fraction_of_workloads"}, rows); err != nil {
		return err
	}

	regions, err := c.regionsFor(core.MinimizeTime)
	if err != nil {
		return err
	}
	counts := map[study.Region]int{}
	for _, r := range regions {
		counts[r]++
	}
	fmt.Fprintf(out, "within 6 measurements (Region I boundary): %.0f%% of workloads\n", 100*cdf.FractionWithin(6))
	fmt.Fprintf(out, "within 12 measurements (Region II boundary): %.0f%% of workloads\n", 100*cdf.FractionWithin(12))
	fmt.Fprintf(out, "regions: I=%d II=%d III=%d\n", counts[study.RegionI], counts[study.RegionII], counts[study.RegionIII])
	return plotCDFs(out, "Fig 1: Naive BO search-cost CDF (time objective)", cdfs)
}

func plotCDFs(out io.Writer, title string, cdfs []study.MethodCDF) error {
	var series []textplot.Series
	for _, cdf := range cdfs {
		s := textplot.Series{Name: cdf.Label}
		for m, frac := range cdf.FractionByBudget {
			s.X = append(s.X, float64(m+1))
			s.Y = append(s.Y, 100*frac)
		}
		series = append(series, s)
	}
	chart, err := textplot.Line(title, series, 60, 12)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(out, chart)
	return err
}

func runFig2(c *ctx, out io.Writer) error {
	w, err := c.runner.WorkloadByID("als/spark2.1/medium")
	if err != nil {
		return err
	}
	rep, err := c.runner.Trajectories(study.MethodConfig{Method: study.MethodNaive}, w, core.MinimizeTime, c.seeds)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, p := range rep.Points {
		rows = append(rows, []string{fmt.Sprint(p.Step), f(p.Median), f(p.Q1), f(p.Q3)})
	}
	if err := c.writeCSV("fig2_als_trajectory.csv", []string{"step", "median_norm_time", "q1", "q3"}, rows); err != nil {
		return err
	}
	fmt.Fprintf(out, "median measurements to reach the optimal VM: %.1f\n", rep.MedianStepOptimal)
	return plotTrajectories(out, "Fig 2: Naive BO on als/spark2.1 (normalized time)", []*study.TrajectoryReport{rep})
}

func plotTrajectories(out io.Writer, title string, reps []*study.TrajectoryReport) error {
	var series []textplot.Series
	for _, rep := range reps {
		s := textplot.Series{Name: rep.Label}
		for _, p := range rep.Points {
			s.X = append(s.X, float64(p.Step))
			s.Y = append(s.Y, p.Median)
		}
		series = append(series, s)
	}
	chart, err := textplot.Line(title, series, 60, 12)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(out, chart)
	return err
}

func runFig3(c *ctx, out io.Writer) error {
	rows, err := c.runner.Spread(nil)
	if err != nil {
		return err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].TimeRatio > rows[j].TimeRatio })
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{r.WorkloadID, f(r.TimeRatio), f(r.CostRatio)})
	}
	if err := c.writeCSV("fig3_spread.csv", []string{"workload", "time_worst_over_best", "cost_worst_over_best"}, csvRows); err != nil {
		return err
	}
	fmt.Fprintf(out, "largest time spread: %s at %.1fx\n", rows[0].WorkloadID, rows[0].TimeRatio)
	byCost := append([]study.SpreadRow(nil), rows...)
	sort.Slice(byCost, func(i, j int) bool { return byCost[i].CostRatio > byCost[j].CostRatio })
	fmt.Fprintf(out, "largest cost spread: %s at %.1fx\n", byCost[0].WorkloadID, byCost[0].CostRatio)
	var bars []textplot.Bar
	for _, r := range rows[:6] {
		bars = append(bars, textplot.Bar{Label: r.WorkloadID, Value: r.TimeRatio, Annotation: fmt.Sprintf("cost %.1fx", r.CostRatio)})
	}
	chart, err := textplot.HBar("Fig 3: worst/best execution-time ratio (top workloads)", bars, 40)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(out, chart)
	return err
}

func runFig4(c *ctx, out io.Writer) error {
	expensive, err := c.runner.FixedVMDistribution([]string{"c4.2xlarge", "m4.2xlarge", "r4.2xlarge"}, core.MinimizeTime)
	if err != nil {
		return err
	}
	cheap, err := c.runner.FixedVMDistribution([]string{"c4.large", "m4.large", "r4.large"}, core.MinimizeCost)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, group := range []struct {
		panel  string
		series []study.FixedVMSeries
	}{{"a_time_most_expensive", expensive}, {"b_cost_least_expensive", cheap}} {
		for _, s := range group.series {
			for i, v := range s.NormalizedSorted {
				rows = append(rows, []string{group.panel, s.VMName, fmt.Sprint(i), f(v)})
			}
		}
	}
	if err := c.writeCSV("fig4_fixed_vm.csv", []string{"panel", "vm", "workload_rank", "normalized"}, rows); err != nil {
		return err
	}
	for _, s := range expensive {
		fmt.Fprintf(out, "time: %s is (near-)optimal for %.0f%% of workloads\n", s.VMName, 100*s.OptimalFraction)
	}
	for _, s := range cheap {
		fmt.Fprintf(out, "cost: %s is (near-)optimal for %.0f%% of workloads\n", s.VMName, 100*s.OptimalFraction)
	}
	return nil
}

func runFig5(c *ctx, out io.Writer) error {
	pairs := []study.AppSystem{
		{App: "pagerank", System: workloads.Hadoop27},
		{App: "bayes", System: workloads.Spark21},
		{App: "als", System: workloads.Spark21},
		{App: "wordcount", System: workloads.Spark21},
		{App: "terasort", System: workloads.Hadoop27},
		{App: "kmeans", System: workloads.Spark15},
	}
	rows, err := c.runner.InputSizeEffect(pairs, "m4.xlarge", core.MinimizeCost)
	if err != nil {
		return err
	}
	var csvRows [][]string
	changed := 0
	for _, r := range rows {
		if r.BestVMChanges {
			changed++
		}
		for _, size := range workloads.Sizes() {
			cell := r.PerSize[size]
			if cell == nil {
				continue
			}
			csvRows = append(csvRows, []string{r.AppName, r.System.String(), size.String(), cell.BestVM, f(cell.RefNormalized)})
		}
	}
	if err := c.writeCSV("fig5_input_size.csv", []string{"app", "system", "size", "best_vm", "m4.xlarge_normalized_cost"}, csvRows); err != nil {
		return err
	}
	fmt.Fprintf(out, "best VM changes with input size for %d of %d app/system pairs\n", changed, len(rows))
	for _, r := range rows {
		fmt.Fprintf(out, "  %s/%s:", r.AppName, r.System)
		for _, size := range workloads.Sizes() {
			if cell := r.PerSize[size]; cell != nil {
				fmt.Fprintf(out, " %s=%s", size, cell.BestVM)
			}
		}
		fmt.Fprintln(out)
	}
	return nil
}

func runFig6(c *ctx, out io.Writer) error {
	lf, err := c.runner.LevelPlayingField("regression/spark1.5/medium")
	if err != nil {
		return err
	}
	var rows [][]string
	for _, r := range lf.Rows {
		rows = append(rows, []string{r.VMName, f(r.NormTime), f(r.NormCost)})
	}
	if err := c.writeCSV("fig6_level_playing_field.csv", []string{"vm", "normalized_time", "normalized_cost"}, rows); err != nil {
		return err
	}
	fmt.Fprintf(out, "time spread %.1fx vs cost spread %.1fx — cost compresses differences\n", lf.TimeSpread, lf.CostSpread)
	var bars []textplot.Bar
	for _, r := range lf.Rows {
		bars = append(bars, textplot.Bar{Label: r.VMName, Value: r.NormCost, Annotation: fmt.Sprintf("time %.2f", r.NormTime)})
	}
	chart, err := textplot.HBar("Fig 6: normalized deployment cost per VM (regression/spark1.5)", bars, 40)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(out, chart)
	return err
}

func runFig7(c *ctx, out io.Writer) error {
	type panel struct {
		id        string
		workload  string
		objective core.Objective
		csv       string
	}
	for _, p := range []panel{
		{"a", "als/spark2.1/medium", core.MinimizeTime, "fig7a_kernels_als_time.csv"},
		{"b", "bayes/spark2.1/medium", core.MinimizeCost, "fig7b_kernels_bayes_cost.csv"},
	} {
		w, err := c.runner.WorkloadByID(p.workload)
		if err != nil {
			return err
		}
		reports, err := c.runner.KernelComparison(w, p.objective, kernel.All(), c.seeds)
		if err != nil {
			return err
		}
		var rows [][]string
		for _, rep := range reports {
			for _, pt := range rep.Points {
				rows = append(rows, []string{rep.Label, fmt.Sprint(pt.Step), f(pt.Median), f(pt.Q1), f(pt.Q3)})
			}
		}
		if err := c.writeCSV(p.csv, []string{"kernel", "step", "median_normalized", "q1", "q3"}, rows); err != nil {
			return err
		}
		for _, rep := range reports {
			fmt.Fprintf(out, "panel %s (%s, %s): %-11s median steps to optimum %.1f\n",
				p.id, p.workload, p.objective, rep.Label, rep.MedianStepOptimal)
		}
		if err := plotTrajectories(out, fmt.Sprintf("Fig 7(%s): kernels on %s (%s)", p.id, p.workload, p.objective), reports); err != nil {
			return err
		}
	}
	return nil
}

func runFig8(c *ctx, out io.Writer) error {
	rows, err := c.runner.BottleneckProfile("lr/spark1.5/medium")
	if err != nil {
		return err
	}
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{r.VMName, f(r.NormTime), f(r.CPUUser), f(r.IOWait), f(r.MemCommit)})
	}
	if err := c.writeCSV("fig8_memory_bottleneck.csv",
		[]string{"vm", "normalized_time", "cpu_user_pct", "iowait_pct", "mem_commit_pct"}, csvRows); err != nil {
		return err
	}
	var bars []textplot.Bar
	for _, r := range rows {
		bars = append(bars, textplot.Bar{
			Label:      r.VMName,
			Value:      r.MemCommit,
			Annotation: fmt.Sprintf("iowait %4.1f%%  time %.1fx", r.IOWait, r.NormTime),
		})
	}
	chart, err := textplot.HBar("Fig 8: %commit per VM for lr/spark1.5 (slowest first)", bars, 40)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(out, chart)
	return err
}

func runFig9(c *ctx, out io.Writer) error {
	methods := []study.MethodConfig{
		{Method: study.MethodNaive},
		{Method: study.MethodAugmented},
		{Method: study.MethodHybrid},
	}
	for _, p := range []struct {
		panel     string
		objective core.Objective
		csv       string
	}{
		{"a", core.MinimizeTime, "fig9a_cdf_time.csv"},
		{"b", core.MinimizeCost, "fig9b_cdf_cost.csv"},
	} {
		cdfs, err := c.runner.SearchCostCDF(methods, p.objective, c.seeds)
		if err != nil {
			return err
		}
		var rows [][]string
		for _, cdf := range cdfs {
			for m, frac := range cdf.FractionByBudget {
				rows = append(rows, []string{cdf.Label, fmt.Sprint(m + 1), f(frac)})
			}
		}
		if err := c.writeCSV(p.csv, []string{"method", "measurements", "fraction_of_workloads"}, rows); err != nil {
			return err
		}
		for _, cdf := range cdfs {
			fmt.Fprintf(out, "panel %s (%s): %-12s within 6: %3.0f%%  within 10: %3.0f%%  within 12: %3.0f%%\n",
				p.panel, p.objective, cdf.Label,
				100*cdf.FractionWithin(6), 100*cdf.FractionWithin(10), 100*cdf.FractionWithin(12))
		}
		if err := plotCDFs(out, fmt.Sprintf("Fig 9(%s): search-cost CDF (%s)", p.panel, p.objective), cdfs); err != nil {
			return err
		}
	}
	return nil
}

func runFig10(c *ctx, out io.Writer) error {
	panels := []struct {
		id        string
		workload  string
		objective core.Objective
		csv       string
	}{
		{"a", "pagerank/hadoop2.7/medium", core.MinimizeTime, "fig10a_pagerank.csv"},
		{"b", "als/spark2.1/medium", core.MinimizeTime, "fig10b_als.csv"},
		{"c", "lr/spark1.5/medium", core.MinimizeCost, "fig10c_lr.csv"},
	}
	for _, p := range panels {
		w, err := c.runner.WorkloadByID(p.workload)
		if err != nil {
			return err
		}
		var reports []*study.TrajectoryReport
		var rows [][]string
		for _, mc := range []study.MethodConfig{{Method: study.MethodNaive}, {Method: study.MethodAugmented}} {
			rep, err := c.runner.Trajectories(mc, w, p.objective, c.seeds)
			if err != nil {
				return err
			}
			reports = append(reports, rep)
			for _, pt := range rep.Points {
				rows = append(rows, []string{rep.Label, fmt.Sprint(pt.Step), f(pt.Median), f(pt.Q1), f(pt.Q3)})
			}
			iqrSum := 0.0
			for _, pt := range rep.Points {
				iqrSum += pt.Q3 - pt.Q1
			}
			fmt.Fprintf(out, "panel %s %s: %-12s median steps %.1f, mean IQR %.3f\n",
				p.id, p.workload, rep.Label, rep.MedianStepOptimal, iqrSum/float64(len(rep.Points)))
		}
		if err := c.writeCSV(p.csv, []string{"method", "step", "median_normalized", "q1", "q3"}, rows); err != nil {
			return err
		}
		if err := plotTrajectories(out, fmt.Sprintf("Fig 10(%s): %s (%s)", p.id, p.workload, p.objective), reports); err != nil {
			return err
		}
	}
	return nil
}

func runFig11(c *ctx, out io.Writer) error {
	regions, err := c.regionsFor(core.MinimizeCost)
	if err != nil {
		return err
	}
	points, err := c.runner.StoppingSweep(core.MinimizeCost, c.seeds,
		[]float64{0.05, 0.10, 0.15, 0.20},
		[]float64{0.9, 0.95, 1.0, 1.05, 1.1, 1.15, 1.2, 1.25, 1.3},
		regions)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{p.Region.String(), p.Label, f(p.Threshold), f(p.SearchCost), f(p.FoundNorm)})
	}
	if err := c.writeCSV("fig11_stopping_tradeoff.csv",
		[]string{"region", "method", "threshold", "mean_search_cost", "mean_normalized_cost"}, rows); err != nil {
		return err
	}
	for _, reg := range []study.Region{study.RegionI, study.RegionII, study.RegionIII} {
		fmt.Fprintf(out, "%s:\n", reg)
		for _, p := range points {
			if p.Region == reg {
				fmt.Fprintf(out, "  %-28s search %.2f  cost %.3f\n", p.Label, p.SearchCost, p.FoundNorm)
			}
		}
	}
	return nil
}

func runFig12(c *ctx, out io.Writer) error {
	return runCompare(c, out, core.MinimizeCost, 1.1, "fig12_win_loss_cost.csv",
		"Fig 12: Augmented (delta 1.1) vs Naive (EI 10%) on deployment cost")
}

func runFig13(c *ctx, out io.Writer) error {
	return runCompare(c, out, core.MinimizeTimeCostProduct, 1.05, "fig13_win_loss_product.csv",
		"Fig 13: Augmented (delta 1.05) vs Naive (EI 10%) on the time-cost product")
}

func runCompare(c *ctx, out io.Writer, objective core.Objective, delta float64, csvName, title string) error {
	regions, err := c.regionsFor(core.MinimizeCost)
	if err != nil {
		return err
	}
	rep, err := c.runner.Compare(
		study.MethodConfig{Method: study.MethodNaive, EIStop: 0.10},
		study.MethodConfig{Method: study.MethodAugmented, Delta: delta},
		objective, c.seeds, regions)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, p := range rep.Points {
		rows = append(rows, []string{p.WorkloadID, p.Region.String(), f(p.SearchCostReduction), f(p.ValueImprovement), p.Class.String()})
	}
	if err := c.writeCSV(csvName,
		[]string{"workload", "region", "search_cost_reduction_pct", "value_improvement_pct", "class"}, rows); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s\n", title)
	fmt.Fprintf(out, "win=%d same=%d draw=%d loss=%d (paper cost objective: 46/39/17/5)\n",
		rep.Counts[study.Win], rep.Counts[study.Same], rep.Counts[study.Draw], rep.Counts[study.Loss])
	return nil
}

func runInitPoints(c *ctx, out io.Writer) error {
	reports, err := c.runner.InitialPointSensitivity(core.MinimizeCost, map[string][]string{
		"paper-triplet(c4.xlarge,m4.large,r3.2xlarge)": {"c4.xlarge", "m4.large", "r3.2xlarge"},
		"diverse(c3.large,m4.xlarge,r4.2xlarge)":       {"c3.large", "m4.xlarge", "r4.2xlarge"},
		"all-large(c4,m4,r4)":                          {"c4.large", "m4.large", "r4.large"},
		"all-2xlarge(c4,m4,r4)":                        {"c4.2xlarge", "m4.2xlarge", "r4.2xlarge"},
	})
	if err != nil {
		return err
	}
	var rows [][]string
	for _, rep := range reports {
		for _, id := range sortedIDs(rep.PerWorkloadStep) {
			rows = append(rows, []string{rep.Label, id, fmt.Sprint(rep.PerWorkloadStep[id])})
		}
		fmt.Fprintf(out, "%-46s miss-within-6 rate: %.0f%%\n", rep.Label, 100*rep.FailFraction)
	}
	return c.writeCSV("initpoints_sensitivity.csv", []string{"design", "workload", "step_optimal"}, rows)
}

func runBreakdown(c *ctx, out io.Writer) error {
	var rows [][]string
	for _, group := range []study.GroupBy{study.ByCategory, study.BySystem, study.ByInputSize} {
		for _, mc := range []study.MethodConfig{{Method: study.MethodNaive}, {Method: study.MethodAugmented}} {
			stats, err := c.runner.BreakdownByGroup(mc, core.MinimizeCost, c.seeds, group)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%s by %s:\n", mc.Label(), group)
			for _, gs := range stats {
				fmt.Fprintf(out, "  %-22s n=%-3d mean %.2f median %.1f  regions I/II/III %d/%d/%d\n",
					gs.Group, gs.Workloads, gs.MeanStep, gs.MedianStep,
					gs.RegionCounts[study.RegionI], gs.RegionCounts[study.RegionII], gs.RegionCounts[study.RegionIII])
				rows = append(rows, []string{group.String(), mc.Label(), gs.Group,
					fmt.Sprint(gs.Workloads), f(gs.MeanStep), f(gs.MedianStep)})
			}
		}
	}
	return c.writeCSV("breakdown_groups.csv",
		[]string{"group_by", "method", "group", "workloads", "mean_step", "median_step"}, rows)
}
