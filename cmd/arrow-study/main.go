// Command arrow-study regenerates the paper's evaluation: every figure's
// data series is recomputed on the simulator substrate, written as CSV
// into the output directory, and sketched as an ASCII chart on stdout.
//
// Usage:
//
//	arrow-study                      # all experiments, 30 seeds
//	arrow-study -figures fig9,fig12  # a subset
//	arrow-study -seeds 100           # the paper's repeat count
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/study"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "arrow-study:", err)
		os.Exit(1)
	}
}

// ctx carries the shared state of one study invocation.
type ctx struct {
	runner *study.Runner
	seeds  int
	outDir string

	// regions caches the Figure 1 classification, which several
	// experiments reuse.
	regions map[core.Objective]map[string]study.Region
}

type experiment struct {
	name string
	desc string
	run  func(*ctx, io.Writer) error
}

// experiments in paper order.
var experiments = []experiment{
	{"table1", "Table I: application and workload inventory", runTable1},
	{"fig1", "Fig 1: Naive BO search-cost CDF and regions", runFig1},
	{"fig2", "Fig 2: Naive BO trajectory for ALS on Spark", runFig2},
	{"fig3", "Fig 3: best-to-worst spread in time and cost", runFig3},
	{"fig4", "Fig 4: fixed most/least expensive VM distributions", runFig4},
	{"fig5", "Fig 5: input size changes the best VM", runFig5},
	{"fig6", "Fig 6: cost levels the playing field (regression)", runFig6},
	{"fig7", "Fig 7: kernel choice changes BO effectiveness", runFig7},
	{"fig8", "Fig 8: low-level metrics expose a memory bottleneck", runFig8},
	{"fig9", "Fig 9: search-cost CDFs, Naive vs Augmented vs Hybrid", runFig9},
	{"fig10", "Fig 10: trajectories with IQR bands", runFig10},
	{"fig11", "Fig 11: stopping-criterion trade-off per region", runFig11},
	{"fig12", "Fig 12: win/same/draw/loss under the cost objective", runFig12},
	{"fig13", "Fig 13: win/same/draw/loss under the time-cost product", runFig13},
	{"initpoints", "Sec III-C: initial-point sensitivity", runInitPoints},
	{"breakdown", "extension: search cost per category/system/size", runBreakdown},
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("arrow-study", flag.ContinueOnError)
	var (
		seeds   = fs.Int("seeds", 30, "independent repetitions per workload (paper uses 100)")
		outDir  = fs.String("out", "results", "directory for CSV output")
		figures = fs.String("figures", "all", "comma-separated experiment list (see -list)")
		list    = fs.Bool("list", false, "list experiments and exit")
		workers = fs.Int("concurrency", 0, "worker-pool size (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments {
			fmt.Fprintf(out, "%-12s %s\n", e.name, e.desc)
		}
		return nil
	}
	if *seeds < 1 {
		return fmt.Errorf("seeds must be positive, got %d", *seeds)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("creating output dir: %w", err)
	}

	var opts []study.Option
	if *workers > 0 {
		opts = append(opts, study.WithConcurrency(*workers))
	}
	c := &ctx{
		runner:  study.NewRunner(sim.New(cloud.DefaultCatalog()), opts...),
		seeds:   *seeds,
		outDir:  *outDir,
		regions: map[core.Objective]map[string]study.Region{},
	}

	selected := map[string]bool{}
	if *figures == "all" {
		for _, e := range experiments {
			selected[e.name] = true
		}
	} else {
		for _, name := range strings.Split(*figures, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.name] = true
	}
	for name := range selected {
		if !known[name] {
			return fmt.Errorf("unknown experiment %q (see -list)", name)
		}
	}

	for _, e := range experiments {
		if !selected[e.name] {
			continue
		}
		start := time.Now()
		fmt.Fprintf(out, "=== %s: %s\n", e.name, e.desc)
		if err := e.run(c, out); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Fprintf(out, "--- %s done in %v\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// regionsFor computes (and caches) the Figure 1 region classification.
func (c *ctx) regionsFor(objective core.Objective) (map[string]study.Region, error) {
	if r, ok := c.regions[objective]; ok {
		return r, nil
	}
	r, err := c.runner.ClassifyRegions(objective, c.seeds)
	if err != nil {
		return nil, err
	}
	c.regions[objective] = r
	return r, nil
}

// writeCSV writes one CSV file into the output directory.
func (c *ctx) writeCSV(name string, header []string, rows [][]string) error {
	path := filepath.Join(c.outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		_ = f.Close()
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		_ = f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func f(v float64) string { return fmt.Sprintf("%.6g", v) }

// sortedIDs returns map keys in stable order.
func sortedIDs[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
