// Command arrow-study regenerates the paper's evaluation: every figure's
// data series is recomputed on the simulator substrate, written as CSV
// into the output directory, and sketched as an ASCII chart on stdout.
//
// The selected experiments run as a work queue over one shared runner:
// every search pulls through the content-addressed run cache
// (internal/runcache), so overlapping figures execute each distinct
// (method, workload, objective, seed) search once, warm re-runs against
// a cache directory skip completed searches entirely, and an
// interrupted study resumes where it stopped. Figure output is buffered
// and merged in paper order, so CSVs and stdout are byte-identical
// between a cold run, a warm run, and any -concurrency setting.
// Progress, ETA and cache statistics go to stderr.
//
// Usage:
//
//	arrow-study                      # all experiments, 30 seeds
//	arrow-study -figures fig9,fig12  # a subset
//	arrow-study -seeds 100           # the paper's repeat count
//	arrow-study -no-cache            # force every search to execute
package main

import (
	"bytes"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/study"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "arrow-study:", err)
		os.Exit(1)
	}
}

// ctx carries the shared state of one study invocation.
type ctx struct {
	runner *study.Runner
	seeds  int
	outDir string

	// regions memoizes the Figure 1 classification, which several
	// experiments reuse; the singleflight keeps concurrent figures from
	// classifying twice (the underlying searches dedup in the run cache
	// either way).
	regions *runcache.Store[map[string]study.Region]
}

type experiment struct {
	name string
	desc string
	run  func(*ctx, io.Writer) error
}

// experiments in paper order — also the deterministic merge order of the
// work-queue executor.
var experiments = []experiment{
	{"table1", "Table I: application and workload inventory", runTable1},
	{"fig1", "Fig 1: Naive BO search-cost CDF and regions", runFig1},
	{"fig2", "Fig 2: Naive BO trajectory for ALS on Spark", runFig2},
	{"fig3", "Fig 3: best-to-worst spread in time and cost", runFig3},
	{"fig4", "Fig 4: fixed most/least expensive VM distributions", runFig4},
	{"fig5", "Fig 5: input size changes the best VM", runFig5},
	{"fig6", "Fig 6: cost levels the playing field (regression)", runFig6},
	{"fig7", "Fig 7: kernel choice changes BO effectiveness", runFig7},
	{"fig8", "Fig 8: low-level metrics expose a memory bottleneck", runFig8},
	{"fig9", "Fig 9: search-cost CDFs, Naive vs Augmented vs Hybrid", runFig9},
	{"fig10", "Fig 10: trajectories with IQR bands", runFig10},
	{"fig11", "Fig 11: stopping-criterion trade-off per region", runFig11},
	{"fig12", "Fig 12: win/same/draw/loss under the cost objective", runFig12},
	{"fig13", "Fig 13: win/same/draw/loss under the time-cost product", runFig13},
	{"initpoints", "Sec III-C: initial-point sensitivity", runInitPoints},
	{"breakdown", "extension: search cost per category/system/size", runBreakdown},
}

func run(args []string, out, progress io.Writer) error {
	fs := flag.NewFlagSet("arrow-study", flag.ContinueOnError)
	var (
		seeds    = fs.Int("seeds", 30, "independent repetitions per workload (paper uses 100)")
		outDir   = fs.String("out", "results", "directory for CSV output")
		figures  = fs.String("figures", "all", "comma-separated experiment list (see -list)")
		list     = fs.Bool("list", false, "list experiments and exit")
		workers  = fs.Int("concurrency", 0, "bound on concurrently executing searches (0 = GOMAXPROCS)")
		cacheDir = fs.String("cache-dir", "auto", "persistent run-cache directory (auto = <out>/cache, empty = memory-only)")
		noCache  = fs.Bool("no-cache", false, "disable the run cache entirely: every search executes (forces a cold run)")
		subset   = fs.String("workloads", "", "comma-separated workload IDs to restrict the study set (default: all 107)")
		traceOut = fs.String("trace", "", "write a canonically ordered JSONL study trace to this file (wall-stripped, it is byte-identical across cold/warm cache and any -concurrency)")
		metrics  = fs.Bool("metrics", false, "print trace-derived event counters to stderr after the study")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments {
			fmt.Fprintf(out, "%-12s %s\n", e.name, e.desc)
		}
		return nil
	}
	if *seeds < 1 {
		return fmt.Errorf("seeds must be positive, got %d", *seeds)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("creating output dir: %w", err)
	}

	simulator := sim.New(cloud.DefaultCatalog())
	var opts []study.Option
	if *workers > 0 {
		opts = append(opts, study.WithConcurrency(*workers))
	}
	if *subset != "" {
		ws, err := resolveWorkloads(simulator, *subset)
		if err != nil {
			return err
		}
		opts = append(opts, study.WithWorkloads(ws))
	}
	switch {
	case *noCache:
		opts = append(opts, study.WithoutRunCache())
	case *cacheDir == "auto":
		opts = append(opts, study.WithCacheDir(filepath.Join(*outDir, "cache")))
	case *cacheDir != "":
		opts = append(opts, study.WithCacheDir(*cacheDir))
	}
	var tracers []telemetry.Tracer
	var traceFile *os.File
	var traceSink *telemetry.SortingJSONL
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		traceFile = f
		traceSink = telemetry.NewSortingJSONL(f, false)
		tracers = append(tracers, traceSink)
	}
	var traceMetrics *telemetry.Metrics
	if *metrics {
		traceMetrics = telemetry.NewMetrics()
		tracers = append(tracers, traceMetrics)
	}
	if t := telemetry.Multi(tracers...); t != nil {
		opts = append(opts, study.WithTracer(t))
	}
	regions, _ := runcache.Open[map[string]study.Region]("", sim.SubstrateVersion) // memory-only Open cannot fail
	c := &ctx{
		runner:  study.NewRunner(simulator, opts...),
		seeds:   *seeds,
		outDir:  *outDir,
		regions: regions,
	}
	defer c.runner.Close()

	selected, err := selectExperiments(*figures)
	if err != nil {
		return err
	}
	err = runQueue(c, selected, out, progress)
	// The trace is flushed even after a failed study: partial traces are
	// how an aborted run gets diagnosed.
	if traceSink != nil {
		if ferr := traceSink.Flush(); ferr != nil && err == nil {
			err = fmt.Errorf("trace file: %w", ferr)
		}
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace file: %w", cerr)
		}
	}
	if traceMetrics != nil {
		fmt.Fprintf(progress, "\n%s", telemetry.RenderSummary(traceMetrics))
	}
	return err
}

// selectExperiments resolves the -figures flag against the experiment
// list, preserving paper order.
func selectExperiments(figures string) ([]experiment, error) {
	want := map[string]bool{}
	if figures == "all" {
		for _, e := range experiments {
			want[e.name] = true
		}
	} else {
		for _, name := range strings.Split(figures, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.name] = true
	}
	for name := range want {
		if !known[name] {
			return nil, fmt.Errorf("unknown experiment %q (see -list)", name)
		}
	}
	var sel []experiment
	for _, e := range experiments {
		if want[e.name] {
			sel = append(sel, e)
		}
	}
	return sel, nil
}

// resolveWorkloads parses a comma-separated ID list against the
// simulator's study set.
func resolveWorkloads(s *sim.Simulator, csvIDs string) ([]workloads.Workload, error) {
	inStudy := map[string]workloads.Workload{}
	for _, w := range s.StudyWorkloads() {
		inStudy[w.ID()] = w
	}
	var ws []workloads.Workload
	for _, id := range strings.Split(csvIDs, ",") {
		id = strings.TrimSpace(id)
		w, ok := inStudy[id]
		if !ok {
			return nil, fmt.Errorf("workload %q not in the study set", id)
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// syncWriter serializes progress lines from concurrent figures.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// runQueue executes the selected experiments as a work queue: every
// figure runs concurrently against the shared runner (whose semaphore
// bounds the real work at -concurrency searches), output is buffered
// per figure and merged to out in paper order, and progress/ETA lines
// plus the cache/wall-clock summary footer stream to progress. Keeping
// timing out of `out` is what makes cold, warm and any-concurrency runs
// byte-identical.
func runQueue(c *ctx, sel []experiment, out, progress io.Writer) error {
	type outcome struct {
		buf bytes.Buffer
		dur time.Duration
		err error
	}
	outcomes := make([]outcome, len(sel))
	pw := &syncWriter{w: progress}
	var done atomic.Int64
	start := time.Now()

	parallel.Do(len(sel), len(sel), func(i int) {
		e := sel[i]
		t0 := time.Now()
		outcomes[i].err = e.run(c, &outcomes[i].buf)
		outcomes[i].dur = time.Since(t0)

		d := done.Add(1)
		elapsed := time.Since(start)
		status := "done"
		if outcomes[i].err != nil {
			status = "FAILED"
		}
		// ETA extrapolates from the mean figure wall-clock so far; with
		// a warm cache it converges to ~0 immediately.
		eta := time.Duration(float64(elapsed) / float64(d) * float64(int64(len(sel))-d))
		fmt.Fprintf(pw, "[%d/%d] %-12s %s in %-8v (elapsed %v, ETA %v)\n",
			d, len(sel), e.name, status, outcomes[i].dur.Round(time.Millisecond),
			elapsed.Round(time.Millisecond), eta.Round(time.Second))
	})

	// Deterministic merge: paper order, independent of completion order.
	for i, e := range sel {
		fmt.Fprintf(out, "=== %s: %s\n", e.name, e.desc)
		if outcomes[i].err != nil {
			return fmt.Errorf("%s: %w", e.name, outcomes[i].err)
		}
		if _, err := out.Write(outcomes[i].buf.Bytes()); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	// Summary footer: per-figure wall-clock and cache counters.
	fmt.Fprintf(pw, "\nper-figure wall-clock:\n")
	for i, e := range sel {
		fmt.Fprintf(pw, "  %-12s %v\n", e.name, outcomes[i].dur.Round(time.Millisecond))
	}
	runs, truth := c.runner.CacheStats()
	fmt.Fprintf(pw, "run cache: %d computed, %d memory hits, %d disk hits, %d deduplicated in-flight (%.1f%% of %d lookups reused)\n",
		runs.Misses, runs.Hits, runs.DiskHits, runs.Shared, 100*runs.ReuseRatio(), runs.Lookups())
	if runs.Loaded > 0 || runs.Invalidated > 0 || runs.Corrupt > 0 {
		fmt.Fprintf(pw, "run cache (disk tier): %d entries loaded, %d invalidated by substrate version, %d damaged lines skipped\n",
			runs.Loaded, runs.Invalidated, runs.Corrupt)
	}
	fmt.Fprintf(pw, "truth tables: %d computed, %d reused\n", truth.Misses, truth.Lookups()-truth.Misses)
	fmt.Fprintf(pw, "total wall-clock %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// regionsFor computes (and memoizes) the Figure 1 region classification.
func (c *ctx) regionsFor(objective core.Objective) (map[string]study.Region, error) {
	key := runcache.Key("regions\x00" + objective.String())
	return c.regions.Do(key, func() (map[string]study.Region, error) {
		return c.runner.ClassifyRegions(objective, c.seeds)
	})
}

// writeCSV writes one CSV file into the output directory.
func (c *ctx) writeCSV(name string, header []string, rows [][]string) error {
	path := filepath.Join(c.outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		_ = f.Close()
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		_ = f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func f(v float64) string { return fmt.Sprintf("%.6g", v) }

// sortedIDs returns map keys in stable order.
func sortedIDs[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
