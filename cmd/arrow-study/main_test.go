package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"table1", "fig1", "fig9", "fig13", "initpoints"} {
		if !strings.Contains(out, name) {
			t.Errorf("experiment %s missing from list", name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-figures", "fig99", "-out", t.TempDir()}, &sb); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunBadSeeds(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-seeds", "0", "-out", t.TempDir()}, &sb); err == nil {
		t.Error("zero seeds should fail")
	}
}

func TestRunCheapFigures(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	err := run([]string{"-figures", "table1,fig3,fig6,fig8", "-seeds", "2", "-out", dir}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, csv := range []string{
		"table1_inventory.csv",
		"fig3_spread.csv",
		"fig6_level_playing_field.csv",
		"fig8_memory_bottleneck.csv",
	} {
		data, err := os.ReadFile(filepath.Join(dir, csv))
		if err != nil {
			t.Errorf("missing %s: %v", csv, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", csv)
		}
	}
	out := sb.String()
	if !strings.Contains(out, "107 in the study set") {
		t.Error("table1 summary missing")
	}
	if !strings.Contains(out, "cost compresses differences") {
		t.Error("fig6 summary missing")
	}
}

func TestRunFig5And7(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-figures", "fig5,fig7", "-seeds", "2", "-out", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, csv := range []string{"fig5_input_size.csv", "fig7a_kernels_als_time.csv", "fig7b_kernels_bayes_cost.csv"} {
		if _, err := os.Stat(filepath.Join(dir, csv)); err != nil {
			t.Errorf("missing %s: %v", csv, err)
		}
	}
	out := sb.String()
	if !strings.Contains(out, "MATERN 5/2") {
		t.Error("kernel rows missing")
	}
	if !strings.Contains(out, "best VM changes with input size") {
		t.Error("fig5 summary missing")
	}
}

func TestRunFig4(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-figures", "fig4", "-seeds", "2", "-out", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "c4.2xlarge is (near-)optimal") {
		t.Error("fig4 summary missing")
	}
}

func TestRunFig2WritesTrajectory(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-figures", "fig2", "-seeds", "2", "-out", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2_als_trajectory.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Header + 18 steps.
	if len(lines) != 19 {
		t.Errorf("%d CSV lines, want 19", len(lines))
	}
	if lines[0] != "step,median_norm_time,q1,q3" {
		t.Errorf("header = %q", lines[0])
	}
}
