package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"table1", "fig1", "fig9", "fig13", "initpoints"} {
		if !strings.Contains(out, name) {
			t.Errorf("experiment %s missing from list", name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-figures", "fig99", "-out", t.TempDir()}, &sb, io.Discard); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunBadSeeds(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-seeds", "0", "-out", t.TempDir()}, &sb, io.Discard); err == nil {
		t.Error("zero seeds should fail")
	}
}

func TestRunCheapFigures(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	err := run([]string{"-figures", "table1,fig3,fig6,fig8", "-seeds", "2", "-out", dir}, &sb, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, csv := range []string{
		"table1_inventory.csv",
		"fig3_spread.csv",
		"fig6_level_playing_field.csv",
		"fig8_memory_bottleneck.csv",
	} {
		data, err := os.ReadFile(filepath.Join(dir, csv))
		if err != nil {
			t.Errorf("missing %s: %v", csv, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", csv)
		}
	}
	out := sb.String()
	if !strings.Contains(out, "107 in the study set") {
		t.Error("table1 summary missing")
	}
	if !strings.Contains(out, "cost compresses differences") {
		t.Error("fig6 summary missing")
	}
}

func TestRunFig5And7(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-figures", "fig5,fig7", "-seeds", "2", "-out", dir}, &sb, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, csv := range []string{"fig5_input_size.csv", "fig7a_kernels_als_time.csv", "fig7b_kernels_bayes_cost.csv"} {
		if _, err := os.Stat(filepath.Join(dir, csv)); err != nil {
			t.Errorf("missing %s: %v", csv, err)
		}
	}
	out := sb.String()
	if !strings.Contains(out, "MATERN 5/2") {
		t.Error("kernel rows missing")
	}
	if !strings.Contains(out, "best VM changes with input size") {
		t.Error("fig5 summary missing")
	}
}

func TestRunFig4(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-figures", "fig4", "-seeds", "2", "-out", dir}, &sb, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "c4.2xlarge is (near-)optimal") {
		t.Error("fig4 summary missing")
	}
}

func TestRunFig2WritesTrajectory(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-figures", "fig2", "-seeds", "2", "-out", dir}, &sb, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2_als_trajectory.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Header + 18 steps.
	if len(lines) != 19 {
		t.Errorf("%d CSV lines, want 19", len(lines))
	}
	if lines[0] != "step,median_norm_time,q1,q3" {
		t.Errorf("header = %q", lines[0])
	}
}

// smokeArgs builds a small two-workload fig1 invocation.
func smokeArgs(outDir, cacheDir string, extra ...string) []string {
	args := []string{
		"-figures", "fig1", "-seeds", "2",
		"-workloads", "pearson/spark2.1/medium,scan/hadoop2.7/medium",
		"-out", outDir, "-cache-dir", cacheDir,
	}
	return append(args, extra...)
}

// readDirCSVs returns name -> contents for every CSV in dir.
func readDirCSVs(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(data)
	}
	return out
}

// TestColdWarmAnyConcurrencyByteIdentical is the acceptance property:
// a cold run, a warm run against its cache, and a different
// -concurrency all produce the same stdout and the same CSV bytes.
func TestColdWarmAnyConcurrencyByteIdentical(t *testing.T) {
	base := t.TempDir()
	cache := filepath.Join(base, "cache")

	coldDir := filepath.Join(base, "cold")
	var coldOut, coldProgress strings.Builder
	if err := run(smokeArgs(coldDir, cache), &coldOut, &coldProgress); err != nil {
		t.Fatal(err)
	}
	shards, err := filepath.Glob(filepath.Join(cache, "shard-*.jsonl"))
	if err != nil || len(shards) == 0 {
		t.Fatalf("cold run wrote no cache shards (err %v)", err)
	}

	warmDir := filepath.Join(base, "warm")
	var warmOut, warmProgress strings.Builder
	if err := run(smokeArgs(warmDir, cache, "-concurrency", "1"), &warmOut, &warmProgress); err != nil {
		t.Fatal(err)
	}

	if coldOut.String() != warmOut.String() {
		t.Errorf("stdout differs between cold and warm runs:\ncold:\n%s\nwarm:\n%s", coldOut.String(), warmOut.String())
	}
	coldCSVs, warmCSVs := readDirCSVs(t, coldDir), readDirCSVs(t, warmDir)
	if len(coldCSVs) == 0 {
		t.Fatal("cold run wrote no CSVs")
	}
	for name, cold := range coldCSVs {
		if warm, ok := warmCSVs[name]; !ok {
			t.Errorf("warm run missing %s", name)
		} else if warm != cold {
			t.Errorf("%s differs between cold and warm runs", name)
		}
	}
	if !strings.Contains(warmProgress.String(), "disk hits") {
		t.Errorf("progress footer missing cache statistics:\n%s", warmProgress.String())
	}
	if !strings.Contains(warmProgress.String(), "per-figure wall-clock") {
		t.Errorf("progress footer missing per-figure wall-clock:\n%s", warmProgress.String())
	}
}

// TestNoCacheFlagForcesColdRun: -no-cache must not create a cache
// directory and still produce the same output.
func TestNoCacheFlagForcesColdRun(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run(smokeArgs(dir, "auto", "-no-cache"), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cache")); !os.IsNotExist(err) {
		t.Errorf("-no-cache must not create %s/cache (err %v)", dir, err)
	}
	if !strings.Contains(out.String(), "=== fig1") {
		t.Error("fig1 output missing")
	}
}

func TestWorkloadsFlagRejectsUnknownID(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-figures", "table1", "-workloads", "not/a/workload", "-out", t.TempDir()}, &sb, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "not in the study set") {
		t.Errorf("unknown workload should fail, got %v", err)
	}
}
