package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// stripTrace reads a JSONL trace file and re-marshals every event with
// its wall fields removed — the deterministic projection.
func stripTrace(t *testing.T, path string) string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, skipped, err := telemetry.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("%d undecodable lines in %s", skipped, path)
	}
	var sb strings.Builder
	for _, e := range events {
		line, err := json.Marshal(e.StripWall())
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestStudyTraceByteIdentical is the acceptance criterion for the study
// trace: the wall-stripped trace must be byte-identical between a cold
// run, a warm re-run against the populated cache, and a run at a
// different concurrency.
func TestStudyTraceByteIdentical(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-figures", "fig9", "-seeds", "2",
		"-workloads", "als/spark2.1/medium,lr/spark1.5/medium",
		"-out", filepath.Join(dir, "results"),
	}
	traces := make([]string, 3)
	for i, extra := range [][]string{
		{"-concurrency", "4"}, // cold: populates the disk cache
		{"-concurrency", "1"}, // warm, serial
		{"-concurrency", "8"}, // warm, wide
	} {
		path := filepath.Join(dir, "trace"+string(rune('0'+i))+".jsonl")
		args := append(append([]string{}, base...), "-trace", path)
		args = append(args, extra...)
		if err := run(args, io.Discard, io.Discard); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		traces[i] = stripTrace(t, path)
	}
	if traces[0] == "" {
		t.Fatal("empty study trace")
	}
	if traces[0] != traces[1] {
		t.Error("cold and warm traces differ after wall-stripping")
	}
	if traces[0] != traces[2] {
		t.Error("traces differ across -concurrency after wall-stripping")
	}

	// Shape: one study_run and one run-cache lookup per distinct (method,
	// objective, workload, seed); fig9 runs 3 methods x 2 objectives
	// (panels a and b) x 2 workloads x 2 seeds.
	var studyRuns, lookups int
	for _, line := range strings.Split(traces[0], "\n") {
		switch {
		case strings.Contains(line, `"kind":"study_run"`):
			studyRuns++
		case strings.Contains(line, `"kind":"cache_lookup"`):
			lookups++
		}
	}
	const want = 3 * 2 * 2 * 2
	if studyRuns != want {
		t.Errorf("%d study_run events, want %d", studyRuns, want)
	}
	if lookups != want {
		t.Errorf("%d cache_lookup events, want %d", lookups, want)
	}
}

// TestStudyMetricsFlag checks that -metrics renders the aggregate table
// to the progress stream, keeping stdout untouched.
func TestStudyMetricsFlag(t *testing.T) {
	dir := t.TempDir()
	var out, progress strings.Builder
	err := run([]string{
		"-figures", "fig9", "-seeds", "1", "-metrics",
		"-workloads", "als/spark2.1/medium",
		"-out", filepath.Join(dir, "results"),
	}, &out, &progress)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(progress.String(), "trace events") {
		t.Errorf("-metrics summary missing from progress stream:\n%s", progress.String())
	}
	if strings.Contains(out.String(), "trace events") {
		t.Error("-metrics summary leaked into stdout")
	}
}
