// Command arrow searches for the best cloud VM for one workload using the
// public API: Naive BO (CherryPick), Arrow's Augmented BO, Hybrid BO, or
// random search, against the built-in simulator substrate.
//
// Usage:
//
//	arrow -workload als/spark2.1/medium -method augmented -objective cost
//	arrow -list                 # list the 107 study workloads
//	arrow -vms                  # list the 18-type VM catalog
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	arrow "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "arrow:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("arrow", flag.ContinueOnError)
	var (
		workloadID = fs.String("workload", "als/spark2.1/medium", "study workload ID (app/system/size)")
		method     = fs.String("method", "augmented", "search method: naive | augmented | hybrid | random")
		objective  = fs.String("objective", "cost", "objective: time | cost | product")
		kernelName = fs.String("kernel", "matern52", "GP kernel for naive BO: rbf | matern12 | matern32 | matern52")
		seed       = fs.Int64("seed", 1, "search seed (initial design + surrogate randomization)")
		trial      = fs.Int64("trial", 1, "measurement-noise trial index")
		delta      = fs.Float64("delta", 1.1, "prediction-delta stop threshold for augmented BO (negative disables)")
		eiStop     = fs.Float64("ei", 0.10, "EI stop fraction for naive BO (negative disables)")
		maxMeas    = fs.Int("max", 0, "maximum measurements (0 = whole catalog)")
		batchK     = fs.Int("batch", 1, "concurrent suggestions per planning round: >1 drives the advisor's NextBatch(k) with k measurement workers; 1 is the classic sequential search")
		slo        = fs.Float64("slo", 0, "maximum execution time SLO in seconds (0 = unconstrained)")
		increfit   = fs.Bool("incremental-refit", true, "reuse surrogate state across iterations (unchanged trees, extended GP factors); searches are bit-identical either way")
		list       = fs.Bool("list", false, "list the study workloads and exit")
		vms        = fs.Bool("vms", false, "list the VM catalog and exit")
		asJSON     = fs.Bool("json", false, "emit the search result as JSON instead of a table")

		retries        = fs.Int("retries", 0, "retries per measurement after a transient failure (0 disables the retry middleware)")
		retryBackoff   = fs.Duration("retry-backoff", 2*time.Second, "initial retry backoff, doubling per failed attempt (capped at 60s)")
		measureTimeout = fs.Duration("measure-timeout", 0, "per-measurement-attempt timeout (0 = unbounded)")
		chaosTransient = fs.Float64("chaos-transient", 0, "inject transient measurement failures at this rate, for exercising -retries")
		chaosFail      = fs.String("chaos-fail", "", "comma-separated candidate indices that permanently fail, for exercising quarantine")

		traceOut    = fs.String("trace", "", "write a JSONL search trace to this file (one event per line; wall-clock fields live in the \"wall\" subobject)")
		showMetrics = fs.Bool("metrics", false, "print trace-derived event counters and latency histograms after the search")

		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		memProfile = fs.String("memprofile", "", "write a heap profile at exit to this file (inspect with go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" || *memProfile != "" {
		finish, perr := startProfiles(*cpuProfile, *memProfile)
		if perr != nil {
			return perr
		}
		defer func() {
			if perr := finish(); perr != nil && err == nil {
				err = perr
			}
		}()
	}

	if *list {
		for _, id := range arrow.WorkloadIDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}
	if *vms {
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "NAME\tVCPUS\tMEM_GIB\tUSD_PER_HR\tFEATURES")
		for _, vm := range arrow.CatalogVMs() {
			fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.3f\t%v\n", vm.Name, vm.VCPUs, vm.MemGiB, vm.PricePerHr, vm.Features)
		}
		return tw.Flush()
	}

	opts, err := buildOptions(*method, *objective, *kernelName, *seed, *delta, *eiStop, *maxMeas)
	if err != nil {
		return err
	}
	var observers []arrow.Observer
	var traceFile *os.File
	var traceSink *arrow.JSONLTracer
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace file: %v", err)
		}
		traceSink = arrow.NewJSONLTracer(traceFile, false)
		observers = append(observers, traceSink)
	}
	var traceMetrics *arrow.TraceMetrics
	if *showMetrics {
		traceMetrics = arrow.NewTraceMetrics()
		observers = append(observers, traceMetrics)
	}
	if obs := arrow.MultiObserver(observers...); obs != nil {
		opts = append(opts, arrow.WithTracer(obs))
	}
	// finishTrace drains the trace sink and renders the metrics table;
	// both run after the search regardless of how it ended.
	finishTrace := func() error {
		if traceSink != nil {
			if err := traceSink.Flush(); err != nil {
				return fmt.Errorf("trace file: %v", err)
			}
			if err := traceFile.Close(); err != nil {
				return fmt.Errorf("trace file: %v", err)
			}
		}
		if traceMetrics != nil {
			fmt.Fprintf(out, "\n%s", arrow.RenderTraceSummary(traceMetrics))
		}
		return nil
	}
	if *slo > 0 {
		opts = append(opts, arrow.WithMaxTimeSLO(*slo))
	}
	if !*increfit {
		opts = append(opts, arrow.WithFullRefit())
	}
	if *retries > 0 {
		opts = append(opts, arrow.WithRetry(arrow.RetryPolicy{
			MaxAttempts:    *retries + 1,
			InitialBackoff: *retryBackoff,
			Seed:           *seed,
		}))
	}
	if *measureTimeout > 0 {
		opts = append(opts, arrow.WithMeasureTimeout(*measureTimeout))
	}
	opt, err := arrow.New(opts...)
	if err != nil {
		return err
	}
	target, err := arrow.NewSimulatedTarget(*workloadID, *trial)
	if err != nil {
		return err
	}
	if *chaosTransient > 0 || *chaosFail != "" {
		permanent, err := parseIndices(*chaosFail, target.NumCandidates())
		if err != nil {
			return err
		}
		target = arrow.NewChaosTarget(target, arrow.ChaosConfig{
			Seed:              *seed,
			TransientRate:     *chaosTransient,
			PermanentFailures: permanent,
		})
	}

	if *batchK < 1 {
		return fmt.Errorf("-batch must be at least 1, got %d", *batchK)
	}
	// search runs either the classic sequential loop or, with -batch k>1,
	// the advisor's batch pipeline: NextBatch(k) hands out k concurrent
	// suggestions, k workers measure them in parallel, and observations
	// flow back in completion order.
	search := func() (*arrow.Result, error) {
		if *batchK == 1 {
			return opt.Search(target)
		}
		return searchBatched(opt, target, *batchK)
	}

	if *asJSON {
		// A partial result is still emitted — the failure records and
		// salvaged observations are the point — before the error makes
		// the exit code nonzero.
		res, err := search()
		if res != nil {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if encErr := enc.Encode(res); encErr != nil {
				return encErr
			}
		}
		if terr := finishTrace(); terr != nil && err == nil {
			err = terr
		}
		return err
	}

	fmt.Fprintf(out, "searching %s for the best VM (%s, objective %s)\n\n", *workloadID, opt.Method(), opt.Objective())
	res, err := search()
	if res == nil {
		if terr := finishTrace(); terr != nil && err == nil {
			err = terr
		}
		return err
	}
	if perr := printResult(out, res, *slo); perr != nil {
		return perr
	}
	if err != nil {
		fmt.Fprintf(out, "\nsearch aborted: %v\n", err)
		fmt.Fprintf(out, "salvaged %d completed measurement(s) above\n", res.NumMeasurements())
	}
	if terr := finishTrace(); terr != nil && err == nil {
		err = terr
	}
	return err
}

// searchBatched drives an advisor session with k suggestions in flight:
// each planning round asks NextBatch(k), measures the batch on k worker
// goroutines, and reports the outcomes as they complete — out of order
// is fine, the advisor matches observations by candidate index. Note
// that measurement middleware (retries, timeouts) does not apply here:
// the advisor never measures, so a transient failure quarantines the
// candidate exactly as a failed batch-search measurement would.
func searchBatched(opt *arrow.Optimizer, target arrow.Target, k int) (*arrow.Result, error) {
	adv, err := opt.NewAdvisor(arrow.TargetCandidates(target))
	if err != nil {
		return nil, err
	}
	// The simulator (and its chaos wrapper) owns per-target RNG state, so
	// measurements are serialized; real targets measure genuinely in
	// parallel, which is the point of the batch pipeline.
	var measureMu sync.Mutex
	for {
		sugs, err := adv.NextBatch(context.Background(), k)
		if err != nil {
			res, aerr := adv.Abort(err)
			if res == nil {
				return nil, aerr
			}
			return res, err
		}
		if sugs[0].Done {
			break
		}
		var (
			wg      sync.WaitGroup
			obsErrs = make([]error, len(sugs))
		)
		for i, sug := range sugs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				measureMu.Lock()
				out, merr := target.Measure(sug.Index)
				measureMu.Unlock()
				if merr != nil {
					obsErrs[i] = adv.ObserveFailure(sug.Index, merr)
				} else {
					obsErrs[i] = adv.Observe(sug.Index, out)
				}
			}()
		}
		wg.Wait()
		for _, oerr := range obsErrs {
			if oerr != nil {
				res, aerr := adv.Abort(oerr)
				if res == nil {
					return nil, aerr
				}
				return res, oerr
			}
		}
	}
	return adv.Result()
}

// startProfiles begins CPU profiling (when cpu is non-empty) and returns a
// finish function that stops it and writes the heap profile (when mem is
// non-empty). Either path may be empty to skip that profile.
func startProfiles(cpu, mem string) (finish func() error, err error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %v", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %v", err)
			}
		}
		if mem != "" {
			runtime.GC() // flush unreachable objects so the heap profile reflects live data
			f, err := os.Create(mem)
			if err != nil {
				return fmt.Errorf("heap profile: %v", err)
			}
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("heap profile: %v", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}

// printResult renders the observation table, the failure records and the
// verdict. It handles partial results, where there may be no best VM.
func printResult(out io.Writer, res *arrow.Result, slo float64) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "STEP\tVM\tTIME_S\tCOST_USD\tOBJECTIVE")
	for i, obs := range res.Observations {
		fmt.Fprintf(tw, "%d\t%s\t%.1f\t%.4f\t%.5g\n", i+1, obs.Name, obs.Outcome.TimeSec, obs.Outcome.CostUSD, obs.Value)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(res.Failures) > 0 {
		fmt.Fprintf(out, "\nquarantined %d candidate(s):\n", len(res.Failures))
		for _, f := range res.Failures {
			fmt.Fprintf(out, "  %s after %d attempt(s): %s\n", f.Name, f.Attempts, f.Reason)
		}
	}
	if res.BestIndex >= 0 {
		fmt.Fprintf(out, "\nbest VM: %s (objective %.5g) after %d measurements\n", res.BestName, res.BestValue, res.NumMeasurements())
	} else {
		fmt.Fprintf(out, "\nno VM could be measured\n")
	}
	if res.StoppedEarly {
		fmt.Fprintf(out, "stopped early: %s\n", res.StopReason)
	}
	if !res.SLOSatisfied {
		fmt.Fprintf(out, "WARNING: no VM met the %.0fs SLO; showing the fastest VM observed\n", slo)
	}
	return nil
}

// parseIndices parses a comma-separated candidate index list.
func parseIndices(s string, n int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		idx, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad candidate index %q: %v", part, err)
		}
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("candidate index %d out of [0,%d)", idx, n)
		}
		out = append(out, idx)
	}
	return out, nil
}

func buildOptions(method, objective, kernelName string, seed int64, delta, eiStop float64, maxMeas int) ([]arrow.Option, error) {
	var opts []arrow.Option

	switch method {
	case "naive":
		opts = append(opts, arrow.WithMethod(arrow.MethodNaiveBO))
	case "augmented":
		opts = append(opts, arrow.WithMethod(arrow.MethodAugmentedBO))
	case "hybrid":
		opts = append(opts, arrow.WithMethod(arrow.MethodHybridBO))
	case "random":
		opts = append(opts, arrow.WithMethod(arrow.MethodRandomSearch))
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}

	switch objective {
	case "time":
		opts = append(opts, arrow.WithObjective(arrow.MinimizeTime))
	case "cost":
		opts = append(opts, arrow.WithObjective(arrow.MinimizeCost))
	case "product":
		opts = append(opts, arrow.WithObjective(arrow.MinimizeTimeCostProduct))
	default:
		return nil, fmt.Errorf("unknown objective %q", objective)
	}

	switch kernelName {
	case "rbf":
		opts = append(opts, arrow.WithKernel(arrow.KernelRBF))
	case "matern12":
		opts = append(opts, arrow.WithKernel(arrow.KernelMatern12))
	case "matern32":
		opts = append(opts, arrow.WithKernel(arrow.KernelMatern32))
	case "matern52":
		opts = append(opts, arrow.WithKernel(arrow.KernelMatern52))
	default:
		return nil, fmt.Errorf("unknown kernel %q", kernelName)
	}

	opts = append(opts,
		arrow.WithSeed(seed),
		arrow.WithDeltaThreshold(delta),
		arrow.WithEIStopFraction(eiStop),
	)
	if maxMeas > 0 {
		opts = append(opts, arrow.WithMaxMeasurements(maxMeas))
	}
	return opts, nil
}
