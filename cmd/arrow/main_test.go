package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 107 {
		t.Errorf("%d workloads listed, want 107", len(lines))
	}
}

func TestRunVMs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-vms"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, vm := range []string{"c4.2xlarge", "m4.large", "r3.xlarge"} {
		if !strings.Contains(out, vm) {
			t.Errorf("VM %s missing from listing", vm)
		}
	}
}

func TestRunSearch(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-workload", "kmeans/spark2.1/medium",
		"-method", "augmented",
		"-objective", "cost",
		"-seed", "3",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "best VM:") {
		t.Errorf("result line missing:\n%s", out)
	}
	if !strings.Contains(out, "STEP") {
		t.Error("step table missing")
	}
}

func TestRunSearchEveryMethod(t *testing.T) {
	for _, method := range []string{"naive", "hybrid", "random"} {
		var sb strings.Builder
		err := run([]string{
			"-workload", "pearson/spark2.1/medium",
			"-method", method,
			"-max", "6",
		}, &sb)
		if err != nil {
			t.Errorf("%s: %v", method, err)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	tests := [][]string{
		{"-method", "genetic"},
		{"-objective", "latency"},
		{"-kernel", "cubic"},
		{"-workload", "no/such/workload"},
	}
	for _, args := range tests {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-workload", "kmeans/spark2.1/medium",
		"-method", "naive",
		"-max", "5",
		"-json",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Method       string `json:"method"`
		BestName     string `json:"best_name"`
		Observations []any  `json:"observations"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
		t.Fatalf("invalid JSON output: %v", err)
	}
	if res.Method != "naive-bo" || res.BestName == "" || len(res.Observations) == 0 {
		t.Errorf("unexpected JSON payload: %+v", res)
	}
}

func TestBuildOptions(t *testing.T) {
	opts, err := buildOptions("naive", "time", "rbf", 1, 1.1, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) == 0 {
		t.Error("no options built")
	}
}

func TestRunChaosWithRetriesSucceeds(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-workload", "pearson/spark2.1/medium",
		"-method", "augmented",
		"-seed", "3",
		"-retries", "4",
		"-retry-backoff", "1ms",
		"-chaos-transient", "0.2",
	}, &sb)
	if err != nil {
		t.Fatalf("retries should absorb a 20%% transient rate: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "best VM:") {
		t.Errorf("result line missing:\n%s", sb.String())
	}
}

func TestRunChaosPermanentFailurePrintsQuarantine(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-workload", "pearson/spark2.1/medium",
		"-method", "random",
		"-seed", "2",
		"-chaos-fail", "3",
	}, &sb)
	if err != nil {
		t.Fatalf("one dead candidate must not fail the search: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "quarantined 1 candidate(s):") {
		t.Errorf("quarantine report missing:\n%s", out)
	}
	if !strings.Contains(out, "best VM:") {
		t.Errorf("result line missing:\n%s", out)
	}
}

func TestRunTotalOutageEmitsPartialJSONAndFails(t *testing.T) {
	all := ""
	for i := 0; i < 18; i++ {
		if i > 0 {
			all += ","
		}
		all += strconv.Itoa(i)
	}
	var sb strings.Builder
	err := run([]string{
		"-workload", "pearson/spark2.1/medium",
		"-method", "hybrid",
		"-chaos-fail", all,
		"-json",
	}, &sb)
	if err == nil {
		t.Fatal("a total outage should exit nonzero")
	}
	var res struct {
		Partial  bool `json:"partial"`
		Failures []struct {
			Name  string `json:"name"`
			Error string `json:"error"`
		} `json:"failures"`
		BestIndex int `json:"best_index"`
	}
	if jerr := json.Unmarshal([]byte(sb.String()), &res); jerr != nil {
		t.Fatalf("partial result JSON not emitted: %v\n%s", jerr, sb.String())
	}
	if !res.Partial || res.BestIndex != -1 {
		t.Errorf("partial=%v best=%d, want a partial result with no best", res.Partial, res.BestIndex)
	}
	if len(res.Failures) == 0 || res.Failures[0].Error == "" {
		t.Errorf("failure records missing from JSON: %+v", res.Failures)
	}
}

func TestRunBadChaosFailIndex(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-chaos-fail", "99"}, &sb); err == nil {
		t.Error("out-of-range candidate index should fail")
	}
	if err := run([]string{"-chaos-fail", "x"}, &sb); err == nil {
		t.Error("non-numeric candidate index should fail")
	}
}

func TestRunMeasureTimeoutFlag(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-workload", "pearson/spark2.1/medium",
		"-method", "random",
		"-max", "4",
		"-measure-timeout", "30s",
	}, &sb)
	if err != nil {
		t.Fatalf("generous timeout should not trip on the simulator: %v", err)
	}
	if !strings.Contains(sb.String(), "best VM:") {
		t.Errorf("result line missing:\n%s", sb.String())
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var sb strings.Builder
	err := run([]string{
		"-workload", "kmeans/spark2.1/medium",
		"-method", "augmented",
		"-max", "5",
		"-cpuprofile", cpu,
		"-memprofile", mem,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

func TestRunRejectsBadProfilePath(t *testing.T) {
	err := run([]string{
		"-max", "3",
		"-cpuprofile", filepath.Join(t.TempDir(), "missing-dir", "cpu.pprof"),
	}, &strings.Builder{})
	if err == nil {
		t.Fatal("expected an error for an unwritable profile path")
	}
}
