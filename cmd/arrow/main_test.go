package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 107 {
		t.Errorf("%d workloads listed, want 107", len(lines))
	}
}

func TestRunVMs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-vms"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, vm := range []string{"c4.2xlarge", "m4.large", "r3.xlarge"} {
		if !strings.Contains(out, vm) {
			t.Errorf("VM %s missing from listing", vm)
		}
	}
}

func TestRunSearch(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-workload", "kmeans/spark2.1/medium",
		"-method", "augmented",
		"-objective", "cost",
		"-seed", "3",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "best VM:") {
		t.Errorf("result line missing:\n%s", out)
	}
	if !strings.Contains(out, "STEP") {
		t.Error("step table missing")
	}
}

func TestRunSearchEveryMethod(t *testing.T) {
	for _, method := range []string{"naive", "hybrid", "random"} {
		var sb strings.Builder
		err := run([]string{
			"-workload", "pearson/spark2.1/medium",
			"-method", method,
			"-max", "6",
		}, &sb)
		if err != nil {
			t.Errorf("%s: %v", method, err)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	tests := [][]string{
		{"-method", "genetic"},
		{"-objective", "latency"},
		{"-kernel", "cubic"},
		{"-workload", "no/such/workload"},
	}
	for _, args := range tests {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-workload", "kmeans/spark2.1/medium",
		"-method", "naive",
		"-max", "5",
		"-json",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Method       string `json:"method"`
		BestName     string `json:"best_name"`
		Observations []any  `json:"observations"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
		t.Fatalf("invalid JSON output: %v", err)
	}
	if res.Method != "naive-bo" || res.BestName == "" || len(res.Observations) == 0 {
		t.Errorf("unexpected JSON payload: %+v", res)
	}
}

func TestBuildOptions(t *testing.T) {
	opts, err := buildOptions("naive", "time", "rbf", 1, 1.1, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) == 0 {
		t.Error("no options built")
	}
}
