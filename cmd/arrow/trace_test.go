package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestRunTraceFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	var sb strings.Builder
	err := run([]string{
		"-workload", "als/spark2.1/medium", "-method", "hybrid",
		"-seed", "3", "-trace", path, "-metrics",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, skipped, err := telemetry.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("%d undecodable lines in the trace", skipped)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	if events[0].Kind != telemetry.KindSearchStart {
		t.Errorf("trace opens with %s, want search_start", events[0].Kind)
	}
	if events[len(events)-1].Kind != telemetry.KindSearchEnd {
		t.Errorf("trace closes with %s, want search_end", events[len(events)-1].Kind)
	}
	// The streamed trace keeps wall-clock timings for real diagnostics.
	var timed bool
	for _, e := range events {
		if e.Wall != nil && e.Wall.DurationNS > 0 {
			timed = true
		}
	}
	if !timed {
		t.Error("no event carries a wall-clock duration")
	}
	// -metrics renders the summary after the result table.
	for _, want := range []string{"best VM:", "trace events", "OPERATION"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunTraceWithChaosRecordsRetries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	var sb strings.Builder
	err := run([]string{
		"-workload", "als/spark2.1/medium", "-method", "augmented",
		"-seed", "5", "-retries", "3", "-retry-backoff", "1ns",
		"-chaos-transient", "0.4", "-chaos-fail", "2",
		"-delta", "-1", // exhaust the catalog so candidate 2 is guaranteed a visit
		"-trace", path,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, _, err := telemetry.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	var retries, quarantines int
	for _, e := range events {
		switch e.Kind {
		case telemetry.KindMeasureRetry:
			retries++
		case telemetry.KindQuarantine:
			quarantines++
		}
	}
	if retries == 0 {
		t.Error("chaos at 40% transient rate produced no measure_retry events")
	}
	if quarantines == 0 {
		t.Error("permanently failing candidate 2 was never quarantined in the trace")
	}
}
