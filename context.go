package arrow

import (
	"context"
	"fmt"
)

// This file adds the deployment conveniences a real (non-simulated) cloud
// target needs: context cancellation between measurements and progress
// observation during long searches, where a single Measure call can take
// tens of minutes of wall-clock time on a live cluster.

// ProgressFunc receives each observation as it is measured, with the
// 1-based step number. It runs synchronously on the search goroutine, so
// it must not block.
type ProgressFunc func(step int, obs Observation)

// SearchContext runs the configured optimizer against target, checking
// ctx between measurements: when ctx is canceled the search stops before
// issuing the next measurement and returns ctx's error. The optional
// progress callback fires after every completed measurement.
//
// Cancellation does not throw the session away: the returned *Result
// (with Partial set) carries every observation completed before the
// cancel, alongside the error. The cancellation check and the progress
// callback sit outside any WithRetry/WithMeasureTimeout middleware, so
// progress fires once per accepted measurement, not per retry attempt.
func (o *Optimizer) SearchContext(ctx context.Context, target Target, progress ProgressFunc) (*Result, error) {
	if ctx == nil {
		return nil, fmt.Errorf("arrow: nil context")
	}
	var wrapped *ctxTarget
	res, err := o.searchTarget(target, func(t Target) Target {
		wrapped = &ctxTarget{ctx: ctx, t: t, progress: progress}
		return wrapped
	})
	if err != nil {
		// wrapped is nil when the configuration failed before the target
		// was ever wrapped; that error wins even under a canceled ctx.
		if ctxErr := ctx.Err(); ctxErr != nil && wrapped != nil {
			return res, fmt.Errorf("arrow: search canceled after %d measurements: %w", wrapped.steps, ctxErr)
		}
		return res, err
	}
	return res, nil
}

// ctxTarget wraps a Target with cancellation checks and progress
// reporting.
type ctxTarget struct {
	ctx      context.Context
	t        Target
	progress ProgressFunc
	steps    int
}

var _ Target = (*ctxTarget)(nil)

func (c *ctxTarget) NumCandidates() int       { return c.t.NumCandidates() }
func (c *ctxTarget) Features(i int) []float64 { return c.t.Features(i) }
func (c *ctxTarget) Name(i int) string        { return c.t.Name(i) }

func (c *ctxTarget) Measure(i int) (Outcome, error) {
	if err := c.ctx.Err(); err != nil {
		return Outcome{}, err
	}
	out, err := c.t.Measure(i)
	if err != nil {
		return Outcome{}, err
	}
	// A corrupted outcome that slipped past the middleware is about to be
	// rejected and quarantined by the core; it is not an accepted
	// measurement, so neither the step counter nor progress fires for it.
	if ValidateOutcome(out) != nil {
		return out, nil
	}
	c.steps++
	if c.progress != nil {
		c.progress(c.steps, Observation{Index: i, Name: c.t.Name(i), Outcome: out})
	}
	return out, nil
}
