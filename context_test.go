package arrow

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestSearchContextCompletes(t *testing.T) {
	target, err := NewSimulatedTarget("pearson/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(WithMethod(MethodAugmentedBO), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	var steps atomic.Int64
	res, err := opt.SearchContext(context.Background(), target, func(step int, obs Observation) {
		steps.Add(1)
		if obs.Name == "" {
			t.Error("empty observation name in progress callback")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(steps.Load()) != res.NumMeasurements() {
		t.Errorf("progress fired %d times for %d measurements", steps.Load(), res.NumMeasurements())
	}
}

func TestSearchContextNilProgress(t *testing.T) {
	target, err := NewSimulatedTarget("pearson/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.SearchContext(context.Background(), target, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSearchContextCanceledImmediately(t *testing.T) {
	target, err := NewSimulatedTarget("pearson/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := opt.SearchContext(ctx, target, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", err)
	}
}

func TestSearchContextCanceledMidway(t *testing.T) {
	target, err := NewSimulatedTarget("pearson/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(WithMethod(MethodNaiveBO), WithEIStopFraction(-1), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	count := 0
	_, err = opt.SearchContext(ctx, target, func(step int, obs Observation) {
		count++
		if count == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if count != 5 {
		t.Errorf("measured %d times after cancellation at 5", count)
	}
}

func TestSearchContextNil(t *testing.T) {
	opt, err := New()
	if err != nil {
		t.Fatal(err)
	}
	//nolint:staticcheck // deliberately passing nil to test the guard.
	if _, err := opt.SearchContext(nil, nil, nil); err == nil {
		t.Error("nil context should fail")
	}
}
