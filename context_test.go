package arrow

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestSearchContextCompletes(t *testing.T) {
	target, err := NewSimulatedTarget("pearson/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(WithMethod(MethodAugmentedBO), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	var steps atomic.Int64
	res, err := opt.SearchContext(context.Background(), target, func(step int, obs Observation) {
		steps.Add(1)
		if obs.Name == "" {
			t.Error("empty observation name in progress callback")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(steps.Load()) != res.NumMeasurements() {
		t.Errorf("progress fired %d times for %d measurements", steps.Load(), res.NumMeasurements())
	}
}

func TestSearchContextNilProgress(t *testing.T) {
	target, err := NewSimulatedTarget("pearson/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.SearchContext(context.Background(), target, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSearchContextCanceledImmediately(t *testing.T) {
	target, err := NewSimulatedTarget("pearson/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := opt.SearchContext(ctx, target, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", err)
	}
}

func TestSearchContextCanceledMidway(t *testing.T) {
	target, err := NewSimulatedTarget("pearson/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(WithMethod(MethodNaiveBO), WithEIStopFraction(-1), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	count := 0
	_, err = opt.SearchContext(ctx, target, func(step int, obs Observation) {
		count++
		if count == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if count != 5 {
		t.Errorf("measured %d times after cancellation at 5", count)
	}
}

func TestSearchContextNil(t *testing.T) {
	opt, err := New()
	if err != nil {
		t.Fatal(err)
	}
	//nolint:staticcheck // deliberately passing nil to test the guard.
	if _, err := opt.SearchContext(nil, nil, nil); err == nil {
		t.Error("nil context should fail")
	}
}

func TestSearchContextCancellationSalvagesPartialResult(t *testing.T) {
	target, err := NewSimulatedTarget("pearson/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(WithMethod(MethodNaiveBO), WithEIStopFraction(-1), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := opt.SearchContext(ctx, target, func(step int, obs Observation) {
		if step == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancellation must not discard the measurements already paid for")
	}
	if !res.Partial {
		t.Error("salvaged result should be marked partial")
	}
	if res.NumMeasurements() != 5 {
		t.Errorf("salvaged %d observations, want the 5 completed before the cancel", res.NumMeasurements())
	}
	if res.BestIndex < 0 || res.BestName == "" {
		t.Errorf("salvaged result has no best-so-far: index %d name %q", res.BestIndex, res.BestName)
	}
}

func TestSearchContextProgressFiresPerMeasurementNotPerRetry(t *testing.T) {
	target, err := NewSimulatedTarget("pearson/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	chaos := NewChaosTarget(target, ChaosConfig{Seed: 4, TransientRate: 0.5})
	opt, err := New(WithMethod(MethodAugmentedBO), WithSeed(2),
		WithRetry(RetryPolicy{Seed: 2, Sleep: func(time.Duration) {}}))
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	res, err := opt.SearchContext(context.Background(), chaos, func(step int, obs Observation) {
		fired++
		if step != fired {
			t.Errorf("progress step %d fired out of order (want %d)", step, fired)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if chaos.Stats().Transient == 0 {
		t.Fatal("no transients injected; the test proves nothing")
	}
	if fired != res.NumMeasurements() {
		t.Errorf("progress fired %d times for %d accepted measurements", fired, res.NumMeasurements())
	}
}
