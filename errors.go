package arrow

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/lowlevel"
)

// This file is the failure taxonomy of the measurement layer. On a real
// cloud a Measure call can fail for reasons with very different remedies:
// a spot-capacity hiccup or a throttled API wants a retry, an unsupported
// instance type never succeeds no matter how often it is tried, and a
// canceled context means the caller has given up on the whole search.
// Typed errors let the retry middleware and the search loop tell these
// apart without string matching.

// TransientError marks a measurement failure worth retrying: capacity
// shortages, network partitions, throttling. Construct with Transient.
type TransientError struct{ Err error }

// Error implements error.
func (e *TransientError) Error() string { return e.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// Temporary reports that a retry may succeed. The method name follows
// net.Error, so third-party errors carrying the same signal are
// recognized too.
func (e *TransientError) Temporary() bool { return true }

// PermanentError marks a measurement failure that no retry can fix: the
// instance type is not offered in the region, the image is incompatible,
// the quota is zero. Construct with Permanent.
type PermanentError struct{ Err error }

// Error implements error.
func (e *PermanentError) Error() string { return e.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *PermanentError) Unwrap() error { return e.Err }

// Temporary reports that retrying is pointless.
func (e *PermanentError) Temporary() bool { return false }

// Transient wraps err as retryable. Returns nil for a nil err.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// Permanent wraps err as not worth retrying. Returns nil for a nil err.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &PermanentError{Err: err}
}

// Fatal marks err as search-fatal: instead of quarantining the failing
// candidate and continuing, the optimizer aborts the whole search and
// returns a partial result. Context cancellation errors are always fatal
// and need no marking.
func Fatal(err error) error { return core.Fatal(err) }

// Retryable classifies a measurement error for the retry middleware.
//
// Explicitly typed errors — TransientError, PermanentError, or anything
// exposing net.Error's Temporary() bool — are trusted. Context
// cancellation and search-fatal errors are never retried: the caller gave
// up or the target declared the search dead. Every other (untyped) error
// defaults to retryable, because in a cloud the common untyped failures
// (SSH resets, API 5xx, spot reclaims) are transient.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var fatal interface{ SearchFatal() bool }
	if errors.As(err, &fatal) && fatal.SearchFatal() {
		return false
	}
	var tmp interface{ Temporary() bool }
	if errors.As(err, &tmp) {
		return tmp.Temporary()
	}
	return true
}

// RetryExhaustedError reports that every allowed attempt at a measurement
// failed. The search loop then quarantines the candidate; the error
// records how hard it tried and why the last attempt failed.
type RetryExhaustedError struct {
	// Attempts is the number of Measure calls made.
	Attempts int
	// Last is the error of the final attempt.
	Last error
}

// Error implements error.
func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("arrow: measurement failed after %d attempt(s): %v", e.Attempts, e.Last)
}

// Unwrap exposes the final attempt's error to errors.Is/As.
func (e *RetryExhaustedError) Unwrap() error { return e.Last }

// ErrInvalidOutcome reports a measurement whose outcome would poison the
// surrogate models: NaN/Inf/non-positive execution time, negative or
// non-finite cost, or an out-of-range metric vector. The search loop
// quarantines candidates that keep producing such outcomes.
var ErrInvalidOutcome = core.ErrInvalidOutcome

// ErrAllCandidatesFailed reports a search in which not a single candidate
// could be measured.
var ErrAllCandidatesFailed = core.ErrAllCandidatesFailed

// ValidateOutcome rejects outcomes that would poison the surrogates:
// NaN/Inf/non-positive time, negative or non-finite cost, a metric vector
// of the wrong length or with out-of-range entries. The search loop
// applies the same gate to every measurement; targets can use it to
// self-check before returning.
func ValidateOutcome(out Outcome) error {
	var metrics lowlevel.Vector
	if out.Metrics != nil {
		m, err := lowlevel.FromSlice(out.Metrics)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidOutcome, err)
		}
		metrics = m
	}
	return core.ValidateOutcome(core.Outcome{TimeSec: out.TimeSec, CostUSD: out.CostUSD, Metrics: metrics})
}
