// Clustersearch extends the paper's problem to the joint space CherryPick
// originally targeted: VM type x node count (72 candidates instead of 18).
// The same Augmented BO searches the bigger space unchanged; the optimal
// cluster shape differs per workload, so neither "fewest big boxes" nor
// "many small boxes" is a safe default.
//
// Run with:
//
//	go run ./examples/clustersearch
package main

import (
	"fmt"
	"log"

	arrow "repro"
)

func main() {
	for _, workload := range []string{
		"word2vec/spark2.1/medium", // CPU-heavy, parallel: scale-out pays
		"gb-tree/spark2.1/medium",  // high serial fraction: scale-out stalls
		"lr/spark1.5/medium",       // memory-bound: nodes buy RAM
	} {
		target, err := arrow.NewSimulatedClusterTarget(workload, 1)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := arrow.New(
			arrow.WithMethod(arrow.MethodAugmentedBO),
			arrow.WithObjective(arrow.MinimizeCost),
			arrow.WithDeltaThreshold(1.1),
			arrow.WithNumInitial(4), // the 72-candidate space deserves a bigger design
			arrow.WithSeed(7),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := opt.Search(target)
		if err != nil {
			log.Fatal(err)
		}
		var best arrow.Observation
		for _, obs := range res.Observations {
			if obs.Index == res.BestIndex {
				best = obs
			}
		}
		fmt.Printf("%-26s best cluster %-16s %7.1fs  $%.4f/run  (%d of %d configs measured)\n",
			workload, res.BestName, best.Outcome.TimeSec, best.Outcome.CostUSD,
			res.NumMeasurements(), target.NumCandidates())
	}
}
