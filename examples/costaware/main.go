// Costaware demonstrates the practical-implications study of the paper's
// Section VI on one workload:
//
//  1. the search-cost / solution-quality trade-off exposed by Augmented
//     BO's Prediction-Delta stopping threshold (Figure 11), and
//  2. the time-cost product objective that finds a VM balancing both
//     (Figure 13) instead of optimizing one dimension alone.
//
// Run with:
//
//	go run ./examples/costaware
package main

import (
	"fmt"
	"log"

	arrow "repro"
)

const workload = "bayes/spark2.1/medium"

func main() {
	if err := demoThresholdTradeoff(); err != nil {
		log.Fatal(err)
	}
	if err := demoTimeCostProduct(); err != nil {
		log.Fatal(err)
	}
}

func demoThresholdTradeoff() error {
	fmt.Printf("stopping-threshold trade-off on %s (cost objective)\n", workload)
	fmt.Println("threshold | measurements | best found ($) — averaged over 20 seeds")
	for _, threshold := range []float64{0.9, 1.0, 1.1, 1.2, 1.3} {
		var sumCost, sumMeas float64
		const seeds = 20
		for seed := int64(0); seed < seeds; seed++ {
			target, err := arrow.NewSimulatedTarget(workload, seed)
			if err != nil {
				return err
			}
			opt, err := arrow.New(
				arrow.WithMethod(arrow.MethodAugmentedBO),
				arrow.WithObjective(arrow.MinimizeCost),
				arrow.WithDeltaThreshold(threshold),
				arrow.WithSeed(seed),
			)
			if err != nil {
				return err
			}
			res, err := opt.Search(target)
			if err != nil {
				return err
			}
			sumCost += res.BestValue
			sumMeas += float64(res.NumMeasurements())
		}
		fmt.Printf("  %5.2f   | %12.1f | %.4f\n", threshold, sumMeas/20, sumCost/20)
	}
	fmt.Println()
	return nil
}

func demoTimeCostProduct() error {
	fmt.Printf("objective comparison on %s (seed 7)\n", workload)
	for _, objective := range []arrow.Objective{
		arrow.MinimizeTime,
		arrow.MinimizeCost,
		arrow.MinimizeTimeCostProduct,
	} {
		target, err := arrow.NewSimulatedTarget(workload, 7)
		if err != nil {
			return err
		}
		opt, err := arrow.New(
			arrow.WithMethod(arrow.MethodAugmentedBO),
			arrow.WithObjective(objective),
			arrow.WithDeltaThreshold(1.05),
			arrow.WithSeed(7),
		)
		if err != nil {
			return err
		}
		res, err := opt.Search(target)
		if err != nil {
			return err
		}
		var best arrow.Observation
		for _, obs := range res.Observations {
			if obs.Index == res.BestIndex {
				best = obs
			}
		}
		fmt.Printf("  minimize %-18s -> %-12s time %7.1fs  cost $%.4f  (%d measurements)\n",
			objective, res.BestName, best.Outcome.TimeSec, best.Outcome.CostUSD, res.NumMeasurements())
	}
	return nil
}
