// Customworkload shows how to plug your own measurable system into the
// public API: anything that can run a job on a candidate configuration and
// report its time, cost, and (optionally) low-level metrics implements
// arrow.Target.
//
// The example models a small fleet of self-managed build servers: four
// machine shapes with different core counts and disks. The "measurement"
// here is a toy analytic model standing in for a real CI run — replace
// Measure with an SSH command, a Kubernetes job, or a cloud API call.
//
// Run with:
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"
	"math"

	arrow "repro"
)

// buildServer is one candidate configuration of the fleet.
type buildServer struct {
	name      string
	cores     float64
	diskMBps  float64
	hourlyUSD float64
}

// ciFleet implements arrow.Target over the fleet. Each measurement
// "runs" a build: compile time scales with cores (Amdahl), artifact I/O
// with disk speed.
type ciFleet struct {
	servers []buildServer
	runs    int
}

// Compile-time check that ciFleet satisfies the public interface.
var _ arrow.Target = (*ciFleet)(nil)

func (f *ciFleet) NumCandidates() int { return len(f.servers) }

func (f *ciFleet) Features(i int) []float64 {
	s := f.servers[i]
	return []float64{s.cores, s.diskMBps}
}

func (f *ciFleet) Name(i int) string { return f.servers[i].name }

func (f *ciFleet) Measure(i int) (arrow.Outcome, error) {
	s := f.servers[i]
	f.runs++

	// A toy build: 1200 core-seconds of compilation with a 25% serial
	// linker phase, plus 3 GB of artifact I/O.
	const (
		compileWork = 1200.0
		serialFrac  = 0.25
		artifactMB  = 3000.0
	)
	effCores := 1 / (serialFrac + (1-serialFrac)/s.cores)
	compileSec := compileWork / effCores
	ioSec := artifactMB / s.diskMBps
	totalSec := compileSec + ioSec

	// Low-level metrics in arrow.MetricNames() order: %user, %iowait,
	// task count, %commit, %util, await-ms. A real deployment would read
	// these from sysstat on the build server.
	utilization := effCores / s.cores
	metrics := []float64{
		100 * (compileSec / totalSec) * utilization, // %user
		100 * (ioSec / totalSec),                    // %iowait
		4 + 2*s.cores,                               // tasks
		55,                                          // %commit
		100 * math.Min(1, ioSec/totalSec*1.5),       // %util
		5 + ioSec/totalSec*20,                       // await-ms
	}

	return arrow.Outcome{
		TimeSec: totalSec,
		CostUSD: totalSec / 3600 * s.hourlyUSD,
		Metrics: metrics,
	}, nil
}

func main() {
	fleet := &ciFleet{servers: []buildServer{
		{name: "small-hdd", cores: 2, diskMBps: 120, hourlyUSD: 0.08},
		{name: "small-ssd", cores: 2, diskMBps: 500, hourlyUSD: 0.11},
		{name: "medium-ssd", cores: 4, diskMBps: 500, hourlyUSD: 0.20},
		{name: "large-ssd", cores: 8, diskMBps: 500, hourlyUSD: 0.38},
		{name: "large-nvme", cores: 8, diskMBps: 2000, hourlyUSD: 0.45},
		{name: "xlarge-nvme", cores: 16, diskMBps: 2000, hourlyUSD: 0.88},
	}}

	opt, err := arrow.New(
		arrow.WithMethod(arrow.MethodAugmentedBO),
		arrow.WithObjective(arrow.MinimizeCost),
		arrow.WithNumInitial(2),
		arrow.WithDeltaThreshold(1.1),
		arrow.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := opt.Search(fleet)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("searched the CI fleet for the cheapest build server:")
	for i, obs := range res.Observations {
		fmt.Printf("  %d. %-12s build %6.1fs  $%.5f/build\n",
			i+1, obs.Name, obs.Outcome.TimeSec, obs.Outcome.CostUSD)
	}
	fmt.Printf("\ncheapest: %s at $%.5f per build (%d of %d servers measured)\n",
		res.BestName, res.BestValue, res.NumMeasurements(), fleet.NumCandidates())
}
