// Fault tolerance: search a flaky cloud without losing the run. A chaos
// wrapper injects the failures a real provider serves up — transient
// capacity errors, a permanently unavailable instance type, corrupted
// telemetry — and the retry middleware plus candidate quarantine absorb
// them: the search still lands on the VM the fault-free run would pick.
//
// Run with:
//
//	go run ./examples/faulttolerant
package main

import (
	"fmt"
	"log"
	"time"

	arrow "repro"
)

func main() {
	target, err := arrow.NewSimulatedTarget("als/spark2.1/medium", 1)
	if err != nil {
		log.Fatal(err)
	}

	// Fault-free reference run.
	newOptimizer := func(extra ...arrow.Option) *arrow.Optimizer {
		opts := append([]arrow.Option{
			arrow.WithMethod(arrow.MethodAugmentedBO),
			arrow.WithObjective(arrow.MinimizeCost),
			arrow.WithSeed(42),
		}, extra...)
		opt, err := arrow.New(opts...)
		if err != nil {
			log.Fatal(err)
		}
		return opt
	}
	clean, err := newOptimizer().Search(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free run:  best %s in %d measurements\n\n", clean.BestName, clean.NumMeasurements())

	// The same search on a hostile cloud: 25% of measurements fail
	// transiently, 20% return corrupted outcomes, and candidate 9 is an
	// instance type the region simply refuses to launch.
	chaos := arrow.NewChaosTarget(target, arrow.ChaosConfig{
		Seed:              7,
		TransientRate:     0.25,
		CorruptRate:       0.20,
		PermanentFailures: []int{9},
	})
	opt := newOptimizer(arrow.WithRetry(arrow.RetryPolicy{
		MaxAttempts:    5,
		InitialBackoff: 50 * time.Millisecond, // demo-friendly; default is 2s
	}))

	result, err := opt.Search(chaos)
	if err != nil {
		// Even a fatal abort hands back the observations already paid
		// for, so the session is never a total loss.
		log.Printf("search aborted: %v", err)
		if result != nil {
			log.Printf("salvaged %d measurements, best so far %s", result.NumMeasurements(), result.BestName)
		}
		return
	}

	stats := chaos.Stats()
	fmt.Printf("chaotic run:     best %s in %d measurements\n", result.BestName, result.NumMeasurements())
	fmt.Printf("faults injected: %d transient, %d corrupt, %d permanent (of %d calls)\n",
		stats.Transient, stats.Corrupt, stats.Permanent, stats.Calls)
	for _, f := range result.Failures {
		fmt.Printf("quarantined:     %s after %d attempt(s): %s\n", f.Name, f.Attempts, f.Reason)
	}
	if result.BestName == clean.BestName {
		fmt.Println("\nthe fault-tolerant layer absorbed the chaos: same winner as the fault-free run")
	} else {
		fmt.Println("\nthe faults changed the outcome — compare the observation lists to see where")
	}
}
