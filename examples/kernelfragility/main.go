// Kernelfragility reproduces the Section III demonstration that Naive BO
// is fragile: the same GP-based optimizer ranks differently depending on
// the covariance kernel, and no kernel wins on both workloads (Figure 7).
// Arrow side-steps the choice entirely with its tree-based surrogate.
//
// Run with:
//
//	go run ./examples/kernelfragility
package main

import (
	"fmt"
	"log"

	arrow "repro"
)

func main() {
	panels := []struct {
		workload  string
		objective arrow.Objective
	}{
		{"als/spark2.1/medium", arrow.MinimizeTime},
		{"bayes/spark2.1/medium", arrow.MinimizeCost},
	}
	kernels := []arrow.Kernel{
		arrow.KernelRBF,
		arrow.KernelMatern12,
		arrow.KernelMatern32,
		arrow.KernelMatern52,
	}

	for _, panel := range panels {
		fmt.Printf("minimizing %s for %s (mean over 20 seeds)\n", panel.objective, panel.workload)

		for _, k := range kernels {
			meas, err := meanSearchCost(panel.workload, panel.objective, k, 20)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-11s mean measurements to find the best VM: %.1f\n", k, meas)
		}

		// Arrow needs no kernel at all.
		meas, err := meanAugmentedCost(panel.workload, panel.objective, 20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-11s mean measurements to find the best VM: %.1f (no kernel needed)\n\n", "Augmented", meas)
	}
}

// meanSearchCost runs Naive BO with the given kernel until it has measured
// the eventual best VM, averaging the step at which that VM was found.
func meanSearchCost(workload string, objective arrow.Objective, k arrow.Kernel, seeds int64) (float64, error) {
	total := 0.0
	for seed := int64(0); seed < seeds; seed++ {
		opt, err := arrow.New(
			arrow.WithMethod(arrow.MethodNaiveBO),
			arrow.WithObjective(objective),
			arrow.WithKernel(k),
			arrow.WithEIStopFraction(-1), // disable stopping: measure the full catalog
			arrow.WithSeed(seed),
		)
		if err != nil {
			return 0, err
		}
		step, err := stepBestFound(opt, workload, seed)
		if err != nil {
			return 0, err
		}
		total += float64(step)
	}
	return total / float64(seeds), nil
}

func meanAugmentedCost(workload string, objective arrow.Objective, seeds int64) (float64, error) {
	total := 0.0
	for seed := int64(0); seed < seeds; seed++ {
		opt, err := arrow.New(
			arrow.WithMethod(arrow.MethodAugmentedBO),
			arrow.WithObjective(objective),
			arrow.WithDeltaThreshold(-1),
			arrow.WithSeed(seed),
		)
		if err != nil {
			return 0, err
		}
		step, err := stepBestFound(opt, workload, seed)
		if err != nil {
			return 0, err
		}
		total += float64(step)
	}
	return total / float64(seeds), nil
}

// stepBestFound exhausts the catalog and returns the 1-based step at which
// the overall-best VM was first measured.
func stepBestFound(opt *arrow.Optimizer, workload string, trial int64) (int, error) {
	target, err := arrow.NewSimulatedTarget(workload, trial)
	if err != nil {
		return 0, err
	}
	res, err := opt.Search(target)
	if err != nil {
		return 0, err
	}
	for i, obs := range res.Observations {
		if obs.Index == res.BestIndex {
			return i + 1, nil
		}
	}
	return len(res.Observations), nil
}
