// Quickstart: find the most cost-effective VM for one workload with
// Arrow's low-level augmented Bayesian optimization.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	arrow "repro"
)

func main() {
	// The built-in simulated target reproduces the paper's testbed: 18
	// AWS VM types running an ALS recommender on Spark 2.1. Swap in your
	// own arrow.Target to measure a real system.
	target, err := arrow.NewSimulatedTarget("als/spark2.1/medium", 1)
	if err != nil {
		log.Fatal(err)
	}

	opt, err := arrow.New(
		arrow.WithMethod(arrow.MethodAugmentedBO),
		arrow.WithObjective(arrow.MinimizeCost),
		arrow.WithDeltaThreshold(1.1), // the paper's recommended stop rule
		arrow.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}

	result, err := opt.Search(target)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("measured %d of %d VM types:\n", result.NumMeasurements(), target.NumCandidates())
	for i, obs := range result.Observations {
		fmt.Printf("  %2d. %-12s %7.1fs  $%.4f\n", i+1, obs.Name, obs.Outcome.TimeSec, obs.Outcome.CostUSD)
	}
	fmt.Printf("\nbest VM: %s at $%.4f per run\n", result.BestName, result.BestValue)
	if result.StoppedEarly {
		fmt.Printf("stopped early: %s\n", result.StopReason)
	}
}
