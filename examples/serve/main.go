// Optimizer as a service: the advisor loop over real HTTP. This example
// starts an in-process arrow-serve server, opens a session for the
// Arrow (Augmented BO) method, and plays the measuring client: ask the
// server which VM to try next, "measure" it on the simulator, report
// the outcome — until the server's stopping rule fires and the result
// endpoint returns the recommendation. The same traffic works against a
// standalone `arrow-serve -addr :8080`.
//
// Run with:
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	arrow "repro"
	"repro/internal/serve"
)

func main() {
	// A real HTTP server on a loopback port. Outside this example:
	// `arrow-serve -addr :8080` and base = "http://localhost:8080".
	hs := httptest.NewServer(serve.New(serve.Config{}))
	defer hs.Close()
	base := hs.URL

	// The measuring side: the simulator plays the cloud. The server
	// never sees this object — it only ever sees our observations.
	target, err := arrow.NewSimulatedTarget("als/spark2.1/medium", 1)
	if err != nil {
		log.Fatal(err)
	}

	// Open a session: Arrow's Augmented BO, minimizing cost, seeded for
	// reproducibility.
	var info struct {
		ID            string `json:"id"`
		Method        string `json:"method"`
		NumCandidates int    `json:"num_candidates"`
	}
	post(base+"/v1/sessions", map[string]any{
		"method":    "augmented-bo",
		"objective": "cost",
		"seed":      42,
	}, &info)
	fmt.Printf("session %s: %s over %d candidate VMs\n\n", info.ID, info.Method, info.NumCandidates)

	// The advisor loop: next -> measure -> observe. While the client is
	// measuring, the server speculatively plans the following suggestion,
	// so the next GET is a cache hit — zero planning latency on the wire.
	var sug arrow.Suggestion
	get(base+"/v1/sessions/"+info.ID+"/next", &sug)
	for step := 1; !sug.Done; step++ {
		out, merr := target.Measure(sug.Index)
		obs := map[string]any{"index": sug.Index}
		if merr != nil {
			obs["failed"] = true
			obs["reason"] = merr.Error()
			fmt.Printf("  step %2d: %-12s measurement failed (%v)\n", step, sug.Name, merr)
		} else {
			obs["time_sec"] = out.TimeSec
			obs["cost_usd"] = out.CostUSD
			obs["metrics"] = out.Metrics
			fmt.Printf("  step %2d: %-12s %6.0f s  $%.3f\n", step, sug.Name, out.TimeSec, out.CostUSD)
		}
		post(base+"/v1/sessions/"+info.ID+"/observe", obs, &struct{}{})
		get(base+"/v1/sessions/"+info.ID+"/next", &sug)
	}

	// The recommendation.
	var res struct {
		Result *arrow.Result `json:"result"`
	}
	get(base+"/v1/sessions/"+info.ID+"/result", &res)
	fmt.Printf("\nrecommendation after %d measurements: %s (cost %.4f)\n",
		res.Result.NumMeasurements(), res.Result.BestName, res.Result.BestValue)
	fmt.Printf("stopped early: %v (%s)\n", res.Result.StoppedEarly, res.Result.StopReason)
}

// post sends a JSON body and decodes the JSON response into out.
func post(url string, body, out any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

// get decodes a JSON response into out.
func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func decode(resp *http.Response, out any) {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s: %d %s", resp.Request.URL, resp.StatusCode, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
