// Sloconstrained demonstrates CherryPick's original problem formulation,
// which the paper's unconstrained study simplifies away: minimize
// deployment cost SUBJECT TO a maximum execution time. Tightening the SLO
// walks the answer from the cheapest VM toward faster, pricier ones.
//
// Run with:
//
//	go run ./examples/sloconstrained
package main

import (
	"fmt"
	"log"

	arrow "repro"
)

const workload = "terasort/hadoop2.7/large"

func main() {
	fmt.Printf("minimizing deployment cost for %s under a time SLO\n\n", workload)
	for _, slo := range []float64{0, 5000, 3000, 2000, 600} {
		opts := []arrow.Option{
			arrow.WithMethod(arrow.MethodAugmentedBO),
			arrow.WithObjective(arrow.MinimizeCost),
			arrow.WithDeltaThreshold(1.1),
			arrow.WithSeed(11),
		}
		label := "unconstrained"
		if slo > 0 {
			opts = append(opts, arrow.WithMaxTimeSLO(slo))
			label = fmt.Sprintf("time <= %4.0fs", slo)
		}
		opt, err := arrow.New(opts...)
		if err != nil {
			log.Fatal(err)
		}
		target, err := arrow.NewSimulatedTarget(workload, 11)
		if err != nil {
			log.Fatal(err)
		}
		res, err := opt.Search(target)
		if err != nil {
			log.Fatal(err)
		}
		var best arrow.Observation
		for _, obs := range res.Observations {
			if obs.Index == res.BestIndex {
				best = obs
			}
		}
		status := ""
		if !res.SLOSatisfied {
			status = "  [SLO unsatisfiable: fastest VM shown]"
		}
		fmt.Printf("  %-14s -> %-12s %7.1fs  $%.4f  (%d measurements)%s\n",
			label, res.BestName, best.Outcome.TimeSec, best.Outcome.CostUSD,
			res.NumMeasurements(), status)
	}
}
