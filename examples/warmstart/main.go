// Warmstart demonstrates the paper's stated future work: seeding
// Augmented BO's surrogate with historical performance data. A recurring
// job was profiled at its old (small) input size; when the input grows,
// the search for the new best VM starts from that history instead of from
// scratch. The history shapes early predictions but costs no measurements.
//
// The example shows both sides: history usually transfers (logistic
// regression keeps its bottleneck structure across sizes, so the warm
// search converges much faster), but when input growth moves the workload
// onto a different bottleneck, stale history can mislead the early steps.
//
// Everything pulls through internal/runcache, the same content-addressed
// store that powers arrow-study: history tables and per-seed search costs
// are computed once and shared across transfer cases, so the cross-app
// case below reuses both the lr-small history table and the kmeans cold
// baseline without any ad-hoc result plumbing.
//
// Run with:
//
//	go run ./examples/warmstart
package main

import (
	"fmt"
	"log"

	arrow "repro"
	"repro/internal/parallel"
	"repro/internal/runcache"
	"repro/internal/sim"
)

const seeds = 20

// caches shares history tables and search costs across transfer cases.
type caches struct {
	histories *runcache.Store[[]arrow.PriorRun]
	searches  *runcache.Store[float64]
}

func main() {
	cases := []struct {
		newWorkload string
		oldWorkload string
		note        string
	}{
		{"lr/spark1.5/medium", "lr/spark1.5/small", "bottleneck structure transfers"},
		{"terasort/hadoop2.7/large", "terasort/hadoop2.7/medium", "I/O-bound at both sizes"},
		{"kmeans/spark2.1/medium", "kmeans/spark2.1/small", "growth shifts the bottleneck: stale history can mislead"},
		// Cross-application transfer: reuses the lr-small history table and
		// the kmeans cold baseline already cached by the cases above.
		{"kmeans/spark2.1/medium", "lr/spark1.5/small", "cross-app history still encodes broad VM preferences"},
	}
	histories, _ := runcache.Open[[]arrow.PriorRun]("", sim.SubstrateVersion) // memory-only Open cannot fail
	searches, _ := runcache.Open[float64]("", sim.SubstrateVersion)
	c := &caches{histories: histories, searches: searches}

	for _, tc := range cases {
		history, err := c.recordHistory(tc.oldWorkload)
		if err != nil {
			log.Fatal(err)
		}
		cold, err := c.meanSearchCost(tc.newWorkload, "", nil)
		if err != nil {
			log.Fatal(err)
		}
		warm, err := c.meanSearchCost(tc.newWorkload, tc.oldWorkload, history)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s, history from %s\n", tc.newWorkload, tc.oldWorkload)
		fmt.Printf("  cold start: %.1f measurements to the best VM\n", cold)
		fmt.Printf("  warm start: %.1f measurements  (%s)\n\n", warm, tc.note)
	}

	h, s := histories.Stats(), searches.Stats()
	fmt.Printf("run cache: %d history tables computed, %d reused; %d searches computed, %d reused\n",
		h.Misses, h.Lookups()-h.Misses, s.Misses, s.Lookups()-s.Misses)
}

// recordHistory measures the old workload on every VM — in production this
// would be read back from the job's past deployment logs. The table is
// cached per workload, so several transfer cases share one profile.
func (c *caches) recordHistory(workloadID string) ([]arrow.PriorRun, error) {
	return c.histories.Do(runcache.Key("history\x00"+workloadID), func() ([]arrow.PriorRun, error) {
		target, err := arrow.NewSimulatedTarget(workloadID, 77)
		if err != nil {
			return nil, err
		}
		history := make([]arrow.PriorRun, 0, target.NumCandidates())
		for i := 0; i < target.NumCandidates(); i++ {
			out, err := target.Measure(i)
			if err != nil {
				return nil, err
			}
			history = append(history, arrow.PriorRun{
				Features: target.Features(i),
				Metrics:  out.Metrics,
				Value:    out.CostUSD,
			})
		}
		return history, nil
	})
}

// meanSearchCost averages the step at which the eventual best VM was
// measured across seeds. Each (workload, history source, seed) search is
// cached, so a cold baseline computed for one case is free for the next.
func (c *caches) meanSearchCost(workloadID, historyID string, history []arrow.PriorRun) (float64, error) {
	costs := make([]float64, seeds)
	errs := make([]error, seeds)
	parallel.Do(seeds, 0, func(i int) {
		seed := int64(i)
		key := runcache.Key(fmt.Sprintf("search\x00%s\x00%s\x00%d", workloadID, historyID, seed))
		costs[i], errs[i] = c.searches.Do(key, func() (float64, error) {
			return searchCost(workloadID, seed, history)
		})
	})
	total := 0.0
	for i := range costs {
		if errs[i] != nil {
			return 0, errs[i]
		}
		total += costs[i]
	}
	return total / seeds, nil
}

// searchCost runs one seeded Augmented BO search to exhaustion and
// returns the step at which the eventual best VM was first measured.
func searchCost(workloadID string, seed int64, history []arrow.PriorRun) (float64, error) {
	opts := []arrow.Option{
		arrow.WithMethod(arrow.MethodAugmentedBO),
		arrow.WithObjective(arrow.MinimizeCost),
		arrow.WithDeltaThreshold(-1), // exhaust: measure cost-to-best exactly
		arrow.WithSeed(seed),
	}
	if history != nil {
		opts = append(opts, arrow.WithWarmStart(history...))
	}
	opt, err := arrow.New(opts...)
	if err != nil {
		return 0, err
	}
	target, err := arrow.NewSimulatedTarget(workloadID, seed)
	if err != nil {
		return 0, err
	}
	res, err := opt.Search(target)
	if err != nil {
		return 0, err
	}
	for i, obs := range res.Observations {
		if obs.Index == res.BestIndex {
			return float64(i + 1), nil
		}
	}
	return 0, fmt.Errorf("best index %d never observed for %s seed %d", res.BestIndex, workloadID, seed)
}
