// Warmstart demonstrates the paper's stated future work: seeding
// Augmented BO's surrogate with historical performance data. A recurring
// job was profiled at its old (small) input size; when the input grows,
// the search for the new best VM starts from that history instead of from
// scratch. The history shapes early predictions but costs no measurements.
//
// The example shows both sides: history usually transfers (logistic
// regression keeps its bottleneck structure across sizes, so the warm
// search converges much faster), but when input growth moves the workload
// onto a different bottleneck, stale history can mislead the early steps.
//
// Run with:
//
//	go run ./examples/warmstart
package main

import (
	"fmt"
	"log"

	arrow "repro"
)

func main() {
	cases := []struct {
		newWorkload string
		oldWorkload string
		note        string
	}{
		{"lr/spark1.5/medium", "lr/spark1.5/small", "bottleneck structure transfers"},
		{"terasort/hadoop2.7/large", "terasort/hadoop2.7/medium", "I/O-bound at both sizes"},
		{"kmeans/spark2.1/medium", "kmeans/spark2.1/small", "growth shifts the bottleneck: stale history can mislead"},
	}
	for _, tc := range cases {
		history, err := recordHistory(tc.oldWorkload)
		if err != nil {
			log.Fatal(err)
		}
		cold, err := meanSearchCost(tc.newWorkload, nil)
		if err != nil {
			log.Fatal(err)
		}
		warm, err := meanSearchCost(tc.newWorkload, history)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s, history from %s\n", tc.newWorkload, tc.oldWorkload)
		fmt.Printf("  cold start: %.1f measurements to the best VM\n", cold)
		fmt.Printf("  warm start: %.1f measurements  (%s)\n\n", warm, tc.note)
	}
}

// recordHistory measures the old workload on every VM — in production this
// would be read back from the job's past deployment logs.
func recordHistory(workloadID string) ([]arrow.PriorRun, error) {
	target, err := arrow.NewSimulatedTarget(workloadID, 77)
	if err != nil {
		return nil, err
	}
	history := make([]arrow.PriorRun, 0, target.NumCandidates())
	for i := 0; i < target.NumCandidates(); i++ {
		out, err := target.Measure(i)
		if err != nil {
			return nil, err
		}
		history = append(history, arrow.PriorRun{
			Features: target.Features(i),
			Metrics:  out.Metrics,
			Value:    out.CostUSD,
		})
	}
	return history, nil
}

// meanSearchCost averages the step at which the eventual best VM was
// measured across seeds, with or without warm starting.
func meanSearchCost(workloadID string, history []arrow.PriorRun) (float64, error) {
	const seeds = 20
	total := 0.0
	for seed := int64(0); seed < seeds; seed++ {
		opts := []arrow.Option{
			arrow.WithMethod(arrow.MethodAugmentedBO),
			arrow.WithObjective(arrow.MinimizeCost),
			arrow.WithDeltaThreshold(-1), // exhaust: measure cost-to-best exactly
			arrow.WithSeed(seed),
		}
		if history != nil {
			opts = append(opts, arrow.WithWarmStart(history...))
		}
		opt, err := arrow.New(opts...)
		if err != nil {
			return 0, err
		}
		target, err := arrow.NewSimulatedTarget(workloadID, seed)
		if err != nil {
			return 0, err
		}
		res, err := opt.Search(target)
		if err != nil {
			return 0, err
		}
		for i, obs := range res.Observations {
			if obs.Index == res.BestIndex {
				total += float64(i + 1)
				break
			}
		}
	}
	return total / seeds, nil
}
