package arrow

import (
	"errors"
	"fmt"

	"repro/internal/acquisition"
	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/lowlevel"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// This file holds the extensions beyond the paper's core method: Naive-BO
// acquisition variants, automatic kernel selection, the low-level ablation
// switch, historical warm starting (the paper's stated future work), and
// the surrogate explanation report.

// Acquisition selects Naive BO's acquisition function.
type Acquisition int

// The supported acquisitions for MethodNaiveBO. Augmented BO always uses
// Prediction Delta.
const (
	// AcquisitionEI is Expected Improvement (CherryPick's choice and the
	// default).
	AcquisitionEI Acquisition = iota + 1
	// AcquisitionPI is Probability of Improvement.
	AcquisitionPI
	// AcquisitionUCB is the GP upper-confidence-bound rule.
	AcquisitionUCB
	// AcquisitionMES is max-value entropy search (Wang & Jegelka,
	// ICML'17), the information-theoretic alternative the paper's
	// Section III-A cites.
	AcquisitionMES
)

func (a Acquisition) toInternal() acquisition.Kind {
	switch a {
	case AcquisitionEI:
		return acquisition.ExpectedImprovement
	case AcquisitionPI:
		return acquisition.ProbabilityOfImprovement
	case AcquisitionUCB:
		return acquisition.UpperConfidenceBound
	case AcquisitionMES:
		return acquisition.EntropySearch
	default:
		return 0
	}
}

// String names the acquisition.
func (a Acquisition) String() string {
	k := a.toInternal()
	if k == 0 {
		return fmt.Sprintf("Acquisition(%d)", int(a))
	}
	return k.String()
}

// WithAcquisition sets Naive BO's acquisition function (default EI).
// The EI-fraction stopping rule only applies under AcquisitionEI.
func WithAcquisition(a Acquisition) Option {
	return func(c *config) error {
		if a.toInternal() == 0 {
			return fmt.Errorf("arrow: invalid acquisition %d", int(a))
		}
		c.acquisition = a
		return nil
	}
}

// WithAutoKernel makes Naive BO select the GP kernel family per fit by log
// marginal likelihood instead of using a fixed kernel — the "automatic
// model selection" alternative the paper's Section III-B discusses.
func WithAutoKernel() Option {
	return func(c *config) error {
		c.autoKernel = true
		return nil
	}
}

// WithARD enables per-dimension GP length scales (automatic relevance
// determination) for Naive BO, refined by coordinate ascent on the log
// marginal likelihood.
func WithARD() Option {
	return func(c *config) error {
		c.ard = true
		return nil
	}
}

// WithoutLowLevelMetrics is the ablation switch: Augmented BO keeps its
// pairwise Extra-Trees surrogate but sees zeroed low-level metrics,
// isolating how much of Arrow's advantage comes from the augmentation.
func WithoutLowLevelMetrics() Option {
	return func(c *config) error {
		c.disableLowLevel = true
		return nil
	}
}

// WithFullRefit disables incremental surrogate refits: every iteration
// re-grows the Extra-Trees ensemble and refactors the GP kernel matrices
// from scratch instead of reusing the parts the new observation did not
// change. Searches are bit-identical either way — the switch trades the
// refit speedup away, as an escape hatch and for benchmarking.
func WithFullRefit() Option {
	return func(c *config) error {
		c.fullRefit = true
		return nil
	}
}

// PriorRun is one historical measurement used to warm-start Augmented BO.
type PriorRun struct {
	// Features is the candidate's instance-space encoding, which must use
	// the same encoding as the target under search.
	Features []float64
	// Metrics is the low-level vector collected during the historical
	// run, in MetricNames order (nil means all-zero).
	Metrics []float64
	// Value is the historical objective value; must be positive.
	Value float64
}

// WithWarmStart seeds Augmented BO's surrogate with observations from a
// previous run of a related workload — the paper's stated future work.
// History shapes early predictions but is never counted as a measurement.
func WithWarmStart(history ...PriorRun) Option {
	return func(c *config) error {
		if len(history) == 0 {
			return errors.New("arrow: empty warm-start history")
		}
		priors := make([]core.PriorObservation, len(history))
		for i, h := range history {
			var metrics lowlevel.Vector
			if h.Metrics != nil {
				var err error
				metrics, err = lowlevel.FromSlice(h.Metrics)
				if err != nil {
					return fmt.Errorf("arrow: warm-start run %d: %w", i, err)
				}
			}
			priors[i] = core.PriorObservation{
				Features: append([]float64(nil), h.Features...),
				Metrics:  metrics,
				Value:    h.Value,
			}
		}
		c.warmStart = priors
		return nil
	}
}

// FeatureWeight is one column of the surrogate explanation.
type FeatureWeight struct {
	// Name identifies the pair-row column: "src:f<i>" / "dst:f<i>" for
	// instance features and "src:<metric>" for low-level metrics.
	Name string
	// Fraction is the share of surrogate split nodes using this column;
	// fractions sum to 1.
	Fraction float64
}

// Explain refits the Augmented-BO surrogate on a finished search over
// target and reports which feature columns it splits on — showing whether
// the model actually leans on the low-level metrics. It errors for
// non-augmented optimizers.
func (o *Optimizer) Explain(target Target, result *Result) ([]FeatureWeight, error) {
	if o.cfg.method != MethodAugmentedBO {
		return nil, fmt.Errorf("arrow: Explain requires MethodAugmentedBO, have %v", o.cfg.method)
	}
	opt, err := buildCore(o.cfg)
	if err != nil {
		return nil, err
	}
	aug, ok := opt.(*core.AugmentedBO)
	if !ok {
		return nil, errors.New("arrow: internal optimizer is not augmented")
	}
	adapter := &targetAdapter{t: target}
	coreRes := &core.Result{Objective: o.cfg.objective.toCore()}
	for _, obs := range result.Observations {
		var metrics lowlevel.Vector
		if obs.Outcome.Metrics != nil {
			metrics, err = lowlevel.FromSlice(obs.Outcome.Metrics)
			if err != nil {
				return nil, fmt.Errorf("arrow: observation %s: %w", obs.Name, err)
			}
		}
		coreRes.Observations = append(coreRes.Observations, core.Observation{
			Index: obs.Index,
			Value: obs.Value,
			Outcome: core.Outcome{
				TimeSec: obs.Outcome.TimeSec,
				CostUSD: obs.Outcome.CostUSD,
				Metrics: metrics,
			},
		})
	}
	imps, err := aug.ExplainSurrogate(adapter, coreRes)
	if err != nil {
		return nil, err
	}
	out := make([]FeatureWeight, len(imps))
	for i, imp := range imps {
		out[i] = FeatureWeight{Name: imp.Name, Fraction: imp.Fraction}
	}
	return out, nil
}

// Design selects the initial-sampling strategy (Section III-C studies how
// sensitive BO is to this choice).
type Design int

// The initial-design strategies.
const (
	// DesignMaxMin greedily picks maximally distant candidates — the
	// CherryPick-prescribed quasi-random design and the default.
	DesignMaxMin Design = iota + 1
	// DesignRandom samples uniformly without replacement.
	DesignRandom
	// DesignSobol snaps Sobol' low-discrepancy points (the paper's
	// reference [25]) to the nearest unused candidates.
	DesignSobol
)

func (d Design) toCore() core.DesignKind {
	switch d {
	case DesignMaxMin:
		return core.DesignQuasiRandom
	case DesignRandom:
		return core.DesignUniform
	case DesignSobol:
		return core.DesignSobol
	default:
		return 0
	}
}

// String names the design.
func (d Design) String() string {
	k := d.toCore()
	if k == 0 {
		return fmt.Sprintf("Design(%d)", int(d))
	}
	return k.String()
}

// WithInitialDesign selects the initial-sampling strategy (default
// DesignMaxMin). Overridden by WithInitialCandidates.
func WithInitialDesign(d Design) Option {
	return func(c *config) error {
		if d.toCore() == 0 {
			return fmt.Errorf("arrow: invalid design %d", int(d))
		}
		c.designKind = d
		return nil
	}
}

// WithMaxTimeSLO constrains the search to VMs whose execution time stays
// within the SLO (seconds) — CherryPick's original "minimize cost subject
// to a performance constraint" formulation. Naive BO gains a second GP on
// execution time and a constrained-EI acquisition; Augmented BO gains a
// second pairwise time model. If nothing meets the SLO the result reports
// SLOSatisfied=false and points at the fastest VM observed.
func WithMaxTimeSLO(seconds float64) Option {
	return func(c *config) error {
		if seconds <= 0 {
			return fmt.Errorf("arrow: time SLO %v must be positive", seconds)
		}
		c.maxTimeSLO = seconds
		return nil
	}
}

// NewSimulatedClusterTarget builds a Target over cluster configurations
// (VM type x node count) for the named study workload, the joint search
// space CherryPick originally targeted. With the default node counts
// {2, 4, 6, 8} the catalog holds 72 candidates. The trial index seeds the
// measurement noise as in NewSimulatedTarget.
func NewSimulatedClusterTarget(workloadID string, trial int64, nodeCounts ...int) (Target, error) {
	single := sim.New(cloud.DefaultCatalog())
	w, err := workloads.ByID(workloadID)
	if err != nil {
		return nil, err
	}
	catalog, err := cluster.NewCatalog(single.Catalog(), nodeCounts)
	if err != nil {
		return nil, err
	}
	cs := cluster.NewSimulator(single)
	for i := 0; i < catalog.Len(); i++ {
		if !cs.Feasible(w, catalog.Config(i)) {
			return nil, fmt.Errorf("arrow: workload %q cannot run on %s", workloadID, catalog.Config(i).Name())
		}
	}
	return &clusterTargetAdapter{t: cs.NewTarget(catalog, w, trial)}, nil
}

// clusterTargetAdapter exposes the internal cluster target publicly.
type clusterTargetAdapter struct {
	t *cluster.Target
}

var _ Target = (*clusterTargetAdapter)(nil)

func (a *clusterTargetAdapter) NumCandidates() int       { return a.t.NumCandidates() }
func (a *clusterTargetAdapter) Features(i int) []float64 { return a.t.Features(i) }
func (a *clusterTargetAdapter) Name(i int) string        { return a.t.Name(i) }

func (a *clusterTargetAdapter) Measure(i int) (Outcome, error) {
	out, err := a.t.Measure(i)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{TimeSec: out.TimeSec, CostUSD: out.CostUSD, Metrics: out.Metrics.Slice()}, nil
}
