package arrow

import (
	"strings"
	"testing"
)

func TestAcquisitionOptions(t *testing.T) {
	for _, acq := range []Acquisition{AcquisitionEI, AcquisitionPI, AcquisitionUCB, AcquisitionMES} {
		t.Run(acq.String(), func(t *testing.T) {
			target, err := NewSimulatedTarget("pearson/spark2.1/medium", 1)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := New(
				WithMethod(MethodNaiveBO),
				WithObjective(MinimizeTime),
				WithAcquisition(acq),
				WithEIStopFraction(-1),
				WithSeed(2),
			)
			if err != nil {
				t.Fatal(err)
			}
			res, err := opt.Search(target)
			if err != nil {
				t.Fatal(err)
			}
			if res.NumMeasurements() != 18 {
				t.Errorf("measured %d", res.NumMeasurements())
			}
		})
	}
	if _, err := New(WithAcquisition(Acquisition(0))); err == nil {
		t.Error("invalid acquisition should fail")
	}
}

func TestAutoKernelOption(t *testing.T) {
	target, err := NewSimulatedTarget("svd/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(
		WithMethod(MethodNaiveBO),
		WithObjective(MinimizeCost),
		WithAutoKernel(),
		WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Search(target); err != nil {
		t.Fatal(err)
	}
}

func TestAblationOption(t *testing.T) {
	target, err := NewSimulatedTarget("lr/spark1.5/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(
		WithMethod(MethodAugmentedBO),
		WithObjective(MinimizeCost),
		WithoutLowLevelMetrics(),
		WithDeltaThreshold(-1),
		WithSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumMeasurements() != 18 {
		t.Errorf("measured %d", res.NumMeasurements())
	}
}

func TestWarmStartOption(t *testing.T) {
	// Record a full history of the same workload under a different trial.
	historyTarget, err := NewSimulatedTarget("als/spark2.1/medium", 99)
	if err != nil {
		t.Fatal(err)
	}
	var history []PriorRun
	for i := 0; i < historyTarget.NumCandidates(); i++ {
		out, err := historyTarget.Measure(i)
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, PriorRun{
			Features: historyTarget.Features(i),
			Metrics:  out.Metrics,
			Value:    out.CostUSD,
		})
	}

	target, err := NewSimulatedTarget("als/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(
		WithMethod(MethodAugmentedBO),
		WithObjective(MinimizeCost),
		WithWarmStart(history...),
		WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumMeasurements() == 0 {
		t.Error("no measurements")
	}
}

func TestWarmStartValidationPublic(t *testing.T) {
	if _, err := New(WithWarmStart()); err == nil {
		t.Error("empty history should fail")
	}
	if _, err := New(WithWarmStart(PriorRun{Features: []float64{1}, Value: -1})); err == nil {
		t.Error("negative value should fail")
	}
	if _, err := New(WithWarmStart(PriorRun{Features: []float64{1}, Metrics: []float64{1}, Value: 1})); err == nil {
		t.Error("short metric vector should fail")
	}
}

func TestExplain(t *testing.T) {
	target, err := NewSimulatedTarget("lr/spark1.5/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(
		WithMethod(MethodAugmentedBO),
		WithObjective(MinimizeCost),
		WithDeltaThreshold(-1),
		WithSeed(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	weights, err := opt.Explain(target, res)
	if err != nil {
		t.Fatal(err)
	}
	// 4 src features + 6 metrics + 4 dst features.
	if len(weights) != 14 {
		t.Fatalf("%d weights, want 14", len(weights))
	}
	total := 0.0
	metricWeight := 0.0
	for _, w := range weights {
		total += w.Fraction
		if strings.Contains(w.Name, "%") || strings.Contains(w.Name, "await") || strings.Contains(w.Name, "task") {
			metricWeight += w.Fraction
		}
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("weights sum to %v", total)
	}
	if metricWeight == 0 {
		t.Error("surrogate never split on a low-level metric for a memory-bound workload")
	}
}

func TestExplainRequiresAugmented(t *testing.T) {
	target, err := NewSimulatedTarget("lr/spark1.5/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(WithMethod(MethodNaiveBO))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Explain(target, &Result{}); err == nil {
		t.Error("Explain on naive BO should fail")
	}
}

func TestARDOptionSearch(t *testing.T) {
	target, err := NewSimulatedTarget("als/spark2.1/medium", 2)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(
		WithMethod(MethodNaiveBO),
		WithObjective(MinimizeCost),
		WithARD(),
		WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumMeasurements() == 0 {
		t.Error("no measurements")
	}
}

func TestInitialDesignOptions(t *testing.T) {
	for _, d := range []Design{DesignMaxMin, DesignRandom, DesignSobol} {
		t.Run(d.String(), func(t *testing.T) {
			target, err := NewSimulatedTarget("pearson/spark2.1/medium", 1)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := New(
				WithMethod(MethodNaiveBO),
				WithInitialDesign(d),
				WithEIStopFraction(-1),
				WithSeed(4),
			)
			if err != nil {
				t.Fatal(err)
			}
			res, err := opt.Search(target)
			if err != nil {
				t.Fatal(err)
			}
			if res.NumMeasurements() != 18 {
				t.Errorf("measured %d", res.NumMeasurements())
			}
		})
	}
	if _, err := New(WithInitialDesign(Design(0))); err == nil {
		t.Error("invalid design should fail")
	}
}

func TestMaxTimeSLOOption(t *testing.T) {
	if _, err := New(WithMaxTimeSLO(0)); err == nil {
		t.Error("zero SLO should fail")
	}
	// lr/spark1.5/medium: small VMs thrash and take thousands of seconds;
	// an SLO forces the search toward fast-enough VMs.
	for _, method := range []Method{MethodNaiveBO, MethodAugmentedBO, MethodHybridBO} {
		t.Run(method.String(), func(t *testing.T) {
			target, err := NewSimulatedTarget("lr/spark1.5/medium", 1)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := New(
				WithMethod(method),
				WithObjective(MinimizeCost),
				WithMaxTimeSLO(1200),
				WithSeed(2),
			)
			if err != nil {
				t.Fatal(err)
			}
			res, err := opt.Search(target)
			if err != nil {
				t.Fatal(err)
			}
			if !res.SLOSatisfied {
				t.Fatal("1200s SLO should be satisfiable for lr/spark1.5/medium")
			}
			for _, obs := range res.Observations {
				if obs.Index == res.BestIndex && obs.Outcome.TimeSec > 1200 {
					t.Errorf("chosen VM %s takes %.0fs, violating the SLO", obs.Name, obs.Outcome.TimeSec)
				}
			}
		})
	}
}

func TestMaxTimeSLOUnsatisfiable(t *testing.T) {
	target, err := NewSimulatedTarget("lr/spark1.5/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(
		WithMethod(MethodAugmentedBO),
		WithObjective(MinimizeCost),
		WithMaxTimeSLO(1), // one second: impossible
		WithSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLOSatisfied {
		t.Error("1s SLO cannot be satisfiable")
	}
	if res.BestName == "" {
		t.Error("fallback best missing")
	}
}

func TestSimulatedClusterTarget(t *testing.T) {
	target, err := NewSimulatedClusterTarget("als/spark2.1/medium", 1)
	if err != nil {
		t.Fatal(err)
	}
	if target.NumCandidates() != 72 {
		t.Fatalf("%d candidates, want 72 (18 VM types x 4 node counts)", target.NumCandidates())
	}
	if len(target.Features(0)) != 5 {
		t.Errorf("%d features, want 5", len(target.Features(0)))
	}
	out, err := target.Measure(3)
	if err != nil {
		t.Fatal(err)
	}
	if out.TimeSec <= 0 || out.CostUSD <= 0 || len(out.Metrics) != NumMetrics {
		t.Errorf("bad outcome %+v", out)
	}
	opt, err := New(WithMethod(MethodAugmentedBO), WithObjective(MinimizeCost), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestName == "" {
		t.Error("no best cluster")
	}
}

func TestSimulatedClusterTargetCustomCounts(t *testing.T) {
	target, err := NewSimulatedClusterTarget("pearson/spark2.1/medium", 1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if target.NumCandidates() != 36 {
		t.Errorf("%d candidates, want 36", target.NumCandidates())
	}
	if _, err := NewSimulatedClusterTarget("pearson/spark2.1/medium", 1, 0); err == nil {
		t.Error("zero node count should fail")
	}
	if _, err := NewSimulatedClusterTarget("nope/x/y", 1); err == nil {
		t.Error("unknown workload should fail")
	}
}
