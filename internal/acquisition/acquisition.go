// Package acquisition implements the acquisition functions discussed in
// Section III-A of the paper: Expected Improvement (EI, CherryPick's
// choice), Probability of Improvement (PI), the Gaussian-process upper
// confidence bound (GP-UCB), and Arrow's Prediction Delta.
//
// All functions are written for MINIMIZATION: "best" is the smallest
// observed objective value, and improvement means predicting something
// smaller still.
package acquisition

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalid reports out-of-domain inputs (negative variance, NaNs).
var ErrInvalid = errors.New("acquisition: invalid input")

// Kind enumerates the acquisition functions.
type Kind int

// Acquisition kinds; enums start at one so the zero value is invalid.
const (
	ExpectedImprovement Kind = iota + 1
	ProbabilityOfImprovement
	UpperConfidenceBound
	PredictionDelta
	EntropySearch
)

// String names the acquisition kind.
func (k Kind) String() string {
	switch k {
	case ExpectedImprovement:
		return "EI"
	case ProbabilityOfImprovement:
		return "PI"
	case UpperConfidenceBound:
		return "GP-UCB"
	case PredictionDelta:
		return "PredictionDelta"
	case EntropySearch:
		return "MES"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

func validate(mean, variance float64) error {
	if math.IsNaN(mean) || math.IsInf(mean, 0) {
		return fmt.Errorf("acquisition: non-finite mean %v: %w", mean, ErrInvalid)
	}
	if variance < 0 || math.IsNaN(variance) || math.IsInf(variance, 0) {
		return fmt.Errorf("acquisition: invalid variance %v: %w", variance, ErrInvalid)
	}
	return nil
}

// EI returns the expected improvement of a candidate with posterior mean
// and variance over the current best (smallest) observation. It is always
// non-negative and zero when the variance is zero and the mean is no better
// than best.
func EI(mean, variance, best float64) (float64, error) {
	if err := validate(mean, variance); err != nil {
		return 0, err
	}
	sigma := math.Sqrt(variance)
	if sigma < 1e-12 {
		if imp := best - mean; imp > 0 {
			return imp, nil
		}
		return 0, nil
	}
	z := (best - mean) / sigma
	ei := (best-mean)*stdNormCDF(z) + sigma*stdNormPDF(z)
	if ei < 0 {
		ei = 0 // clamp floating-point cancellation for far-worse means
	}
	return ei, nil
}

// PI returns the probability that a candidate improves on best by at least
// margin (margin >= 0 trades exploration for exploitation).
func PI(mean, variance, best, margin float64) (float64, error) {
	if err := validate(mean, variance); err != nil {
		return 0, err
	}
	if margin < 0 || math.IsNaN(margin) {
		return 0, fmt.Errorf("acquisition: negative margin %v: %w", margin, ErrInvalid)
	}
	sigma := math.Sqrt(variance)
	if sigma < 1e-12 {
		if mean < best-margin {
			return 1, nil
		}
		return 0, nil
	}
	z := (best - margin - mean) / sigma
	return stdNormCDF(z), nil
}

// LCB returns the lower confidence bound mean - beta*sigma. For
// minimization the candidate with the SMALLEST LCB is the UCB-rule choice,
// so callers should negate it when they maximize an acquisition score.
func LCB(mean, variance, beta float64) (float64, error) {
	if err := validate(mean, variance); err != nil {
		return 0, err
	}
	if beta < 0 || math.IsNaN(beta) {
		return 0, fmt.Errorf("acquisition: negative beta %v: %w", beta, ErrInvalid)
	}
	return mean - beta*math.Sqrt(variance), nil
}

// Delta returns Arrow's Prediction Delta score: the predicted improvement
// factor best/mean of a candidate over the current best observation.
// Values above 1 predict an improvement; the candidate maximizing Delta is
// the next measurement, and the search stops when no candidate's Delta
// exceeds the configured threshold (Section IV-B, "Acquisition Function").
func Delta(mean, best float64) (float64, error) {
	if math.IsNaN(mean) || math.IsInf(mean, 0) || mean <= 0 {
		return 0, fmt.Errorf("acquisition: prediction delta needs positive finite mean, got %v: %w", mean, ErrInvalid)
	}
	if math.IsNaN(best) || math.IsInf(best, 0) || best <= 0 {
		return 0, fmt.Errorf("acquisition: prediction delta needs positive finite best, got %v: %w", best, ErrInvalid)
	}
	return best / mean, nil
}

// stdNormPDF is the standard normal density.
func stdNormPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// stdNormCDF is the standard normal cumulative distribution, via erf.
func stdNormCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}
