package acquisition

import (
	"math"
	"testing"
	"testing/quick"
)

// clampPos maps arbitrary floats into (0, 1000].
func clampPos(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	v = math.Abs(math.Mod(v, 1000))
	if v == 0 {
		return 1
	}
	return v
}

// clampVar maps arbitrary floats into [0, 100].
func clampVar(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return math.Abs(math.Mod(v, 100))
}

// TestQuickEIDominatesDeterministicImprovement: EI is at least the
// certain improvement max(best-mean, 0): uncertainty can only add value.
func TestQuickEIDominatesDeterministicImprovement(t *testing.T) {
	f := func(meanRaw, varRaw, bestRaw float64) bool {
		mean := math.Mod(clampPos(meanRaw), 100)
		variance := clampVar(varRaw)
		best := math.Mod(clampPos(bestRaw), 100)
		ei, err := EI(mean, variance, best)
		if err != nil {
			return false
		}
		certain := best - mean
		if certain < 0 {
			certain = 0
		}
		return ei >= certain-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickPIMonotoneInMean: improving the predicted mean never lowers the
// probability of improvement.
func TestQuickPIMonotoneInMean(t *testing.T) {
	f := func(meanRaw, varRaw, bestRaw, shiftRaw float64) bool {
		mean := math.Mod(clampPos(meanRaw), 100)
		variance := clampVar(varRaw) + 0.01
		best := math.Mod(clampPos(bestRaw), 100)
		shift := clampVar(shiftRaw) // non-negative
		hi, err1 := PI(mean, variance, best, 0)
		lo, err2 := PI(mean+shift, variance, best, 0)
		return err1 == nil && err2 == nil && hi >= lo-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeltaInverse: Delta(mean, best) * Delta(best, mean) == 1.
func TestQuickDeltaInverse(t *testing.T) {
	f := func(meanRaw, bestRaw float64) bool {
		mean := clampPos(meanRaw)
		best := clampPos(bestRaw)
		ab, err1 := Delta(mean, best)
		ba, err2 := Delta(best, mean)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(ab*ba-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickLCBBelowMean: the lower confidence bound never exceeds the mean.
func TestQuickLCBBelowMean(t *testing.T) {
	f := func(meanRaw, varRaw, betaRaw float64) bool {
		mean := math.Mod(clampPos(meanRaw), 100)
		variance := clampVar(varRaw)
		beta := clampVar(betaRaw)
		lcb, err := LCB(mean, variance, beta)
		return err == nil && lcb <= mean+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
