package acquisition

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{ExpectedImprovement, "EI"},
		{ProbabilityOfImprovement, "PI"},
		{UpperConfidenceBound, "GP-UCB"},
		{PredictionDelta, "PredictionDelta"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestEINonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 1000; trial++ {
		mean := rng.NormFloat64() * 10
		variance := rng.Float64() * 25
		best := rng.NormFloat64() * 10
		ei, err := EI(mean, variance, best)
		if err != nil {
			t.Fatal(err)
		}
		if ei < 0 || math.IsNaN(ei) {
			t.Fatalf("EI(%v, %v, %v) = %v", mean, variance, best, ei)
		}
	}
}

func TestEIZeroVariance(t *testing.T) {
	// Deterministic candidate better than best: EI = improvement.
	ei, err := EI(3, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ei != 2 {
		t.Errorf("EI = %v, want 2", ei)
	}
	// Deterministic candidate worse than best: EI = 0.
	ei, err = EI(7, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ei != 0 {
		t.Errorf("EI = %v, want 0", ei)
	}
}

func TestEIGrowsWithVariance(t *testing.T) {
	// A candidate at the incumbent's level gains EI purely from
	// uncertainty.
	low, err := EI(5, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	high, err := EI(5, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if high <= low {
		t.Errorf("EI should grow with variance: %v vs %v", low, high)
	}
}

func TestEIGrowsWithBetterMean(t *testing.T) {
	worse, _ := EI(5, 1, 5)
	better, _ := EI(3, 1, 5)
	if better <= worse {
		t.Errorf("EI should grow as mean improves: %v vs %v", worse, better)
	}
}

func TestEIKnownValue(t *testing.T) {
	// With mean == best and sigma = 1: EI = phi(0) = 1/sqrt(2*pi).
	ei, err := EI(0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Sqrt(2*math.Pi)
	if math.Abs(ei-want) > 1e-12 {
		t.Errorf("EI = %v, want %v", ei, want)
	}
}

func TestEIInvalidInputs(t *testing.T) {
	if _, err := EI(math.NaN(), 1, 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("NaN mean error = %v", err)
	}
	if _, err := EI(0, -1, 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative variance error = %v", err)
	}
	if _, err := EI(0, math.Inf(1), 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("infinite variance error = %v", err)
	}
}

func TestPIBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 1000; trial++ {
		pi, err := PI(rng.NormFloat64(), rng.Float64()*4, rng.NormFloat64(), rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		if pi < 0 || pi > 1 {
			t.Fatalf("PI = %v out of [0,1]", pi)
		}
	}
}

func TestPIZeroVariance(t *testing.T) {
	if pi, _ := PI(1, 0, 5, 0); pi != 1 {
		t.Errorf("certain improvement: PI = %v, want 1", pi)
	}
	if pi, _ := PI(9, 0, 5, 0); pi != 0 {
		t.Errorf("certain non-improvement: PI = %v, want 0", pi)
	}
}

func TestPISymmetricAtMean(t *testing.T) {
	// Candidate centered exactly at best-margin: PI = 0.5.
	pi, err := PI(4, 1, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi-0.5) > 1e-12 {
		t.Errorf("PI = %v, want 0.5", pi)
	}
}

func TestPINegativeMargin(t *testing.T) {
	if _, err := PI(0, 1, 0, -0.5); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative margin error = %v", err)
	}
}

func TestLCB(t *testing.T) {
	got, err := LCB(10, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Errorf("LCB = %v, want 10 - 2*2 = 6", got)
	}
	if _, err := LCB(0, 1, -1); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative beta error = %v", err)
	}
}

func TestLCBZeroBetaIsMean(t *testing.T) {
	got, err := LCB(3.5, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.5 {
		t.Errorf("LCB with beta 0 = %v, want mean", got)
	}
}

func TestDelta(t *testing.T) {
	tests := []struct {
		mean, best, want float64
	}{
		{1, 2, 2},   // predicted twice as good
		{2, 2, 1},   // tie
		{4, 2, 0.5}, // predicted twice as bad
		{0.5, 1, 2}, // fractional values
	}
	for _, tt := range tests {
		got, err := Delta(tt.mean, tt.best)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Delta(%v, %v) = %v, want %v", tt.mean, tt.best, got, tt.want)
		}
	}
}

func TestDeltaInvalid(t *testing.T) {
	for _, tc := range []struct{ mean, best float64 }{
		{0, 1}, {-1, 1}, {1, 0}, {1, -1},
		{math.NaN(), 1}, {1, math.NaN()}, {math.Inf(1), 1},
	} {
		if _, err := Delta(tc.mean, tc.best); !errors.Is(err, ErrInvalid) {
			t.Errorf("Delta(%v, %v) error = %v, want ErrInvalid", tc.mean, tc.best, err)
		}
	}
}

func TestStdNormConsistency(t *testing.T) {
	// CDF should integrate the PDF: check via finite differences.
	for z := -3.0; z <= 3; z += 0.5 {
		h := 1e-6
		dcdf := (stdNormCDF(z+h) - stdNormCDF(z-h)) / (2 * h)
		if math.Abs(dcdf-stdNormPDF(z)) > 1e-6 {
			t.Errorf("d/dz CDF(%v) = %v, PDF = %v", z, dcdf, stdNormPDF(z))
		}
	}
	if math.Abs(stdNormCDF(0)-0.5) > 1e-15 {
		t.Errorf("CDF(0) = %v", stdNormCDF(0))
	}
}
