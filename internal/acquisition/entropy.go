package acquisition

import (
	"fmt"
	"math"
	"math/rand"
)

// This file implements max-value entropy search (MES; Wang & Jegelka,
// ICML'17), the information-theoretic acquisition the paper's Section
// III-A cites as a promising alternative to EI. MES scores a candidate by
// the expected reduction in entropy of the optimum VALUE (not location),
// which makes it cheap on finite candidate sets.
//
// Everything here is written for MINIMIZATION, mirroring the rest of the
// package: the optimum is the smallest objective value, and min-value
// samples stand in for Wang & Jegelka's max-value samples via y -> -y.

// SampleMinValues draws approximate samples of the posterior minimum over
// a finite candidate set, assuming independence across candidates (the
// same approximation Wang & Jegelka's Gumbel sampler makes): each sample
// draws one Gaussian value per candidate and keeps the smallest.
func SampleMinValues(rng *rand.Rand, means, variances []float64, samples int) ([]float64, error) {
	if len(means) == 0 || len(means) != len(variances) {
		return nil, fmt.Errorf("acquisition: %d means but %d variances: %w", len(means), len(variances), ErrInvalid)
	}
	if samples < 1 {
		return nil, fmt.Errorf("acquisition: %d samples: %w", samples, ErrInvalid)
	}
	for i := range means {
		if err := validate(means[i], variances[i]); err != nil {
			return nil, err
		}
	}
	out := make([]float64, samples)
	for s := 0; s < samples; s++ {
		minVal := math.Inf(1)
		for i := range means {
			v := means[i] + math.Sqrt(variances[i])*rng.NormFloat64()
			if v < minVal {
				minVal = v
			}
		}
		out[s] = minVal
	}
	return out, nil
}

// MES returns the max-value entropy-search score of one candidate given
// samples of the posterior minimum. Larger is better. The score is the
// Monte-Carlo estimate of the mutual information between the candidate's
// value and the optimum value:
//
//	alpha(x) = E_{y*} [ gamma phi(gamma) / (2 Phi(gamma)) - ln Phi(gamma) ]
//
// with gamma = (mean - y*) / sigma (the minimization transform of Wang &
// Jegelka's equation 6).
func MES(mean, variance float64, minValueSamples []float64) (float64, error) {
	if err := validate(mean, variance); err != nil {
		return 0, err
	}
	if len(minValueSamples) == 0 {
		return 0, fmt.Errorf("acquisition: no min-value samples: %w", ErrInvalid)
	}
	sigma := math.Sqrt(variance)
	if sigma < 1e-12 {
		// A deterministic candidate carries no information about the
		// optimum's value beyond its own.
		return 0, nil
	}
	total := 0.0
	for _, yStar := range minValueSamples {
		if math.IsNaN(yStar) || math.IsInf(yStar, 0) {
			return 0, fmt.Errorf("acquisition: invalid min-value sample %v: %w", yStar, ErrInvalid)
		}
		gamma := (mean - yStar) / sigma
		cdf := stdNormCDF(gamma)
		if cdf < 1e-300 {
			// Candidate almost surely below the sampled optimum: the
			// truncation removes essentially no entropy mass; the exact
			// limit of the summand is 0 as gamma -> -inf... but for
			// minimization gamma large negative means the candidate mean
			// is far BELOW y*, which cannot happen for a true optimum
			// sample; guard numerically.
			continue
		}
		total += gamma*stdNormPDF(gamma)/(2*cdf) - math.Log(cdf)
	}
	score := total / float64(len(minValueSamples))
	if score < 0 {
		score = 0 // clamp Monte-Carlo round-off
	}
	return score, nil
}
