package acquisition

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSampleMinValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	means := []float64{10, 20, 30}
	variances := []float64{1, 1, 1}
	samples, err := SampleMinValues(rng, means, variances, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 200 {
		t.Fatalf("%d samples", len(samples))
	}
	// The minimum over candidates is dominated by the mean-10 candidate:
	// samples should concentrate well below 20.
	count := 0
	for _, s := range samples {
		if s < 15 {
			count++
		}
	}
	if count < 190 {
		t.Errorf("only %d/200 samples below 15", count)
	}
}

func TestSampleMinValuesDeterministicVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples, err := SampleMinValues(rng, []float64{5}, []float64{0}, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s != 5 {
			t.Fatalf("zero-variance sample = %v", s)
		}
	}
}

func TestSampleMinValuesInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := SampleMinValues(rng, nil, nil, 10); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty error = %v", err)
	}
	if _, err := SampleMinValues(rng, []float64{1}, []float64{1, 2}, 10); !errors.Is(err, ErrInvalid) {
		t.Errorf("mismatch error = %v", err)
	}
	if _, err := SampleMinValues(rng, []float64{1}, []float64{1}, 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero samples error = %v", err)
	}
	if _, err := SampleMinValues(rng, []float64{math.NaN()}, []float64{1}, 10); !errors.Is(err, ErrInvalid) {
		t.Errorf("NaN mean error = %v", err)
	}
}

func TestMESNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := []float64{1, 1.5, 0.8, 1.2}
	for trial := 0; trial < 200; trial++ {
		mean := 1 + rng.Float64()*5
		variance := rng.Float64() * 4
		score, err := MES(mean, variance, samples)
		if err != nil {
			t.Fatal(err)
		}
		if score < 0 || math.IsNaN(score) || math.IsInf(score, 0) {
			t.Fatalf("MES(%v, %v) = %v", mean, variance, score)
		}
	}
}

func TestMESZeroVarianceIsZero(t *testing.T) {
	score, err := MES(5, 0, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if score != 0 {
		t.Errorf("deterministic candidate MES = %v, want 0", score)
	}
}

func TestMESPrefersInformativeCandidates(t *testing.T) {
	// A candidate whose distribution straddles the sampled optimum is
	// more informative than one far above it with the same variance.
	samples := []float64{1.0, 1.05, 0.95}
	nearOpt, err := MES(1.1, 0.25, samples)
	if err != nil {
		t.Fatal(err)
	}
	farAbove, err := MES(10, 0.25, samples)
	if err != nil {
		t.Fatal(err)
	}
	if nearOpt <= farAbove {
		t.Errorf("near-optimum candidate MES %v should exceed far candidate %v", nearOpt, farAbove)
	}
}

func TestMESGrowsWithVarianceNearOptimum(t *testing.T) {
	samples := []float64{1.0}
	low, err := MES(1.2, 0.01, samples)
	if err != nil {
		t.Fatal(err)
	}
	high, err := MES(1.2, 1.0, samples)
	if err != nil {
		t.Fatal(err)
	}
	if high <= low {
		t.Errorf("MES should grow with variance near the optimum: %v vs %v", low, high)
	}
}

func TestMESInvalid(t *testing.T) {
	if _, err := MES(1, 1, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("no samples error = %v", err)
	}
	if _, err := MES(math.NaN(), 1, []float64{1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("NaN mean error = %v", err)
	}
	if _, err := MES(1, 1, []float64{math.Inf(1)}); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad sample error = %v", err)
	}
}

func TestEntropySearchKindString(t *testing.T) {
	if EntropySearch.String() != "MES" {
		t.Errorf("String() = %q", EntropySearch.String())
	}
}
