// Package cloud models the instance space of the paper's empirical study:
// the 18 AWS EC2 VM types spanning six families {c3, c4, m3, m4, r3, r4}
// and three sizes {large, xlarge, 2xlarge} (Section V-A).
//
// Each type carries its published late-2017 characteristics (vCPU count,
// memory, EBS throughput class, on-demand hourly price in us-east-1) plus
// the simulator-facing attributes (per-core speed, EBS MiB/s) that stand in
// for the physical hardware. The paper's 4-feature numeric encoding — CPU
// type 1–6, core count {2,4,8}, RAM per core {2,4,8}, EBS class {1,2,3} —
// is reproduced by Encode.
package cloud

import (
	"errors"
	"fmt"
	"sort"
)

// Family is an EC2 instance family.
type Family int

// The six families of the study. Enums start at one; the numeric value is
// also the paper's "CPU type encoded from one to six in order" feature,
// ordered by generation then family.
const (
	M3 Family = iota + 1
	C3
	R3
	M4
	C4
	R4
)

// String returns the family prefix, e.g. "c4".
func (f Family) String() string {
	switch f {
	case M3:
		return "m3"
	case C3:
		return "c3"
	case R3:
		return "r3"
	case M4:
		return "m4"
	case C4:
		return "c4"
	case R4:
		return "r4"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Size is an EC2 instance size within a family.
type Size int

// The three sizes of the study.
const (
	Large Size = iota + 1
	XLarge
	XXLarge
)

// String returns the size suffix, e.g. "2xlarge".
func (s Size) String() string {
	switch s {
	case Large:
		return "large"
	case XLarge:
		return "xlarge"
	case XXLarge:
		return "2xlarge"
	default:
		return fmt.Sprintf("Size(%d)", int(s))
	}
}

// Cores returns the vCPU count of the size: large=2, xlarge=4, 2xlarge=8.
func (s Size) Cores() int {
	switch s {
	case Large:
		return 2
	case XLarge:
		return 4
	case XXLarge:
		return 8
	default:
		return 0
	}
}

// VM describes one instance type.
type VM struct {
	Family Family
	Size   Size

	// Published characteristics.
	VCPUs       int     // vCPU count
	MemGiB      float64 // total memory
	PricePerHr  float64 // on-demand us-east-1 price, USD/hour, late 2017
	EBSClass    int     // coarse EBS bandwidth class 1..3 (paper's encoding)
	EBSMiBps    float64 // simulator-facing EBS throughput
	CoreSpeed   float64 // simulator-facing per-core speed, m4 == 1.0
	RAMPerCore  float64 // paper's encoded RAM-per-core bucket {2,4,8}
	Description string  // e.g. "compute optimized, 4th generation"
}

// Name returns the EC2 name, e.g. "c4.2xlarge".
func (vm VM) Name() string {
	return vm.Family.String() + "." + vm.Size.String()
}

// NumFeatures is the dimensionality of the paper's instance-space encoding.
const NumFeatures = 4

// FeatureNames labels the encoded dimensions.
func FeatureNames() []string {
	return []string{"cpu-type", "cores", "ram-per-core", "ebs-class"}
}

// Encode returns the paper's 4-feature numeric encoding of the VM:
// {CPU type 1–6, core count, RAM per core, EBS bandwidth class}.
func (vm VM) Encode() []float64 {
	return []float64{
		float64(vm.Family),
		float64(vm.VCPUs),
		vm.RAMPerCore,
		float64(vm.EBSClass),
	}
}

// familySpec carries per-family constants.
type familySpec struct {
	family     Family
	ramPerCore float64 // published bucket: c=2, m=4, r=8 GiB/core
	memPerCore float64 // actual GiB per vCPU used for MemGiB
	coreSpeed  float64 // relative per-core speed (m4 = 1.0)
	priceLarge float64 // USD/hour for .large; xlarge and 2xlarge scale 2x/4x
	desc       string
}

// The family table. Prices are the late-2017 us-east-1 on-demand rates;
// xlarge/2xlarge cost exactly (c3, m3, r3) or almost exactly (c4, m4, r4)
// twice/four times the large rate, so we scale from the large price and
// keep the published large rates exact.
var familySpecs = []familySpec{
	{M3, 4, 3.75, 0.95, 0.133, "general purpose, 3rd generation"},
	{C3, 2, 1.875, 1.15, 0.105, "compute optimized, 3rd generation"},
	{R3, 8, 7.625, 0.95, 0.166, "memory optimized, 3rd generation"},
	{M4, 4, 4.0, 1.00, 0.100, "general purpose, 4th generation"},
	{C4, 2, 1.875, 1.25, 0.100, "compute optimized, 4th generation"},
	// r4's E5-2686v4 clocks below m4's E5-2676v3: memory-optimized
	// instances win on capacity and EBS throughput, not per-core speed.
	{R4, 8, 7.625, 0.97, 0.133, "memory optimized, 4th generation"},
}

// ebsSpec maps (family, size) to the coarse class and a concrete
// throughput. The fourth generation is EBS-optimized by default (c4/m4
// dedicate 500/750/1000 Mbps by size; r4 rides a 10 Gbps network stack and
// sustains much more, especially at 2xlarge); the third generation shares
// the instance network.
func ebsSpec(f Family, s Size) (class int, mibps float64) {
	gen3 := map[Size]float64{Large: 40, XLarge: 60, XXLarge: 90}
	cm4 := map[Size]float64{Large: 62.5, XLarge: 93.75, XXLarge: 125}
	r4 := map[Size]float64{Large: 80, XLarge: 106, XXLarge: 212}
	class = int(s)
	switch f {
	case C4, M4:
		return class, cm4[s]
	case R4:
		return class, r4[s]
	default:
		return class, gen3[s]
	}
}

// Catalog is an immutable, ordered collection of VM types.
type Catalog struct {
	vms    []VM
	byName map[string]int
}

// ErrUnknownVM reports a lookup for a VM type not in the catalog.
var ErrUnknownVM = errors.New("cloud: unknown VM type")

// DefaultCatalog builds the paper's 18-type instance space.
func DefaultCatalog() *Catalog {
	var vms []VM
	for _, fs := range familySpecs {
		for _, size := range []Size{Large, XLarge, XXLarge} {
			cores := size.Cores()
			class, mibps := ebsSpec(fs.family, size)
			vms = append(vms, VM{
				Family:      fs.family,
				Size:        size,
				VCPUs:       cores,
				MemGiB:      fs.memPerCore * float64(cores),
				PricePerHr:  fs.priceLarge * float64(cores) / 2,
				EBSClass:    class,
				EBSMiBps:    mibps,
				CoreSpeed:   fs.coreSpeed,
				RAMPerCore:  fs.ramPerCore,
				Description: fs.desc,
			})
		}
	}
	sort.Slice(vms, func(i, j int) bool { return vms[i].Name() < vms[j].Name() })
	byName := make(map[string]int, len(vms))
	for i, vm := range vms {
		byName[vm.Name()] = i
	}
	return &Catalog{vms: vms, byName: byName}
}

// Len returns the number of VM types.
func (c *Catalog) Len() int { return len(c.vms) }

// VM returns the i-th VM type (by catalog order).
func (c *Catalog) VM(i int) VM {
	return c.vms[i]
}

// VMs returns a copy of the full list.
func (c *Catalog) VMs() []VM {
	return append([]VM(nil), c.vms...)
}

// Index returns the catalog index of the named VM type.
func (c *Catalog) Index(name string) (int, error) {
	i, ok := c.byName[name]
	if !ok {
		return 0, fmt.Errorf("cloud: %q: %w", name, ErrUnknownVM)
	}
	return i, nil
}

// Features returns the encoded feature rows for every VM, in catalog order.
func (c *Catalog) Features() [][]float64 {
	out := make([][]float64, len(c.vms))
	for i, vm := range c.vms {
		out[i] = vm.Encode()
	}
	return out
}

// Names returns the VM names in catalog order.
func (c *Catalog) Names() []string {
	out := make([]string, len(c.vms))
	for i, vm := range c.vms {
		out[i] = vm.Name()
	}
	return out
}
