package cloud

import (
	"errors"
	"strings"
	"testing"
)

func TestDefaultCatalogSize(t *testing.T) {
	cat := DefaultCatalog()
	if cat.Len() != 18 {
		t.Fatalf("catalog has %d VMs, want 18 (6 families x 3 sizes)", cat.Len())
	}
}

func TestCatalogNamesUniqueAndWellFormed(t *testing.T) {
	cat := DefaultCatalog()
	seen := map[string]bool{}
	for i := 0; i < cat.Len(); i++ {
		name := cat.VM(i).Name()
		if seen[name] {
			t.Errorf("duplicate VM name %q", name)
		}
		seen[name] = true
		if !strings.Contains(name, ".") {
			t.Errorf("malformed name %q", name)
		}
	}
}

func TestCatalogCoversAllFamilySizeCombos(t *testing.T) {
	cat := DefaultCatalog()
	for _, fam := range []string{"c3", "c4", "m3", "m4", "r3", "r4"} {
		for _, size := range []string{"large", "xlarge", "2xlarge"} {
			name := fam + "." + size
			if _, err := cat.Index(name); err != nil {
				t.Errorf("missing %s: %v", name, err)
			}
		}
	}
}

func TestIndexUnknown(t *testing.T) {
	cat := DefaultCatalog()
	if _, err := cat.Index("c5.large"); !errors.Is(err, ErrUnknownVM) {
		t.Errorf("error = %v, want ErrUnknownVM", err)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	cat := DefaultCatalog()
	for i := 0; i < cat.Len(); i++ {
		idx, err := cat.Index(cat.VM(i).Name())
		if err != nil || idx != i {
			t.Errorf("Index(%s) = %d, %v; want %d", cat.VM(i).Name(), idx, err, i)
		}
	}
}

func TestPublishedSpecs(t *testing.T) {
	cat := DefaultCatalog()
	tests := []struct {
		name   string
		vcpus  int
		memGiB float64
		price  float64
	}{
		{"c4.large", 2, 3.75, 0.100},
		{"c4.xlarge", 4, 7.5, 0.200},
		{"c4.2xlarge", 8, 15, 0.400},
		{"m4.large", 2, 8, 0.100},
		{"m4.2xlarge", 8, 32, 0.400},
		{"r3.large", 2, 15.25, 0.166},
		{"r4.2xlarge", 8, 61, 0.532},
		{"m3.large", 2, 7.5, 0.133},
		{"c3.large", 2, 3.75, 0.105},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			idx, err := cat.Index(tt.name)
			if err != nil {
				t.Fatal(err)
			}
			vm := cat.VM(idx)
			if vm.VCPUs != tt.vcpus {
				t.Errorf("vCPUs = %d, want %d", vm.VCPUs, tt.vcpus)
			}
			if vm.MemGiB != tt.memGiB {
				t.Errorf("MemGiB = %v, want %v", vm.MemGiB, tt.memGiB)
			}
			if diff := vm.PricePerHr - tt.price; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("PricePerHr = %v, want %v", vm.PricePerHr, tt.price)
			}
		})
	}
}

func TestSizeCores(t *testing.T) {
	if Large.Cores() != 2 || XLarge.Cores() != 4 || XXLarge.Cores() != 8 {
		t.Errorf("core counts: %d %d %d", Large.Cores(), XLarge.Cores(), XXLarge.Cores())
	}
}

func TestEncodeMatchesPaperRanges(t *testing.T) {
	cat := DefaultCatalog()
	for i := 0; i < cat.Len(); i++ {
		vm := cat.VM(i)
		f := vm.Encode()
		if len(f) != NumFeatures {
			t.Fatalf("%s: %d features, want %d", vm.Name(), len(f), NumFeatures)
		}
		if f[0] < 1 || f[0] > 6 {
			t.Errorf("%s: cpu-type %v out of 1..6", vm.Name(), f[0])
		}
		if f[1] != 2 && f[1] != 4 && f[1] != 8 {
			t.Errorf("%s: cores %v not in {2,4,8}", vm.Name(), f[1])
		}
		if f[2] != 2 && f[2] != 4 && f[2] != 8 {
			t.Errorf("%s: ram-per-core %v not in {2,4,8}", vm.Name(), f[2])
		}
		if f[3] < 1 || f[3] > 3 {
			t.Errorf("%s: ebs-class %v out of 1..3", vm.Name(), f[3])
		}
	}
}

func TestEncodeDistinct(t *testing.T) {
	cat := DefaultCatalog()
	seen := map[[4]float64]string{}
	for i := 0; i < cat.Len(); i++ {
		vm := cat.VM(i)
		f := vm.Encode()
		key := [4]float64{f[0], f[1], f[2], f[3]}
		if prev, ok := seen[key]; ok {
			t.Errorf("%s and %s share encoding %v", prev, vm.Name(), f)
		}
		seen[key] = vm.Name()
	}
}

func TestCPUTypeEncodingOrdersFamilies(t *testing.T) {
	// The paper encodes CPU types 1..6 in order; each family must map to
	// one distinct value shared by its three sizes.
	cat := DefaultCatalog()
	famValue := map[string]float64{}
	for i := 0; i < cat.Len(); i++ {
		vm := cat.VM(i)
		fam := vm.Family.String()
		v := vm.Encode()[0]
		if prev, ok := famValue[fam]; ok && prev != v {
			t.Errorf("family %s has inconsistent cpu-type %v vs %v", fam, prev, v)
		}
		famValue[fam] = v
	}
	if len(famValue) != 6 {
		t.Errorf("%d families, want 6", len(famValue))
	}
}

func TestPricesScaleWithSize(t *testing.T) {
	cat := DefaultCatalog()
	for _, fam := range []string{"c3", "c4", "m3", "m4", "r3", "r4"} {
		li, _ := cat.Index(fam + ".large")
		xi, _ := cat.Index(fam + ".xlarge")
		xxi, _ := cat.Index(fam + ".2xlarge")
		l, x, xx := cat.VM(li).PricePerHr, cat.VM(xi).PricePerHr, cat.VM(xxi).PricePerHr
		if x < 1.9*l || x > 2.1*l {
			t.Errorf("%s.xlarge price %v not ~2x large %v", fam, x, l)
		}
		if xx < 3.8*l || xx > 4.2*l {
			t.Errorf("%s.2xlarge price %v not ~4x large %v", fam, xx, l)
		}
	}
}

func TestMemoryScalesWithSize(t *testing.T) {
	cat := DefaultCatalog()
	for i := 0; i < cat.Len(); i++ {
		vm := cat.VM(i)
		perCore := vm.MemGiB / float64(vm.VCPUs)
		// r-family has the most memory per core, c-family the least.
		switch vm.Family {
		case C3, C4:
			if perCore > 2 {
				t.Errorf("%s: %v GiB/core too much for compute-optimized", vm.Name(), perCore)
			}
		case R3, R4:
			if perCore < 7 {
				t.Errorf("%s: %v GiB/core too little for memory-optimized", vm.Name(), perCore)
			}
		}
	}
}

func TestComputeOptimizedIsFastest(t *testing.T) {
	cat := DefaultCatalog()
	var c4Speed, others float64
	others = 10
	for i := 0; i < cat.Len(); i++ {
		vm := cat.VM(i)
		if vm.Family == C4 {
			c4Speed = vm.CoreSpeed
		} else if vm.CoreSpeed < others {
			others = vm.CoreSpeed
		}
	}
	if c4Speed <= others {
		t.Errorf("c4 speed %v should exceed the slowest family %v", c4Speed, others)
	}
	for i := 0; i < cat.Len(); i++ {
		vm := cat.VM(i)
		if vm.CoreSpeed <= 0 || vm.EBSMiBps <= 0 {
			t.Errorf("%s: non-positive speed %v or EBS %v", vm.Name(), vm.CoreSpeed, vm.EBSMiBps)
		}
	}
}

func TestEBSThroughputGrowsWithSize(t *testing.T) {
	cat := DefaultCatalog()
	for _, fam := range []string{"c3", "c4", "m3", "m4", "r3", "r4"} {
		li, _ := cat.Index(fam + ".large")
		xxi, _ := cat.Index(fam + ".2xlarge")
		if cat.VM(li).EBSMiBps >= cat.VM(xxi).EBSMiBps {
			t.Errorf("%s: EBS should grow with size", fam)
		}
	}
}

func TestVMsReturnsCopy(t *testing.T) {
	cat := DefaultCatalog()
	vms := cat.VMs()
	vms[0].VCPUs = 999
	if cat.VM(0).VCPUs == 999 {
		t.Error("VMs() aliases catalog data")
	}
}

func TestFeaturesAndNames(t *testing.T) {
	cat := DefaultCatalog()
	feats := cat.Features()
	names := cat.Names()
	if len(feats) != cat.Len() || len(names) != cat.Len() {
		t.Fatalf("lengths %d %d", len(feats), len(names))
	}
	if len(FeatureNames()) != NumFeatures {
		t.Errorf("FeatureNames has %d entries", len(FeatureNames()))
	}
}

func TestFamilySizeStrings(t *testing.T) {
	if C4.String() != "c4" || R3.String() != "r3" {
		t.Error("family names wrong")
	}
	if Large.String() != "large" || XXLarge.String() != "2xlarge" {
		t.Error("size names wrong")
	}
}
