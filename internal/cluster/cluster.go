// Package cluster extends the search space from single VM types to whole
// cluster configurations (VM type x node count), the setting CherryPick
// originally targeted. The paper fixes the cluster shape and searches VM
// types only; this package shows the same optimizers scaling to the
// larger, joint space with no changes — the catalog grows from 18 to
// 18 x len(nodeCounts) candidates.
//
// # Distributed-execution model
//
// A cluster run is reduced to an equivalent single-VM run on the
// internal/sim substrate plus distributed-systems overheads:
//
//   - CPU work spreads over nodes x cores, but coordination adds to the
//     Amdahl serial fraction (barriers, the driver, stragglers);
//   - the working set partitions across nodes with a hot-partition skew,
//     so doubling nodes does not halve per-node memory pressure;
//   - input I/O partitions across nodes, while shuffle traffic grows with
//     the node count ((n-1)/n of shuffled bytes cross the network);
//   - a fixed startup plus per-node agent overhead is added to every run.
//
// Deployment cost is wall-clock time x hourly price x node count: bigger
// clusters finish sooner but bill more machine-hours, recreating the
// paper's "level playing field" along a second axis.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/cloud"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Model constants.
const (
	// serialPerNode is the additional Amdahl serial fraction each extra
	// node contributes (coordination, barriers, stragglers).
	serialPerNode = 0.008
	// maxSerialFraction caps the coordination penalty.
	maxSerialFraction = 0.6
	// hotPartitionSkew: the busiest node holds (1 + skew x (n-1)/n) of an
	// even share of the working set.
	hotPartitionSkew = 0.35
	// shuffleFraction of the I/O volume is shuffled between stages, of
	// which (n-1)/n crosses node boundaries.
	shuffleFraction = 0.4
	// startupSec + perNodeStartupSec model cluster spin-up and agent
	// registration time, billed like any other second.
	startupSec        = 25.0
	perNodeStartupSec = 1.5
)

// Config is one cluster candidate: a VM type replicated across nodes.
type Config struct {
	VM    cloud.VM
	Nodes int
}

// Name renders e.g. "c4.xlarge x4".
func (c Config) Name() string {
	return fmt.Sprintf("%s x%d", c.VM.Name(), c.Nodes)
}

// Encode appends the node count to the paper's 4-feature VM encoding.
func (c Config) Encode() []float64 {
	return append(c.VM.Encode(), float64(c.Nodes))
}

// NumFeatures is the encoded dimensionality.
const NumFeatures = cloud.NumFeatures + 1

// Catalog is the cluster-configuration candidate space.
type Catalog struct {
	configs []Config
}

// DefaultNodeCounts spans small to medium clusters.
func DefaultNodeCounts() []int { return []int{2, 4, 6, 8} }

// NewCatalog crosses every VM type with every node count.
func NewCatalog(base *cloud.Catalog, nodeCounts []int) (*Catalog, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = DefaultNodeCounts()
	}
	for _, n := range nodeCounts {
		if n < 1 {
			return nil, fmt.Errorf("cluster: node count %d < 1", n)
		}
	}
	counts := append([]int(nil), nodeCounts...)
	sort.Ints(counts)
	var configs []Config
	for i := 0; i < base.Len(); i++ {
		for _, n := range counts {
			configs = append(configs, Config{VM: base.VM(i), Nodes: n})
		}
	}
	return &Catalog{configs: configs}, nil
}

// Len returns the candidate count.
func (c *Catalog) Len() int { return len(c.configs) }

// Config returns the i-th candidate.
func (c *Catalog) Config(i int) Config { return c.configs[i] }

// Index finds a configuration by name.
func (c *Catalog) Index(name string) (int, error) {
	for i, cfg := range c.configs {
		if cfg.Name() == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown configuration %q", name)
}

// Simulator evaluates workloads on cluster configurations by reducing
// them to single-VM runs with distributed overheads.
type Simulator struct {
	single *sim.Simulator
}

// NewSimulator wraps a single-VM simulator.
func NewSimulator(single *sim.Simulator) *Simulator {
	return &Simulator{single: single}
}

// perNodeWorkload derives the equivalent single-node workload of running
// w on a cluster of n nodes. The derived workload's identity includes the
// node count so the simulator's per-(workload, VM) affinity and noise
// streams stay distinct per configuration.
func perNodeWorkload(w workloads.Workload, n int) workloads.Workload {
	if n <= 1 {
		return w
	}
	nodes := float64(n)
	out := w
	out.AppName = fmt.Sprintf("%s@x%d", w.AppName, n)

	// CPU work divides evenly; coordination raises the serial fraction.
	out.Demands.CPUCoreSeconds = w.Demands.CPUCoreSeconds / nodes
	serial := w.Demands.SerialFraction + serialPerNode*(nodes-1)
	if serial > maxSerialFraction {
		serial = maxSerialFraction
	}
	out.Demands.SerialFraction = serial

	// The busiest node carries an uneven share of the working set.
	evenShare := w.Demands.WorkingSetGiB / nodes
	out.Demands.WorkingSetGiB = evenShare * (1 + hotPartitionSkew*(nodes-1)/nodes)

	// Input I/O partitions; shuffle traffic crossing nodes is re-paid.
	inputShare := w.Demands.IOGiB / nodes
	shuffleCross := w.Demands.IOGiB * shuffleFraction * (nodes - 1) / nodes / nodes
	out.Demands.IOGiB = inputShare + shuffleCross

	return out
}

// Feasible reports whether w fits on the cluster (per-node working set
// within the OOM bound of the node's VM type).
func (s *Simulator) Feasible(w workloads.Workload, cfg Config) bool {
	return s.single.Feasible(perNodeWorkload(w, cfg.Nodes), cfg.VM)
}

// Truth returns the noise-free cluster execution time and cost.
func (s *Simulator) Truth(w workloads.Workload, cfg Config) (sim.Result, error) {
	return s.eval(w, cfg, 0, false)
}

// Measure returns a noisy measurement of w on cfg.
func (s *Simulator) Measure(w workloads.Workload, cfg Config, trial int64) (sim.Result, error) {
	return s.eval(w, cfg, trial, true)
}

func (s *Simulator) eval(w workloads.Workload, cfg Config, trial int64, noisy bool) (sim.Result, error) {
	if cfg.Nodes < 1 {
		return sim.Result{}, fmt.Errorf("cluster: node count %d < 1", cfg.Nodes)
	}
	derived := perNodeWorkload(w, cfg.Nodes)
	var (
		res sim.Result
		err error
	)
	if noisy {
		res, err = s.single.Measure(derived, cfg.VM, trial)
	} else {
		res, err = s.single.Truth(derived, cfg.VM)
	}
	if err != nil {
		return sim.Result{}, fmt.Errorf("cluster: %s on %s: %w", w.ID(), cfg.Name(), err)
	}
	res.TimeSec += startupSec + perNodeStartupSec*float64(cfg.Nodes)
	res.CostUSD = res.TimeSec / 3600 * cfg.VM.PricePerHr * float64(cfg.Nodes)
	return res, nil
}

// StudyWorkloads returns the single-VM study set filtered to workloads
// feasible on EVERY cluster configuration (mirroring the paper's
// exclusion rule at cluster scale). With multi-node options available,
// per-node memory pressure drops, so this is a superset of what a
// single-node-only catalog would admit; the filter matters only when
// 1-node configurations are present.
func (s *Simulator) StudyWorkloads(catalog *Catalog) []workloads.Workload {
	var out []workloads.Workload
	for _, w := range s.single.StudyWorkloads() {
		ok := true
		for i := 0; i < catalog.Len(); i++ {
			if !s.Feasible(w, catalog.Config(i)) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, w)
		}
	}
	return out
}

// Speedup returns the cluster's noise-free speedup over a single node of
// the same VM type (for model sanity checks and reporting).
func (s *Simulator) Speedup(w workloads.Workload, cfg Config) (float64, error) {
	single, err := s.Truth(w, Config{VM: cfg.VM, Nodes: 1})
	if err != nil {
		return 0, err
	}
	clustered, err := s.Truth(w, cfg)
	if err != nil {
		return 0, err
	}
	if clustered.TimeSec <= 0 {
		return 0, fmt.Errorf("cluster: non-positive time for %s", cfg.Name())
	}
	return single.TimeSec / clustered.TimeSec, nil
}
