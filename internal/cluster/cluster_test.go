package cluster

import (
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func newClusterSim(t *testing.T) (*Simulator, *Catalog) {
	t.Helper()
	single := sim.New(cloud.DefaultCatalog())
	catalog, err := NewCatalog(single.Catalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewSimulator(single), catalog
}

func mustWorkload(t *testing.T, id string) workloads.Workload {
	t.Helper()
	w, err := workloads.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewCatalog(t *testing.T) {
	_, catalog := newClusterSim(t)
	if want := 18 * len(DefaultNodeCounts()); catalog.Len() != want {
		t.Fatalf("catalog has %d configs, want %d", catalog.Len(), want)
	}
	seen := map[string]bool{}
	for i := 0; i < catalog.Len(); i++ {
		cfg := catalog.Config(i)
		name := cfg.Name()
		if seen[name] {
			t.Errorf("duplicate config %q", name)
		}
		seen[name] = true
		if !strings.Contains(name, " x") {
			t.Errorf("malformed name %q", name)
		}
		if len(cfg.Encode()) != NumFeatures {
			t.Errorf("%s: %d features", name, len(cfg.Encode()))
		}
	}
}

func TestNewCatalogValidation(t *testing.T) {
	single := sim.New(cloud.DefaultCatalog())
	if _, err := NewCatalog(single.Catalog(), []int{0}); err == nil {
		t.Error("zero node count should fail")
	}
}

func TestCatalogIndex(t *testing.T) {
	_, catalog := newClusterSim(t)
	idx, err := catalog.Index("c4.xlarge x4")
	if err != nil {
		t.Fatal(err)
	}
	if got := catalog.Config(idx).Name(); got != "c4.xlarge x4" {
		t.Errorf("Index round trip = %q", got)
	}
	if _, err := catalog.Index("c4.xlarge x99"); err == nil {
		t.Error("unknown config should fail")
	}
}

func TestClusterSpeedsUpParallelWork(t *testing.T) {
	s, _ := newClusterSim(t)
	// word2vec is CPU-heavy with a modest serial fraction: 4 nodes should
	// beat 1 node clearly but sublinearly.
	w := mustWorkload(t, "word2vec/spark2.1/medium")
	vmIdx, err := cloud.DefaultCatalog().Index("m4.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	vm := cloud.DefaultCatalog().VM(vmIdx)
	speedup, err := s.Speedup(w, Config{VM: vm, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if speedup <= 1.3 {
		t.Errorf("4-node speedup %.2f, want clearly above 1", speedup)
	}
	if speedup >= 4 {
		t.Errorf("4-node speedup %.2f is superlinear — coordination model missing", speedup)
	}
}

func TestDiminishingReturns(t *testing.T) {
	s, _ := newClusterSim(t)
	w := mustWorkload(t, "gb-tree/spark2.1/medium") // high serial fraction
	vmIdx, _ := cloud.DefaultCatalog().Index("c4.xlarge")
	vm := cloud.DefaultCatalog().VM(vmIdx)
	s4, err := s.Speedup(w, Config{VM: vm, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	s8, err := s.Speedup(w, Config{VM: vm, Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Per-node efficiency must fall with scale.
	if s8/8 >= s4/4 {
		t.Errorf("efficiency grew with nodes: %0.2f/8 vs %0.2f/4", s8, s4)
	}
}

func TestClusterCostChargesAllNodes(t *testing.T) {
	s, _ := newClusterSim(t)
	w := mustWorkload(t, "pearson/spark2.1/medium")
	vmIdx, _ := cloud.DefaultCatalog().Index("m4.large")
	vm := cloud.DefaultCatalog().VM(vmIdx)
	res, err := s.Truth(w, Config{VM: vm, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := res.TimeSec / 3600 * vm.PricePerHr * 4
	if diff := res.CostUSD - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cost %v, want %v", res.CostUSD, want)
	}
}

func TestClusterRelievesMemoryPressure(t *testing.T) {
	s, _ := newClusterSim(t)
	// lr/spark1.5 thrashes on one c4.large (3.75 GiB); spreading over 8
	// nodes must make it feasible and far faster than the 2-node cluster.
	w := mustWorkload(t, "lr/spark1.5/medium")
	vmIdx, _ := cloud.DefaultCatalog().Index("c4.large")
	vm := cloud.DefaultCatalog().VM(vmIdx)
	small, err := s.Truth(w, Config{VM: vm, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := s.Truth(w, Config{VM: vm, Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if big.TimeSec >= small.TimeSec {
		t.Errorf("8 nodes (%v s) not faster than 2 (%v s) for a memory-bound workload", big.TimeSec, small.TimeSec)
	}
}

func TestPerNodeWorkloadIdentityDistinct(t *testing.T) {
	w := mustWorkload(t, "kmeans/spark2.1/medium")
	a := perNodeWorkload(w, 2)
	b := perNodeWorkload(w, 4)
	if a.ID() == b.ID() {
		t.Error("different node counts must have distinct workload identities")
	}
	if one := perNodeWorkload(w, 1); one.ID() != w.ID() {
		t.Error("single node must preserve the workload identity")
	}
}

func TestMeasureReproducible(t *testing.T) {
	s, catalog := newClusterSim(t)
	w := mustWorkload(t, "kmeans/spark2.1/medium")
	cfg := catalog.Config(5)
	a, err := s.Measure(w, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Measure(w, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeSec != b.TimeSec {
		t.Error("same trial should reproduce")
	}
}

func TestStudyWorkloadsCluster(t *testing.T) {
	s, catalog := newClusterSim(t)
	ws := s.StudyWorkloads(catalog)
	// Multi-node clusters only relieve memory pressure, so the full
	// single-VM study set must survive.
	if len(ws) != 107 {
		t.Errorf("cluster study set has %d workloads, want 107", len(ws))
	}
}

func TestClusterTargetSearch(t *testing.T) {
	s, catalog := newClusterSim(t)
	w := mustWorkload(t, "als/spark2.1/medium")
	for _, mk := range []func() (core.Optimizer, error){
		func() (core.Optimizer, error) {
			return core.NewNaiveBO(core.NaiveBOConfig{Objective: core.MinimizeCost, Seed: 1})
		},
		func() (core.Optimizer, error) {
			return core.NewAugmentedBO(core.AugmentedBOConfig{Objective: core.MinimizeCost, Seed: 1})
		},
	} {
		opt, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Search(s.NewTarget(catalog, w, 1))
		if err != nil {
			t.Fatal(err)
		}
		if res.BestIndex < 0 || res.BestIndex >= catalog.Len() {
			t.Errorf("best index %d out of range", res.BestIndex)
		}
		if res.NumMeasurements() > catalog.Len() {
			t.Errorf("measured %d of %d", res.NumMeasurements(), catalog.Len())
		}
	}
}

func TestBestClusterIsNotAlwaysBiggest(t *testing.T) {
	// Under the cost objective, the optimal node count should vary across
	// workloads — the second-axis "level playing field".
	s, catalog := newClusterSim(t)
	bestNodes := map[int]int{}
	for _, id := range []string{
		"scan/hadoop2.7/medium", "word2vec/spark2.1/medium",
		"lr/spark1.5/medium", "gb-tree/spark2.1/medium",
		"pearson/spark2.1/medium", "terasort/hadoop2.7/large",
	} {
		w := mustWorkload(t, id)
		bestCost, bestIdx := -1.0, -1
		for i := 0; i < catalog.Len(); i++ {
			res, err := s.Truth(w, catalog.Config(i))
			if err != nil {
				t.Fatal(err)
			}
			if bestIdx == -1 || res.CostUSD < bestCost {
				bestCost, bestIdx = res.CostUSD, i
			}
		}
		bestNodes[catalog.Config(bestIdx).Nodes]++
	}
	if len(bestNodes) < 2 {
		t.Errorf("every workload prefers the same node count: %v", bestNodes)
	}
}

func TestPerNodeWorkloadDemandMath(t *testing.T) {
	w := mustWorkload(t, "kmeans/spark2.1/medium")
	derived := perNodeWorkload(w, 4)
	if got, want := derived.Demands.CPUCoreSeconds, w.Demands.CPUCoreSeconds/4; got != want {
		t.Errorf("cpu = %v, want %v", got, want)
	}
	if derived.Demands.SerialFraction <= w.Demands.SerialFraction {
		t.Error("coordination must raise the serial fraction")
	}
	even := w.Demands.WorkingSetGiB / 4
	if derived.Demands.WorkingSetGiB <= even {
		t.Error("hot-partition skew must exceed the even share")
	}
	if derived.Demands.WorkingSetGiB >= w.Demands.WorkingSetGiB {
		t.Error("per-node working set must shrink")
	}
	if derived.Demands.IOGiB >= w.Demands.IOGiB {
		t.Error("per-node I/O must shrink")
	}
}

func TestSerialFractionCapped(t *testing.T) {
	w := mustWorkload(t, "mm/spark2.1/medium") // serial 0.35
	derived := perNodeWorkload(w, 64)
	if derived.Demands.SerialFraction > maxSerialFraction {
		t.Errorf("serial fraction %v exceeds cap", derived.Demands.SerialFraction)
	}
}
