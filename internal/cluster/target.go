package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workloads"
)

// Target adapts one (cluster simulator, workload) pair to core.Target:
// the candidates are cluster configurations and the optimizers search the
// joint (VM type, node count) space unchanged.
type Target struct {
	sim      *Simulator
	catalog  *Catalog
	workload workloads.Workload
	trial    int64
}

// Compile-time interface check.
var _ core.Target = (*Target)(nil)

// NewTarget builds a measurable cluster target for w.
func (s *Simulator) NewTarget(catalog *Catalog, w workloads.Workload, trial int64) *Target {
	return &Target{sim: s, catalog: catalog, workload: w, trial: trial}
}

// NumCandidates implements core.Target.
func (t *Target) NumCandidates() int { return t.catalog.Len() }

// Features implements core.Target with the 5-feature cluster encoding.
func (t *Target) Features(i int) []float64 { return t.catalog.Config(i).Encode() }

// Name implements core.Target.
func (t *Target) Name(i int) string { return t.catalog.Config(i).Name() }

// Measure implements core.Target.
func (t *Target) Measure(i int) (core.Outcome, error) {
	res, err := t.sim.Measure(t.workload, t.catalog.Config(i), t.trial)
	if err != nil {
		return core.Outcome{}, fmt.Errorf("cluster: target measure: %w", err)
	}
	return core.Outcome{TimeSec: res.TimeSec, CostUSD: res.CostUSD, Metrics: res.Metrics}, nil
}
