package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/acquisition"
	"repro/internal/forest"
	"repro/internal/lowlevel"
	"repro/internal/telemetry"
)

// AugmentedBOConfig configures Arrow's low-level augmented optimizer.
type AugmentedBOConfig struct {
	// Objective selects what to minimize. Required.
	Objective Objective
	// DeltaThreshold is the Prediction-Delta stopping threshold theta:
	// the search stops once every unmeasured VM's predicted objective
	// exceeds theta x the incumbent, i.e. no VM is predicted to be worth
	// exploring. The paper sweeps theta in [0.9, 1.3] and recommends 1.1
	// (Section VI-A). Zero means DefaultDeltaThreshold; negative disables
	// early stopping.
	DeltaThreshold float64
	// MaxTimeSLO, when positive, constrains the search to VMs whose
	// execution time stays within the SLO (CherryPick's constrained
	// formulation): a second pairwise model predicts execution time,
	// candidates predicted to violate the SLO are deprioritized, and only
	// SLO-meeting observations can become the incumbent.
	MaxTimeSLO float64
	// MinObservations is the smallest number of measurements before the
	// stopping rule may fire. Zero means the design size plus one.
	MinObservations int
	// MaxMeasurements caps the search cost. Zero means the whole catalog.
	MaxMeasurements int
	// Forest configures the Extra-Trees surrogate. Zero values use the
	// forest package defaults (100 trees, sqrt(d) split candidates).
	Forest forest.Config
	// Design configures the initial sample.
	Design DesignConfig
	// Seed drives the initial design and the tree randomization.
	Seed int64
	// DisableLowLevel is the ablation switch: the pairwise surrogate is
	// trained on instance features only, zeroing out the low-level
	// metrics. Used to quantify how much of Arrow's advantage comes from
	// the low-level augmentation versus the tree surrogate + pairwise
	// encoding alone.
	DisableLowLevel bool
	// DisableIncrementalRefit forces every surrogate fit to re-grow the
	// whole ensemble from scratch instead of reusing trees whose sampled
	// rows did not change. The search itself is bit-identical either way
	// (forest.Refit guarantees it); the switch exists to measure the
	// speedup and as an escape hatch.
	DisableIncrementalRefit bool
	// WarmStart seeds the surrogate with observations from a previous
	// run of a *related* workload on the same candidate catalog (the
	// paper's stated future work: "augment Bayesian Optimizer with
	// historical performance data"). Prior observations contribute
	// (src -> dst) training pairs among themselves but are never used as
	// prediction sources, so stale history can bias early picks at worst
	// — it cannot fabricate measurements.
	WarmStart []PriorObservation
	// Tracer receives the search's event stream (see internal/telemetry).
	// Nil disables tracing at zero cost.
	Tracer telemetry.Tracer
}

// PriorObservation is one historical measurement used for warm starting.
type PriorObservation struct {
	// Features is the candidate's instance-space encoding (must use the
	// same encoding as the target).
	Features []float64
	// Metrics is the low-level vector collected during the historical run.
	Metrics lowlevel.Vector
	// Value is the historical objective value (must be positive).
	Value float64
}

// DefaultDeltaThreshold is the paper's recommended Prediction-Delta
// stopping threshold.
const DefaultDeltaThreshold = 1.1

// defaultPairSampleRate is the per-tree observation-unit keep probability
// of the pairwise surrogate when Forest.SampleRate is unset. Each tree
// trains on the pair rows whose source and destination units it keeps
// (~49% of rows), so measuring one more VM re-grows only the ~70% of
// trees that keep the new unit — the lever behind incremental refits.
// Set Forest.SampleRate to 1 for the classic every-tree-sees-everything
// ensemble.
const defaultPairSampleRate = 0.7

// AugmentedBO is Arrow: Bayesian optimization whose surrogate sees not
// just the instance space but the low-level performance metrics of every
// VM measured so far (Algorithm 2 in the paper).
//
// The surrogate is trained on ordered pairs of measured VMs: the feature
// row [features(src) || lowlevel(src) || features(dst)] has target y(dst).
// Predicting an unmeasured candidate averages the model output over all
// measured source VMs — "what does the workload's behaviour on src say
// about its performance on dst?" — which is how the model exploits
// low-level information about VMs the workload has never run on.
type AugmentedBO struct {
	cfg AugmentedBOConfig
}

// Compile-time interface check.
var _ Optimizer = (*AugmentedBO)(nil)

// NewAugmentedBO validates the configuration and builds the optimizer.
func NewAugmentedBO(cfg AugmentedBOConfig) (*AugmentedBO, error) {
	if cfg.DeltaThreshold == 0 {
		cfg.DeltaThreshold = DefaultDeltaThreshold
	}
	if cfg.DeltaThreshold > 0 && cfg.DeltaThreshold < 0.5 {
		return nil, fmt.Errorf("core: delta threshold %v is below any sensible value: %w", cfg.DeltaThreshold, ErrBadConfig)
	}
	if cfg.MaxTimeSLO < 0 || math.IsNaN(cfg.MaxTimeSLO) || math.IsInf(cfg.MaxTimeSLO, 0) {
		return nil, fmt.Errorf("core: time SLO %v invalid: %w", cfg.MaxTimeSLO, ErrBadConfig)
	}
	for i, prior := range cfg.WarmStart {
		if len(prior.Features) == 0 {
			return nil, fmt.Errorf("core: warm-start observation %d has no features: %w", i, ErrBadConfig)
		}
		if prior.Value <= 0 || math.IsNaN(prior.Value) || math.IsInf(prior.Value, 0) {
			return nil, fmt.Errorf("core: warm-start observation %d has invalid value %v: %w", i, prior.Value, ErrBadConfig)
		}
		if err := prior.Metrics.Validate(); err != nil {
			return nil, fmt.Errorf("core: warm-start observation %d: %w", i, err)
		}
	}
	return &AugmentedBO{cfg: cfg}, nil
}

// Name implements Optimizer.
func (a *AugmentedBO) Name() string { return "augmented-bo" }

// Search implements Optimizer.
func (a *AugmentedBO) Search(target Target) (*Result, error) {
	st, err := newSearchState(target, a.cfg.Objective)
	if err != nil {
		return nil, err
	}
	st.sloTime = a.cfg.MaxTimeSLO
	st.setTracer(a.cfg.Tracer, a.Name())
	st.emitSearchStart()
	rng := rand.New(rand.NewSource(a.cfg.Seed))

	// Batch planning during the design phase reads ahead in the design
	// plan; continueSearch swaps in the model-backed planner.
	if ph, ok := target.(PlanHookSetter); ok {
		ph.SetPlanHook(func(pending []PendingPoint, extra int) []int {
			return st.planFromDesign(pendingSet(pending), extra)
		})
	}

	if err := st.runInitialDesign(a.cfg.Design, rng); err != nil {
		return st.abort(a.Name(), err)
	}
	return a.continueSearch(st, len(st.obs)+1, rng)
}

// continueSearch runs the augmented loop on an already seeded state. It is
// shared with HybridBO, which hands over a state seeded by Naive BO.
func (a *AugmentedBO) continueSearch(st *searchState, defaultMinObs int, rng *rand.Rand) (*Result, error) {
	minObs := a.cfg.MinObservations
	if minObs == 0 {
		minObs = defaultMinObs
	}
	maxMeas := a.cfg.MaxMeasurements
	if maxMeas == 0 || maxMeas > st.target.NumCandidates() {
		maxMeas = st.target.NumCandidates()
	}

	// One tree seed for the whole search, drawn up front: per-tree row
	// sampling is a pure function of (seed, unit ids), so a stable seed is
	// what lets forest.Refit carry unchanged trees across iterations. A
	// fresh seed per iteration would reshuffle every tree's row set and
	// force a full re-grow each time.
	treeSeed := rng.Int63()

	if ph, ok := st.target.(PlanHookSetter); ok {
		p := &augPlanner{a: a, st: st, treeSeed: treeSeed, minObs: minObs, maxMeas: maxMeas}
		ph.SetPlanHook(p.plan)
	}

	for len(st.obs) < maxMeas {
		remaining := st.unmeasured()
		if len(remaining) == 0 {
			break
		}
		if len(st.obs) < 2 {
			// Design failures can leave too few observations for the
			// pairwise surrogate: extend the design with the next
			// quasi-random pick instead of failing the search.
			idx := st.designReplacement(rng)
			if idx < 0 {
				break
			}
			if _, err := st.measure(idx, 0, true); err != nil {
				return st.abort(a.Name(), err)
			}
			continue
		}
		var next int
		var predicted float64
		if d, ok := st.scriptedDecision(); ok {
			// Resumed replay: restore the recorded selection instead of
			// refitting the pairwise surrogate.
			next, predicted = d.Index, d.aux()
		} else {
			var err error
			next, predicted, err = a.selectByDelta(st, remaining, treeSeed)
			if err != nil {
				return st.abort(a.Name(), err)
			}
			st.recordDecision(next, 0, predicted)
		}
		// Prediction Delta doubles as the stopping criterion: if even the
		// most promising unmeasured VM is predicted worse than
		// theta x incumbent, there is nothing left worth paying for. With
		// a time SLO the rule only fires once something feasible exists.
		if a.cfg.DeltaThreshold > 0 && len(st.obs) >= minObs && st.hasIncumbent() &&
			predicted > a.cfg.DeltaThreshold*st.bestVal {
			reason := fmt.Sprintf("best predicted %.4g exceeds %.2f x incumbent %.4g", predicted, a.cfg.DeltaThreshold, st.bestVal)
			if st.tracer != nil {
				st.emit(telemetry.Event{
					Kind:      telemetry.KindStopRule,
					Step:      len(st.obs),
					Candidate: -1,
					Value:     predicted,
					Aux:       a.cfg.DeltaThreshold * st.bestVal,
					Detail:    reason,
				})
			}
			return st.result(a.Name(), true, reason), nil
		}
		score := 0.0
		if st.hasIncumbent() {
			var err error
			score, err = acquisition.Delta(predicted, st.bestVal)
			if err != nil {
				return st.abort(a.Name(), err)
			}
		}
		st.emitSelected(next, score, predicted)
		if _, err := st.measure(next, score, false); err != nil {
			return st.abort(a.Name(), err)
		}
	}
	return st.finish(a.Name(), false, "search space exhausted")
}

// selectByDelta fits the pairwise Extra-Trees surrogate and returns the
// unmeasured candidate with the smallest predicted objective, plus that
// prediction. Under a time SLO a second pairwise model predicts execution
// time: candidates predicted feasible are ranked by predicted objective;
// if none are, the candidate predicted fastest is chosen to hunt for
// feasibility.
func (a *AugmentedBO) selectByDelta(st *searchState, remaining []int, treeSeed int64) (next int, predicted float64, err error) {
	model, err := a.fitPairModel(st, treeSeed)
	if err != nil {
		return 0, 0, err
	}
	var timeModel *forest.Regressor
	if a.cfg.MaxTimeSLO > 0 {
		timeModel, err = a.fitPairModelFor(st, treeSeed+1, pairTargetTime, false)
		if err != nil {
			return 0, 0, err
		}
	}

	// Score every remaining candidate in one batched pass: the query rows
	// [src || lowlevel(src) || candidate] are built once into the cache's
	// reusable slab and serve both the objective and the time model (their
	// feature space is identical). Each candidate's per-source predictions
	// are averaged in log space, matching the paper's "Surrogate Model
	// Update" design of pooling every (src -> dst) estimate.
	cache := a.pairs(st)
	rows := cache.predictionRows(st, remaining)
	cache.rawPreds, err = model.PredictBatch(rows, cache.rawPreds)
	if err != nil {
		return 0, 0, fmt.Errorf("core: surrogate prediction: %w", err)
	}
	cache.objMeans = reduceMeans(cache.objMeans, cache.rawPreds, len(remaining), len(st.obs))
	preds := cache.objMeans
	var predTimes []float64
	if timeModel != nil {
		cache.rawPreds, err = timeModel.PredictBatch(rows, cache.rawPreds)
		if err != nil {
			return 0, 0, fmt.Errorf("core: surrogate time prediction: %w", err)
		}
		cache.timeMeans = reduceMeans(cache.timeMeans, cache.rawPreds, len(remaining), len(st.obs))
		predTimes = cache.timeMeans
	}

	next = -1
	predicted = math.Inf(1)
	fallback, fallbackTime := -1, math.Inf(1)
	fallbackPred := math.Inf(1)
	for i, idx := range remaining {
		pred := preds[i]
		if st.tracer != nil {
			aux := 0.0
			if predTimes != nil {
				aux = predTimes[i]
			}
			st.emit(telemetry.Event{
				Kind:      telemetry.KindCandidateScored,
				Step:      len(st.obs),
				Candidate: idx,
				Name:      st.target.Name(idx),
				Value:     pred,
				Aux:       aux,
			})
		}
		if predTimes != nil {
			predTime := predTimes[i]
			if predTime < fallbackTime {
				fallbackTime = predTime
				fallback = idx
				fallbackPred = pred
			}
			if predTime > a.cfg.MaxTimeSLO {
				continue // predicted to violate the SLO
			}
		}
		if pred < predicted {
			predicted = pred
			next = idx
		}
	}
	if next == -1 {
		// Every remaining candidate is predicted infeasible: measure the
		// one predicted fastest; its predicted objective keeps the
		// stopping rule from firing spuriously.
		next = fallback
		predicted = fallbackPred
	}
	return next, predicted, nil
}

// fitPairModel builds the training set of all ordered measured pairs and
// fits the Extra-Trees regressor. Targets are modeled in log space: the
// response surface is multiplicative (thrash factors, speed ratios) and
// averaging source predictions in log space takes a geometric mean, which
// is robust to one source predicting a blow-up.
func (a *AugmentedBO) fitPairModel(st *searchState, treeSeed int64) (*forest.Regressor, error) {
	return a.fitPairModelFor(st, treeSeed, pairTargetObjective, true)
}

// fitPairModelFor fits the Extra-Trees regressor on the cached pairwise
// training set for the selected target (objective value or execution time,
// both modeled in log space). Warm-start history carries objective values
// only, so it contributes rows only when the target is the objective
// (withHistory).
func (a *AugmentedBO) fitPairModelFor(st *searchState, treeSeed int64, target pairTarget, withHistory bool) (*forest.Regressor, error) {
	if len(st.obs) < 2 {
		return nil, fmt.Errorf("core: pairwise surrogate needs >= 2 observations, have %d: %w", len(st.obs), ErrBadConfig)
	}
	cache := a.pairs(st)
	cache.sync(st)
	xs, ys, units := cache.trainingSet(target, withHistory)
	cfg := a.cfg.Forest
	cfg.Seed = treeSeed
	if cfg.SampleRate == 0 {
		cfg.SampleRate = defaultPairSampleRate
	}
	var prev *forest.Regressor
	if !a.cfg.DisableIncrementalRefit {
		if target == pairTargetTime {
			prev = cache.prevTime
		} else {
			prev = cache.prevObj
		}
	}
	var fitT0 time.Time
	if st.tracer != nil {
		fitT0 = time.Now()
	}
	model, info, err := forest.Refit(prev, cfg, xs, ys, units)
	if err != nil {
		return nil, fmt.Errorf("core: fitting Extra-Trees surrogate: %w", err)
	}
	if target == pairTargetTime {
		cache.prevTime = model
	} else {
		cache.prevObj = model
	}
	name := "forest"
	if target == pairTargetTime {
		name = "forest-time"
	}
	st.emitFit(name, len(xs), fitT0, info.Incremental, info.ReusedTrees)
	return model, nil
}

// pairs returns the state's pair-row cache, building it (and the
// warm-start pairs that teach the src->dst transfer structure before the
// current search has enough of its own observations) on first use.
func (a *AugmentedBO) pairs(st *searchState) *pairCache {
	if st.pairs == nil {
		st.pairs = newPairCache(st.target.NumCandidates(), len(st.features[0]), a.cfg.DisableLowLevel)
		st.pairs.addWarm(a.cfg.WarmStart)
	}
	return st.pairs
}

// FeatureImportance is one entry of the surrogate explanation.
type FeatureImportance struct {
	// Name identifies the pair-row column: "src:f<i>" and "dst:f<i>" for
	// instance features, "src:<metric>" for low-level metrics.
	Name string
	// Fraction is the share of ensemble split nodes using this column.
	Fraction float64
}

// ExplainSurrogate refits the pairwise surrogate on a finished search and
// reports which columns its trees split on — a cheap view of whether the
// model leans on the low-level metrics (Section IV-A's feature-selection
// discussion). The result must come from a search over target.
func (a *AugmentedBO) ExplainSurrogate(target Target, res *Result) ([]FeatureImportance, error) {
	st, err := newSearchState(target, res.Objective)
	if err != nil {
		return nil, err
	}
	for _, obs := range res.Observations {
		if obs.Index < 0 || obs.Index >= len(st.features) {
			return nil, fmt.Errorf("core: observation index %d outside target: %w", obs.Index, ErrBadConfig)
		}
		st.measured[obs.Index] = true
		st.obs = append(st.obs, obs)
	}
	model, err := a.fitPairModel(st, a.cfg.Seed)
	if err != nil {
		return nil, err
	}
	numFeat := len(st.features[0])
	names := make([]string, 0, 2*numFeat+int(lowlevel.NumMetrics))
	for i := 0; i < numFeat; i++ {
		names = append(names, fmt.Sprintf("src:f%d", i))
	}
	for _, m := range lowlevel.Names() {
		names = append(names, "src:"+m)
	}
	for i := 0; i < numFeat; i++ {
		names = append(names, fmt.Sprintf("dst:f%d", i))
	}
	imps := model.FeatureImportance()
	if len(imps) != len(names) {
		return nil, fmt.Errorf("core: importance length %d, want %d", len(imps), len(names))
	}
	out := make([]FeatureImportance, len(names))
	for i := range names {
		out[i] = FeatureImportance{Name: names[i], Fraction: imps[i]}
	}
	return out, nil
}

// appendPairRow appends the augmented feature row
// [features(src) || lowlevel(src) || features(dst)] to dst and returns the
// extended slice. Callers provide the destination (a cache slab or a
// reusable scratch row), so assembling a row allocates nothing.
func appendPairRow(dst, srcFeat []float64, srcMetrics *lowlevel.Vector, dstFeat []float64) []float64 {
	dst = append(dst, srcFeat...)
	dst = append(dst, srcMetrics[:]...)
	return append(dst, dstFeat...)
}
