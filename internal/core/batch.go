package core

import (
	"math"
	"math/rand"

	"repro/internal/forest"
	"repro/internal/gp"
)

// This file implements pending-point fantasization: the plan hooks the
// optimizers install on a batch-capable Target (see PlanHook in
// stepper.go) so a Stepper can emit k concurrent suggestions. The idea —
// Lynceus's lookahead planning and TrimTuner's cheap fantasized
// evaluations — is to impute an outcome for every suggestion still in
// flight, fit the surrogate as if those outcomes were real, and ask the
// unmodified acquisition what it would measure next. PR7's incremental
// refits make the imputed fits cheap: the GP extends cached Cholesky
// factors (rolled back with Fitter.Truncate) and the forest appends
// virtual pair rows to the pairCache slab (rolled back by truncation).
//
// Planning is strictly best-effort and side-effect-free: hooks run on
// the search-loop goroutine while the loop is parked in Measure, emit no
// trace events (the tracer is detached for the duration), never touch
// the search's RNG, and leave every piece of search state bit-identical
// to how they found it. A mispredicted fantasy costs the caller one
// wasted measurement at worst — it can never corrupt the search.

// pendingSet builds the exclusion set of candidate indices that already
// have an in-flight suggestion.
func pendingSet(pending []PendingPoint) map[int]bool {
	excluded := make(map[int]bool, len(pending))
	for _, pp := range pending {
		excluded[pp.Index] = true
	}
	return excluded
}

// unmeasuredExcluding returns the candidates still available for a
// fantasy pick: not measured, not quarantined, not already suggested.
func (s *searchState) unmeasuredExcluding(excluded map[int]bool) []int {
	var out []int
	for i, m := range s.measured {
		if !m && !s.quarantined[i] && !excluded[i] {
			out = append(out, i)
		}
	}
	return out
}

// planFromDesign predicts the search's next picks while it is still
// working through the initial design: the unconsumed design entries, in
// design order. (Design failures trigger max-min replacements the
// planner cannot foresee; a mispredicted entry is just speculation
// waste.)
func (s *searchState) planFromDesign(excluded map[int]bool, extra int) []int {
	var picks []int
	for _, idx := range s.designPlan {
		if extra <= 0 {
			break
		}
		if s.measured[idx] || s.quarantined[idx] || excluded[idx] {
			continue
		}
		picks = append(picks, idx)
		excluded[idx] = true
		extra--
	}
	return picks
}

// appendFantasyObs appends an imputed observation, updating the
// incumbent and fastest-time trackers exactly as measure() would so a
// fantasized acquisition pass sees a consistent state. Callers must
// save and restore obs length, bestIdx/bestVal, fastestIdx/fastestTime.
func (s *searchState) appendFantasyObs(idx int, val float64, out Outcome) {
	s.obs = append(s.obs, Observation{Index: idx, Value: val, Outcome: out})
	if s.feasible(out) && val < s.bestVal {
		s.bestVal, s.bestIdx = val, idx
	}
	if out.TimeSec < s.fastestTime {
		s.fastestTime, s.fastestIdx = out.TimeSec, idx
	}
}

// naivePlanner is NaiveBO's plan hook: posterior-mean imputation through
// the GP's cached Cholesky factors. The post-design fields are filled in
// by the search loop once the main loop starts; both writer and reader
// run on the loop goroutine.
type naivePlanner struct {
	n  *NaiveBO
	st *searchState

	ready   bool // main loop started; scaled/sc/minObs/maxMeas valid
	scaled  [][]float64
	sc      *gpScratch
	minObs  int
	maxMeas int
}

func (p *naivePlanner) plan(pending []PendingPoint, extra int) []int {
	st := p.st
	excluded := pendingSet(pending)
	if !p.ready {
		return st.planFromDesign(excluded, extra)
	}
	if budget := p.maxMeas - len(st.obs) - len(pending); extra > budget {
		extra = budget
	}
	if extra <= 0 || len(st.obs) == 0 {
		return nil
	}
	return p.n.fantasize(st, p.scaled, p.sc, pending, excluded, extra, p.minObs, p.maxMeas)
}

// fitObjectiveGP fits the objective surrogate on the current (possibly
// fantasy-extended) observation set, mirroring selectCandidate's
// training-set construction.
func (n *NaiveBO) fitObjectiveGP(st *searchState, scaled [][]float64, sc *gpScratch) (*gp.GP, error) {
	xs, ys := sc.xs[:0], sc.ys[:0]
	logSpace := !n.cfg.DisableLogObjective
	for _, obs := range st.obs {
		xs = append(xs, scaled[obs.Index])
		if logSpace {
			ys = append(ys, math.Log(obs.Value))
		} else {
			ys = append(ys, obs.Value)
		}
	}
	sc.xs, sc.ys = xs, ys
	model, _, err := n.fitSurrogate(sc, xs, ys)
	return model, err
}

// imputeNaive predicts candidate idx's objective value (and execution
// time under an SLO) from the current GP posterior mean. ok is false
// when a fit or prediction fails or produces an unusable value —
// planning simply stops there.
func (n *NaiveBO) imputeNaive(st *searchState, scaled [][]float64, sc *gpScratch, idx int) (val float64, out Outcome, ok bool) {
	model, err := n.fitObjectiveGP(st, scaled, sc)
	if err != nil {
		return 0, Outcome{}, false
	}
	mean, _, err := model.Predict(scaled[idx])
	if err != nil {
		return 0, Outcome{}, false
	}
	val = mean
	if !n.cfg.DisableLogObjective {
		val = math.Exp(mean)
	}
	if !(val > 0) || math.IsInf(val, 0) || math.IsNaN(val) {
		return 0, Outcome{}, false
	}
	out = Outcome{TimeSec: 1}
	if n.cfg.MaxTimeSLO > 0 {
		xs, ys := sc.xs[:0], sc.ys[:0]
		for _, obs := range st.obs {
			xs = append(xs, scaled[obs.Index])
			ys = append(ys, math.Log(obs.Outcome.TimeSec))
		}
		sc.xs, sc.ys = xs, ys
		tmodel, _, err := n.fitSurrogate(sc, xs, ys)
		if err != nil {
			return 0, Outcome{}, false
		}
		tmean, _, err := tmodel.Predict(scaled[idx])
		if err != nil {
			return 0, Outcome{}, false
		}
		t := math.Exp(tmean)
		if !(t > 0) || math.IsInf(t, 0) {
			return 0, Outcome{}, false
		}
		out.TimeSec = t
	}
	return val, out, true
}

// fantasize runs NaiveBO's speculative acquisition: absorb every pending
// suggestion as a fantasy observation (the caller's real outcome when it
// already arrived, the posterior mean otherwise), then repeatedly ask
// selectCandidate what it would measure next, fantasizing each pick in
// turn. All state — observations, incumbents, tracer, and the cached GP
// factors — is restored before returning.
func (n *NaiveBO) fantasize(st *searchState, scaled [][]float64, sc *gpScratch, pending []PendingPoint, excluded map[int]bool, extra, minObs, maxMeas int) (picks []int) {
	savedTracer := st.tracer
	st.tracer = nil
	savedObs := len(st.obs)
	savedBestIdx, savedBestVal := st.bestIdx, st.bestVal
	savedFastIdx, savedFastTime := st.fastestIdx, st.fastestTime
	defer func() {
		st.obs = st.obs[:savedObs]
		st.bestIdx, st.bestVal = savedBestIdx, savedBestVal
		st.fastestIdx, st.fastestTime = savedFastIdx, savedFastTime
		st.tracer = savedTracer
		if !n.cfg.DisableIncrementalRefit {
			for _, f := range sc.fitters {
				if f.Len() > savedObs && savedObs > 0 {
					_ = f.Truncate(savedObs)
				}
			}
		}
	}()

	for _, pp := range pending {
		if pp.Observed {
			if pp.Failed {
				continue // will quarantine on delivery; contributes nothing
			}
			val, err := pp.Outcome.Value(st.objective)
			if err != nil || val <= 0 || math.IsNaN(val) || math.IsInf(val, 0) {
				continue
			}
			st.appendFantasyObs(pp.Index, val, pp.Outcome)
			continue
		}
		val, out, ok := n.imputeNaive(st, scaled, sc, pp.Index)
		if !ok {
			return nil
		}
		st.appendFantasyObs(pp.Index, val, out)
	}

	// The fantasy RNG feeds only the entropy-search acquisition's
	// posterior sampling; the real search RNG must never advance during
	// planning, so a throwaway stream is derived from the seed and the
	// planning position (deterministic given the delivered history).
	sideRng := rand.New(rand.NewSource(n.cfg.Seed ^ (0x6c62272e07bb0142 + int64(len(st.obs)))))
	for len(picks) < extra && len(st.obs) < maxMeas {
		remaining := st.unmeasuredExcluding(excluded)
		if len(remaining) == 0 {
			break
		}
		next, _, maxEI, err := n.selectCandidate(st, scaled, remaining, sideRng, sc)
		if err != nil || next < 0 {
			break
		}
		if n.cfg.EIStopFraction > 0 && len(st.obs) >= minObs && st.hasIncumbent() &&
			maxEI < n.cfg.EIStopFraction*st.bestVal {
			break // the real loop would stop here; speculating past it is pure waste
		}
		val, out, ok := n.imputeNaive(st, scaled, sc, next)
		if !ok {
			break
		}
		picks = append(picks, next)
		excluded[next] = true
		st.appendFantasyObs(next, val, out)
	}
	return picks
}

// augPlanner is AugmentedBO's plan hook: virtual (real source -> fantasy
// destination) pair rows appended to the pairCache slab and rolled back
// by truncation. Installed by continueSearch, so it also serves the
// hybrid search's augmented phase.
type augPlanner struct {
	a        *AugmentedBO
	st       *searchState
	treeSeed int64
	minObs   int
	maxMeas  int
}

func (p *augPlanner) plan(pending []PendingPoint, extra int) []int {
	st := p.st
	excluded := pendingSet(pending)
	if len(st.obs) < 2 {
		// The loop is still topping up the design (or replacing design
		// failures via max-min picks the planner cannot predict).
		return st.planFromDesign(excluded, extra)
	}
	if budget := p.maxMeas - len(st.obs) - len(pending); extra > budget {
		extra = budget
	}
	if extra <= 0 {
		return nil
	}
	return p.a.fantasize(st, pending, excluded, extra, p.treeSeed, p.minObs, p.maxMeas)
}

// fantasize runs AugmentedBO's speculative acquisition. Fantasized
// destinations contribute (real source -> fantasy destination) training
// rows only — a fantasy has no low-level metric vector, so it is never
// a source — and predictions keep averaging over the real sources.
// Fantasy models chain from the cache's previous ensembles through a
// local head that is never written back, so the real search's
// incremental-refit lineage is untouched; the appended slab rows are
// truncated away before returning.
func (a *AugmentedBO) fantasize(st *searchState, pending []PendingPoint, excluded map[int]bool, extra int, treeSeed int64, minObs, maxMeas int) (picks []int) {
	savedTracer := st.tracer
	st.tracer = nil
	cache := a.pairs(st)
	// Append the rows of any real observations the cache has not seen —
	// the identical rows the next real fit would append, so doing it
	// early is invisible to the real path.
	cache.sync(st)
	mark := cache.mark()
	defer func() {
		cache.rollback(mark)
		st.tracer = savedTracer
	}()

	localObj, localTime := cache.prevObj, cache.prevTime
	fantasies := 0
	localBestVal := st.bestVal
	localHasInc := st.hasIncumbent()

	fit := func(target pairTarget, seed int64, withHistory bool, prev *forest.Regressor) (*forest.Regressor, error) {
		xs, ys, units := cache.trainingSet(target, withHistory)
		cfg := a.cfg.Forest
		cfg.Seed = seed
		if cfg.SampleRate == 0 {
			cfg.SampleRate = defaultPairSampleRate
		}
		if a.cfg.DisableIncrementalRefit {
			prev = nil
		}
		model, _, err := forest.Refit(prev, cfg, xs, ys, units)
		return model, err
	}
	predict := func(model *forest.Regressor, remaining []int) ([]float64, error) {
		rows := cache.predictionRows(st, remaining)
		var err error
		cache.rawPreds, err = model.PredictBatch(rows, cache.rawPreds)
		if err != nil {
			return nil, err
		}
		cache.objMeans = reduceMeans(cache.objMeans, cache.rawPreds, len(remaining), len(st.obs))
		return cache.objMeans, nil
	}
	predictTimes := func(model *forest.Regressor, remaining []int) ([]float64, error) {
		rows := cache.predictionRows(st, remaining)
		var err error
		cache.rawPreds, err = model.PredictBatch(rows, cache.rawPreds)
		if err != nil {
			return nil, err
		}
		cache.timeMeans = reduceMeans(cache.timeMeans, cache.rawPreds, len(remaining), len(st.obs))
		return cache.timeMeans, nil
	}
	addFantasy := func(idx int, val, timeSec float64) {
		dst := Observation{Index: idx, Value: val, Outcome: Outcome{TimeSec: timeSec}}
		dstObs := len(st.obs) + fantasies
		for j := range st.obs {
			cache.appendObsPair(st, &st.obs[j], &dst, j, dstObs)
		}
		fantasies++
		feasible := st.sloTime <= 0 || timeSec <= st.sloTime
		if feasible && val < localBestVal {
			localBestVal = val
			localHasInc = true
		}
	}
	// impute predicts one candidate's objective (and time under an SLO)
	// from models fitted on the current real+fantasy training rows.
	impute := func(idx int) (val, timeSec float64, ok bool) {
		model, err := fit(pairTargetObjective, treeSeed, true, localObj)
		if err != nil {
			return 0, 0, false
		}
		localObj = model
		preds, err := predict(model, []int{idx})
		if err != nil || !(preds[0] > 0) || math.IsInf(preds[0], 0) {
			return 0, 0, false
		}
		val, timeSec = preds[0], 1.0
		if a.cfg.MaxTimeSLO > 0 {
			tm, err := fit(pairTargetTime, treeSeed+1, false, localTime)
			if err != nil {
				return 0, 0, false
			}
			localTime = tm
			times, err := predictTimes(tm, []int{idx})
			if err != nil || !(times[0] > 0) || math.IsInf(times[0], 0) {
				return 0, 0, false
			}
			timeSec = times[0]
		}
		return val, timeSec, true
	}

	for _, pp := range pending {
		if pp.Observed {
			if pp.Failed {
				continue
			}
			val, err := pp.Outcome.Value(st.objective)
			if err != nil || val <= 0 || math.IsNaN(val) || math.IsInf(val, 0) {
				continue
			}
			addFantasy(pp.Index, val, pp.Outcome.TimeSec)
			continue
		}
		val, timeSec, ok := impute(pp.Index)
		if !ok {
			return nil
		}
		addFantasy(pp.Index, val, timeSec)
	}

	for len(picks) < extra && len(st.obs)+fantasies < maxMeas {
		remaining := st.unmeasuredExcluding(excluded)
		if len(remaining) == 0 {
			break
		}
		model, err := fit(pairTargetObjective, treeSeed, true, localObj)
		if err != nil {
			break
		}
		localObj = model
		var predTimes []float64
		if a.cfg.MaxTimeSLO > 0 {
			tm, terr := fit(pairTargetTime, treeSeed+1, false, localTime)
			if terr != nil {
				break
			}
			localTime = tm
			// Predict times first: predict() reuses rawPreds, so the
			// objective pass must come second... and timeMeans must be
			// copied out before objMeans overwrites rawPreds.
			predTimes, terr = predictTimes(tm, remaining)
			if terr != nil {
				break
			}
		}
		preds, err := predict(model, remaining)
		if err != nil {
			break
		}
		// Mirror selectByDelta: smallest predicted objective among
		// candidates predicted feasible, else the predicted-fastest.
		next, predicted := -1, math.Inf(1)
		fallback, fallbackTime, fallbackPred := -1, math.Inf(1), math.Inf(1)
		for i, idx := range remaining {
			pred := preds[i]
			if predTimes != nil {
				if predTimes[i] < fallbackTime {
					fallbackTime, fallback, fallbackPred = predTimes[i], idx, pred
				}
				if predTimes[i] > a.cfg.MaxTimeSLO {
					continue
				}
			}
			if pred < predicted {
				predicted, next = pred, idx
			}
		}
		nextTime := 1.0
		if next == -1 {
			next, predicted, nextTime = fallback, fallbackPred, fallbackTime
		} else if predTimes != nil {
			for i, idx := range remaining {
				if idx == next {
					nextTime = predTimes[i]
					break
				}
			}
		}
		if next < 0 || !(predicted > 0) || math.IsInf(predicted, 0) {
			break
		}
		if a.cfg.DeltaThreshold > 0 && len(st.obs)+fantasies >= minObs && localHasInc &&
			predicted > a.cfg.DeltaThreshold*localBestVal {
			break // the real loop would stop here
		}
		picks = append(picks, next)
		excluded[next] = true
		addFantasy(next, predicted, nextTime)
	}
	return picks
}

// randomPlanner is RandomSearch's plan hook: the search order is a fixed
// permutation, so planning is just reading ahead in it.
type randomPlanner struct {
	st      *searchState
	perm    []int
	maxMeas int
}

func (p *randomPlanner) plan(pending []PendingPoint, extra int) []int {
	excluded := pendingSet(pending)
	if budget := p.maxMeas - len(p.st.obs) - len(pending); extra > budget {
		extra = budget
	}
	var picks []int
	for _, idx := range p.perm {
		if extra <= 0 {
			break
		}
		if p.st.measured[idx] || p.st.quarantined[idx] || excluded[idx] {
			continue
		}
		picks = append(picks, idx)
		excluded[idx] = true
		extra--
	}
	return picks
}
