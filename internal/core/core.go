// Package core implements the paper's contribution: sequential model-based
// optimization (SMBO) over a finite VM catalog, in three flavors —
//
//   - NaiveBO: CherryPick-style Bayesian optimization with a Gaussian-
//     process surrogate and Expected Improvement (Section III);
//   - AugmentedBO: Arrow's low-level augmented Bayesian optimization with
//     an Extra-Trees surrogate trained on (source VM, source low-level
//     metrics, destination VM) pairs and a Prediction-Delta acquisition
//     and stopping rule (Section IV);
//   - HybridBO: Naive BO for the first few measurements, Augmented BO
//     afterwards, curing Augmented BO's slow start (Section V-B).
//
// A RandomSearch baseline is included for calibration. All optimizers
// minimize: smaller objective values are better.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/lowlevel"
	"repro/internal/telemetry"
)

// Objective selects what the search minimizes.
type Objective int

// The paper's three optimization objectives.
const (
	MinimizeTime Objective = iota + 1
	MinimizeCost
	MinimizeTimeCostProduct
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MinimizeTime:
		return "time"
	case MinimizeCost:
		return "cost"
	case MinimizeTimeCostProduct:
		return "time-cost-product"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// ParseObjective maps CLI names to an Objective.
func ParseObjective(name string) (Objective, error) {
	switch name {
	case "time":
		return MinimizeTime, nil
	case "cost":
		return MinimizeCost, nil
	case "product", "time-cost-product", "timecost":
		return MinimizeTimeCostProduct, nil
	default:
		return 0, fmt.Errorf("core: unknown objective %q", name)
	}
}

// Outcome is what one measurement of a candidate yields: the raw
// performance plus the low-level metric vector a sysstat daemon would have
// collected during the run.
type Outcome struct {
	TimeSec float64
	CostUSD float64
	Metrics lowlevel.Vector
}

// Value projects the outcome onto an objective.
func (out Outcome) Value(o Objective) (float64, error) {
	switch o {
	case MinimizeTime:
		return out.TimeSec, nil
	case MinimizeCost:
		return out.CostUSD, nil
	case MinimizeTimeCostProduct:
		return out.TimeSec * out.CostUSD, nil
	default:
		return 0, fmt.Errorf("core: invalid objective %d", int(o))
	}
}

// Target abstracts the system under optimization: a finite catalog of
// candidates (VM types), each with a published feature encoding, that can
// be measured at a cost. internal/sim provides the simulator-backed
// implementation; anything that can run a workload can implement it.
type Target interface {
	// NumCandidates returns the catalog size.
	NumCandidates() int
	// Features returns the instance-space encoding of candidate i.
	Features(i int) []float64
	// Name returns a human-readable name for candidate i.
	Name(i int) string
	// Measure runs the workload on candidate i and reports the outcome.
	Measure(i int) (Outcome, error)
}

// Observation is one measured candidate.
type Observation struct {
	Index   int     // candidate index in the Target
	Value   float64 // objective value (smaller is better)
	Outcome Outcome
}

// Step records one search iteration for trace analysis.
type Step struct {
	Index      int     // measured candidate
	Value      float64 // its objective value
	BestSoFar  float64 // best objective value after this measurement
	Score      float64 // acquisition score that selected it (0 for initial design)
	FromDesign bool    // true if part of the initial design
}

// FailureRecord documents one candidate the search gave up on: its
// measurement failed (or produced an invalid outcome) and the candidate was
// quarantined so the loop could continue over the rest of the catalog.
type FailureRecord struct {
	Index      int    // candidate index in the Target
	Name       string // candidate name, for reports
	Err        error  // why the measurement was rejected
	FromDesign bool   // true if the failure hit the initial design
}

// Result is a completed search.
type Result struct {
	Method       string
	Objective    Objective
	Observations []Observation
	Steps        []Step
	BestIndex    int
	BestValue    float64
	StoppedEarly bool
	StopReason   string

	// Failures lists every candidate that was quarantined after its
	// measurement failed. A non-empty list does not make the result
	// partial: the search completed over the candidates that survived.
	Failures []FailureRecord

	// Partial is true when the search could not run to its own stopping
	// rule — it was aborted (context canceled, fatal target error) or
	// every candidate failed. The result still carries every completed
	// observation; the accompanying error says why the search ended.
	Partial bool

	// SLOSatisfied is false only when a time SLO was configured and no
	// measured VM met it — BestIndex then points at the fastest VM
	// observed (the closest to feasibility) and BestValue is its
	// objective value.
	SLOSatisfied bool
}

// NumMeasurements returns the search cost.
func (r *Result) NumMeasurements() int { return len(r.Observations) }

// MeasuredAtStep returns the 1-based step at which candidate idx was
// measured, or 0 if it never was.
func (r *Result) MeasuredAtStep(idx int) int {
	for i, obs := range r.Observations {
		if obs.Index == idx {
			return i + 1
		}
	}
	return 0
}

// BestAfter returns the best (smallest) objective value among the first k
// measurements. It errors if k is out of range.
func (r *Result) BestAfter(k int) (float64, error) {
	if k < 1 || k > len(r.Observations) {
		return 0, fmt.Errorf("core: step %d out of [1,%d]", k, len(r.Observations))
	}
	best := math.Inf(1)
	for _, obs := range r.Observations[:k] {
		if obs.Value < best {
			best = obs.Value
		}
	}
	return best, nil
}

// Optimizer is a search method over a Target.
type Optimizer interface {
	// Name identifies the method ("naive-bo", "augmented-bo", ...).
	Name() string
	// Search runs the full optimization loop against the target.
	Search(target Target) (*Result, error)
}

// ErrTargetEmpty reports a target with no candidates.
var ErrTargetEmpty = errors.New("core: target has no candidates")

// ErrBadConfig reports an invalid optimizer configuration.
var ErrBadConfig = errors.New("core: invalid configuration")

// ErrInvalidOutcome reports a measurement whose outcome would poison the
// surrogate models: NaN/Inf/non-positive execution time, negative or
// non-finite cost, or an out-of-range metric vector.
var ErrInvalidOutcome = errors.New("core: invalid measurement outcome")

// ErrAllCandidatesFailed reports a search in which not a single candidate
// could be measured: every one was quarantined.
var ErrAllCandidatesFailed = errors.New("core: every candidate failed to measure")

// fatalError marks a measurement error that must abort the whole search
// instead of quarantining one candidate. Built with Fatal.
type fatalError struct{ err error }

func (e *fatalError) Error() string     { return e.err.Error() }
func (e *fatalError) Unwrap() error     { return e.err }
func (e *fatalError) SearchFatal() bool { return true }

// Fatal marks err as search-fatal: when a Target's Measure returns it, the
// optimizer aborts with a partial result instead of quarantining the
// candidate and continuing. Context cancellation errors are always fatal
// and need no marking. errors.Is/As still see the wrapped error.
func Fatal(err error) error {
	if err == nil {
		return nil
	}
	return &fatalError{err: err}
}

// fatalMeasurement reports whether a measurement error ends the search
// (partial result) rather than quarantining the candidate: context
// cancellation — the caller gave up, retrying other candidates would
// keep burning money — or an explicit Fatal marking.
func fatalMeasurement(err error) bool {
	var f interface{ SearchFatal() bool }
	if errors.As(err, &f) && f.SearchFatal() {
		return true
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ValidateOutcome rejects outcomes that would poison the surrogates. The
// search loop applies it to every measurement before the observation
// reaches a model; corrupted measurements quarantine their candidate.
func ValidateOutcome(out Outcome) error {
	if math.IsNaN(out.TimeSec) || math.IsInf(out.TimeSec, 0) || out.TimeSec <= 0 {
		return fmt.Errorf("%w: execution time %v", ErrInvalidOutcome, out.TimeSec)
	}
	if math.IsNaN(out.CostUSD) || math.IsInf(out.CostUSD, 0) || out.CostUSD < 0 {
		return fmt.Errorf("%w: cost %v", ErrInvalidOutcome, out.CostUSD)
	}
	if err := out.Metrics.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidOutcome, err)
	}
	return nil
}

// searchState carries the bookkeeping shared by every optimizer.
type searchState struct {
	target    Target
	objective Objective

	// sloTime, when positive, constrains the search: only observations
	// with TimeSec <= sloTime may become the incumbent (CherryPick's
	// "minimize cost subject to a performance SLO" formulation).
	sloTime float64

	features    [][]float64 // candidate features, cached
	measured    []bool
	quarantined []bool // candidates masked out after a failed measurement
	failures    []FailureRecord
	obs         []Observation
	steps       []Step

	bestIdx int
	bestVal float64

	// designPlan is the resolved initial design, recorded so batch
	// planning (internal/core/batch.go) can predict the loop's next picks
	// while it is still working through the design.
	designPlan []int

	// pairs is the augmented surrogate's incremental training-set cache,
	// created lazily on the first pairwise fit. It lives on the state (not
	// the optimizer) so a hybrid search hands its naive-phase observations
	// to the augmented phase without a rebuild.
	pairs *pairCache

	// fastestIdx/fastestTime track the minimum observed execution time,
	// the fallback answer when nothing meets the SLO.
	fastestIdx  int
	fastestTime float64

	// tracer receives the search's event stream; nil (the default) keeps
	// every emission site to a single branch, so an untraced search pays
	// nothing. method is stamped on every event.
	tracer telemetry.Tracer
	method string

	// resume is the stepper-owned decision script cursor, discovered
	// from the target when it carries one (see resume.go). Nil for
	// batch searches against plain targets.
	resume *resumeState
}

func newSearchState(target Target, objective Objective) (*searchState, error) {
	n := target.NumCandidates()
	if n == 0 {
		return nil, ErrTargetEmpty
	}
	switch objective {
	case MinimizeTime, MinimizeCost, MinimizeTimeCostProduct:
	default:
		return nil, fmt.Errorf("core: objective %d: %w", int(objective), ErrBadConfig)
	}
	features := make([][]float64, n)
	dims := -1
	for i := 0; i < n; i++ {
		f := target.Features(i)
		if dims == -1 {
			dims = len(f)
		}
		if len(f) != dims || dims == 0 {
			return nil, fmt.Errorf("core: candidate %d has %d features, want %d: %w", i, len(f), dims, ErrBadConfig)
		}
		features[i] = append([]float64(nil), f...)
	}
	st := &searchState{
		target:      target,
		objective:   objective,
		features:    features,
		measured:    make([]bool, n),
		quarantined: make([]bool, n),
		bestIdx:     -1,
		bestVal:     math.Inf(1),
		fastestIdx:  -1,
		fastestTime: math.Inf(1),
	}
	if rc, ok := target.(resumeCarrier); ok {
		st.resume = rc.resumeState()
	}
	return st, nil
}

// setTracer attaches the event sink (nil disables tracing) and the
// method label stamped on every event. Optimizers call it right after
// newSearchState, before the initial design, so design measurements are
// traced too.
func (s *searchState) setTracer(t telemetry.Tracer, method string) {
	s.tracer = t
	s.method = method
}

// emit stamps the method and forwards to the tracer. Callers must guard
// with `s.tracer != nil` so untraced searches pay one branch and zero
// allocations per site.
func (s *searchState) emit(e telemetry.Event) {
	e.Method = s.method
	s.tracer.Emit(e)
}

// emitSearchStart announces the search: catalog size and objective.
func (s *searchState) emitSearchStart() {
	if s.tracer != nil {
		s.emit(telemetry.Event{
			Kind:      telemetry.KindSearchStart,
			Candidate: -1,
			Value:     float64(len(s.features)),
			Detail:    s.objective.String(),
		})
	}
}

// emitFit records one surrogate fit: the model name, its training-set
// size, the elapsed time since t0 (only meaningful when tracing —
// callers take t0 under the same tracer guard), and the refit
// disposition: incremental true when cached model state was reused, with
// reused counting the carried-over components (trees or grid
// factorizations). The disposition rides in Wall because incremental and
// full refits are bit-identical in everything but the work performed.
func (s *searchState) emitFit(model string, rows int, t0 time.Time, incremental bool, reused int) {
	if s.tracer == nil {
		return
	}
	refit := "full"
	if incremental {
		refit = "incremental"
	}
	s.emit(telemetry.Event{
		Kind:      telemetry.KindSurrogateFit,
		Step:      len(s.obs),
		Candidate: -1,
		Value:     float64(rows),
		Detail:    model,
		Wall: &telemetry.Wall{
			DurationNS: time.Since(t0).Nanoseconds(),
			Refit:      refit,
			Reused:     reused,
		},
	})
}

// emitSelected records an acquisition pass's winner. aux carries the
// stopping-rule quantity; non-finite values (the +Inf maxEI of non-EI
// acquisitions) are zeroed to keep traces JSON-encodable.
func (s *searchState) emitSelected(idx int, score, aux float64) {
	if s.tracer == nil || idx < 0 {
		return
	}
	if math.IsInf(aux, 0) || math.IsNaN(aux) {
		aux = 0
	}
	s.emit(telemetry.Event{
		Kind:      telemetry.KindCandidateSelected,
		Step:      len(s.obs),
		Candidate: idx,
		Name:      s.target.Name(idx),
		Value:     score,
		Aux:       aux,
	})
}

// feasible reports whether an outcome satisfies the SLO (trivially true
// without one).
func (s *searchState) feasible(out Outcome) bool {
	return s.sloTime <= 0 || out.TimeSec <= s.sloTime
}

// hasIncumbent reports whether any feasible observation exists yet.
func (s *searchState) hasIncumbent() bool { return s.bestIdx >= 0 }

// quarantine masks idx out of every future candidate set and records why.
func (s *searchState) quarantine(idx int, cause error, fromDesign bool) {
	s.quarantined[idx] = true
	s.failures = append(s.failures, FailureRecord{
		Index:      idx,
		Name:       s.target.Name(idx),
		Err:        cause,
		FromDesign: fromDesign,
	})
	if s.tracer != nil {
		s.emit(telemetry.Event{
			Kind:       telemetry.KindQuarantine,
			Step:       len(s.obs),
			Candidate:  idx,
			Name:       s.target.Name(idx),
			Detail:     cause.Error(),
			FromDesign: fromDesign,
		})
	}
}

// measure runs one measurement, updating observations and the incumbent.
// A failed or invalid measurement quarantines the candidate and returns
// ok=false with a nil error — the search continues over the remaining
// catalog. A non-nil error is fatal (context canceled, target abort,
// internal misuse) and the caller must stop with a partial result.
func (s *searchState) measure(idx int, score float64, fromDesign bool) (ok bool, err error) {
	if s.measured[idx] {
		return false, fmt.Errorf("core: candidate %d (%s) measured twice", idx, s.target.Name(idx))
	}
	if s.quarantined[idx] {
		return false, fmt.Errorf("core: candidate %d (%s) is quarantined", idx, s.target.Name(idx))
	}
	var measureT0 time.Time
	if s.tracer != nil {
		measureT0 = time.Now()
		s.emit(telemetry.Event{
			Kind:       telemetry.KindMeasureStart,
			Step:       len(s.obs),
			Candidate:  idx,
			Name:       s.target.Name(idx),
			FromDesign: fromDesign,
		})
	}
	out, err := s.target.Measure(idx)
	if err != nil {
		wrapped := fmt.Errorf("core: measuring %s: %w", s.target.Name(idx), err)
		if fatalMeasurement(err) {
			return false, wrapped
		}
		s.quarantine(idx, wrapped, fromDesign)
		return false, nil
	}
	if verr := ValidateOutcome(out); verr != nil {
		s.quarantine(idx, fmt.Errorf("core: measurement of %s: %w", s.target.Name(idx), verr), fromDesign)
		return false, nil
	}
	val, err := out.Value(s.objective)
	if err != nil {
		return false, err
	}
	if val <= 0 || math.IsNaN(val) || math.IsInf(val, 0) {
		s.quarantine(idx, fmt.Errorf("core: measurement of %s yielded invalid objective %v: %w",
			s.target.Name(idx), val, ErrInvalidOutcome), fromDesign)
		return false, nil
	}
	s.measured[idx] = true
	s.obs = append(s.obs, Observation{Index: idx, Value: val, Outcome: out})
	if s.feasible(out) && val < s.bestVal {
		s.bestVal = val
		s.bestIdx = idx
	}
	if out.TimeSec < s.fastestTime {
		s.fastestTime = out.TimeSec
		s.fastestIdx = idx
	}
	s.steps = append(s.steps, Step{
		Index:      idx,
		Value:      val,
		BestSoFar:  s.bestVal,
		Score:      score,
		FromDesign: fromDesign,
	})
	if s.tracer != nil {
		incumbent := 0.0 // Aux stays 0 until a feasible incumbent exists
		if s.hasIncumbent() {
			incumbent = s.bestVal
		}
		s.emit(telemetry.Event{
			Kind:       telemetry.KindMeasureDone,
			Step:       len(s.obs),
			Candidate:  idx,
			Name:       s.target.Name(idx),
			Value:      val,
			Aux:        incumbent,
			FromDesign: fromDesign,
			Wall:       &telemetry.Wall{DurationNS: time.Since(measureT0).Nanoseconds()},
		})
	}
	return true, nil
}

// unmeasured returns the indices still available for measurement: not yet
// measured and not quarantined.
func (s *searchState) unmeasured() []int {
	var out []int
	for i, m := range s.measured {
		if !m && !s.quarantined[i] {
			out = append(out, i)
		}
	}
	return out
}

// result finalizes the search.
func (s *searchState) result(method string, stoppedEarly bool, reason string) *Result {
	res := &Result{
		Method:       method,
		Objective:    s.objective,
		Observations: append([]Observation(nil), s.obs...),
		Steps:        append([]Step(nil), s.steps...),
		Failures:     append([]FailureRecord(nil), s.failures...),
		BestIndex:    s.bestIdx,
		BestValue:    s.bestVal,
		StoppedEarly: stoppedEarly,
		StopReason:   reason,
		SLOSatisfied: true,
	}
	if !s.hasIncumbent() {
		// Nothing feasible was measured: either an SLO was set and no VM
		// met it (report the fastest seen), or every measurement failed
		// (report no best at all).
		res.SLOSatisfied = s.sloTime <= 0
		res.BestIndex = s.fastestIdx
		res.BestValue = 0
		for _, obs := range s.obs {
			if obs.Index == s.fastestIdx {
				res.BestValue = obs.Value
			}
		}
	}
	if s.tracer != nil {
		name := ""
		if res.BestIndex >= 0 {
			name = s.target.Name(res.BestIndex)
		}
		s.emit(telemetry.Event{
			Kind:      telemetry.KindSearchEnd,
			Step:      len(s.obs),
			Candidate: res.BestIndex,
			Name:      name,
			Value:     res.BestValue,
			Aux:       float64(len(s.failures)),
			Detail:    reason,
			Stopped:   stoppedEarly,
		})
	}
	return res
}

// finish finalizes a loop that ran out of candidates or budget. When not a
// single candidate could be measured the result is partial and comes with
// ErrAllCandidatesFailed, so callers still see the failure record.
func (s *searchState) finish(method string, stoppedEarly bool, reason string) (*Result, error) {
	if len(s.obs) == 0 && len(s.failures) > 0 {
		res := s.result(method, false, "every candidate failed")
		res.Partial = true
		return res, fmt.Errorf("core: %d candidate(s) quarantined, none measured: %w",
			len(s.failures), ErrAllCandidatesFailed)
	}
	return s.result(method, stoppedEarly, reason), nil
}

// abort finalizes a search stopped by a fatal error: the partial result
// keeps every paid-for observation and the error explains the abort.
func (s *searchState) abort(method string, cause error) (*Result, error) {
	res := s.result(method, false, fmt.Sprintf("aborted: %v", cause))
	res.Partial = true
	return res, fmt.Errorf("core: search aborted after %d measurement(s): %w", len(s.obs), cause)
}
