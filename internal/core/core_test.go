package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/lowlevel"
)

// fakeTarget is a deterministic in-memory target for unit tests. Values
// are objective values directly (time == value, cost == value, so every
// objective agrees).
type fakeTarget struct {
	features [][]float64
	values   []float64
	metrics  []lowlevel.Vector
	measured []int // measurement log
	failAt   int   // candidate index whose measurement errors, -1 for none
}

var _ Target = (*fakeTarget)(nil)

func newFakeTarget(values []float64) *fakeTarget {
	t := &fakeTarget{values: values, failAt: -1}
	for i, v := range values {
		t.features = append(t.features, []float64{float64(i), float64(i % 3)})
		var m lowlevel.Vector
		m[lowlevel.CPUUser] = 50
		m[lowlevel.IOWait] = 10
		m[lowlevel.TaskCount] = 8
		m[lowlevel.MemCommit] = 40 + v // correlate metrics with value
		m[lowlevel.DiskUtil] = 20
		m[lowlevel.DiskAwait] = 6
		t.metrics = append(t.metrics, m)
	}
	return t
}

func (f *fakeTarget) NumCandidates() int       { return len(f.values) }
func (f *fakeTarget) Features(i int) []float64 { return f.features[i] }
func (f *fakeTarget) Name(i int) string        { return fmt.Sprintf("vm-%d", i) }

func (f *fakeTarget) Measure(i int) (Outcome, error) {
	if i == f.failAt {
		return Outcome{}, errors.New("injected measurement failure")
	}
	f.measured = append(f.measured, i)
	return Outcome{TimeSec: f.values[i], CostUSD: f.values[i], Metrics: f.metrics[i]}, nil
}

func TestObjectiveString(t *testing.T) {
	tests := []struct {
		o    Objective
		want string
	}{
		{MinimizeTime, "time"},
		{MinimizeCost, "cost"},
		{MinimizeTimeCostProduct, "time-cost-product"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestParseObjective(t *testing.T) {
	for _, name := range []string{"time", "cost", "product"} {
		if _, err := ParseObjective(name); err != nil {
			t.Errorf("ParseObjective(%q): %v", name, err)
		}
	}
	if _, err := ParseObjective("speed"); err == nil {
		t.Error("unknown objective should fail")
	}
}

func TestOutcomeValue(t *testing.T) {
	out := Outcome{TimeSec: 10, CostUSD: 3}
	if v, _ := out.Value(MinimizeTime); v != 10 {
		t.Errorf("time value = %v", v)
	}
	if v, _ := out.Value(MinimizeCost); v != 3 {
		t.Errorf("cost value = %v", v)
	}
	if v, _ := out.Value(MinimizeTimeCostProduct); v != 30 {
		t.Errorf("product value = %v", v)
	}
	if _, err := out.Value(Objective(0)); err == nil {
		t.Error("invalid objective should fail")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Observations: []Observation{
		{Index: 4, Value: 5},
		{Index: 2, Value: 3},
		{Index: 7, Value: 9},
	}}
	if r.NumMeasurements() != 3 {
		t.Errorf("NumMeasurements = %d", r.NumMeasurements())
	}
	if s := r.MeasuredAtStep(2); s != 2 {
		t.Errorf("MeasuredAtStep(2) = %d", s)
	}
	if s := r.MeasuredAtStep(11); s != 0 {
		t.Errorf("MeasuredAtStep(missing) = %d, want 0", s)
	}
	if b, err := r.BestAfter(1); err != nil || b != 5 {
		t.Errorf("BestAfter(1) = %v, %v", b, err)
	}
	if b, err := r.BestAfter(3); err != nil || b != 3 {
		t.Errorf("BestAfter(3) = %v, %v", b, err)
	}
	if _, err := r.BestAfter(0); err == nil {
		t.Error("BestAfter(0) should fail")
	}
	if _, err := r.BestAfter(4); err == nil {
		t.Error("BestAfter beyond length should fail")
	}
}

// exhaustiveValues is a small catalog where index 5 is optimal.
func exhaustiveValues() []float64 {
	return []float64{9, 7, 8, 6, 10, 1, 5, 4, 12, 3}
}

func allOptimizers(t *testing.T, objective Objective, seed int64, disableStop bool) map[string]Optimizer {
	t.Helper()
	eiStop, delta := 0.0, 0.0
	if disableStop {
		eiStop, delta = -1, -1
	}
	naive, err := NewNaiveBO(NaiveBOConfig{Objective: objective, Seed: seed, EIStopFraction: eiStop})
	if err != nil {
		t.Fatal(err)
	}
	aug, err := NewAugmentedBO(AugmentedBOConfig{Objective: objective, Seed: seed, DeltaThreshold: delta})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := NewHybridBO(HybridBOConfig{
		Naive:     NaiveBOConfig{Objective: objective, Seed: seed},
		Augmented: AugmentedBOConfig{Objective: objective, DeltaThreshold: delta},
	})
	if err != nil {
		t.Fatal(err)
	}
	random, err := NewRandomSearch(RandomSearchConfig{Objective: objective, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Optimizer{
		"naive-bo": naive, "augmented-bo": aug, "hybrid-bo": hybrid, "random-search": random,
	}
}

func TestAllOptimizersExhaustSearchSpaceAndFindOptimum(t *testing.T) {
	for name, opt := range allOptimizers(t, MinimizeTime, 1, true) {
		t.Run(name, func(t *testing.T) {
			target := newFakeTarget(exhaustiveValues())
			res, err := opt.Search(target)
			if err != nil {
				t.Fatal(err)
			}
			if res.NumMeasurements() != target.NumCandidates() {
				t.Errorf("measured %d of %d with stopping disabled", res.NumMeasurements(), target.NumCandidates())
			}
			if res.BestIndex != 5 || res.BestValue != 1 {
				t.Errorf("best = (%d, %v), want (5, 1)", res.BestIndex, res.BestValue)
			}
			if res.Method != opt.Name() {
				t.Errorf("method = %q, want %q", res.Method, opt.Name())
			}
			if res.StoppedEarly {
				t.Error("stopping disabled but StoppedEarly set")
			}
		})
	}
}

func TestNoCandidateMeasuredTwice(t *testing.T) {
	for name, opt := range allOptimizers(t, MinimizeCost, 3, true) {
		t.Run(name, func(t *testing.T) {
			target := newFakeTarget(exhaustiveValues())
			if _, err := opt.Search(target); err != nil {
				t.Fatal(err)
			}
			seen := map[int]bool{}
			for _, idx := range target.measured {
				if seen[idx] {
					t.Fatalf("candidate %d measured twice: %v", idx, target.measured)
				}
				seen[idx] = true
			}
		})
	}
}

func TestSearchDeterministicPerSeed(t *testing.T) {
	for name := range allOptimizers(t, MinimizeTime, 0, true) {
		t.Run(name, func(t *testing.T) {
			run := func() []int {
				opt := allOptimizers(t, MinimizeTime, 42, true)[name]
				target := newFakeTarget(exhaustiveValues())
				if _, err := opt.Search(target); err != nil {
					t.Fatal(err)
				}
				return target.measured
			}
			a, b := run(), run()
			if len(a) != len(b) {
				t.Fatalf("different lengths %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("order differs at %d: %v vs %v", i, a, b)
				}
			}
		})
	}
}

func TestBestSoFarMonotone(t *testing.T) {
	for name, opt := range allOptimizers(t, MinimizeTime, 5, true) {
		t.Run(name, func(t *testing.T) {
			res, err := opt.Search(newFakeTarget(exhaustiveValues()))
			if err != nil {
				t.Fatal(err)
			}
			prev := math.Inf(1)
			for i, s := range res.Steps {
				if s.BestSoFar > prev {
					t.Fatalf("best-so-far increased at step %d", i)
				}
				prev = s.BestSoFar
			}
		})
	}
}

func TestMeasurementFailureQuarantinesCandidate(t *testing.T) {
	for name, opt := range allOptimizers(t, MinimizeTime, 1, true) {
		t.Run(name, func(t *testing.T) {
			target := newFakeTarget(exhaustiveValues())
			target.failAt = 5 // the optimum: every search reaches it eventually
			res, err := opt.Search(target)
			if err != nil {
				t.Fatalf("failure should quarantine, not abort: %v", err)
			}
			if res.Partial {
				t.Error("quarantine alone should not make the result partial")
			}
			if len(res.Failures) != 1 || res.Failures[0].Index != 5 {
				t.Fatalf("failures = %+v, want exactly candidate 5", res.Failures)
			}
			if res.BestIndex == 5 {
				t.Error("quarantined candidate reported as best")
			}
			for _, obs := range res.Observations {
				if obs.Index == 5 {
					t.Error("quarantined candidate appears among observations")
				}
			}
			// With the optimum quarantined, the best must be the runner-up.
			values := exhaustiveValues()
			wantBest, wantVal := -1, math.Inf(1)
			for i, v := range values {
				if i != 5 && v < wantVal {
					wantBest, wantVal = i, v
				}
			}
			if res.NumMeasurements() == len(values)-1 && res.BestIndex != wantBest {
				t.Errorf("best = %d (%.3g), want runner-up %d (%.3g)",
					res.BestIndex, res.BestValue, wantBest, wantVal)
			}
		})
	}
}

func TestEmptyTarget(t *testing.T) {
	for name, opt := range allOptimizers(t, MinimizeTime, 1, true) {
		t.Run(name, func(t *testing.T) {
			if _, err := opt.Search(newFakeTarget(nil)); !errors.Is(err, ErrTargetEmpty) {
				t.Errorf("error = %v, want ErrTargetEmpty", err)
			}
		})
	}
}

func TestInvalidObjectiveRejectedAtSearch(t *testing.T) {
	naive, err := NewNaiveBO(NaiveBOConfig{Objective: Objective(0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := naive.Search(newFakeTarget(exhaustiveValues())); !errors.Is(err, ErrBadConfig) {
		t.Errorf("error = %v, want ErrBadConfig", err)
	}
}

func TestNegativeMeasurementRejected(t *testing.T) {
	target := newFakeTarget([]float64{1, 2, -3, 4, 5})
	opt, err := NewRandomSearch(RandomSearchConfig{Objective: MinimizeTime, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 || res.Failures[0].Index != 2 {
		t.Fatalf("failures = %+v, want the negative-valued candidate quarantined", res.Failures)
	}
	if !errors.Is(res.Failures[0].Err, ErrInvalidOutcome) {
		t.Errorf("failure error = %v, want ErrInvalidOutcome", res.Failures[0].Err)
	}
	if res.NumMeasurements() != 4 {
		t.Errorf("measured %d candidates, want the 4 valid ones", res.NumMeasurements())
	}
}

func TestMaxMeasurementsRespected(t *testing.T) {
	naive, err := NewNaiveBO(NaiveBOConfig{Objective: MinimizeTime, MaxMeasurements: 5, EIStopFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	aug, err := NewAugmentedBO(AugmentedBOConfig{Objective: MinimizeTime, MaxMeasurements: 5, DeltaThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	random, err := NewRandomSearch(RandomSearchConfig{Objective: MinimizeTime, MaxMeasurements: 5})
	if err != nil {
		t.Fatal(err)
	}
	for name, opt := range map[string]Optimizer{"naive": naive, "augmented": aug, "random": random} {
		t.Run(name, func(t *testing.T) {
			res, err := opt.Search(newFakeTarget(exhaustiveValues()))
			if err != nil {
				t.Fatal(err)
			}
			if res.NumMeasurements() != 5 {
				t.Errorf("measured %d, want 5", res.NumMeasurements())
			}
		})
	}
}

func TestInitialDesignRespected(t *testing.T) {
	cfg := DesignConfig{Kind: DesignFixed, Fixed: []int{7, 0, 3}, NumInitial: 3}
	naive, err := NewNaiveBO(NaiveBOConfig{Objective: MinimizeTime, Design: cfg, EIStopFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(exhaustiveValues())
	res, err := naive.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{7, 0, 3} {
		if res.Observations[i].Index != want {
			t.Errorf("design step %d measured %d, want %d", i, res.Observations[i].Index, want)
		}
		if !res.Steps[i].FromDesign {
			t.Errorf("step %d not marked FromDesign", i)
		}
	}
	if res.Steps[3].FromDesign {
		t.Error("post-design step marked FromDesign")
	}
}

func TestDesignKindString(t *testing.T) {
	for _, d := range []DesignKind{DesignQuasiRandom, DesignUniform, DesignFixed} {
		if s := d.String(); s == "" || s[0] == 'D' && s[1] == 'e' && s[2] == 's' && s[3] == 'i' && s[4] == 'g' {
			t.Errorf("DesignKind %d has placeholder name %q", d, s)
		}
	}
}

func TestRaggedFeaturesRejected(t *testing.T) {
	target := newFakeTarget(exhaustiveValues())
	target.features[3] = []float64{1} // break dimensionality
	naive, err := NewNaiveBO(NaiveBOConfig{Objective: MinimizeTime})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := naive.Search(target); !errors.Is(err, ErrBadConfig) {
		t.Errorf("error = %v, want ErrBadConfig", err)
	}
}

func TestSobolDesignKind(t *testing.T) {
	naive, err := NewNaiveBO(NaiveBOConfig{
		Objective:      MinimizeTime,
		Design:         DesignConfig{Kind: DesignSobol, NumInitial: 4},
		EIStopFraction: -1,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(exhaustiveValues())
	res, err := naive.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		if !res.Steps[i].FromDesign {
			t.Errorf("step %d not from design", i)
		}
		if seen[res.Observations[i].Index] {
			t.Errorf("design repeated candidate %d", res.Observations[i].Index)
		}
		seen[res.Observations[i].Index] = true
	}
	if res.BestValue != 1 {
		t.Errorf("best = %v", res.BestValue)
	}
}

func TestSobolDesignVariesWithSeed(t *testing.T) {
	design := func(seed int64) []int {
		naive, err := NewNaiveBO(NaiveBOConfig{
			Objective:      MinimizeTime,
			Design:         DesignConfig{Kind: DesignSobol, NumInitial: 3},
			EIStopFraction: -1,
			Seed:           seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		target := newFakeTarget(exhaustiveValues())
		if _, err := naive.Search(target); err != nil {
			t.Fatal(err)
		}
		return target.measured[:3]
	}
	varies := false
	base := design(0)
	for seed := int64(1); seed < 8 && !varies; seed++ {
		d := design(seed)
		for i := range base {
			if d[i] != base[i] {
				varies = true
			}
		}
	}
	if !varies {
		t.Error("sobol designs identical across 8 seeds")
	}
}

func TestInvalidDesignKind(t *testing.T) {
	naive, err := NewNaiveBO(NaiveBOConfig{
		Objective: MinimizeTime,
		Design:    DesignConfig{Kind: DesignKind(99)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := naive.Search(newFakeTarget(exhaustiveValues())); !errors.Is(err, ErrBadConfig) {
		t.Errorf("error = %v, want ErrBadConfig", err)
	}
}

func TestUniformDesignKind(t *testing.T) {
	naive, err := NewNaiveBO(NaiveBOConfig{
		Objective:      MinimizeTime,
		Design:         DesignConfig{Kind: DesignUniform, NumInitial: 4},
		EIStopFraction: -1,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := naive.Search(newFakeTarget(exhaustiveValues()))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue != 1 {
		t.Errorf("best = %v", res.BestValue)
	}
}
