package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sampling"
	"repro/internal/stats"
)

// DesignKind selects the initial-sampling strategy (Section III-C).
type DesignKind int

// The initial-design strategies.
const (
	// DesignQuasiRandom greedily picks maximally distant VMs — the
	// CherryPick-prescribed quasi-random design.
	DesignQuasiRandom DesignKind = iota + 1
	// DesignUniform picks uniformly at random without replacement.
	DesignUniform
	// DesignFixed uses caller-provided indices (the paper's
	// initial-point-sensitivity experiment).
	DesignFixed
	// DesignSobol snaps points of the Sobol' low-discrepancy sequence
	// (the paper's reference [25]) to the nearest unused candidates; the
	// seed selects the sequence offset.
	DesignSobol
)

// String names the design kind.
func (d DesignKind) String() string {
	switch d {
	case DesignQuasiRandom:
		return "quasi-random"
	case DesignUniform:
		return "uniform"
	case DesignFixed:
		return "fixed"
	case DesignSobol:
		return "sobol"
	default:
		return fmt.Sprintf("DesignKind(%d)", int(d))
	}
}

// DesignConfig configures the initial sample shared by all optimizers.
type DesignConfig struct {
	// Kind selects the strategy. Zero value means DesignQuasiRandom.
	Kind DesignKind
	// NumInitial is the design size. Zero means DefaultNumInitial.
	NumInitial int
	// Fixed holds the indices for DesignFixed.
	Fixed []int
}

// DefaultNumInitial is the initial-sample size used by CherryPick and by
// the paper's experiments.
const DefaultNumInitial = 3

// initialDesign resolves the configured design against the candidate set.
// Quasi-random designs operate on min-max-scaled features so no dimension
// dominates the distance metric.
func initialDesign(cfg DesignConfig, rng *rand.Rand, features [][]float64) ([]int, error) {
	k := cfg.NumInitial
	if k == 0 {
		k = DefaultNumInitial
	}
	kind := cfg.Kind
	if kind == 0 {
		kind = DesignQuasiRandom
	}
	switch kind {
	case DesignQuasiRandom:
		scaled, _, _, err := stats.MinMaxScale(features)
		if err != nil {
			return nil, fmt.Errorf("core: scaling features for design: %w", err)
		}
		idx, err := sampling.MaxMin(rng, scaled, k)
		if err != nil {
			return nil, fmt.Errorf("core: quasi-random design: %w", err)
		}
		return idx, nil
	case DesignUniform:
		idx, err := sampling.Uniform(rng, len(features), k)
		if err != nil {
			return nil, fmt.Errorf("core: uniform design: %w", err)
		}
		return idx, nil
	case DesignFixed:
		idx, err := sampling.Fixed(len(features), cfg.Fixed)
		if err != nil {
			return nil, fmt.Errorf("core: fixed design: %w", err)
		}
		return idx, nil
	case DesignSobol:
		scaled, _, _, err := stats.MinMaxScale(features)
		if err != nil {
			return nil, fmt.Errorf("core: scaling features for design: %w", err)
		}
		// Derive a small sequence offset from the run's RNG so different
		// seeds see different (but individually deterministic) designs.
		skip := rng.Intn(64)
		idx, err := sampling.SobolDesign(scaled, k, skip)
		if err != nil {
			return nil, fmt.Errorf("core: sobol design: %w", err)
		}
		return idx, nil
	default:
		return nil, fmt.Errorf("core: design kind %d: %w", int(kind), ErrBadConfig)
	}
}

// runInitialDesign measures the configured initial design. A design point
// whose measurement fails is quarantined and replaced by the next
// quasi-random pick — the available candidate farthest from everything
// measured so far — so the surrogate still starts from the configured
// number of observations whenever enough candidates survive. Only a fatal
// error (context cancellation, Fatal-marked target error) is returned;
// ordinary failures land in the state's failure record.
func (s *searchState) runInitialDesign(cfg DesignConfig, rng *rand.Rand) error {
	design, err := initialDesign(cfg, rng, s.features)
	if err != nil {
		return err
	}
	s.designPlan = design
	k := len(design)
	successes := 0
	for _, idx := range design {
		ok, err := s.measure(idx, 0, true)
		if err != nil {
			return err
		}
		if ok {
			successes++
		}
	}
	for successes < k {
		idx := s.designReplacement(rng)
		if idx < 0 {
			return nil // catalog exhausted; the caller's loop finishes up
		}
		ok, err := s.measure(idx, 0, true)
		if err != nil {
			return err
		}
		if ok {
			successes++
		}
	}
	return nil
}

// designReplacement picks the next quasi-random design point among the
// available candidates: the one maximizing the minimum distance (over
// min-max-scaled features) to everything measured so far, i.e. one more
// greedy max-min step. With nothing measured yet it falls back to a random
// available candidate. Returns -1 when no candidates remain.
func (s *searchState) designReplacement(rng *rand.Rand) int {
	avail := s.unmeasured()
	if len(avail) == 0 {
		return -1
	}
	scaled, _, _, err := stats.MinMaxScale(s.features)
	if err != nil || len(s.obs) == 0 {
		return avail[rng.Intn(len(avail))]
	}
	best, bestDist := -1, math.Inf(-1)
	for _, i := range avail {
		nearest := math.Inf(1)
		for _, obs := range s.obs {
			if d := euclidean(scaled[i], scaled[obs.Index]); d < nearest {
				nearest = d
			}
		}
		if nearest > bestDist {
			best, bestDist = i, nearest
		}
	}
	return best
}

// euclidean is the distance metric shared with the max-min design.
func euclidean(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
