package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/acquisition"
	"repro/internal/lowlevel"
)

func TestNaiveBOAcquisitionVariants(t *testing.T) {
	for _, acq := range []acquisition.Kind{
		acquisition.ExpectedImprovement,
		acquisition.ProbabilityOfImprovement,
		acquisition.UpperConfidenceBound,
		acquisition.EntropySearch,
	} {
		t.Run(acq.String(), func(t *testing.T) {
			naive, err := NewNaiveBO(NaiveBOConfig{
				Objective:      MinimizeTime,
				Acquisition:    acq,
				EIStopFraction: -1,
				Seed:           4,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := naive.Search(newFakeTarget(exhaustiveValues()))
			if err != nil {
				t.Fatal(err)
			}
			if res.BestValue != 1 {
				t.Errorf("best = %v, want 1", res.BestValue)
			}
		})
	}
}

func TestNaiveBORejectsPredictionDeltaAcquisition(t *testing.T) {
	_, err := NewNaiveBO(NaiveBOConfig{
		Objective:   MinimizeTime,
		Acquisition: acquisition.PredictionDelta,
	})
	if !errors.Is(err, ErrBadConfig) {
		t.Errorf("error = %v, want ErrBadConfig", err)
	}
}

func TestNaiveBORejectsNegativeUCBBeta(t *testing.T) {
	_, err := NewNaiveBO(NaiveBOConfig{
		Objective: MinimizeTime,
		UCBBeta:   -1,
	})
	if !errors.Is(err, ErrBadConfig) {
		t.Errorf("error = %v, want ErrBadConfig", err)
	}
}

func TestNaiveBONonEIAcquisitionNeverStopsEarly(t *testing.T) {
	naive, err := NewNaiveBO(NaiveBOConfig{
		Objective:      MinimizeTime,
		Acquisition:    acquisition.UpperConfidenceBound,
		EIStopFraction: 0.10, // would stop EI quickly on a flat landscape
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	flat := newFakeTarget([]float64{5, 5, 5, 5, 5, 5})
	res, err := naive.Search(flat)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoppedEarly {
		t.Error("UCB acquisition must not trigger the EI stopping rule")
	}
	if res.NumMeasurements() != 6 {
		t.Errorf("measured %d of 6", res.NumMeasurements())
	}
}

func TestNaiveBOAutoKernel(t *testing.T) {
	naive, err := NewNaiveBO(NaiveBOConfig{
		Objective:      MinimizeTime,
		AutoKernel:     true,
		EIStopFraction: -1,
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := naive.Search(newFakeTarget(exhaustiveValues()))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue != 1 {
		t.Errorf("best = %v", res.BestValue)
	}
}

func TestAugmentedBOAblationRuns(t *testing.T) {
	aug, err := NewAugmentedBO(AugmentedBOConfig{
		Objective:       MinimizeTime,
		DeltaThreshold:  -1,
		DisableLowLevel: true,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := aug.Search(newFakeTarget(exhaustiveValues()))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue != 1 {
		t.Errorf("best = %v", res.BestValue)
	}
}

// TestAblationLosesLowLevelSignal complements
// TestAugmentedBOExploitsLowLevelSignal: with the metrics zeroed, the
// surrogate can no longer see the cliff flag, so its post-design picks
// must be right less often than the full model's.
func TestAblationLosesLowLevelSignal(t *testing.T) {
	goodPicks := func(disable bool) int {
		good := 0
		for seed := int64(0); seed < 20; seed++ {
			target := steppedTarget()
			aug, err := NewAugmentedBO(AugmentedBOConfig{
				Objective:       MinimizeTime,
				DeltaThreshold:  -1,
				DisableLowLevel: disable,
				Seed:            seed,
				Design:          DesignConfig{Kind: DesignFixed, Fixed: []int{0, 5, 2}, NumInitial: 3},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := aug.Search(target)
			if err != nil {
				t.Fatal(err)
			}
			if res.Observations[3].Value < 10 {
				good++
			}
		}
		return good
	}
	full := goodPicks(false)
	ablated := goodPicks(true)
	if ablated > full {
		t.Errorf("ablated model picked good VMs more often (%d) than the full model (%d)", ablated, full)
	}
}

func TestWarmStartValidation(t *testing.T) {
	valid := PriorObservation{
		Features: []float64{1, 2},
		Value:    3,
	}
	tests := []struct {
		name  string
		prior PriorObservation
	}{
		{"no features", PriorObservation{Value: 1}},
		{"zero value", PriorObservation{Features: []float64{1}, Value: 0}},
		{"negative value", PriorObservation{Features: []float64{1}, Value: -2}},
		{"bad metrics", func() PriorObservation {
			p := valid
			p.Metrics[lowlevel.CPUUser] = -4
			return p
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewAugmentedBO(AugmentedBOConfig{
				Objective: MinimizeTime,
				WarmStart: []PriorObservation{tt.prior},
			})
			if !errors.Is(err, ErrBadConfig) && err == nil {
				t.Errorf("want error, got %v", err)
			}
		})
	}
	if _, err := NewAugmentedBO(AugmentedBOConfig{
		Objective: MinimizeTime,
		WarmStart: []PriorObservation{valid},
	}); err != nil {
		t.Errorf("valid warm start rejected: %v", err)
	}
}

// TestWarmStartSteersEarlyPicks: history from an identical workload lets
// the surrogate route around the bad cluster after seeing only the
// two-point minimum of current observations.
func TestWarmStartSteersEarlyPicks(t *testing.T) {
	// Build full history from a run of the same stepped landscape.
	history := steppedTarget()
	var priors []PriorObservation
	for i := 0; i < history.NumCandidates(); i++ {
		out, err := history.Measure(i)
		if err != nil {
			t.Fatal(err)
		}
		priors = append(priors, PriorObservation{
			Features: history.Features(i),
			Metrics:  out.Metrics,
			Value:    out.TimeSec,
		})
	}
	goodPicks := func(warm []PriorObservation) int {
		good := 0
		for seed := int64(0); seed < 20; seed++ {
			target := steppedTarget()
			aug, err := NewAugmentedBO(AugmentedBOConfig{
				Objective:      MinimizeTime,
				DeltaThreshold: -1,
				WarmStart:      warm,
				Seed:           seed,
				// Seed only with one good and one bad VM: without history
				// the pairwise model has just 2 rows to learn from.
				Design: DesignConfig{Kind: DesignFixed, Fixed: []int{0, 5}, NumInitial: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := aug.Search(target)
			if err != nil {
				t.Fatal(err)
			}
			if res.Observations[2].Value < 10 {
				good++
			}
		}
		return good
	}
	warm := goodPicks(priors)
	cold := goodPicks(nil)
	if warm < cold {
		t.Errorf("warm start (%d/20 good picks) should not lose to cold start (%d/20)", warm, cold)
	}
	if warm < 15 {
		t.Errorf("warm start picked good VMs only %d/20 times despite full history", warm)
	}
}

func TestExplainSurrogate(t *testing.T) {
	target := steppedTarget()
	aug, err := NewAugmentedBO(AugmentedBOConfig{
		Objective:      MinimizeTime,
		DeltaThreshold: -1,
		Seed:           6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := aug.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	imps, err := aug.ExplainSurrogate(steppedTarget(), res)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := 2 + int(lowlevel.NumMetrics) + 2 // 2 features each side
	if len(imps) != wantLen {
		t.Fatalf("%d importances, want %d", len(imps), wantLen)
	}
	total := 0.0
	hasMetricName := false
	for _, imp := range imps {
		if imp.Fraction < 0 || imp.Fraction > 1 {
			t.Errorf("%s: fraction %v", imp.Name, imp.Fraction)
		}
		total += imp.Fraction
		if strings.Contains(imp.Name, "%commit") {
			hasMetricName = true
		}
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("importances sum to %v", total)
	}
	if !hasMetricName {
		t.Error("metric columns missing from explanation")
	}
}

func TestExplainSurrogateBadResult(t *testing.T) {
	aug, err := NewAugmentedBO(AugmentedBOConfig{Objective: MinimizeTime})
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{Objective: MinimizeTime, Observations: []Observation{{Index: 99, Value: 1}}}
	if _, err := aug.ExplainSurrogate(steppedTarget(), res); !errors.Is(err, ErrBadConfig) {
		t.Errorf("error = %v, want ErrBadConfig", err)
	}
}
