package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/lowlevel"
)

// failingTarget wraps fakeTarget with richer fault injection than failAt:
// a set of always-failing candidates and an optional fatal error fired
// after a fixed number of successful measurements.
type failingTarget struct {
	*fakeTarget
	failSet    map[int]bool
	fatalAfter int // fire fatalErr once this many measurements succeeded; 0 = never
	fatalErr   error
}

func newFailingTarget(values []float64, fail ...int) *failingTarget {
	t := &failingTarget{fakeTarget: newFakeTarget(values), failSet: map[int]bool{}}
	for _, idx := range fail {
		t.failSet[idx] = true
	}
	return t
}

func (f *failingTarget) Measure(i int) (Outcome, error) {
	if f.fatalAfter > 0 && len(f.measured) >= f.fatalAfter {
		return Outcome{}, f.fatalErr
	}
	if f.failSet[i] {
		return Outcome{}, fmt.Errorf("candidate %d is down", i)
	}
	return f.fakeTarget.Measure(i)
}

// designValues is a 12-candidate catalog with a clear optimum at index 7.
func designValues() []float64 {
	return []float64{9, 8, 7, 6, 5, 4, 3, 1, 3.5, 4.5, 5.5, 6.5}
}

func TestInitialDesignFailureIsReplaced(t *testing.T) {
	for name, opt := range allOptimizers(t, MinimizeTime, 3, true) {
		if name == "random-search" {
			continue // random search has no initial design
		}
		t.Run(name, func(t *testing.T) {
			// Find which candidates the fault-free design measures, then
			// fail the first of them.
			probe := newFailingTarget(designValues())
			res, err := opt.Search(probe)
			if err != nil {
				t.Fatal(err)
			}
			var designIdx []int
			for _, step := range res.Steps {
				if step.FromDesign {
					designIdx = append(designIdx, step.Index)
				}
			}
			if len(designIdx) == 0 {
				t.Fatal("no design steps recorded")
			}
			failed := designIdx[0]

			target := newFailingTarget(designValues(), failed)
			res, err = opt.Search(target)
			if err != nil {
				t.Fatal(err)
			}
			design := 0
			for _, step := range res.Steps {
				if step.FromDesign {
					design++
				}
			}
			if design < len(designIdx) {
				t.Errorf("design shrank to %d points after a failure, want >= %d (replacement)", design, len(designIdx))
			}
			found := false
			for _, f := range res.Failures {
				if f.Index == failed {
					found = true
					if !f.FromDesign {
						t.Error("design failure not flagged FromDesign")
					}
				}
			}
			if !found {
				t.Errorf("failures = %+v, want candidate %d recorded", res.Failures, failed)
			}
		})
	}
}

func TestAllCandidatesQuarantined(t *testing.T) {
	values := designValues()
	all := make([]int, len(values))
	for i := range all {
		all[i] = i
	}
	for name, opt := range allOptimizers(t, MinimizeTime, 3, true) {
		t.Run(name, func(t *testing.T) {
			target := newFailingTarget(values, all...)
			res, err := opt.Search(target)
			if !errors.Is(err, ErrAllCandidatesFailed) {
				t.Fatalf("error = %v, want ErrAllCandidatesFailed", err)
			}
			if res == nil {
				t.Fatal("result must not be nil: the failure record is in it")
			}
			if !res.Partial {
				t.Error("result should be partial")
			}
			if res.NumMeasurements() != 0 {
				t.Errorf("%d observations from an all-failing target", res.NumMeasurements())
			}
			if len(res.Failures) == 0 {
				t.Error("no failures recorded")
			}
			if res.BestIndex != -1 {
				t.Errorf("BestIndex = %d, want -1", res.BestIndex)
			}
		})
	}
}

func TestFatalErrorReturnsPartialResult(t *testing.T) {
	for name, opt := range allOptimizers(t, MinimizeTime, 3, true) {
		t.Run(name, func(t *testing.T) {
			target := newFailingTarget(designValues())
			target.fatalAfter = 4
			target.fatalErr = context.Canceled
			res, err := opt.Search(target)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error = %v, want context.Canceled", err)
			}
			if res == nil {
				t.Fatal("fatal abort must still return the partial result")
			}
			if !res.Partial {
				t.Error("aborted result should be partial")
			}
			if res.NumMeasurements() != 4 {
				t.Errorf("partial result carries %d observations, want the 4 completed", res.NumMeasurements())
			}
			if res.BestIndex < 0 {
				t.Error("partial result should still report the best-so-far")
			}
		})
	}
}

func TestFatalMarkedErrorAborts(t *testing.T) {
	sentinel := errors.New("catalog revoked")
	target := newFailingTarget(designValues())
	target.fatalAfter = 2
	target.fatalErr = Fatal(sentinel)
	opt, err := NewRandomSearch(RandomSearchConfig{Objective: MinimizeTime, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(target)
	if !errors.Is(err, sentinel) {
		t.Fatalf("error = %v, want the Fatal-marked sentinel", err)
	}
	if res == nil || !res.Partial || res.NumMeasurements() != 2 {
		t.Fatalf("partial result = %+v, want 2 observations", res)
	}
}

func TestIncumbentBestFailureDoesNotAbort(t *testing.T) {
	// The optimum (index 7) permanently fails. Every method must finish
	// and settle on the true runner-up without ever aborting.
	values := designValues()
	runnerUp, runnerVal := -1, values[7]+1000
	for i, v := range values {
		if i != 7 && v < runnerVal {
			runnerUp, runnerVal = i, v
		}
	}
	for name, opt := range allOptimizers(t, MinimizeTime, 5, true) {
		t.Run(name, func(t *testing.T) {
			target := newFailingTarget(values, 7)
			res, err := opt.Search(target)
			if err != nil {
				t.Fatal(err)
			}
			if res.NumMeasurements() != len(values)-1 {
				t.Fatalf("measured %d, want %d (everything but the failed optimum)",
					res.NumMeasurements(), len(values)-1)
			}
			if res.BestIndex != runnerUp {
				t.Errorf("best = %d, want runner-up %d", res.BestIndex, runnerUp)
			}
		})
	}
}

func TestCorruptedOutcomeQuarantined(t *testing.T) {
	// Candidate 2 reports a NaN metric: the validation gate must
	// quarantine it before it reaches a surrogate.
	target := newFakeTarget(designValues())
	var bad lowlevel.Vector
	bad[lowlevel.CPUUser] = math.NaN()
	target.metrics[2] = bad
	opt, err := NewRandomSearch(RandomSearchConfig{Objective: MinimizeTime, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 || res.Failures[0].Index != 2 {
		t.Fatalf("failures = %+v, want candidate 2", res.Failures)
	}
	if !errors.Is(res.Failures[0].Err, ErrInvalidOutcome) {
		t.Errorf("failure error = %v, want ErrInvalidOutcome", res.Failures[0].Err)
	}
}

func TestValidateOutcome(t *testing.T) {
	good := Outcome{TimeSec: 10, CostUSD: 0.5}
	if err := ValidateOutcome(good); err != nil {
		t.Fatalf("valid outcome rejected: %v", err)
	}
	cases := []Outcome{
		{TimeSec: math.NaN(), CostUSD: 1},
		{TimeSec: math.Inf(1), CostUSD: 1},
		{TimeSec: -3, CostUSD: 1},
		{TimeSec: 0, CostUSD: 1},
		{TimeSec: 10, CostUSD: math.NaN()},
		{TimeSec: 10, CostUSD: -1},
	}
	for i, out := range cases {
		if err := ValidateOutcome(out); !errors.Is(err, ErrInvalidOutcome) {
			t.Errorf("case %d: error = %v, want ErrInvalidOutcome", i, err)
		}
	}
	var badMetrics lowlevel.Vector
	badMetrics[lowlevel.DiskUtil] = 1e6 // utilization over 100%
	if err := ValidateOutcome(Outcome{TimeSec: 10, CostUSD: 1, Metrics: badMetrics}); !errors.Is(err, ErrInvalidOutcome) {
		t.Errorf("bad metrics: error = %v, want ErrInvalidOutcome", err)
	}
}
