package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/acquisition"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// HybridBOConfig configures the combination method of Section V-B: Naive
// BO picks the first measurements (it has no slow start), then Augmented
// BO takes over with every observation collected so far.
type HybridBOConfig struct {
	// Naive configures the opening phase. Its stopping rule is ignored —
	// the handover point is SwitchAfter.
	Naive NaiveBOConfig
	// Augmented configures the closing phase (and the overall stopping
	// rule).
	Augmented AugmentedBOConfig
	// SwitchAfter is the number of measurements (including the initial
	// design) after which Augmented BO takes over. Zero means
	// DefaultSwitchAfter.
	SwitchAfter int
	// Tracer receives the search's event stream (see internal/telemetry),
	// covering both phases; phase Tracer fields are ignored. Nil disables
	// tracing at zero cost.
	Tracer telemetry.Tracer
}

// DefaultSwitchAfter hands over after the initial design plus one EI-guided
// measurement — the region where Figure 9 shows Naive BO ahead.
const DefaultSwitchAfter = 4

// HybridBO combines Naive BO's strong start with Augmented BO's strong
// finish; Figure 9 shows it dominating Naive BO everywhere.
type HybridBO struct {
	cfg       HybridBOConfig
	naive     *NaiveBO
	augmented *AugmentedBO
}

// Compile-time interface check.
var _ Optimizer = (*HybridBO)(nil)

// NewHybridBO validates the configuration and builds the optimizer.
func NewHybridBO(cfg HybridBOConfig) (*HybridBO, error) {
	if cfg.SwitchAfter == 0 {
		cfg.SwitchAfter = DefaultSwitchAfter
	}
	if cfg.SwitchAfter < 2 {
		return nil, fmt.Errorf("core: switch-after %d leaves the pairwise surrogate without data: %w", cfg.SwitchAfter, ErrBadConfig)
	}
	if cfg.Naive.Objective != cfg.Augmented.Objective {
		return nil, fmt.Errorf("core: phases optimize different objectives (%v vs %v): %w",
			cfg.Naive.Objective, cfg.Augmented.Objective, ErrBadConfig)
	}
	if cfg.Naive.MaxTimeSLO != cfg.Augmented.MaxTimeSLO {
		return nil, fmt.Errorf("core: phases disagree on the time SLO (%v vs %v): %w",
			cfg.Naive.MaxTimeSLO, cfg.Augmented.MaxTimeSLO, ErrBadConfig)
	}
	naive, err := NewNaiveBO(cfg.Naive)
	if err != nil {
		return nil, err
	}
	augmented, err := NewAugmentedBO(cfg.Augmented)
	if err != nil {
		return nil, err
	}
	return &HybridBO{cfg: cfg, naive: naive, augmented: augmented}, nil
}

// Name implements Optimizer.
func (h *HybridBO) Name() string { return "hybrid-bo" }

// Search implements Optimizer.
func (h *HybridBO) Search(target Target) (*Result, error) {
	st, err := newSearchState(target, h.cfg.Naive.Objective)
	if err != nil {
		return nil, err
	}
	st.sloTime = h.cfg.Naive.MaxTimeSLO
	st.setTracer(h.cfg.Tracer, h.Name())
	st.emitSearchStart()
	rng := rand.New(rand.NewSource(h.cfg.Naive.Seed))
	if h.naive.cfg.Acquisition == acquisition.EntropySearch {
		// Same constraint as NaiveBO.Search: entropy search consumes
		// the main RNG during selection, so scripted replay is off.
		st.voidResumeDecisions()
	}

	// Batch planning: the naive planner covers the design and the opening
	// phase (capped at the handover point, where its predictions would
	// stop matching the loop); continueSearch installs the augmented
	// planner for phase 2.
	var planner *naivePlanner
	if ph, ok := target.(PlanHookSetter); ok {
		planner = &naivePlanner{n: h.naive, st: st}
		ph.SetPlanHook(planner.plan)
	}

	if err := st.runInitialDesign(h.cfg.Naive.Design, rng); err != nil {
		return st.abort(h.Name(), err)
	}

	// Phase 1: EI-guided measurements up to the handover point.
	scaledAll, err := scaleFeatures(st.features)
	if err != nil {
		return st.abort(h.Name(), err)
	}
	switchAfter := h.cfg.SwitchAfter
	if switchAfter > target.NumCandidates() {
		switchAfter = target.NumCandidates()
	}
	scratch := &gpScratch{}
	if planner != nil {
		planner.scaled, planner.sc = scaledAll, scratch
		// The opening phase has no stopping rule (minObs never reached)
		// and plans only up to the handover point.
		planner.minObs, planner.maxMeas = math.MaxInt, switchAfter
		planner.ready = true
	}
	for len(st.obs) < switchAfter {
		remaining := st.unmeasured()
		if len(remaining) == 0 {
			break
		}
		var next int
		var score, maxEI float64
		if d, ok := st.scriptedDecision(); ok {
			// Resumed replay: restore the recorded opening-phase pick.
			next, score, maxEI = d.Index, d.Score, d.aux()
		} else {
			var err error
			next, score, maxEI, err = h.naive.selectCandidate(st, scaledAll, remaining, rng, scratch)
			if err != nil {
				return st.abort(h.Name(), err)
			}
			st.recordDecision(next, score, maxEI)
		}
		st.emitSelected(next, score, maxEI)
		if _, err := st.measure(next, score, false); err != nil {
			return st.abort(h.Name(), err)
		}
	}

	// Phase 2: Augmented BO finishes the search with the full history. A
	// partial result surfacing from the augmented phase is still a hybrid
	// result, so the method is renamed in every case.
	if st.tracer != nil {
		st.emit(telemetry.Event{
			Kind:      telemetry.KindPhase,
			Step:      len(st.obs),
			Candidate: -1,
			Detail:    "augmented",
		})
	}
	res, err := h.augmented.continueSearch(st, len(st.obs)+1, rng)
	if res != nil {
		res.Method = h.Name()
	}
	return res, err
}

// scaleFeatures is a small wrapper so HybridBO shares NaiveBO's scaling.
func scaleFeatures(features [][]float64) ([][]float64, error) {
	scaled, _, _, err := stats.MinMaxScale(features)
	if err != nil {
		return nil, fmt.Errorf("core: scaling features: %w", err)
	}
	return scaled, nil
}
