package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/acquisition"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// NaiveBOConfig configures the CherryPick-style baseline.
type NaiveBOConfig struct {
	// Objective selects what to minimize. Required.
	Objective Objective
	// Kernel is the GP covariance family. Zero means kernel.Matern52,
	// CherryPick's prescribed choice. Ignored when AutoKernel is set.
	Kernel kernel.Kind
	// AutoKernel selects the kernel family per fit by log marginal
	// likelihood across RBF and the Matérn family — the "automatic model
	// selection" practice Section III-B cites as the engineering
	// alternative to hand-picking a kernel.
	AutoKernel bool
	// Acquisition selects the acquisition function. Zero means Expected
	// Improvement (CherryPick's choice); acquisition.ProbabilityOfImprovement
	// and acquisition.UpperConfidenceBound are provided for comparison.
	// The EI-fraction stopping rule only applies to Expected Improvement;
	// other acquisitions run until MaxMeasurements.
	Acquisition acquisition.Kind
	// UCBBeta is the exploration weight for UpperConfidenceBound.
	// Zero means DefaultUCBBeta.
	UCBBeta float64
	// MESSamples is the number of posterior-minimum samples drawn per
	// iteration by the EntropySearch acquisition. Zero means
	// DefaultMESSamples.
	MESSamples int
	// ARD enables per-dimension GP length scales (automatic relevance
	// determination), letting the surrogate discount instance features
	// that do not matter for the workload at hand.
	ARD bool
	// MaxTimeSLO, when positive, constrains the search to VMs whose
	// execution time stays within the SLO — CherryPick's original
	// formulation ("minimize cost subject to a performance constraint").
	// The surrogate gains a second GP modeling execution time, and the
	// acquisition becomes constrained EI: EI x P(time <= SLO). Only
	// supported with the ExpectedImprovement acquisition.
	MaxTimeSLO float64
	// EIStopFraction stops the search once the maximum Expected
	// Improvement falls below this fraction of the best observation
	// (CherryPick uses 10%). Zero means DefaultEIStopFraction; negative
	// disables early stopping.
	EIStopFraction float64
	// MinObservations is the smallest number of measurements before the
	// stopping rule may fire. Zero means the design size plus one.
	MinObservations int
	// MaxMeasurements caps the search cost. Zero means "the whole
	// catalog".
	MaxMeasurements int
	// Design configures the initial sample.
	Design DesignConfig
	// Seed drives the initial design (and nothing else; the GP is
	// deterministic given the observations).
	Seed int64
	// FitLogObjective models log(y) instead of y. Multiplicative
	// response surfaces (ours and the paper's) are easier for a GP in
	// log space; CherryPick makes the same transformation.
	// DisableLogObjective turns it off.
	DisableLogObjective bool
	// DisableIncrementalRefit forces every GP fit to refactor the kernel
	// matrix from scratch instead of extending the previous iteration's
	// Cholesky factors. The search itself is bit-identical either way
	// (the extension is prefix-stable); the switch exists to measure the
	// speedup and as an escape hatch.
	DisableIncrementalRefit bool
	// Tracer receives the search's event stream (see internal/telemetry).
	// Nil disables tracing at zero cost.
	Tracer telemetry.Tracer
}

// DefaultEIStopFraction is CherryPick's stopping threshold: stop once no
// candidate's expected improvement reaches 10% of the incumbent.
const DefaultEIStopFraction = 0.10

// DefaultUCBBeta is the exploration weight used by the GP-UCB acquisition
// when none is configured.
const DefaultUCBBeta = 2.0

// DefaultMESSamples is the posterior-minimum sample count for the
// entropy-search acquisition.
const DefaultMESSamples = 64

// NaiveBO is the Gaussian-process Bayesian optimizer the paper calls
// "Naive BO" (the CherryPick method).
type NaiveBO struct {
	cfg NaiveBOConfig
}

// Compile-time interface check.
var _ Optimizer = (*NaiveBO)(nil)

// NewNaiveBO validates the configuration and builds the optimizer.
func NewNaiveBO(cfg NaiveBOConfig) (*NaiveBO, error) {
	if cfg.Kernel == 0 {
		cfg.Kernel = kernel.Matern52
	}
	if cfg.EIStopFraction == 0 {
		cfg.EIStopFraction = DefaultEIStopFraction
	}
	if cfg.EIStopFraction > 1 {
		return nil, fmt.Errorf("core: EI stop fraction %v > 1: %w", cfg.EIStopFraction, ErrBadConfig)
	}
	if cfg.Acquisition == 0 {
		cfg.Acquisition = acquisition.ExpectedImprovement
	}
	switch cfg.Acquisition {
	case acquisition.ExpectedImprovement, acquisition.ProbabilityOfImprovement,
		acquisition.UpperConfidenceBound, acquisition.EntropySearch:
	default:
		return nil, fmt.Errorf("core: acquisition %v unsupported for naive BO: %w", cfg.Acquisition, ErrBadConfig)
	}
	if cfg.MESSamples == 0 {
		cfg.MESSamples = DefaultMESSamples
	}
	if cfg.MESSamples < 1 {
		return nil, fmt.Errorf("core: MES samples %d: %w", cfg.MESSamples, ErrBadConfig)
	}
	if cfg.UCBBeta == 0 {
		cfg.UCBBeta = DefaultUCBBeta
	}
	if cfg.UCBBeta < 0 {
		return nil, fmt.Errorf("core: UCB beta %v negative: %w", cfg.UCBBeta, ErrBadConfig)
	}
	if cfg.MaxTimeSLO < 0 || math.IsNaN(cfg.MaxTimeSLO) || math.IsInf(cfg.MaxTimeSLO, 0) {
		return nil, fmt.Errorf("core: time SLO %v invalid: %w", cfg.MaxTimeSLO, ErrBadConfig)
	}
	if cfg.MaxTimeSLO > 0 && cfg.Acquisition != acquisition.ExpectedImprovement {
		return nil, fmt.Errorf("core: time SLO requires the EI acquisition, have %v: %w", cfg.Acquisition, ErrBadConfig)
	}
	return &NaiveBO{cfg: cfg}, nil
}

// Name implements Optimizer.
func (n *NaiveBO) Name() string { return "naive-bo" }

// Search implements Optimizer.
func (n *NaiveBO) Search(target Target) (*Result, error) {
	st, err := newSearchState(target, n.cfg.Objective)
	if err != nil {
		return nil, err
	}
	st.sloTime = n.cfg.MaxTimeSLO
	st.setTracer(n.cfg.Tracer, n.Name())
	st.emitSearchStart()
	rng := rand.New(rand.NewSource(n.cfg.Seed))
	if n.cfg.Acquisition == acquisition.EntropySearch {
		// Entropy search samples posterior minima from the main RNG in
		// the selection pass; a scripted selection would skip those
		// draws and desynchronize every later one.
		st.voidResumeDecisions()
	}

	// On a batch-capable target, install the fantasization hook before the
	// design so a Stepper can plan ahead from the very first suggestion.
	// The hook answers from the design plan until the main loop's state
	// (scaled features, budgets) is published below.
	var planner *naivePlanner
	if ph, ok := target.(PlanHookSetter); ok {
		planner = &naivePlanner{n: n, st: st}
		ph.SetPlanHook(planner.plan)
	}

	if err := st.runInitialDesign(n.cfg.Design, rng); err != nil {
		return st.abort(n.Name(), err)
	}

	minObs := n.cfg.MinObservations
	if minObs == 0 {
		minObs = len(st.obs) + 1
	}
	maxMeas := n.cfg.MaxMeasurements
	if maxMeas == 0 || maxMeas > target.NumCandidates() {
		maxMeas = target.NumCandidates()
	}

	// Scale the full candidate feature set once; the catalog is known up
	// front, so this leaks no measurement information.
	scaled, _, _, err := stats.MinMaxScale(st.features)
	if err != nil {
		return st.abort(n.Name(), fmt.Errorf("core: scaling features: %w", err))
	}

	// One scratch for the whole search: the training-set headers, query
	// rows, and posterior buffers are reused every iteration.
	scratch := &gpScratch{}
	if planner != nil {
		planner.scaled, planner.sc = scaled, scratch
		planner.minObs, planner.maxMeas = minObs, maxMeas
		planner.ready = true
	}
	for len(st.obs) < maxMeas {
		remaining := st.unmeasured()
		if len(remaining) == 0 {
			break
		}
		var next int
		var score, maxEI float64
		if d, ok := st.scriptedDecision(); ok {
			// Resumed replay: the selection was recorded live; restore
			// it instead of refitting the surrogate.
			next, score, maxEI = d.Index, d.Score, d.aux()
		} else {
			var err error
			next, score, maxEI, err = n.selectCandidate(st, scaled, remaining, rng, scratch)
			if err != nil {
				return st.abort(n.Name(), err)
			}
			st.recordDecision(next, score, maxEI)
		}
		if n.cfg.EIStopFraction > 0 && len(st.obs) >= minObs && st.hasIncumbent() &&
			maxEI < n.cfg.EIStopFraction*st.bestVal {
			reason := fmt.Sprintf("max EI %.4g below %.0f%% of incumbent %.4g", maxEI, 100*n.cfg.EIStopFraction, st.bestVal)
			if st.tracer != nil {
				st.emit(telemetry.Event{
					Kind:      telemetry.KindStopRule,
					Step:      len(st.obs),
					Candidate: -1,
					Value:     maxEI,
					Aux:       n.cfg.EIStopFraction * st.bestVal,
					Detail:    reason,
				})
			}
			return st.result(n.Name(), true, reason), nil
		}
		st.emitSelected(next, score, maxEI)
		if _, err := st.measure(next, score, false); err != nil {
			return st.abort(n.Name(), err)
		}
	}
	return st.finish(n.Name(), false, "search space exhausted")
}

// gpScratch holds the buffers a Naive BO search reuses across iterations:
// training-set headers, the batched query matrix, and the posterior
// moment and feasibility outputs. Everything is sized once (catalog and
// observation counts are bounded by NumCandidates) and reused, so the
// per-iteration acquisition pass stops allocating.
type gpScratch struct {
	xs        [][]float64
	ys        []float64
	queries   [][]float64
	means     []float64
	variances []float64
	timeMeans []float64
	timeVars  []float64
	pFeas     []float64
	// fitters caches one incremental GP fitter per kernel family. The
	// feature rows are identical for the objective and the time model (and
	// only grow by one per iteration), so the acquisition pass and the SLO
	// pass of one iteration — and all later iterations — share the same
	// extended Cholesky factors.
	fitters map[kernel.Kind]*gp.Fitter
}

// fitterFor returns (building on first use) the cached incremental fitter
// for a kernel family.
func (sc *gpScratch) fitterFor(kind kernel.Kind, ard bool) *gp.Fitter {
	if sc.fitters == nil {
		sc.fitters = make(map[kernel.Kind]*gp.Fitter)
	}
	f := sc.fitters[kind]
	if f == nil {
		f = gp.NewFitter(gp.Config{Kernel: kind, ARD: ard})
		sc.fitters[kind] = f
	}
	return f
}

// feasibilityProbs fits a GP on log execution time and returns, per
// remaining candidate, the posterior probability that its time meets the
// SLO. queries must hold the scaled features of remaining, row for row.
func (n *NaiveBO) feasibilityProbs(st *searchState, scaled, queries [][]float64, sc *gpScratch) ([]float64, error) {
	xs := sc.xs[:0]
	ys := sc.ys[:0]
	for _, obs := range st.obs {
		xs = append(xs, scaled[obs.Index])
		ys = append(ys, math.Log(obs.Outcome.TimeSec))
	}
	sc.xs, sc.ys = xs, ys
	var fitT0 time.Time
	if st.tracer != nil {
		fitT0 = time.Now()
	}
	model, info, err := n.fitSurrogate(sc, xs, ys)
	if err != nil {
		return nil, fmt.Errorf("core: fitting time GP for SLO: %w", err)
	}
	st.emitFit("gp-time", len(xs), fitT0, info.Incremental, info.ReusedFactors)
	sc.timeMeans, sc.timeVars, err = model.PredictBatch(queries, 0, sc.timeMeans, sc.timeVars)
	if err != nil {
		return nil, fmt.Errorf("core: time prediction: %w", err)
	}
	logSLO := math.Log(n.cfg.MaxTimeSLO)
	if cap(sc.pFeas) >= len(queries) {
		sc.pFeas = sc.pFeas[:len(queries)]
	} else {
		sc.pFeas = make([]float64, len(queries))
	}
	out := sc.pFeas
	for i := range queries {
		mean, variance := sc.timeMeans[i], sc.timeVars[i]
		out[i] = 0
		if variance < 1e-12 {
			if mean <= logSLO {
				out[i] = 1
			}
			continue
		}
		// P(logTime <= logSLO) via the PI helper, which computes exactly
		// Phi((threshold - mean) / sigma).
		p, err := acquisition.PI(mean, variance, logSLO, 0)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// fitSurrogate trains the GP on the observations, choosing the kernel
// family by log marginal likelihood when AutoKernel is set. Unless
// incremental refits are disabled it goes through the scratch's cached
// fitters, so a fit that appends rows to the previous one extends the
// cached Cholesky factors instead of refactoring — bit-identical to the
// from-scratch path by the prefix stability of the Cholesky recurrence.
func (n *NaiveBO) fitSurrogate(sc *gpScratch, xs [][]float64, ys []float64) (*gp.GP, gp.FitInfo, error) {
	fit := func(kind kernel.Kind) (*gp.GP, gp.FitInfo, error) {
		if n.cfg.DisableIncrementalRefit {
			model, err := gp.Fit(gp.Config{Kernel: kind, ARD: n.cfg.ARD}, xs, ys)
			return model, gp.FitInfo{}, err
		}
		return sc.fitterFor(kind, n.cfg.ARD).Fit(xs, ys)
	}
	if !n.cfg.AutoKernel {
		model, info, err := fit(n.cfg.Kernel)
		if err != nil {
			return nil, gp.FitInfo{}, fmt.Errorf("core: fitting GP surrogate: %w", err)
		}
		return model, info, nil
	}
	var best *gp.GP
	var sum gp.FitInfo
	sum.Incremental = true
	var errs []error
	for _, kind := range kernel.All() {
		model, info, err := fit(kind)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		sum.Incremental = sum.Incremental && info.Incremental
		sum.ReusedFactors += info.ReusedFactors
		sum.TotalFactors += info.TotalFactors
		if best == nil || model.LogMarginalLikelihood() > best.LogMarginalLikelihood() {
			best = model
		}
	}
	if best == nil {
		return nil, gp.FitInfo{}, fmt.Errorf("core: auto kernel selection: every family failed: %w", errors.Join(errs...))
	}
	return best, sum, nil
}

// selectCandidate fits the GP surrogate and returns the unmeasured
// candidate maximizing the configured acquisition. maxEI is the best
// Expected Improvement in objective units (+Inf for non-EI acquisitions,
// so the EI stopping rule never fires for them).
func (n *NaiveBO) selectCandidate(st *searchState, scaled [][]float64, remaining []int, rng *rand.Rand, sc *gpScratch) (next int, score, maxEI float64, err error) {
	xs := sc.xs[:0]
	ys := sc.ys[:0]
	logSpace := !n.cfg.DisableLogObjective
	for _, obs := range st.obs {
		xs = append(xs, scaled[obs.Index])
		if logSpace {
			ys = append(ys, math.Log(obs.Value))
		} else {
			ys = append(ys, obs.Value)
		}
	}
	sc.xs, sc.ys = xs, ys
	var fitT0 time.Time
	if st.tracer != nil {
		fitT0 = time.Now()
	}
	model, info, err := n.fitSurrogate(sc, xs, ys)
	if err != nil {
		return 0, 0, 0, err
	}
	st.emitFit("gp", len(xs), fitT0, info.Incremental, info.ReusedFactors)

	best := st.bestVal
	if logSpace {
		best = math.Log(st.bestVal)
	}

	// Pass 1: posterior moments for every unmeasured candidate, batched
	// over a worker pool with reused row buffers.
	queries := sc.queries[:0]
	for _, idx := range remaining {
		queries = append(queries, scaled[idx])
	}
	sc.queries = queries
	sc.means, sc.variances, err = model.PredictBatch(queries, 0, sc.means, sc.variances)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: GP prediction: %w", err)
	}
	means, variances := sc.means, sc.variances

	// Under a time SLO, a second GP models log execution time and turns
	// EI into constrained EI: EI x P(time <= SLO). It scores the same
	// query rows, so the batch is reused.
	var pFeas []float64
	if n.cfg.MaxTimeSLO > 0 {
		pFeas, err = n.feasibilityProbs(st, scaled, queries, sc)
		if err != nil {
			return 0, 0, 0, err
		}
	}

	// Entropy search needs samples of the posterior minimum over the
	// domain; the incumbent floors every sample (its value is known).
	var minSamples []float64
	if n.cfg.Acquisition == acquisition.EntropySearch {
		minSamples, err = acquisition.SampleMinValues(rng, means, variances, n.cfg.MESSamples)
		if err != nil {
			return 0, 0, 0, err
		}
		for i, v := range minSamples {
			if best < v {
				minSamples[i] = best
			}
		}
	}

	// Pass 2: score candidates.
	next = -1
	score = math.Inf(-1)
	for i, idx := range remaining {
		mean, variance := means[i], variances[i]
		var s float64
		switch n.cfg.Acquisition {
		case acquisition.ExpectedImprovement:
			if pFeas != nil && !st.hasIncumbent() {
				// No feasible incumbent yet: hunt for feasibility first.
				s = pFeas[i]
				break
			}
			s, err = acquisition.EI(mean, variance, best)
			if err == nil && pFeas != nil {
				s *= pFeas[i]
			}
		case acquisition.ProbabilityOfImprovement:
			s, err = acquisition.PI(mean, variance, best, 0)
		case acquisition.UpperConfidenceBound:
			// For minimization the UCB rule picks the smallest lower
			// confidence bound; negate so "maximize score" still applies.
			var lcb float64
			lcb, err = acquisition.LCB(mean, variance, n.cfg.UCBBeta)
			s = -lcb
		case acquisition.EntropySearch:
			s, err = acquisition.MES(mean, variance, minSamples)
		default:
			return 0, 0, 0, fmt.Errorf("core: acquisition %v: %w", n.cfg.Acquisition, ErrBadConfig)
		}
		if err != nil {
			return 0, 0, 0, err
		}
		if st.tracer != nil {
			aux := 0.0
			if pFeas != nil {
				aux = pFeas[i]
			}
			st.emit(telemetry.Event{
				Kind:      telemetry.KindCandidateScored,
				Step:      len(st.obs),
				Candidate: idx,
				Name:      st.target.Name(idx),
				Value:     s,
				Aux:       aux,
			})
		}
		if s > score {
			score = s
			next = idx
		}
	}
	if n.cfg.Acquisition != acquisition.ExpectedImprovement {
		return next, score, math.Inf(1), nil
	}
	if pFeas != nil && !st.hasIncumbent() {
		// The score is a feasibility probability, not an improvement:
		// never let the EI stopping rule fire on it.
		return next, score, math.Inf(1), nil
	}
	maxEI = score
	if logSpace {
		// Convert the log-space improvement into objective units so the
		// stopping rule "EI < fraction x incumbent" stays meaningful:
		// an improvement of delta in log space shrinks the incumbent to
		// incumbent*exp(-delta), i.e. improves it by incumbent*(1-exp(-delta)).
		maxEI = st.bestVal * (1 - math.Exp(-maxEI))
	}
	return next, maxEI, maxEI, nil
}
