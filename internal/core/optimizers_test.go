package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/forest"
	"repro/internal/kernel"
	"repro/internal/lowlevel"
)

func TestNewNaiveBOValidation(t *testing.T) {
	if _, err := NewNaiveBO(NaiveBOConfig{EIStopFraction: 1.5}); err == nil {
		t.Error("EI fraction > 1 should fail")
	}
	nb, err := NewNaiveBO(NaiveBOConfig{Objective: MinimizeTime})
	if err != nil {
		t.Fatal(err)
	}
	if nb.cfg.Kernel != kernel.Matern52 {
		t.Errorf("default kernel = %v, want Matérn 5/2 (CherryPick)", nb.cfg.Kernel)
	}
	if nb.cfg.EIStopFraction != DefaultEIStopFraction {
		t.Errorf("default EI stop = %v", nb.cfg.EIStopFraction)
	}
}

func TestNewAugmentedBOValidation(t *testing.T) {
	if _, err := NewAugmentedBO(AugmentedBOConfig{DeltaThreshold: 0.2}); err == nil {
		t.Error("absurd delta threshold should fail")
	}
	ab, err := NewAugmentedBO(AugmentedBOConfig{Objective: MinimizeCost})
	if err != nil {
		t.Fatal(err)
	}
	if ab.cfg.DeltaThreshold != DefaultDeltaThreshold {
		t.Errorf("default delta = %v, want %v", ab.cfg.DeltaThreshold, DefaultDeltaThreshold)
	}
}

func TestNewHybridBOValidation(t *testing.T) {
	if _, err := NewHybridBO(HybridBOConfig{
		Naive:       NaiveBOConfig{Objective: MinimizeTime},
		Augmented:   AugmentedBOConfig{Objective: MinimizeCost},
		SwitchAfter: 4,
	}); !errors.Is(err, ErrBadConfig) {
		t.Error("mismatched phase objectives should fail")
	}
	if _, err := NewHybridBO(HybridBOConfig{
		Naive:       NaiveBOConfig{Objective: MinimizeTime},
		Augmented:   AugmentedBOConfig{Objective: MinimizeTime},
		SwitchAfter: 1,
	}); !errors.Is(err, ErrBadConfig) {
		t.Error("switch-after 1 should fail")
	}
}

func TestOptimizerNames(t *testing.T) {
	for want, opt := range allOptimizers(t, MinimizeTime, 1, true) {
		if opt.Name() != want {
			t.Errorf("Name() = %q, want %q", opt.Name(), want)
		}
	}
}

// steppedTarget returns a target whose value cliff correlates perfectly
// with a low-level metric: candidates with feature[0] >= 5 are 10x worse,
// and their MemCommit metric says so. Instance features alone (feature 1)
// carry no signal about the cliff.
func steppedTarget() *fakeTarget {
	values := []float64{2, 2.2, 1.8, 2.1, 1.5, 20, 22, 21, 19, 23}
	t := newFakeTarget(values)
	for i := range t.metrics {
		if values[i] > 10 {
			t.metrics[i][lowlevel.MemCommit] = 140
			t.metrics[i][lowlevel.IOWait] = 80
			t.metrics[i][lowlevel.CPUUser] = 15
		} else {
			t.metrics[i][lowlevel.MemCommit] = 35
			t.metrics[i][lowlevel.IOWait] = 5
			t.metrics[i][lowlevel.CPUUser] = 85
		}
	}
	return t
}

func TestAugmentedBOStopsEarlyWithDelta(t *testing.T) {
	aug, err := NewAugmentedBO(AugmentedBOConfig{
		Objective:      MinimizeTime,
		DeltaThreshold: 1.1,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := aug.Search(steppedTarget())
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedEarly {
		t.Fatal("expected early stop on a flat-bottomed landscape")
	}
	if res.NumMeasurements() >= 10 {
		t.Errorf("measured %d, expected early stop to save measurements", res.NumMeasurements())
	}
	if !strings.Contains(res.StopReason, "predicted") {
		t.Errorf("stop reason %q should mention prediction", res.StopReason)
	}
	// The found VM should be in the good cluster.
	if res.BestValue > 10 {
		t.Errorf("stopped on a bad VM: %v", res.BestValue)
	}
}

func TestNaiveBOStopsEarlyWithEI(t *testing.T) {
	naive, err := NewNaiveBO(NaiveBOConfig{
		Objective:      MinimizeTime,
		EIStopFraction: 0.10,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A perfectly flat landscape: EI collapses immediately.
	flat := newFakeTarget([]float64{5, 5, 5, 5, 5, 5, 5, 5})
	res, err := naive.Search(flat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedEarly {
		t.Error("expected early stop on flat landscape")
	}
	if res.NumMeasurements() >= 8 {
		t.Errorf("measured %d of 8 despite flat landscape", res.NumMeasurements())
	}
}

func TestNaiveBOAllKernels(t *testing.T) {
	for _, k := range kernel.All() {
		t.Run(k.String(), func(t *testing.T) {
			naive, err := NewNaiveBO(NaiveBOConfig{Objective: MinimizeTime, Kernel: k, EIStopFraction: -1, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			res, err := naive.Search(newFakeTarget(exhaustiveValues()))
			if err != nil {
				t.Fatal(err)
			}
			if res.BestValue != 1 {
				t.Errorf("best = %v", res.BestValue)
			}
		})
	}
}

func TestNaiveBODisableLogObjective(t *testing.T) {
	naive, err := NewNaiveBO(NaiveBOConfig{
		Objective:           MinimizeTime,
		DisableLogObjective: true,
		EIStopFraction:      -1,
		Seed:                2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := naive.Search(newFakeTarget(exhaustiveValues()))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue != 1 {
		t.Errorf("best = %v", res.BestValue)
	}
}

// TestAugmentedBOExploitsLowLevelSignal is the paper's core claim in
// miniature: when the response cliff is invisible in the instance space
// but perfectly flagged by the low-level metrics of measured VMs, the
// pairwise surrogate should steer the search away from the bad cluster
// faster than chance. We check that once two good and one bad VM are
// measured, the next augmented pick is in the good cluster.
func TestAugmentedBOExploitsLowLevelSignal(t *testing.T) {
	goodPicks, trials := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		target := steppedTarget()
		aug, err := NewAugmentedBO(AugmentedBOConfig{
			Objective:      MinimizeTime,
			DeltaThreshold: -1,
			Seed:           seed,
			Design:         DesignConfig{Kind: DesignFixed, Fixed: []int{0, 5, 2}, NumInitial: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := aug.Search(target)
		if err != nil {
			t.Fatal(err)
		}
		trials++
		if res.Observations[3].Value < 10 {
			goodPicks++
		}
	}
	if goodPicks < trials*3/4 {
		t.Errorf("augmented BO picked a good VM after the design in only %d/%d trials", goodPicks, trials)
	}
}

func TestAugmentedBOForestConfigRespected(t *testing.T) {
	aug, err := NewAugmentedBO(AugmentedBOConfig{
		Objective:      MinimizeTime,
		DeltaThreshold: -1,
		Forest:         forest.Config{NumTrees: 10},
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aug.Search(newFakeTarget(exhaustiveValues())); err != nil {
		t.Fatal(err)
	}
}

func TestHybridSwitchAfter(t *testing.T) {
	// With SwitchAfter = 6, the first 6 measurements must match Naive BO's
	// choices exactly (same seed), since the hybrid runs Naive first.
	seed := int64(9)
	naive, err := NewNaiveBO(NaiveBOConfig{Objective: MinimizeTime, Seed: seed, EIStopFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := NewHybridBO(HybridBOConfig{
		Naive:       NaiveBOConfig{Objective: MinimizeTime, Seed: seed},
		Augmented:   AugmentedBOConfig{Objective: MinimizeTime, DeltaThreshold: -1},
		SwitchAfter: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	tn := newFakeTarget(exhaustiveValues())
	if _, err := naive.Search(tn); err != nil {
		t.Fatal(err)
	}
	th := newFakeTarget(exhaustiveValues())
	if _, err := hybrid.Search(th); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if tn.measured[i] != th.measured[i] {
			t.Fatalf("hybrid step %d = %d, naive = %d", i, th.measured[i], tn.measured[i])
		}
	}
}

func TestHybridResultMethodName(t *testing.T) {
	hybrid, err := NewHybridBO(HybridBOConfig{
		Naive:     NaiveBOConfig{Objective: MinimizeTime},
		Augmented: AugmentedBOConfig{Objective: MinimizeTime},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := hybrid.Search(newFakeTarget(exhaustiveValues()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "hybrid-bo" {
		t.Errorf("method = %q", res.Method)
	}
}

func TestRandomSearchOrderVariesWithSeed(t *testing.T) {
	order := func(seed int64) []int {
		opt, err := NewRandomSearch(RandomSearchConfig{Objective: MinimizeTime, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		target := newFakeTarget(exhaustiveValues())
		if _, err := opt.Search(target); err != nil {
			t.Fatal(err)
		}
		return target.measured
	}
	a, b := order(1), order(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical random order")
	}
}

func TestPairRowLayout(t *testing.T) {
	src := []float64{1, 2}
	dst := []float64{3, 4}
	var m lowlevel.Vector
	for i := range m {
		m[i] = float64(10 + i)
	}
	row := appendPairRow(nil, src, &m, dst)
	wantLen := len(src) + int(lowlevel.NumMetrics) + len(dst)
	if len(row) != wantLen {
		t.Fatalf("row len %d, want %d", len(row), wantLen)
	}
	// Appending to non-empty scratch must extend, not restart.
	scratch := make([]float64, 0, wantLen)
	if again := appendPairRow(scratch, src, &m, dst); len(again) != wantLen {
		t.Fatalf("scratch row len %d, want %d", len(again), wantLen)
	}
	if row[0] != 1 || row[1] != 2 {
		t.Error("source features misplaced")
	}
	if row[2] != 10 {
		t.Error("metrics misplaced")
	}
	if row[wantLen-2] != 3 || row[wantLen-1] != 4 {
		t.Error("destination features misplaced")
	}
}

func TestAugmentedBONeedsTwoObservationsForPairs(t *testing.T) {
	st, err := newSearchState(newFakeTarget(exhaustiveValues()), MinimizeTime)
	if err != nil {
		t.Fatal(err)
	}
	aug, err := NewAugmentedBO(AugmentedBOConfig{Objective: MinimizeTime})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := st.measure(0, 0, true); err != nil || !ok {
		t.Fatalf("measure: ok=%v err=%v", ok, err)
	}
	if _, err := aug.fitPairModel(st, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("error = %v, want ErrBadConfig with one observation", err)
	}
}
