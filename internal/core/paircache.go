package core

import (
	"math"

	"repro/internal/forest"
	"repro/internal/lowlevel"
)

// zeroMetrics stands in for the low-level vector under the ablation
// switch, so ablated rows need no per-row zero value.
var zeroMetrics lowlevel.Vector

// pairCache incrementally maintains the pairwise training set of the
// augmented surrogate. The old path rebuilt every (src -> dst) row from
// scratch on each iteration — O(n^2) rows, each freshly allocated, twice
// per iteration under a time SLO. The cache appends only the rows a new
// observation introduces (2k rows for the k+1-th observation) into one
// backing slab and hands the surrogate stable views into it.
//
// Both targets (log objective value and log execution time) are recorded
// per row, since the objective and time models train on identical feature
// rows and differ only in ys.
type pairCache struct {
	width           int // pair-row length: 2*numFeat + NumMetrics
	disableLowLevel bool

	// slab backs every cached row. Its capacity is exact for the worst
	// case (all N candidates measured -> N(N-1) ordered pairs), so appends
	// never reallocate and previously handed-out row views stay valid.
	slab     []float64
	rows     [][]float64
	logVals  []float64  // log objective value of the destination
	logTimes []float64  // log execution time of the destination
	units    [][2]int32 // per row: (source, destination) observation units
	synced   int        // observations incorporated so far

	// Warm-start history pairs, built once; they join the training set
	// only for the objective model. Warm units occupy [0, warmUnitCount)
	// of the unit id space; live observations follow.
	warmRows      [][]float64
	warmLogVals   []float64
	warmUnits     [][2]int32
	warmUnitCount int32

	// Per-fit scratch: slice headers over rows/warmRows and copied-out ys,
	// so assembling a training set allocates nothing at steady state.
	xsScratch    []([]float64)
	ysScratch    []float64
	unitsScratch [][2]int32

	// The previous fitted ensembles, fed back into forest.Refit so an
	// iteration re-grows only the trees whose sampled rows changed.
	prevObj  *forest.Regressor
	prevTime *forest.Regressor

	// Batched-prediction scratch: one row per (candidate, source) pair,
	// the raw per-row model output, and the per-candidate reductions.
	predSlab  []float64
	predRows  [][]float64
	rawPreds  []float64
	objMeans  []float64
	timeMeans []float64
}

// newPairCache sizes the cache for a catalog of numCandidates VMs with
// numFeat instance features each.
func newPairCache(numCandidates, numFeat int, disableLowLevel bool) *pairCache {
	width := 2*numFeat + int(lowlevel.NumMetrics)
	// A search measuring m of the n candidates holds m*(m-1) pair rows,
	// and m is typically far below n — sizing the slab for the full
	// catalog made it the advisor path's single largest allocation. Start
	// with room for pairs among a handful of measurements and let append
	// grow it; appendObsPair's full-capacity reslice keeps earlier row
	// headers valid (they simply go on pointing into the old array).
	initRows := 16 * 15
	if maxRows := numCandidates * (numCandidates - 1); initRows > maxRows {
		initRows = maxRows
	}
	return &pairCache{
		width:           width,
		disableLowLevel: disableLowLevel,
		slab:            make([]float64, 0, initRows*width),
		rows:            make([][]float64, 0, initRows),
		logVals:         make([]float64, 0, initRows),
		logTimes:        make([]float64, 0, initRows),
	}
}

// addWarm builds the historical (src -> dst) pairs once. Ragged feature
// vectors are passed through untouched; forest.Fit rejects them exactly as
// the per-iteration rebuild used to.
func (c *pairCache) addWarm(priors []PriorObservation) {
	c.warmUnitCount = int32(len(priors))
	for i := range priors {
		for j := range priors {
			if i == j {
				continue
			}
			src, dst := &priors[i], &priors[j]
			metrics := &src.Metrics
			if c.disableLowLevel {
				metrics = &zeroMetrics
			}
			row := make([]float64, 0, len(src.Features)+int(lowlevel.NumMetrics)+len(dst.Features))
			c.warmRows = append(c.warmRows, appendPairRow(row, src.Features, metrics, dst.Features))
			c.warmLogVals = append(c.warmLogVals, math.Log(dst.Value))
			c.warmUnits = append(c.warmUnits, [2]int32{int32(i), int32(j)})
		}
	}
}

// sync appends the rows introduced by observations the cache has not seen
// yet: for the k-th observation, pairs (j -> k) and (k -> j) for every
// j < k. Row order is append order, which is deterministic given the
// measurement sequence.
func (c *pairCache) sync(st *searchState) {
	for k := c.synced; k < len(st.obs); k++ {
		dst := &st.obs[k]
		for j := 0; j < k; j++ {
			src := &st.obs[j]
			c.appendObsPair(st, src, dst, j, k)
			c.appendObsPair(st, dst, src, k, j)
		}
	}
	c.synced = len(st.obs)
}

// appendObsPair appends one (src -> dst) row. srcObs/dstObs are the
// indices of the observations in st.obs; offset by the warm-unit count
// they become the row's sampling units, the stable ids forest.FitSampled
// hashes for per-tree row membership.
func (c *pairCache) appendObsPair(st *searchState, src, dst *Observation, srcObs, dstObs int) {
	metrics := &src.Outcome.Metrics
	if c.disableLowLevel {
		metrics = &zeroMetrics
	}
	start := len(c.slab)
	c.slab = appendPairRow(c.slab, st.features[src.Index], metrics, st.features[dst.Index])
	c.rows = append(c.rows, c.slab[start:len(c.slab):len(c.slab)])
	c.logVals = append(c.logVals, math.Log(dst.Value))
	c.logTimes = append(c.logTimes, math.Log(dst.Outcome.TimeSec))
	c.units = append(c.units, [2]int32{c.warmUnitCount + int32(srcObs), c.warmUnitCount + int32(dstObs)})
}

// pairMark captures the cache's row-count state so fantasized rows can be
// rolled back (see rollback).
type pairMark struct {
	slab, rows, vals, times, units int
}

// mark snapshots the current row counts.
func (c *pairCache) mark() pairMark {
	return pairMark{
		slab:  len(c.slab),
		rows:  len(c.rows),
		vals:  len(c.logVals),
		times: len(c.logTimes),
		units: len(c.units),
	}
}

// rollback truncates every appended-to slice back to a mark, discarding
// the virtual pair rows batch planning appended. synced is untouched: the
// fantasized destinations were never real observations, so the cache's
// notion of which st.obs entries it has incorporated is still exact. If an
// append in between reallocated the slab the earlier row headers keep
// pointing into the old backing array, whose prefix holds the same values
// — rollback only has to restore lengths, never contents.
func (c *pairCache) rollback(m pairMark) {
	c.slab = c.slab[:m.slab]
	c.rows = c.rows[:m.rows]
	c.logVals = c.logVals[:m.vals]
	c.logTimes = c.logTimes[:m.times]
	c.units = c.units[:m.units]
}

// pairTarget selects which recorded target a training set uses.
type pairTarget int

const (
	pairTargetObjective pairTarget = iota
	pairTargetTime
)

// trainingSet assembles (xs, ys, units) for a fit from the cached rows,
// reusing the scratch slices. Warm-start history leads, so that across
// iterations the training set only ever appends — the bitwise-prefix
// property forest.Refit needs to reuse unchanged trees. The returned
// slices are valid until the next call; forest.Refit copies the data, so
// handing them straight to it is safe.
func (c *pairCache) trainingSet(target pairTarget, withHistory bool) ([][]float64, []float64, [][2]int32) {
	xs := c.xsScratch[:0]
	ys := c.ysScratch[:0]
	units := c.unitsScratch[:0]
	if withHistory {
		xs = append(xs, c.warmRows...)
		ys = append(ys, c.warmLogVals...)
		units = append(units, c.warmUnits...)
	}
	xs = append(xs, c.rows...)
	if target == pairTargetTime {
		ys = append(ys, c.logTimes...)
	} else {
		ys = append(ys, c.logVals...)
	}
	units = append(units, c.units...)
	c.xsScratch, c.ysScratch, c.unitsScratch = xs, ys, units
	return xs, ys, units
}

// predictionRows builds the batched query matrix: for every remaining
// candidate, one row per measured source VM, in (candidate-major, source
// order) layout. The slab and row headers are reused across iterations.
func (c *pairCache) predictionRows(st *searchState, remaining []int) [][]float64 {
	need := len(remaining) * len(st.obs) * c.width
	if cap(c.predSlab) < need {
		c.predSlab = make([]float64, 0, need)
	}
	c.predSlab = c.predSlab[:0]
	c.predRows = c.predRows[:0]
	for _, idx := range remaining {
		for s := range st.obs {
			src := &st.obs[s]
			metrics := &src.Outcome.Metrics
			if c.disableLowLevel {
				metrics = &zeroMetrics
			}
			start := len(c.predSlab)
			c.predSlab = appendPairRow(c.predSlab, st.features[src.Index], metrics, st.features[idx])
			c.predRows = append(c.predRows, c.predSlab[start:len(c.predSlab):len(c.predSlab)])
		}
	}
	return c.predRows
}

// reduceMeans folds the raw per-(candidate, source) log predictions into
// one value per candidate: the arithmetic mean over sources in source
// order (fixed summation order keeps results bit-identical to the old
// per-source loop), exponentiated back out of log space.
func reduceMeans(dst, raw []float64, numCandidates, numSources int) []float64 {
	if cap(dst) >= numCandidates {
		dst = dst[:numCandidates]
	} else {
		dst = make([]float64, numCandidates)
	}
	for i := 0; i < numCandidates; i++ {
		sum := 0.0
		for _, v := range raw[i*numSources : (i+1)*numSources] {
			sum += v
		}
		dst[i] = math.Exp(sum / float64(numSources))
	}
	return dst
}
