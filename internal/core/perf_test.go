package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/forest"
)

// catalogValues is an 18-candidate objective landscape, catalog-sized like
// the paper's VM study.
func catalogValues() []float64 {
	out := make([]float64, 18)
	for i := range out {
		out[i] = 3 + 10*math.Abs(math.Sin(float64(i)*1.7))
	}
	return out
}

// augmentedResultAt runs one full augmented search at the given surrogate
// parallelism and returns the result.
func augmentedResultAt(t *testing.T, parallelism int) *Result {
	t.Helper()
	opt, err := NewAugmentedBO(AugmentedBOConfig{
		Objective:      MinimizeCost,
		Seed:           11,
		DeltaThreshold: -1, // run the whole catalog: more iterations under comparison
		Forest:         forest.Config{Parallelism: parallelism},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(newFakeTarget(catalogValues()))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAugmentedSearchBitIdenticalAcrossParallelism is the end-to-end
// determinism contract: the same seed must walk the exact same measurement
// sequence whether the Extra-Trees surrogate runs on one worker or a pool.
// Run under -race this also exercises the concurrent fit and batched
// prediction for data races.
func TestAugmentedSearchBitIdenticalAcrossParallelism(t *testing.T) {
	sequential := augmentedResultAt(t, 1)
	for _, workers := range []int{0, 2, 7} {
		parallel := augmentedResultAt(t, workers)
		if !reflect.DeepEqual(sequential.Observations, parallel.Observations) {
			t.Fatalf("parallelism %d: measurement sequence diverged", workers)
		}
		if !reflect.DeepEqual(sequential.Steps, parallel.Steps) {
			t.Fatalf("parallelism %d: step trace (acquisition scores) diverged", workers)
		}
		if sequential.BestIndex != parallel.BestIndex || sequential.BestValue != parallel.BestValue {
			t.Fatalf("parallelism %d: best (%d, %v), want (%d, %v)",
				workers, parallel.BestIndex, parallel.BestValue, sequential.BestIndex, sequential.BestValue)
		}
	}
}

// TestHybridSearchBitIdenticalAcrossParallelism covers the handover path:
// the naive phase's batched GP predictions plus the augmented phase's pair
// cache built from observations it did not measure itself.
func TestHybridSearchBitIdenticalAcrossParallelism(t *testing.T) {
	runAt := func(parallelism int) *Result {
		opt, err := NewHybridBO(HybridBOConfig{
			Naive:     NaiveBOConfig{Objective: MinimizeCost, Seed: 5},
			Augmented: AugmentedBOConfig{Objective: MinimizeCost, Seed: 5, Forest: forest.Config{Parallelism: parallelism}},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Search(newFakeTarget(catalogValues()))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sequential := runAt(1)
	parallel := runAt(0)
	if !reflect.DeepEqual(sequential.Observations, parallel.Observations) {
		t.Fatal("hybrid measurement sequence diverged across parallelism settings")
	}
	if !reflect.DeepEqual(sequential.Steps, parallel.Steps) {
		t.Fatal("hybrid step trace diverged across parallelism settings")
	}
}

// BenchmarkAugmentedIteration measures one steady-state augmented
// iteration — pairwise surrogate refit plus batched candidate scoring —
// at the paper's scale: 9 observations over an 18-VM catalog. This is the
// loop body the search repeats after every measurement. The tree seed is
// fixed, exactly as in the search loop, so after the first iteration the
// fit takes the incremental path.
func BenchmarkAugmentedIteration(b *testing.B) {
	target := newFakeTarget(catalogValues())
	st, err := newSearchState(target, MinimizeCost)
	if err != nil {
		b.Fatal(err)
	}
	for idx := 0; idx < 9; idx++ {
		if ok, err := st.measure(idx, 0, true); err != nil || !ok {
			b.Fatalf("measure %d: ok=%v err=%v", idx, ok, err)
		}
	}
	aug, err := NewAugmentedBO(AugmentedBOConfig{Objective: MinimizeCost})
	if err != nil {
		b.Fatal(err)
	}
	remaining := st.unmeasured()
	if len(remaining) != 9 {
		b.Fatalf("%d remaining, want 9", len(remaining))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := aug.selectByDelta(st, remaining, 42); err != nil {
			b.Fatal(err)
		}
	}
}
