package core

import (
	"math/rand"

	"repro/internal/telemetry"
)

// RandomSearchConfig configures the random-search baseline.
type RandomSearchConfig struct {
	// Objective selects what to minimize. Required.
	Objective Objective
	// MaxMeasurements caps the search cost. Zero means the whole catalog.
	MaxMeasurements int
	// Seed drives the measurement order.
	Seed int64
	// Tracer receives the search's event stream (see internal/telemetry).
	// Nil disables tracing at zero cost.
	Tracer telemetry.Tracer
}

// RandomSearch measures candidates in a uniformly random order. It is not
// part of the paper's comparison but calibrates how much structure the BO
// methods actually exploit.
type RandomSearch struct {
	cfg RandomSearchConfig
}

// Compile-time interface check.
var _ Optimizer = (*RandomSearch)(nil)

// NewRandomSearch builds the baseline.
func NewRandomSearch(cfg RandomSearchConfig) (*RandomSearch, error) {
	return &RandomSearch{cfg: cfg}, nil
}

// Name implements Optimizer.
func (r *RandomSearch) Name() string { return "random-search" }

// Search implements Optimizer.
func (r *RandomSearch) Search(target Target) (*Result, error) {
	st, err := newSearchState(target, r.cfg.Objective)
	if err != nil {
		return nil, err
	}
	st.setTracer(r.cfg.Tracer, r.Name())
	st.emitSearchStart()
	maxMeas := r.cfg.MaxMeasurements
	if maxMeas == 0 || maxMeas > target.NumCandidates() {
		maxMeas = target.NumCandidates()
	}
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	perm := rng.Perm(target.NumCandidates())
	// Batch planning for random search is just reading ahead in the
	// permutation.
	if ph, ok := target.(PlanHookSetter); ok {
		ph.SetPlanHook((&randomPlanner{st: st, perm: perm, maxMeas: maxMeas}).plan)
	}
	// Walk the whole permutation: a failed candidate is quarantined and
	// does not consume measurement budget, so later permutation entries
	// stand in for it until the budget or the catalog runs out.
	for _, idx := range perm {
		if len(st.obs) >= maxMeas {
			break
		}
		if _, err := st.measure(idx, 0, false); err != nil {
			return st.abort(r.Name(), err)
		}
	}
	return st.finish(r.Name(), false, "measurement budget exhausted")
}
