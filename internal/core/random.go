package core

import (
	"math/rand"
)

// RandomSearchConfig configures the random-search baseline.
type RandomSearchConfig struct {
	// Objective selects what to minimize. Required.
	Objective Objective
	// MaxMeasurements caps the search cost. Zero means the whole catalog.
	MaxMeasurements int
	// Seed drives the measurement order.
	Seed int64
}

// RandomSearch measures candidates in a uniformly random order. It is not
// part of the paper's comparison but calibrates how much structure the BO
// methods actually exploit.
type RandomSearch struct {
	cfg RandomSearchConfig
}

// Compile-time interface check.
var _ Optimizer = (*RandomSearch)(nil)

// NewRandomSearch builds the baseline.
func NewRandomSearch(cfg RandomSearchConfig) (*RandomSearch, error) {
	return &RandomSearch{cfg: cfg}, nil
}

// Name implements Optimizer.
func (r *RandomSearch) Name() string { return "random-search" }

// Search implements Optimizer.
func (r *RandomSearch) Search(target Target) (*Result, error) {
	st, err := newSearchState(target, r.cfg.Objective)
	if err != nil {
		return nil, err
	}
	maxMeas := r.cfg.MaxMeasurements
	if maxMeas == 0 || maxMeas > target.NumCandidates() {
		maxMeas = target.NumCandidates()
	}
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	for _, idx := range rng.Perm(target.NumCandidates())[:maxMeas] {
		if err := st.measure(idx, 0, false); err != nil {
			return nil, err
		}
	}
	return st.result(r.Name(), false, "measurement budget exhausted"), nil
}
