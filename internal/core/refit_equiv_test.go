package core

import (
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// tracedSearch runs one search with a recording tracer and returns the
// full result plus the wall-stripped trace — the deterministic projection
// the golden-trace contract covers.
func tracedSearch(t *testing.T, build func(tr telemetry.Tracer) (Optimizer, error)) (*Result, []telemetry.Event) {
	t.Helper()
	rec := telemetry.NewRecorder()
	opt, err := build(rec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(newFakeTarget(catalogValues()))
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	for i := range events {
		events[i] = events[i].StripWall()
	}
	return res, events
}

// refitWallStats tallies the refit dispositions recorded in surrogate-fit
// wall data, so the tests can assert the incremental path actually ran
// (not just that it agreed with the full path).
func refitWallStats(rec *telemetry.Recorder) (incremental, full int) {
	for _, e := range rec.Events() {
		if e.Kind != telemetry.KindSurrogateFit || e.Wall == nil {
			continue
		}
		switch e.Wall.Refit {
		case "incremental":
			incremental++
		case "full":
			full++
		}
	}
	return incremental, full
}

// TestIncrementalRefitBitIdenticalSearches is the end-to-end equivalence
// contract of this PR: for every optimizer, a search with incremental
// surrogate refits produces the exact same Result and the exact same
// wall-stripped trace as one that re-fits from scratch every iteration.
// Only the Wall data (durations, refit dispositions) may differ.
func TestIncrementalRefitBitIdenticalSearches(t *testing.T) {
	warm := []PriorObservation{
		{Features: []float64{0.5, 1.5}, Metrics: newFakeTarget(catalogValues()).metrics[3], Value: 5.5},
		{Features: []float64{2.5, 0.5}, Metrics: newFakeTarget(catalogValues()).metrics[5], Value: 7.25},
	}
	cases := []struct {
		name  string
		build func(tr telemetry.Tracer, disable bool) (Optimizer, error)
	}{
		{"random", func(tr telemetry.Tracer, disable bool) (Optimizer, error) {
			// No surrogate, so nothing to refit — included so the contract
			// is stated (and checked) for all four methods.
			return NewRandomSearch(RandomSearchConfig{Objective: MinimizeCost, Seed: 17, Tracer: tr})
		}},
		{"naive", func(tr telemetry.Tracer, disable bool) (Optimizer, error) {
			return NewNaiveBO(NaiveBOConfig{
				Objective:               MinimizeCost,
				Seed:                    9,
				AutoKernel:              true,
				MaxTimeSLO:              11, // exercise the gp-time fit sharing factors with gp
				EIStopFraction:          -1, // run long: more extend steps under comparison
				DisableIncrementalRefit: disable,
				Tracer:                  tr,
			})
		}},
		{"augmented", func(tr telemetry.Tracer, disable bool) (Optimizer, error) {
			return NewAugmentedBO(AugmentedBOConfig{
				Objective:               MinimizeCost,
				Seed:                    11,
				MaxTimeSLO:              11, // second pairwise model rides the same cache
				DeltaThreshold:          -1,
				WarmStart:               warm,
				DisableIncrementalRefit: disable,
				Tracer:                  tr,
			})
		}},
		{"hybrid", func(tr telemetry.Tracer, disable bool) (Optimizer, error) {
			return NewHybridBO(HybridBOConfig{
				Naive: NaiveBOConfig{
					Objective:               MinimizeCost,
					Seed:                    5,
					DisableIncrementalRefit: disable,
				},
				Augmented: AugmentedBOConfig{
					Objective:               MinimizeCost,
					Seed:                    5,
					DeltaThreshold:          -1,
					DisableIncrementalRefit: disable,
				},
				Tracer: tr,
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			incRes, incTrace := tracedSearch(t, func(tr telemetry.Tracer) (Optimizer, error) {
				return tc.build(tr, false)
			})
			fullRes, fullTrace := tracedSearch(t, func(tr telemetry.Tracer) (Optimizer, error) {
				return tc.build(tr, true)
			})
			if !reflect.DeepEqual(incRes, fullRes) {
				t.Errorf("results diverge between incremental and full refits:\n inc: %+v\nfull: %+v", incRes, fullRes)
			}
			if !reflect.DeepEqual(incTrace, fullTrace) {
				for i := range incTrace {
					if i >= len(fullTrace) || !reflect.DeepEqual(incTrace[i], fullTrace[i]) {
						t.Fatalf("wall-stripped traces diverge at event %d:\n inc: %+v\nfull: %+v", i, incTrace[i], fullTrace[i])
					}
				}
				t.Fatalf("wall-stripped traces diverge in length: %d vs %d", len(incTrace), len(fullTrace))
			}
		})
	}
}

// TestIncrementalRefitActuallyIncremental guards against the equivalence
// test passing vacuously: steady-state iterations must report the
// incremental disposition in their fit telemetry, and the full-refit
// switch must suppress it entirely.
func TestIncrementalRefitActuallyIncremental(t *testing.T) {
	run := func(disable bool) (incremental, full int) {
		rec := telemetry.NewRecorder()
		opt, err := NewHybridBO(HybridBOConfig{
			Naive:     NaiveBOConfig{Objective: MinimizeCost, Seed: 5, DisableIncrementalRefit: disable},
			Augmented: AugmentedBOConfig{Objective: MinimizeCost, Seed: 5, DeltaThreshold: -1, DisableIncrementalRefit: disable},
			Tracer:    rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := opt.Search(newFakeTarget(catalogValues())); err != nil {
			t.Fatal(err)
		}
		return refitWallStats(rec)
	}
	inc, full := run(false)
	if inc == 0 {
		t.Error("incremental mode: no fit reported the incremental disposition")
	}
	if full == 0 {
		t.Error("incremental mode: the first fit of each model should be full")
	}
	inc, full = run(true)
	if inc != 0 {
		t.Errorf("full-refit mode: %d fits still reported incremental", inc)
	}
	if full == 0 {
		t.Error("full-refit mode: fits should report the full disposition")
	}
}
