package core

import "math"

// This file is the resume-script layer under session snapshots. A live
// stepper records every model-phase decision (which candidate the
// acquisition pass selected, with the score and stopping-rule quantity)
// and every batch-plan result as it happens; the snapshot of a session
// carries that script, and a stepper resumed from a snapshot consumes
// the script instead of re-fitting surrogates while it replays the
// journaled suggest/observe prefix. Everything the scripts skip is the
// expensive, deterministic model work; everything cheap that feeds the
// shared RNG stream (initial design, design replacement, the augmented
// tree-seed draw) still runs for real, so the search state after the
// script is exhausted is exactly the live session's state and every
// post-resume decision is computed — and recorded — identically.
//
// Scripts are advisory, never authoritative: a consumed entry that does
// not match the replay position (wrong observation count, wrong pending
// set) flips the state to recording mode, and the journal replay's
// suggestion assertions catch any divergence and fall back to a full
// replay. Correctness never depends on a script.

// ResumeDecision is one recorded model-phase selection: the candidate
// the acquisition pass picked when the search had Step observations,
// its acquisition score, and the stopping-rule quantity (max EI for
// naive BO, the predicted objective for augmented BO). A +Inf aux —
// JSON cannot carry infinities — is flagged with AuxInf.
type ResumeDecision struct {
	Step   int     `json:"step"`
	Index  int     `json:"index"`
	Score  float64 `json:"score"`
	Aux    float64 `json:"aux"`
	AuxInf bool    `json:"aux_inf,omitempty"`
}

// aux reconstitutes the stopping-rule quantity.
func (d ResumeDecision) aux() float64 {
	if d.AuxInf {
		return math.Inf(1)
	}
	return d.Aux
}

// ResumePlan is one recorded batch-fantasization result: the pending
// candidate indices and extra count the plan hook was invoked with, and
// the speculative picks it returned. Pending and Extra key the entry to
// its invocation so replay consumes it only at the matching call.
type ResumePlan struct {
	Pending []int `json:"pending"`
	Extra   int   `json:"extra"`
	Picks   []int `json:"picks"`
}

// ResumeScript is the decision log a snapshot carries: enough to replay
// a session's journaled prefix without refitting a single surrogate.
type ResumeScript struct {
	Decisions []ResumeDecision `json:"decisions,omitempty"`
	Plans     []ResumePlan     `json:"plans,omitempty"`
}

// clone deep-copies the script so recorded state never aliases caller
// slices.
func (s ResumeScript) clone() ResumeScript {
	out := ResumeScript{}
	if len(s.Decisions) > 0 {
		out.Decisions = append([]ResumeDecision(nil), s.Decisions...)
	}
	if len(s.Plans) > 0 {
		out.Plans = make([]ResumePlan, len(s.Plans))
		for i, p := range s.Plans {
			out.Plans[i] = ResumePlan{
				Pending: append([]int(nil), p.Pending...),
				Extra:   p.Extra,
				Picks:   append([]int(nil), p.Picks...),
			}
		}
	}
	return out
}

// resumeState is the stepper-owned script cursor. Positions below the
// limits consume recorded entries; at the limits the state records. It
// is only ever touched from the search-loop goroutine (decision
// consumption in the loops, plan consumption in the plan-hook wrapper,
// script export in the Measure park), so it needs no lock.
type resumeState struct {
	script    ResumeScript
	decPos    int
	decLimit  int
	planPos   int
	planLimit int
	// decVoid permanently disables decision scripting (set by
	// voidResumeDecisions); without it the recording guard would start
	// appending fresh decisions again the moment the limits are cleared.
	decVoid bool
}

// newResumeState installs script (a deep copy) with the consumption
// limits set to its lengths; an empty script starts in recording mode.
func newResumeState(script ResumeScript) *resumeState {
	sc := script.clone()
	return &resumeState{
		script:    sc,
		decLimit:  len(sc.Decisions),
		planLimit: len(sc.Plans),
	}
}

// plan consumes the next scripted plan entry when it matches this
// invocation, or runs the real hook and records its result. A mismatch
// permanently flips plans to recording mode — the replay's suggestion
// assertions are the safety net if the live and replayed streams truly
// diverged.
func (rs *resumeState) plan(pending []PendingPoint, extra int, inner PlanHook) []int {
	pidx := make([]int, len(pending))
	for i, p := range pending {
		pidx[i] = p.Index
	}
	if rs.planPos < rs.planLimit {
		e := rs.script.Plans[rs.planPos]
		if e.Extra == extra && equalInts(e.Pending, pidx) {
			rs.planPos++
			return append([]int(nil), e.Picks...)
		}
		rs.script.Plans = rs.script.Plans[:rs.planPos]
		rs.planLimit = rs.planPos
	}
	picks := inner(pending, extra)
	// Empty results are not recorded: the serve layer only journals
	// batches that produced new suggestions, so an empty invocation has
	// no replay-side counterpart to consume it.
	if len(picks) > 0 {
		rs.script.Plans = append(rs.script.Plans, ResumePlan{
			Pending: pidx,
			Extra:   extra,
			Picks:   append([]int(nil), picks...),
		})
		rs.planPos++
	}
	return picks
}

// equalInts reports element-wise equality.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// resumeCarrier is implemented by targets that own a resume state (the
// stepper's channel-backed target); newSearchState discovers it so the
// search loops can consume and record decisions.
type resumeCarrier interface {
	resumeState() *resumeState
}

// scriptedDecision consumes the next recorded decision when one is
// available and stamped with the current observation count. A stamp
// mismatch truncates the script at the cursor and flips decisions to
// recording mode.
func (s *searchState) scriptedDecision() (ResumeDecision, bool) {
	rs := s.resume
	if rs == nil || rs.decVoid || rs.decPos >= rs.decLimit {
		return ResumeDecision{}, false
	}
	d := rs.script.Decisions[rs.decPos]
	if d.Step != len(s.obs) {
		rs.script.Decisions = rs.script.Decisions[:rs.decPos]
		rs.decLimit = rs.decPos
		return ResumeDecision{}, false
	}
	rs.decPos++
	return d, true
}

// recordDecision appends a freshly computed decision to the script.
func (s *searchState) recordDecision(idx int, score, aux float64) {
	rs := s.resume
	if rs == nil || rs.decVoid || rs.decPos < rs.decLimit {
		return
	}
	d := ResumeDecision{Step: len(s.obs), Index: idx, Score: score, Aux: aux}
	if math.IsInf(aux, 0) || math.IsNaN(aux) {
		d.Aux, d.AuxInf = 0, true
	}
	rs.script.Decisions = append(rs.script.Decisions, d)
	rs.decPos++
}

// voidResumeDecisions disables decision scripting for this search:
// consumed and recorded entries are dropped. Entropy search draws its
// posterior-minimum samples from the main RNG inside the selection
// pass, so skipping a selection would desynchronize every later draw.
func (s *searchState) voidResumeDecisions() {
	if rs := s.resume; rs != nil {
		rs.script.Decisions = rs.script.Decisions[:0]
		rs.decPos, rs.decLimit = 0, 0
		rs.decVoid = true
	}
}
