package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/acquisition"
	"repro/internal/lowlevel"
)

// sloTarget builds a target where cost and time pull in opposite
// directions: cheap candidates are slow, fast candidates are expensive.
// With an SLO of maxTime, the best feasible choice is the cheapest
// candidate whose time fits.
type sloTarget struct {
	times []float64
	costs []float64
	fake  *fakeTarget
}

func newSLOTarget() *sloTarget {
	// Index:  0    1    2    3    4    5    6    7
	times := []float64{100, 80, 60, 45, 30, 20, 12, 8}
	costs := []float64{1, 1.5, 2, 2.8, 4, 6, 9, 14}
	t := &sloTarget{times: times, costs: costs, fake: newFakeTarget(costs)}
	return t
}

func (s *sloTarget) NumCandidates() int       { return len(s.times) }
func (s *sloTarget) Features(i int) []float64 { return s.fake.features[i] }
func (s *sloTarget) Name(i int) string        { return s.fake.Name(i) }

func (s *sloTarget) Measure(i int) (Outcome, error) {
	var m lowlevel.Vector
	m[lowlevel.CPUUser] = 60
	m[lowlevel.IOWait] = 10
	m[lowlevel.TaskCount] = 6
	m[lowlevel.MemCommit] = 50
	m[lowlevel.DiskUtil] = 30
	m[lowlevel.DiskAwait] = 8
	return Outcome{TimeSec: s.times[i], CostUSD: s.costs[i], Metrics: m}, nil
}

func TestSLOValidation(t *testing.T) {
	if _, err := NewNaiveBO(NaiveBOConfig{Objective: MinimizeCost, MaxTimeSLO: -1}); !errors.Is(err, ErrBadConfig) {
		t.Error("negative SLO should fail")
	}
	if _, err := NewNaiveBO(NaiveBOConfig{Objective: MinimizeCost, MaxTimeSLO: math.NaN()}); !errors.Is(err, ErrBadConfig) {
		t.Error("NaN SLO should fail")
	}
	if _, err := NewNaiveBO(NaiveBOConfig{
		Objective:   MinimizeCost,
		MaxTimeSLO:  50,
		Acquisition: acquisition.UpperConfidenceBound,
	}); !errors.Is(err, ErrBadConfig) {
		t.Error("SLO with non-EI acquisition should fail")
	}
	if _, err := NewAugmentedBO(AugmentedBOConfig{Objective: MinimizeCost, MaxTimeSLO: -2}); !errors.Is(err, ErrBadConfig) {
		t.Error("negative SLO should fail")
	}
}

func TestSLOConstrainedSearchFindsCheapestFeasible(t *testing.T) {
	// With SLO 50s the feasible set is {3..7}; the cheapest feasible is
	// index 3 (cost 2.8, time 45).
	for name, mk := range map[string]func(seed int64) (Optimizer, error){
		"naive": func(seed int64) (Optimizer, error) {
			return NewNaiveBO(NaiveBOConfig{
				Objective: MinimizeCost, MaxTimeSLO: 50, EIStopFraction: -1, Seed: seed,
			})
		},
		"augmented": func(seed int64) (Optimizer, error) {
			return NewAugmentedBO(AugmentedBOConfig{
				Objective: MinimizeCost, MaxTimeSLO: 50, DeltaThreshold: -1, Seed: seed,
			})
		},
	} {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				opt, err := mk(seed)
				if err != nil {
					t.Fatal(err)
				}
				res, err := opt.Search(newSLOTarget())
				if err != nil {
					t.Fatal(err)
				}
				if !res.SLOSatisfied {
					t.Fatalf("seed %d: SLO not satisfied despite feasible candidates", seed)
				}
				if res.BestIndex != 3 {
					t.Errorf("seed %d: best = %d (cost %v), want 3 (cheapest feasible)",
						seed, res.BestIndex, res.BestValue)
				}
			}
		})
	}
}

func TestSLOUnsatisfiableFallsBackToFastest(t *testing.T) {
	// SLO 5s: nothing qualifies; the result must say so and point at the
	// fastest candidate (index 7, 8s).
	naive, err := NewNaiveBO(NaiveBOConfig{
		Objective: MinimizeCost, MaxTimeSLO: 5, EIStopFraction: -1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := naive.Search(newSLOTarget())
	if err != nil {
		t.Fatal(err)
	}
	if res.SLOSatisfied {
		t.Error("SLO reported satisfied but nothing meets 5s")
	}
	if res.BestIndex != 7 {
		t.Errorf("fallback best = %d, want the fastest candidate 7", res.BestIndex)
	}
	if res.NumMeasurements() != 8 {
		t.Errorf("measured %d of 8 — unsatisfiable SLO must not stop early", res.NumMeasurements())
	}
}

func TestSLOStoppingStillWorks(t *testing.T) {
	aug, err := NewAugmentedBO(AugmentedBOConfig{
		Objective: MinimizeCost, MaxTimeSLO: 50, DeltaThreshold: 1.1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := aug.Search(newSLOTarget())
	if err != nil {
		t.Fatal(err)
	}
	if !res.SLOSatisfied {
		t.Fatal("SLO should be satisfiable")
	}
	// The found VM must meet the SLO.
	for _, obs := range res.Observations {
		if obs.Index == res.BestIndex && obs.Outcome.TimeSec > 50 {
			t.Errorf("chosen VM violates the SLO: %v s", obs.Outcome.TimeSec)
		}
	}
}

func TestSLOUnconstrainedUnchanged(t *testing.T) {
	// Without an SLO the same target's cost optimum is index 0.
	naive, err := NewNaiveBO(NaiveBOConfig{Objective: MinimizeCost, EIStopFraction: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := naive.Search(newSLOTarget())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestIndex != 0 || !res.SLOSatisfied {
		t.Errorf("unconstrained best = %d (SLOSatisfied=%v), want 0, true", res.BestIndex, res.SLOSatisfied)
	}
}

func TestSLOHybrid(t *testing.T) {
	hybrid, err := NewHybridBO(HybridBOConfig{
		Naive:     NaiveBOConfig{Objective: MinimizeCost, MaxTimeSLO: 50},
		Augmented: AugmentedBOConfig{Objective: MinimizeCost, MaxTimeSLO: 50, DeltaThreshold: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := hybrid.Search(newSLOTarget())
	if err != nil {
		t.Fatal(err)
	}
	if !res.SLOSatisfied {
		t.Fatal("SLO should be satisfiable")
	}
	if res.BestIndex != 3 {
		t.Errorf("best = %d, want 3 (cheapest feasible)", res.BestIndex)
	}
}

func TestSLOHybridMismatchRejected(t *testing.T) {
	_, err := NewHybridBO(HybridBOConfig{
		Naive:     NaiveBOConfig{Objective: MinimizeCost, MaxTimeSLO: 50},
		Augmented: AugmentedBOConfig{Objective: MinimizeCost, MaxTimeSLO: 60},
	})
	if !errors.Is(err, ErrBadConfig) {
		t.Errorf("error = %v, want ErrBadConfig", err)
	}
}
