package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// This file inverts the optimizer control flow. Every Optimizer pulls
// measurements from a Target inside its own loop; a Stepper turns that
// loop inside out into a step-wise advisor state machine — Next asks
// "which candidate should be measured?", Observe delivers the caller's
// measurement — without forking the search loops. The loops stay the
// single source of truth: the Stepper runs the unmodified Optimizer in a
// goroutine against a channel-backed Target whose Measure blocks until
// the caller observes, so a step-driven search is the same code path as
// a batch search and produces the same result and trace for the same
// seed and observations, by construction.
//
// NextBatch extends the protocol to k concurrent suggestions without
// touching the loops: the loop still realizes one suggestion at a time
// (the head), and the remaining k-1 come from the optimizer's plan hook —
// a fantasization pass that asks "assuming the pending points come back
// as imputed, what would you measure next?". Fantasy suggestions are
// provisional: when the loop's next real suggestion matches one, the
// fantasy is promoted; observations for fantasies are held until the
// loop demands the candidate, so delivery to the loop always happens in
// loop order and the final Result is a deterministic function of the
// {index -> outcome} map regardless of the caller's observe order.

// Catalog is the measurement-free slice of Target: candidate metadata
// the advisor needs to plan, with the measurement left to the caller.
type Catalog interface {
	// NumCandidates returns the catalog size.
	NumCandidates() int
	// Features returns the instance-space encoding of candidate i.
	Features(i int) []float64
	// Name returns a human-readable name for candidate i.
	Name(i int) string
}

// StepSuggestion is one advisor step: the candidate the search wants
// measured next, or Done when the search is over and the result is ready.
type StepSuggestion struct {
	// Index / Name identify the candidate to measure; Index is -1 when
	// Done is set.
	Index int
	Name  string
	// Step counts the observations delivered before this suggestion. For
	// batch suggestions the value is provisional: it assumes every
	// earlier outstanding suggestion is observed first.
	Step int
	// Seq is the monotonic issue ordinal of this suggestion within the
	// session, stable across Next/NextBatch retries — the key callers use
	// to deduplicate suggestions they have already seen.
	Seq int
	// Done reports that the search has finished (stop rule, exhausted
	// catalog, or abort) and Result will not block.
	Done bool
}

// PendingPoint describes one outstanding suggestion to a plan hook:
// the candidate index, and — when the caller has already observed it
// out of order — the real outcome to fantasize with instead of an
// imputed one.
type PendingPoint struct {
	Index    int
	Observed bool
	Outcome  Outcome
	Failed   bool
}

// PlanHook is an optimizer's fantasization entry point: given the
// outstanding suggestions, return up to extra additional candidate
// indices to suggest speculatively. Hooks run on the search-loop
// goroutine (never concurrently with the loop), must not emit trace
// events, and must leave the search state exactly as found.
type PlanHook func(pending []PendingPoint, extra int) []int

// PlanHookSetter is implemented by targets that support batch planning;
// optimizers install their hook at Search start when available.
type PlanHookSetter interface {
	SetPlanHook(PlanHook)
}

// ErrStepperRunning reports a Result call before the search finished.
var ErrStepperRunning = errors.New("core: search still running; result not ready")

// ErrNoPendingSuggestion reports an Observe with no suggestion to
// observe: either Next was never called, the previous suggestion was
// already observed, or the search already finished.
var ErrNoPendingSuggestion = errors.New("core: no pending suggestion to observe")

// ErrSuggestionMismatch reports an Observe whose candidate index does
// not match any pending suggestion.
var ErrSuggestionMismatch = errors.New("core: observation does not match the pending suggestion")

// ErrStepperAborted is the default abort cause.
var ErrStepperAborted = errors.New("core: stepper aborted")

// ErrBadBatchSize reports a NextBatch call with k < 1.
var ErrBadBatchSize = errors.New("core: batch size must be at least 1")

// stepObs is one delivered measurement: an outcome or a measurement
// error (a non-fatal error quarantines the candidate, exactly as a
// failing Target.Measure would in a batch search).
type stepObs struct {
	out Outcome
	err error
}

// pendingPoint is one outstanding suggestion: the loop-realized head or
// a planner fantasy, plus the caller's observation when it arrived before
// the loop demanded the candidate.
type pendingPoint struct {
	sug      StepSuggestion
	observed bool
	obs      stepObs
}

// planReq asks the parked search loop to run the plan hook on its own
// goroutine, serializing fantasization with the loop and with Abort.
type planReq struct {
	pending []PendingPoint
	extra   int
	reply   chan []int
}

// Stepper drives one Optimizer step by step. Construct with NewStepper;
// all methods are safe for concurrent use. The expected cycle is
// Next -> Observe -> Next -> ... -> Next returns Done -> Result. Next is
// idempotent while a suggestion is pending (concurrent or repeated calls
// return the same suggestion), and Observe rejects duplicates, index
// mismatches, and delivery after the search ended. NextBatch(k) widens
// the window to k outstanding suggestions, each observable out of order
// by candidate index.
type Stepper struct {
	cat Catalog

	suggCh  chan int      // unbuffered: loop's Measure blocks until Next receives
	obsCh   chan stepObs  // unbuffered: delivery blocks until the loop receives
	planCh  chan *planReq // unbuffered: served by the loop parked in Measure
	abortCh chan struct{} // closed by Abort; unblocks the loop's Measure
	doneCh  chan struct{} // closed when the search goroutine finished

	abortOnce sync.Once
	cause     error // abort cause, written once before abortCh closes

	mu        sync.Mutex
	nextMu    sync.Mutex // serializes blocking Next/NextBatch calls
	head      *pendingPoint
	fantasies []*pendingPoint
	seq       int // next suggestion ordinal
	hook      PlanHook
	delivered int // observations delivered so far (accepted or not)
	res       *Result
	err       error

	// resume is the decision script: recorded live, consumed on a
	// snapshot resume. Only the loop goroutine touches it; Script()
	// exports a copy through scriptCh, serviced in the Measure park.
	resume   *resumeState
	scriptCh chan chan ResumeScript
}

// NewStepper starts the optimizer's search loop against cat and returns
// the stepper driving it. The loop runs in its own goroutine but only
// ever advances inside Next/Observe/Abort calls — between calls it is
// parked on a channel, so an idle Stepper costs one blocked goroutine.
// Callers that abandon a Stepper must call Abort to release it.
func NewStepper(opt Optimizer, cat Catalog) *Stepper {
	return newStepper(opt, cat, ResumeScript{})
}

// ResumeStepper starts the search loop with a recorded decision script:
// while the script lasts, the loops take their selections from it
// instead of refitting surrogates, which makes replaying a journaled
// suggest/observe prefix cheap. Once the script is exhausted the
// stepper behaves — and keeps recording — exactly like a live one. The
// caller must feed back precisely the suggest/observe sequence the
// script was recorded under; any divergence surfaces as a suggestion
// mismatch in the replay's assertions.
func ResumeStepper(opt Optimizer, cat Catalog, script ResumeScript) *Stepper {
	return newStepper(opt, cat, script)
}

func newStepper(opt Optimizer, cat Catalog, script ResumeScript) *Stepper {
	s := &Stepper{
		cat:      cat,
		suggCh:   make(chan int),
		obsCh:    make(chan stepObs),
		planCh:   make(chan *planReq),
		abortCh:  make(chan struct{}),
		doneCh:   make(chan struct{}),
		resume:   newResumeState(script),
		scriptCh: make(chan chan ResumeScript),
	}
	go func() {
		res, err := opt.Search(&stepperTarget{cat: cat, s: s})
		s.mu.Lock()
		s.res, s.err = res, err
		s.mu.Unlock()
		close(s.doneCh)
	}()
	return s
}

// Script exports a copy of the decision script recorded so far. It may
// only be called while the loop is parked on a pending suggestion (the
// state after Next or NextBatch returned a non-Done suggestion) or
// after the search finished; called mid-computation it blocks until the
// loop parks. The serve layer calls it right after journaling a suggest
// record, when the loop is parked by construction.
func (s *Stepper) Script() ResumeScript {
	req := make(chan ResumeScript, 1)
	select {
	case s.scriptCh <- req:
		return <-req
	case <-s.doneCh:
		// The loop exited; nothing mutates the script anymore.
		return s.resume.script.clone()
	}
}

// Next returns the candidate the search wants measured next, blocking
// while the optimizer computes (surrogate fit + acquisition pass — not
// a measurement; those are the caller's). While a suggestion is pending
// it returns that same suggestion immediately. When the search has
// finished it returns a Done suggestion. ctx bounds the wait; a nil ctx
// means no deadline.
func (s *Stepper) Next(ctx context.Context) (StepSuggestion, error) {
	s.nextMu.Lock()
	defer s.nextMu.Unlock()
	sug, _, err := s.ensureHead(ctx)
	return sug, err
}

// NextBatch returns up to k concurrent suggestions: every currently
// outstanding (unobserved) suggestion, topped up with speculative picks
// from the optimizer's plan hook. It is idempotent — calling it again
// without observing returns the same suggestions (possibly more than k
// when earlier calls asked for a larger batch) — and NextBatch(ctx, 1)
// is exactly Next. The batch may be shorter than k when the optimizer
// has no plan hook, the measurement budget or catalog is nearly
// exhausted, or the search finished (a lone Done suggestion). Each
// suggestion is observed independently via Observe, in any order.
func (s *Stepper) NextBatch(ctx context.Context, k int) ([]StepSuggestion, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadBatchSize, k)
	}
	s.nextMu.Lock()
	defer s.nextMu.Unlock()

	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	for {
		sug, done, err := s.ensureHead(ctx)
		if err != nil {
			return nil, err
		}
		if done {
			return []StepSuggestion{sug}, nil
		}

		s.mu.Lock()
		outstanding := make([]StepSuggestion, 0, 1+len(s.fantasies))
		outstanding = append(outstanding, s.head.sug)
		for _, p := range s.fantasies {
			if !p.observed {
				outstanding = append(outstanding, p.sug)
			}
		}
		hook := s.hook
		extra := k - len(outstanding)
		if extra <= 0 || hook == nil {
			s.mu.Unlock()
			return outstanding, nil
		}
		pending := make([]PendingPoint, 0, 1+len(s.fantasies))
		pending = append(pending, PendingPoint{Index: s.head.sug.Index})
		for _, p := range s.fantasies {
			pp := PendingPoint{Index: p.sug.Index, Observed: p.observed}
			if p.observed {
				pp.Outcome = p.obs.out
				pp.Failed = p.obs.err != nil
			}
			pending = append(pending, pp)
		}
		s.mu.Unlock()

		req := &planReq{pending: pending, extra: extra, reply: make(chan []int, 1)}
		select {
		case s.planCh <- req:
		case idx := <-s.suggCh:
			// A concurrent Observe released the head and the loop moved
			// on to its next suggestion; absorb it and re-plan.
			s.absorb(idx)
			continue
		case <-s.doneCh:
			continue
		case <-ctxDone:
			return nil, ctx.Err()
		}
		// The hook runs synchronously in the loop's Measure park and
		// replies to the buffered channel, so this receive cannot block.
		idxs := <-req.reply
		s.mu.Lock()
		for _, idx := range idxs {
			fsug := StepSuggestion{
				Index: idx,
				Name:  s.cat.Name(idx),
				Step:  s.delivered + 1 + len(s.fantasies),
				Seq:   s.seq,
			}
			s.seq++
			s.fantasies = append(s.fantasies, &pendingPoint{sug: fsug})
			outstanding = append(outstanding, fsug)
		}
		s.mu.Unlock()
		return outstanding, nil
	}
}

// ensureHead blocks until a loop-realized suggestion is outstanding (or
// the search is done / ctx expires) and returns it. Callers hold nextMu.
func (s *Stepper) ensureHead(ctx context.Context) (StepSuggestion, bool, error) {
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	for {
		s.mu.Lock()
		if s.head != nil {
			sug := s.head.sug
			s.mu.Unlock()
			return sug, false, nil
		}
		s.mu.Unlock()
		select {
		case idx := <-s.suggCh:
			s.absorb(idx)
		case <-s.doneCh:
			return StepSuggestion{Index: -1, Done: true, Step: s.deliveredCount()}, true, nil
		case <-ctxDone:
			return StepSuggestion{}, false, ctx.Err()
		}
	}
}

// absorb routes a suggestion the loop just emitted: a matching fantasy is
// promoted to head (keeping the provisional suggestion the caller already
// saw) — or, when the caller observed it out of order, its held outcome
// is delivered straight back to the loop. An unanticipated index becomes
// a fresh head. Callers hold nextMu.
func (s *Stepper) absorb(idx int) {
	s.mu.Lock()
	for i, p := range s.fantasies {
		if p.sug.Index != idx {
			continue
		}
		s.fantasies = append(s.fantasies[:i], s.fantasies[i+1:]...)
		if p.observed {
			s.delivered++
			obs := p.obs
			s.mu.Unlock()
			// The loop just sent on suggCh, so it is parked on obsCh.
			select {
			case s.obsCh <- obs:
			case <-s.doneCh:
			}
			return
		}
		s.head = p
		s.mu.Unlock()
		return
	}
	sug := StepSuggestion{Index: idx, Name: s.cat.Name(idx), Step: s.delivered, Seq: s.seq}
	s.seq++
	s.head = &pendingPoint{sug: sug}
	s.mu.Unlock()
}

// Observe delivers the measurement for the suggested candidate index. A
// nil merr feeds the outcome to the search loop; a non-nil merr is
// treated exactly like a failing Target.Measure — the loop quarantines
// the candidate and continues (wrap with Fatal to abort the whole search
// instead). The index may be any outstanding suggestion: observing the
// head hands the outcome to the loop now, observing a fantasy parks the
// outcome until the loop demands that candidate. Observing an index with
// no outstanding suggestion returns ErrNoPendingSuggestion (never asked,
// already observed, search done) or ErrSuggestionMismatch (a different
// suggestion is pending).
func (s *Stepper) Observe(index int, out Outcome, merr error) error {
	s.mu.Lock()
	if s.head != nil && s.head.sug.Index == index {
		s.head = nil
		s.delivered++
		s.mu.Unlock()
		select {
		case s.obsCh <- stepObs{out: out, err: merr}:
			return nil
		case <-s.doneCh:
			// The loop aborted between the suggestion and this delivery.
			return ErrNoPendingSuggestion
		}
	}
	for _, p := range s.fantasies {
		if p.sug.Index != index {
			continue
		}
		if p.observed {
			s.mu.Unlock()
			return ErrNoPendingSuggestion
		}
		// Park the outcome; it reaches the loop when the loop suggests
		// this candidate. Acceptance depends only on the outstanding set
		// — a deterministic function of the delivered history — so a
		// journal replay of the same calls accepts identically.
		p.observed = true
		p.obs = stepObs{out: out, err: merr}
		s.mu.Unlock()
		return nil
	}
	if s.head != nil {
		want := s.head.sug.Index
		s.mu.Unlock()
		return fmt.Errorf("%w: got candidate %d, candidate %d is pending", ErrSuggestionMismatch, index, want)
	}
	s.mu.Unlock()
	return ErrNoPendingSuggestion
}

// Done reports whether the search has finished and Result is ready.
func (s *Stepper) Done() bool {
	select {
	case <-s.doneCh:
		return true
	default:
		return false
	}
}

// Result returns the finished search outcome. Before the search ends it
// returns ErrStepperRunning; afterwards it returns exactly what the
// underlying Optimizer.Search returned — including a Partial result
// alongside a non-nil error when the search was aborted, the PR 1
// salvage contract.
func (s *Stepper) Result() (*Result, error) {
	if !s.Done() {
		return nil, ErrStepperRunning
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res, s.err
}

// Abort ends the search now: the loop's pending measurement (or its next
// one) fails with a Fatal-marked cause, driving the optimizer's abort
// path to a Partial result that keeps every delivered observation. Abort
// blocks until the loop has finalized and returns the salvaged result.
// Aborting a finished stepper just returns the finished result. cause
// may be nil (ErrStepperAborted is used).
func (s *Stepper) Abort(cause error) (*Result, error) {
	if cause == nil {
		cause = ErrStepperAborted
	}
	s.abortOnce.Do(func() {
		s.cause = cause
		close(s.abortCh)
	})
	<-s.doneCh
	s.mu.Lock()
	// No outstanding suggestion can be observed now.
	s.head = nil
	s.fantasies = nil
	res, err := s.res, s.err
	s.mu.Unlock()
	return res, err
}

// deliveredCount reads the delivery counter under the lock.
func (s *Stepper) deliveredCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

// stepperTarget is the channel-backed Target the search loop runs
// against: Measure publishes the candidate as a suggestion and blocks
// until the caller observes (or aborts). While parked it also services
// plan requests, so fantasization always runs on the loop goroutine.
type stepperTarget struct {
	cat Catalog
	s   *Stepper
}

var (
	_ Target         = (*stepperTarget)(nil)
	_ PlanHookSetter = (*stepperTarget)(nil)
)

func (t *stepperTarget) NumCandidates() int       { return t.cat.NumCandidates() }
func (t *stepperTarget) Features(i int) []float64 { return t.cat.Features(i) }
func (t *stepperTarget) Name(i int) string        { return t.cat.Name(i) }

// SetPlanHook installs the optimizer's fantasization hook. Optimizers
// call it once at Search start; it may be called again on a phase
// switch. The hook is wrapped through the resume state so batch plans
// are consumed from a resumed script (or recorded into a live one);
// hooks run on the loop goroutine, which is the only toucher of that
// state.
func (t *stepperTarget) SetPlanHook(h PlanHook) {
	wrapped := h
	if h != nil {
		rs := t.s.resume
		wrapped = func(pending []PendingPoint, extra int) []int {
			return rs.plan(pending, extra, h)
		}
	}
	t.s.mu.Lock()
	t.s.hook = wrapped
	t.s.mu.Unlock()
}

// resumeState implements resumeCarrier: newSearchState picks the script
// cursor up from here so the search loops can consume and record
// decisions.
func (t *stepperTarget) resumeState() *resumeState { return t.s.resume }

func (t *stepperTarget) Measure(i int) (Outcome, error) {
	select {
	case t.s.suggCh <- i:
	case <-t.s.abortCh:
		return Outcome{}, &fatalError{err: t.s.cause}
	}
	for {
		select {
		case m := <-t.s.obsCh:
			return m.out, m.err
		case req := <-t.s.planCh:
			t.s.mu.Lock()
			h := t.s.hook
			t.s.mu.Unlock()
			var idxs []int
			if h != nil {
				idxs = h(req.pending, req.extra)
			}
			req.reply <- idxs
		case req := <-t.s.scriptCh:
			// Script export runs here, on the loop goroutine, so the
			// copy never races decision recording.
			req <- t.s.resume.script.clone()
		case <-t.s.abortCh:
			return Outcome{}, &fatalError{err: t.s.cause}
		}
	}
}
