package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// This file inverts the optimizer control flow. Every Optimizer pulls
// measurements from a Target inside its own loop; a Stepper turns that
// loop inside out into a step-wise advisor state machine — Next asks
// "which candidate should be measured?", Observe delivers the caller's
// measurement — without forking the search loops. The loops stay the
// single source of truth: the Stepper runs the unmodified Optimizer in a
// goroutine against a channel-backed Target whose Measure blocks until
// the caller observes, so a step-driven search is the same code path as
// a batch search and produces the same result and trace for the same
// seed and observations, by construction.

// Catalog is the measurement-free slice of Target: candidate metadata
// the advisor needs to plan, with the measurement left to the caller.
type Catalog interface {
	// NumCandidates returns the catalog size.
	NumCandidates() int
	// Features returns the instance-space encoding of candidate i.
	Features(i int) []float64
	// Name returns a human-readable name for candidate i.
	Name(i int) string
}

// StepSuggestion is one advisor step: the candidate the search wants
// measured next, or Done when the search is over and the result is ready.
type StepSuggestion struct {
	// Index / Name identify the candidate to measure; Index is -1 when
	// Done is set.
	Index int
	Name  string
	// Step counts the observations delivered before this suggestion.
	Step int
	// Done reports that the search has finished (stop rule, exhausted
	// catalog, or abort) and Result will not block.
	Done bool
}

// ErrStepperRunning reports a Result call before the search finished.
var ErrStepperRunning = errors.New("core: search still running; result not ready")

// ErrNoPendingSuggestion reports an Observe with no suggestion to
// observe: either Next was never called, the previous suggestion was
// already observed, or the search already finished.
var ErrNoPendingSuggestion = errors.New("core: no pending suggestion to observe")

// ErrSuggestionMismatch reports an Observe whose candidate index does
// not match the pending suggestion.
var ErrSuggestionMismatch = errors.New("core: observation does not match the pending suggestion")

// ErrStepperAborted is the default abort cause.
var ErrStepperAborted = errors.New("core: stepper aborted")

// stepObs is one delivered measurement: an outcome or a measurement
// error (a non-fatal error quarantines the candidate, exactly as a
// failing Target.Measure would in a batch search).
type stepObs struct {
	out Outcome
	err error
}

// Stepper drives one Optimizer step by step. Construct with NewStepper;
// all methods are safe for concurrent use. The expected cycle is
// Next -> Observe -> Next -> ... -> Next returns Done -> Result. Next is
// idempotent while a suggestion is pending (concurrent or repeated calls
// return the same suggestion), and Observe rejects duplicates, index
// mismatches, and delivery after the search ended.
type Stepper struct {
	cat Catalog

	suggCh  chan int      // unbuffered: loop's Measure blocks until Next receives
	obsCh   chan stepObs  // unbuffered: Observe blocks until the loop receives
	abortCh chan struct{} // closed by Abort; unblocks the loop's Measure
	doneCh  chan struct{} // closed when the search goroutine finished

	abortOnce sync.Once
	cause     error // abort cause, written once before abortCh closes

	mu        sync.Mutex
	nextMu    sync.Mutex // serializes blocking Next calls
	pending   StepSuggestion
	isPending bool
	delivered int // observations delivered so far (accepted or not)
	res       *Result
	err       error
}

// NewStepper starts the optimizer's search loop against cat and returns
// the stepper driving it. The loop runs in its own goroutine but only
// ever advances inside Next/Observe/Abort calls — between calls it is
// parked on a channel, so an idle Stepper costs one blocked goroutine.
// Callers that abandon a Stepper must call Abort to release it.
func NewStepper(opt Optimizer, cat Catalog) *Stepper {
	s := &Stepper{
		cat:     cat,
		suggCh:  make(chan int),
		obsCh:   make(chan stepObs),
		abortCh: make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	go func() {
		res, err := opt.Search(&stepperTarget{cat: cat, s: s})
		s.mu.Lock()
		s.res, s.err = res, err
		s.mu.Unlock()
		close(s.doneCh)
	}()
	return s
}

// Next returns the candidate the search wants measured next, blocking
// while the optimizer computes (surrogate fit + acquisition pass — not
// a measurement; those are the caller's). While a suggestion is pending
// it returns that same suggestion immediately. When the search has
// finished it returns a Done suggestion. ctx bounds the wait; a nil ctx
// means no deadline.
func (s *Stepper) Next(ctx context.Context) (StepSuggestion, error) {
	s.nextMu.Lock()
	defer s.nextMu.Unlock()

	s.mu.Lock()
	if s.isPending {
		sug := s.pending
		s.mu.Unlock()
		return sug, nil
	}
	s.mu.Unlock()

	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case idx := <-s.suggCh:
		s.mu.Lock()
		sug := StepSuggestion{Index: idx, Name: s.cat.Name(idx), Step: s.delivered}
		s.pending, s.isPending = sug, true
		s.mu.Unlock()
		return sug, nil
	case <-s.doneCh:
		return StepSuggestion{Index: -1, Done: true, Step: s.deliveredCount()}, nil
	case <-ctxDone:
		return StepSuggestion{}, ctx.Err()
	}
}

// Observe delivers the measurement of the pending suggestion. index must
// match the pending suggestion's. A nil merr feeds the outcome to the
// search loop; a non-nil merr is treated exactly like a failing
// Target.Measure — the loop quarantines the candidate and continues
// (wrap with Fatal to abort the whole search instead). Observing when no
// suggestion is pending (never asked, already observed, search done)
// returns ErrNoPendingSuggestion.
func (s *Stepper) Observe(index int, out Outcome, merr error) error {
	s.mu.Lock()
	if !s.isPending {
		s.mu.Unlock()
		return ErrNoPendingSuggestion
	}
	if index != s.pending.Index {
		want := s.pending.Index
		s.mu.Unlock()
		return fmt.Errorf("%w: got candidate %d, candidate %d is pending", ErrSuggestionMismatch, index, want)
	}
	s.isPending = false
	s.delivered++
	s.mu.Unlock()

	select {
	case s.obsCh <- stepObs{out: out, err: merr}:
		return nil
	case <-s.doneCh:
		// The loop aborted between the suggestion and this delivery.
		return ErrNoPendingSuggestion
	}
}

// Done reports whether the search has finished and Result is ready.
func (s *Stepper) Done() bool {
	select {
	case <-s.doneCh:
		return true
	default:
		return false
	}
}

// Result returns the finished search outcome. Before the search ends it
// returns ErrStepperRunning; afterwards it returns exactly what the
// underlying Optimizer.Search returned — including a Partial result
// alongside a non-nil error when the search was aborted, the PR 1
// salvage contract.
func (s *Stepper) Result() (*Result, error) {
	if !s.Done() {
		return nil, ErrStepperRunning
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res, s.err
}

// Abort ends the search now: the loop's pending measurement (or its next
// one) fails with a Fatal-marked cause, driving the optimizer's abort
// path to a Partial result that keeps every delivered observation. Abort
// blocks until the loop has finalized and returns the salvaged result.
// Aborting a finished stepper just returns the finished result. cause
// may be nil (ErrStepperAborted is used).
func (s *Stepper) Abort(cause error) (*Result, error) {
	if cause == nil {
		cause = ErrStepperAborted
	}
	s.abortOnce.Do(func() {
		s.cause = cause
		close(s.abortCh)
	})
	<-s.doneCh
	s.mu.Lock()
	s.isPending = false // a pending suggestion can never be observed now
	res, err := s.res, s.err
	s.mu.Unlock()
	return res, err
}

// deliveredCount reads the delivery counter under the lock.
func (s *Stepper) deliveredCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

// stepperTarget is the channel-backed Target the search loop runs
// against: Measure publishes the candidate as a suggestion and blocks
// until the caller observes (or aborts).
type stepperTarget struct {
	cat Catalog
	s   *Stepper
}

var _ Target = (*stepperTarget)(nil)

func (t *stepperTarget) NumCandidates() int       { return t.cat.NumCandidates() }
func (t *stepperTarget) Features(i int) []float64 { return t.cat.Features(i) }
func (t *stepperTarget) Name(i int) string        { return t.cat.Name(i) }

func (t *stepperTarget) Measure(i int) (Outcome, error) {
	select {
	case t.s.suggCh <- i:
	case <-t.s.abortCh:
		return Outcome{}, &fatalError{err: t.s.cause}
	}
	select {
	case m := <-t.s.obsCh:
		return m.out, m.err
	case <-t.s.abortCh:
		return Outcome{}, &fatalError{err: t.s.cause}
	}
}
