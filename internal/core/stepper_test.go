package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// driveStepper plays a full advisor session against a fakeTarget's data:
// every suggestion is answered with the target's own outcome, so the
// session sees exactly what a batch search over the target would.
func driveStepper(t *testing.T, s *Stepper, target *fakeTarget) {
	t.Helper()
	for {
		sug, err := s.Next(context.Background())
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if sug.Done {
			return
		}
		out, merr := target.Measure(sug.Index)
		if err := s.Observe(sug.Index, out, merr); err != nil {
			t.Fatalf("Observe(%d): %v", sug.Index, err)
		}
	}
}

func TestStepperMatchesBatchSearchAllOptimizers(t *testing.T) {
	for name, opt := range allOptimizers(t, MinimizeTime, 7, false) {
		t.Run(name, func(t *testing.T) {
			batch := newFakeTarget(exhaustiveValues())
			want, err := opt.Search(batch)
			if err != nil {
				t.Fatalf("batch Search: %v", err)
			}

			stepTarget := newFakeTarget(exhaustiveValues())
			s := NewStepper(opt, stepTarget)
			driveStepper(t, s, stepTarget)
			got, err := s.Result()
			if err != nil {
				t.Fatalf("Result: %v", err)
			}

			if got.BestIndex != want.BestIndex || got.BestValue != want.BestValue {
				t.Errorf("best = (%d, %v), batch got (%d, %v)", got.BestIndex, got.BestValue, want.BestIndex, want.BestValue)
			}
			if !reflect.DeepEqual(got.Observations, want.Observations) {
				t.Errorf("observations diverge:\n step: %+v\nbatch: %+v", got.Observations, want.Observations)
			}
			if got.StoppedEarly != want.StoppedEarly {
				t.Errorf("StoppedEarly = %v, batch %v", got.StoppedEarly, want.StoppedEarly)
			}
			if !reflect.DeepEqual(stepTarget.measured, batch.measured) {
				t.Errorf("measurement order diverges:\n step: %v\nbatch: %v", stepTarget.measured, batch.measured)
			}
		})
	}
}

func TestStepperNextIsIdempotentWhilePending(t *testing.T) {
	opt, err := NewRandomSearch(RandomSearchConfig{Objective: MinimizeTime, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(exhaustiveValues())
	s := NewStepper(opt, target)
	defer s.Abort(nil)

	first, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for range 3 {
		again, err := s.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("repeated Next = %+v, want %+v", again, first)
		}
	}
}

func TestStepperConcurrentNextReturnsOneSuggestion(t *testing.T) {
	opt, err := NewRandomSearch(RandomSearchConfig{Objective: MinimizeTime, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(exhaustiveValues())
	s := NewStepper(opt, target)
	defer s.Abort(nil)

	const callers = 8
	got := make([]StepSuggestion, callers)
	var wg sync.WaitGroup
	for i := range callers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sug, err := s.Next(context.Background())
			if err != nil {
				t.Errorf("Next: %v", err)
				return
			}
			got[i] = sug
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d saw %+v, caller 0 saw %+v", i, got[i], got[0])
		}
	}
}

func TestStepperObserveWithoutPending(t *testing.T) {
	opt, err := NewRandomSearch(RandomSearchConfig{Objective: MinimizeTime, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(exhaustiveValues())
	s := NewStepper(opt, target)
	defer s.Abort(nil)

	if err := s.Observe(0, Outcome{TimeSec: 1, CostUSD: 1}, nil); !errors.Is(err, ErrNoPendingSuggestion) {
		t.Fatalf("Observe before Next = %v, want ErrNoPendingSuggestion", err)
	}

	sug, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out, _ := target.Measure(sug.Index)
	if err := s.Observe(sug.Index, out, nil); err != nil {
		t.Fatal(err)
	}
	// Duplicate delivery of the same suggestion.
	if err := s.Observe(sug.Index, out, nil); !errors.Is(err, ErrNoPendingSuggestion) {
		t.Fatalf("duplicate Observe = %v, want ErrNoPendingSuggestion", err)
	}
}

func TestStepperObserveIndexMismatch(t *testing.T) {
	opt, err := NewRandomSearch(RandomSearchConfig{Objective: MinimizeTime, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(exhaustiveValues())
	s := NewStepper(opt, target)
	defer s.Abort(nil)

	sug, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wrong := (sug.Index + 1) % target.NumCandidates()
	if err := s.Observe(wrong, Outcome{TimeSec: 1, CostUSD: 1}, nil); !errors.Is(err, ErrSuggestionMismatch) {
		t.Fatalf("mismatched Observe = %v, want ErrSuggestionMismatch", err)
	}
	// The pending suggestion survives a rejected observation.
	again, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if again != sug {
		t.Fatalf("pending lost after rejected Observe: %+v != %+v", again, sug)
	}
}

func TestStepperResultBeforeDone(t *testing.T) {
	opt, err := NewRandomSearch(RandomSearchConfig{Objective: MinimizeTime, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStepper(opt, newFakeTarget(exhaustiveValues()))
	defer s.Abort(nil)

	if _, err := s.Result(); !errors.Is(err, ErrStepperRunning) {
		t.Fatalf("Result before done = %v, want ErrStepperRunning", err)
	}
	if s.Done() {
		t.Fatal("Done before any step")
	}
}

func TestStepperNextHonorsContext(t *testing.T) {
	opt, err := NewRandomSearch(RandomSearchConfig{Objective: MinimizeTime, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(exhaustiveValues())
	s := NewStepper(opt, target)
	defer s.Abort(nil)

	// Consume the pending suggestion but never observe; the loop is now
	// parked waiting for an observation, so a second... actually Next
	// returns the pending suggestion. Instead: observe, then race Next
	// against an already-cancelled context before the loop suggests.
	sug, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(sug.Index, Outcome{}, errors.New("skip")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Next(ctx); !errors.Is(err, context.Canceled) {
		// The loop may already have parked the next suggestion on the
		// channel, in which case Next legitimately returns it; only a
		// still-computing loop surfaces the context error. Accept both,
		// but a nil error must carry a valid suggestion.
		if err != nil {
			t.Fatalf("Next with cancelled ctx = %v, want context.Canceled or a suggestion", err)
		}
	}
}

func TestStepperAbortSalvagesPartialResult(t *testing.T) {
	opt, err := NewAugmentedBO(AugmentedBOConfig{Objective: MinimizeTime, Seed: 2, DeltaThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(exhaustiveValues())
	s := NewStepper(opt, target)

	// Deliver three observations, then abort mid-search.
	for range 3 {
		sug, err := s.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out, _ := target.Measure(sug.Index)
		if err := s.Observe(sug.Index, out, nil); err != nil {
			t.Fatal(err)
		}
	}
	cause := errors.New("operator pulled the plug")
	res, err := s.Abort(cause)
	if err == nil || !errors.Is(err, cause) {
		t.Fatalf("Abort err = %v, want wrapped cause", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("Abort result = %+v, want salvaged Partial", res)
	}
	if res.NumMeasurements() != 3 {
		t.Errorf("salvaged %d observations, want 3", res.NumMeasurements())
	}
	// Post-abort the stepper is terminal: Next reports Done, Observe
	// rejects, Result repeats the salvage.
	sug, err := s.Next(context.Background())
	if err != nil || !sug.Done {
		t.Fatalf("Next after abort = %+v, %v; want Done", sug, err)
	}
	if err := s.Observe(0, Outcome{}, nil); !errors.Is(err, ErrNoPendingSuggestion) {
		t.Fatalf("Observe after abort = %v, want ErrNoPendingSuggestion", err)
	}
	res2, err2 := s.Result()
	if res2 != res || !errors.Is(err2, cause) {
		t.Fatalf("Result after abort = %+v, %v", res2, err2)
	}
}

func TestStepperAbortWithPendingSuggestion(t *testing.T) {
	opt, err := NewRandomSearch(RandomSearchConfig{Objective: MinimizeTime, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(exhaustiveValues())
	s := NewStepper(opt, target)

	if _, err := s.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err := s.Abort(nil)
		if err == nil || !errors.Is(err, ErrStepperAborted) {
			t.Errorf("Abort err = %v, want ErrStepperAborted", err)
		}
		if res == nil || !res.Partial {
			t.Errorf("Abort result = %+v, want Partial", res)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Abort deadlocked with a pending suggestion")
	}
}

func TestStepperAbortAfterFinishReturnsFinishedResult(t *testing.T) {
	opt, err := NewRandomSearch(RandomSearchConfig{Objective: MinimizeTime, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(exhaustiveValues())
	s := NewStepper(opt, target)
	driveStepper(t, s, target)

	res, err := s.Abort(errors.New("too late"))
	if err != nil {
		t.Fatalf("Abort after finish err = %v", err)
	}
	if res == nil || res.Partial {
		t.Fatalf("Abort after finish = %+v, want the complete result", res)
	}
}

func TestStepperObserveFailureQuarantines(t *testing.T) {
	opt, err := NewRandomSearch(RandomSearchConfig{Objective: MinimizeTime, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	target := newFakeTarget(exhaustiveValues())
	s := NewStepper(opt, target)

	failed := -1
	for {
		sug, err := s.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if sug.Done {
			break
		}
		if failed == -1 {
			failed = sug.Index
			if err := s.Observe(sug.Index, Outcome{}, errors.New("injected measurement failure")); err != nil {
				t.Fatal(err)
			}
			continue
		}
		out, _ := target.Measure(sug.Index)
		if err := s.Observe(sug.Index, out, nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if res.NumMeasurements() != target.NumCandidates()-1 {
		t.Errorf("measured %d, want %d (failed candidate quarantined)", res.NumMeasurements(), target.NumCandidates()-1)
	}
	for _, obs := range res.Observations {
		if obs.Index == failed {
			t.Errorf("quarantined candidate %d appears in observations", failed)
		}
	}
	if len(res.Failures) != 1 || res.Failures[0].Index != failed {
		t.Errorf("failures = %+v, want exactly candidate %d", res.Failures, failed)
	}
}
