// Package faults injects measurement failures into a Target for chaos
// testing the search loop. A seeded injector decides, per Measure call,
// whether the measurement fails transiently, fails permanently, or
// succeeds with a corrupted outcome — modelling the spot reclaims,
// unavailable instance types and broken telemetry a real cloud serves up.
//
// The package sits below the public retry middleware: its errors expose
// net.Error's Temporary() bool so the public classifier recognizes them
// without this package importing the public one (which would cycle).
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/lowlevel"
)

// CorruptKind enumerates the outcome corruptions the injector applies.
type CorruptKind int

// The corruption modes: the measurement "succeeds" but its payload would
// poison a surrogate if the validation gate let it through.
const (
	// CorruptNaNTime reports a NaN execution time.
	CorruptNaNTime CorruptKind = iota
	// CorruptInfTime reports an infinite execution time.
	CorruptInfTime
	// CorruptNegativeTime reports a negative execution time.
	CorruptNegativeTime
	// CorruptNegativeCost reports a negative cost.
	CorruptNegativeCost
	// CorruptNaNMetric poisons one low-level metric with NaN.
	CorruptNaNMetric
	// CorruptShortMetrics truncates the metric vector. Only expressible
	// at the public []float64 layer; the internal injector substitutes
	// CorruptNaNMetric.
	CorruptShortMetrics

	// NumCorruptKinds counts the modes above.
	NumCorruptKinds
)

// String names the corruption.
func (k CorruptKind) String() string {
	switch k {
	case CorruptNaNTime:
		return "nan-time"
	case CorruptInfTime:
		return "inf-time"
	case CorruptNegativeTime:
		return "negative-time"
	case CorruptNegativeCost:
		return "negative-cost"
	case CorruptNaNMetric:
		return "nan-metric"
	case CorruptShortMetrics:
		return "short-metrics"
	default:
		return fmt.Sprintf("CorruptKind(%d)", int(k))
	}
}

// Config parameterizes an Injector.
type Config struct {
	// Seed drives every injection decision; equal seeds reproduce the
	// fault sequence exactly.
	Seed int64
	// TransientRate is the probability, per Measure call, of a
	// retryable failure.
	TransientRate float64
	// CorruptRate is the probability, per otherwise-successful Measure
	// call, of a corrupted outcome.
	CorruptRate float64
	// Permanent lists candidates whose every measurement fails with a
	// non-retryable error — instance types the provider refuses.
	Permanent []int
}

// Stats counts what an Injector did.
type Stats struct {
	// Calls is the number of injection decisions made.
	Calls int
	// Transient / Permanent / Corrupt count the injected faults.
	Transient int
	Permanent int
	Corrupt   int
}

// Error is an injected measurement failure.
type Error struct {
	// Candidate that failed.
	Candidate int
	// Retryable distinguishes transient from permanent injections.
	Retryable bool
	// Reason is a short human-readable cause.
	Reason string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("faults: candidate %d: %s", e.Candidate, e.Reason)
}

// Temporary implements the net.Error-style signal the public retry
// classifier trusts.
func (e *Error) Temporary() bool { return e.Retryable }

// Plan is one injection decision.
type Plan struct {
	// Transient / Permanent, when set, fail the measurement (and the
	// real Measure is not called).
	Transient bool
	Permanent bool
	// Corrupt, when set, corrupts the successful outcome per Kind.
	Corrupt bool
	Kind    CorruptKind
}

// Injector makes seeded fault decisions. It is safe for concurrent use.
type Injector struct {
	cfg       Config
	permanent map[int]bool

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// NewInjector builds an Injector.
func NewInjector(cfg Config) *Injector {
	perm := make(map[int]bool, len(cfg.Permanent))
	for _, i := range cfg.Permanent {
		perm[i] = true
	}
	return &Injector{
		cfg:       cfg,
		permanent: perm,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Decide rolls the dice for one measurement of candidate. Both the
// internal and the public chaos wrappers funnel through it, so the fault
// sequence for a given seed is identical at either layer.
func (inj *Injector) Decide(candidate int) Plan {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.stats.Calls++
	if inj.permanent[candidate] {
		inj.stats.Permanent++
		return Plan{Permanent: true}
	}
	if inj.cfg.TransientRate > 0 && inj.rng.Float64() < inj.cfg.TransientRate {
		inj.stats.Transient++
		return Plan{Transient: true}
	}
	if inj.cfg.CorruptRate > 0 && inj.rng.Float64() < inj.cfg.CorruptRate {
		inj.stats.Corrupt++
		return Plan{Corrupt: true, Kind: CorruptKind(inj.rng.Intn(int(NumCorruptKinds)))}
	}
	return Plan{}
}

// Err materializes the failure a Plan calls for, or nil.
func (inj *Injector) Err(candidate int, p Plan) error {
	switch {
	case p.Permanent:
		return &Error{Candidate: candidate, Retryable: false, Reason: "instance type permanently unavailable"}
	case p.Transient:
		return &Error{Candidate: candidate, Retryable: true, Reason: "transient capacity failure"}
	default:
		return nil
	}
}

// Stats returns a snapshot of the injection counters.
func (inj *Injector) Stats() Stats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}

// Target wraps a core.Target with an Injector.
type Target struct {
	t   core.Target
	inj *Injector
}

var _ core.Target = (*Target)(nil)

// Wrap builds a fault-injecting view of t.
func Wrap(t core.Target, cfg Config) *Target {
	return &Target{t: t, inj: NewInjector(cfg)}
}

// Injector exposes the decision engine (for stats).
func (f *Target) Injector() *Injector { return f.inj }

// NumCandidates implements core.Target.
func (f *Target) NumCandidates() int { return f.t.NumCandidates() }

// Features implements core.Target.
func (f *Target) Features(i int) []float64 { return f.t.Features(i) }

// Name implements core.Target.
func (f *Target) Name(i int) string { return f.t.Name(i) }

// Measure implements core.Target, injecting faults per the config.
func (f *Target) Measure(i int) (core.Outcome, error) {
	p := f.inj.Decide(i)
	if err := f.inj.Err(i, p); err != nil {
		return core.Outcome{}, err
	}
	out, err := f.t.Measure(i)
	if err != nil {
		return core.Outcome{}, err
	}
	if p.Corrupt {
		out = corruptOutcome(out, p.Kind)
	}
	return out, nil
}

// corruptOutcome applies a corruption to an internal outcome.
func corruptOutcome(out core.Outcome, kind CorruptKind) core.Outcome {
	switch kind {
	case CorruptNaNTime:
		out.TimeSec = math.NaN()
	case CorruptInfTime:
		out.TimeSec = math.Inf(1)
	case CorruptNegativeTime:
		out.TimeSec = -out.TimeSec
	case CorruptNegativeCost:
		out.CostUSD = -1
	case CorruptNaNMetric, CorruptShortMetrics:
		// The fixed-size internal vector cannot be truncated; poison an
		// entry instead.
		out.Metrics[lowlevel.CPUUser] = math.NaN()
	}
	return out
}
