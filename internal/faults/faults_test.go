package faults

import (
	"math"
	"testing"

	"repro/internal/core"
)

// stubTarget is a minimal healthy core.Target.
type stubTarget struct{ n int }

func (s *stubTarget) NumCandidates() int       { return s.n }
func (s *stubTarget) Features(i int) []float64 { return []float64{float64(i)} }
func (s *stubTarget) Name(i int) string        { return "vm" }
func (s *stubTarget) Measure(i int) (core.Outcome, error) {
	return core.Outcome{TimeSec: float64(i + 1), CostUSD: 1}, nil
}

func TestInjectorPermanent(t *testing.T) {
	f := Wrap(&stubTarget{n: 4}, Config{Seed: 1, Permanent: []int{2}})
	if _, err := f.Measure(2); err == nil {
		t.Fatal("permanent candidate should fail")
	} else if e, ok := err.(*Error); !ok || e.Temporary() {
		t.Errorf("error = %v, want a non-temporary *Error", err)
	}
	if _, err := f.Measure(1); err != nil {
		t.Fatalf("healthy candidate failed: %v", err)
	}
	s := f.Injector().Stats()
	if s.Calls != 2 || s.Permanent != 1 {
		t.Errorf("stats = %+v, want 2 calls / 1 permanent", s)
	}
}

func TestInjectorTransientRate(t *testing.T) {
	f := Wrap(&stubTarget{n: 1}, Config{Seed: 7, TransientRate: 0.5})
	fails := 0
	for k := 0; k < 200; k++ {
		if _, err := f.Measure(0); err != nil {
			fails++
			if e, ok := err.(*Error); !ok || !e.Temporary() {
				t.Fatalf("error = %v, want a temporary *Error", err)
			}
		}
	}
	if fails < 60 || fails > 140 {
		t.Errorf("%d/200 transient failures at rate 0.5", fails)
	}
}

func TestInjectorCorruption(t *testing.T) {
	f := Wrap(&stubTarget{n: 1}, Config{Seed: 3, CorruptRate: 1})
	sawInvalid := false
	for k := 0; k < 20; k++ {
		out, err := f.Measure(0)
		if err != nil {
			t.Fatalf("corruption is not an error: %v", err)
		}
		if core.ValidateOutcome(out) != nil {
			sawInvalid = true
		}
	}
	if !sawInvalid {
		t.Error("rate-1 corruption never produced an invalid outcome")
	}
	if s := f.Injector().Stats(); s.Corrupt != 20 {
		t.Errorf("corrupt count = %d, want 20", s.Corrupt)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	trace := func() []Plan {
		inj := NewInjector(Config{Seed: 11, TransientRate: 0.3, CorruptRate: 0.3})
		var ps []Plan
		for k := 0; k < 50; k++ {
			ps = append(ps, inj.Decide(k%5))
		}
		return ps
	}
	a, b := trace(), trace()
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("decision %d diverged for equal seeds: %+v vs %+v", k, a[k], b[k])
		}
	}
}

func TestCorruptOutcomeKinds(t *testing.T) {
	base := core.Outcome{TimeSec: 10, CostUSD: 2}
	for kind := CorruptKind(0); kind < NumCorruptKinds; kind++ {
		out := corruptOutcome(base, kind)
		if err := core.ValidateOutcome(out); err == nil {
			t.Errorf("%v: corrupted outcome %+v still validates", kind, out)
		}
	}
	if math.IsNaN(base.TimeSec) {
		t.Error("corruption mutated the input outcome")
	}
}
