// Package forest implements the Extra-Trees (extremely randomized trees)
// regression ensemble that Arrow uses as its surrogate model instead of a
// Gaussian process (Section IV-B, "Surrogate Model").
//
// Extra-Trees differ from random forests in two ways: each tree is grown on
// the full training set (no bootstrap) and split thresholds are drawn
// uniformly at random between the observed feature minimum and maximum,
// with the best of K random (feature, threshold) candidates chosen by
// variance reduction. This makes the model robust on the small, highly
// non-smooth response surfaces that break GP kernels — precisely the
// fragility the paper targets.
package forest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrNoData is returned when fitting with no samples.
var ErrNoData = errors.New("forest: no training data")

// Config controls ensemble growth.
type Config struct {
	// NumTrees is the ensemble size. Zero means DefaultNumTrees.
	NumTrees int
	// MinSamplesSplit is the smallest node that may be split further.
	// Zero means DefaultMinSamplesSplit.
	MinSamplesSplit int
	// MaxFeatures is K, the number of random split candidates per node.
	// Zero means round(sqrt(d)) where d is the feature count.
	MaxFeatures int
	// MaxDepth bounds tree depth. Zero means unbounded.
	MaxDepth int
	// Seed seeds the (deterministic) tree randomization.
	Seed int64
}

// Defaults for Config's zero values.
const (
	DefaultNumTrees        = 100
	DefaultMinSamplesSplit = 2
)

// Regressor is a fitted Extra-Trees ensemble.
type Regressor struct {
	trees   []*node
	numDims int
}

type node struct {
	// Leaf payload.
	leaf  bool
	value float64

	// Internal-node payload.
	feature   int
	threshold float64
	left      *node
	right     *node
}

// Fit grows the ensemble on feature rows xs and targets ys.
func Fit(cfg Config, xs [][]float64, ys []float64) (*Regressor, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("forest: %d rows but %d targets", len(xs), len(ys))
	}
	dims := len(xs[0])
	if dims == 0 {
		return nil, errors.New("forest: zero-dimensional features")
	}
	for i, row := range xs {
		if len(row) != dims {
			return nil, fmt.Errorf("forest: ragged row %d (len %d, want %d)", i, len(row), dims)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("forest: non-finite feature at row %d col %d: %v", i, j, v)
			}
		}
	}
	for i, y := range ys {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			return nil, fmt.Errorf("forest: non-finite target at row %d: %v", i, y)
		}
	}

	numTrees := cfg.NumTrees
	if numTrees == 0 {
		numTrees = DefaultNumTrees
	}
	minSplit := cfg.MinSamplesSplit
	if minSplit == 0 {
		minSplit = DefaultMinSamplesSplit
	}
	if minSplit < 2 {
		return nil, fmt.Errorf("forest: MinSamplesSplit %d < 2", minSplit)
	}
	maxFeatures := cfg.MaxFeatures
	if maxFeatures == 0 {
		maxFeatures = int(math.Round(math.Sqrt(float64(dims))))
		if maxFeatures < 1 {
			maxFeatures = 1
		}
	}
	if maxFeatures > dims {
		maxFeatures = dims
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	g := grower{
		xs:          xs,
		ys:          ys,
		minSplit:    minSplit,
		maxFeatures: maxFeatures,
		maxDepth:    cfg.MaxDepth,
		rng:         rng,
	}
	trees := make([]*node, numTrees)
	indices := make([]int, len(xs))
	for i := range indices {
		indices[i] = i
	}
	for t := range trees {
		trees[t] = g.grow(indices, 0)
	}
	return &Regressor{trees: trees, numDims: dims}, nil
}

type grower struct {
	xs          [][]float64
	ys          []float64
	minSplit    int
	maxFeatures int
	maxDepth    int
	rng         *rand.Rand
}

func (g *grower) grow(indices []int, depth int) *node {
	if len(indices) < g.minSplit || (g.maxDepth > 0 && depth >= g.maxDepth) || g.constantTargets(indices) {
		return &node{leaf: true, value: g.meanTarget(indices)}
	}

	bestScore := math.Inf(-1)
	bestFeature := -1
	bestThreshold := 0.0
	dims := len(g.xs[0])

	// Draw K distinct candidate features (without replacement when K < d).
	candidates := g.sampleFeatures(dims)
	for _, f := range candidates {
		lo, hi := g.featureRange(indices, f)
		if hi <= lo {
			continue // constant feature in this node
		}
		threshold := lo + g.rng.Float64()*(hi-lo)
		score := g.varianceReduction(indices, f, threshold)
		if score > bestScore {
			bestScore = score
			bestFeature = f
			bestThreshold = threshold
		}
	}
	if bestFeature < 0 {
		// Every candidate feature was constant in this node.
		return &node{leaf: true, value: g.meanTarget(indices)}
	}

	var left, right []int
	for _, i := range indices {
		if g.xs[i][bestFeature] <= bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &node{leaf: true, value: g.meanTarget(indices)}
	}
	return &node{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      g.grow(left, depth+1),
		right:     g.grow(right, depth+1),
	}
}

func (g *grower) sampleFeatures(dims int) []int {
	if g.maxFeatures >= dims {
		out := make([]int, dims)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := g.rng.Perm(dims)
	out := perm[:g.maxFeatures]
	sort.Ints(out)
	return out
}

func (g *grower) featureRange(indices []int, f int) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, i := range indices {
		v := g.xs[i][f]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func (g *grower) constantTargets(indices []int) bool {
	first := g.ys[indices[0]]
	for _, i := range indices[1:] {
		if g.ys[i] != first {
			return false
		}
	}
	return true
}

func (g *grower) meanTarget(indices []int) float64 {
	sum := 0.0
	for _, i := range indices {
		sum += g.ys[i]
	}
	return sum / float64(len(indices))
}

// varianceReduction scores a candidate split by the decrease in
// target variance, weighted by child sizes (a.k.a. the CART regression
// criterion). Larger is better.
func (g *grower) varianceReduction(indices []int, f int, threshold float64) float64 {
	var (
		nL, nR         float64
		sumL, sumR     float64
		sumSqL, sumSqR float64
	)
	for _, i := range indices {
		y := g.ys[i]
		if g.xs[i][f] <= threshold {
			nL++
			sumL += y
			sumSqL += y * y
		} else {
			nR++
			sumR += y
			sumSqR += y * y
		}
	}
	if nL == 0 || nR == 0 {
		return math.Inf(-1)
	}
	n := nL + nR
	total := sumL + sumR
	totalSq := sumSqL + sumSqR
	parentVar := totalSq/n - (total/n)*(total/n)
	leftVar := sumSqL/nL - (sumL/nL)*(sumL/nL)
	rightVar := sumSqR/nR - (sumR/nR)*(sumR/nR)
	return parentVar - (nL/n)*leftVar - (nR/n)*rightVar
}

// Predict returns the ensemble mean at x.
func (r *Regressor) Predict(x []float64) (float64, error) {
	mean, _, err := r.PredictWithVariance(x)
	return mean, err
}

// PredictWithVariance returns the mean and variance of the per-tree
// predictions at x. The variance is the ensemble's (epistemic) disagreement
// and plays the role the GP posterior variance plays for Naive BO.
func (r *Regressor) PredictWithVariance(x []float64) (mean, variance float64, err error) {
	if len(x) != r.numDims {
		return 0, 0, fmt.Errorf("forest: query dim %d, want %d", len(x), r.numDims)
	}
	sum, sumSq := 0.0, 0.0
	for _, t := range r.trees {
		v := t.eval(x)
		sum += v
		sumSq += v * v
	}
	n := float64(len(r.trees))
	mean = sum / n
	variance = sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance, nil
}

func (n *node) eval(x []float64) float64 {
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// NumTrees returns the ensemble size.
func (r *Regressor) NumTrees() int { return len(r.trees) }

// FeatureImportance returns, per feature, the fraction of internal nodes
// across the ensemble that split on it. It is a cheap diagnostic used by
// the study harness to report which low-level metrics the surrogate leans
// on (Section IV-A's feature-selection discussion).
func (r *Regressor) FeatureImportance() []float64 {
	counts := make([]float64, r.numDims)
	total := 0.0
	var walk func(*node)
	walk = func(n *node) {
		if n == nil || n.leaf {
			return
		}
		counts[n.feature]++
		total++
		walk(n.left)
		walk(n.right)
	}
	for _, t := range r.trees {
		walk(t)
	}
	if total > 0 {
		for i := range counts {
			counts[i] /= total
		}
	}
	return counts
}
