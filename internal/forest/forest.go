// Package forest implements the Extra-Trees (extremely randomized trees)
// regression ensemble that Arrow uses as its surrogate model instead of a
// Gaussian process (Section IV-B, "Surrogate Model").
//
// Extra-Trees differ from random forests in two ways: each tree is grown on
// the full training set (no bootstrap) and split thresholds are drawn
// uniformly at random between the observed feature minimum and maximum,
// with the best of K random (feature, threshold) candidates chosen by
// variance reduction. This makes the model robust on the small, highly
// non-smooth response surfaces that break GP kernels — precisely the
// fragility the paper targets.
//
// The implementation is built for the refit-every-iteration loop the
// optimizer runs it in: trees grow concurrently on a worker pool (one
// deterministically derived seed per tree, so the fitted ensemble is
// bit-identical at any Parallelism setting), the training matrix is laid
// out column-major so split scoring scans contiguous memory, node
// partitions reuse per-worker scratch buffers, and fitted trees are
// flattened into index-based arrays instead of pointer-linked nodes.
package forest

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/parallel"
)

// ErrNoData is returned when fitting with no samples.
var ErrNoData = errors.New("forest: no training data")

// Config controls ensemble growth.
type Config struct {
	// NumTrees is the ensemble size. Zero means DefaultNumTrees.
	NumTrees int
	// MinSamplesSplit is the smallest node that may be split further.
	// Zero means DefaultMinSamplesSplit.
	MinSamplesSplit int
	// MaxFeatures is K, the number of random split candidates per node.
	// Zero means round(sqrt(d)) where d is the feature count.
	MaxFeatures int
	// MaxDepth bounds tree depth. Zero means unbounded.
	MaxDepth int
	// SampleRate is the per-tree unit keep probability used by FitSampled
	// and Refit: each tree draws a deterministic Bernoulli(SampleRate)
	// subset of the observation units and trains only on rows whose units
	// it kept, which is what makes delta-aware refits possible (a new
	// unit's rows touch only the trees that keep that unit). Zero or one
	// means no subsampling — every tree sees every row, and Fit ignores
	// the field entirely.
	SampleRate float64
	// Seed seeds the (deterministic) tree randomization. Each tree draws
	// its own RNG seed from this value, so the fitted ensemble does not
	// depend on how trees are scheduled across workers.
	Seed int64
	// Parallelism bounds the worker pool growing trees and answering
	// batched predictions. Zero means runtime.GOMAXPROCS(0); one forces
	// fully sequential operation. The fitted ensemble and every
	// prediction are bit-identical at any setting.
	Parallelism int
}

// Defaults for Config's zero values.
const (
	DefaultNumTrees        = 100
	DefaultMinSamplesSplit = 2
)

// Regressor is a fitted Extra-Trees ensemble.
type Regressor struct {
	trees       []tree
	numDims     int
	parallelism int

	// state carries the training snapshot and per-tree row-set
	// fingerprints of a FitSampled ensemble, enabling Refit. Nil for
	// plain Fit ensembles.
	state *sampleState
}

// tree is one fitted extra-tree, flattened into index-based parallel
// arrays (struct-of-arrays). Node i is a split on feature[i] at
// threshold[i] with children left[i]/right[i], or a leaf when feature[i]
// is leafMarker — leaves store their mean target in threshold[i]. The
// root is node 0. The layout keeps eval pointer-free and cache-friendly.
type tree struct {
	feature   []int32
	threshold []float64
	left      []int32
	right     []int32
}

// leafMarker flags a leaf in tree.feature.
const leafMarker = int32(-1)

// add appends a zeroed node and returns its index.
func (t *tree) add() int32 {
	t.feature = append(t.feature, 0)
	t.threshold = append(t.threshold, 0)
	t.left = append(t.left, 0)
	t.right = append(t.right, 0)
	return int32(len(t.feature) - 1)
}

// setLeaf turns node i into a leaf predicting value.
func (t *tree) setLeaf(i int32, value float64) {
	t.feature[i] = leafMarker
	t.threshold[i] = value
}

func (t *tree) eval(x []float64) float64 {
	i := int32(0)
	for {
		f := t.feature[i]
		if f < 0 {
			return t.threshold[i]
		}
		if x[f] <= t.threshold[i] {
			i = t.left[i]
		} else {
			i = t.right[i]
		}
	}
}

// treeSeeds derives one independent RNG seed per tree from the ensemble
// seed with a splitmix64 sequence. The derivation is position-based, so
// tree t's randomness is the same no matter which worker grows it or in
// what order — the determinism contract behind Config.Parallelism.
func treeSeeds(seed int64, n int) []int64 {
	out := make([]int64, n)
	s := uint64(seed)
	for i := range out {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		out[i] = int64(z ^ (z >> 31))
	}
	return out
}

// validateTraining checks shape and finiteness of a training set and
// returns the feature dimensionality.
func validateTraining(xs [][]float64, ys []float64) (int, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("forest: %d rows but %d targets", len(xs), len(ys))
	}
	dims := len(xs[0])
	if dims == 0 {
		return 0, errors.New("forest: zero-dimensional features")
	}
	for i, row := range xs {
		if len(row) != dims {
			return 0, fmt.Errorf("forest: ragged row %d (len %d, want %d)", i, len(row), dims)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("forest: non-finite feature at row %d col %d: %v", i, j, v)
			}
		}
	}
	for i, y := range ys {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			return 0, fmt.Errorf("forest: non-finite target at row %d: %v", i, y)
		}
	}
	return dims, nil
}

// resolveConfig applies Config's documented defaults for the given
// feature dimensionality. Refit compares resolved configs, so two configs
// that mean the same ensemble resolve equal.
func resolveConfig(cfg Config, dims int) (Config, error) {
	if cfg.NumTrees == 0 {
		cfg.NumTrees = DefaultNumTrees
	}
	if cfg.MinSamplesSplit == 0 {
		cfg.MinSamplesSplit = DefaultMinSamplesSplit
	}
	if cfg.MinSamplesSplit < 2 {
		return cfg, fmt.Errorf("forest: MinSamplesSplit %d < 2", cfg.MinSamplesSplit)
	}
	if cfg.MaxFeatures == 0 {
		cfg.MaxFeatures = int(math.Round(math.Sqrt(float64(dims))))
		if cfg.MaxFeatures < 1 {
			cfg.MaxFeatures = 1
		}
	}
	if cfg.MaxFeatures > dims {
		cfg.MaxFeatures = dims
	}
	if math.IsNaN(cfg.SampleRate) || cfg.SampleRate < 0 || cfg.SampleRate > 1 {
		return cfg, fmt.Errorf("forest: SampleRate %v outside [0,1]", cfg.SampleRate)
	}
	return cfg, nil
}

// buildColumns copies xs into a column-major matrix: cols[f*n+i] =
// xs[i][f]. Split scoring scans one feature over many rows, so this turns
// the hot loops into contiguous walks instead of row-pointer chases.
func buildColumns(xs [][]float64, dims int) []float64 {
	n := len(xs)
	cols := make([]float64, n*dims)
	for i, row := range xs {
		for f, v := range row {
			cols[f*n+i] = v
		}
	}
	return cols
}

// newGrower assembles a worker's growth state over the shared training
// data.
func newGrower(cfg Config, cols, ys []float64, n, dims int) *grower {
	return &grower{
		cols:        cols,
		ys:          ys,
		n:           n,
		dims:        dims,
		minSplit:    cfg.MinSamplesSplit,
		maxFeatures: cfg.MaxFeatures,
		maxDepth:    cfg.MaxDepth,
		indices:     make([]int, n),
		aux:         make([]int, n),
		featOrder:   make([]int, dims),
	}
}

// Fit grows the ensemble on feature rows xs and targets ys. Every tree
// trains on the full training set (the Extra-Trees prescription);
// SampleRate is ignored. Use FitSampled/Refit for the delta-aware
// subsampled ensemble.
func Fit(cfg Config, xs [][]float64, ys []float64) (*Regressor, error) {
	dims, err := validateTraining(xs, ys)
	if err != nil {
		return nil, err
	}
	cfg, err = resolveConfig(cfg, dims)
	if err != nil {
		return nil, err
	}

	n := len(xs)
	cols := buildColumns(xs, dims)
	ysCopy := append([]float64(nil), ys...)

	seeds := treeSeeds(cfg.Seed, cfg.NumTrees)
	trees := make([]tree, cfg.NumTrees)
	parallel.DoWithScratch(cfg.NumTrees, cfg.Parallelism,
		func() *grower { return newGrower(cfg, cols, ysCopy, n, dims) },
		func(t int, g *grower) {
			g.growTree(&trees[t], &splitmix{state: uint64(seeds[t])})
		})
	return &Regressor{trees: trees, numDims: dims, parallelism: cfg.Parallelism}, nil
}

// grower holds one worker's reusable growth state. The training data
// (cols, ys) is shared read-only across workers; the scratch buffers are
// worker-private and reused for every tree the worker grows.
type grower struct {
	cols []float64 // column-major features, shared read-only
	ys   []float64 // targets, shared read-only
	n    int
	dims int

	minSplit    int
	maxFeatures int
	maxDepth    int

	rng *splitmix // current tree's RNG
	t   *tree     // current tree under construction

	indices   []int // row indices, partitioned in place during growth
	aux       []int // stable-partition staging buffer
	featOrder []int // partial Fisher-Yates scratch for feature sampling
}

// growTree grows one tree over the full training set with its own RNG
// into out. Scratch state is reset first so the result depends only on
// the data and the seed, never on which trees this worker grew before.
func (g *grower) growTree(out *tree, rng *splitmix) {
	for i := range g.indices {
		g.indices[i] = i
	}
	g.growPrepared(out, rng, g.n)
}

// growTreeOn grows one tree over the given row subset (ascending row
// indices). The subset is copied into the worker's index scratch, so rows
// is left untouched for fingerprinting.
func (g *grower) growTreeOn(out *tree, rng *splitmix, rows []int) {
	copy(g.indices[:len(rows)], rows)
	g.growPrepared(out, rng, len(rows))
}

// growPrepared grows a tree over the first n entries of g.indices, which
// the caller has just filled.
func (g *grower) growPrepared(out *tree, rng *splitmix, n int) {
	for i := range g.featOrder {
		g.featOrder[i] = i
	}
	// A binary tree over n samples has at most 2n-1 nodes; reserving that
	// up front makes node appends allocation-free.
	maxNodes := 2*n - 1
	out.feature = make([]int32, 0, maxNodes)
	out.threshold = make([]float64, 0, maxNodes)
	out.left = make([]int32, 0, maxNodes)
	out.right = make([]int32, 0, maxNodes)
	g.rng = rng
	g.t = out
	g.grow(0, n, 0)
	g.rng = nil
	g.t = nil
}

// grow builds the subtree over g.indices[lo:hi] and returns its node
// index. The index segment is partitioned in place as splits are chosen.
func (g *grower) grow(lo, hi, depth int) int32 {
	t := g.t
	idx := t.add()
	seg := g.indices[lo:hi]
	if len(seg) < g.minSplit || (g.maxDepth > 0 && depth >= g.maxDepth) || g.constantTargets(seg) {
		t.setLeaf(idx, g.meanTarget(seg))
		return idx
	}

	// Node target totals, computed once: each candidate split scores by
	// accumulating its left child only and deriving the right child as
	// (total - left). Halves the scoring flops versus two-sided sums.
	var total, totalSq float64
	for _, i := range seg {
		y := g.ys[i]
		total += y
		totalSq += y * y
	}

	bestScore := math.Inf(-1)
	bestFeature := -1
	bestThreshold := 0.0

	// Draw K distinct candidate features (without replacement when K < d).
	candidates := g.sampleFeatures()
	for _, f := range candidates {
		col := g.cols[f*g.n : (f+1)*g.n]
		flo, fhi := featureRange(col, seg)
		if fhi <= flo {
			continue // constant feature in this node
		}
		threshold := flo + g.rng.float64()*(fhi-flo)
		// Left-child sums, accumulated branchlessly: copysign turns the
		// comparison into an exact 0/1 mask, so there is no data-dependent
		// branch to mispredict (the comparison is a coin flip on random
		// thresholds) and the summation order — hence the result — is
		// identical to the naive masked loop.
		var nL, sumL, sumSqL float64
		for _, i := range seg {
			m := 0.5 + math.Copysign(0.5, threshold-col[i]) // 1 if col[i] <= threshold, else 0
			y := m * g.ys[i]
			nL += m
			sumL += y
			sumSqL += y * g.ys[i]
		}
		nR := float64(len(seg)) - nL
		if nL == 0 || nR == 0 {
			continue
		}
		sumR := total - sumL
		sumSqR := totalSq - sumSqL
		// The CART variance-reduction criterion, minus the parent
		// variance (constant across candidates) and the 1/n weighting:
		// maximizing it picks the same split as the full expression.
		score := -((sumSqL - sumL*sumL/nL) + (sumSqR - sumR*sumR/nR))
		if score > bestScore {
			bestScore = score
			bestFeature = f
			bestThreshold = threshold
		}
	}
	if bestFeature < 0 {
		// Every candidate feature was constant in this node.
		t.setLeaf(idx, g.meanTarget(seg))
		return idx
	}

	nL := g.partition(lo, hi, bestFeature, bestThreshold)
	if nL == 0 || nL == len(seg) {
		t.setLeaf(idx, g.meanTarget(seg))
		return idx
	}
	left := g.grow(lo, lo+nL, depth+1)
	right := g.grow(lo+nL, hi, depth+1)
	// t.add may have grown the arrays since idx was reserved; write
	// through g.t, not a stale slice header.
	g.t.feature[idx] = int32(bestFeature)
	g.t.threshold[idx] = bestThreshold
	g.t.left[idx] = left
	g.t.right[idx] = right
	return idx
}

// partition stably partitions g.indices[lo:hi] into rows with
// feature <= threshold followed by the rest, via the worker's staging
// buffer, and returns the left-side count. Stability keeps the row order
// inside each child deterministic.
func (g *grower) partition(lo, hi, feature int, threshold float64) int {
	col := g.cols[feature*g.n : (feature+1)*g.n]
	seg := g.indices[lo:hi]
	aux := g.aux[:0]
	nL := 0
	for _, i := range seg {
		if col[i] <= threshold {
			seg[nL] = i
			nL++
		} else {
			aux = append(aux, i)
		}
	}
	copy(seg[nL:], aux)
	return nL
}

// sampleFeatures draws maxFeatures distinct features in ascending order.
// When K < d it runs a partial Fisher-Yates over the worker's persistent
// permutation scratch — K swaps, no per-node allocation (the old
// implementation built a full rng.Perm(d) each node and sorted a slice of
// it). The candidate order is whatever the shuffle produced; it is
// deterministic given the tree seed, which is all the split selection
// needs.
func (g *grower) sampleFeatures() []int {
	k, d := g.maxFeatures, g.dims
	order := g.featOrder
	if k >= d {
		// featOrder is permuted only by the k < d path, and k is fixed
		// per fit, so here it is still the identity.
		return order
	}
	for j := 0; j < k; j++ {
		r := j + g.rng.intn(d-j)
		order[j], order[r] = order[r], order[j]
	}
	return order[:k]
}

// featureRange scans one feature column over the node's rows. The builtin
// min/max compile to branchless float instructions, and the two-way
// unroll runs two independent min/max chains so the scan is bounded by
// throughput, not the latency of one serial chain.
func featureRange(col []float64, seg []int) (lo, hi float64) {
	lo0, hi0 := math.Inf(1), math.Inf(-1)
	lo1, hi1 := lo0, hi0
	k := 0
	for ; k+1 < len(seg); k += 2 {
		v0, v1 := col[seg[k]], col[seg[k+1]]
		lo0 = min(lo0, v0)
		hi0 = max(hi0, v0)
		lo1 = min(lo1, v1)
		hi1 = max(hi1, v1)
	}
	if k < len(seg) {
		v := col[seg[k]]
		lo0 = min(lo0, v)
		hi0 = max(hi0, v)
	}
	return min(lo0, lo1), max(hi0, hi1)
}

func (g *grower) constantTargets(seg []int) bool {
	first := g.ys[seg[0]]
	for _, i := range seg[1:] {
		if g.ys[i] != first {
			return false
		}
	}
	return true
}

func (g *grower) meanTarget(seg []int) float64 {
	sum := 0.0
	for _, i := range seg {
		sum += g.ys[i]
	}
	return sum / float64(len(seg))
}

// Predict returns the ensemble mean at x.
func (r *Regressor) Predict(x []float64) (float64, error) {
	mean, _, err := r.PredictWithVariance(x)
	return mean, err
}

// PredictWithVariance returns the mean and variance of the per-tree
// predictions at x. The variance is the ensemble's (epistemic) disagreement
// and plays the role the GP posterior variance plays for Naive BO.
func (r *Regressor) PredictWithVariance(x []float64) (mean, variance float64, err error) {
	if len(x) != r.numDims {
		return 0, 0, fmt.Errorf("forest: query dim %d, want %d", len(x), r.numDims)
	}
	sum, sumSq := 0.0, 0.0
	for i := range r.trees {
		v := r.trees[i].eval(x)
		sum += v
		sumSq += v * v
	}
	n := float64(len(r.trees))
	mean = sum / n
	variance = sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance, nil
}

// PredictBatch returns the ensemble mean at every row of xs, spreading
// rows over the fit-time worker pool. Each row's trees are summed in
// ensemble order, so the results are bit-identical to per-row Predict
// calls at any Parallelism. When out has enough capacity it is reused as
// the result buffer, making steady-state batch prediction allocation-free.
func (r *Regressor) PredictBatch(xs [][]float64, out []float64) ([]float64, error) {
	for i, x := range xs {
		if len(x) != r.numDims {
			return nil, fmt.Errorf("forest: query row %d dim %d, want %d", i, len(x), r.numDims)
		}
	}
	if cap(out) >= len(xs) {
		out = out[:len(xs)]
	} else {
		out = make([]float64, len(xs))
	}
	parallel.Do(len(xs), r.parallelism, func(i int) {
		sum := 0.0
		for t := range r.trees {
			sum += r.trees[t].eval(xs[i])
		}
		out[i] = sum / float64(len(r.trees))
	})
	return out, nil
}

// NumTrees returns the ensemble size.
func (r *Regressor) NumTrees() int { return len(r.trees) }

// FeatureImportance returns, per feature, the fraction of internal nodes
// across the ensemble that split on it. It is a cheap diagnostic used by
// the study harness to report which low-level metrics the surrogate leans
// on (Section IV-A's feature-selection discussion). The flat node layout
// makes this a linear scan — no tree walk.
func (r *Regressor) FeatureImportance() []float64 {
	counts := make([]float64, r.numDims)
	total := 0.0
	for t := range r.trees {
		for _, f := range r.trees[t].feature {
			if f >= 0 {
				counts[f]++
				total++
			}
		}
	}
	if total > 0 {
		for i := range counts {
			counts[i] /= total
		}
	}
	return counts
}
