package forest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickEnsembleMeanWithinLeafBounds: for random small datasets, the
// ensemble prediction stays inside the convex hull of targets and the
// variance stays non-negative.
func TestQuickEnsembleInvariants(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8) bool {
		n := int(nRaw%30) + 1
		d := int(dRaw%5) + 1
		rng := rand.New(rand.NewSource(seed))
		xs := make([][]float64, n)
		ys := make([]float64, n)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = make([]float64, d)
			for j := range xs[i] {
				xs[i][j] = rng.NormFloat64()
			}
			ys[i] = rng.NormFloat64() * 5
			minY = math.Min(minY, ys[i])
			maxY = math.Max(maxY, ys[i])
		}
		r, err := Fit(Config{NumTrees: 12, Seed: seed}, xs, ys)
		if err != nil {
			return false
		}
		for q := 0; q < 5; q++ {
			x := make([]float64, d)
			for j := range x {
				x[j] = rng.NormFloat64() * 2
			}
			mean, variance, err := r.PredictWithVariance(x)
			if err != nil {
				return false
			}
			if mean < minY-1e-9 || mean > maxY+1e-9 || variance < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickImportancesSumToOne: whenever any split exists, the feature
// importances form a distribution.
func TestQuickImportancesSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([][]float64, 20)
		ys := make([]float64, 20)
		for i := range xs {
			xs[i] = []float64{rng.Float64(), rng.Float64()}
			ys[i] = xs[i][0]
		}
		r, err := Fit(Config{NumTrees: 10, Seed: seed}, xs, ys)
		if err != nil {
			return false
		}
		imp := r.FeatureImportance()
		sum := 0.0
		for _, v := range imp {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
