package forest

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestFitEmpty(t *testing.T) {
	if _, err := Fit(Config{}, nil, nil); !errors.Is(err, ErrNoData) {
		t.Errorf("error = %v, want ErrNoData", err)
	}
}

func TestFitLengthMismatch(t *testing.T) {
	if _, err := Fit(Config{}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should fail")
	}
}

func TestFitRaggedRows(t *testing.T) {
	if _, err := Fit(Config{}, [][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should fail")
	}
}

func TestFitRejectsNaN(t *testing.T) {
	if _, err := Fit(Config{}, [][]float64{{math.NaN()}}, []float64{1}); err == nil {
		t.Error("NaN feature should fail")
	}
	if _, err := Fit(Config{}, [][]float64{{1}}, []float64{math.Inf(1)}); err == nil {
		t.Error("Inf target should fail")
	}
}

func TestFitRejectsBadMinSamplesSplit(t *testing.T) {
	if _, err := Fit(Config{MinSamplesSplit: 1}, [][]float64{{1}}, []float64{1}); err == nil {
		t.Error("MinSamplesSplit=1 should fail")
	}
}

func TestSingleSamplePredictsConstant(t *testing.T) {
	r, err := Fit(Config{NumTrees: 10, Seed: 1}, [][]float64{{3, 4}}, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Predict([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("Predict = %v, want 7", got)
	}
}

func TestConstantTargets(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{5, 5, 5, 5}
	r, err := Fit(Config{NumTrees: 20, Seed: 2}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	mean, variance, err := r.PredictWithVariance([]float64{2.5})
	if err != nil {
		t.Fatal(err)
	}
	if mean != 5 || variance != 0 {
		t.Errorf("constant targets: mean=%v var=%v, want 5, 0", mean, variance)
	}
}

func TestPredictDimensionMismatch(t *testing.T) {
	r, err := Fit(Config{NumTrees: 5, Seed: 3}, [][]float64{{1, 2}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Predict([]float64{1}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([][]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = xs[i][0]*2 + rng.NormFloat64()*0.1
	}
	a, err := Fit(Config{NumTrees: 25, Seed: 77}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(Config{NumTrees: 25, Seed: 77}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64(), rng.Float64()}
		pa, _ := a.Predict(q)
		pb, _ := b.Predict(q)
		if pa != pb {
			t.Fatalf("same seed, different predictions: %v vs %v", pa, pb)
		}
	}
}

// TestPredictionWithinTargetRangeProperty: tree leaves average training
// targets, so every prediction must lie inside [min(y), max(y)].
func TestPredictionWithinTargetRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		dim := 1 + rng.Intn(5)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = make([]float64, dim)
			for j := range xs[i] {
				xs[i][j] = rng.NormFloat64()
			}
			ys[i] = rng.NormFloat64() * 10
			minY = math.Min(minY, ys[i])
			maxY = math.Max(maxY, ys[i])
		}
		r, err := Fit(Config{NumTrees: 15, Seed: int64(trial)}, xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 10; q++ {
			x := make([]float64, dim)
			for j := range x {
				x[j] = rng.NormFloat64() * 2
			}
			pred, err := r.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			if pred < minY-1e-9 || pred > maxY+1e-9 {
				t.Fatalf("prediction %v outside target range [%v, %v]", pred, minY, maxY)
			}
		}
	}
}

func TestVarianceNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([][]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i] = []float64{rng.Float64() * 4}
		ys[i] = math.Sin(xs[i][0]) + rng.NormFloat64()*0.2
	}
	r, err := Fit(Config{NumTrees: 30, Seed: 12}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0.0; q < 4; q += 0.1 {
		_, variance, err := r.PredictWithVariance([]float64{q})
		if err != nil {
			t.Fatal(err)
		}
		if variance < 0 {
			t.Fatalf("variance %v < 0 at %v", variance, q)
		}
	}
}

// TestLearnsStepFunction: Extra-Trees should capture a sharp cliff — the
// exact shape GP kernels smooth over, and the reason the paper picks trees.
func TestLearnsStepFunction(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for x := 0.0; x <= 1.0; x += 0.02 {
		xs = append(xs, []float64{x})
		y := 1.0
		if x > 0.6 {
			y = 10.0
		}
		ys = append(ys, y)
	}
	r, err := Fit(Config{NumTrees: 50, Seed: 13}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	low, err := r.Predict([]float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	high, err := r.Predict([]float64{0.9})
	if err != nil {
		t.Fatal(err)
	}
	if low > 2 {
		t.Errorf("below cliff: predicted %v, want ~1", low)
	}
	if high < 8 {
		t.Errorf("above cliff: predicted %v, want ~10", high)
	}
}

func TestLearnsInteraction(t *testing.T) {
	// y depends on x0 only when x1 > 0.5 — requires axis splits on both.
	rng := rand.New(rand.NewSource(14))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 400; i++ {
		x0, x1 := rng.Float64(), rng.Float64()
		y := 0.0
		if x1 > 0.5 {
			y = 5 * x0
		}
		xs = append(xs, []float64{x0, x1})
		ys = append(ys, y)
	}
	r, err := Fit(Config{NumTrees: 60, Seed: 15, MaxFeatures: 2}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	on, _ := r.Predict([]float64{0.9, 0.9})
	off, _ := r.Predict([]float64{0.9, 0.1})
	if on < 3 {
		t.Errorf("interaction on: %v, want ~4.5", on)
	}
	if off > 1.5 {
		t.Errorf("interaction off: %v, want ~0", off)
	}
}

func TestMaxDepthLimitsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	xs := make([][]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = []float64{rng.Float64()}
		ys[i] = rng.Float64()
	}
	shallow, err := Fit(Config{NumTrees: 10, Seed: 17, MaxDepth: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// A depth-1 tree has at most 2 leaves -> predictions take few values.
	seen := map[float64]bool{}
	for q := 0.0; q < 1; q += 0.01 {
		p, _ := shallow.Predict([]float64{q})
		seen[p] = true
	}
	// 10 trees x 2 leaves each -> at most 2^10 combinations, but in
	// practice the ensemble mean over a 1-D grid takes far fewer values
	// than an unbounded forest would; sanity-check it's collapsed.
	if len(seen) > 40 {
		t.Errorf("depth-1 ensemble produced %d distinct predictions", len(seen))
	}
}

func TestNumTrees(t *testing.T) {
	r, err := Fit(Config{NumTrees: 7, Seed: 18}, [][]float64{{1}, {2}}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumTrees() != 7 {
		t.Errorf("NumTrees = %d", r.NumTrees())
	}
	rDefault, err := Fit(Config{Seed: 18}, [][]float64{{1}, {2}}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if rDefault.NumTrees() != DefaultNumTrees {
		t.Errorf("default NumTrees = %d, want %d", rDefault.NumTrees(), DefaultNumTrees)
	}
}

func TestFeatureImportanceIdentifiesSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 300; i++ {
		signal := rng.Float64()
		noise := rng.Float64()
		xs = append(xs, []float64{signal, noise})
		ys = append(ys, signal*10)
	}
	r, err := Fit(Config{NumTrees: 40, Seed: 20, MaxFeatures: 2}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	imp := r.FeatureImportance()
	if len(imp) != 2 {
		t.Fatalf("importance len %d", len(imp))
	}
	if imp[0] <= imp[1] {
		t.Errorf("signal feature importance %v should exceed noise %v", imp[0], imp[1])
	}
	if sum := imp[0] + imp[1]; math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v", sum)
	}
}

func TestFitAccuracyOnSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var xs [][]float64
	var ys []float64
	f := func(x0, x1 float64) float64 { return 3*x0 - 2*x1 + x0*x1 }
	for i := 0; i < 500; i++ {
		x0, x1 := rng.Float64(), rng.Float64()
		xs = append(xs, []float64{x0, x1})
		ys = append(ys, f(x0, x1))
	}
	r, err := Fit(Config{NumTrees: 80, Seed: 22, MaxFeatures: 2}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	var sse, n float64
	for i := 0; i < 100; i++ {
		x0, x1 := rng.Float64(), rng.Float64()
		pred, err := r.Predict([]float64{x0, x1})
		if err != nil {
			t.Fatal(err)
		}
		d := pred - f(x0, x1)
		sse += d * d
		n++
	}
	if rmse := math.Sqrt(sse / n); rmse > 0.25 {
		t.Errorf("RMSE %v too high on smooth function", rmse)
	}
}
