package forest

import (
	"fmt"
	"runtime"
	"testing"
)

// syntheticTraining builds a training set shaped like the augmented
// surrogate's pairwise matrix (18*17 rows, 14 features).
func syntheticTraining(rows, dims int) ([][]float64, []float64) {
	xs := make([][]float64, rows)
	ys := make([]float64, rows)
	for i := range xs {
		xs[i] = make([]float64, dims)
		for j := range xs[i] {
			xs[i][j] = float64((i*31 + j*17) % 100)
		}
		ys[i] = float64(i % 13)
	}
	return xs, ys
}

// TestParallelFitBitIdentical is the determinism contract: the same seed
// must produce bit-identical trees and predictions whether the ensemble is
// grown sequentially or across a pool of workers. Run under -race this
// also proves the workers share no mutable state.
func TestParallelFitBitIdentical(t *testing.T) {
	xs, ys := syntheticTraining(18*17, 14)
	sequential, err := Fit(Config{Seed: 42, Parallelism: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 5, runtime.GOMAXPROCS(0) + 3} {
		parallel, err := Fit(Config{Seed: 42, Parallelism: workers}, xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if len(parallel.trees) != len(sequential.trees) {
			t.Fatalf("parallelism %d: %d trees, want %d", workers, len(parallel.trees), len(sequential.trees))
		}
		for ti := range sequential.trees {
			a, b := &sequential.trees[ti], &parallel.trees[ti]
			if len(a.feature) != len(b.feature) {
				t.Fatalf("parallelism %d: tree %d has %d nodes, want %d", workers, ti, len(b.feature), len(a.feature))
			}
			for n := range a.feature {
				if a.feature[n] != b.feature[n] || a.threshold[n] != b.threshold[n] ||
					a.left[n] != b.left[n] || a.right[n] != b.right[n] {
					t.Fatalf("parallelism %d: tree %d node %d differs", workers, ti, n)
				}
			}
		}
		for _, x := range xs[:20] {
			want, err := sequential.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			got, err := parallel.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("parallelism %d: prediction %v, want bit-identical %v", workers, got, want)
			}
		}
	}
}

// TestPredictBatchMatchesPredict checks the batch path returns exactly the
// per-row results, at several worker counts, and reuses a caller buffer.
func TestPredictBatchMatchesPredict(t *testing.T) {
	xs, ys := syntheticTraining(120, 9)
	for _, workers := range []int{1, 0, 3} {
		model, err := Fit(Config{Seed: 7, NumTrees: 30, Parallelism: workers}, xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]float64, 2, len(xs)) // non-empty: must be reused, not appended to
		got, err := model.PredictBatch(xs, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(xs) {
			t.Fatalf("batch returned %d results, want %d", len(got), len(xs))
		}
		if &got[0] != &buf[:1][0] {
			t.Error("batch did not reuse the caller's buffer")
		}
		for i, x := range xs {
			want, err := model.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Fatalf("workers %d row %d: batch %v, Predict %v", workers, i, got[i], want)
			}
		}
	}
}

func TestPredictBatchDimensionMismatch(t *testing.T) {
	xs, ys := syntheticTraining(30, 4)
	model, err := Fit(Config{Seed: 1, NumTrees: 5}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.PredictBatch([][]float64{{1, 2}}, nil); err == nil {
		t.Fatal("expected a dimension error")
	}
}

// BenchmarkForestFitParallel measures the tentpole: one Extra-Trees fit at
// pairwise-training-set scale, sequential vs. worker pool.
func BenchmarkForestFitParallel(b *testing.B) {
	xs, ys := syntheticTraining(18*17, 14)
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("parallelism=%d", workers)
		if workers == 0 {
			name = fmt.Sprintf("parallelism=GOMAXPROCS(%d)", runtime.GOMAXPROCS(0))
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Fit(Config{Seed: int64(i), Parallelism: workers}, xs, ys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkForestPredictBatch measures one batched scoring pass at
// selection scale: 18 candidates x 17 sources rows through a 100-tree
// ensemble, with the output buffer reused across iterations.
func BenchmarkForestPredictBatch(b *testing.B) {
	xs, ys := syntheticTraining(18*17, 14)
	model, err := Fit(Config{Seed: 3}, xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	var out []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err = model.PredictBatch(xs, out)
		if err != nil {
			b.Fatal(err)
		}
	}
}
