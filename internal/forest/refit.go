// Delta-aware ensemble refits.
//
// The optimizer's loop appends a handful of training rows per iteration
// and refits; growing all hundred trees from scratch each time makes the
// refit cost proportional to the history. FitSampled changes the
// ensemble's sampling scheme so that Refit can make it proportional to
// the delta instead: each tree keeps a deterministic Bernoulli subset of
// the *observation units* (hash of tree seed and unit id), and trains
// only on rows whose units it kept. A newly measured unit's rows then
// land only in the trees that keep that unit — the rest of the ensemble
// is provably unchanged and is reused verbatim. Per-tree fingerprints
// over the kept row sets make "unchanged" an O(rows) check, and a
// fingerprint/config/prefix mismatch falls back to a full re-grow, so
// Refit is always bit-identical to FitSampled on the same inputs.
package forest

import (
	"fmt"

	"repro/internal/parallel"
)

// RefitInfo reports how a Refit call was satisfied, for telemetry.
type RefitInfo struct {
	// Incremental is true when the previous ensemble's training snapshot
	// was compatible (same resolved config, rows extended as a bitwise
	// prefix) and per-tree reuse was attempted. False means a full
	// re-grow.
	Incremental bool
	// ReusedTrees counts trees carried over verbatim because their
	// sampled row set did not change; TotalTrees is the ensemble size.
	ReusedTrees int
	TotalTrees  int
}

// sampleState is the training snapshot a FitSampled ensemble retains so a
// later Refit can detect what changed.
type sampleState struct {
	cfg   Config // resolved; Parallelism excluded from compatibility
	n     int
	dims  int
	cols  []float64 // column-major training matrix, stride n
	ys    []float64
	units [][2]int32
	fps   []uint64 // per-tree fingerprint of the sampled row set
}

// keepUnit hashes (tree seed, unit) to a uniform coin with keep
// probability rate. The hash is a splitmix64 finalizer over a
// position-based mix, so membership depends only on the seed and the unit
// id — never on row order or scheduling.
func keepUnit(seed int64, unit int32, rate float64) bool {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(uint32(unit))+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)*(1.0/(1<<53)) < rate
}

// fingerprintRows chains the kept row indices through a splitmix64-style
// mix. Two equal fingerprints mean the tree would train on the same rows.
func fingerprintRows(rows []int) uint64 {
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for _, r := range rows {
		h += uint64(r) + 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	}
	return h ^ (h >> 31)
}

// fullRowsFingerprint marks a tree that fell back to the full training
// set (fewer than two sampled rows). It depends on n, so any append
// re-grows such a tree.
func fullRowsFingerprint(n int) uint64 {
	return fingerprintRows([]int{-1, n})
}

// sampledRows computes each tree's kept row list. It returns one backing
// slab sliced per tree, plus the fingerprints. identity is the [0..n)
// list shared by trees that fall back to the full set.
func sampledRows(cfg Config, seeds []int64, units [][2]int32, n int) (perTree [][]int, fps []uint64) {
	numTrees := cfg.NumTrees
	perTree = make([][]int, numTrees)
	fps = make([]uint64, numTrees)

	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	if cfg.SampleRate == 0 || cfg.SampleRate == 1 {
		// No subsampling: every tree is the full-set Extra-Tree. Appends
		// change every fingerprint, so Refit degrades to a full re-grow.
		fullFP := fullRowsFingerprint(n)
		for t := range perTree {
			perTree[t] = identity
			fps[t] = fullFP
		}
		return perTree, fps
	}

	// Unit membership per tree, precomputed so the per-row check is two
	// slice loads instead of two hashes.
	maxUnit := int32(-1)
	for _, u := range units {
		if u[0] > maxUnit {
			maxUnit = u[0]
		}
		if u[1] > maxUnit {
			maxUnit = u[1]
		}
	}
	keep := make([]bool, maxUnit+1)

	counts := make([]int, numTrees)
	total := 0
	for t := 0; t < numTrees; t++ {
		for u := range keep {
			keep[u] = keepUnit(seeds[t], int32(u), cfg.SampleRate)
		}
		c := 0
		for _, u := range units {
			if keep[u[0]] && keep[u[1]] {
				c++
			}
		}
		counts[t] = c
		total += c
	}
	slab := make([]int, 0, total)
	for t := 0; t < numTrees; t++ {
		if counts[t] < 2 {
			// Too few sampled rows to grow anything useful: fall back to
			// the full training set for this tree.
			perTree[t] = identity
			fps[t] = fullRowsFingerprint(n)
			continue
		}
		for u := range keep {
			keep[u] = keepUnit(seeds[t], int32(u), cfg.SampleRate)
		}
		start := len(slab)
		for i, u := range units {
			if keep[u[0]] && keep[u[1]] {
				slab = append(slab, i)
			}
		}
		perTree[t] = slab[start:len(slab):len(slab)]
		fps[t] = fingerprintRows(perTree[t])
	}
	return perTree, fps
}

// validateUnits checks the per-row unit pairs FitSampled and Refit
// require.
func validateUnits(units [][2]int32, n int) error {
	if len(units) != n {
		return fmt.Errorf("forest: %d rows but %d unit pairs", n, len(units))
	}
	for i, u := range units {
		if u[0] < 0 || u[1] < 0 {
			return fmt.Errorf("forest: negative unit id in row %d: %v", i, u)
		}
	}
	return nil
}

// FitSampled grows a delta-aware ensemble: each tree trains on the rows
// whose observation units it keeps (Bernoulli cfg.SampleRate per unit,
// both of the row's units must be kept). units pairs each training row
// with the observation units it derives from — for a pairwise row
// (source obs, destination obs), for a self or warm-start row the same
// unit twice. The fitted Regressor retains its training snapshot so Refit
// can re-grow only the trees whose sampled rows changed.
func FitSampled(cfg Config, xs [][]float64, ys []float64, units [][2]int32) (*Regressor, error) {
	reg, _, err := Refit(nil, cfg, xs, ys, units)
	return reg, err
}

// Refit fits the same ensemble FitSampled(cfg, xs, ys, units) would —
// bit-identically — but reuses every tree of prev whose sampled row set
// is unchanged. Reuse applies when prev was fitted via FitSampled/Refit
// with the same resolved config (Parallelism aside) and (xs, ys, units)
// extend prev's training set as a bitwise prefix; anything else falls
// back to a full re-grow. prev is not mutated and remains usable for
// prediction; pass nil to fit from scratch.
func Refit(prev *Regressor, cfg Config, xs [][]float64, ys []float64, units [][2]int32) (*Regressor, RefitInfo, error) {
	dims, err := validateTraining(xs, ys)
	if err != nil {
		return nil, RefitInfo{}, err
	}
	cfg, err = resolveConfig(cfg, dims)
	if err != nil {
		return nil, RefitInfo{}, err
	}
	n := len(xs)
	if err := validateUnits(units, n); err != nil {
		return nil, RefitInfo{}, err
	}

	st := &sampleState{
		cfg:   cfg,
		n:     n,
		dims:  dims,
		cols:  buildColumns(xs, dims),
		ys:    append([]float64(nil), ys...),
		units: append([][2]int32(nil), units...),
	}
	seeds := treeSeeds(cfg.Seed, cfg.NumTrees)
	rows, fps := sampledRows(cfg, seeds, st.units, n)
	st.fps = fps

	info := RefitInfo{TotalTrees: cfg.NumTrees}
	var prevState *sampleState
	if prev != nil && prev.state != nil && compatible(prev.state, st) {
		info.Incremental = true
		prevState = prev.state
	}

	trees := make([]tree, cfg.NumTrees)
	reused := make([]bool, cfg.NumTrees)
	if prevState != nil {
		for t := range trees {
			if fps[t] == prevState.fps[t] {
				trees[t] = prev.trees[t]
				reused[t] = true
				info.ReusedTrees++
			}
		}
	}
	parallel.DoWithScratch(cfg.NumTrees, cfg.Parallelism,
		func() *grower { return newGrower(cfg, st.cols, st.ys, n, dims) },
		func(t int, g *grower) {
			if reused[t] {
				return
			}
			g.growTreeOn(&trees[t], &splitmix{state: uint64(seeds[t])}, rows[t])
		})
	return &Regressor{
		trees:       trees,
		numDims:     dims,
		parallelism: cfg.Parallelism,
		state:       st,
	}, info, nil
}

// compatible reports whether next's training set extends prev's under the
// same resolved ensemble config, which is the precondition for per-tree
// reuse. The prefix comparison is bitwise over features, targets, and
// unit pairs.
func compatible(prev, next *sampleState) bool {
	pc, nc := prev.cfg, next.cfg
	pc.Parallelism, nc.Parallelism = 0, 0
	if pc != nc || prev.dims != next.dims || prev.n > next.n {
		return false
	}
	for f := 0; f < prev.dims; f++ {
		prevCol := prev.cols[f*prev.n : (f+1)*prev.n]
		nextCol := next.cols[f*next.n : f*next.n+prev.n]
		for i, v := range prevCol {
			if nextCol[i] != v {
				return false
			}
		}
	}
	for i, y := range prev.ys {
		if next.ys[i] != y {
			return false
		}
	}
	for i, u := range prev.units {
		if next.units[i] != u {
			return false
		}
	}
	return true
}
