package forest

import (
	"math/rand"
	"reflect"
	"testing"
)

// pairTraining synthesizes a pairwise training set over numUnits
// observation units, shaped like the optimizer's pair cache: one row per
// ordered unit pair plus one self row per unit, with the row's unit pair
// recorded for sampling.
func pairTraining(rng *rand.Rand, numUnits, dims int) (xs [][]float64, ys []float64, units [][2]int32) {
	feat := make([][]float64, numUnits)
	for u := range feat {
		row := make([]float64, dims)
		for j := range row {
			row[j] = rng.Float64()
		}
		feat[u] = row
	}
	addRow := func(a, b int) {
		row := make([]float64, 0, 2*dims)
		row = append(row, feat[a]...)
		row = append(row, feat[b]...)
		xs = append(xs, row)
		ys = append(ys, feat[b][0]*10+feat[a][dims-1]+0.01*rng.NormFloat64())
		units = append(units, [2]int32{int32(a), int32(b)})
	}
	// Measurement order: when unit k lands, its self row and its pairs
	// with every earlier unit append after everything already there —
	// the append-only growth the optimizer's cache produces.
	for k := 0; k < numUnits; k++ {
		addRow(k, k)
		for j := 0; j < k; j++ {
			addRow(j, k)
			addRow(k, j)
		}
	}
	return xs, ys, units
}

// rowsForUnits filters a full pair training set down to the rows whose
// units are both below limit, mimicking the append-only growth of the
// optimizer's cache as units get measured.
func rowsForUnits(xs [][]float64, ys []float64, units [][2]int32, limit int32) ([][]float64, []float64, [][2]int32) {
	var fx [][]float64
	var fy []float64
	var fu [][2]int32
	for i, u := range units {
		if u[0] < limit && u[1] < limit {
			fx = append(fx, xs[i])
			fy = append(fy, ys[i])
			fu = append(fu, u)
		}
	}
	return fx, fy, fu
}

func sampledConfig(seed int64) Config {
	return Config{NumTrees: 60, Seed: seed, SampleRate: 0.7, Parallelism: 1}
}

// TestRefitBitIdenticalToFitSampled grows the training set unit by unit
// and demands Refit reproduce FitSampled's trees exactly while actually
// reusing some of them.
func TestRefitBitIdenticalToFitSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs, ys, units := pairTraining(rng, 12, 4)
	cfg := sampledConfig(33)

	var prev *Regressor
	sawReuse := false
	for limit := int32(3); limit <= 12; limit++ {
		fx, fy, fu := rowsForUnits(xs, ys, units, limit)
		next, info, err := Refit(prev, cfg, fx, fy, fu)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if wantInc := prev != nil; info.Incremental != wantInc {
			t.Fatalf("limit %d: Incremental=%v, want %v", limit, info.Incremental, wantInc)
		}
		if info.Incremental && info.ReusedTrees > 0 {
			sawReuse = true
		}
		full, err := FitSampled(cfg, fx, fy, fu)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(next.trees, full.trees) {
			t.Fatalf("limit %d: refit trees diverge from full fit", limit)
		}
		prev = next
	}
	if !sawReuse {
		t.Fatal("no refit step reused any tree; sampling is not delta-aware")
	}
}

// TestRefitReusePreservesPredictions is the black-box version: posterior
// means and variances after a chain of refits match a from-scratch fit
// bitwise.
func TestRefitReusePreservesPredictions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs, ys, units := pairTraining(rng, 10, 3)
	cfg := sampledConfig(7)
	fx, fy, fu := rowsForUnits(xs, ys, units, 6)
	prev, err := FitSampled(cfg, fx, fy, fu)
	if err != nil {
		t.Fatal(err)
	}
	fx, fy, fu = rowsForUnits(xs, ys, units, 10)
	inc, _, err := Refit(prev, cfg, fx, fy, fu)
	if err != nil {
		t.Fatal(err)
	}
	full, err := FitSampled(cfg, fx, fy, fu)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		q := xs[rng.Intn(len(xs))]
		gm, gv, err := inc.PredictWithVariance(q)
		if err != nil {
			t.Fatal(err)
		}
		wm, wv, err := full.PredictWithVariance(q)
		if err != nil {
			t.Fatal(err)
		}
		if gm != wm || gv != wv {
			t.Fatalf("probe %d: incremental (%v, %v), full (%v, %v)", i, gm, gv, wm, wv)
		}
	}
}

// TestRefitFallsBackOnMismatch: a changed config or a rewritten prefix
// row must force (and report) a full re-grow that still matches
// FitSampled.
func TestRefitFallsBackOnMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs, ys, units := pairTraining(rng, 8, 3)
	cfg := sampledConfig(5)
	prev, err := FitSampled(cfg, xs, ys, units)
	if err != nil {
		t.Fatal(err)
	}

	// Different seed: the sampling scheme itself changes.
	other := cfg
	other.Seed = 6
	reg, info, err := Refit(prev, other, xs, ys, units)
	if err != nil {
		t.Fatal(err)
	}
	if info.Incremental || info.ReusedTrees != 0 {
		t.Fatalf("seed change: info %+v, want full refit", info)
	}
	full, err := FitSampled(other, xs, ys, units)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reg.trees, full.trees) {
		t.Fatal("seed change: trees diverge from full fit")
	}

	// Rewritten row: prefix no longer matches bitwise.
	mutated := make([][]float64, len(xs))
	copy(mutated, xs)
	mutated[0] = append([]float64(nil), xs[0]...)
	mutated[0][0] += 0.5
	if _, info, err = Refit(prev, cfg, mutated, ys, units); err != nil {
		t.Fatal(err)
	}
	if info.Incremental {
		t.Fatalf("prefix change: info %+v, want full refit", info)
	}

	// Shrunk training set: not an extension.
	if _, info, err = Refit(prev, cfg, xs[:len(xs)-1], ys[:len(ys)-1], units[:len(units)-1]); err != nil {
		t.Fatal(err)
	}
	if info.Incremental {
		t.Fatalf("shrink: info %+v, want full refit", info)
	}

	// A plain Fit ensemble has no snapshot to reuse.
	plain, err := Fit(cfg, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if _, info, err = Refit(plain, cfg, xs, ys, units); err != nil {
		t.Fatal(err)
	}
	if info.Incremental {
		t.Fatalf("plain prev: info %+v, want full refit", info)
	}
}

// TestFitSampledKeepAllMatchesFit: SampleRate 0 and 1 both mean "no
// subsampling", so the sampled ensemble must equal the plain Extra-Trees
// fit tree for tree.
func TestFitSampledKeepAllMatchesFit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs, ys, units := pairTraining(rng, 6, 3)
	for _, rate := range []float64{0, 1} {
		cfg := Config{NumTrees: 20, Seed: 9, SampleRate: rate, Parallelism: 1}
		sampled, err := FitSampled(cfg, xs, ys, units)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Fit(cfg, xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sampled.trees, plain.trees) {
			t.Fatalf("rate %v: sampled trees differ from plain Fit", rate)
		}
	}
}

// TestFitSampledParallelismInvariant: the ensemble is bit-identical at
// any worker-pool size, sampling included.
func TestFitSampledParallelismInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs, ys, units := pairTraining(rng, 9, 4)
	cfg := sampledConfig(13)
	sequential, err := FitSampled(cfg, xs, ys, units)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 5} {
		c := cfg
		c.Parallelism = workers
		got, err := FitSampled(c, xs, ys, units)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.trees, sequential.trees) {
			t.Fatalf("parallelism %d: trees diverge", workers)
		}
	}
}

// TestFitSampledValidation covers the unit-shape errors and bad rates.
func TestFitSampledValidation(t *testing.T) {
	xs := [][]float64{{1, 2}, {3, 4}}
	ys := []float64{1, 2}
	if _, err := FitSampled(Config{}, xs, ys, [][2]int32{{0, 0}}); err == nil {
		t.Error("unit count mismatch should fail")
	}
	if _, err := FitSampled(Config{}, xs, ys, [][2]int32{{0, 0}, {-1, 0}}); err == nil {
		t.Error("negative unit should fail")
	}
	if _, err := FitSampled(Config{SampleRate: 1.5}, xs, ys, [][2]int32{{0, 0}, {1, 1}}); err == nil {
		t.Error("rate > 1 should fail")
	}
}

// benchRefitState builds the cluster-scale (>=30 observed units)
// training set the acceptance criterion targets, plus its one-unit
// extension.
func benchRefitState(b *testing.B) (cfg Config, prevXs [][]float64, prevYs []float64, prevUnits [][2]int32, xs [][]float64, ys []float64, units [][2]int32, prev *Regressor) {
	rng := rand.New(rand.NewSource(19))
	xs, ys, units = pairTraining(rng, 33, 10)
	cfg = Config{NumTrees: 100, Seed: 3, SampleRate: 0.7}
	prevXs, prevYs, prevUnits = rowsForUnits(xs, ys, units, 32)
	var err error
	prev, err = FitSampled(cfg, prevXs, prevYs, prevUnits)
	if err != nil {
		b.Fatal(err)
	}
	return
}

// BenchmarkForestRefitIncremental measures the delta-aware refit after
// one new unit is measured at cluster scale: 32 observed units (1,056
// pair rows) growing to 33 (1,122 rows). Its Full twin re-grows every
// tree on the same inputs; the ratio is the incremental-refit speedup the
// PR claims.
func BenchmarkForestRefitIncremental(b *testing.B) {
	cfg, _, _, _, xs, ys, units, prev := benchRefitState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg, info, err := Refit(prev, cfg, xs, ys, units)
		if err != nil {
			b.Fatal(err)
		}
		if !info.Incremental || info.ReusedTrees == 0 {
			b.Fatalf("refit was not incremental: %+v", info)
		}
		_ = reg
	}
}

// BenchmarkForestRefitFull is the from-scratch sampled baseline on the
// same grown training set — the cost of Refit's fallback path.
func BenchmarkForestRefitFull(b *testing.B) {
	cfg, _, _, _, xs, ys, units, _ := benchRefitState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitSampled(cfg, xs, ys, units); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestRefitLegacy is the pre-incremental per-iteration cost on
// the same grown training set: every tree re-grown on every row, exactly
// what each Observe paid before delta-aware refits. Incremental vs Legacy
// is the end-to-end refit speedup.
func BenchmarkForestRefitLegacy(b *testing.B) {
	cfg, _, _, _, xs, ys, _, _ := benchRefitState(b)
	cfg.SampleRate = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(cfg, xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
