package forest

// splitmix is the per-tree random source. math/rand's lagged-Fibonacci
// source pays a ~600-round warm-up on every NewSource, which the
// refit-every-iteration loop would pay 100 times per fit; splitmix64
// seeds for free, passes BigCrush, and its two draws below are exactly
// the ones tree growth needs. Deterministic and platform-independent.
type splitmix struct{ state uint64 }

func (r *splitmix) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1) with 53 random bits.
func (r *splitmix) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform draw in [0, n) for n > 0. Feature counts are
// tiny, so the multiply-shift range reduction's modulo bias (< 2^-32 for
// n < 2^32) is far below any observable effect; it avoids the rejection
// loop a perfectly unbiased reduction needs.
func (r *splitmix) intn(n int) int {
	return int((uint64(uint32(r.next())) * uint64(n)) >> 32)
}
