package gp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
)

// anisotropicData generates y = f(x0) with x1 pure noise: an ARD fit
// should discover that dimension 1 is irrelevant.
func anisotropicData(n int, seed int64) (xs [][]float64, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		x0 := rng.Float64()
		x1 := rng.Float64()
		xs = append(xs, []float64{x0, x1})
		ys = append(ys, math.Sin(4*x0))
	}
	return xs, ys
}

func TestARDImprovesLogML(t *testing.T) {
	xs, ys := anisotropicData(25, 1)
	iso, err := Fit(Config{Kernel: kernel.Matern52}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	ard, err := Fit(Config{Kernel: kernel.Matern52, ARD: true}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if ard.LogMarginalLikelihood() < iso.LogMarginalLikelihood() {
		t.Errorf("ARD logML %.3f below isotropic %.3f — coordinate ascent must not regress",
			ard.LogMarginalLikelihood(), iso.LogMarginalLikelihood())
	}
}

func TestARDDiscoversIrrelevantDimension(t *testing.T) {
	xs, ys := anisotropicData(30, 2)
	ard, err := Fit(Config{Kernel: kernel.Matern52, ARD: true}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	scales := ard.ARDScales()
	if scales == nil {
		// ARD may keep the isotropic fit when it already maximizes the
		// marginal likelihood; for this data it should not.
		t.Fatal("ARD fit kept the isotropic kernel")
	}
	if scales[1] <= scales[0] {
		t.Errorf("irrelevant dimension scale %.3f should exceed signal dimension %.3f", scales[1], scales[0])
	}
}

func TestARDImprovesHeldOutPrediction(t *testing.T) {
	xs, ys := anisotropicData(30, 3)
	iso, err := Fit(Config{Kernel: kernel.Matern52}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	ard, err := Fit(Config{Kernel: kernel.Matern52, ARD: true}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var sseIso, sseARD float64
	for i := 0; i < 60; i++ {
		x0, x1 := rng.Float64(), rng.Float64()
		want := math.Sin(4 * x0)
		mi, _, err := iso.Predict([]float64{x0, x1})
		if err != nil {
			t.Fatal(err)
		}
		ma, _, err := ard.Predict([]float64{x0, x1})
		if err != nil {
			t.Fatal(err)
		}
		sseIso += (mi - want) * (mi - want)
		sseARD += (ma - want) * (ma - want)
	}
	// ARD should not be materially worse; usually it is clearly better.
	if sseARD > sseIso*1.2 {
		t.Errorf("ARD SSE %.4f much worse than isotropic %.4f", sseARD, sseIso)
	}
}

func TestARDSingleDimensionIsNoop(t *testing.T) {
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{1, 2, 3}
	g, err := Fit(Config{Kernel: kernel.RBF, ARD: true}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if g.ARDScales() != nil {
		t.Error("1-D ARD should fall back to isotropic")
	}
}

func TestNewARDValidation(t *testing.T) {
	if _, err := kernel.NewARD(kernel.RBF, nil, 1); err == nil {
		t.Error("empty scales should fail")
	}
	if _, err := kernel.NewARD(kernel.RBF, []float64{1, -1}, 1); err == nil {
		t.Error("negative scale should fail")
	}
	if _, err := kernel.NewARD(kernel.Kind(0), []float64{1}, 1); err == nil {
		t.Error("bad kind should fail")
	}
}

func TestARDKernelDimMismatch(t *testing.T) {
	k, err := kernel.NewARD(kernel.RBF, []float64{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Eval([]float64{1}, []float64{2}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestARDKernelAnisotropy(t *testing.T) {
	// With a long scale on dim 1, movement along dim 1 decays correlation
	// far less than equal movement along dim 0.
	k, err := kernel.NewARD(kernel.Matern52, []float64{0.5, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	origin := []float64{0, 0}
	alongFast, err := k.Eval(origin, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	alongSlow, err := k.Eval(origin, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if alongSlow <= alongFast {
		t.Errorf("long-scale dimension should retain more correlation: %v vs %v", alongSlow, alongFast)
	}
}
