package gp

import (
	"math/rand"
	"testing"
)

// batchTrainingSet builds a catalog-scale fit and a query grid.
func batchTrainingSet(t *testing.T) (*GP, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	xs := make([][]float64, 18)
	ys := make([]float64, 18)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		ys[i] = xs[i][0]*3 - xs[i][1] + 0.1*rng.NormFloat64()
	}
	model := fitSimple(t, xs, ys)
	queries := make([][]float64, 40)
	for i := range queries {
		queries[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	return model, queries
}

// TestPredictBatchMatchesPredict checks the batch path returns exactly the
// per-row posterior at every worker count; under -race it also checks the
// workers share no mutable state.
func TestPredictBatchMatchesPredict(t *testing.T) {
	model, queries := batchTrainingSet(t)
	for _, workers := range []int{1, 0, 3} {
		means, variances, err := model.PredictBatch(queries, workers, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(means) != len(queries) || len(variances) != len(queries) {
			t.Fatalf("got %d/%d results, want %d", len(means), len(variances), len(queries))
		}
		for i, x := range queries {
			mean, variance, err := model.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			if means[i] != mean || variances[i] != variance {
				t.Fatalf("workers %d row %d: batch (%v, %v), Predict (%v, %v)",
					workers, i, means[i], variances[i], mean, variance)
			}
		}
	}
}

func TestPredictBatchReusesBuffers(t *testing.T) {
	model, queries := batchTrainingSet(t)
	meansBuf := make([]float64, 0, len(queries))
	varsBuf := make([]float64, 0, len(queries))
	means, variances, err := model.PredictBatch(queries, 1, meansBuf, varsBuf)
	if err != nil {
		t.Fatal(err)
	}
	if &means[0] != &meansBuf[:1][0] || &variances[0] != &varsBuf[:1][0] {
		t.Error("batch did not reuse the caller's buffers")
	}
}

func TestPredictBatchDimensionMismatch(t *testing.T) {
	model, _ := batchTrainingSet(t)
	if _, _, err := model.PredictBatch([][]float64{{1}}, 1, nil, nil); err == nil {
		t.Fatal("expected a dimension error")
	}
}
