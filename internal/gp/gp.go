// Package gp implements Gaussian-process regression, the surrogate model of
// Naive BO (CherryPick, Section III of the paper).
//
// The regressor standardizes its targets, factors the jittered kernel Gram
// matrix with a Cholesky decomposition, and exposes the posterior mean and
// variance at arbitrary points. Hyperparameters (length scale, signal
// variance, noise variance) are selected by maximizing the log marginal
// likelihood over a small grid, mirroring the "automatic model selection"
// practice the paper cites; the kernel family itself remains a caller
// choice because that choice is exactly what Figure 7 studies.
package gp

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/parallel"
)

// ErrNoData is returned when fitting with no observations.
var ErrNoData = errors.New("gp: no training data")

// Config controls a GP fit.
type Config struct {
	// Kernel selects the covariance family. Zero value is invalid; use
	// kernel.Matern52 for the CherryPick default.
	Kernel kernel.Kind

	// LengthScales is the grid of candidate length scales. Empty means
	// DefaultLengthScales. Features are expected to be min-max scaled to
	// [0,1] by the caller, so scales around 0.1–2 cover the useful range.
	LengthScales []float64

	// NoiseVars is the grid of candidate noise variances relative to unit
	// target variance. Empty means DefaultNoiseVars.
	NoiseVars []float64

	// FixedLengthScale skips the grid search and uses exactly this scale
	// (with unit signal variance and the first noise candidate). Zero
	// means "search the grid".
	FixedLengthScale float64

	// ARD turns on automatic relevance determination: after the isotropic
	// grid fit, per-dimension length scales are refined by coordinate
	// ascent on the log marginal likelihood. Dimensions that do not
	// matter get long scales and stop influencing the posterior.
	ARD bool
	// ARDPasses is the number of coordinate-ascent sweeps (zero means
	// DefaultARDPasses).
	ARDPasses int
}

// DefaultARDPasses is the coordinate-ascent sweep count for ARD.
const DefaultARDPasses = 2

// ardMultipliers is the per-dimension scale grid, relative to the
// isotropic optimum.
func ardMultipliers() []float64 {
	return []float64{0.25, 0.5, 1, 2, 4, 8}
}

// DefaultLengthScales is the length-scale grid used when Config leaves it
// empty.
func DefaultLengthScales() []float64 {
	return []float64{0.1, 0.2, 0.35, 0.5, 0.75, 1, 1.5, 2.5}
}

// DefaultNoiseVars is the noise grid used when Config leaves it empty.
func DefaultNoiseVars() []float64 {
	return []float64{1e-4, 1e-3, 1e-2, 5e-2}
}

// GP is a fitted Gaussian-process regressor.
type GP struct {
	kern    *kernel.Kernel
	x       [][]float64
	alpha   []float64 // (K + sigma_n^2 I)^{-1} (y - mean), in standardized units
	chol    *mat.Cholesky
	yMean   float64
	yStd    float64
	noise   float64
	logML   float64
	numObs  int
	numDims int
}

// Fit trains a GP on xs (feature rows, ideally scaled to [0,1]) and targets
// ys. It searches the configured hyperparameter grid and keeps the fit with
// the highest log marginal likelihood.
func Fit(cfg Config, xs [][]float64, ys []float64) (*GP, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("gp: %d rows but %d targets: %w", len(xs), len(ys), mat.ErrShape)
	}
	dims := len(xs[0])
	for i, row := range xs {
		if len(row) != dims {
			return nil, fmt.Errorf("gp: ragged row %d: %w", i, mat.ErrShape)
		}
	}

	yMean, yStd := standardizeParams(ys)
	standardized := make([]float64, len(ys))
	for i, y := range ys {
		standardized[i] = (y - yMean) / yStd
	}

	scales, noises := gridScalesNoises(cfg)

	var best *GP
	for _, ls := range scales {
		for _, nv := range noises {
			cand, err := fitOnce(cfg.Kernel, ls, nv, xs, standardized)
			if err != nil {
				// A non-SPD Gram matrix at this hyperparameter is expected
				// occasionally (duplicate points, tiny noise); skip it.
				if errors.Is(err, mat.ErrNotSPD) {
					continue
				}
				return nil, err
			}
			if best == nil || cand.logML > best.logML {
				best = cand
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("gp: no hyperparameter candidate produced an SPD kernel matrix: %w", mat.ErrNotSPD)
	}
	if cfg.ARD && dims > 1 {
		refined, err := refineARD(cfg, best, xs, standardized)
		if err != nil {
			return nil, err
		}
		best = refined
	}
	best.yMean = yMean
	best.yStd = yStd
	return best, nil
}

// refineARD runs coordinate ascent over per-dimension length scales,
// starting from the isotropic optimum and keeping its noise level.
func refineARD(cfg Config, isotropic *GP, xs [][]float64, ys []float64) (*GP, error) {
	dims := len(xs[0])
	base := isotropic.kern.LengthScale
	noise := isotropic.noise
	scales := make([]float64, dims)
	for i := range scales {
		scales[i] = base
	}
	best := isotropic
	passes := cfg.ARDPasses
	if passes == 0 {
		passes = DefaultARDPasses
	}
	for pass := 0; pass < passes; pass++ {
		improved := false
		for dim := 0; dim < dims; dim++ {
			bestScale := scales[dim]
			for _, mult := range ardMultipliers() {
				candidate := base * mult
				if candidate == scales[dim] {
					continue
				}
				trial := append([]float64(nil), scales...)
				trial[dim] = candidate
				kern, err := kernel.NewARD(cfg.Kernel, trial, 1.0)
				if err != nil {
					return nil, err
				}
				model, err := fitKernel(kern, noise, xs, ys)
				if err != nil {
					if errors.Is(err, mat.ErrNotSPD) {
						continue
					}
					return nil, err
				}
				if model.logML > best.logML {
					best = model
					bestScale = candidate
					improved = true
				}
			}
			scales[dim] = bestScale
		}
		if !improved {
			break
		}
	}
	return best, nil
}

// gridScalesNoises resolves the hyperparameter grid a Config describes,
// in the fixed iteration order (scales outer, noises inner) both the
// one-shot Fit and the incremental Fitter must share for candidate
// selection to be bit-identical.
func gridScalesNoises(cfg Config) (scales, noises []float64) {
	scales = cfg.LengthScales
	if cfg.FixedLengthScale > 0 {
		scales = []float64{cfg.FixedLengthScale}
	} else if len(scales) == 0 {
		scales = DefaultLengthScales()
	}
	noises = cfg.NoiseVars
	if len(noises) == 0 {
		noises = DefaultNoiseVars()
	}
	if cfg.FixedLengthScale > 0 {
		noises = noises[:1]
	}
	return scales, noises
}

// standardizeParams returns the mean and a safe (non-zero) standard
// deviation of ys.
func standardizeParams(ys []float64) (mean, std float64) {
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	for _, y := range ys {
		d := y - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(ys)))
	if std < 1e-12 {
		std = 1 // constant targets: predict the constant with unit scale
	}
	return mean, std
}

func fitOnce(kind kernel.Kind, lengthScale, noiseVar float64, xs [][]float64, ys []float64) (*GP, error) {
	kern, err := kernel.New(kind, lengthScale, 1.0)
	if err != nil {
		return nil, err
	}
	return fitKernel(kern, noiseVar, xs, ys)
}

// fitKernel factors the jittered Gram matrix of an arbitrary (possibly
// ARD) kernel and assembles the fitted GP in standardized-target units.
func fitKernel(kern *kernel.Kernel, noiseVar float64, xs [][]float64, ys []float64) (*GP, error) {
	chol, err := factorGram(kern, noiseVar, xs)
	if err != nil {
		return nil, err
	}
	xcopy := make([][]float64, len(xs))
	for i, row := range xs {
		xcopy[i] = append([]float64(nil), row...)
	}
	return assembleGP(kern, noiseVar, chol, xcopy, ys)
}

// factorGram builds K + (noiseVar + jitter) I over xs and returns its
// Cholesky factor.
func factorGram(kern *kernel.Kernel, noiseVar float64, xs [][]float64) (*mat.Cholesky, error) {
	n := len(xs)
	gram, err := kern.Gram(xs)
	if err != nil {
		return nil, err
	}
	k := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := gram[i][j]
			if i == j {
				v += noiseVar + jitter
			}
			k.Set(i, j, v)
		}
	}
	return mat.NewCholesky(k)
}

// assembleGP computes the y-dependent parts of a fit — alpha and the log
// marginal likelihood — from an existing factor. x is stored as-is (the
// incremental Fitter shares its append-only copy; fitKernel passes a
// fresh copy).
func assembleGP(kern *kernel.Kernel, noiseVar float64, chol *mat.Cholesky, x [][]float64, ys []float64) (*GP, error) {
	n := len(x)
	alpha, err := chol.SolveVec(ys)
	if err != nil {
		return nil, err
	}
	// log p(y|X) = -1/2 yᵀ alpha - 1/2 log|K| - n/2 log(2 pi)
	yAlpha, err := mat.Dot(ys, alpha)
	if err != nil {
		return nil, err
	}
	logML := -0.5*yAlpha - 0.5*chol.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)
	return &GP{
		kern:    kern,
		x:       x,
		alpha:   alpha,
		chol:    chol,
		yStd:    1,
		noise:   noiseVar,
		logML:   logML,
		numObs:  n,
		numDims: len(x[0]),
	}, nil
}

// jitter is added to the Gram diagonal for numerical stability.
const jitter = 1e-8

// Predict returns the posterior mean and variance at x, in the original
// (unstandardized) target units. The variance includes the kernel posterior
// only (not the observation noise), matching the convention acquisition
// functions expect.
func (g *GP) Predict(x []float64) (mean, variance float64, err error) {
	return g.predictInto(x, make([]float64, g.numObs))
}

// predictInto is Predict with a caller-provided k* scratch vector (len
// numObs), which it overwrites. Batched callers reuse one scratch per
// worker so a prediction allocates nothing.
func (g *GP) predictInto(x, kStar []float64) (mean, variance float64, err error) {
	if len(x) != g.numDims {
		return 0, 0, fmt.Errorf("gp: query dim %d, want %d: %w", len(x), g.numDims, mat.ErrShape)
	}
	for i, xi := range g.x {
		v, err := g.kern.Eval(x, xi)
		if err != nil {
			return 0, 0, err
		}
		kStar[i] = v
	}
	mu, err := mat.Dot(kStar, g.alpha)
	if err != nil {
		return 0, 0, err
	}
	selfCov, err := g.kern.Eval(x, x)
	if err != nil {
		return 0, 0, err
	}
	// var = k(x,x) - k*ᵀ (K + sigma^2 I)^{-1} k*, computed via the Cholesky
	// factor: solve L v = k*, var = k(x,x) - vᵀv. The solve runs in place
	// over kStar, which mat permits to alias.
	if err := g.chol.ForwardSolveInto(kStar, kStar); err != nil {
		return 0, 0, err
	}
	vv, err := mat.Dot(kStar, kStar)
	if err != nil {
		return 0, 0, err
	}
	sigma2 := selfCov - vv
	if sigma2 < 0 {
		sigma2 = 0 // clamp tiny negative round-off
	}
	return g.yMean + g.yStd*mu, g.yStd * g.yStd * sigma2, nil
}

// PredictBatch evaluates the posterior at every row of xs, spreading rows
// over a worker pool with one k* scratch per worker. means and variances
// are reused when their capacity suffices, so an acquisition loop that
// scores the same candidate set every iteration allocates nothing after
// the first call. Results are bit-identical to calling Predict per row.
// parallelism <= 0 means GOMAXPROCS.
func (g *GP) PredictBatch(xs [][]float64, parallelism int, means, variances []float64) ([]float64, []float64, error) {
	n := len(xs)
	for i, x := range xs {
		if len(x) != g.numDims {
			return nil, nil, fmt.Errorf("gp: query row %d dim %d, want %d: %w", i, len(x), g.numDims, mat.ErrShape)
		}
	}
	if cap(means) >= n {
		means = means[:n]
	} else {
		means = make([]float64, n)
	}
	if cap(variances) >= n {
		variances = variances[:n]
	} else {
		variances = make([]float64, n)
	}
	var firstErr atomic.Pointer[error]
	parallel.DoWithScratch(n, parallelism, func() []float64 {
		return make([]float64, g.numObs)
	}, func(i int, kStar []float64) {
		mu, sigma2, err := g.predictInto(xs[i], kStar)
		if err != nil {
			firstErr.CompareAndSwap(nil, &err)
			return
		}
		means[i] = mu
		variances[i] = sigma2
	})
	if errp := firstErr.Load(); errp != nil {
		return nil, nil, *errp
	}
	return means, variances, nil
}

// LogMarginalLikelihood returns the (standardized-target) log marginal
// likelihood of the selected hyperparameters.
func (g *GP) LogMarginalLikelihood() float64 { return g.logML }

// LengthScale returns the selected length scale.
func (g *GP) LengthScale() float64 { return g.kern.LengthScale }

// ARDScales returns the per-dimension length scales of an ARD fit, or nil
// for an isotropic fit. Longer scale means the dimension matters less.
func (g *GP) ARDScales() []float64 {
	if g.kern.ARDScales == nil {
		return nil
	}
	return append([]float64(nil), g.kern.ARDScales...)
}

// NoiseVariance returns the selected relative noise variance.
func (g *GP) NoiseVariance() float64 { return g.noise }

// NumObservations returns the training-set size.
func (g *GP) NumObservations() int { return g.numObs }
