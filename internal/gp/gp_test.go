package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
)

func fitSimple(t *testing.T, xs [][]float64, ys []float64) *GP {
	t.Helper()
	g, err := Fit(Config{Kernel: kernel.Matern52}, xs, ys)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return g
}

func TestFitEmpty(t *testing.T) {
	if _, err := Fit(Config{Kernel: kernel.RBF}, nil, nil); !errors.Is(err, ErrNoData) {
		t.Errorf("error = %v, want ErrNoData", err)
	}
}

func TestFitLengthMismatch(t *testing.T) {
	if _, err := Fit(Config{Kernel: kernel.RBF}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should fail")
	}
}

func TestFitRaggedRows(t *testing.T) {
	if _, err := Fit(Config{Kernel: kernel.RBF}, [][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should fail")
	}
}

func TestPosteriorInterpolatesTrainingPoints(t *testing.T) {
	xs := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	ys := []float64{1, 2, 0.5, 3, 2.5}
	g := fitSimple(t, xs, ys)
	for i, x := range xs {
		mean, _, err := g.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-ys[i]) > 0.35 {
			t.Errorf("posterior at training point %d = %v, want near %v", i, mean, ys[i])
		}
	}
}

func TestPosteriorVarianceSmallerAtTrainingPoints(t *testing.T) {
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{1, 2, 3}
	g := fitSimple(t, xs, ys)
	_, varAtTrain, err := g.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	_, varAway, err := g.Predict([]float64{0.25})
	if err != nil {
		t.Fatal(err)
	}
	if varAtTrain >= varAway {
		t.Errorf("variance at training point (%v) should be below variance away (%v)", varAtTrain, varAway)
	}
}

func TestPosteriorVarianceNonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		dim := 1 + rng.Intn(3)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = make([]float64, dim)
			for j := range xs[i] {
				xs[i][j] = rng.Float64()
			}
			ys[i] = rng.NormFloat64()
		}
		g, err := Fit(Config{Kernel: kernel.Matern32}, xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 20; q++ {
			x := make([]float64, dim)
			for j := range x {
				x[j] = rng.Float64() * 1.5
			}
			_, variance, err := g.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			if variance < 0 || math.IsNaN(variance) {
				t.Fatalf("variance = %v", variance)
			}
		}
	}
}

func TestPredictDimensionMismatch(t *testing.T) {
	g := fitSimple(t, [][]float64{{0, 0}, {1, 1}}, []float64{1, 2})
	if _, _, err := g.Predict([]float64{0}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestConstantTargets(t *testing.T) {
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{5, 5, 5}
	g := fitSimple(t, xs, ys)
	mean, _, err := g.Predict([]float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-5) > 0.2 {
		t.Errorf("constant-target posterior = %v, want ~5", mean)
	}
}

func TestSinglePoint(t *testing.T) {
	g := fitSimple(t, [][]float64{{0.5}}, []float64{7})
	mean, _, err := g.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-7) > 0.5 {
		t.Errorf("single-point posterior = %v, want ~7", mean)
	}
}

func TestDuplicateInputsDoNotBreakFit(t *testing.T) {
	xs := [][]float64{{0.5}, {0.5}, {1}}
	ys := []float64{1, 1.05, 3}
	g, err := Fit(Config{Kernel: kernel.RBF}, xs, ys)
	if err != nil {
		t.Fatalf("duplicate inputs should be handled by noise/jitter: %v", err)
	}
	if g.NumObservations() != 3 {
		t.Errorf("NumObservations = %d", g.NumObservations())
	}
}

func TestHyperparameterSelectionPrefersSmoothFit(t *testing.T) {
	// Data from a smooth function: the selected length scale should not be
	// the smallest candidate (which would imply white-noise-like fit).
	xs := make([][]float64, 9)
	ys := make([]float64, 9)
	for i := range xs {
		x := float64(i) / 8
		xs[i] = []float64{x}
		ys[i] = math.Sin(2 * x)
	}
	g := fitSimple(t, xs, ys)
	if g.LengthScale() <= DefaultLengthScales()[0] {
		t.Errorf("selected length scale %v suspiciously small for smooth data", g.LengthScale())
	}
}

func TestFixedLengthScaleSkipsGrid(t *testing.T) {
	xs := [][]float64{{0}, {1}}
	ys := []float64{1, 2}
	g, err := Fit(Config{Kernel: kernel.RBF, FixedLengthScale: 0.42}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if g.LengthScale() != 0.42 {
		t.Errorf("LengthScale = %v, want fixed 0.42", g.LengthScale())
	}
}

func TestLogMarginalLikelihoodFinite(t *testing.T) {
	g := fitSimple(t, [][]float64{{0}, {0.4}, {0.9}}, []float64{1, 1.5, 0.5})
	if lml := g.LogMarginalLikelihood(); math.IsNaN(lml) || math.IsInf(lml, 0) {
		t.Errorf("log ML = %v", lml)
	}
	if g.NoiseVariance() <= 0 {
		t.Errorf("noise variance = %v", g.NoiseVariance())
	}
}

func TestAllKernelsFit(t *testing.T) {
	xs := [][]float64{{0}, {0.3}, {0.7}, {1}}
	ys := []float64{1, 3, 2, 4}
	for _, kind := range kernel.All() {
		t.Run(kind.String(), func(t *testing.T) {
			g, err := Fit(Config{Kernel: kind}, xs, ys)
			if err != nil {
				t.Fatalf("Fit with %v: %v", kind, err)
			}
			mean, variance, err := g.Predict([]float64{0.5})
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(mean) || variance < 0 {
				t.Errorf("prediction mean=%v var=%v", mean, variance)
			}
		})
	}
}

func TestInvalidKernelKind(t *testing.T) {
	if _, err := Fit(Config{}, [][]float64{{0}}, []float64{1}); err == nil {
		t.Error("zero kernel kind should fail")
	}
}

// TestPredictionsImproveWithData is the property BO relies on: with more
// observations of a deterministic function the posterior mean error at a
// held-out point shrinks.
func TestPredictionsImproveWithData(t *testing.T) {
	f := func(x float64) float64 { return 2*x*x + 1 }
	query := []float64{0.55}
	want := f(0.55)

	errAt := func(n int) float64 {
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			x := float64(i) / float64(n-1)
			xs[i] = []float64{x}
			ys[i] = f(x)
		}
		g, err := Fit(Config{Kernel: kernel.Matern52}, xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		mean, _, err := g.Predict(query)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(mean - want)
	}

	coarse := errAt(3)
	fine := errAt(12)
	if fine > coarse {
		t.Errorf("error grew with data: 3 pts -> %v, 12 pts -> %v", coarse, fine)
	}
	if fine > 0.1 {
		t.Errorf("12-point fit error %v too large", fine)
	}
}

func TestCustomGrids(t *testing.T) {
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{1, 2, 3}
	g, err := Fit(Config{
		Kernel:       kernel.RBF,
		LengthScales: []float64{0.3},
		NoiseVars:    []float64{1e-3},
	}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if g.LengthScale() != 0.3 {
		t.Errorf("LengthScale = %v, want the only candidate 0.3", g.LengthScale())
	}
	if g.NoiseVariance() != 1e-3 {
		t.Errorf("NoiseVariance = %v", g.NoiseVariance())
	}
}

func TestARDScalesNilForIsotropic(t *testing.T) {
	g := fitSimple(t, [][]float64{{0, 0}, {1, 1}}, []float64{1, 2})
	if g.ARDScales() != nil {
		t.Error("isotropic fit should have nil ARD scales")
	}
}
