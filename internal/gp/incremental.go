package gp

import (
	"errors"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// FitInfo reports how a Fitter.Fit call was satisfied, for telemetry.
type FitInfo struct {
	// Incremental is true when cached Cholesky factors were reused
	// (extended by the appended rows, or reused verbatim when the
	// training set did not grow). False means a full refit: first fit,
	// training-set prefix change, or an ARD fallback.
	Incremental bool
	// ReusedFactors counts hyperparameter-grid candidates whose cached
	// factor was carried over; TotalFactors is the grid size.
	ReusedFactors int
	TotalFactors  int
}

// Fitter fits GPs over a growing training set, reusing work across calls.
//
// The hyperparameter grid is fixed by the Config, so the kernel Gram
// matrix of each grid candidate depends only on the feature rows — not on
// the targets or on target standardization. When a Fit call's rows extend
// the previous call's rows (the Bayesian-optimization loop appends exactly
// one observation per iteration, and an SLO pass re-fits on identical
// rows), each candidate's cached Cholesky factor is grown with
// mat.Cholesky.Extend — O(n^2) per candidate instead of O(n^3) — and only
// the cheap y-dependent parts (alpha, log marginal likelihood) are
// recomputed. The Cholesky recurrence is prefix-stable, so the result is
// bit-identical to a from-scratch Fit with the same Config.
//
// When the rows are not an extension (different prefix, fewer rows, or a
// dimension change) the Fitter transparently falls back to a full refit
// and re-primes its cache. ARD fits always take the full path: coordinate
// ascent re-derives kernels per call, so there is nothing stable to cache.
//
// The returned GP aliases the Fitter's cache (factor and row storage): it
// is valid until the next Fit call on the same Fitter. Callers that need a
// longer-lived model should use Fit. A Fitter is not safe for concurrent
// use.
type Fitter struct {
	cfg    Config
	dims   int
	xs     [][]float64 // private append-only copy of the training rows
	states []*factorState
	row    []float64 // scratch for the Extend row
}

// factorState caches one grid candidate's factorization of
// K + (noise + jitter) I over the Fitter's rows.
type factorState struct {
	kern  *kernel.Kernel
	noise float64
	chol  *mat.Cholesky
	// failed records a non-SPD factorization. Growing the training set
	// cannot repair a non-SPD leading block, so a failed candidate stays
	// failed until the next full refit — exactly matching the one-shot
	// Fit, which would hit the same pivot at every later size. failedAt
	// is the row count at which the failure surfaced, so Truncate can
	// revive candidates whose failure was introduced by rows that are
	// being rolled back.
	failed   bool
	failedAt int
}

// NewFitter returns an incremental fitter for the given Config.
func NewFitter(cfg Config) *Fitter { return &Fitter{cfg: cfg} }

// Fit trains a GP on xs and ys exactly like the package-level Fit with the
// Fitter's Config, reusing cached factorizations when xs extends the rows
// of the previous call. See the Fitter doc for the aliasing contract.
func (f *Fitter) Fit(xs [][]float64, ys []float64) (*GP, FitInfo, error) {
	if len(xs) == 0 {
		return nil, FitInfo{}, ErrNoData
	}
	if len(xs) != len(ys) {
		return nil, FitInfo{}, fmt.Errorf("gp: %d rows but %d targets: %w", len(xs), len(ys), mat.ErrShape)
	}
	dims := len(xs[0])
	for i, row := range xs {
		if len(row) != dims {
			return nil, FitInfo{}, fmt.Errorf("gp: ragged row %d: %w", i, mat.ErrShape)
		}
	}
	if f.cfg.ARD && dims > 1 {
		g, err := Fit(f.cfg, xs, ys)
		return g, FitInfo{}, err
	}

	incremental := f.states != nil && dims == f.dims && f.isPrefix(xs)
	if !incremental {
		if err := f.reset(dims); err != nil {
			return nil, FitInfo{}, err
		}
	}
	info := FitInfo{Incremental: incremental, TotalFactors: len(f.states)}
	if incremental {
		for _, s := range f.states {
			if !s.failed {
				info.ReusedFactors++
			}
		}
	}
	for _, x := range xs[len(f.xs):] {
		f.xs = append(f.xs, append([]float64(nil), x...))
	}
	if err := f.growFactors(); err != nil {
		return nil, FitInfo{}, err
	}

	yMean, yStd := standardizeParams(ys)
	standardized := make([]float64, len(ys))
	for i, y := range ys {
		standardized[i] = (y - yMean) / yStd
	}
	rows := f.xs[:len(xs):len(xs)]
	var best *GP
	for _, s := range f.states {
		if s.failed {
			continue
		}
		cand, err := assembleGP(s.kern, s.noise, s.chol, rows, standardized)
		if err != nil {
			return nil, FitInfo{}, err
		}
		if best == nil || cand.logML > best.logML {
			best = cand
		}
	}
	if best == nil {
		return nil, FitInfo{}, fmt.Errorf("gp: no hyperparameter candidate produced an SPD kernel matrix: %w", mat.ErrNotSPD)
	}
	best.yMean = yMean
	best.yStd = yStd
	return best, info, nil
}

// Len returns the number of training rows currently cached.
func (f *Fitter) Len() int { return len(f.xs) }

// Truncate rolls the cached training set back to its first n rows,
// shrinking every live candidate's Cholesky factor to match — the exact
// inverse of the growth a Fit call performed. Batch planning appends
// fantasized observations, fits through the extended factors, and then
// Truncates back to the realized history, so the next real Fit extends
// from precisely the state it would have had without the fantasies.
//
// Candidates whose factorization failed at a row count beyond n were
// broken by the rows now being dropped; they are revived (rebuilt from
// scratch on the next Fit). Failures at or before n are genuine and stay
// failed, matching the one-shot Fit. Truncating to the current size is a
// no-op; n must be in [1, Len()]. Like Fit, Truncate invalidates GPs
// returned by earlier Fit calls on this Fitter.
func (f *Fitter) Truncate(n int) error {
	if n < 1 || n > len(f.xs) {
		return fmt.Errorf("gp: Truncate to %d of %d rows: %w", n, len(f.xs), mat.ErrShape)
	}
	if n == len(f.xs) {
		return nil
	}
	f.xs = f.xs[:n]
	for _, s := range f.states {
		if s.failed {
			if s.failedAt > n {
				s.failed = false
				s.failedAt = 0
				s.chol = nil
			}
			continue
		}
		if s.chol != nil && s.chol.Size() > n {
			if err := s.chol.Shrink(n); err != nil {
				return err
			}
		}
	}
	return nil
}

// isPrefix reports whether the Fitter's cached rows are a (bitwise) prefix
// of xs.
func (f *Fitter) isPrefix(xs [][]float64) bool {
	if len(xs) < len(f.xs) {
		return false
	}
	for i, cached := range f.xs {
		row := xs[i]
		for j, v := range cached {
			if row[j] != v {
				return false
			}
		}
	}
	return true
}

// reset discards all cached state and rebuilds the grid candidates.
func (f *Fitter) reset(dims int) error {
	scales, noises := gridScalesNoises(f.cfg)
	f.states = f.states[:0]
	f.xs = f.xs[:0]
	f.dims = dims
	for _, ls := range scales {
		kern, err := kernel.New(f.cfg.Kernel, ls, 1.0)
		if err != nil {
			return err
		}
		for _, nv := range noises {
			f.states = append(f.states, &factorState{kern: kern, noise: nv})
		}
	}
	return nil
}

// growFactors brings every live candidate's factor up to the current row
// count: a missing factor is built from scratch, an existing one is
// extended one row at a time.
func (f *Fitter) growFactors() error {
	n := len(f.xs)
	if cap(f.row) < n {
		f.row = make([]float64, n)
	}
	for _, s := range f.states {
		if s.failed {
			continue
		}
		if s.chol == nil {
			chol, err := factorGram(s.kern, s.noise, f.xs)
			if err != nil {
				if errors.Is(err, mat.ErrNotSPD) {
					s.failed = true
					s.failedAt = len(f.xs)
					continue
				}
				return err
			}
			s.chol = chol
			continue
		}
		for k := s.chol.Size(); k < n; k++ {
			row := f.row[:k+1]
			for j := 0; j <= k; j++ {
				v, err := s.kern.Eval(f.xs[k], f.xs[j])
				if err != nil {
					return err
				}
				row[j] = v
			}
			row[k] += s.noise + jitter
			if err := s.chol.Extend(row); err != nil {
				if errors.Is(err, mat.ErrNotSPD) {
					s.failed = true
					s.failedAt = k + 1
					s.chol = nil
					break
				}
				return err
			}
		}
	}
	return nil
}
