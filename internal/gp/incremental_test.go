package gp

import (
	"math/rand"
	"testing"

	"repro/internal/kernel"
)

// syntheticRows draws n feature rows in [0,1]^dims and targets from a
// smooth function plus noise, catalog-shaped like the VM study.
func syntheticRows(rng *rand.Rand, n, dims int) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		row := make([]float64, dims)
		sum := 0.0
		for j := range row {
			row[j] = rng.Float64()
			sum += row[j] * float64(j+1)
		}
		xs[i] = row
		ys[i] = 3 + 2*sum + 0.1*rng.NormFloat64()
	}
	return xs, ys
}

// sameGP asserts two fitted GPs are bit-identical in every observable:
// selected hyperparameters, log marginal likelihood, and posterior at a
// probe set.
func sameGP(t *testing.T, label string, got, want *GP, probes [][]float64) {
	t.Helper()
	if got.LengthScale() != want.LengthScale() {
		t.Fatalf("%s: length scale %v, want %v", label, got.LengthScale(), want.LengthScale())
	}
	if got.NoiseVariance() != want.NoiseVariance() {
		t.Fatalf("%s: noise %v, want %v", label, got.NoiseVariance(), want.NoiseVariance())
	}
	if got.LogMarginalLikelihood() != want.LogMarginalLikelihood() {
		t.Fatalf("%s: logML %v, want %v", label, got.LogMarginalLikelihood(), want.LogMarginalLikelihood())
	}
	if got.NumObservations() != want.NumObservations() {
		t.Fatalf("%s: numObs %d, want %d", label, got.NumObservations(), want.NumObservations())
	}
	for i, p := range probes {
		gm, gv, err := got.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		wm, wv, err := want.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		if gm != wm || gv != wv {
			t.Fatalf("%s: probe %d posterior (%v, %v), want (%v, %v)", label, i, gm, gv, wm, wv)
		}
	}
}

// TestFitterBitIdenticalToFit grows the training set one row at a time —
// the BO loop's access pattern — and demands the incremental path
// reproduce the one-shot Fit exactly at every size, for every kernel.
func TestFitterBitIdenticalToFit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs, ys := syntheticRows(rng, 20, 4)
	probes, _ := syntheticRows(rng, 5, 4)
	for _, kind := range kernel.All() {
		cfg := Config{Kernel: kind}
		ft := NewFitter(cfg)
		for n := 1; n <= len(xs); n++ {
			inc, info, err := ft.Fit(xs[:n], ys[:n])
			if err != nil {
				t.Fatalf("%v n=%d: %v", kind, n, err)
			}
			if wantInc := n > 1; info.Incremental != wantInc {
				t.Fatalf("%v n=%d: Incremental=%v, want %v", kind, n, info.Incremental, wantInc)
			}
			if info.Incremental && info.ReusedFactors == 0 {
				t.Fatalf("%v n=%d: incremental fit reused no factors", kind, n)
			}
			full, err := Fit(cfg, xs[:n], ys[:n])
			if err != nil {
				t.Fatal(err)
			}
			sameGP(t, kind.String(), inc, full, probes)
		}
	}
}

// TestFitterReusesFactorsAcrossTargets covers the acquisition/SLO pair:
// two fits in one iteration share rows but differ in targets, so the
// second must reuse every factor without extending, and still match the
// one-shot Fit on the new targets.
func TestFitterReusesFactorsAcrossTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs, ys := syntheticRows(rng, 12, 3)
	times := make([]float64, len(ys))
	for i := range times {
		times[i] = 100 - ys[i] + rng.NormFloat64()
	}
	cfg := Config{Kernel: kernel.Matern52}
	ft := NewFitter(cfg)
	if _, _, err := ft.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	inc, info, err := ft.Fit(xs, times)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Incremental || info.ReusedFactors != info.TotalFactors || info.TotalFactors == 0 {
		t.Fatalf("second fit on same rows: info %+v, want all factors reused", info)
	}
	full, err := Fit(cfg, xs, times)
	if err != nil {
		t.Fatal(err)
	}
	sameGP(t, "slo-pass", inc, full, xs)
}

// TestFitterFallsBackOnPrefixChange rewrites an old row, which must force
// a transparent full refit that still matches Fit.
func TestFitterFallsBackOnPrefixChange(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	xs, ys := syntheticRows(rng, 10, 3)
	cfg := Config{Kernel: kernel.RBF}
	ft := NewFitter(cfg)
	if _, _, err := ft.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	xs[2][0] += 0.125
	inc, info, err := ft.Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if info.Incremental {
		t.Fatalf("prefix changed but fit was incremental: %+v", info)
	}
	full, err := Fit(cfg, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	sameGP(t, "prefix-change", inc, full, xs)
	// And the cache must be re-primed: the next append is incremental again.
	more, moreYs := syntheticRows(rng, 1, 3)
	grown := append(append([][]float64{}, xs...), more[0])
	grownYs := append(append([]float64{}, ys...), moreYs[0])
	if _, info, err = ft.Fit(grown, grownYs); err != nil || !info.Incremental {
		t.Fatalf("append after fallback: info %+v err %v, want incremental", info, err)
	}
}

// TestFitterARDDelegates checks the ARD escape hatch: per-dimension
// refinement rebuilds kernels per call, so the Fitter must hand the whole
// fit to the one-shot path and report it as full.
func TestFitterARDDelegates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs, ys := syntheticRows(rng, 10, 3)
	cfg := Config{Kernel: kernel.Matern52, ARD: true}
	ft := NewFitter(cfg)
	inc, info, err := ft.Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if info.Incremental || info.TotalFactors != 0 {
		t.Fatalf("ARD fit reported %+v, want full delegation", info)
	}
	full, err := Fit(cfg, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	sameGP(t, "ard", inc, full, xs)
}

// TestFitterFixedLengthScale covers the single-candidate grid.
func TestFitterFixedLengthScale(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	xs, ys := syntheticRows(rng, 8, 2)
	cfg := Config{Kernel: kernel.Matern32, FixedLengthScale: 0.5}
	ft := NewFitter(cfg)
	for n := 4; n <= len(xs); n++ {
		inc, _, err := ft.Fit(xs[:n], ys[:n])
		if err != nil {
			t.Fatal(err)
		}
		full, err := Fit(cfg, xs[:n], ys[:n])
		if err != nil {
			t.Fatal(err)
		}
		sameGP(t, "fixed-ls", inc, full, xs[:4])
	}
}

// BenchmarkGPExtend measures the incremental refit path over a
// search-shaped growth sequence: the training set grows one observation
// at a time from 10 to 40 rows, each step extending the grid's cached
// Cholesky factors instead of refactoring them. One op is the whole
// 30-step sequence — long enough to measure stably where a single
// sub-millisecond step is noise-dominated. Compare against
// BenchmarkGPFit (one from-scratch grid fit) for the per-step speedup.
func BenchmarkGPExtend(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	xs, ys := syntheticRows(rng, 40, 6)
	cfg := Config{Kernel: kernel.Matern52}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ft := NewFitter(cfg)
		if _, _, err := ft.Fit(xs[:10], ys[:10]); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for n := 11; n <= 40; n++ {
			if _, info, err := ft.Fit(xs[:n], ys[:n]); err != nil || !info.Incremental {
				b.Fatalf("n=%d: err=%v info=%+v", n, err, info)
			}
		}
	}
}
