package gp

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// TestFitterTruncateRoundTrip drives the batch-planning access pattern:
// fit on the realized history, append fantasized rows and fit through the
// extended factors, Truncate back, then continue with real appends. Every
// post-rollback fit must be bit-identical to a fitter that never saw the
// fantasies, and must still take the incremental path.
func TestFitterTruncateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs, ys := syntheticRows(rng, 16, 4)
	fantasy, fantasyYs := syntheticRows(rng, 3, 4)
	probes, _ := syntheticRows(rng, 5, 4)
	cfg := Config{Kernel: kernel.Matern52}

	ft := NewFitter(cfg)
	clean := NewFitter(cfg)
	const real = 10
	if _, _, err := ft.Fit(xs[:real], ys[:real]); err != nil {
		t.Fatal(err)
	}
	// Fantasize three extra rows, one at a time, as the planner does.
	fxs := append(append([][]float64{}, xs[:real]...), fantasy...)
	fys := append(append([]float64{}, ys[:real]...), fantasyYs...)
	for n := real + 1; n <= len(fxs); n++ {
		if _, info, err := ft.Fit(fxs[:n], fys[:n]); err != nil || !info.Incremental {
			t.Fatalf("fantasy fit n=%d: info %+v err %v", n, info, err)
		}
	}
	if err := ft.Truncate(real); err != nil {
		t.Fatal(err)
	}
	if ft.Len() != real {
		t.Fatalf("Len after Truncate = %d, want %d", ft.Len(), real)
	}
	// Continue the real search on both fitters; they must agree exactly.
	for n := real; n <= len(xs); n++ {
		inc, info, err := ft.Fit(xs[:n], ys[:n])
		if err != nil {
			t.Fatalf("post-rollback fit n=%d: %v", n, err)
		}
		if !info.Incremental || info.ReusedFactors == 0 {
			t.Fatalf("post-rollback fit n=%d not incremental: %+v", n, info)
		}
		want, _, err := clean.Fit(xs[:n], ys[:n])
		if err != nil {
			t.Fatal(err)
		}
		sameGP(t, "post-rollback", inc, want, probes)
	}
}

// TestFitterTruncateErrors covers bounds, the same-size no-op, and the
// failed-candidate revival rule: failures introduced by rolled-back rows
// are retried, failures within the kept prefix stay failed.
func TestFitterTruncateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	xs, ys := syntheticRows(rng, 8, 3)
	ft := NewFitter(Config{Kernel: kernel.RBF})
	if _, _, err := ft.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := ft.Truncate(0); !errors.Is(err, mat.ErrShape) {
		t.Fatalf("Truncate(0): got %v, want ErrShape", err)
	}
	if err := ft.Truncate(len(xs) + 1); !errors.Is(err, mat.ErrShape) {
		t.Fatalf("Truncate past Len: got %v, want ErrShape", err)
	}
	if err := ft.Truncate(len(xs)); err != nil {
		t.Fatalf("same-size Truncate: %v", err)
	}
	if ft.Len() != len(xs) {
		t.Fatalf("same-size Truncate changed Len to %d", ft.Len())
	}

	// Simulate one candidate broken by a fantasy row (failedAt beyond the
	// rollback point) and one genuinely broken within the kept prefix.
	revived, kept := ft.states[0], ft.states[1]
	revived.failed, revived.failedAt, revived.chol = true, len(xs), nil
	kept.failed, kept.failedAt, kept.chol = true, 2, nil
	if err := ft.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if revived.failed {
		t.Fatal("candidate that failed beyond the truncation point was not revived")
	}
	if !kept.failed || kept.failedAt != 2 {
		t.Fatalf("genuine failure within the prefix was revived: %+v", kept)
	}
	// The revived candidate rebuilds from scratch on the next Fit.
	if _, _, err := ft.Fit(xs[:4], ys[:4]); err != nil {
		t.Fatal(err)
	}
	if revived.failed || revived.chol == nil || revived.chol.Size() != 4 {
		t.Fatalf("revived candidate not rebuilt: failed=%v chol=%v", revived.failed, revived.chol)
	}
}
