package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// This file is online shard compaction: an owned shard is scanned,
// dead weight dropped, and the survivors rewritten into a fresh file
// swapped in by atomic rename. Dead weight is (a) ended and aborted
// session chains — replaced by a shard-level tombstone_index record so
// the sessions still answer 410 Gone, (b) chains broken by damage,
// (c) undecodable lines, and (d) for live sessions with a valid
// snapshot, every op below the snapshot's watermark plus every older
// snapshot — the chosen snapshot carries that history itself. The
// whole read-rewrite-rename runs under the shard's append lock, so
// compaction is safe while the shard is being served.

// CompactOptions gates when a shard is actually rewritten.
type CompactOptions struct {
	// MinBytes skips shards smaller than this — rewriting a tiny file
	// buys nothing. Zero means no size floor.
	MinBytes int64
	// MinDeadRatio skips a rewrite that would shrink the shard by less
	// than this fraction (0.25 = at least a quarter smaller). Zero means
	// any shrink qualifies.
	MinDeadRatio float64
	// Force rewrites regardless of thresholds (and even with nothing to
	// drop) — the test hook and the operator's big hammer.
	Force bool
}

// CompactStats reports one shard's compaction outcome.
type CompactStats struct {
	Shard       int    `json:"shard"`
	Compacted   bool   `json:"compacted"`
	SkipReason  string `json:"skip_reason,omitempty"`
	BytesBefore int64  `json:"bytes_before"`
	BytesAfter  int64  `json:"bytes_after"`
	// LiveSessions counts the session chains kept.
	LiveSessions int `json:"live_sessions"`
	// DroppedEnded / DroppedDamaged count the chains dropped (and
	// tombstoned) because they ended or were broken.
	DroppedEnded   int `json:"dropped_ended"`
	DroppedDamaged int `json:"dropped_damaged"`
	// TruncatedChains counts live chains whose pre-watermark history was
	// dropped in favor of a snapshot.
	TruncatedChains int `json:"truncated_chains"`
	// Tombstones is the size of the shard's merged tombstone index.
	Tombstones int `json:"tombstones"`
}

// Compact scans one owned shard and, when the thresholds say it is
// worth it, rewrites it without the droppable weight. The rewrite is a
// temp-file write, fsync and atomic rename under the shard's append
// lock; a crash at any point leaves either the old or the new file,
// both valid.
func (j *Journal) Compact(shard int, opts CompactOptions) (CompactStats, error) {
	stats := CompactStats{Shard: shard}
	if shard < 0 || shard >= j.shards {
		return stats, fmt.Errorf("journal: compacting shard %d of %d", shard, j.shards)
	}
	if !j.ownsShard(shard) {
		return stats, fmt.Errorf("%w: shard %d", ErrNotOwned, shard)
	}
	sf := &j.files[shard]
	sf.mu.Lock()
	defer sf.mu.Unlock()

	path := j.shardPath(shard)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) || len(data) == 0 {
		stats.SkipReason = "empty"
		return stats, nil
	}
	if err != nil {
		return stats, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	stats.BytesBefore = int64(len(data))

	// Decode every line, dropping undecodable ones (mid-file damage and
	// torn tails alike — compaction rewrites the file, so there is
	// nothing to preserve about a broken line).
	var (
		good       []Record
		bySession  = make(map[string][]Record)
		order      []string
		tombstones = make(map[string]bool)
	)
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		r, derr := DecodeLine(line)
		if derr != nil {
			continue
		}
		if r.Kind == KindTombstoneIndex {
			// Merge prior indexes so 410s survive repeated compactions.
			for _, id := range r.Tombstones {
				tombstones[id] = true
			}
			continue
		}
		good = append(good, r)
		if _, seen := bySession[r.Session]; !seen {
			order = append(order, r.Session)
		}
		bySession[r.Session] = append(bySession[r.Session], r)
	}

	// Partition the chains: ended and damaged drop into the tombstone
	// index, live chains truncate at their latest usable snapshot.
	var kept [][]Record
	for _, id := range order {
		records := bySession[id]
		sort.SliceStable(records, func(a, b int) bool { return records[a].Seq < records[b].Seq })
		// Use the validated log's records: ValidateChain drops the
		// byte-identical duplicates cross-host adoption re-journals.
		log, ended, problem := ValidateChain(id, records)
		switch {
		case problem != "":
			stats.DroppedDamaged++
			tombstones[id] = true
			continue
		case ended:
			stats.DroppedEnded++
			tombstones[id] = true
			continue
		}
		truncated, didTruncate := truncateAtSnapshot(log.Records)
		if didTruncate {
			stats.TruncatedChains++
		}
		stats.LiveSessions++
		kept = append(kept, truncated)
	}

	// Rebuild the shard content: the merged tombstone index first, then
	// each surviving chain in first-seen order.
	var buf bytes.Buffer
	if len(tombstones) > 0 {
		ids := make([]string, 0, len(tombstones))
		for id := range tombstones {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		line, err := EncodeLine(Record{Kind: KindTombstoneIndex, Tombstones: ids})
		if err != nil {
			return stats, err
		}
		buf.Write(line)
		stats.Tombstones = len(ids)
	}
	for _, records := range kept {
		for _, r := range records {
			line, err := EncodeLine(r)
			if err != nil {
				return stats, err
			}
			buf.Write(line)
		}
	}
	stats.BytesAfter = int64(buf.Len())

	if !opts.Force {
		if stats.BytesBefore < opts.MinBytes {
			stats.SkipReason = "below size floor"
			stats.BytesAfter = stats.BytesBefore
			return stats, nil
		}
		dead := 1 - float64(stats.BytesAfter)/float64(stats.BytesBefore)
		if dead < opts.MinDeadRatio || stats.BytesAfter >= stats.BytesBefore {
			stats.SkipReason = fmt.Sprintf("dead ratio %.3f below threshold", dead)
			stats.BytesAfter = stats.BytesBefore
			return stats, nil
		}
	}

	// Swap the rewrite in: temp file, fsync, rename, directory fsync.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return stats, fmt.Errorf("journal: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return stats, fmt.Errorf("journal: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return stats, fmt.Errorf("journal: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return stats, fmt.Errorf("journal: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return stats, fmt.Errorf("journal: swapping in %s: %w", tmp, err)
	}
	syncDir(filepath.Dir(path))
	// The cached append handle points at the replaced inode; drop it so
	// the next append lazily reopens the compacted file.
	if sf.f != nil {
		sf.f.Close()
		sf.f = nil
	}
	stats.Compacted = true
	return stats, nil
}

// CompactOwned compacts every shard this replica holds, continuing past
// per-shard failures and joining them into the returned error.
func (j *Journal) CompactOwned(opts CompactOptions) ([]CompactStats, error) {
	var (
		out  []CompactStats
		errs []error
	)
	for _, shard := range j.Owned() {
		stats, err := j.Compact(shard, opts)
		if err != nil {
			j.warnf("compacting shard %d: %v", shard, err)
			errs = append(errs, err)
			continue
		}
		out = append(out, stats)
	}
	return out, errors.Join(errs...)
}

// TrimToSnapshot is truncateAtSnapshot for external callers: live
// migration streams a session as create + latest usable snapshot +
// post-watermark suffix, exactly the compacted form of its chain.
func TrimToSnapshot(records []Record) ([]Record, bool) {
	return truncateAtSnapshot(records)
}

// truncateAtSnapshot drops the history a live chain's latest usable
// snapshot already carries: everything between the create record and
// the snapshot, plus every other snapshot record. A snapshot is usable
// when its payload decodes (inner CRC and invariants) and its
// fingerprint matches the create record's request. Chains without one
// are returned unchanged.
func truncateAtSnapshot(records []Record) ([]Record, bool) {
	if len(records) == 0 || records[0].Kind != KindCreate {
		return records, false
	}
	fp := Fingerprint(records[0].Request)
	chosen := -1
	for i, r := range records {
		if r.Kind != KindSnapshot {
			continue
		}
		snap, err := DecodeSnapshot(r.Request)
		if err != nil || snap.Fingerprint != fp || snap.Watermark != r.Seq {
			continue
		}
		chosen = i
	}
	if chosen == -1 {
		return records, false
	}
	out := make([]Record, 0, 2+len(records)-chosen)
	out = append(out, records[0], records[chosen])
	dropped := chosen > 1
	for _, r := range records[chosen+1:] {
		if r.Kind == KindSnapshot {
			dropped = true
			continue
		}
		out = append(out, r)
	}
	return out, dropped
}

// syncDir fsyncs a directory so a rename survives power loss; failures
// are ignored (the rename itself already happened).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
