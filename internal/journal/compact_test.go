package journal

import (
	"encoding/json"
	"strings"
	"testing"
)

// snapshotFor builds a valid snapshot record over a chain prefix: the
// create record's fingerprint, watermark = next seq, and the ops below
// it with the session id stripped, exactly as the serve layer captures.
func snapshotFor(t *testing.T, chain []Record) Record {
	t.Helper()
	snap := Snapshot{
		Fingerprint: Fingerprint(chain[0].Request),
		Watermark:   len(chain),
	}
	for _, r := range chain[1:] {
		op := r
		op.Session = ""
		if op.Kind == KindObserve {
			snap.Observations++
		}
		snap.Ops = append(snap.Ops, op)
	}
	payload, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	return Record{Session: chain[0].Session, Seq: snap.Watermark, Kind: KindSnapshot, Request: payload}
}

// TestCompactDropsEndedIntoTombstoneIndex: compaction removes an ended
// chain but leaves its 410 behind in the shard's tombstone index, and
// repeated compactions merge indexes instead of forgetting old ids.
func TestCompactDropsEndedIntoTombstoneIndex(t *testing.T) {
	dir := t.TempDir()
	j := openAll(t, dir, WithReplica("r1"), WithShards(1))
	live := sessionRecords("s-000001", 2, false)
	ended := sessionRecords("s-000002", 1, true)
	appendAll(t, j, live...)
	appendAll(t, j, ended...)

	stats, err := j.Compact(0, CompactOptions{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Compacted || stats.DroppedEnded != 1 || stats.LiveSessions != 1 || stats.Tombstones != 1 {
		t.Fatalf("unexpected stats %+v", stats)
	}
	scan, err := j.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Live) != 1 || scan.Live[0].ID != "s-000001" {
		t.Fatalf("live session lost: %+v", scan.Live)
	}
	if len(scan.Ended) != 0 || len(scan.Tombstones) != 1 || scan.Tombstones[0] != "s-000002" {
		t.Fatalf("ended session not tombstoned: ended %v, tombstones %v", scan.Ended, scan.Tombstones)
	}

	// End the survivor and compact again: the new tombstone joins the
	// old one — the index merges, it does not reset.
	appendAll(t, j, Record{Session: "s-000001", Seq: 5, Kind: KindEnd, Reason: "done"})
	if _, err := j.Compact(0, CompactOptions{Force: true}); err != nil {
		t.Fatal(err)
	}
	scan, err = j.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Tombstones) != 2 {
		t.Fatalf("tombstone indexes did not merge: %v", scan.Tombstones)
	}
}

// TestCompactThresholds: without Force, a shard below the size floor or
// the dead ratio is scanned but not rewritten, and the stats say why.
func TestCompactThresholds(t *testing.T) {
	dir := t.TempDir()
	j := openAll(t, dir, WithReplica("r1"), WithShards(1))
	appendAll(t, j, sessionRecords("s-000001", 2, false)...)

	stats, err := j.Compact(0, CompactOptions{MinBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compacted || stats.SkipReason != "below size floor" {
		t.Fatalf("size floor not honored: %+v", stats)
	}
	if stats.BytesAfter != stats.BytesBefore {
		t.Fatalf("skipped compaction reported a shrink: %+v", stats)
	}

	// All-live shard: nothing to drop, so any dead-ratio floor skips it.
	stats, err = j.Compact(0, CompactOptions{MinDeadRatio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compacted || !strings.Contains(stats.SkipReason, "dead ratio") {
		t.Fatalf("dead ratio not honored: %+v", stats)
	}

	// An empty shard is never rewritten, even under Force.
	j2 := openAll(t, t.TempDir(), WithReplica("r1"), WithShards(1))
	stats, err = j2.Compact(0, CompactOptions{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compacted || stats.SkipReason != "empty" {
		t.Fatalf("empty shard rewritten: %+v", stats)
	}
}

// TestCompactTruncatesAtSnapshot: a live chain with a valid snapshot is
// cut down to create + snapshot + post-watermark suffix, the rescan
// bridges the seq gap through the snapshot, and the dropped history is
// recoverable from the snapshot's carried ops.
func TestCompactTruncatesAtSnapshot(t *testing.T) {
	dir := t.TempDir()
	j := openAll(t, dir, WithReplica("r1"), WithShards(1))
	chain := sessionRecords("s-000001", 2, false) // create + 2x(suggest, observe), seqs 0..4
	appendAll(t, j, chain...)
	snap := snapshotFor(t, chain)
	appendAll(t, j, snap)
	suffix := []Record{
		{Session: "s-000001", Seq: 5, Kind: KindSuggest, Index: 7, Step: 2},
		{Session: "s-000001", Seq: 6, Kind: KindObserve, Index: 7, TimeSec: 3, CostUSD: 0.2},
	}
	appendAll(t, j, suffix...)

	stats, err := j.Compact(0, CompactOptions{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Compacted || stats.TruncatedChains != 1 {
		t.Fatalf("snapshot truncation did not happen: %+v", stats)
	}

	scan, err := j.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Damage) != 0 {
		t.Fatalf("compacted shard scans dirty: %v", scan.Damage)
	}
	if len(scan.Live) != 1 {
		t.Fatalf("live session lost: %+v", scan.Live)
	}
	recs := scan.Live[0].Records
	if len(recs) != 4 {
		t.Fatalf("want create+snapshot+2 suffix records, got %d: %+v", len(recs), recs)
	}
	if recs[0].Kind != KindCreate || recs[1].Kind != KindSnapshot || recs[2].Seq != 5 || recs[3].Seq != 6 {
		t.Fatalf("truncated chain malformed: %+v", recs)
	}
	got, err := DecodeSnapshot(recs[1].Request)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != 4 || got.Ops[0].Seq != 1 {
		t.Fatalf("snapshot lost the carried history: %+v", got.Ops)
	}
}

// TestCompactKeepsChainWithBadSnapshot: a snapshot whose payload fails
// its own CRC is dead weight on an intact chain — compaction drops the
// snapshot record but must keep the full op history, because nothing
// else carries it.
func TestCompactKeepsChainWithBadSnapshot(t *testing.T) {
	dir := t.TempDir()
	j := openAll(t, dir, WithReplica("r1"), WithShards(1))
	chain := sessionRecords("s-000001", 2, false)
	appendAll(t, j, chain...)
	snap := snapshotFor(t, chain)
	// Break the inner payload under a valid line CRC.
	snap.Request = json.RawMessage(strings.Replace(string(snap.Request), `"crc":`, `"crc":1`, 1))
	appendAll(t, j, snap)

	stats, err := j.Compact(0, CompactOptions{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TruncatedChains != 0 || stats.LiveSessions != 1 {
		t.Fatalf("chain with a bad snapshot mishandled: %+v", stats)
	}
	scan, err := j.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Live) != 1 || len(scan.Live[0].Records) != len(chain)+1 {
		t.Fatalf("op history lost under a bad snapshot: %+v", scan.Live)
	}
}

// TestCompactRejectsUnownedShard: compaction refuses shards this
// replica holds no lease on.
func TestCompactRejectsUnownedShard(t *testing.T) {
	dir := t.TempDir()
	j := openAll(t, dir, WithReplica("r1"), WithShards(2), WithClaimLimit(1))
	unowned := 1 - j.Owned()[0]
	if _, err := j.Compact(unowned, CompactOptions{Force: true}); err == nil {
		t.Fatal("compacting an unowned shard succeeded")
	}
}

// TestReclaimTakesOverDeadPeerShards: a survivor's Reclaim claims the
// shards of a closed (dead) peer and leaves its own claims alone.
func TestReclaimTakesOverDeadPeerShards(t *testing.T) {
	dir := t.TempDir()
	a := openAll(t, dir, WithReplica("a"), WithShards(4), WithClaimLimit(2))
	b, err := Open(dir, WithReplica("b"), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if len(a.Owned()) != 2 || len(b.Owned()) != 2 {
		t.Fatalf("partition skew: a %v, b %v", a.Owned(), b.Owned())
	}

	// A live peer's shards are not claimable.
	claimed, err := a.Reclaim()
	if err != nil {
		t.Fatal(err)
	}
	if len(claimed) != 0 {
		t.Fatalf("reclaimed a live peer's shards: %v", claimed)
	}

	// Releasing b's leases stands in for the peer dying: its pid-checked
	// leases become stale and claimable.
	dead := b.Owned()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	claimed, err = a.Reclaim()
	if err != nil {
		t.Fatal(err)
	}
	if len(claimed) != len(dead) {
		t.Fatalf("claimed %v, want the dead peer's %v", claimed, dead)
	}
	if len(a.Owned()) != 4 {
		t.Fatalf("survivor does not own everything: %v", a.Owned())
	}
}
