package journal

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// corpusLine renders one valid shard line for the seed corpus.
func corpusLine(rec Record) []byte {
	line, err := EncodeLine(rec)
	if err != nil {
		panic(err)
	}
	return line
}

// FuzzDecodeLine drives the checksummed line decoder with arbitrary
// bytes. Properties: it never panics, everything it accepts carries a
// session id and a non-negative seq, and an accepted record survives an
// encode/decode round trip.
func FuzzDecodeLine(f *testing.F) {
	f.Add(corpusLine(Record{Session: "s-000001", Seq: 0, Kind: KindCreate, Request: json.RawMessage(`{"method":"random","seed":1}`)}))
	f.Add(corpusLine(Record{Session: "s-000001", Seq: 1, Kind: KindSuggest, Index: 4, Step: 0}))
	f.Add(corpusLine(Record{Session: "s-000001", Seq: 2, Kind: KindObserve, Index: 4, TimeSec: 120.5, CostUSD: 0.42, Metrics: []float64{1, 2, 3}}))
	f.Add(corpusLine(Record{Session: "s-000001", Seq: 3, Kind: KindObserveFailure, Index: 4, Reason: "spot reclaimed"}))
	f.Add(corpusLine(Record{Session: "s-000001", Seq: 4, Kind: KindEnd, Reason: "done"}))
	f.Add([]byte(`{"crc":123,"rec":{"sid":"s-000001","seq":0,"kind":"create"}}`)) // bad crc
	f.Add([]byte(`{"crc":0,"rec":null}`))
	f.Add([]byte(`{"rec":{"sid":"x","seq":-1,"kind":"end"}}`))
	f.Add([]byte(`garbage`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeLine(data)
		if err != nil {
			return
		}
		if rec.Session == "" || rec.Seq < 0 {
			t.Fatalf("accepted invalid record %+v from %q", rec, data)
		}
		line, err := EncodeLine(rec)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		if _, err := DecodeLine(bytes.TrimSuffix(line, []byte("\n"))); err != nil {
			t.Fatalf("re-encoded record does not re-decode: %v", err)
		}
	})
}

// corpusSnapshot renders one valid snapshot payload for the seed corpus.
func corpusSnapshot(snap Snapshot) []byte {
	payload, err := EncodeSnapshot(snap)
	if err != nil {
		panic(err)
	}
	return payload
}

// FuzzDecodeSnapshot drives the snapshot payload decoder with arbitrary
// bytes. Properties: it never panics, everything it accepts satisfies
// the snapshot invariants (fingerprint present, op history exactly seqs
// 1..Watermark-1 of session-op kinds, observation count consistent),
// and an accepted snapshot survives an encode/decode round trip.
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add(corpusSnapshot(Snapshot{Fingerprint: "00d1b2c3d4e5f607", Watermark: 1}))
	f.Add(corpusSnapshot(Snapshot{
		Fingerprint:  "00d1b2c3d4e5f607",
		Watermark:    4,
		Observations: 1,
		Ops: []Record{
			{Seq: 1, Kind: KindSuggest, Index: 3, Step: 0},
			{Seq: 2, Kind: KindObserve, Index: 3, TimeSec: 9, CostUSD: 1, Metrics: []float64{1, 2}},
			{Seq: 3, Kind: KindSuggestBatch, K: 2, Indices: []int{4, 5}},
		},
		Script: json.RawMessage(`{"decisions":[{"step":1,"index":3,"score":0.5,"aux":1.2}]}`),
		Events: json.RawMessage(`[{"kind":"search_start","candidate":-1,"value":18}]`),
	}))
	f.Add(corpusSnapshot(Snapshot{
		Fingerprint:  "ffffffffffffffff",
		Watermark:    3,
		Observations: 1,
		Ops: []Record{
			{Seq: 1, Kind: KindSuggest, Index: 0},
			{Seq: 2, Kind: KindObserve, Index: 0},
		},
	}))
	f.Add([]byte(`{"crc":1,"snap":{"fp":"x","watermark":1}}`)) // bad crc
	f.Add([]byte(`{"crc":0,"snap":null}`))
	f.Add([]byte(`{"snap":{"fp":"","watermark":0}}`))
	f.Add([]byte(`garbage`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if snap.Fingerprint == "" || snap.Watermark < 1 {
			t.Fatalf("accepted invalid snapshot %+v from %q", snap, data)
		}
		if len(snap.Ops) != snap.Watermark-1 {
			t.Fatalf("accepted op history of %d records under watermark %d", len(snap.Ops), snap.Watermark)
		}
		observes := 0
		for i, op := range snap.Ops {
			if op.Seq != i+1 {
				t.Fatalf("accepted non-contiguous op %d with seq %d", i, op.Seq)
			}
			if !snapshotOpKinds[op.Kind] {
				t.Fatalf("accepted foreign op kind %q", op.Kind)
			}
			if op.Kind == KindObserve {
				observes++
			}
		}
		if observes != snap.Observations {
			t.Fatalf("accepted observation count %d over %d observe ops", snap.Observations, observes)
		}
		payload, err := EncodeSnapshot(snap)
		if err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		again, err := DecodeSnapshot(payload)
		if err != nil {
			t.Fatalf("re-encoded snapshot does not re-decode: %v", err)
		}
		if again.Fingerprint != snap.Fingerprint || again.Watermark != snap.Watermark || again.Observations != snap.Observations {
			t.Fatalf("round trip drifted: %+v vs %+v", snap, again)
		}
	})
}

// FuzzScanShard feeds an arbitrary shard file through the recovery
// scan. Properties: Scan never panics or errors on content damage (only
// on I/O), every recovered session has a contiguous chain starting with
// a create record, and a second scan of the (possibly tail-truncated)
// file is clean and finds the same sessions.
func FuzzScanShard(f *testing.F) {
	var healthy bytes.Buffer
	for _, rec := range []Record{
		{Session: "a", Seq: 0, Kind: KindCreate, Request: json.RawMessage(`{"method":"random","seed":1}`)},
		{Session: "b", Seq: 0, Kind: KindCreate, Request: json.RawMessage(`{"method":"naive","seed":2}`)},
		{Session: "a", Seq: 1, Kind: KindSuggest, Index: 3, Step: 0},
		{Session: "b", Seq: 1, Kind: KindSuggest, Index: 5, Step: 0},
		{Session: "a", Seq: 2, Kind: KindObserve, Index: 3, TimeSec: 9, CostUSD: 1},
		{Session: "b", Seq: 2, Kind: KindObserveFailure, Index: 5, Reason: "boom"},
		{Session: "b", Seq: 3, Kind: KindEnd, Reason: "done"},
	} {
		healthy.Write(corpusLine(rec))
	}
	f.Add(healthy.Bytes())
	// Torn tail: the last line cut mid-record.
	f.Add(healthy.Bytes()[:healthy.Len()-25])
	// Bad CRC in the middle.
	f.Add(bytes.Replace(healthy.Bytes(), []byte(`"sid":"a","seq":1`), []byte(`"sid":"c","seq":1`), 1))
	f.Add([]byte("not json at all\n{\"crc\":1,\"rec\":{}}\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		// Construct the handle directly: the fuzz target exercises the
		// shard decoder and tail recovery, not the lease protocol, and
		// skipping Open's lease/meta writes keeps the loop fast.
		j := &Journal{
			dir: dir, shards: 1, replica: "fuzz",
			owned: map[int]Lease{0: {Epoch: 1}},
			files: make([]shardFile, 1),
			warnf: func(string, ...any) {},
			now:   time.Now,
		}
		if err := os.WriteFile(filepath.Join(dir, "journal-00.jsonl"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		scan, err := j.Scan()
		if err != nil {
			t.Fatalf("Scan errored on content damage: %v", err)
		}
		seen := make(map[string]bool)
		for _, sl := range scan.Live {
			if seen[sl.ID] {
				t.Fatalf("session %s recovered twice", sl.ID)
			}
			seen[sl.ID] = true
			if len(sl.Records) == 0 || sl.Records[0].Kind != KindCreate {
				t.Fatalf("session %s does not start with create: %+v", sl.ID, sl.Records)
			}
			for i, r := range sl.Records {
				if r.Seq != i {
					t.Fatalf("session %s chain not contiguous at %d: %+v", sl.ID, i, r)
				}
				if i > 0 && (r.Kind == KindEnd || r.Kind == KindAbort) && i != len(sl.Records)-1 {
					t.Fatalf("session %s live with interior terminal record", sl.ID)
				}
			}
		}
		for _, id := range scan.Ended {
			if seen[id] {
				t.Fatalf("session %s both live and ended", id)
			}
		}
		// Rescan: the torn tail (if any) was truncated, so the second
		// pass is stable — same live sessions, no new truncation.
		scan2, err := j.Scan()
		if err != nil {
			t.Fatalf("rescan: %v", err)
		}
		if scan2.TruncatedTails != 0 {
			t.Fatalf("rescan truncated again (%d): truncation did not converge", scan2.TruncatedTails)
		}
		if len(scan2.Live) != len(scan.Live) || len(scan2.Ended) != len(scan.Ended) {
			t.Fatalf("rescan diverged: %d/%d live, %d/%d ended",
				len(scan.Live), len(scan2.Live), len(scan.Ended), len(scan2.Ended))
		}
	})
}
