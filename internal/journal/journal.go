// Package journal is the serving layer's durability primitive: a
// write-ahead session journal. Every advisor session appends its state
// transitions — create, suggest, observe, observe-failure, abort, end —
// as canonical JSONL records to one of N append-only disk shards
// (sharded by session id, the runcache shard idiom), so a crashed
// server can rebuild every live session by replaying its observation
// sequence into a fresh stepper. The deterministic-trace contract makes
// the replay exact: the same seed and observation sequence reproduce
// the same optimizer state, suggestion and trace, by construction.
//
// # Wire format
//
// Each shard line is one envelope object
//
//	{"crc":4118059357,"rec":{"sid":"s-000001","seq":0,"kind":"create",...}}
//
// where crc is the IEEE CRC-32 of the exact rec bytes. The CRC turns
// silent disk corruption into a detected, reported skip instead of a
// misreplayed session. A damaged or truncated final line — the torn
// tail a killed writer leaves — is truncated away and counted, never
// fatal; a damaged line in the middle of a shard is reported and the
// sessions whose record chains it breaks are dropped as damaged, while
// every other session recovers.
//
// # Multi-replica shard claims
//
// N replicas may point at one shared journal directory. Each shard is
// guarded by a lease file (lease-NN.json) created with O_EXCL: a
// replica serves exactly the shards whose leases it holds, so sessions
// partition across replicas with no session served by two processes. A
// lease is stolen only when its holder is provably gone (same replica
// id restarting in place, or a dead pid on the same host).
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Kind names one session state transition.
type Kind string

// The record kinds, in session lifecycle order.
const (
	// KindCreate opens a session; Request carries the canonical session
	// request so recovery can rebuild the optimizer bit-identically.
	KindCreate Kind = "create"
	// KindSuggest records a planned suggestion handed to the client.
	// Replay regenerates it and asserts the index and step match — a
	// mismatch means the journal and the optimizer disagree, and the
	// session is reported damaged rather than silently diverged.
	KindSuggest Kind = "suggest"
	// KindSuggestBatch records a batch of concurrent suggestions handed
	// to the client by /nextbatch: K is the requested batch size, Indices
	// the candidate indices actually returned, in issue order. Replay
	// regenerates the batch with NextBatch(K) and asserts the indices
	// match, exactly as KindSuggest does for single suggestions.
	KindSuggestBatch Kind = "suggest_batch"
	// KindObserve records one accepted measurement. It is written (and
	// synced, under the always policy) before the client's observe is
	// acknowledged, so an acknowledged observation is never lost.
	KindObserve Kind = "observe"
	// KindObserveFailure records a failed measurement the session
	// quarantined and planned around.
	KindObserveFailure Kind = "observe_failure"
	// KindAbort ends a session by client request; recovery tombstones it.
	KindAbort Kind = "abort"
	// KindEnd ends a session any other terminal way (stop rule fired,
	// TTL eviction); Reason carries the disposition. Recovery tombstones
	// it. Graceful shutdown intentionally writes no end record: a
	// drained session is still live in the journal and the next boot
	// rehydrates it.
	KindEnd Kind = "end"
	// KindSnapshot is a seq-transparent checkpoint of one live session:
	// Request carries a CRC'd Snapshot payload (config fingerprint, the
	// full op history below the Seq watermark, the resume script and
	// trace events), and Seq carries the watermark without consuming it.
	// Recovery replays from the latest valid snapshot instead of the
	// chain head; compaction may drop the ops below the watermark
	// because the snapshot carries them.
	KindSnapshot Kind = "snapshot"
	// KindTombstoneIndex is a shard-level (not per-session) record
	// compaction writes: Tombstones lists every session id whose chain
	// was dropped from this shard, so ended sessions still answer 410
	// Gone after their records are gone. It is the only record kind with
	// no session id.
	KindTombstoneIndex Kind = "tombstone_index"
)

// Record is one journal entry. Session and Seq order it: a session's
// records carry contiguous sequence numbers from 0 (the create record),
// and recovery refuses chains with gaps.
type Record struct {
	Session string `json:"sid"`
	Seq     int    `json:"seq"`
	Kind    Kind   `json:"kind"`
	// Index is the candidate of a suggest/observe/observe_failure.
	Index int `json:"index,omitempty"`
	// Step is the suggestion's observation count (suggest records).
	Step int `json:"step,omitempty"`
	// K and Indices describe a suggest_batch record: the requested batch
	// size and the candidate indices returned, in issue order.
	K       int   `json:"k,omitempty"`
	Indices []int `json:"indices,omitempty"`
	// TimeSec/CostUSD/Metrics are an observe record's measurement.
	TimeSec float64   `json:"time_sec,omitempty"`
	CostUSD float64   `json:"cost_usd,omitempty"`
	Metrics []float64 `json:"metrics,omitempty"`
	// Reason is an observe_failure's cause or an end's disposition.
	Reason string `json:"reason,omitempty"`
	// Request is a create record's session request, verbatim JSON, or a
	// snapshot record's CRC'd Snapshot payload.
	Request json.RawMessage `json:"request,omitempty"`
	// Tombstones is a tombstone_index record's dropped-session list.
	Tombstones []string `json:"tombs,omitempty"`
}

// envelope is one shard line: the record bytes plus their checksum.
type envelope struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// Sync selects when appends reach the disk.
type Sync int

const (
	// SyncAlways fsyncs after every append: an acknowledged observation
	// survives kill -9. The durable default.
	SyncAlways Sync = iota
	// SyncNever leaves flushing to the OS: faster, loses the tail of
	// recent appends on a crash (recovery still works, clients just
	// re-measure the lost steps).
	SyncNever
)

// ParseSync maps the -fsync flag vocabulary onto policies.
func ParseSync(name string) (Sync, error) {
	switch name {
	case "always", "":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("journal: unknown fsync policy %q (want always or never)", name)
	}
}

func (s Sync) String() string {
	if s == SyncNever {
		return "never"
	}
	return "always"
}

// DefaultShards is the shard-file count a fresh journal directory gets.
const DefaultShards = 8

// ErrNotOwned reports an append for a session whose shard this replica
// holds no lease on.
var ErrNotOwned = errors.New("journal: session shard not owned by this replica")

// Option configures Open.
type Option func(*config)

type config struct {
	shards  int
	limit   int
	replica string
	sync    Sync
	warnf   func(format string, args ...any)
	leases  LeaseManager
	now     func() time.Time
}

// WithShards sets the shard count for a fresh journal directory. An
// existing directory's meta file wins — every replica must agree on the
// partition — and a mismatch is an explicit Open error.
func WithShards(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.shards = n
		}
	}
}

// WithClaimLimit caps how many shard leases this replica takes (0 = no
// cap, claim everything unclaimed). A deployment of R replicas over S
// shards runs each with a limit of S/R so the partition spreads: the
// first replica up does not starve the rest.
func WithClaimLimit(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.limit = n
		}
	}
}

// WithReplica names this process for lease files. Replicas sharing a
// journal directory need distinct names; a replica reuses its own name
// to take its leases back over after a restart. The default is
// "host-<hostname>".
func WithReplica(id string) Option {
	return func(c *config) {
		if id != "" {
			c.replica = id
		}
	}
}

// WithSync sets the fsync policy.
func WithSync(s Sync) Option {
	return func(c *config) { c.sync = s }
}

// WithLeaseManager replaces the filesystem lease protocol with an
// external one — a registry client issuing time-bound, epoch-fenced
// grants. The default (nil) keeps the pid-checked lease files.
func WithLeaseManager(m LeaseManager) Option {
	return func(c *config) { c.leases = m }
}

// WithNow injects the clock lease-expiry fencing reads. Tests use it to
// move a holder past its grant without sleeping.
func WithNow(now func() time.Time) Option {
	return func(c *config) {
		if now != nil {
			c.now = now
		}
	}
}

// WithWarnf routes non-fatal warnings (skipped damaged lines, lease
// oddities). The default writes to os.Stderr.
func WithWarnf(fn func(format string, args ...any)) Option {
	return func(c *config) {
		if fn != nil {
			c.warnf = fn
		}
	}
}

// meta pins the directory-wide constants every replica must share.
type meta struct {
	Shards int `json:"shards"`
}

// Journal is one replica's handle on a (possibly shared) journal
// directory: the shards it holds leases on, open for appending. Safe
// for concurrent use.
type Journal struct {
	dir     string
	replica string
	shards  int
	sync    Sync
	warnf   func(format string, args ...any)
	leases  LeaseManager
	now     func() time.Time

	// ownedMu guards owned: the map is written at Open, by Reclaim /
	// TakeOver / DropShard at runtime, and by Close; every append and
	// ownership check reads it.
	ownedMu sync.RWMutex
	owned   map[int]Lease

	files []shardFile

	closeMu sync.Mutex
	closed  bool
}

type shardFile struct {
	mu sync.Mutex
	f  *os.File
}

// Open claims shards in dir and returns the replica's journal handle.
// The directory is created if needed; its meta file fixes the shard
// count for every replica. Open never fails because another live
// replica holds some (or even all) leases — Owned reports what this
// replica got.
func Open(dir string, opts ...Option) (*Journal, error) {
	cfg := config{
		shards: DefaultShards,
		sync:   SyncAlways,
		warnf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "journal: "+format+"\n", args...)
		},
	}
	host, _ := os.Hostname()
	cfg.replica = "host-" + host
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	shards, err := loadOrInitMeta(dir, cfg.shards)
	if err != nil {
		return nil, err
	}
	j := &Journal{
		dir:     dir,
		replica: cfg.replica,
		shards:  shards,
		sync:    cfg.sync,
		warnf:   cfg.warnf,
		leases:  cfg.leases,
		now:     cfg.now,
		owned:   make(map[int]Lease),
		files:   make([]shardFile, shards),
	}
	if j.now == nil {
		j.now = time.Now
	}
	if j.leases == nil {
		j.leases = &fsLeases{dir: dir, replica: cfg.replica, leasePath: j.leasePath, warnf: cfg.warnf}
	}
	for shard := 0; shard < shards; shard++ {
		if cfg.limit > 0 && len(j.owned) >= cfg.limit {
			break
		}
		l, ok, err := j.leases.Acquire(shard)
		if err != nil {
			j.releaseLeases()
			return nil, err
		}
		if ok {
			l.Shard = shard
			j.owned[shard] = l
		}
	}
	return j, nil
}

// loadOrInitMeta reads the directory's shard count, writing it first
// when the directory is fresh.
func loadOrInitMeta(dir string, want int) (int, error) {
	path := filepath.Join(dir, "journal.meta")
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		payload, _ := json.Marshal(meta{Shards: want})
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if os.IsExist(err) {
			// Another replica initialized first; read its answer.
			data, err = os.ReadFile(path)
			if err != nil {
				return 0, fmt.Errorf("journal: reading %s: %w", path, err)
			}
		} else if err != nil {
			return 0, fmt.Errorf("journal: creating %s: %w", path, err)
		} else {
			_, werr := f.Write(append(payload, '\n'))
			cerr := f.Close()
			if werr != nil || cerr != nil {
				return 0, fmt.Errorf("journal: writing %s: %v/%v", path, werr, cerr)
			}
			return want, nil
		}
	} else if err != nil {
		return 0, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	var m meta
	if err := json.Unmarshal(data, &m); err != nil || m.Shards <= 0 {
		return 0, fmt.Errorf("journal: %s is damaged (%v); refusing to guess the shard partition", path, err)
	}
	return m.Shards, nil
}

// Replica returns this handle's replica name.
func (j *Journal) Replica() string { return j.replica }

// Shards returns the directory's shard count.
func (j *Journal) Shards() int { return j.shards }

// Owned lists the shard numbers this replica holds leases on, sorted.
func (j *Journal) Owned() []int {
	j.ownedMu.RLock()
	out := make([]int, 0, len(j.owned))
	for shard := range j.owned {
		out = append(out, shard)
	}
	j.ownedMu.RUnlock()
	sort.Ints(out)
	return out
}

// ShardOf maps a session id onto its shard in an n-shard directory.
func ShardOf(session string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(session))
	return int(h.Sum32() % uint32(n))
}

// Owns reports whether this replica holds a live lease for the
// session's shard — i.e. whether it may serve and journal this session.
// An expired (unrenewed) grant does not count: the shard may already
// have been re-granted elsewhere.
func (j *Journal) Owns(session string) bool {
	return j.ownsShard(ShardOf(session, j.shards))
}

// ownsShard reads the ownership map under its lock.
func (j *Journal) ownsShard(shard int) bool {
	l, ok := j.leaseFor(shard)
	return ok && !l.Expired(j.now())
}

// leaseFor reads one shard's grant under the ownership lock.
func (j *Journal) leaseFor(shard int) (Lease, bool) {
	j.ownedMu.RLock()
	defer j.ownedMu.RUnlock()
	l, ok := j.owned[shard]
	return l, ok
}

// Lease returns the grant this replica holds on a shard, if any.
func (j *Journal) Lease(shard int) (Lease, bool) {
	return j.leaseFor(shard)
}

// Dir returns the journal directory path.
func (j *Journal) Dir() string { return j.dir }

func (j *Journal) shardPath(shard int) string {
	return filepath.Join(j.dir, fmt.Sprintf("journal-%02d.jsonl", shard))
}

func (j *Journal) leasePath(shard int) string {
	return filepath.Join(j.dir, fmt.Sprintf("lease-%02d.json", shard))
}

// Append writes one record to its session's shard (write-ahead: callers
// acknowledge the transition to their client only after Append returns)
// and syncs it per the policy.
func (j *Journal) Append(rec Record) error {
	return j.AppendShard(ShardOf(rec.Session, j.shards), rec)
}

// AppendShard is Append targeted at an explicit shard — for
// tombstone_index records, which carry no session id. The same
// ownership and expiry fencing applies.
func (j *Journal) AppendShard(shard int, rec Record) error {
	l, held := j.leaseFor(shard)
	if !held {
		return fmt.Errorf("%w: session %q, shard %d", ErrNotOwned, rec.Session, shard)
	}
	if l.Expired(j.now()) {
		return fmt.Errorf("%w: session %q, shard %d, epoch %d", ErrLeaseExpired, rec.Session, shard, l.Epoch)
	}
	line, err := EncodeLine(rec)
	if err != nil {
		return err
	}
	sf := &j.files[shard]
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if sf.f == nil {
		f, err := os.OpenFile(j.shardPath(shard), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("journal: opening %s: %w", j.shardPath(shard), err)
		}
		sf.f = f
	}
	if _, err := sf.f.Write(line); err != nil {
		return fmt.Errorf("journal: appending to %s: %w", j.shardPath(shard), err)
	}
	if j.sync == SyncAlways {
		if err := sf.f.Sync(); err != nil {
			return fmt.Errorf("journal: syncing %s: %w", j.shardPath(shard), err)
		}
	}
	return nil
}

// EncodeLine renders one record as its newline-terminated shard line.
func EncodeLine(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: marshaling record: %w", err)
	}
	line, err := json.Marshal(envelope{CRC: crc32.ChecksumIEEE(payload), Rec: payload})
	if err != nil {
		return nil, fmt.Errorf("journal: marshaling envelope: %w", err)
	}
	return append(line, '\n'), nil
}

// DecodeLine parses and checksum-verifies one shard line.
func DecodeLine(line []byte) (Record, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Record{}, fmt.Errorf("journal: undecodable line: %w", err)
	}
	if len(env.Rec) == 0 {
		return Record{}, errors.New("journal: line has no record")
	}
	if got := crc32.ChecksumIEEE(env.Rec); got != env.CRC {
		return Record{}, fmt.Errorf("journal: crc mismatch: line says %d, record hashes to %d", env.CRC, got)
	}
	var rec Record
	if err := json.Unmarshal(env.Rec, &rec); err != nil {
		return Record{}, fmt.Errorf("journal: undecodable record: %w", err)
	}
	if rec.Session == "" && rec.Kind != KindTombstoneIndex {
		return Record{}, errors.New("journal: record has no session id")
	}
	if rec.Seq < 0 {
		return Record{}, fmt.Errorf("journal: record has negative seq %d", rec.Seq)
	}
	return rec, nil
}

// SessionLog is one recoverable session: its records in seq order,
// starting with the create record.
type SessionLog struct {
	ID      string
	Records []Record
}

// Recovery is what a Scan found in this replica's shards.
type Recovery struct {
	// Live holds the sessions with no terminal record, replayable.
	Live []SessionLog
	// Ended lists session ids whose journal says ended or aborted;
	// the serving layer answers 410 Gone for them.
	Ended []string
	// Damage reports every problem found: mid-file corrupt lines,
	// broken record chains. One entry per problem, human-readable.
	Damage []string
	// Tombstones lists session ids recorded in tombstone_index records:
	// sessions compaction dropped from a shard after they ended. The
	// serving layer answers 410 Gone for them without any chain left to
	// scan.
	Tombstones []string
	// TruncatedTails counts shard files whose torn final line was
	// truncated away (the normal aftermath of kill -9 mid-write).
	TruncatedTails int
}

// Scan reads every owned shard, truncating torn tails, verifying CRCs
// and record chains, and returns the recoverable state. Sessions whose
// chains are broken by damage land in Damage, not in Live — a session
// either replays exactly or not at all.
func (j *Journal) Scan() (*Recovery, error) {
	return j.ScanShards(j.Owned())
}

// ScanShards is Scan over an explicit shard list — the reclaim path
// scans just the shards it took over from a dead peer.
func (j *Journal) ScanShards(shards []int) (*Recovery, error) {
	rec := &Recovery{}
	bySession := make(map[string][]Record)
	var order []string // first-seen order, for deterministic output
	for _, shard := range shards {
		if err := scanShardFile(j.shardPath(shard), true, j.warnf, rec, bySession, &order); err != nil {
			return nil, err
		}
	}
	finishScan(rec, bySession, order)
	return rec, nil
}

// ScanDir scans explicit shards of a foreign journal directory
// read-only — no torn-tail truncation, no newline repair — so a
// replica that reclaimed a dead cross-host peer's shards can adopt the
// sessions from the peer's (reattached or shared) journal directory
// without mutating it. The directory's meta must agree on the shard
// count.
func ScanDir(dir string, shards []int, warnf func(format string, args ...any)) (*Recovery, error) {
	if warnf == nil {
		warnf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "journal: "+format+"\n", args...)
		}
	}
	if data, err := os.ReadFile(filepath.Join(dir, "journal.meta")); err == nil {
		var m meta
		if jerr := json.Unmarshal(data, &m); jerr == nil && m.Shards > 0 {
			for _, shard := range shards {
				if shard >= m.Shards {
					return nil, fmt.Errorf("journal: %s has %d shards, cannot scan shard %d", dir, m.Shards, shard)
				}
			}
		}
	}
	rec := &Recovery{}
	bySession := make(map[string][]Record)
	var order []string
	for _, shard := range shards {
		path := filepath.Join(dir, fmt.Sprintf("journal-%02d.jsonl", shard))
		if err := scanShardFile(path, false, warnf, rec, bySession, &order); err != nil {
			return nil, err
		}
	}
	finishScan(rec, bySession, order)
	return rec, nil
}

// finishScan validates the per-session chains a shard sweep collected
// and partitions them into the Recovery buckets.
func finishScan(rec *Recovery, bySession map[string][]Record, order []string) {
	for _, id := range order {
		records := bySession[id]
		sort.SliceStable(records, func(a, b int) bool { return records[a].Seq < records[b].Seq })
		log, ended, problem := ValidateChain(id, records)
		switch {
		case problem != "":
			rec.Damage = append(rec.Damage, problem)
		case ended:
			rec.Ended = append(rec.Ended, id)
		default:
			rec.Live = append(rec.Live, log)
		}
	}
}

// ValidateChain checks one session's seq-sorted records: contiguous
// seqs from 0, a create first, create only first, terminal records
// terminal. Snapshot records are seq-transparent — they carry the
// session's watermark without consuming a seq — and a valid snapshot
// may bridge a gap below its watermark, because compaction drops the
// ops the snapshot carries. It returns the replayable log, whether the
// session ended, or a non-empty damage report.
func ValidateChain(id string, records []Record) (SessionLog, bool, string) {
	records = dedupeSorted(records)
	if len(records) == 0 {
		return SessionLog{}, false, fmt.Sprintf("session %s: no records", id)
	}
	ended := false
	expect := 0 // the next seq a seq-consuming record must carry
	for i, r := range records {
		if ended {
			return SessionLog{}, false, fmt.Sprintf("session %s: record after terminal record at seq %d; dropping session", id, r.Seq)
		}
		if r.Kind == KindSnapshot {
			switch {
			case i == 0:
				return SessionLog{}, false, fmt.Sprintf("session %s: snapshot before create record; dropping session", id)
			case r.Seq == expect:
				// In-place checkpoint of an intact chain: transparent.
			case r.Seq > expect:
				// A gap below the watermark is legitimate only when the
				// snapshot itself carries the dropped ops (compaction) —
				// which requires the payload to decode and its watermark
				// to match the record's seq.
				snap, err := DecodeSnapshot(r.Request)
				if err != nil {
					return SessionLog{}, false, fmt.Sprintf("session %s: snapshot at seq %d cannot bridge gap from %d: %v; dropping session", id, r.Seq, expect, err)
				}
				if snap.Watermark != r.Seq {
					return SessionLog{}, false, fmt.Sprintf("session %s: snapshot at seq %d has watermark %d; dropping session", id, r.Seq, snap.Watermark)
				}
				expect = r.Seq
			default:
				return SessionLog{}, false, fmt.Sprintf("session %s: snapshot at stale seq %d (chain at %d); dropping session", id, r.Seq, expect)
			}
			continue
		}
		if (r.Kind == KindCreate) != (i == 0) {
			return SessionLog{}, false, fmt.Sprintf("session %s: create record out of place at seq %d; dropping session", id, r.Seq)
		}
		if r.Seq != expect {
			return SessionLog{}, false, fmt.Sprintf("session %s: record chain broken at seq %d (found %d); dropping session", id, expect, r.Seq)
		}
		expect++
		if r.Kind == KindEnd || r.Kind == KindAbort {
			ended = true
		}
	}
	return SessionLog{ID: id, Records: records}, ended, ""
}

// dedupeSorted drops byte-identical duplicate records from one
// session's seq-sorted chain, keeping the first of each. Cross-host
// adoption re-journals a reclaimed chain into the survivor's own
// directory, and a shard that bounces back delivers the same records
// twice; the records are byte-identical by the deterministic-trace
// contract, so dropping the copies is exact. Two records sharing a seq
// with *different* bytes are left in place for ValidateChain to report
// as a broken chain.
func dedupeSorted(records []Record) []Record {
	out := records[:0:0]
	for i := 0; i < len(records); {
		k := i
		for k < len(records) && records[k].Seq == records[i].Seq {
			k++
		}
		var kept [][]byte
		for _, r := range records[i:k] {
			line, err := json.Marshal(r)
			dup := false
			if err == nil {
				for _, prev := range kept {
					if bytes.Equal(prev, line) {
						dup = true
						break
					}
				}
			}
			if !dup {
				kept = append(kept, line)
				out = append(out, r)
			}
		}
		i = k
	}
	return out
}

// scanShardFile reads one shard file line by line. The final line is
// allowed to be torn; with repair set it is truncated away (counted)
// and a missing final newline is patched — a foreign directory is
// scanned with repair off and left untouched. Any earlier damage is
// reported and skipped.
func scanShardFile(path string, repair bool, warnf func(format string, args ...any), rec *Recovery, bySession map[string][]Record, order *[]string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: opening %s: %w", path, err)
	}
	defer f.Close()

	// Read and decode every line, remembering where the last good one
	// ends. Damaged lines before that point are mid-file corruption
	// (reported, skipped); the damaged suffix after it is the torn tail
	// (truncated away so the next boot starts clean). Truncating the
	// whole suffix at once makes recovery idempotent: a rescan of a
	// scanned shard never truncates again.
	type badLine struct {
		lineNo int
		err    error
	}
	var (
		br          = bufio.NewReaderSize(f, 1<<16)
		offset      int64 // byte offset just past the line being read
		lastGoodEnd int64 // offset just past the last decodable line
		lineNo      int
		bad         []badLine // damaged lines after the last good one
		good        []Record
		lastTorn    bool // the last good line had no trailing newline
	)
	for {
		line, err := br.ReadBytes('\n')
		if len(line) == 0 && err == io.EOF {
			break
		}
		if err != nil && err != io.EOF {
			return fmt.Errorf("journal: reading %s: %w", path, err)
		}
		lineNo++
		torn := err == io.EOF // no trailing newline: a torn write
		offset += int64(len(line))
		r, derr := DecodeLine(bytesTrimNewline(line))
		if derr != nil {
			bad = append(bad, badLine{lineNo: lineNo, err: derr})
			continue
		}
		// A later good line proves the damage collected so far is
		// mid-file, not a tail: report it and move on.
		for _, b := range bad {
			rec.Damage = append(rec.Damage, fmt.Sprintf("%s:%d: %v", path, b.lineNo, b.err))
		}
		bad = bad[:0]
		good = append(good, r)
		lastGoodEnd = offset
		lastTorn = torn
	}
	switch {
	case len(bad) > 0:
		// The damaged suffix is the torn tail; cut it off (or, scanning
		// a foreign directory read-only, just skip it).
		if repair {
			if terr := truncateAt(path, lastGoodEnd); terr != nil {
				warnf("%s: could not truncate torn tail: %v", path, terr)
			}
		}
		rec.TruncatedTails++
		warnf("%s: %d-line torn tail (first: line %d, %v)", path, len(bad), bad[0].lineNo, bad[0].err)
		// A multi-line damaged suffix is more than one crash's torn
		// write; surface the extra lines as damage so heavy tail
		// corruption stays visible while recovery still proceeds.
		for _, b := range bad[1:] {
			rec.Damage = append(rec.Damage, fmt.Sprintf("%s:%d: truncated with tail: %v", path, b.lineNo, b.err))
		}
	case lastTorn && repair:
		// The final record survived intact but its newline did not;
		// repair it so the next append starts on a fresh line.
		if rerr := appendNewline(path); rerr != nil {
			warnf("%s: could not repair missing final newline: %v", path, rerr)
		}
	}
	for _, r := range good {
		if r.Kind == KindTombstoneIndex {
			// Shard-level record, not part of any session chain.
			rec.Tombstones = append(rec.Tombstones, r.Tombstones...)
			continue
		}
		if _, seen := bySession[r.Session]; !seen {
			*order = append(*order, r.Session)
		}
		bySession[r.Session] = append(bySession[r.Session], r)
	}
	return nil
}

// appendNewline terminates a shard whose last (intact) line lost its
// newline to a crash.
func appendNewline(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte{'\n'}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// bytesTrimNewline strips the record terminator (and a CR, for shards
// that crossed a Windows filesystem) without copying.
func bytesTrimNewline(line []byte) []byte {
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
		line = line[:len(line)-1]
	}
	return line
}

// truncateAt cuts a shard file to the given length.
func truncateAt(path string, n int64) error {
	return os.Truncate(path, n)
}

// releaseLeases gives this replica's grants back to the manager.
func (j *Journal) releaseLeases() {
	j.ownedMu.Lock()
	defer j.ownedMu.Unlock()
	for shard, l := range j.owned {
		if err := j.leases.Release(l); err != nil {
			j.warnf("releasing lease %d: %v", shard, err)
		}
	}
	j.owned = make(map[int]Lease)
}

// RenewLeases extends every held grant through the manager and drops
// the ones the manager reports lost (expired and re-granted elsewhere).
// It returns the shards dropped, sorted; the serving layer evicts their
// sessions. A manager error keeps the grant — local expiry fencing
// stops appends on its own if the outage outlasts the TTL.
func (j *Journal) RenewLeases() ([]int, error) {
	var lost []int
	var firstErr error
	for _, shard := range j.Owned() {
		l, held := j.leaseFor(shard)
		if !held {
			continue
		}
		nl, ok, err := j.leases.Renew(l)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			j.warnf("renewing lease %d: %v", shard, err)
			continue
		}
		j.ownedMu.Lock()
		if ok {
			nl.Shard = shard
			j.owned[shard] = nl
		} else {
			delete(j.owned, shard)
			lost = append(lost, shard)
		}
		j.ownedMu.Unlock()
	}
	sort.Ints(lost)
	return lost, firstErr
}

// RenewShard re-verifies one held grant with the manager, immediately:
// held=false means the grant was superseded (another replica owns the
// shard now) and it has been dropped from the owned set; the caller
// must evict the shard's sessions. A manager error keeps the grant, as
// in RenewLeases — local expiry fencing bounds the damage. Used where
// ownership is suddenly in doubt, e.g. a migration handoff whose
// outcome was lost in transit.
func (j *Journal) RenewShard(shard int) (bool, error) {
	l, held := j.leaseFor(shard)
	if !held {
		return false, nil
	}
	nl, ok, err := j.leases.Renew(l)
	if err != nil {
		return true, err
	}
	j.ownedMu.Lock()
	if ok {
		nl.Shard = shard
		j.owned[shard] = nl
	} else {
		delete(j.owned, shard)
	}
	j.ownedMu.Unlock()
	return ok, nil
}

// DropShard forgets a shard locally without releasing the grant — the
// migrate-out path, where the grant was already transferred to the
// successor and releasing it here would yank it back out from under
// them.
func (j *Journal) DropShard(shard int) {
	j.ownedMu.Lock()
	delete(j.owned, shard)
	j.ownedMu.Unlock()
	sf := &j.files[shard]
	sf.mu.Lock()
	if sf.f != nil {
		sf.f.Close()
		sf.f = nil
	}
	sf.mu.Unlock()
}

// TakeOver claims a shard directly from its current holder through the
// manager's transfer extension, fenced by the holder's epoch — the
// migrate-in path. ok=false without error means the transfer was
// refused (stale epoch, holder changed).
func (j *Journal) TakeOver(shard int, from string, fromEpoch uint64) (Lease, bool, error) {
	tl, can := j.leases.(TransferLeaser)
	if !can {
		return Lease{}, false, fmt.Errorf("journal: lease manager %T does not support transfers", j.leases)
	}
	l, ok, err := tl.Transfer(shard, from, fromEpoch)
	if err != nil || !ok {
		return Lease{}, false, err
	}
	l.Shard = shard
	j.ownedMu.Lock()
	j.owned[shard] = l
	j.ownedMu.Unlock()
	return l, true, nil
}

// Reclaim attempts to take over every shard this replica does not own,
// claiming only grants the manager says are up for grabs (a dead pid's
// filesystem lease, or a registry grant past its TTL). It returns the
// grants newly claimed, sorted by shard; each carries the previous
// holder's journal directory so the caller can scan and adopt the
// shard's live sessions even when the dead peer journaled elsewhere.
func (j *Journal) Reclaim() ([]Lease, error) {
	var claimed []Lease
	for shard := 0; shard < j.shards; shard++ {
		if _, held := j.leaseFor(shard); held {
			continue
		}
		l, ok, err := j.leases.Acquire(shard)
		if err != nil {
			j.warnf("reclaiming shard %d: %v", shard, err)
			continue
		}
		if !ok {
			continue
		}
		l.Shard = shard
		j.ownedMu.Lock()
		j.owned[shard] = l
		j.ownedMu.Unlock()
		claimed = append(claimed, l)
	}
	sort.Slice(claimed, func(a, b int) bool { return claimed[a].Shard < claimed[b].Shard })
	return claimed, nil
}

// Close releases the shard leases and file handles. A closed journal
// owns nothing; Append returns ErrNotOwned.
func (j *Journal) Close() error {
	j.closeMu.Lock()
	defer j.closeMu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var firstErr error
	for i := range j.files {
		sf := &j.files[i]
		sf.mu.Lock()
		if sf.f != nil {
			if err := sf.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			sf.f = nil
		}
		sf.mu.Unlock()
	}
	j.releaseLeases()
	return firstErr
}
