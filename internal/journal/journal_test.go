package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openAll opens a journal owning every shard, failing the test on error.
func openAll(t *testing.T, dir string, opts ...Option) *Journal {
	t.Helper()
	j, err := Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// appendAll writes records, failing the test on error.
func appendAll(t *testing.T, j *Journal, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append(%+v): %v", r, err)
		}
	}
}

// sessionRecords builds a canonical create/suggest/observe chain.
func sessionRecords(id string, observes int, ended bool) []Record {
	recs := []Record{{Session: id, Seq: 0, Kind: KindCreate, Request: json.RawMessage(`{"method":"random","seed":1}`)}}
	seq := 1
	for i := 0; i < observes; i++ {
		recs = append(recs,
			Record{Session: id, Seq: seq, Kind: KindSuggest, Index: i, Step: i},
			Record{Session: id, Seq: seq + 1, Kind: KindObserve, Index: i, TimeSec: float64(i) + 0.5, CostUSD: 0.1},
		)
		seq += 2
	}
	if ended {
		recs = append(recs, Record{Session: id, Seq: seq, Kind: KindEnd, Reason: "done"})
	}
	return recs
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openAll(t, dir, WithReplica("r1"), WithShards(4))

	live := sessionRecords("s-000001", 2, false)
	ended := sessionRecords("s-000002", 1, true)
	// Interleave appends across sessions, as a live server would.
	appendAll(t, j, live[0], ended[0], live[1], ended[1], live[2], ended[2], live[3], ended[3], live[4])

	scan, err := j.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Live) != 1 || scan.Live[0].ID != "s-000001" {
		t.Fatalf("Live = %+v, want exactly s-000001", scan.Live)
	}
	if len(scan.Live[0].Records) != len(live) {
		t.Fatalf("live session has %d records, want %d", len(scan.Live[0].Records), len(live))
	}
	for i, r := range scan.Live[0].Records {
		if r.Seq != i || r.Session != "s-000001" {
			t.Fatalf("record %d = %+v out of order", i, r)
		}
	}
	if got := scan.Live[0].Records[2]; got.Kind != KindObserve || got.TimeSec != 0.5 || got.CostUSD != 0.1 {
		t.Errorf("observe record did not round-trip: %+v", got)
	}
	if len(scan.Ended) != 1 || scan.Ended[0] != "s-000002" {
		t.Fatalf("Ended = %v, want [s-000002]", scan.Ended)
	}
	if len(scan.Damage) != 0 || scan.TruncatedTails != 0 {
		t.Fatalf("unexpected damage: %+v", scan)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j := openAll(t, dir, WithReplica("r1"), WithShards(1))
	appendAll(t, j, sessionRecords("s-000001", 2, false)...)
	j.Close()

	// Tear the tail: a half-written line with no newline, as kill -9
	// mid-append leaves it.
	path := filepath.Join(dir, "journal-00.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crc":123,"rec":{"sid":"s-000001","seq":5,"ki`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.ReadFile(path)

	j2 := openAll(t, dir, WithReplica("r1"))
	scan, err := j2.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if scan.TruncatedTails != 1 {
		t.Fatalf("TruncatedTails = %d, want 1", scan.TruncatedTails)
	}
	if len(scan.Live) != 1 || len(scan.Live[0].Records) != 5 {
		t.Fatalf("Live = %+v, want the 5 intact records", scan.Live)
	}
	after, _ := os.ReadFile(path)
	if len(after) >= len(before) {
		t.Fatalf("torn tail not truncated: %d bytes before, %d after", len(before), len(after))
	}
	// A rescan of the truncated file is clean.
	scan2, err := j2.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if scan2.TruncatedTails != 0 || len(scan2.Live) != 1 {
		t.Fatalf("rescan after truncation = %+v, want clean", scan2)
	}
}

func TestJournalTornNewlineRepaired(t *testing.T) {
	dir := t.TempDir()
	j := openAll(t, dir, WithReplica("r1"), WithShards(1))
	appendAll(t, j, sessionRecords("s-000001", 1, false)...)
	j.Close()

	// Chop only the final newline: the record itself survived the crash.
	path := filepath.Join(dir, "journal-00.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openAll(t, dir, WithReplica("r1"))
	scan, err := j2.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Live) != 1 || len(scan.Live[0].Records) != 3 {
		t.Fatalf("Live = %+v, want all 3 records", scan.Live)
	}
	// The shard must be appendable again without gluing lines together.
	if err := j2.Append(Record{Session: "s-000001", Seq: 3, Kind: KindSuggest, Index: 1, Step: 1}); err != nil {
		t.Fatal(err)
	}
	scan2, err := j2.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(scan2.Live) != 1 || len(scan2.Live[0].Records) != 4 || len(scan2.Damage) != 0 {
		t.Fatalf("post-repair scan = %+v, want 4 clean records", scan2)
	}
}

func TestJournalCorruptMidLineDropsOnlyItsSession(t *testing.T) {
	dir := t.TempDir()
	j := openAll(t, dir, WithReplica("r1"), WithShards(1))
	a := sessionRecords("sess-a", 2, false)
	b := sessionRecords("sess-b", 2, false)
	appendAll(t, j, a[0], b[0], a[1], b[1], a[2], b[2], a[3], b[3], a[4], b[4])
	j.Close()

	// Flip bytes inside one of sess-a's mid-file records so its CRC
	// fails, then append one more valid record so the damage is not the
	// tail.
	path := filepath.Join(dir, "journal-00.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	lines[4] = strings.Replace(lines[4], `"sid":"sess-a"`, `"sid":"sess-X"`, 1) // payload no longer matches crc
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openAll(t, dir, WithReplica("r1"))
	scan, err := j2.Scan()
	if err != nil {
		t.Fatal(err)
	}
	// sess-a lost a mid-chain record: reported damaged, not replayed.
	// sess-b is untouched and fully recovered.
	if len(scan.Live) != 1 || scan.Live[0].ID != "sess-b" || len(scan.Live[0].Records) != 5 {
		t.Fatalf("Live = %+v, want sess-b complete", scan.Live)
	}
	if len(scan.Damage) < 2 {
		t.Fatalf("Damage = %v, want the corrupt line and the broken sess-a chain reported", scan.Damage)
	}
	for _, d := range scan.Damage {
		t.Log("damage:", d)
	}
}

func TestJournalLeasePartition(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, WithReplica("alpha"), WithShards(8), WithClaimLimit(4))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(dir, WithReplica("beta"))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if got := len(a.Owned()); got != 4 {
		t.Fatalf("alpha owns %d shards, want 4 (claim limit)", got)
	}
	if got := len(b.Owned()); got != 4 {
		t.Fatalf("beta owns %d shards, want the remaining 4", got)
	}
	owned := make(map[int]string)
	for _, s := range a.Owned() {
		owned[s] = "alpha"
	}
	for _, s := range b.Owned() {
		if who, dup := owned[s]; dup {
			t.Fatalf("shard %d claimed by both %s and beta", s, who)
		}
		owned[s] = "beta"
	}
	if len(owned) != 8 {
		t.Fatalf("%d shards claimed in total, want 8", len(owned))
	}

	// Every session id is servable by exactly one replica.
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("s-%06d", i)
		if a.Owns(id) == b.Owns(id) {
			t.Fatalf("session %s owned by %v/%v, want exactly one replica", id, a.Owns(id), b.Owns(id))
		}
	}

	// Appends are fenced to the owner.
	id := fmt.Sprintf("s-%06d", 1)
	owner, other := a, b
	if b.Owns(id) {
		owner, other = b, a
	}
	if err := owner.Append(Record{Session: id, Seq: 0, Kind: KindCreate}); err != nil {
		t.Fatalf("owner append: %v", err)
	}
	if err := other.Append(Record{Session: id, Seq: 1, Kind: KindSuggest}); err == nil {
		t.Fatal("non-owner append succeeded, want ErrNotOwned")
	}
}

func TestJournalLeaseTakeoverAfterCrash(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, WithReplica("alpha"), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(j.Owned()); got != 2 {
		t.Fatalf("first open owns %d, want 2", got)
	}
	// Crash: no Close, lease files left behind. The same replica id
	// restarting must steal its own leases back.
	j2, err := Open(dir, WithReplica("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := len(j2.Owned()); got != 2 {
		t.Fatalf("restart owns %d, want 2 (own-lease takeover)", got)
	}

	// A dead pid's lease is stolen by any replica.
	j2.Close()
	lp := filepath.Join(dir, "lease-00.json")
	payload, _ := json.Marshal(lease{Replica: "ghost", PID: 1 << 30, Acquired: "2026-01-01T00:00:00Z"})
	if err := os.WriteFile(lp, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	j3, err := Open(dir, WithReplica("beta"))
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := len(j3.Owned()); got != 2 {
		t.Fatalf("beta owns %d, want 2 (dead-pid steal)", got)
	}
}

func TestJournalMetaPinsShardCount(t *testing.T) {
	dir := t.TempDir()
	j := openAll(t, dir, WithReplica("r1"), WithShards(4))
	j.Close()
	// A replica asking for a different count gets the directory's.
	j2 := openAll(t, dir, WithReplica("r1"), WithShards(16))
	if j2.Shards() != 4 {
		t.Fatalf("Shards = %d, want the meta-pinned 4", j2.Shards())
	}
	// A damaged meta file refuses loudly rather than guessing.
	j2.Close()
	if err := os.WriteFile(filepath.Join(dir, "journal.meta"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, WithReplica("r1")); err == nil {
		t.Fatal("Open with damaged meta succeeded, want error")
	}
}

func TestJournalClosedAppendsRejected(t *testing.T) {
	dir := t.TempDir()
	j := openAll(t, dir, WithReplica("r1"))
	j.Close()
	if err := j.Append(Record{Session: "s-000001", Seq: 0, Kind: KindCreate}); err == nil {
		t.Fatal("append after Close succeeded, want ErrNotOwned")
	}
}

func TestValidateChainRejectsGapsAndStrays(t *testing.T) {
	cases := []struct {
		name string
		recs []Record
	}{
		{"gap", []Record{
			{Session: "x", Seq: 0, Kind: KindCreate},
			{Session: "x", Seq: 2, Kind: KindObserve},
		}},
		{"no create", []Record{{Session: "x", Seq: 0, Kind: KindSuggest}}},
		{"second create", []Record{
			{Session: "x", Seq: 0, Kind: KindCreate},
			{Session: "x", Seq: 1, Kind: KindCreate},
		}},
		{"record after end", []Record{
			{Session: "x", Seq: 0, Kind: KindCreate},
			{Session: "x", Seq: 1, Kind: KindEnd},
			{Session: "x", Seq: 2, Kind: KindSuggest},
		}},
		{"empty", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, problem := ValidateChain("x", tc.recs); problem == "" {
				t.Fatalf("chain %+v validated, want a damage report", tc.recs)
			}
		})
	}
}

func TestEncodeDecodeLine(t *testing.T) {
	rec := Record{
		Session: "s-000042", Seq: 7, Kind: KindObserve, Index: 3,
		TimeSec: 123.25, CostUSD: 0.75, Metrics: []float64{1, 2.5, -3},
	}
	line, err := EncodeLine(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLine(line[:len(line)-1])
	if err != nil {
		t.Fatal(err)
	}
	if got.Session != rec.Session || got.Seq != rec.Seq || got.Kind != rec.Kind ||
		got.TimeSec != rec.TimeSec || len(got.Metrics) != 3 || got.Metrics[2] != -3 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// Any single flipped payload byte must fail the CRC.
	for i := range line {
		if line[i] == '{' || line[i] == '}' || line[i] == '"' || line[i] == '\n' {
			continue
		}
		mut := append([]byte(nil), line...)
		mut[i] ^= 0x01
		if _, err := DecodeLine(mut[:len(mut)-1]); err == nil {
			// A flip inside the crc field itself can only produce a
			// mismatch too, so any acceptance is a bug.
			t.Fatalf("flipped byte %d accepted: %q", i, mut)
		}
	}
}
