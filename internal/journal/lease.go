package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"syscall"
	"time"
)

// lease is the content of one shard's lease file. A lease names its
// holder (replica id + pid on this host); it has no expiry — ownership
// ends when the holder releases it, restarts under the same replica id,
// or its pid is provably dead. That keeps the protocol crash-safe
// without clocks: a kill -9'd replica's leases are stolen on the next
// claim because its pid no longer exists.
type lease struct {
	Replica  string `json:"replica"`
	PID      int    `json:"pid"`
	Acquired string `json:"acquired"`
}

// claimLease tries to take one shard's lease for replica. It returns
// whether the lease was won. The protocol:
//
//  1. O_EXCL-create the lease file — first writer wins.
//  2. If it exists, read it. Our own replica id (a restart, in place or
//     after a crash) or a dead pid means the holder is gone: remove the
//     stale file and retry the exclusive create, racing any other
//     claimant fairly.
//  3. A live foreign holder keeps the shard.
func claimLease(path, replica string) (bool, error) {
	for attempt := 0; attempt < 3; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			payload, _ := json.Marshal(lease{
				Replica:  replica,
				PID:      os.Getpid(),
				Acquired: time.Now().UTC().Format(time.RFC3339),
			})
			_, werr := f.Write(append(payload, '\n'))
			cerr := f.Close()
			if werr != nil || cerr != nil {
				os.Remove(path)
				return false, fmt.Errorf("journal: writing lease %s: %v/%v", path, werr, cerr)
			}
			return true, nil
		}
		if !os.IsExist(err) {
			return false, fmt.Errorf("journal: creating lease %s: %w", path, err)
		}
		data, rerr := os.ReadFile(path)
		if os.IsNotExist(rerr) {
			continue // holder released between our create and read; retry
		}
		if rerr != nil {
			return false, fmt.Errorf("journal: reading lease %s: %w", path, rerr)
		}
		var l lease
		stale := false
		if jerr := json.Unmarshal(data, &l); jerr != nil || l.Replica == "" {
			stale = true // damaged lease: no identifiable holder
		} else if l.Replica == replica {
			stale = true // our own previous incarnation
		} else if l.PID > 0 && !pidAlive(l.PID) {
			stale = true // holder died without releasing
		}
		if !stale {
			return false, nil
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return false, fmt.Errorf("journal: removing stale lease %s: %w", path, err)
		}
		// Loop: retry the exclusive create against any concurrent claimant.
	}
	return false, nil
}

// pidAlive reports whether a process with the given pid exists on this
// host. Signal 0 probes without delivering; EPERM still means "exists".
func pidAlive(pid int) bool {
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = proc.Signal(syscall.Signal(0))
	return err == nil || err == syscall.EPERM
}
