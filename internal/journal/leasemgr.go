package journal

import (
	"errors"
	"os"
	"time"
)

// Lease is one shard-ownership grant. The filesystem manager issues
// open-ended grants (zero Expiry, constant epoch — pid liveness is the
// fence); a network registry issues time-bound grants with monotone
// epochs so a paused-then-resumed holder can be fenced off after its
// grant lapses.
type Lease struct {
	Shard int
	// Epoch is the fencing token: the registry bumps it on every grant
	// and transfer, so any write stamped with a stale epoch (or made
	// after local expiry) identifies a holder that lost the shard.
	Epoch uint64
	// Expiry is when this grant lapses on the holder's own clock; zero
	// means it never does. Holders renew well before it and stop
	// appending once it passes.
	Expiry time.Time
	// PrevReplica/PrevAddr/PrevDataDir describe the previous holder, as
	// recorded by the grantor: after a takeover the new owner scans
	// PrevDataDir (the dead peer's journal directory, reattached or
	// shared) to adopt the shard's sessions. Empty when the shard was
	// never held or the previous holder shares this journal directory.
	PrevReplica string
	PrevAddr    string
	PrevDataDir string
}

// Expired reports whether the grant has lapsed at now. Open-ended
// grants never expire.
func (l Lease) Expired(now time.Time) bool {
	return !l.Expiry.IsZero() && !now.Before(l.Expiry)
}

// ErrLeaseExpired reports an append attempted under a lapsed lease: the
// shard may already belong to another replica, so the write must fail
// before it is acknowledged, not after.
var ErrLeaseExpired = errors.New("journal: shard lease expired")

// LeaseManager is the shard-ownership protocol a Journal claims through.
// The default is the filesystem manager (pid-checked O_EXCL lease files,
// same-host only); a registry client implements the same interface over
// HTTP for cross-host clusters.
type LeaseManager interface {
	// Acquire tries to take one shard. ok=false without error means a
	// live holder keeps it.
	Acquire(shard int) (l Lease, ok bool, err error)
	// Renew extends a held grant. ok=false means the grant was lost
	// (expired and re-granted, or epoch superseded): the holder must
	// drop the shard and re-Acquire for a fresh epoch.
	Renew(l Lease) (Lease, bool, error)
	// Release gives a grant back.
	Release(l Lease) error
}

// TransferLeaser is the optional migration extension: hand a shard from
// its current holder directly to a successor, fenced by the holder's
// epoch, without waiting for expiry.
type TransferLeaser interface {
	Transfer(shard int, from string, fromEpoch uint64) (Lease, bool, error)
}

// fsLeases is the default manager: the pid-checked O_EXCL lease files
// replicas sharing one journal directory coordinate through. Grants are
// open-ended (process liveness is the fence) and PrevDataDir is always
// the shared directory itself, so adoption scans locally.
type fsLeases struct {
	dir       string
	replica   string
	leasePath func(shard int) string
	warnf     func(format string, args ...any)
}

func (m *fsLeases) Acquire(shard int) (Lease, bool, error) {
	ok, err := claimLease(m.leasePath(shard), m.replica)
	if err != nil || !ok {
		return Lease{}, false, err
	}
	return Lease{Shard: shard, Epoch: 1, PrevDataDir: m.dir}, true, nil
}

func (m *fsLeases) Renew(l Lease) (Lease, bool, error) {
	// Open-ended grants need no renewal; pid death is the revocation.
	return l, true, nil
}

func (m *fsLeases) Release(l Lease) error {
	if err := os.Remove(m.leasePath(l.Shard)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
