package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
)

// This file is the snapshot payload format. A snapshot record's Request
// field carries a second CRC'd envelope — independent of the line-level
// envelope, because compaction copies snapshot records between files
// and the payload must stay verifiable on its own — wrapping a Snapshot
// object: everything recovery needs to rebuild a live session from the
// watermark instead of from the chain head.

// Snapshot is one live session's checkpoint: the session-config
// fingerprint, the full op history below the watermark, the optimizer's
// resume script and the trace events recorded so far. Recovery replays
// Ops against a resumed advisor (the script skips the surrogate fits),
// then continues from the watermark with the chain's remaining records.
type Snapshot struct {
	// Fingerprint identifies the session configuration (the create
	// record's request bytes, hashed); recovery refuses a snapshot whose
	// fingerprint does not match the chain's create record.
	Fingerprint string `json:"fp"`
	// Watermark is the session's next seq at capture time: every
	// seq-consuming record below it is carried in Ops, and the snapshot
	// record itself is journaled with Seq = Watermark.
	Watermark int `json:"watermark"`
	// Observations counts the accepted measurements in Ops — a cheap
	// cross-check that the op list was not truncated.
	Observations int `json:"obs"`
	// Ops is the session's seq-consuming history after the create
	// record: seqs 1..Watermark-1, contiguous, suggest / suggest_batch /
	// observe / observe_failure only, with the Session field stripped
	// (the enclosing record identifies the session).
	Ops []Record `json:"ops,omitempty"`
	// Script is the optimizer's recorded decision log (an
	// arrow.ResumeScript), verbatim JSON. Advisory: a stale or damaged
	// script only costs recovery the surrogate-fit skip, never
	// correctness.
	Script json.RawMessage `json:"script,omitempty"`
	// Events is the session's wall-stripped telemetry trace up to the
	// watermark, verbatim JSON, so a snapshot-restored session serves
	// byte-identical traces.
	Events json.RawMessage `json:"events,omitempty"`
}

// snapEnvelope wraps the snapshot payload with its own checksum.
type snapEnvelope struct {
	CRC  uint32          `json:"crc"`
	Snap json.RawMessage `json:"snap"`
}

// Fingerprint hashes a create record's request bytes into the session
// config fingerprint snapshots carry.
func Fingerprint(request []byte) string {
	h := fnv.New64a()
	h.Write(request)
	return fmt.Sprintf("%016x", h.Sum64())
}

// snapshotOpKinds is what a snapshot's op history may contain: the
// seq-consuming, non-terminal record kinds.
var snapshotOpKinds = map[Kind]bool{
	KindSuggest:        true,
	KindSuggestBatch:   true,
	KindObserve:        true,
	KindObserveFailure: true,
}

// EncodeSnapshot renders a snapshot as the CRC'd payload a snapshot
// record carries in its Request field.
func EncodeSnapshot(snap Snapshot) (json.RawMessage, error) {
	if err := validateSnapshot(snap); err != nil {
		return nil, fmt.Errorf("journal: encoding snapshot: %w", err)
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("journal: marshaling snapshot: %w", err)
	}
	env, err := json.Marshal(snapEnvelope{CRC: crc32.ChecksumIEEE(payload), Snap: payload})
	if err != nil {
		return nil, fmt.Errorf("journal: marshaling snapshot envelope: %w", err)
	}
	return env, nil
}

// DecodeSnapshot parses, checksum-verifies and invariant-checks a
// snapshot record's Request payload. Any failure means the snapshot is
// unusable and recovery falls back — to an older snapshot or a full
// replay — never to a guess.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var env snapEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return Snapshot{}, fmt.Errorf("journal: undecodable snapshot envelope: %w", err)
	}
	if len(env.Snap) == 0 {
		return Snapshot{}, errors.New("journal: snapshot envelope has no payload")
	}
	if got := crc32.ChecksumIEEE(env.Snap); got != env.CRC {
		return Snapshot{}, fmt.Errorf("journal: snapshot crc mismatch: envelope says %d, payload hashes to %d", env.CRC, got)
	}
	var snap Snapshot
	if err := json.Unmarshal(env.Snap, &snap); err != nil {
		return Snapshot{}, fmt.Errorf("journal: undecodable snapshot: %w", err)
	}
	if err := validateSnapshot(snap); err != nil {
		return Snapshot{}, fmt.Errorf("journal: invalid snapshot: %w", err)
	}
	return snap, nil
}

// validateSnapshot checks the payload invariants shared by encode and
// decode: a fingerprint, a watermark past the create record, and an op
// history that is exactly the seqs 1..Watermark-1 in order, of allowed
// kinds, with the observation count matching.
func validateSnapshot(snap Snapshot) error {
	if snap.Fingerprint == "" {
		return errors.New("no config fingerprint")
	}
	if snap.Watermark < 1 {
		return fmt.Errorf("watermark %d below the create record", snap.Watermark)
	}
	if len(snap.Ops) != snap.Watermark-1 {
		return fmt.Errorf("op history has %d records, watermark %d wants %d", len(snap.Ops), snap.Watermark, snap.Watermark-1)
	}
	observes := 0
	for i, op := range snap.Ops {
		if op.Seq != i+1 {
			return fmt.Errorf("op %d has seq %d, want %d", i, op.Seq, i+1)
		}
		if !snapshotOpKinds[op.Kind] {
			return fmt.Errorf("op %d has kind %q, not a session op", i, op.Kind)
		}
		if op.Kind == KindObserve {
			observes++
		}
	}
	if observes != snap.Observations {
		return fmt.Errorf("op history has %d observations, snapshot says %d", observes, snap.Observations)
	}
	return nil
}
