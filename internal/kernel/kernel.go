// Package kernel implements the covariance (kernel) functions the paper
// evaluates for the Gaussian-process surrogate of Naive BO: the Radial
// Basis Function kernel and the Matérn family with smoothness 1/2, 3/2 and
// 5/2 (Section III-B, Figure 7). CherryPick's prescribed default is
// Matérn 5/2.
package kernel

import (
	"errors"
	"fmt"
	"math"
)

// ErrMismatch reports that two points passed to a kernel have different
// dimensionality.
var ErrMismatch = errors.New("kernel: dimension mismatch")

// Kind enumerates the covariance functions studied in the paper.
type Kind int

// The kernel kinds. Enums start at one so the zero value is invalid and
// an uninitialized Kind fails loudly.
const (
	RBF Kind = iota + 1
	Matern12
	Matern32
	Matern52
)

// String returns the paper's name for the kernel.
func (k Kind) String() string {
	switch k {
	case RBF:
		return "RBF"
	case Matern12:
		return "MATERN 1/2"
	case Matern32:
		return "MATERN 3/2"
	case Matern52:
		return "MATERN 5/2"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps user-facing names (as accepted by the CLIs) to a Kind.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "rbf", "RBF":
		return RBF, nil
	case "matern12", "matern1/2", "MATERN 1/2":
		return Matern12, nil
	case "matern32", "matern3/2", "MATERN 3/2":
		return Matern32, nil
	case "matern52", "matern5/2", "MATERN 5/2":
		return Matern52, nil
	default:
		return 0, fmt.Errorf("kernel: unknown kernel %q", name)
	}
}

// All lists every kernel the paper compares, in Figure 7's order.
func All() []Kind {
	return []Kind{RBF, Matern12, Matern32, Matern52}
}

// Kernel is a stationary covariance function with either an isotropic
// length scale or per-dimension (ARD, automatic relevance determination)
// length scales, plus a signal variance. Implementations must be symmetric
// and produce positive semi-definite Gram matrices.
type Kernel struct {
	Kind        Kind
	LengthScale float64 // l > 0; distance over which correlation decays
	Variance    float64 // sigma_f^2 > 0; prior marginal variance

	// ARDScales, when non-nil, replaces the isotropic LengthScale with a
	// per-dimension scale: larger scale = the dimension matters less.
	ARDScales []float64
}

// New constructs an isotropic kernel, validating hyperparameters.
func New(kind Kind, lengthScale, variance float64) (*Kernel, error) {
	switch kind {
	case RBF, Matern12, Matern32, Matern52:
	default:
		return nil, fmt.Errorf("kernel: invalid kind %d", int(kind))
	}
	if !(lengthScale > 0) || math.IsInf(lengthScale, 0) {
		return nil, fmt.Errorf("kernel: length scale must be positive and finite, got %v", lengthScale)
	}
	if !(variance > 0) || math.IsInf(variance, 0) {
		return nil, fmt.Errorf("kernel: variance must be positive and finite, got %v", variance)
	}
	return &Kernel{Kind: kind, LengthScale: lengthScale, Variance: variance}, nil
}

// NewARD constructs an anisotropic kernel with one length scale per input
// dimension (automatic relevance determination).
func NewARD(kind Kind, scales []float64, variance float64) (*Kernel, error) {
	if len(scales) == 0 {
		return nil, fmt.Errorf("kernel: ARD needs at least one scale")
	}
	for i, s := range scales {
		if !(s > 0) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("kernel: ARD scale %d must be positive and finite, got %v", i, s)
		}
	}
	k, err := New(kind, 1, variance)
	if err != nil {
		return nil, err
	}
	k.ARDScales = append([]float64(nil), scales...)
	return k, nil
}

// Eval returns k(a, b).
func (k *Kernel) Eval(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("kernel: points of dim %d and %d: %w", len(a), len(b), ErrMismatch)
	}
	var r float64
	if k.ARDScales != nil {
		if len(a) != len(k.ARDScales) {
			return 0, fmt.Errorf("kernel: point dim %d but %d ARD scales: %w", len(a), len(k.ARDScales), ErrMismatch)
		}
		d2 := 0.0
		for i := range a {
			diff := (a[i] - b[i]) / k.ARDScales[i]
			d2 += diff * diff
		}
		r = math.Sqrt(d2)
	} else {
		d2 := 0.0
		for i := range a {
			diff := a[i] - b[i]
			d2 += diff * diff
		}
		r = math.Sqrt(d2) / k.LengthScale
	}
	return k.Variance * k.correlation(r), nil
}

// correlation evaluates the unit-variance correlation at scaled distance r.
func (k *Kernel) correlation(r float64) float64 {
	switch k.Kind {
	case RBF:
		return math.Exp(-0.5 * r * r)
	case Matern12:
		// exp(-r): the Ornstein-Uhlenbeck kernel, continuous but not
		// differentiable — the weakest smoothness assumption.
		return math.Exp(-r)
	case Matern32:
		s := math.Sqrt(3) * r
		return (1 + s) * math.Exp(-s)
	case Matern52:
		s := math.Sqrt(5) * r
		return (1 + s + s*s/3) * math.Exp(-s)
	default:
		// New validates Kind, so this is unreachable through the public API.
		panic(fmt.Sprintf("kernel: invalid kind %d", int(k.Kind)))
	}
}

// Gram fills the n x n Gram matrix K[i][j] = k(xs[i], xs[j]).
func (k *Kernel) Gram(xs [][]float64) ([][]float64, error) {
	n := len(xs)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v, err := k.Eval(xs[i], xs[j])
			if err != nil {
				return nil, err
			}
			out[i][j] = v
			out[j][i] = v
		}
	}
	return out, nil
}
