package kernel

import (
	"math"
	"testing"
	"testing/quick"
)

// point3 clamps arbitrary float inputs into a well-behaved 3-d point.
func point3(a, b, c float64) []float64 {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 100)
	}
	return []float64{clamp(a), clamp(b), clamp(c)}
}

// TestQuickKernelBounds: for every kernel and any pair of points,
// 0 <= k(a,b) <= k(a,a) = variance.
func TestQuickKernelBounds(t *testing.T) {
	for _, kind := range All() {
		k, err := New(kind, 1.3, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		f := func(a1, a2, a3, b1, b2, b3 float64) bool {
			a := point3(a1, a2, a3)
			b := point3(b1, b2, b3)
			v, err := k.Eval(a, b)
			if err != nil {
				return false
			}
			return v >= 0 && v <= 2.0+1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

// TestQuickKernelSymmetry: k(a,b) == k(b,a) for arbitrary points.
func TestQuickKernelSymmetry(t *testing.T) {
	for _, kind := range All() {
		k, err := New(kind, 0.8, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		f := func(a1, a2, a3, b1, b2, b3 float64) bool {
			a := point3(a1, a2, a3)
			b := point3(b1, b2, b3)
			ab, err1 := k.Eval(a, b)
			ba, err2 := k.Eval(b, a)
			return err1 == nil && err2 == nil && ab == ba
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

// TestQuickKernelTriangleLike: correlation with itself dominates any other
// pairing — k(a,a) >= k(a,b).
func TestQuickKernelSelfDominates(t *testing.T) {
	for _, kind := range All() {
		k, err := New(kind, 2.2, 1.7)
		if err != nil {
			t.Fatal(err)
		}
		f := func(a1, a2, a3, b1, b2, b3 float64) bool {
			a := point3(a1, a2, a3)
			b := point3(b1, b2, b3)
			self, err1 := k.Eval(a, a)
			cross, err2 := k.Eval(a, b)
			return err1 == nil && err2 == nil && self >= cross-1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}
