package kernel

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		kind    Kind
		ls, v   float64
		wantErr bool
	}{
		{"valid rbf", RBF, 1, 1, false},
		{"valid matern", Matern52, 0.5, 2, false},
		{"zero kind", 0, 1, 1, true},
		{"bad kind", Kind(99), 1, 1, true},
		{"zero length scale", RBF, 0, 1, true},
		{"negative length scale", RBF, -1, 1, true},
		{"inf length scale", RBF, math.Inf(1), 1, true},
		{"zero variance", RBF, 1, 0, true},
		{"negative variance", RBF, 1, -2, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.kind, tt.ls, tt.v)
			if (err != nil) != tt.wantErr {
				t.Errorf("New(%v, %v, %v) error = %v, wantErr %v", tt.kind, tt.ls, tt.v, err, tt.wantErr)
			}
		})
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{RBF, "RBF"},
		{Matern12, "MATERN 1/2"},
		{Matern32, "MATERN 3/2"},
		{Matern52, "MATERN 5/2"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range All() {
		parsed, err := ParseKind(k.String())
		if err != nil || parsed != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), parsed, err)
		}
	}
	for name, want := range map[string]Kind{
		"rbf": RBF, "matern12": Matern12, "matern32": Matern32, "matern52": Matern52,
	} {
		parsed, err := ParseKind(name)
		if err != nil || parsed != want {
			t.Errorf("ParseKind(%q) = %v, %v", name, parsed, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind of unknown name should fail")
	}
}

func TestEvalAtZeroDistanceEqualsVariance(t *testing.T) {
	for _, kind := range All() {
		k, err := New(kind, 0.7, 2.5)
		if err != nil {
			t.Fatal(err)
		}
		x := []float64{1, 2, 3}
		got, err := k.Eval(x, x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-2.5) > 1e-12 {
			t.Errorf("%v: k(x,x) = %v, want variance 2.5", kind, got)
		}
	}
}

func TestEvalSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kind := range All() {
		k, _ := New(kind, 0.9, 1.3)
		for trial := 0; trial < 100; trial++ {
			a := []float64{rng.NormFloat64(), rng.NormFloat64()}
			b := []float64{rng.NormFloat64(), rng.NormFloat64()}
			kab, err := k.Eval(a, b)
			if err != nil {
				t.Fatal(err)
			}
			kba, err := k.Eval(b, a)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(kab-kba) > 1e-14 {
				t.Fatalf("%v not symmetric: %v vs %v", kind, kab, kba)
			}
		}
	}
}

func TestEvalDecreasesWithDistance(t *testing.T) {
	for _, kind := range All() {
		k, _ := New(kind, 1, 1)
		prev := math.Inf(1)
		for d := 0.0; d <= 5; d += 0.25 {
			v, err := k.Eval([]float64{0}, []float64{d})
			if err != nil {
				t.Fatal(err)
			}
			if v > prev+1e-12 {
				t.Errorf("%v not monotone decreasing at distance %v", kind, d)
			}
			if v < 0 || v > 1 {
				t.Errorf("%v correlation %v out of [0,1] at distance %v", kind, v, d)
			}
			prev = v
		}
	}
}

func TestEvalDimensionMismatch(t *testing.T) {
	k, _ := New(RBF, 1, 1)
	if _, err := k.Eval([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrMismatch) {
		t.Errorf("error = %v, want ErrMismatch", err)
	}
}

// TestSmoothnessOrdering pins the Matérn family's key property: at equal
// distance, smoother kernels (higher nu) retain more correlation at short
// range but the ordering reverses nowhere that breaks monotonicity in nu
// at moderate distance.
func TestSmoothnessOrderingAtUnitDistance(t *testing.T) {
	vals := map[Kind]float64{}
	for _, kind := range All() {
		k, _ := New(kind, 1, 1)
		v, err := k.Eval([]float64{0}, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		vals[kind] = v
	}
	// Known closed-form values at r=1, l=1.
	if want := math.Exp(-1); math.Abs(vals[Matern12]-want) > 1e-12 {
		t.Errorf("Matern12(1) = %v, want %v", vals[Matern12], want)
	}
	if want := math.Exp(-0.5); math.Abs(vals[RBF]-want) > 1e-12 {
		t.Errorf("RBF(1) = %v, want %v", vals[RBF], want)
	}
	s3 := math.Sqrt(3)
	if want := (1 + s3) * math.Exp(-s3); math.Abs(vals[Matern32]-want) > 1e-12 {
		t.Errorf("Matern32(1) = %v, want %v", vals[Matern32], want)
	}
	s5 := math.Sqrt(5)
	if want := (1 + s5 + 5.0/3) * math.Exp(-s5); math.Abs(vals[Matern52]-want) > 1e-12 {
		t.Errorf("Matern52(1) = %v, want %v", vals[Matern52], want)
	}
	// Rougher kernels decay faster at unit distance.
	if !(vals[Matern12] < vals[Matern32] && vals[Matern32] < vals[Matern52]) {
		t.Errorf("Matérn ordering broken: %v", vals)
	}
}

// TestGramPSDProperty checks positive semi-definiteness of random Gram
// matrices by Cholesky-factoring them with a small jitter.
func TestGramPSDProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, kind := range All() {
		for trial := 0; trial < 20; trial++ {
			n := 2 + rng.Intn(10)
			dim := 1 + rng.Intn(4)
			xs := make([][]float64, n)
			for i := range xs {
				xs[i] = make([]float64, dim)
				for j := range xs[i] {
					xs[i][j] = rng.NormFloat64() * 3
				}
			}
			k, _ := New(kind, 0.5+rng.Float64(), 0.5+rng.Float64())
			gram, err := k.Gram(xs)
			if err != nil {
				t.Fatal(err)
			}
			m := mat.NewDense(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					v := gram[i][j]
					if i == j {
						v += 1e-9
					}
					m.Set(i, j, v)
				}
			}
			if _, err := mat.NewCholesky(m); err != nil {
				t.Errorf("%v trial %d: Gram not PSD: %v", kind, trial, err)
			}
		}
	}
}

func TestGramSymmetric(t *testing.T) {
	k, _ := New(Matern52, 1, 1)
	xs := [][]float64{{0}, {1}, {2.5}}
	gram, err := k.Gram(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gram {
		for j := range gram {
			if gram[i][j] != gram[j][i] {
				t.Errorf("Gram[%d][%d] != Gram[%d][%d]", i, j, j, i)
			}
		}
	}
}

func TestAllListsFourKernels(t *testing.T) {
	if got := len(All()); got != 4 {
		t.Errorf("All() has %d kernels, want 4", got)
	}
}
