// Package lowlevel defines the low-level performance-metric vector that
// Arrow collects from each measured VM (Section IV-A of the paper) and
// that the simulator emits. Keeping the definition in one place guarantees
// the simulator, the surrogate model, and the reporting code agree on the
// metric order.
//
// The paper's effective metric set, gathered by a sysstat daemon during the
// run, covers three concerns:
//
//   - workload progress: CPU utilization on user time, I/O wait time, and
//     the number of tasks in the task list;
//   - memory pressure: % of commits in memory;
//   - I/O pressure: disk utilization and disk wait time.
package lowlevel

import (
	"errors"
	"fmt"
	"math"
)

// Metric indexes one entry of a Vector.
type Metric int

// The metric indices, in the canonical order used by Vector.
const (
	CPUUser   Metric = iota // %user: CPU utilization in user mode, 0-100
	IOWait                  // %iowait: CPU time waiting on I/O, 0-100
	TaskCount               // tasks in the run queue / task list (count)
	MemCommit               // %commit: committed memory vs. RAM, can exceed 100
	DiskUtil                // %util: device bandwidth utilization, 0-100
	DiskAwait               // await: average I/O service time, milliseconds

	// NumMetrics is the vector length; keep it last.
	NumMetrics
)

// String returns the sysstat-style name of the metric.
func (m Metric) String() string {
	switch m {
	case CPUUser:
		return "%user"
	case IOWait:
		return "%iowait"
	case TaskCount:
		return "task-list"
	case MemCommit:
		return "%commit"
	case DiskUtil:
		return "%util"
	case DiskAwait:
		return "await-ms"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Names returns the metric names in canonical order, for report headers.
func Names() []string {
	names := make([]string, NumMetrics)
	for m := Metric(0); m < NumMetrics; m++ {
		names[m] = m.String()
	}
	return names
}

// Vector is one VM's low-level measurement, indexed by Metric.
type Vector [NumMetrics]float64

// ErrInvalid reports a malformed metric vector.
var ErrInvalid = errors.New("lowlevel: invalid metric vector")

// Validate checks ranges: percentages non-negative (commit may exceed 100
// under overcommit), counts and latencies non-negative, everything finite.
func (v Vector) Validate() error {
	for m := Metric(0); m < NumMetrics; m++ {
		x := v[m]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("lowlevel: %s is %v: %w", m, x, ErrInvalid)
		}
		if x < 0 {
			return fmt.Errorf("lowlevel: %s is negative (%v): %w", m, x, ErrInvalid)
		}
	}
	for _, m := range []Metric{CPUUser, IOWait, DiskUtil} {
		if v[m] > 100+1e-9 {
			return fmt.Errorf("lowlevel: %s exceeds 100%% (%v): %w", m, v[m], ErrInvalid)
		}
	}
	return nil
}

// Slice returns the vector as a fresh []float64 in canonical order, ready
// to be appended to a surrogate feature row.
func (v Vector) Slice() []float64 {
	out := make([]float64, NumMetrics)
	copy(out, v[:])
	return out
}

// FromSlice converts a canonical-order slice back into a Vector.
func FromSlice(xs []float64) (Vector, error) {
	var v Vector
	if len(xs) != int(NumMetrics) {
		return v, fmt.Errorf("lowlevel: slice len %d, want %d: %w", len(xs), NumMetrics, ErrInvalid)
	}
	copy(v[:], xs)
	return v, v.Validate()
}
