package lowlevel

import (
	"errors"
	"math"
	"testing"
)

func TestNamesMatchMetrics(t *testing.T) {
	names := Names()
	if len(names) != int(NumMetrics) {
		t.Fatalf("Names() has %d entries, want %d", len(names), NumMetrics)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Errorf("bad or duplicate metric name %q", n)
		}
		seen[n] = true
	}
}

func TestMetricString(t *testing.T) {
	tests := []struct {
		m    Metric
		want string
	}{
		{CPUUser, "%user"},
		{IOWait, "%iowait"},
		{TaskCount, "task-list"},
		{MemCommit, "%commit"},
		{DiskUtil, "%util"},
		{DiskAwait, "await-ms"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.m, got, tt.want)
		}
	}
}

func TestValidateOK(t *testing.T) {
	var v Vector
	v[CPUUser] = 80
	v[IOWait] = 20
	v[TaskCount] = 12
	v[MemCommit] = 140 // overcommit beyond 100% is legal
	v[DiskUtil] = 99
	v[DiskAwait] = 12.5
	if err := v.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mk := func(m Metric, val float64) Vector {
		var v Vector
		v[m] = val
		return v
	}
	tests := []struct {
		name string
		v    Vector
	}{
		{"NaN", mk(CPUUser, math.NaN())},
		{"Inf", mk(DiskAwait, math.Inf(1))},
		{"negative", mk(IOWait, -1)},
		{"cpu over 100", mk(CPUUser, 101)},
		{"iowait over 100", mk(IOWait, 120)},
		{"disk util over 100", mk(DiskUtil, 150)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.v.Validate(); !errors.Is(err, ErrInvalid) {
				t.Errorf("Validate = %v, want ErrInvalid", err)
			}
		})
	}
}

func TestSliceRoundTrip(t *testing.T) {
	var v Vector
	for m := Metric(0); m < NumMetrics; m++ {
		v[m] = float64(m) + 1
	}
	s := v.Slice()
	if len(s) != int(NumMetrics) {
		t.Fatalf("Slice len %d", len(s))
	}
	back, err := FromSlice(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != v {
		t.Errorf("round trip: %v vs %v", back, v)
	}
}

func TestSliceIsCopy(t *testing.T) {
	var v Vector
	v[CPUUser] = 5
	s := v.Slice()
	s[0] = 99
	if v[CPUUser] != 5 {
		t.Error("Slice aliases vector")
	}
}

func TestFromSliceWrongLength(t *testing.T) {
	if _, err := FromSlice([]float64{1, 2}); !errors.Is(err, ErrInvalid) {
		t.Errorf("error = %v, want ErrInvalid", err)
	}
}

func TestFromSliceValidates(t *testing.T) {
	s := make([]float64, NumMetrics)
	s[0] = -5
	if _, err := FromSlice(s); !errors.Is(err, ErrInvalid) {
		t.Errorf("error = %v, want ErrInvalid", err)
	}
}
