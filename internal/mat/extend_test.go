package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// leadingBlock returns the top-left n x n block of a.
func leadingBlock(a *Dense, n int) *Dense {
	out := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, a.At(i, j))
		}
	}
	return out
}

// lastRow returns row n-1 of the leading n x n block, the argument Extend
// expects when growing from n-1 to n.
func lastRow(a *Dense, n int) []float64 {
	row := make([]float64, n)
	for j := 0; j < n; j++ {
		row[j] = a.At(n-1, j)
	}
	return row
}

// TestQuickCholeskyExtendMatchesFull: factoring the leading block and
// extending by the last row must reproduce NewCholesky of the full matrix.
// The recurrence is prefix-stable, so we get to demand bit-identical
// factors, stronger than the 1e-10 the incremental-refit contract needs.
func TestQuickCholeskyExtendMatchesFull(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		n := int(sizeRaw%18) + 2
		rng := rand.New(rand.NewSource(seed))
		a := randomSPD(rng, n)
		full, err := NewCholesky(a)
		if err != nil {
			t.Logf("full factorization failed: %v", err)
			return false
		}
		grown, err := NewCholesky(leadingBlock(a, n-1))
		if err != nil {
			t.Logf("prefix factorization failed: %v", err)
			return false
		}
		if err := grown.Extend(lastRow(a, n)); err != nil {
			t.Logf("Extend failed: %v", err)
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				g, w := grown.l.At(i, j), full.l.At(i, j)
				if g != w {
					t.Logf("L(%d,%d): extend %v, full %v (diff %g)", i, j, g, w, math.Abs(g-w))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCholeskyExtendFromScalar grows a factorization one row at a time
// from 1x1 and checks both the factor and the solves it produces against
// the from-scratch factorization at every size.
func TestCholeskyExtendFromScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 12
	a := randomSPD(rng, n)
	chol, err := NewCholesky(leadingBlock(a, 1))
	if err != nil {
		t.Fatal(err)
	}
	for size := 2; size <= n; size++ {
		if err := chol.Extend(lastRow(a, size)); err != nil {
			t.Fatalf("extend to %d: %v", size, err)
		}
		if chol.Size() != size {
			t.Fatalf("size %d, want %d", chol.Size(), size)
		}
		full, err := NewCholesky(leadingBlock(a, size))
		if err != nil {
			t.Fatalf("full factor at %d: %v", size, err)
		}
		b := make([]float64, size)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got, err := chol.SolveVec(b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := full.SolveVec(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("size %d solve[%d]: extend %v, full %v", size, i, got[i], want[i])
			}
		}
		if chol.LogDet() != full.LogDet() {
			t.Fatalf("size %d logdet: extend %v, full %v", size, chol.LogDet(), full.LogDet())
		}
	}
}

// TestCholeskyExtendErrors covers the shape check and the not-SPD pivot,
// and verifies a failed Extend leaves the factorization untouched.
func TestCholeskyExtendErrors(t *testing.T) {
	a := Identity(3)
	chol, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := chol.Extend([]float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("short row: got %v, want ErrShape", err)
	}
	// Duplicating an existing row makes the grown matrix singular.
	if err := chol.Extend([]float64{1, 0, 0, 1}); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("singular extension: got %v, want ErrNotSPD", err)
	}
	if chol.Size() != 3 {
		t.Fatalf("failed Extend mutated the factor: size %d", chol.Size())
	}
	before := chol.L()
	if err := chol.Extend([]float64{0, 0, 0, 4}); err != nil {
		t.Fatal(err)
	}
	if chol.Size() != 4 || chol.l.At(3, 3) != 2 {
		t.Fatalf("extend by diag 4: L = %v", chol.l)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if chol.l.At(i, j) != before.At(i, j) {
				t.Fatalf("leading block changed at (%d,%d)", i, j)
			}
		}
	}
	clone := chol.Clone()
	clone.l.Set(0, 0, 99)
	if chol.l.At(0, 0) == 99 {
		t.Fatal("Clone shares backing storage")
	}
}
