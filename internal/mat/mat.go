// Package mat implements the small dense linear-algebra kernel needed by
// the Gaussian-process surrogate: column-major-free row-major matrices,
// Cholesky factorization of symmetric positive-definite matrices, and
// triangular solves.
//
// The GP in this repository never factors anything larger than the VM
// catalog (18x18 plus jitter), so the implementation favors clarity and
// numerical robustness over blocked performance.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape reports incompatible matrix dimensions.
var ErrShape = errors.New("mat: dimension mismatch")

// ErrNotSPD reports that a Cholesky factorization failed because the input
// matrix is not (numerically) symmetric positive definite.
var ErrNotSPD = errors.New("mat: matrix is not positive definite")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows x cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: non-positive dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFrom builds a matrix from a slice of equal-length rows, copying
// the data.
func NewDenseFrom(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("mat: empty input: %w", ErrShape)
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("mat: ragged row %d (len %d, want %d): %w", i, len(r), m.cols, ErrShape)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of bounds %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of bounds %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// MulVec returns m * x for a vector x of length Cols().
func (m *Dense) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("mat: MulVec len %d, want %d: %w", len(x), m.cols, ErrShape)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		sum := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			sum += v * x[j]
		}
		out[i] = sum
	}
	return out, nil
}

// Mul returns the matrix product m * b.
func (m *Dense) Mul(b *Dense) (*Dense, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("mat: Mul %dx%d by %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, v := range brow {
				orow[j] += a * v
			}
		}
	}
	return out, nil
}

// Transpose returns a copy of m transposed.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%10.4g", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Cholesky holds the lower-triangular factor L of an SPD matrix A = L Lᵀ.
type Cholesky struct {
	l *Dense
}

// NewCholesky factors the symmetric positive-definite matrix a. Only the
// lower triangle of a is read; symmetry of the upper triangle is assumed.
// It returns ErrNotSPD when a pivot is non-positive, which for GP kernel
// matrices signals that more jitter is required.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: Cholesky of %dx%d: %w", a.rows, a.cols, ErrShape)
	}
	n := a.rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, fmt.Errorf("mat: pivot %d is %v: %w", i, sum, ErrNotSPD)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return &Cholesky{l: l}, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// Size returns the dimension n of the factored matrix.
func (c *Cholesky) Size() int { return c.l.rows }

// Clone returns a deep copy of the factorization.
func (c *Cholesky) Clone() *Cholesky { return &Cholesky{l: c.l.Clone()} }

// Extend grows the factorization by one row/column: given the factor of
// an n x n SPD matrix A, it produces the factor of the (n+1) x (n+1)
// matrix whose leading n x n block is A and whose last row is `row`
// (row[j] = A'(n, j) for j < n, row[n] the new diagonal entry).
//
// The Cholesky-Banachiewicz recurrence used by NewCholesky computes row i
// of L from rows < i only, so the first n rows of the grown factor are
// exactly the existing factor. Extend computes only the new row, with the
// same summation order as NewCholesky, making the result bit-identical to
// factoring the grown matrix from scratch — an O(n^2) update instead of
// O(n^3).
//
// On success c is mutated in place. On ErrNotSPD (non-positive pivot,
// exactly when NewCholesky on the grown matrix would fail at row n) c is
// left unchanged.
func (c *Cholesky) Extend(row []float64) error {
	n := c.l.rows
	if len(row) != n+1 {
		return fmt.Errorf("mat: Extend row len %d, want %d: %w", len(row), n+1, ErrShape)
	}
	l := NewDense(n+1, n+1)
	for i := 0; i < n; i++ {
		copy(l.data[i*(n+1):i*(n+1)+n], c.l.data[i*n:(i+1)*n])
	}
	i := n
	for j := 0; j <= i; j++ {
		sum := row[j]
		for k := 0; k < j; k++ {
			sum -= l.At(i, k) * l.At(j, k)
		}
		if i == j {
			if sum <= 0 || math.IsNaN(sum) {
				return fmt.Errorf("mat: pivot %d is %v: %w", i, sum, ErrNotSPD)
			}
			l.Set(i, i, math.Sqrt(sum))
		} else {
			l.Set(i, j, sum/l.At(j, j))
		}
	}
	c.l = l
	return nil
}

// Shrink truncates the factorization back to its leading n x n block:
// the factor of the matrix whose trailing rows/columns are dropped. The
// Cholesky-Banachiewicz recurrence computes row i of L from rows < i
// only, so the leading block of the factor is exactly the factor of the
// leading block of A — Shrink is the O(n^2) inverse of Extend, and an
// Extend after a Shrink reproduces the dropped rows bit-identically.
// Shrinking to the current size is a no-op; n must be in [1, Size()].
func (c *Cholesky) Shrink(n int) error {
	old := c.l.rows
	if n < 1 || n > old {
		return fmt.Errorf("mat: Shrink to %d of %d: %w", n, old, ErrShape)
	}
	if n == old {
		return nil
	}
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		copy(l.data[i*n:i*n+i+1], c.l.data[i*old:i*old+i+1])
	}
	c.l = l
	return nil
}

// SolveVec solves A x = b where A = L Lᵀ, via forward then backward
// substitution.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	n := c.l.rows
	if len(b) != n {
		return nil, fmt.Errorf("mat: SolveVec len %d, want %d: %w", len(b), n, ErrShape)
	}
	y, err := ForwardSolve(c.l, b)
	if err != nil {
		return nil, err
	}
	return BackwardSolveTranspose(c.l, y)
}

// ForwardSolveInto solves L y = b into dst (len n) without allocating and
// without cloning the factor, for callers on a prediction hot path. dst
// and b may alias.
func (c *Cholesky) ForwardSolveInto(dst, b []float64) error {
	n := c.l.rows
	if len(b) != n || len(dst) != n {
		return fmt.Errorf("mat: ForwardSolveInto len %d/%d, want %d: %w", len(dst), len(b), n, ErrShape)
	}
	for i := 0; i < n; i++ {
		sum := b[i]
		row := c.l.data[i*n : i*n+i]
		for k, lik := range row {
			sum -= lik * dst[k]
		}
		d := c.l.data[i*n+i]
		if d == 0 {
			return fmt.Errorf("mat: zero diagonal at %d: %w", i, ErrNotSPD)
		}
		dst[i] = sum / d
	}
	return nil
}

// LogDet returns log |A| = 2 * sum(log L_ii).
func (c *Cholesky) LogDet() float64 {
	sum := 0.0
	for i := 0; i < c.l.rows; i++ {
		sum += math.Log(c.l.At(i, i))
	}
	return 2 * sum
}

// ForwardSolve solves L y = b for lower-triangular L.
func ForwardSolve(l *Dense, b []float64) ([]float64, error) {
	n := l.rows
	if l.cols != n || len(b) != n {
		return nil, fmt.Errorf("mat: ForwardSolve shape: %w", ErrShape)
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		d := l.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("mat: zero diagonal at %d: %w", i, ErrNotSPD)
		}
		y[i] = sum / d
	}
	return y, nil
}

// BackwardSolveTranspose solves Lᵀ x = y for lower-triangular L.
func BackwardSolveTranspose(l *Dense, y []float64) ([]float64, error) {
	n := l.rows
	if l.cols != n || len(y) != n {
		return nil, fmt.Errorf("mat: BackwardSolveTranspose shape: %w", ErrShape)
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		d := l.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("mat: zero diagonal at %d: %w", i, ErrNotSPD)
		}
		x[i] = sum / d
	}
	return x, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("mat: Dot %d vs %d: %w", len(a), len(b), ErrShape)
	}
	sum := 0.0
	for i, v := range a {
		sum += v * b[i]
	}
	return sum, nil
}
