package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func sanitize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			out[i] = 0
			continue
		}
		out[i] = math.Mod(x, 1e6)
	}
	return out
}

// TestQuickDotSymmetric: a · b == b · a.
func TestQuickDotSymmetric(t *testing.T) {
	f := func(raw1, raw2 []float64) bool {
		n := len(raw1)
		if len(raw2) < n {
			n = len(raw2)
		}
		if n == 0 {
			return true
		}
		a := sanitize(raw1[:n])
		b := sanitize(raw2[:n])
		ab, err1 := Dot(a, b)
		ba, err2 := Dot(b, a)
		return err1 == nil && err2 == nil && ab == ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDotLinearity: (ka) · b == k (a · b) up to round-off.
func TestQuickDotLinearity(t *testing.T) {
	f := func(raw []float64, kRaw float64) bool {
		if len(raw) == 0 {
			return true
		}
		a := sanitize(raw)
		k := math.Mod(kRaw, 100)
		if math.IsNaN(k) {
			k = 2
		}
		b := make([]float64, len(a))
		for i := range b {
			b[i] = 1
		}
		scaled := make([]float64, len(a))
		for i := range a {
			scaled[i] = k * a[i]
		}
		lhs, err1 := Dot(scaled, b)
		rhs, err2 := Dot(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		diff := math.Abs(lhs - k*rhs)
		scale := math.Abs(lhs) + math.Abs(k*rhs) + 1
		return diff <= 1e-9*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickTransposeInvolution: (Aᵀ)ᵀ == A.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(raw []float64, colsRaw uint8) bool {
		cols := int(colsRaw%4) + 1
		if len(raw) < cols {
			return true
		}
		rows := len(raw) / cols
		if rows == 0 || rows > 20 {
			return true
		}
		m := NewDense(rows, cols)
		vals := sanitize(raw)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, vals[i*cols+j])
			}
		}
		tt := m.Transpose().Transpose()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if tt.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickIdentityMulVec: I x == x.
func TestQuickIdentityMulVec(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 30 {
			return true
		}
		x := sanitize(raw)
		id := Identity(len(x))
		got, err := id.MulVec(x)
		if err != nil {
			return false
		}
		for i := range x {
			if got[i] != x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
