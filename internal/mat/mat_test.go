package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestNewDenseFrom(t *testing.T) {
	m, err := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v", m.At(1, 0))
	}
}

func TestNewDenseFromRagged(t *testing.T) {
	if _, err := NewDenseFrom([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Errorf("error = %v, want ErrShape", err)
	}
}

func TestNewDenseFromEmpty(t *testing.T) {
	if _, err := NewDenseFrom(nil); !errors.Is(err, ErrShape) {
		t.Errorf("error = %v, want ErrShape", err)
	}
}

func TestNewDenseFromCopies(t *testing.T) {
	src := [][]float64{{1, 2}}
	m, err := NewDenseFrom(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0][0] = 99
	if m.At(0, 0) != 1 {
		t.Error("NewDenseFrom aliased caller data")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("I[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestSetAt(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %v", m.At(1, 2))
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDense(2, 2).At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases original")
	}
}

func TestRowCopies(t *testing.T) {
	m := NewDense(1, 2)
	m.Set(0, 0, 3)
	r := m.Row(0)
	r[0] = 9
	if m.At(0, 0) != 3 {
		t.Error("Row aliases matrix data")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	got, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestMulVecShapeError(t *testing.T) {
	m := NewDense(2, 2)
	if _, err := m.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("error = %v, want ErrShape", err)
	}
}

func TestMul(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b, _ := NewDenseFrom([][]float64{{0, 1}, {1, 0}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 1}, {4, 3}}
	for i := range want {
		for j := range want[i] {
			if got.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, got.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrShape) {
		t.Errorf("error = %v, want ErrShape", err)
	}
}

func TestTranspose(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{{1, 2, 3}})
	tr := a.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 1 || tr.At(2, 0) != 3 {
		t.Errorf("Transpose wrong: %v", tr)
	}
}

// randomSPD builds a random symmetric positive definite matrix A = B Bᵀ + nI.
func randomSPD(rng *rand.Rand, n int) *Dense {
	b := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	bt := b.Transpose()
	a, err := b.Mul(bt)
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskyReconstructionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		a := randomSPD(rng, n)
		chol, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		l := chol.L()
		lt := l.Transpose()
		recon, err := l.Mul(lt)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if diff := math.Abs(recon.At(i, j) - a.At(i, j)); diff > 1e-8 {
					t.Fatalf("trial %d: |LLᵀ - A|[%d][%d] = %v", trial, i, j, diff)
				}
			}
		}
	}
}

func TestCholeskySolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		a := randomSPD(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		chol, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := chol.SolveVec(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if diff := math.Abs(got[i] - x[i]); diff > 1e-6 {
				t.Fatalf("trial %d: solve error at %d: %v", trial, i, diff)
			}
		}
	}
}

func TestCholeskyLowerTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randomSPD(rng, 5)
	chol, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := chol.L()
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if l.At(i, j) != 0 {
				t.Errorf("L[%d][%d] = %v, want 0", i, j, l.At(i, j))
			}
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	// Negative definite.
	a, _ := NewDenseFrom([][]float64{{-1, 0}, {0, -1}})
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotSPD) {
		t.Errorf("error = %v, want ErrNotSPD", err)
	}
	// Indefinite with zero pivot.
	b, _ := NewDenseFrom([][]float64{{0, 0}, {0, 1}})
	if _, err := NewCholesky(b); !errors.Is(err, ErrNotSPD) {
		t.Errorf("error = %v, want ErrNotSPD", err)
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := NewCholesky(NewDense(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("error = %v, want ErrShape", err)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// Diagonal matrix: log|A| = sum(log d_i).
	a, _ := NewDenseFrom([][]float64{{4, 0}, {0, 9}})
	chol, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(36)
	if got := chol.LogDet(); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogDet = %v, want %v", got, want)
	}
}

func TestForwardBackwardSolve(t *testing.T) {
	l, _ := NewDenseFrom([][]float64{{2, 0}, {1, 3}})
	y, err := ForwardSolve(l, []float64{4, 7})
	if err != nil {
		t.Fatal(err)
	}
	// 2*y0 = 4 -> y0 = 2; 1*2 + 3*y1 = 7 -> y1 = 5/3.
	if math.Abs(y[0]-2) > 1e-12 || math.Abs(y[1]-5.0/3) > 1e-12 {
		t.Errorf("ForwardSolve = %v", y)
	}
	x, err := BackwardSolveTranspose(l, y)
	if err != nil {
		t.Fatal(err)
	}
	// Check Lᵀ x = y.
	lt := l.Transpose()
	chk, _ := lt.MulVec(x)
	for i := range y {
		if math.Abs(chk[i]-y[i]) > 1e-12 {
			t.Errorf("backward solve residual %v", chk)
		}
	}
}

func TestSolveZeroDiagonal(t *testing.T) {
	l, _ := NewDenseFrom([][]float64{{0, 0}, {1, 1}})
	if _, err := ForwardSolve(l, []float64{1, 1}); !errors.Is(err, ErrNotSPD) {
		t.Errorf("error = %v, want ErrNotSPD", err)
	}
	if _, err := BackwardSolveTranspose(l, []float64{1, 1}); !errors.Is(err, ErrNotSPD) {
		t.Errorf("error = %v, want ErrNotSPD", err)
	}
}

func TestDot(t *testing.T) {
	got, err := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Errorf("error = %v, want ErrShape", err)
	}
}

func TestString(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{1, 2}})
	if s := m.String(); s == "" {
		t.Error("String() empty")
	}
}

func TestForwardSolveIntoMatchesForwardSolve(t *testing.T) {
	a, err := NewDenseFrom([][]float64{
		{4, 1, 0.5},
		{1, 3, 0.2},
		{0.5, 0.2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	chol, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, -2, 3}
	want, err := ForwardSolve(chol.L(), b)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, len(b))
	if err := chol.ForwardSolveInto(dst, b); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	// The in-place form (dst aliasing b) must give the same answer.
	aliased := append([]float64(nil), b...)
	if err := chol.ForwardSolveInto(aliased, aliased); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if aliased[i] != want[i] {
			t.Errorf("aliased[%d] = %v, want %v", i, aliased[i], want[i])
		}
	}
	if err := chol.ForwardSolveInto(make([]float64, 2), b); err == nil {
		t.Error("expected a shape error for a short dst")
	}
}
