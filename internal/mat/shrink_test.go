package mat

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickCholeskyShrinkMatchesPrefix: shrinking the full factor to n
// must reproduce NewCholesky of the leading n x n block bit-identically,
// and re-extending by the dropped row must reproduce the full factor —
// Shrink and Extend are exact inverses.
func TestQuickCholeskyShrinkMatchesPrefix(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		n := int(sizeRaw%18) + 2
		rng := rand.New(rand.NewSource(seed))
		a := randomSPD(rng, n)
		full, err := NewCholesky(a)
		if err != nil {
			t.Logf("full factorization failed: %v", err)
			return false
		}
		shrunk := full.Clone()
		if err := shrunk.Shrink(n - 1); err != nil {
			t.Logf("Shrink failed: %v", err)
			return false
		}
		prefix, err := NewCholesky(leadingBlock(a, n-1))
		if err != nil {
			t.Logf("prefix factorization failed: %v", err)
			return false
		}
		for i := 0; i < n-1; i++ {
			for j := 0; j < n-1; j++ {
				if g, w := shrunk.l.At(i, j), prefix.l.At(i, j); g != w {
					t.Logf("L(%d,%d): shrink %v, prefix %v", i, j, g, w)
					return false
				}
			}
		}
		if err := shrunk.Extend(lastRow(a, n)); err != nil {
			t.Logf("re-Extend failed: %v", err)
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if g, w := shrunk.l.At(i, j), full.l.At(i, j); g != w {
					t.Logf("round-trip L(%d,%d): %v, want %v", i, j, g, w)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCholeskyShrinkEdges covers the no-op same-size case, multi-row
// shrinks, the bounds errors, and independence from the original factor.
func TestCholeskyShrinkEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 9
	a := randomSPD(rng, n)
	full, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	same := full.Clone()
	if err := same.Shrink(n); err != nil {
		t.Fatalf("same-size Shrink: %v", err)
	}
	if same.Size() != n {
		t.Fatalf("same-size Shrink changed size to %d", same.Size())
	}
	multi := full.Clone()
	if err := multi.Shrink(3); err != nil {
		t.Fatalf("Shrink to 3: %v", err)
	}
	prefix, err := NewCholesky(leadingBlock(a, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if multi.l.At(i, j) != prefix.l.At(i, j) {
				t.Fatalf("multi-row shrink L(%d,%d): %v, want %v", i, j, multi.l.At(i, j), prefix.l.At(i, j))
			}
		}
	}
	// The shrunk factor owns fresh storage: writing to it must not leak
	// into the factor it was cloned from.
	multi.l.Set(0, 0, 42)
	if full.l.At(0, 0) == 42 {
		t.Fatal("Shrink shares backing storage with the original")
	}
	if err := full.Shrink(0); !errors.Is(err, ErrShape) {
		t.Fatalf("Shrink to 0: got %v, want ErrShape", err)
	}
	if err := full.Shrink(n + 1); !errors.Is(err, ErrShape) {
		t.Fatalf("Shrink past size: got %v, want ErrShape", err)
	}
	if full.Size() != n {
		t.Fatalf("failed Shrink mutated the factor: size %d", full.Size())
	}
}
