// Package parallel provides the small worker-pool primitive shared by the
// surrogate hot paths (Extra-Trees growth, batched GP and forest
// prediction). Work items are independent and indexed, so the helpers make
// one guarantee that matters for reproducibility: the mapping from index
// to result slot is fixed, and callers that keep per-index state (per-tree
// RNGs, per-row output cells) get bit-identical results at any worker
// count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested parallelism degree against the work size:
// zero or negative means runtime.GOMAXPROCS(0), and the result never
// exceeds n (no idle goroutines for small batches).
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Do runs fn(i) for every i in [0, n), spreading the calls over at most
// workers goroutines. workers is resolved with Workers, so zero means
// GOMAXPROCS. With one worker (or n <= 1) everything runs on the calling
// goroutine — no goroutines, no synchronization. fn must not panic.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Dynamic (atomic counter) scheduling: tree-growth and batch-predict
	// items have uneven costs, so static striping would leave workers idle.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// DoWithScratch runs fn(i, scratch) for every i in [0, n) over at most
// workers goroutines, where each worker owns one scratch value built by
// newScratch. It is the buffer-reuse variant of Do: a worker's scratch is
// reused across every item that worker processes, so per-item allocations
// can be hoisted into newScratch.
func DoWithScratch[S any](n, workers int, newScratch func() S, fn func(i int, scratch S)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		s := newScratch()
		for i := 0; i < n; i++ {
			fn(i, s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			s := newScratch()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i, s)
			}
		}()
	}
	wg.Wait()
}
