package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		requested, n, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{4, 2, 2},
		{4, 100, 4},
		{1, 100, 1},
		{8, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		Do(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestDoZeroItems(t *testing.T) {
	called := false
	Do(0, 4, func(int) { called = true })
	if called {
		t.Error("fn called with n=0")
	}
}

func TestDoWithScratchIsolatesWorkers(t *testing.T) {
	for _, workers := range []int{1, 3} {
		const n = 500
		results := make([]int, n)
		var scratchesMade atomic.Int32
		DoWithScratch(n, workers, func() *[]int {
			scratchesMade.Add(1)
			s := make([]int, 0, 8)
			return &s
		}, func(i int, s *[]int) {
			// Mutate the scratch to catch sharing across workers.
			*s = append((*s)[:0], i, i*2)
			results[i] = (*s)[0] + (*s)[1]
		})
		for i, r := range results {
			if r != 3*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, r, 3*i)
			}
		}
		if made := int(scratchesMade.Load()); made > Workers(workers, n) {
			t.Fatalf("workers=%d: %d scratches built, want <= %d", workers, made, Workers(workers, n))
		}
	}
}
