// Package paris implements a PARIS-style offline performance-model
// baseline (Yadwadkar et al., SoCC'17), the data-driven alternative the
// paper contrasts with search-based optimization in Section II-D.
//
// PARIS splits the work in two phases:
//
//   - an OFFLINE phase run once by the service operator: a set of
//     benchmark workloads is executed on every VM type, recording both
//     the performance and the low-level "fingerprint" each workload
//     produces on a small set of reference VMs;
//   - an ONLINE phase per user workload: the workload is executed only on
//     the reference VMs, its fingerprint is assembled, and a learned
//     model predicts its performance on every other VM type.
//
// The online search cost is therefore fixed (the number of reference VMs)
// — cheaper than Bayesian optimization — but accuracy is bounded by how
// well the offline benchmark suite covers the user workload. The paper
// argues this is the method's weakness ("PARIS shows up to 50% RMSE"),
// and this package exists to make that comparison reproducible: the
// HoldOneOut evaluation reports exactly that error distribution on the
// simulator substrate.
package paris

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cloud"
	"repro/internal/forest"
	"repro/internal/lowlevel"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ErrNotTrained is returned when predicting before Train.
var ErrNotTrained = errors.New("paris: model not trained")

// Config controls the offline model.
type Config struct {
	// ReferenceVMs are the VM names measured online to fingerprint a new
	// workload. Empty means DefaultReferenceVMs.
	ReferenceVMs []string
	// Forest configures the regression ensemble.
	Forest forest.Config
	// Trial seeds the measurement noise of offline benchmark runs.
	Trial int64
}

// DefaultReferenceVMs follow PARIS's choice of two very different
// reference machines: a small general-purpose and a large
// memory-optimized instance.
func DefaultReferenceVMs() []string {
	return []string{"m4.large", "r4.2xlarge"}
}

// Model is a trained PARIS-style predictor.
type Model struct {
	sim      *sim.Simulator
	catalog  *cloud.Catalog
	refIdx   []int
	refNames []string
	// perVM holds one regressor per target VM index, mapping a workload
	// fingerprint to log(performance) on that VM. PARIS trains one model
	// per (metric, VM-type) pair; we do the same per objective value.
	timeModels []*forest.Regressor
	costModels []*forest.Regressor
	trial      int64
	forestCfg  forest.Config
}

// New prepares an untrained model over the simulator's catalog.
func New(s *sim.Simulator, cfg Config) (*Model, error) {
	names := cfg.ReferenceVMs
	if len(names) == 0 {
		names = DefaultReferenceVMs()
	}
	catalog := s.Catalog()
	m := &Model{
		sim:       s,
		catalog:   catalog,
		refNames:  append([]string(nil), names...),
		trial:     cfg.Trial,
		forestCfg: cfg.Forest,
	}
	for _, name := range names {
		idx, err := catalog.Index(name)
		if err != nil {
			return nil, err
		}
		m.refIdx = append(m.refIdx, idx)
	}
	return m, nil
}

// Fingerprint is a workload's online signature: its measured time, cost
// and low-level metrics on every reference VM.
type Fingerprint struct {
	features []float64
}

// Fingerprint measures w on the reference VMs. This is the entire online
// measurement cost of the method.
func (m *Model) Fingerprint(w workloads.Workload) (Fingerprint, error) {
	var features []float64
	for _, idx := range m.refIdx {
		res, err := m.sim.Measure(w, m.catalog.VM(idx), m.trial)
		if err != nil {
			return Fingerprint{}, fmt.Errorf("paris: fingerprinting %s on %s: %w", w.ID(), m.catalog.VM(idx).Name(), err)
		}
		features = append(features, math.Log(res.TimeSec), math.Log(res.CostUSD))
		features = append(features, res.Metrics.Slice()...)
	}
	return Fingerprint{features: features}, nil
}

// NumReferenceVMs returns the online search cost of the method.
func (m *Model) NumReferenceVMs() int { return len(m.refIdx) }

// FingerprintDim returns the fingerprint feature count.
func (m *Model) FingerprintDim() int {
	return len(m.refIdx) * (2 + int(lowlevel.NumMetrics))
}

// Train runs the offline phase over the benchmark workloads: fingerprints
// each one and fits, per target VM, a regressor from fingerprint to
// log(time) and log(cost).
func (m *Model) Train(benchmarks []workloads.Workload) error {
	if len(benchmarks) == 0 {
		return errors.New("paris: no benchmark workloads")
	}
	fingerprints := make([][]float64, 0, len(benchmarks))
	times := make([][]float64, m.catalog.Len()) // [vm][workload]
	costs := make([][]float64, m.catalog.Len())
	for vmIdx := range times {
		times[vmIdx] = make([]float64, 0, len(benchmarks))
		costs[vmIdx] = make([]float64, 0, len(benchmarks))
	}
	for _, w := range benchmarks {
		fp, err := m.Fingerprint(w)
		if err != nil {
			return err
		}
		fingerprints = append(fingerprints, fp.features)
		for vmIdx := 0; vmIdx < m.catalog.Len(); vmIdx++ {
			res, err := m.sim.Measure(w, m.catalog.VM(vmIdx), m.trial)
			if err != nil {
				return fmt.Errorf("paris: benchmarking %s: %w", w.ID(), err)
			}
			times[vmIdx] = append(times[vmIdx], math.Log(res.TimeSec))
			costs[vmIdx] = append(costs[vmIdx], math.Log(res.CostUSD))
		}
	}
	m.timeModels = make([]*forest.Regressor, m.catalog.Len())
	m.costModels = make([]*forest.Regressor, m.catalog.Len())
	for vmIdx := 0; vmIdx < m.catalog.Len(); vmIdx++ {
		cfg := m.forestCfg
		cfg.Seed = int64(vmIdx) + 1
		tm, err := forest.Fit(cfg, fingerprints, times[vmIdx])
		if err != nil {
			return fmt.Errorf("paris: fitting time model for %s: %w", m.catalog.VM(vmIdx).Name(), err)
		}
		cfg.Seed = int64(vmIdx) + 1001
		cm, err := forest.Fit(cfg, fingerprints, costs[vmIdx])
		if err != nil {
			return fmt.Errorf("paris: fitting cost model for %s: %w", m.catalog.VM(vmIdx).Name(), err)
		}
		m.timeModels[vmIdx] = tm
		m.costModels[vmIdx] = cm
	}
	return nil
}

// Prediction is the predicted performance of a workload on one VM.
type Prediction struct {
	VMName  string
	VMIndex int
	TimeSec float64
	CostUSD float64
}

// Predict estimates the workload's performance on every VM type from its
// fingerprint.
func (m *Model) Predict(fp Fingerprint) ([]Prediction, error) {
	if m.timeModels == nil {
		return nil, ErrNotTrained
	}
	if len(fp.features) != m.FingerprintDim() {
		return nil, fmt.Errorf("paris: fingerprint dim %d, want %d", len(fp.features), m.FingerprintDim())
	}
	out := make([]Prediction, m.catalog.Len())
	for vmIdx := 0; vmIdx < m.catalog.Len(); vmIdx++ {
		logTime, err := m.timeModels[vmIdx].Predict(fp.features)
		if err != nil {
			return nil, err
		}
		logCost, err := m.costModels[vmIdx].Predict(fp.features)
		if err != nil {
			return nil, err
		}
		out[vmIdx] = Prediction{
			VMName:  m.catalog.VM(vmIdx).Name(),
			VMIndex: vmIdx,
			TimeSec: math.Exp(logTime),
			CostUSD: math.Exp(logCost),
		}
	}
	return out, nil
}

// BestVM returns the predicted-best VM under the given objective
// ("time" or "cost").
func (m *Model) BestVM(fp Fingerprint, objective string) (Prediction, error) {
	preds, err := m.Predict(fp)
	if err != nil {
		return Prediction{}, err
	}
	best := preds[0]
	for _, p := range preds[1:] {
		switch objective {
		case "time":
			if p.TimeSec < best.TimeSec {
				best = p
			}
		case "cost":
			if p.CostUSD < best.CostUSD {
				best = p
			}
		default:
			return Prediction{}, fmt.Errorf("paris: unknown objective %q", objective)
		}
	}
	return best, nil
}

// EvalResult summarizes a hold-one-out evaluation.
type EvalResult struct {
	// RMSEPct is the root-mean-square relative error (in percent) of the
	// time predictions across all held-out (workload, VM) pairs — the
	// metric the paper quotes ("up to 50% RMSE").
	RMSEPct float64
	// MeanFoundNorm is the mean true, normalized objective value of the
	// VM the model would pick per held-out workload (1.0 = optimal).
	MeanFoundNormTime float64
	MeanFoundNormCost float64
	// Workloads is the number of held-out workloads evaluated.
	Workloads int
}

// HoldOneOut trains on all workloads whose APPLICATION differs from the
// held-out one and evaluates prediction error and decision quality on each
// held-out workload in turn. Grouping by application matters: holding out
// a single (app, system, size) workload while its siblings stay in
// training would let the model memorize the application, which is not the
// situation PARIS faces in production — a genuinely new application
// arrives. This leave-one-application-out protocol is the experiment
// behind the paper's Section II-D argument.
func HoldOneOut(s *sim.Simulator, cfg Config, ws []workloads.Workload) (*EvalResult, error) {
	if len(ws) < 2 {
		return nil, errors.New("paris: need at least two workloads for hold-one-out")
	}
	apps := make(map[string]bool)
	for _, w := range ws {
		apps[w.AppName] = true
	}
	if len(apps) < 2 {
		return nil, errors.New("paris: need at least two distinct applications for leave-one-application-out")
	}
	var (
		sqRelErr  float64
		numPreds  int
		sumNormT  float64
		sumNormC  float64
		evaluated int
	)
	for hold := range ws {
		model, err := New(s, cfg)
		if err != nil {
			return nil, err
		}
		held := ws[hold]
		train := make([]workloads.Workload, 0, len(ws)-1)
		for _, w := range ws {
			if w.AppName != held.AppName {
				train = append(train, w)
			}
		}
		if err := model.Train(train); err != nil {
			return nil, err
		}
		fp, err := model.Fingerprint(held)
		if err != nil {
			return nil, err
		}
		preds, err := model.Predict(fp)
		if err != nil {
			return nil, err
		}
		truth, err := s.TruthTable(held)
		if err != nil {
			return nil, err
		}
		bestT, bestC := math.Inf(1), math.Inf(1)
		for _, res := range truth {
			bestT = math.Min(bestT, res.TimeSec)
			bestC = math.Min(bestC, res.CostUSD)
		}
		pickT, pickC := 0, 0
		for i, p := range preds {
			rel := (p.TimeSec - truth[i].TimeSec) / truth[i].TimeSec
			sqRelErr += rel * rel
			numPreds++
			if p.TimeSec < preds[pickT].TimeSec {
				pickT = i
			}
			if p.CostUSD < preds[pickC].CostUSD {
				pickC = i
			}
		}
		sumNormT += truth[pickT].TimeSec / bestT
		sumNormC += truth[pickC].CostUSD / bestC
		evaluated++
	}
	return &EvalResult{
		RMSEPct:           100 * math.Sqrt(sqRelErr/float64(numPreds)),
		MeanFoundNormTime: sumNormT / float64(evaluated),
		MeanFoundNormCost: sumNormC / float64(evaluated),
		Workloads:         evaluated,
	}, nil
}
