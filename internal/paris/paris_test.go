package paris

import (
	"errors"
	"testing"

	"repro/internal/cloud"
	"repro/internal/forest"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func newSim(t *testing.T) *sim.Simulator {
	t.Helper()
	return sim.New(cloud.DefaultCatalog())
}

func pickWorkloads(t *testing.T, n int) []workloads.Workload {
	t.Helper()
	s := newSim(t)
	study := s.StudyWorkloads()
	if len(study) < n {
		t.Fatalf("study set too small: %d", len(study))
	}
	// Stride through the study set for diversity.
	var out []workloads.Workload
	step := len(study) / n
	for i := 0; i < n; i++ {
		out = append(out, study[i*step])
	}
	return out
}

func TestNewValidatesReferenceVMs(t *testing.T) {
	s := newSim(t)
	if _, err := New(s, Config{ReferenceVMs: []string{"z1.mega"}}); err == nil {
		t.Error("unknown reference VM should fail")
	}
	m, err := New(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumReferenceVMs() != len(DefaultReferenceVMs()) {
		t.Errorf("NumReferenceVMs = %d", m.NumReferenceVMs())
	}
}

func TestPredictBeforeTrain(t *testing.T) {
	s := newSim(t)
	m, err := New(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := m.Fingerprint(pickWorkloads(t, 2)[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(fp); !errors.Is(err, ErrNotTrained) {
		t.Errorf("error = %v, want ErrNotTrained", err)
	}
}

func TestTrainEmpty(t *testing.T) {
	s := newSim(t)
	m, err := New(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(nil); err == nil {
		t.Error("training on nothing should fail")
	}
}

func TestFingerprintDim(t *testing.T) {
	s := newSim(t)
	m, err := New(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := m.Fingerprint(pickWorkloads(t, 2)[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.features) != m.FingerprintDim() {
		t.Errorf("fingerprint has %d features, want %d", len(fp.features), m.FingerprintDim())
	}
}

func TestTrainPredict(t *testing.T) {
	s := newSim(t)
	m, err := New(s, Config{Forest: forestSmall()})
	if err != nil {
		t.Fatal(err)
	}
	ws := pickWorkloads(t, 12)
	if err := m.Train(ws[:10]); err != nil {
		t.Fatal(err)
	}
	fp, err := m.Fingerprint(ws[11])
	if err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != s.Catalog().Len() {
		t.Fatalf("%d predictions", len(preds))
	}
	for _, p := range preds {
		if p.TimeSec <= 0 || p.CostUSD <= 0 {
			t.Errorf("%s: non-positive prediction %+v", p.VMName, p)
		}
	}
}

func TestBestVM(t *testing.T) {
	s := newSim(t)
	m, err := New(s, Config{Forest: forestSmall()})
	if err != nil {
		t.Fatal(err)
	}
	ws := pickWorkloads(t, 12)
	if err := m.Train(ws[:10]); err != nil {
		t.Fatal(err)
	}
	fp, err := m.Fingerprint(ws[11])
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range []string{"time", "cost"} {
		best, err := m.BestVM(fp, obj)
		if err != nil {
			t.Fatal(err)
		}
		if best.VMName == "" {
			t.Errorf("%s: empty pick", obj)
		}
	}
	if _, err := m.BestVM(fp, "latency"); err == nil {
		t.Error("unknown objective should fail")
	}
}

func TestPredictionsInterpolateTrainingSet(t *testing.T) {
	// Predicting a workload that WAS in the training set should be close
	// to its true values — the model memorizes what it saw.
	s := newSim(t)
	m, err := New(s, Config{Forest: forestSmall()})
	if err != nil {
		t.Fatal(err)
	}
	ws := pickWorkloads(t, 10)
	if err := m.Train(ws); err != nil {
		t.Fatal(err)
	}
	w := ws[0]
	fp, err := m.Fingerprint(w)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(fp)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := s.TruthTable(w)
	if err != nil {
		t.Fatal(err)
	}
	closeEnough := 0
	for i, p := range preds {
		rel := p.TimeSec/truth[i].TimeSec - 1
		if rel < 0 {
			rel = -rel
		}
		if rel < 0.5 {
			closeEnough++
		}
	}
	if closeEnough < len(preds)/2 {
		t.Errorf("only %d/%d training-set predictions within 50%%", closeEnough, len(preds))
	}
}

func TestHoldOneOut(t *testing.T) {
	s := newSim(t)
	res, err := HoldOneOut(s, Config{Forest: forestSmall()}, pickWorkloads(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads != 8 {
		t.Errorf("evaluated %d", res.Workloads)
	}
	if res.RMSEPct <= 0 {
		t.Errorf("RMSE = %v", res.RMSEPct)
	}
	if res.MeanFoundNormTime < 1 || res.MeanFoundNormCost < 1 {
		t.Errorf("normalized picks below 1: %+v", res)
	}
}

func TestHoldOneOutTooFew(t *testing.T) {
	s := newSim(t)
	if _, err := HoldOneOut(s, Config{}, pickWorkloads(t, 8)[:1]); err == nil {
		t.Error("hold-one-out on one workload should fail")
	}
}

// forestSmall keeps tests fast.
func forestSmall() forest.Config {
	return forest.Config{NumTrees: 20}
}
