package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/journal"
)

// leaseMargin is how much of a grant's TTL the holder gives up locally:
// the journal stops appending a margin before the registry would
// re-grant the shard, so a scheduling pause between the expiry check
// and the disk write cannot slip an acknowledged record into a shard
// that has moved.
func leaseMargin(ttl time.Duration) time.Duration {
	m := ttl / 4
	if m < 10*time.Millisecond {
		m = 10 * time.Millisecond
	}
	if m > ttl/2 {
		m = ttl / 2
	}
	return m
}

// grantLease anchors a wire grant on the local clock, margin applied.
// Callers pass the clock reading taken BEFORE the request went out, not
// after the response came back: the registry anchors the grant's expiry
// when it processes the request, which is never earlier than the send,
// so a send-time local anchor keeps local expiry ≤ registry expiry no
// matter how long the response took to arrive. Anchoring at receipt
// would let a slow response (latency > margin) push the local expiry
// past the registry's, re-opening the split-brain the fence exists to
// prevent.
func grantLease(g LeaseGrant, now time.Time) journal.Lease {
	l := journal.Lease{
		Shard:       g.Shard,
		Epoch:       g.Epoch,
		PrevReplica: g.PrevReplica,
		PrevAddr:    g.PrevAddr,
		PrevDataDir: g.PrevDataDir,
	}
	if g.TTLMillis > 0 {
		ttl := time.Duration(g.TTLMillis) * time.Millisecond
		l.Expiry = now.Add(ttl - leaseMargin(ttl))
	}
	return l
}

// ClientOption configures NewClient.
type ClientOption func(*Client)

// WithHTTPClient replaces the transport (tests route it in-process).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithClientNow injects the client's clock.
func WithClientNow(now func() time.Time) ClientOption {
	return func(c *Client) {
		if now != nil {
			c.now = now
		}
	}
}

// Client speaks the registry protocol on a replica's behalf and
// implements journal.LeaseManager and journal.TransferLeaser, so
// journal.Open(..., WithLeaseManager(client)) swaps the filesystem
// lease files for registry grants wholesale. It registers lazily and
// re-registers whenever the registry answers 428 — the self-heal after
// a registry restart without persisted state.
type Client struct {
	base    string // registry base URL, e.g. http://host:port
	replica string
	addr    string // this replica's advertised base URL
	dataDir string
	hc      *http.Client
	now     func() time.Time

	mu         sync.Mutex
	registered bool
	shards     int
	ttl        time.Duration
}

// NewClient builds a registry client for one replica: base is the
// registry's URL, addr how peers reach this replica, dataDir its
// journal directory (what a successor scans after this replica dies).
func NewClient(base, replica, addr, dataDir string, opts ...ClientOption) *Client {
	c := &Client{
		base:    base,
		replica: replica,
		addr:    addr,
		dataDir: dataDir,
		hc:      &http.Client{Timeout: 10 * time.Second},
		now:     time.Now,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Register announces the replica and caches the cluster constants. It
// is idempotent; Acquire and Heartbeat call it implicitly.
func (c *Client) Register() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.registerLocked()
}

func (c *Client) registerLocked() error {
	var out RegisterResponse
	if err := c.do("/registry/v1/register", RegisterRequest{
		Replica: c.replica, Addr: c.addr, DataDir: c.dataDir,
	}, &out); err != nil {
		return err
	}
	c.registered = true
	c.shards = out.Shards
	c.ttl = time.Duration(out.LeaseTTLMillis) * time.Millisecond
	return nil
}

// Shards returns the cluster shard count, registering first if needed.
// Journal directories opened against a registry must use this count.
func (c *Client) Shards() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.registered {
		if err := c.registerLocked(); err != nil {
			return 0, err
		}
	}
	return c.shards, nil
}

// post sends one request, transparently (re-)registering on 428.
func (c *Client) post(path string, in, out any) error {
	c.mu.Lock()
	if !c.registered {
		if err := c.registerLocked(); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	c.mu.Unlock()
	err := c.do(path, in, out)
	if err, ok := err.(*statusError); ok && err.status == http.StatusPreconditionRequired {
		c.mu.Lock()
		c.registered = false
		rerr := c.registerLocked()
		c.mu.Unlock()
		if rerr != nil {
			return rerr
		}
		return c.do(path, in, out)
	}
	return err
}

// statusError is a non-200 registry answer.
type statusError struct {
	status int
	path   string
	body   string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("registry: %s answered %d: %s", e.path, e.status, e.body)
}

func (c *Client) do(path string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("registry: marshaling %s request: %w", path, err)
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("registry: %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("registry: reading %s response: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		msg := string(bytes.TrimSpace(body))
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &statusError{status: resp.StatusCode, path: path, body: msg}
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return fmt.Errorf("registry: decoding %s response: %w", path, err)
		}
	}
	return nil
}

// Acquire implements journal.LeaseManager.
func (c *Client) Acquire(shard int) (journal.Lease, bool, error) {
	start := c.now()
	var out AcquireResponse
	if err := c.post("/registry/v1/acquire", AcquireRequest{
		Replica: c.replica, Shards: []int{shard}, Limit: 1,
	}, &out); err != nil {
		return journal.Lease{}, false, err
	}
	if len(out.Granted) == 0 {
		return journal.Lease{}, false, nil
	}
	return grantLease(out.Granted[0], start), true, nil
}

// Renew implements journal.LeaseManager.
func (c *Client) Renew(l journal.Lease) (journal.Lease, bool, error) {
	start := c.now()
	var out RenewResponse
	if err := c.post("/registry/v1/renew", RenewRequest{
		Replica: c.replica, Leases: []LeaseRef{{Shard: l.Shard, Epoch: l.Epoch}},
	}, &out); err != nil {
		return l, false, err
	}
	for _, shard := range out.Renewed {
		if shard == l.Shard {
			if out.LeaseTTLMillis > 0 {
				ttl := time.Duration(out.LeaseTTLMillis) * time.Millisecond
				l.Expiry = start.Add(ttl - leaseMargin(ttl))
			}
			return l, true, nil
		}
	}
	return l, false, nil
}

// Release implements journal.LeaseManager.
func (c *Client) Release(l journal.Lease) error {
	return c.post("/registry/v1/release", ReleaseRequest{
		Replica: c.replica, Shard: l.Shard, Epoch: l.Epoch,
	}, &ReleaseResponse{})
}

// Transfer implements journal.TransferLeaser: this replica is the
// successor taking the shard over from its draining holder.
func (c *Client) Transfer(shard int, from string, fromEpoch uint64) (journal.Lease, bool, error) {
	start := c.now()
	var out TransferResponse
	if err := c.post("/registry/v1/transfer", TransferRequest{
		Shard: shard, From: from, FromEpoch: fromEpoch, To: c.replica,
	}, &out); err != nil {
		return journal.Lease{}, false, err
	}
	if out.Granted == nil {
		return journal.Lease{}, false, nil
	}
	return grantLease(*out.Granted, start), true, nil
}

// Heartbeat is a pure liveness ping — a replica holding zero shards
// still announces itself so the registry keeps it eligible as a
// migration successor.
func (c *Client) Heartbeat() error {
	return c.post("/registry/v1/renew", RenewRequest{Replica: c.replica}, &RenewResponse{})
}

// State fetches the cluster view.
func (c *Client) State() (*StateResponse, error) {
	resp, err := c.hc.Get(c.base + "/registry/v1/state")
	if err != nil {
		return nil, fmt.Errorf("registry: state: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("registry: reading state: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &statusError{status: resp.StatusCode, path: "/registry/v1/state", body: string(bytes.TrimSpace(body))}
	}
	var st StateResponse
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("registry: decoding state: %w", err)
	}
	return &st, nil
}

// LocalManager returns a journal.LeaseManager (and TransferLeaser)
// calling this registry in-process — the self-hosted topology, where
// the replica hosting the registry must not HTTP itself before its own
// listener is serving. It registers the replica immediately.
func (r *Registry) LocalManager(replica, addr, dataDir string) *LocalManager {
	r.register(replica, addr, dataDir)
	return &LocalManager{reg: r, replica: replica}
}

// LocalManager is the in-process flavor of Client.
type LocalManager struct {
	reg     *Registry
	replica string
}

// Acquire implements journal.LeaseManager.
func (m *LocalManager) Acquire(shard int) (journal.Lease, bool, error) {
	start := m.reg.now()
	granted, err := m.reg.acquire(m.replica, []int{shard}, 1)
	if err != nil || len(granted) == 0 {
		return journal.Lease{}, false, err
	}
	return grantLease(granted[0], start), true, nil
}

// Renew implements journal.LeaseManager.
func (m *LocalManager) Renew(l journal.Lease) (journal.Lease, bool, error) {
	start := m.reg.now()
	renewed, _, err := m.reg.renew(m.replica, []LeaseRef{{Shard: l.Shard, Epoch: l.Epoch}})
	if err != nil {
		return l, false, err
	}
	for _, shard := range renewed {
		if shard == l.Shard {
			ttl := m.reg.ttl
			l.Expiry = start.Add(ttl - leaseMargin(ttl))
			return l, true, nil
		}
	}
	return l, false, nil
}

// Release implements journal.LeaseManager.
func (m *LocalManager) Release(l journal.Lease) error {
	m.reg.release(m.replica, l.Shard, l.Epoch)
	return nil
}

// Transfer implements journal.TransferLeaser.
func (m *LocalManager) Transfer(shard int, from string, fromEpoch uint64) (journal.Lease, bool, error) {
	start := m.reg.now()
	grant, _ := m.reg.transfer(shard, from, fromEpoch, m.replica)
	if grant == nil {
		return journal.Lease{}, false, nil
	}
	return grantLease(*grant, start), true, nil
}

// Heartbeat keeps the replica live in the registry's view.
func (m *LocalManager) Heartbeat() error {
	return m.reg.touch(m.replica)
}

// State returns the cluster view.
func (m *LocalManager) State() (*StateResponse, error) {
	return m.reg.StateSnapshot(), nil
}
