package registry

import (
	"encoding/json"
	"errors"
	"net/http"
)

// The wire types. All durations cross the wire as relative milliseconds
// so registry and replicas never compare absolute clocks.

// RegisterRequest announces (or refreshes) a replica's identity: how to
// reach it and where it journals.
type RegisterRequest struct {
	Replica string `json:"replica"`
	Addr    string `json:"addr,omitempty"`
	DataDir string `json:"data_dir,omitempty"`
}

// RegisterResponse carries the cluster constants the replica must adopt.
type RegisterResponse struct {
	Shards         int   `json:"shards"`
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
}

// AcquireRequest asks for shard grants. Nil Shards means "any shard";
// Limit caps how many grants come back (0 = no cap).
type AcquireRequest struct {
	Replica string `json:"replica"`
	Shards  []int  `json:"shards,omitempty"`
	Limit   int    `json:"limit,omitempty"`
}

// LeaseGrant is one shard grant: the fencing epoch, the remaining TTL,
// and the previous holder (so a reclaimer knows whose journal directory
// holds the shard's sessions).
type LeaseGrant struct {
	Shard       int    `json:"shard"`
	Epoch       uint64 `json:"epoch"`
	TTLMillis   int64  `json:"ttl_ms"`
	PrevReplica string `json:"prev_replica,omitempty"`
	PrevAddr    string `json:"prev_addr,omitempty"`
	PrevDataDir string `json:"prev_data_dir,omitempty"`
}

// AcquireResponse lists the grants won.
type AcquireResponse struct {
	Granted []LeaseGrant `json:"granted,omitempty"`
}

// LeaseRef cites a held grant by shard and epoch.
type LeaseRef struct {
	Shard int    `json:"shard"`
	Epoch uint64 `json:"epoch"`
}

// RenewRequest heartbeats a replica and extends the cited grants. An
// empty Leases list is a pure liveness ping.
type RenewRequest struct {
	Replica string     `json:"replica"`
	Leases  []LeaseRef `json:"leases,omitempty"`
}

// RenewResponse partitions the cited grants into kept and lost.
type RenewResponse struct {
	Renewed        []int `json:"renewed,omitempty"`
	Lost           []int `json:"lost,omitempty"`
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
}

// ReleaseRequest hands one grant back.
type ReleaseRequest struct {
	Replica string `json:"replica"`
	Shard   int    `json:"shard"`
	Epoch   uint64 `json:"epoch"`
}

// ReleaseResponse reports whether the cited grant was actually held.
type ReleaseResponse struct {
	Released bool `json:"released"`
}

// TransferRequest moves a live grant from From (at FromEpoch) to To.
type TransferRequest struct {
	Shard     int    `json:"shard"`
	From      string `json:"from"`
	FromEpoch uint64 `json:"from_epoch"`
	To        string `json:"to"`
}

// TransferResponse carries the successor's grant, or a refusal reason.
type TransferResponse struct {
	Granted *LeaseGrant `json:"granted,omitempty"`
	Reason  string      `json:"reason,omitempty"`
}

// ReplicaInfo is one replica row of the state view.
type ReplicaInfo struct {
	Replica string `json:"replica"`
	Addr    string `json:"addr,omitempty"`
	DataDir string `json:"data_dir,omitempty"`
	// AgeMillis is how long ago the replica was last heard from.
	AgeMillis int64 `json:"age_ms"`
	// Live is AgeMillis within two lease TTLs.
	Live bool `json:"live"`
}

// ShardInfo is one lease row of the state view.
type ShardInfo struct {
	Shard           int    `json:"shard"`
	Holder          string `json:"holder,omitempty"`
	Epoch           uint64 `json:"epoch"`
	ExpiresInMillis int64  `json:"expires_in_ms,omitempty"`
}

// StateResponse is the operator/successor-pick view of the cluster.
type StateResponse struct {
	Shards         int           `json:"shards"`
	LeaseTTLMillis int64         `json:"lease_ttl_ms"`
	Replicas       []ReplicaInfo `json:"replicas,omitempty"`
	Leases         []ShardInfo   `json:"leases,omitempty"`
}

// errorBody is every non-200 response's payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	payload, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(payload)
}

// decode parses a request body, bounded — registry payloads are tiny.
func decode(w http.ResponseWriter, req *http.Request, v any) bool {
	body := http.MaxBytesReader(w, req.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding request: " + err.Error()})
		return false
	}
	return true
}

// fail maps core-layer errors onto statuses: an unknown replica gets
// 428 Precondition Required, the cue for clients to re-register (the
// stateless-registry-restart self-heal).
func fail(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, errUnknownReplica) {
		status = http.StatusPreconditionRequired
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (r *Registry) handleRegister(w http.ResponseWriter, req *http.Request) {
	var in RegisterRequest
	if !decode(w, req, &in) {
		return
	}
	if in.Replica == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "replica name required"})
		return
	}
	shards, ttl := r.register(in.Replica, in.Addr, in.DataDir)
	writeJSON(w, http.StatusOK, RegisterResponse{Shards: shards, LeaseTTLMillis: ttl.Milliseconds()})
}

func (r *Registry) handleAcquire(w http.ResponseWriter, req *http.Request) {
	var in AcquireRequest
	if !decode(w, req, &in) {
		return
	}
	granted, err := r.acquire(in.Replica, in.Shards, in.Limit)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, AcquireResponse{Granted: granted})
}

func (r *Registry) handleRenew(w http.ResponseWriter, req *http.Request) {
	var in RenewRequest
	if !decode(w, req, &in) {
		return
	}
	renewed, lost, err := r.renew(in.Replica, in.Leases)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RenewResponse{Renewed: renewed, Lost: lost, LeaseTTLMillis: r.ttl.Milliseconds()})
}

func (r *Registry) handleRelease(w http.ResponseWriter, req *http.Request) {
	var in ReleaseRequest
	if !decode(w, req, &in) {
		return
	}
	writeJSON(w, http.StatusOK, ReleaseResponse{Released: r.release(in.Replica, in.Shard, in.Epoch)})
}

func (r *Registry) handleTransfer(w http.ResponseWriter, req *http.Request) {
	var in TransferRequest
	if !decode(w, req, &in) {
		return
	}
	grant, reason := r.transfer(in.Shard, in.From, in.FromEpoch, in.To)
	writeJSON(w, http.StatusOK, TransferResponse{Granted: grant, Reason: reason})
}

func (r *Registry) handleState(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.StateSnapshot())
}
