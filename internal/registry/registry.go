// Package registry is the cross-host shard-ownership plane: an HTTP
// service where serve replicas register, heartbeat, and acquire, renew,
// release or transfer time-bound journal-shard leases. It replaces the
// journal's pid-checked filesystem lease files when replicas live on
// different hosts and share nothing but the network.
//
// # Fencing
//
// Every grant and transfer bumps the shard's epoch, a monotone fencing
// token. A holder that is paused (GC, VM freeze, partition) past its
// TTL loses the shard: renewals of a lapsed grant fail — the holder
// must re-acquire and gets a new epoch — and the holder's own journal
// refuses appends once the grant's local expiry passes, a margin
// *before* the registry would re-grant it. Between the two, a
// paused-then-resumed old owner can never acknowledge a write into a
// shard that has moved.
//
// # Clocks
//
// The wire protocol carries only relative TTLs (milliseconds), never
// absolute timestamps, so registry and replicas need no clock
// agreement. Each side anchors the TTL on its own clock; the replica
// additionally gives up the last quarter of it (see leaseMargin) to
// absorb scheduling delay between its expiry check and the write.
//
// # Persistence
//
// With a state path configured the registry persists replicas, leases
// and epochs to one JSON file by atomic temp-write-and-rename on every
// mutation, so a restarted registry resumes the exact lease table —
// live holders keep renewing their grants across the restart instead
// of stampeding to re-acquire.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/journal"
)

// DefaultLeaseTTL is the grant lifetime when Config leaves it zero:
// long enough that one missed heartbeat is survivable, short enough
// that a dead replica's shards move within seconds.
const DefaultLeaseTTL = 5 * time.Second

// Config parameterizes a registry.
type Config struct {
	// Shards is the cluster-wide journal shard count (default
	// journal.DefaultShards). Every replica's journal directory must
	// agree; replicas learn the count from the register response.
	Shards int
	// LeaseTTL is how long a grant lives without renewal.
	LeaseTTL time.Duration
	// StatePath, when set, persists the lease table across restarts.
	StatePath string
	// Now injects the clock (tests).
	Now func() time.Time
	// Warnf routes non-fatal warnings; default os.Stderr.
	Warnf func(format string, args ...any)
}

// replicaState is one registered replica.
type replicaState struct {
	Addr     string    `json:"addr,omitempty"`
	DataDir  string    `json:"data_dir,omitempty"`
	LastSeen time.Time `json:"last_seen"`
}

// shardState is one shard's lease row. Epoch only ever grows; the Prev
// fields remember the last distinct holder so a successor knows whose
// journal directory to adopt the shard's sessions from.
type shardState struct {
	Holder      string    `json:"holder,omitempty"`
	Addr        string    `json:"addr,omitempty"`
	DataDir     string    `json:"data_dir,omitempty"`
	Epoch       uint64    `json:"epoch"`
	Expiry      time.Time `json:"expiry"`
	PrevReplica string    `json:"prev_replica,omitempty"`
	PrevAddr    string    `json:"prev_addr,omitempty"`
	PrevDataDir string    `json:"prev_data_dir,omitempty"`
}

// persistedState is the state file's schema.
type persistedState struct {
	Shards   int                      `json:"shards"`
	Replicas map[string]*replicaState `json:"replicas"`
	Leases   []*shardState            `json:"leases"`
}

// Registry is the lease table plus its HTTP front. Safe for concurrent
// use; it implements http.Handler (routes under /registry/v1/).
type Registry struct {
	shards    int
	ttl       time.Duration
	statePath string
	now       func() time.Time
	warnf     func(format string, args ...any)
	mux       *http.ServeMux

	mu       sync.Mutex
	replicas map[string]*replicaState
	leases   []*shardState
}

// errUnknownReplica fences calls from replicas the registry has no
// registration for — the caller must (re-)register first. Over HTTP it
// maps to 428 Precondition Required so clients can self-heal after a
// stateless registry restart.
var errUnknownReplica = errors.New("registry: unknown replica (register first)")

// New builds a registry, loading the persisted lease table when the
// state path names an existing file (whose shard count then wins).
func New(cfg Config) (*Registry, error) {
	r := &Registry{
		shards:    cfg.Shards,
		ttl:       cfg.LeaseTTL,
		statePath: cfg.StatePath,
		now:       cfg.Now,
		warnf:     cfg.Warnf,
		replicas:  make(map[string]*replicaState),
	}
	if r.shards <= 0 {
		r.shards = journal.DefaultShards
	}
	if r.ttl <= 0 {
		r.ttl = DefaultLeaseTTL
	}
	if r.now == nil {
		r.now = time.Now
	}
	if r.warnf == nil {
		r.warnf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "registry: "+format+"\n", args...)
		}
	}
	if r.statePath != "" {
		data, err := os.ReadFile(r.statePath)
		if err == nil {
			var st persistedState
			if jerr := json.Unmarshal(data, &st); jerr != nil || st.Shards <= 0 || len(st.Leases) != st.Shards {
				return nil, fmt.Errorf("registry: state file %s is damaged (%v); refusing to guess the lease table", r.statePath, jerr)
			}
			r.shards = st.Shards
			r.leases = st.Leases
			if st.Replicas != nil {
				r.replicas = st.Replicas
			}
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("registry: reading state %s: %w", r.statePath, err)
		}
	}
	if r.leases == nil {
		r.leases = make([]*shardState, r.shards)
		for i := range r.leases {
			r.leases[i] = &shardState{}
		}
	}
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("POST /registry/v1/register", r.handleRegister)
	r.mux.HandleFunc("POST /registry/v1/acquire", r.handleAcquire)
	r.mux.HandleFunc("POST /registry/v1/renew", r.handleRenew)
	r.mux.HandleFunc("POST /registry/v1/release", r.handleRelease)
	r.mux.HandleFunc("POST /registry/v1/transfer", r.handleTransfer)
	r.mux.HandleFunc("GET /registry/v1/state", r.handleState)
	return r, nil
}

func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mux.ServeHTTP(w, req)
}

// Shards returns the cluster shard count.
func (r *Registry) Shards() int { return r.shards }

// LeaseTTL returns the grant lifetime.
func (r *Registry) LeaseTTL() time.Duration { return r.ttl }

// persistLocked writes the lease table to the state file (atomic
// temp-write-and-rename). Callers hold r.mu. Persistence failures are
// warnings: the in-memory table stays authoritative for this process's
// lifetime.
func (r *Registry) persistLocked() {
	if r.statePath == "" {
		return
	}
	payload, err := json.MarshalIndent(persistedState{
		Shards:   r.shards,
		Replicas: r.replicas,
		Leases:   r.leases,
	}, "", "  ")
	if err != nil {
		r.warnf("marshaling state: %v", err)
		return
	}
	tmp := r.statePath + ".tmp"
	if err := os.WriteFile(tmp, append(payload, '\n'), 0o644); err != nil {
		r.warnf("writing state %s: %v", tmp, err)
		return
	}
	if err := os.Rename(tmp, r.statePath); err != nil {
		r.warnf("swapping in state %s: %v", r.statePath, err)
		os.Remove(tmp)
		return
	}
	if d, err := os.Open(filepath.Dir(r.statePath)); err == nil {
		d.Sync()
		d.Close()
	}
}

// register upserts a replica's identity and returns the cluster
// constants it must adopt.
func (r *Registry) register(replica, addr, dataDir string) (int, time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := r.replicas[replica]
	if rs == nil {
		rs = &replicaState{}
		r.replicas[replica] = rs
	}
	rs.Addr, rs.DataDir, rs.LastSeen = addr, dataDir, r.now()
	r.persistLocked()
	return r.shards, r.ttl
}

// touch refreshes a replica's liveness without touching leases.
func (r *Registry) touch(replica string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := r.replicas[replica]
	if rs == nil {
		return errUnknownReplica
	}
	rs.LastSeen = r.now()
	return nil
}

// grantLocked renders shard's current lease row as a wire grant.
func (r *Registry) grantLocked(shard int) LeaseGrant {
	ls := r.leases[shard]
	return LeaseGrant{
		Shard:       shard,
		Epoch:       ls.Epoch,
		TTLMillis:   r.ttl.Milliseconds(),
		PrevReplica: ls.PrevReplica,
		PrevAddr:    ls.PrevAddr,
		PrevDataDir: ls.PrevDataDir,
	}
}

// acquire grants the replica every free shard it asked for (nil = all),
// up to limit (0 = no cap). A shard is free when unheld, held by the
// asker itself, or held by a grant past its TTL — the heartbeat-expiry
// reclaim path. Every grant bumps the epoch.
func (r *Registry) acquire(replica string, want []int, limit int) ([]LeaseGrant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := r.replicas[replica]
	if rs == nil {
		return nil, errUnknownReplica
	}
	now := r.now()
	rs.LastSeen = now
	shards := want
	if shards == nil {
		shards = make([]int, r.shards)
		for i := range shards {
			shards[i] = i
		}
	}
	var granted []LeaseGrant
	for _, shard := range shards {
		if shard < 0 || shard >= r.shards {
			continue
		}
		if limit > 0 && len(granted) >= limit {
			break
		}
		ls := r.leases[shard]
		free := ls.Holder == "" || ls.Holder == replica || !now.Before(ls.Expiry)
		if !free {
			continue
		}
		if ls.Holder != "" && ls.Holder != replica {
			ls.PrevReplica, ls.PrevAddr, ls.PrevDataDir = ls.Holder, ls.Addr, ls.DataDir
		} else if ls.Holder == replica {
			// Self re-acquire (a restart): the holder already has the
			// shard's data in its own directory. Clearing a leftover
			// adoption pointer from an earlier holder change stops the
			// restarted replica from scanning a peer's directory instead
			// of its own.
			ls.PrevReplica, ls.PrevAddr, ls.PrevDataDir = "", "", ""
		}
		ls.Holder, ls.Addr, ls.DataDir = replica, rs.Addr, rs.DataDir
		ls.Epoch++
		ls.Expiry = now.Add(r.ttl)
		granted = append(granted, r.grantLocked(shard))
	}
	if len(granted) > 0 {
		r.persistLocked()
	}
	return granted, nil
}

// renew extends the grants the replica still holds at the cited epochs.
// A lapsed, superseded or unknown grant lands in lost: the holder must
// drop the shard and re-acquire for a fresh epoch.
func (r *Registry) renew(replica string, refs []LeaseRef) (renewed, lost []int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := r.replicas[replica]
	if rs == nil {
		return nil, nil, errUnknownReplica
	}
	now := r.now()
	rs.LastSeen = now
	changed := false
	for _, ref := range refs {
		if ref.Shard < 0 || ref.Shard >= r.shards {
			lost = append(lost, ref.Shard)
			continue
		}
		ls := r.leases[ref.Shard]
		if ls.Holder == replica && ls.Epoch == ref.Epoch && now.Before(ls.Expiry) {
			ls.Expiry = now.Add(r.ttl)
			renewed = append(renewed, ref.Shard)
			changed = true
		} else {
			lost = append(lost, ref.Shard)
		}
	}
	if changed {
		r.persistLocked()
	}
	return renewed, lost, nil
}

// release hands a grant back, remembering the releaser as the shard's
// previous holder so a later claimant can still find the data.
func (r *Registry) release(replica string, shard int, epoch uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if shard < 0 || shard >= r.shards {
		return false
	}
	ls := r.leases[shard]
	if ls.Holder != replica || ls.Epoch != epoch {
		return false
	}
	ls.PrevReplica, ls.PrevAddr, ls.PrevDataDir = ls.Holder, ls.Addr, ls.DataDir
	ls.Holder, ls.Addr, ls.DataDir = "", "", ""
	ls.Expiry = time.Time{}
	r.persistLocked()
	return true
}

// transfer moves a live grant from its holder to a successor, fenced by
// the holder's epoch — the graceful-migration path. It returns the
// successor's grant, or a refusal reason.
func (r *Registry) transfer(shard int, from string, fromEpoch uint64, to string) (*LeaseGrant, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if shard < 0 || shard >= r.shards {
		return nil, "shard out of range"
	}
	ts := r.replicas[to]
	if ts == nil {
		return nil, "unknown successor replica"
	}
	ls := r.leases[shard]
	now := r.now()
	switch {
	case ls.Holder != from:
		return nil, fmt.Sprintf("shard held by %q, not %q", ls.Holder, from)
	case ls.Epoch != fromEpoch:
		return nil, fmt.Sprintf("stale epoch %d (shard at %d)", fromEpoch, ls.Epoch)
	case !now.Before(ls.Expiry):
		return nil, "holder's grant already expired"
	}
	ts.LastSeen = now
	ls.PrevReplica, ls.PrevAddr, ls.PrevDataDir = ls.Holder, ls.Addr, ls.DataDir
	ls.Holder, ls.Addr, ls.DataDir = to, ts.Addr, ts.DataDir
	ls.Epoch++
	ls.Expiry = now.Add(r.ttl)
	g := r.grantLocked(shard)
	r.persistLocked()
	return &g, ""
}

// StateSnapshot renders the lease table for operators, tests and the
// drain path's successor pick.
func (r *Registry) StateSnapshot() *StateResponse {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	st := &StateResponse{Shards: r.shards, LeaseTTLMillis: r.ttl.Milliseconds()}
	names := make([]string, 0, len(r.replicas))
	for name := range r.replicas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rs := r.replicas[name]
		st.Replicas = append(st.Replicas, ReplicaInfo{
			Replica:   name,
			Addr:      rs.Addr,
			DataDir:   rs.DataDir,
			AgeMillis: now.Sub(rs.LastSeen).Milliseconds(),
			Live:      now.Sub(rs.LastSeen) <= 2*r.ttl,
		})
	}
	for shard, ls := range r.leases {
		info := ShardInfo{Shard: shard, Holder: ls.Holder, Epoch: ls.Epoch}
		if ls.Holder != "" {
			info.ExpiresInMillis = ls.Expiry.Sub(now).Milliseconds()
		}
		st.Leases = append(st.Leases, info)
	}
	return st
}
