package registry

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/journal"
)

// fakeClock is a hand-advanced clock shared by registry, clients and
// journals under test, so expiry is deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestRegistry(t *testing.T, clock *fakeClock, cfg Config) *Registry {
	t.Helper()
	cfg.Now = clock.Now
	cfg.Warnf = t.Logf
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestExpiredLeaseAppendRejected is the fencing edge the whole design
// hangs on: once a shard lease's (margined) expiry passes, the journal
// refuses to append — even though nothing else changed — because the
// registry may already have re-granted the shard to another replica. A
// paused-then-resumed process cannot ack into a shard it lost.
func TestExpiredLeaseAppendRejected(t *testing.T) {
	clock := newFakeClock()
	reg := newTestRegistry(t, clock, Config{Shards: 1, LeaseTTL: time.Second})
	dir := t.TempDir()
	mgr := reg.LocalManager("a", "http://a", dir)
	j, err := journal.Open(dir,
		journal.WithReplica("a"), journal.WithShards(1),
		journal.WithLeaseManager(mgr), journal.WithNow(clock.Now),
		journal.WithWarnf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	rec := journal.Record{Session: "sess-1", Seq: 0, Kind: journal.KindCreate}
	if err := j.Append(rec); err != nil {
		t.Fatalf("append under a live lease: %v", err)
	}

	// Cross the margined local expiry (ttl - ttl/4) but not even a
	// renewal has happened: the local fence alone must reject.
	clock.Advance(900 * time.Millisecond)
	rec.Seq = 1
	rec.Kind = journal.KindObserve
	if err := j.Append(rec); !errors.Is(err, journal.ErrLeaseExpired) {
		t.Fatalf("append on an expired lease returned %v, want ErrLeaseExpired", err)
	}

	// Renewal restores the fence.
	lost, err := j.RenewLeases()
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 0 {
		t.Fatalf("renew within the registry TTL lost shards %v", lost)
	}
	if err := j.Append(rec); err != nil {
		t.Fatalf("append after renewal: %v", err)
	}
}

// TestRenewAfterExpiryIsLostThenNewEpoch: a renewal arriving after the
// registry-side expiry does not resurrect the old grant — the shard is
// reported lost, and re-acquiring mints a strictly larger epoch, so any
// record fenced by the old epoch can never be mistaken for current.
func TestRenewAfterExpiryIsLostThenNewEpoch(t *testing.T) {
	clock := newFakeClock()
	reg := newTestRegistry(t, clock, Config{Shards: 1, LeaseTTL: time.Second})
	mgr := reg.LocalManager("a", "http://a", t.TempDir())

	l1, ok, err := mgr.Acquire(0)
	if err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	clock.Advance(2 * time.Second)

	if _, renewed, err := mgr.Renew(l1); err != nil || renewed {
		t.Fatalf("renew after expiry: renewed=%v err=%v, want lost", renewed, err)
	}
	l2, ok, err := mgr.Acquire(0)
	if err != nil || !ok {
		t.Fatalf("re-acquire after expiry: ok=%v err=%v", ok, err)
	}
	if l2.Epoch <= l1.Epoch {
		t.Fatalf("re-acquire epoch %d did not advance past %d", l2.Epoch, l1.Epoch)
	}
	// And the stale grant stays dead: renewing the old epoch while the
	// new one is live must fail even though the holder name matches.
	if _, renewed, err := mgr.Renew(l1); err != nil || renewed {
		t.Fatalf("stale-epoch renew: renewed=%v err=%v, want lost", renewed, err)
	}
}

// TestTwoClaimantsRaceOneShard: with a single shard and two replicas
// over HTTP, exactly one acquire wins; the loser only gets the shard
// after the winner's lease expires, with a bumped epoch and the
// winner's journal directory in the grant (the adoption pointer).
func TestTwoClaimantsRaceOneShard(t *testing.T) {
	clock := newFakeClock()
	reg := newTestRegistry(t, clock, Config{Shards: 1, LeaseTTL: time.Second})
	ts := httptest.NewServer(reg)
	defer ts.Close()

	dirA, dirB := t.TempDir(), t.TempDir()
	a := NewClient(ts.URL, "a", "http://a", dirA, WithClientNow(clock.Now))
	b := NewClient(ts.URL, "b", "http://b", dirB, WithClientNow(clock.Now))

	la, okA, err := a.Acquire(0)
	if err != nil || !okA {
		t.Fatalf("a acquire: ok=%v err=%v", okA, err)
	}
	if _, okB, err := b.Acquire(0); err != nil || okB {
		t.Fatalf("b acquired a held shard: ok=%v err=%v", okB, err)
	}

	clock.Advance(2 * time.Second)
	lb, okB, err := b.Acquire(0)
	if err != nil || !okB {
		t.Fatalf("b acquire after expiry: ok=%v err=%v", okB, err)
	}
	if lb.Epoch <= la.Epoch {
		t.Fatalf("takeover epoch %d did not advance past %d", lb.Epoch, la.Epoch)
	}
	if lb.PrevReplica != "a" || lb.PrevDataDir != dirA {
		t.Fatalf("takeover grant lost the adoption pointer: %+v", lb)
	}
	// a's renewal of its stale grant reports lost, not an error.
	if _, renewed, err := a.Renew(la); err != nil || renewed {
		t.Fatalf("a renewed a lost shard: renewed=%v err=%v", renewed, err)
	}
}

// laggedTransport delivers responses late: it advances the shared fake
// clock AFTER the registry has processed the request, modeling network
// delay (or a client pause) between the registry anchoring a grant's
// expiry and the client seeing the response.
type laggedTransport struct {
	clock *fakeClock
	lag   time.Duration
}

func (t *laggedTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(r)
	t.clock.Advance(t.lag)
	return resp, err
}

// TestLeaseAnchoredAtSendTime pins the grant-anchoring rule: the client
// must anchor a grant's local expiry at the clock reading taken before
// the request went out, never at response receipt. With response lag
// exceeding the local margin (ttl/4), a receipt-time anchor would place
// the local expiry AFTER the registry-side expiry, letting a holder
// keep acking appends into a shard the registry already re-granted.
func TestLeaseAnchoredAtSendTime(t *testing.T) {
	clock := newFakeClock()
	reg := newTestRegistry(t, clock, Config{Shards: 1, LeaseTTL: time.Second})
	ts := httptest.NewServer(reg)
	defer ts.Close()

	const ttl = time.Second
	lag := 600 * time.Millisecond // > margin of ttl/4
	hc := &http.Client{Transport: &laggedTransport{clock: clock, lag: lag}}
	a := NewClient(ts.URL, "a", "http://a", t.TempDir(),
		WithClientNow(clock.Now), WithHTTPClient(hc))
	b := NewClient(ts.URL, "b", "http://b", t.TempDir(),
		WithClientNow(clock.Now), WithHTTPClient(hc))
	// Register up front so each leg below is exactly one lagged round
	// trip; a lazy registration inside Acquire/Transfer would burn lease
	// time before the call under test even reaches the registry.
	if err := a.Register(); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(); err != nil {
		t.Fatal(err)
	}

	start := clock.Now()
	la, ok, err := a.Acquire(0)
	if err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	want := start.Add(ttl - leaseMargin(ttl))
	if !la.Expiry.Equal(want) {
		t.Fatalf("acquire expiry anchored at %v, want send-time anchor %v", la.Expiry, want)
	}

	start = clock.Now()
	la, ok, err = a.Renew(la)
	if err != nil || !ok {
		t.Fatalf("renew: ok=%v err=%v", ok, err)
	}
	want = start.Add(ttl - leaseMargin(ttl))
	if !la.Expiry.Equal(want) {
		t.Fatalf("renew expiry anchored at %v, want send-time anchor %v", la.Expiry, want)
	}

	start = clock.Now()
	lb, ok, err := b.Transfer(0, "a", la.Epoch)
	if err != nil || !ok {
		t.Fatalf("transfer: ok=%v err=%v", ok, err)
	}
	want = start.Add(ttl - leaseMargin(ttl))
	if !lb.Expiry.Equal(want) {
		t.Fatalf("transfer expiry anchored at %v, want send-time anchor %v", lb.Expiry, want)
	}
}

// TestTransferFencesStaleEpoch pins the migration fence: a transfer
// citing an outdated (shard, epoch) pair is refused, while the current
// one moves the lease and bumps the epoch.
func TestTransferFencesStaleEpoch(t *testing.T) {
	clock := newFakeClock()
	reg := newTestRegistry(t, clock, Config{Shards: 1, LeaseTTL: time.Minute})
	a := reg.LocalManager("a", "http://a", t.TempDir())
	b := reg.LocalManager("b", "http://b", t.TempDir())

	la, ok, err := a.Acquire(0)
	if err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := b.Transfer(0, "a", la.Epoch-1); ok {
		t.Fatal("transfer with a stale epoch was granted")
	}
	if _, ok, _ := b.Transfer(0, "nobody", la.Epoch); ok {
		t.Fatal("transfer from a non-holder was granted")
	}
	lb, ok, err := b.Transfer(0, "a", la.Epoch)
	if err != nil || !ok {
		t.Fatalf("legitimate transfer refused: ok=%v err=%v", ok, err)
	}
	if lb.Epoch <= la.Epoch {
		t.Fatalf("transfer epoch %d did not advance past %d", lb.Epoch, la.Epoch)
	}
	// The drained holder can no longer renew or re-transfer.
	if _, renewed, _ := a.Renew(la); renewed {
		t.Fatal("drained holder renewed the transferred shard")
	}
}

// TestRegistryRestartPreservesLeases: a registry with a state path
// restarts into the same lease table — holders, epochs — so an
// in-flight cluster keeps its shard assignment across a registry
// restart, and renewals from live replicas keep working.
func TestRegistryRestartPreservesLeases(t *testing.T) {
	clock := newFakeClock()
	state := filepath.Join(t.TempDir(), "registry.json")
	reg1 := newTestRegistry(t, clock, Config{Shards: 4, LeaseTTL: time.Minute, StatePath: state})
	a := reg1.LocalManager("a", "http://a", t.TempDir())
	var leases []journal.Lease
	for shard := 0; shard < 4; shard++ {
		l, ok, err := a.Acquire(shard)
		if err != nil || !ok {
			t.Fatalf("acquire %d: ok=%v err=%v", shard, ok, err)
		}
		leases = append(leases, l)
	}

	reg2 := newTestRegistry(t, clock, Config{StatePath: state})
	if reg2.Shards() != 4 {
		t.Fatalf("restarted registry has %d shards, want 4 from the state file", reg2.Shards())
	}
	st := reg2.StateSnapshot()
	for _, row := range st.Leases {
		if row.Holder != "a" {
			t.Fatalf("shard %d lost its holder across restart: %+v", row.Shard, row)
		}
		if want := leases[row.Shard].Epoch; row.Epoch != want {
			t.Fatalf("shard %d epoch drifted across restart: %d want %d", row.Shard, row.Epoch, want)
		}
	}
	// The replica registration survived too: renew works without a
	// fresh register round-trip.
	a2 := &LocalManager{reg: reg2, replica: "a"}
	if _, renewed, err := a2.Renew(leases[0]); err != nil || !renewed {
		t.Fatalf("renew against restarted registry: renewed=%v err=%v", renewed, err)
	}
}

// TestClientSelfHealsAfterStatelessRestart: a registry restarted
// WITHOUT a state file forgets every replica; the client's next call
// gets 428 Precondition Required and transparently re-registers. Lease
// epochs restart at 1 in that world — which is safe only because the
// journal-side margined expiry already fenced the old grants.
func TestClientSelfHealsAfterStatelessRestart(t *testing.T) {
	clock := newFakeClock()
	reg := newTestRegistry(t, clock, Config{Shards: 2, LeaseTTL: time.Minute})
	var mu sync.Mutex
	current := reg
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		h := current
		mu.Unlock()
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, "a", "http://a", t.TempDir(), WithClientNow(clock.Now))
	if _, ok, err := c.Acquire(0); err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}

	mu.Lock()
	current = newTestRegistry(t, clock, Config{Shards: 2, LeaseTTL: time.Minute})
	mu.Unlock()

	if err := c.Heartbeat(); err != nil {
		t.Fatalf("heartbeat did not self-heal after registry restart: %v", err)
	}
	if _, ok, err := c.Acquire(1); err != nil || !ok {
		t.Fatalf("acquire after self-heal: ok=%v err=%v", ok, err)
	}
	st, err := c.State()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Replicas) != 1 || st.Replicas[0].Replica != "a" {
		t.Fatalf("replica not re-registered: %+v", st.Replicas)
	}
}
