package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Fingerprint is the canonical description of one search execution. The
// study layer fills it from a MethodConfig plus the run coordinates
// (workload, objective, seed) and the substrate version; fields that do
// not influence the method's behavior are left at their zero value so
// cosmetically different configurations collide onto the same Key.
// Callers are responsible for canonicalization (resolving defaulted
// zero values, dropping fields irrelevant to the method): the
// fingerprint hashes exactly what it is given.
type Fingerprint struct {
	// Schema versions the fingerprint layout itself.
	Schema string
	// Substrate versions the measurement substrate: results produced
	// under different substrate versions never share a key.
	Substrate string

	Method     string
	WorkloadID string
	Objective  string
	Seed       int64

	// Kernel is the GP covariance family (Naive and Hybrid).
	Kernel string
	// EIStop is the canonical EI stopping fraction (-1 when disabled).
	EIStop float64
	// Delta is the canonical Prediction-Delta threshold (-1 when
	// disabled; Augmented and Hybrid).
	Delta float64
	// SwitchAfter is Hybrid's handover point.
	SwitchAfter int

	// Extra-Trees configuration (Augmented and Hybrid). Zero
	// ForestMaxFeatures means the round(sqrt(d)) default and zero
	// ForestMaxDepth means unbounded — both are already canonical.
	ForestTrees       int
	ForestMinSplit    int
	ForestMaxFeatures int
	ForestMaxDepth    int

	// Initial-design configuration.
	DesignKind  string
	DesignSize  int
	DesignFixed []int
}

// Key hashes the fingerprint into its content address.
func (f Fingerprint) Key() Key {
	h := sha256.New()
	// %q quotes the strings so no field separator can be forged from
	// inside a workload ID; floats print with enough digits to
	// round-trip exactly.
	fmt.Fprintf(h, "%q|%q|%q|%q|%q|%d|%q|%.17g|%.17g|%d|%d,%d,%d,%d|%q|%d|%v",
		f.Schema, f.Substrate, f.Method, f.WorkloadID, f.Objective, f.Seed,
		f.Kernel, f.EIStop, f.Delta, f.SwitchAfter,
		f.ForestTrees, f.ForestMinSplit, f.ForestMaxFeatures, f.ForestMaxDepth,
		f.DesignKind, f.DesignSize, f.DesignFixed)
	return Key(hex.EncodeToString(h.Sum(nil)))
}
