package runcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadShard feeds arbitrary bytes to the JSONL shard loader.
// Properties: Open never panics and never fails on damaged content
// (damage costs recomputation, not startup), and a valid entry appended
// after the noise always loads — last-line-wins makes it authoritative,
// so the loader may skip garbage but must never drop valid lines.
func FuzzLoadShard(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"k":"other","s":"v1","v":2.5}`))
	f.Add([]byte(`{"k":"fuzz-key","s":"v1","v":99}`)) // same key: ours still wins
	f.Add([]byte(`{"k":"stale","s":"old-substrate","v":1}`))
	f.Add([]byte(`{"k":"","s":"v1","v":1}`))
	f.Add([]byte(`{"k":"truncated","s":"v1","v":`))
	f.Add([]byte(`{"k":"badval","s":"v1","v":"not a float"}`))
	f.Fuzz(func(t *testing.T, noise []byte) {
		if len(noise) > 1<<20 {
			return // lines beyond the scanner limit legitimately stop the load
		}
		const (
			substrate = "v1"
			key       = Key("fuzz-key")
			want      = 42.125
		)
		dir := t.TempDir()
		valid, err := json.Marshal(envelope{Key: key, Substrate: substrate, Value: json.RawMessage("42.125")})
		if err != nil {
			t.Fatal(err)
		}
		shard := filepath.Join(dir, "shard-"+twoDigit(shardOf(key))+".jsonl")
		content := append(append(append([]byte{}, noise...), '\n'), valid...)
		content = append(content, '\n')
		if err := os.WriteFile(shard, content, 0o644); err != nil {
			t.Fatal(err)
		}

		s, err := Open[float64](dir, substrate, WithWarnf(func(string, ...any) {}))
		if err != nil {
			t.Fatalf("Open failed on damaged shard content: %v", err)
		}
		defer s.Close()

		got, err := s.Do(key, func() (float64, error) {
			t.Fatalf("valid trailing line was dropped; compute ran")
			return 0, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("loaded %v, want %v", got, want)
		}
		if st := s.Stats(); st.DiskHits != 1 {
			t.Fatalf("DiskHits = %d, want 1 (stats: %+v)", st.DiskHits, st)
		}
	})
}

func twoDigit(n int) string {
	return string([]byte{byte('0' + n/10), byte('0' + n%10)})
}
