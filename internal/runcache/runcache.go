// Package runcache is the study layer's cross-experiment memoization
// primitive. Every search the paper's evaluation runs is a pure function
// of its configuration fingerprint (method, workload, objective, seed,
// substrate version), so the figures — which rerun the same (method,
// workload, seed) searches over and over — can share one execution per
// distinct key.
//
// A Store is two-tiered:
//
//   - an in-memory concurrent map with singleflight deduplication:
//     concurrent requests for the same key run the computation once and
//     every waiter shares the result;
//   - an optional on-disk tier (JSONL shard files under a cache
//     directory) that makes re-runs near-instant and lets interrupted
//     studies resume where they stopped. Entries are appended as they
//     are computed; corrupt or truncated lines (e.g. from a killed
//     process) are skipped with a warning, and entries written under a
//     different substrate version are invalidated on load.
//
// Values cross the disk tier as JSON, so cached values must round-trip
// exactly through encoding/json (Go prints float64 in the shortest form
// that parses back bit-identically, so plain numeric payloads qualify).
// Results returned from Do may be shared between callers and must be
// treated as immutable.
package runcache

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Key is the content-addressed identity of one cached computation.
// Fingerprint.Key produces one for a search; any unique string works
// (the truth-table cache uses structured plain-text keys).
type Key string

// numShards spreads the disk tier over this many JSONL files so
// concurrent writers rarely contend on one append lock.
const numShards = 16

// Stats counts cache outcomes. All counters are cumulative for the
// lifetime of the Store.
type Stats struct {
	// Hits served from the in-memory tier (computed this process).
	Hits int64
	// DiskHits served from entries loaded from the persistent tier.
	DiskHits int64
	// Misses ran the computation.
	Misses int64
	// Shared waited on another goroutine's in-flight computation of the
	// same key (singleflight deduplication).
	Shared int64
	// Loaded is the number of entries read from disk at Open.
	Loaded int64
	// Invalidated counts disk entries skipped for a substrate mismatch.
	Invalidated int64
	// Corrupt counts undecodable or truncated disk lines skipped.
	Corrupt int64
}

// Lookups is the total number of Do calls accounted for.
func (s Stats) Lookups() int64 { return s.Hits + s.DiskHits + s.Misses + s.Shared }

// ReuseRatio is the fraction of lookups served without running the
// computation (memory, disk, or in-flight sharing); 0 when idle.
func (s Stats) ReuseRatio() float64 {
	n := s.Lookups()
	if n == 0 {
		return 0
	}
	return float64(s.Hits+s.DiskHits+s.Shared) / float64(n)
}

// Option configures a Store.
type Option func(*config)

type config struct {
	warnf  func(format string, args ...any)
	tracer telemetry.Tracer
}

// WithWarnf routes non-fatal cache warnings (corrupt shard lines,
// append failures). The default writes to os.Stderr.
func WithWarnf(fn func(format string, args ...any)) Option {
	return func(c *config) {
		if fn != nil {
			c.warnf = fn
		}
	}
}

// WithTracer emits one telemetry.KindCacheLookup event per Do call. The
// key is deterministic (it lands in Detail); the disposition — hit,
// disk, shared or miss — depends on execution history, so it goes into
// the event's wall-clock section and golden comparisons ignore it.
func WithTracer(t telemetry.Tracer) Option {
	return func(c *config) { c.tracer = t }
}

// Store is a two-tier memoization map from Key to V.
type Store[V any] struct {
	dir       string // "" disables the persistent tier
	substrate string
	warnf     func(format string, args ...any)
	tracer    telemetry.Tracer

	mu       sync.Mutex
	mem      map[Key]entry[V]
	inflight map[Key]*call[V]

	shards [numShards]struct {
		mu sync.Mutex
		f  *os.File
	}

	hits, diskHits, misses, shared atomic.Int64
	loaded, invalidated, corrupt   int64 // set once at Open
}

type entry[V any] struct {
	val      V
	fromDisk bool
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// envelope is one JSONL shard line.
type envelope struct {
	Key       Key             `json:"k"`
	Substrate string          `json:"s"`
	Value     json.RawMessage `json:"v"`
}

// Open builds a Store. dir == "" keeps the cache memory-only; otherwise
// the directory is created and every shard file in it is loaded (entries
// whose substrate differs from the given one are invalidated, damaged
// lines are skipped with a warning). The substrate string versions the
// computation's semantics: bump it whenever results change and the whole
// persistent tier stops matching.
func Open[V any](dir, substrate string, opts ...Option) (*Store[V], error) {
	cfg := config{warnf: func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "runcache: "+format+"\n", args...)
	}}
	for _, opt := range opts {
		opt(&cfg)
	}
	s := &Store[V]{
		dir:       dir,
		substrate: substrate,
		warnf:     cfg.warnf,
		tracer:    cfg.tracer,
		mem:       make(map[Key]entry[V]),
		inflight:  make(map[Key]*call[V]),
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: creating %s: %w", dir, err)
	}
	for shard := 0; shard < numShards; shard++ {
		if err := s.loadShard(shard); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// shardPath names one shard's JSONL file.
func (s *Store[V]) shardPath(shard int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%02d.jsonl", shard))
}

// shardOf maps a key to its shard.
func shardOf(key Key) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % numShards)
}

// loadShard reads one shard file into the memory tier. Unreadable lines
// never fail the load: a crashed writer leaves at most a truncated tail,
// and losing a cache line only costs a recomputation.
func (s *Store[V]) loadShard(shard int) error {
	f, err := os.Open(s.shardPath(shard))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("runcache: opening %s: %w", s.shardPath(shard), err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var env envelope
		if err := json.Unmarshal(line, &env); err != nil || env.Key == "" {
			s.corrupt++
			s.warnf("%s:%d: skipping damaged cache line", s.shardPath(shard), lineNo)
			continue
		}
		if env.Substrate != s.substrate {
			s.invalidated++
			continue
		}
		var val V
		if err := json.Unmarshal(env.Value, &val); err != nil {
			s.corrupt++
			s.warnf("%s:%d: skipping undecodable cache value: %v", s.shardPath(shard), lineNo, err)
			continue
		}
		s.mem[env.Key] = entry[V]{val: val, fromDisk: true}
		s.loaded++
	}
	if err := sc.Err(); err != nil {
		// An over-long or partially written line; what loaded still counts.
		s.corrupt++
		s.warnf("%s: stopping load early: %v", s.shardPath(shard), err)
	}
	return nil
}

// Do returns the cached value for key, or runs compute exactly once —
// concurrent callers with the same key wait for the first computation
// and share its result. Errors are returned to every waiting caller and
// never cached.
func (s *Store[V]) Do(key Key, compute func() (V, error)) (V, error) {
	s.mu.Lock()
	if e, ok := s.mem[key]; ok {
		if e.fromDisk {
			s.diskHits.Add(1)
		} else {
			s.hits.Add(1)
		}
		s.mu.Unlock()
		disposition := "hit"
		if e.fromDisk {
			disposition = "disk"
		}
		s.trace(key, disposition)
		return e.val, nil
	}
	if c, ok := s.inflight[key]; ok {
		s.shared.Add(1)
		s.mu.Unlock()
		s.trace(key, "shared")
		<-c.done
		return c.val, c.err
	}
	c := &call[V]{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()
	s.trace(key, "miss")

	c.val, c.err = compute()

	s.mu.Lock()
	delete(s.inflight, key)
	if c.err == nil {
		s.misses.Add(1)
		s.mem[key] = entry[V]{val: c.val}
	}
	s.mu.Unlock()
	if c.err == nil {
		s.persist(key, c.val)
	}
	close(c.done)
	return c.val, c.err
}

// trace emits one cache-lookup event. The disposition lives in the wall
// section: whether a key hits depends on what ran before, which is
// exactly the kind of environmental fact golden traces must ignore.
func (s *Store[V]) trace(key Key, disposition string) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(telemetry.Event{
		Kind:      telemetry.KindCacheLookup,
		Candidate: -1,
		Detail:    string(key),
		Wall:      &telemetry.Wall{Cache: disposition},
	})
}

// Len is the number of entries in the memory tier.
func (s *Store[V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Stats snapshots the counters.
func (s *Store[V]) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		DiskHits:    s.diskHits.Load(),
		Misses:      s.misses.Load(),
		Shared:      s.shared.Load(),
		Loaded:      s.loaded,
		Invalidated: s.invalidated,
		Corrupt:     s.corrupt,
	}
}

// persist appends one entry to its shard file. Failures degrade to a
// warning: the memory tier already holds the value.
func (s *Store[V]) persist(key Key, val V) {
	if s.dir == "" {
		return
	}
	payload, err := json.Marshal(val)
	if err != nil {
		s.warnf("marshaling value for %s: %v", key, err)
		return
	}
	line, err := json.Marshal(envelope{Key: key, Substrate: s.substrate, Value: payload})
	if err != nil {
		s.warnf("marshaling envelope for %s: %v", key, err)
		return
	}
	line = append(line, '\n')

	sh := &s.shards[shardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.f == nil {
		f, err := os.OpenFile(s.shardPath(shardOf(key)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			s.warnf("opening %s: %v", s.shardPath(shardOf(key)), err)
			return
		}
		sh.f = f
	}
	if _, err := sh.f.Write(line); err != nil {
		s.warnf("appending to %s: %v", s.shardPath(shardOf(key)), err)
	}
}

// Close releases the shard file handles. The Store stays usable as a
// memory-only cache afterwards.
func (s *Store[V]) Close() error {
	var firstErr error
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.f != nil {
			if err := sh.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			sh.f = nil
		}
		sh.mu.Unlock()
	}
	return firstErr
}
