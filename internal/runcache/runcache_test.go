package runcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

type payload struct {
	Name   string
	Values []float64
}

func TestDoComputesOnceAndCaches(t *testing.T) {
	s, err := Open[payload]("", "v1")
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	compute := func() (payload, error) {
		calls++
		return payload{Name: "a", Values: []float64{1, 2.5}}, nil
	}
	for i := 0; i < 3; i++ {
		got, err := s.Do("k", compute)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != "a" || len(got.Values) != 2 {
			t.Fatalf("unexpected value %+v", got)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 1 miss + 2 hits", st)
	}
}

func TestDoSingleflightDeduplicates(t *testing.T) {
	s, err := Open[int]("", "v1")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 32
	var computes atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := s.Do("shared", func() (int, error) {
				computes.Add(1)
				<-release // hold the flight open so everyone piles up
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("got %d, %v", v, err)
			}
		}()
	}
	// Let the waiters queue up behind the single in-flight compute, then
	// release it. The sleep-free way: poll Stats until Shared+Misses
	// accounts for everyone except late memory hits.
	for {
		st := s.Stats()
		if st.Misses+st.Shared+st.Hits >= goroutines-1 || st.Shared > 0 {
			break
		}
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	st := s.Stats()
	if st.Lookups() != goroutines {
		t.Errorf("lookups = %d, want %d (stats %+v)", st.Lookups(), goroutines, st)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	s, err := Open[int]("", "v1")
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	fail := func() (int, error) { calls++; return 0, fmt.Errorf("boom %d", calls) }
	if _, err := s.Do("k", fail); err == nil {
		t.Fatal("want error")
	}
	if _, err := s.Do("k", fail); err == nil || err.Error() != "boom 2" {
		t.Fatalf("second call got %v, want fresh boom 2", err)
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2 (errors must not cache)", calls)
	}
}

func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open[payload](dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	want := payload{Name: "x", Values: []float64{3.14159, 1e-9, 1234567.875}}
	if _, err := s.Do("k1", func() (payload, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := Open[payload](dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.Do("k1", func() (payload, error) {
		t.Error("compute ran on a warm cache")
		return payload{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || len(got.Values) != len(want.Values) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			t.Errorf("value %d: %v != %v (must round-trip exactly)", i, got.Values[i], want.Values[i])
		}
	}
	st := warm.Stats()
	if st.Loaded != 1 || st.DiskHits != 1 {
		t.Errorf("stats = %+v, want 1 loaded + 1 disk hit", st)
	}
}

func TestSubstrateBumpInvalidatesDiskTier(t *testing.T) {
	dir := t.TempDir()
	s, err := Open[int](dir, "substrate-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Do("k", func() (int, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	bumped, err := Open[int](dir, "substrate-2")
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	if _, err := bumped.Do("k", func() (int, error) { ran = true; return 8, nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("bumped substrate must invalidate disk entries")
	}
	st := bumped.Stats()
	if st.Invalidated != 1 || st.Loaded != 0 {
		t.Errorf("stats = %+v, want 1 invalidated + 0 loaded", st)
	}
}

func TestCorruptShardLinesSkippedWithWarning(t *testing.T) {
	dir := t.TempDir()
	s, err := Open[int](dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		key := Key(fmt.Sprintf("k%d", i))
		i := i
		if _, err := s.Do(key, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Damage the tier: garbage line in one shard, truncated tail in
	// another, and one empty file.
	shards, err := filepath.Glob(filepath.Join(dir, "shard-*.jsonl"))
	if err != nil || len(shards) == 0 {
		t.Fatalf("no shard files written (err %v)", err)
	}
	appendTo := func(path, text string) {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(text); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	appendTo(shards[0], "{this is not json}\n")
	appendTo(shards[len(shards)-1], `{"k":"truncated","s":"v1","v":`) // no newline: a killed writer
	if err := os.WriteFile(filepath.Join(dir, "shard-99.jsonl"), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	var warnings []string
	warm, err := Open[int](dir, "v1", WithWarnf(func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}))
	if err != nil {
		t.Fatalf("damaged shards must not fail Open: %v", err)
	}
	st := warm.Stats()
	if st.Loaded != 20 {
		t.Errorf("loaded %d entries, want all 20 intact ones", st.Loaded)
	}
	if st.Corrupt < 2 {
		t.Errorf("corrupt = %d, want >= 2", st.Corrupt)
	}
	if len(warnings) < 2 {
		t.Errorf("want warnings for damaged lines, got %v", warnings)
	}
	for i := 0; i < 20; i++ {
		v, err := warm.Do(Key(fmt.Sprintf("k%d", i)), func() (int, error) {
			t.Errorf("k%d recomputed on a warm cache", i)
			return -1, nil
		})
		if err != nil || v != i {
			t.Errorf("k%d = %d, %v", i, v, err)
		}
	}
}

func TestMemoryOnlyStoreWritesNothing(t *testing.T) {
	s, err := Open[int]("", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Do("k", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintKeyIsHexAndStable(t *testing.T) {
	fp := Fingerprint{Schema: "arrow-run/1", Substrate: "sim/1", Method: "Naive BO",
		WorkloadID: "als/spark2.1/medium", Objective: "time", Seed: 3,
		Kernel: "MATERN 5/2", EIStop: 0.1, DesignKind: "quasi-random", DesignSize: 3}
	k1, k2 := fp.Key(), fp.Key()
	if k1 != k2 {
		t.Error("key not deterministic")
	}
	if len(k1) != 64 || strings.Trim(string(k1), "0123456789abcdef") != "" {
		t.Errorf("key %q is not lowercase sha256 hex", k1)
	}
	fp.Seed = 4
	if fp.Key() == k1 {
		t.Error("seed change must alter the key")
	}
}

func TestStatsReuseRatio(t *testing.T) {
	var s Stats
	if s.ReuseRatio() != 0 {
		t.Error("idle ratio must be 0")
	}
	s = Stats{Hits: 6, DiskHits: 2, Misses: 2, Shared: 0}
	if got := s.ReuseRatio(); got != 0.8 {
		t.Errorf("ratio = %v, want 0.8", got)
	}
}
