// Package sampling provides the initial-design strategies for seeding a
// Bayesian-optimization run (Section III-C of the paper). CherryPick seeds
// with a quasi-random sample of "very distinct" VMs; the paper also studies
// how sensitive BO is to that choice, so both a quasi-random (greedy
// max-min distance, a deterministic stand-in for a Sobol' design on a
// finite catalog) and a uniform random design are provided.
package sampling

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrInvalid reports an unsatisfiable design request.
var ErrInvalid = errors.New("sampling: invalid request")

// Uniform returns k distinct indices drawn uniformly without replacement
// from [0, n).
func Uniform(rng *rand.Rand, n, k int) ([]int, error) {
	if err := check(n, k); err != nil {
		return nil, err
	}
	perm := rng.Perm(n)
	out := append([]int(nil), perm[:k]...)
	return out, nil
}

// MaxMin returns k indices of points that greedily maximize the minimum
// pairwise Euclidean distance, starting from a random seed point. This is
// the "quasi-random method which uniformly selects very distinct VMs" the
// paper attributes to CherryPick: successive picks are as far as possible
// from everything already chosen, covering the instance space.
func MaxMin(rng *rand.Rand, points [][]float64, k int) ([]int, error) {
	n := len(points)
	if err := check(n, k); err != nil {
		return nil, err
	}
	chosen := make([]int, 0, k)
	chosen = append(chosen, rng.Intn(n))

	// minDist[i] tracks each point's distance to its nearest chosen point.
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	for len(chosen) < k {
		last := chosen[len(chosen)-1]
		for i := range points {
			if d := euclidean(points[i], points[last]); d < minDist[i] {
				minDist[i] = d
			}
		}
		best, bestDist := -1, math.Inf(-1)
		for i := range points {
			if contains(chosen, i) {
				continue
			}
			if minDist[i] > bestDist {
				best, bestDist = i, minDist[i]
			}
		}
		chosen = append(chosen, best)
	}
	return chosen, nil
}

// Fixed validates and returns a caller-specified design, used by the
// initial-point-sensitivity experiment (Section III-C) where specific VM
// triplets such as {c4.xlarge, m4.large, r3.2xlarge} seed the search.
func Fixed(n int, indices []int) ([]int, error) {
	if err := check(n, len(indices)); err != nil {
		return nil, err
	}
	seen := make(map[int]bool, len(indices))
	for _, idx := range indices {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("sampling: index %d out of [0,%d): %w", idx, n, ErrInvalid)
		}
		if seen[idx] {
			return nil, fmt.Errorf("sampling: duplicate index %d: %w", idx, ErrInvalid)
		}
		seen[idx] = true
	}
	return append([]int(nil), indices...), nil
}

func check(n, k int) error {
	if n <= 0 {
		return fmt.Errorf("sampling: empty domain: %w", ErrInvalid)
	}
	if k <= 0 || k > n {
		return fmt.Errorf("sampling: need 1 <= k <= %d, got %d: %w", n, k, ErrInvalid)
	}
	return nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func euclidean(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
