package sampling

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func distinct(t *testing.T, idx []int, n int) {
	t.Helper()
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= n {
			t.Fatalf("index %d out of [0,%d)", i, n)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	idx, err := Uniform(rng, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 4 {
		t.Fatalf("got %d indices", len(idx))
	}
	distinct(t, idx, 10)
}

func TestUniformFullDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	idx, err := Uniform(rng, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	distinct(t, idx, 5)
}

func TestUniformInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ n, k int }{{0, 1}, {5, 0}, {5, 6}, {5, -1}} {
		if _, err := Uniform(rng, tc.n, tc.k); !errors.Is(err, ErrInvalid) {
			t.Errorf("Uniform(%d, %d) error = %v, want ErrInvalid", tc.n, tc.k, err)
		}
	}
}

func TestUniformCoversDomainOverTrials(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	counts := make([]int, 6)
	for trial := 0; trial < 600; trial++ {
		idx, err := Uniform(rng, 6, 1)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx[0]]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("index %d never drawn in 600 trials", i)
		}
	}
}

func grid2D() [][]float64 {
	var pts [][]float64
	for x := 0.0; x < 4; x++ {
		for y := 0.0; y < 4; y++ {
			pts = append(pts, []float64{x, y})
		}
	}
	return pts
}

func TestMaxMinDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := grid2D()
	idx, err := MaxMin(rng, pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	distinct(t, idx, len(pts))
}

func TestMaxMinSpreadsPoints(t *testing.T) {
	// On a 4x4 grid, the 3-point max-min design must achieve a minimum
	// pairwise distance no smaller than what random sampling typically
	// gets; concretely, points should not be adjacent (distance 1).
	rng := rand.New(rand.NewSource(6))
	pts := grid2D()
	idx, err := MaxMin(rng, pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	minDist := math.Inf(1)
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			minDist = math.Min(minDist, euclidean(pts[idx[i]], pts[idx[j]]))
		}
	}
	if minDist < 2 {
		t.Errorf("max-min design min pairwise distance %v, want >= 2", minDist)
	}
}

func TestMaxMinSecondPointIsFarthest(t *testing.T) {
	// With points on a line, whatever the random seed point is, the second
	// pick must be one of the two endpoints (the farthest point).
	pts := [][]float64{{0}, {1}, {2}, {3}, {10}}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		idx, err := MaxMin(rng, pts, 2)
		if err != nil {
			t.Fatal(err)
		}
		first, second := idx[0], idx[1]
		// The farthest point from anything in {0..3} is index 4 (x=10);
		// from index 4 it is index 0.
		if first == 4 {
			if second != 0 {
				t.Errorf("seed %d: from x=10, second pick = %d, want 0", seed, second)
			}
		} else if second != 4 {
			t.Errorf("seed %d: second pick = %d, want 4 (x=10)", seed, second)
		}
	}
}

func TestMaxMinFullDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := grid2D()
	idx, err := MaxMin(rng, pts, len(pts))
	if err != nil {
		t.Fatal(err)
	}
	distinct(t, idx, len(pts))
	if len(idx) != len(pts) {
		t.Errorf("full design has %d points", len(idx))
	}
}

func TestMaxMinInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if _, err := MaxMin(rng, nil, 1); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty domain error = %v", err)
	}
	if _, err := MaxMin(rng, grid2D(), 17); !errors.Is(err, ErrInvalid) {
		t.Errorf("k > n error = %v", err)
	}
}

func TestFixed(t *testing.T) {
	idx, err := Fixed(10, []int{3, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 3 || idx[0] != 3 || idx[1] != 1 || idx[2] != 4 {
		t.Errorf("Fixed = %v", idx)
	}
}

func TestFixedCopiesInput(t *testing.T) {
	src := []int{1, 2}
	idx, err := Fixed(5, src)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 4
	if idx[0] != 1 {
		t.Error("Fixed aliases caller slice")
	}
}

func TestFixedInvalid(t *testing.T) {
	if _, err := Fixed(5, []int{5}); !errors.Is(err, ErrInvalid) {
		t.Errorf("out-of-range error = %v", err)
	}
	if _, err := Fixed(5, []int{-1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative error = %v", err)
	}
	if _, err := Fixed(5, []int{1, 1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("duplicate error = %v", err)
	}
	if _, err := Fixed(5, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty error = %v", err)
	}
}
