package sampling

import (
	"fmt"
	"math"
)

// This file implements the Sobol' low-discrepancy sequence the paper cites
// for quasi-random initial designs (reference [25], Sobol' 1998), using
// the standard Gray-code construction with Joe–Kuo direction numbers for
// up to eight dimensions. On a finite VM catalog the continuous Sobol'
// points are mapped to the nearest unused candidates (SobolDesign).

// sobolMaxDims is the dimensionality covered by the direction-number
// table below.
const sobolMaxDims = 8

// sobolBits is the fixed-point resolution of generated coordinates.
const sobolBits = 30

// joeKuoEntry holds one dimension's primitive polynomial degree s, the
// polynomial coefficient a, and the initial direction numbers m.
type joeKuoEntry struct {
	s int
	a uint32
	m []uint32
}

// The first entries of the new-joe-kuo-6 table (dimension 1 is the van
// der Corput sequence and needs no entry).
var joeKuo = []joeKuoEntry{
	{s: 1, a: 0, m: []uint32{1}},
	{s: 2, a: 1, m: []uint32{1, 3}},
	{s: 3, a: 1, m: []uint32{1, 3, 1}},
	{s: 3, a: 2, m: []uint32{1, 1, 1}},
	{s: 4, a: 1, m: []uint32{1, 1, 3, 3}},
	{s: 4, a: 4, m: []uint32{1, 3, 5, 13}},
	{s: 5, a: 2, m: []uint32{1, 1, 5, 5, 17}},
}

// Sobol generates points of the d-dimensional Sobol' sequence.
type Sobol struct {
	dims  int
	v     [][]uint32 // direction numbers per dimension, sobolBits entries
	x     []uint32   // current integer state per dimension
	index uint32     // points generated so far
}

// NewSobol builds a generator for 1 <= dims <= 8.
func NewSobol(dims int) (*Sobol, error) {
	if dims < 1 || dims > sobolMaxDims {
		return nil, fmt.Errorf("sampling: sobol supports 1..%d dims, got %d: %w", sobolMaxDims, dims, ErrInvalid)
	}
	s := &Sobol{
		dims: dims,
		v:    make([][]uint32, dims),
		x:    make([]uint32, dims),
	}
	// Dimension 1: van der Corput — v_k = 1 << (sobolBits - k - 1).
	s.v[0] = make([]uint32, sobolBits)
	for k := 0; k < sobolBits; k++ {
		s.v[0][k] = 1 << (sobolBits - k - 1)
	}
	for dim := 1; dim < dims; dim++ {
		entry := joeKuo[dim-1]
		v := make([]uint32, sobolBits)
		deg := entry.s
		for k := 0; k < deg && k < sobolBits; k++ {
			v[k] = entry.m[k] << (sobolBits - k - 1)
		}
		for k := deg; k < sobolBits; k++ {
			v[k] = v[k-deg] ^ (v[k-deg] >> uint(deg))
			for j := 1; j < deg; j++ {
				if (entry.a>>uint(deg-1-j))&1 == 1 {
					v[k] ^= v[k-j]
				}
			}
		}
		s.v[dim] = v
	}
	return s, nil
}

// Next returns the next point of the sequence, each coordinate in [0, 1).
// The first point is the origin, as in the canonical construction.
func (s *Sobol) Next() []float64 {
	out := make([]float64, s.dims)
	for d := 0; d < s.dims; d++ {
		out[d] = float64(s.x[d]) / float64(uint32(1)<<sobolBits)
	}
	// Gray-code update: flip the direction number of the lowest zero bit
	// of the index.
	c := 0
	idx := s.index
	for idx&1 == 1 {
		idx >>= 1
		c++
	}
	for d := 0; d < s.dims; d++ {
		s.x[d] ^= s.v[d][c]
	}
	s.index++
	return out
}

// SobolDesign picks k distinct candidate indices by generating Sobol'
// points in the candidates' bounding box and snapping each to the nearest
// unused candidate — the finite-catalog version of CherryPick's
// quasi-random initial sample. The skip parameter discards that many
// initial sequence points, decorrelating repeated designs.
func SobolDesign(points [][]float64, k, skip int) ([]int, error) {
	n := len(points)
	if err := check(n, k); err != nil {
		return nil, err
	}
	if skip < 0 {
		return nil, fmt.Errorf("sampling: negative skip %d: %w", skip, ErrInvalid)
	}
	dims := len(points[0])
	if dims == 0 {
		return nil, fmt.Errorf("sampling: zero-dimensional points: %w", ErrInvalid)
	}
	gen, err := NewSobol(min(dims, sobolMaxDims))
	if err != nil {
		return nil, err
	}
	// Discard the all-zero first point (standard practice), then the
	// caller-requested skip.
	gen.Next()
	for i := 0; i < skip; i++ {
		gen.Next()
	}

	// Bounding box for de-normalization.
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	copy(lo, points[0])
	copy(hi, points[0])
	for _, p := range points {
		if len(p) != dims {
			return nil, fmt.Errorf("sampling: ragged points: %w", ErrInvalid)
		}
		for j, v := range p {
			lo[j] = math.Min(lo[j], v)
			hi[j] = math.Max(hi[j], v)
		}
	}

	used := make([]bool, n)
	out := make([]int, 0, k)
	for len(out) < k {
		u := gen.Next()
		target := make([]float64, dims)
		for j := 0; j < dims; j++ {
			uj := 0.5
			if j < len(u) {
				uj = u[j]
			}
			target[j] = lo[j] + uj*(hi[j]-lo[j])
		}
		bestIdx, bestDist := -1, math.Inf(1)
		for i, p := range points {
			if used[i] {
				continue
			}
			if d := euclidean(p, target); d < bestDist {
				bestIdx, bestDist = i, d
			}
		}
		used[bestIdx] = true
		out = append(out, bestIdx)
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
