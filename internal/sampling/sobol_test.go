package sampling

import (
	"errors"
	"math"
	"testing"
)

func TestNewSobolDims(t *testing.T) {
	for dims := 1; dims <= 8; dims++ {
		if _, err := NewSobol(dims); err != nil {
			t.Errorf("dims %d: %v", dims, err)
		}
	}
	for _, dims := range []int{0, -1, 9} {
		if _, err := NewSobol(dims); !errors.Is(err, ErrInvalid) {
			t.Errorf("dims %d: error = %v, want ErrInvalid", dims, err)
		}
	}
}

func TestSobolFirstPointsVanDerCorput(t *testing.T) {
	// Dimension 1 is the van der Corput sequence: 0, 1/2, 1/4, 3/4, ...
	s, err := NewSobol(1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125}
	for i, w := range want {
		got := s.Next()[0]
		if math.Abs(got-w) > 1e-9 {
			t.Errorf("point %d = %v, want %v", i, got, w)
		}
	}
}

func TestSobolRangeAndDistinct(t *testing.T) {
	s, err := NewSobol(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[4]float64]bool{}
	for i := 0; i < 256; i++ {
		p := s.Next()
		if len(p) != 4 {
			t.Fatalf("point dim %d", len(p))
		}
		var key [4]float64
		for j, v := range p {
			if v < 0 || v >= 1 {
				t.Fatalf("coordinate %v out of [0,1)", v)
			}
			key[j] = v
		}
		if seen[key] {
			t.Fatalf("duplicate point at index %d", i)
		}
		seen[key] = true
	}
}

// TestSobolLowDiscrepancy: 256 Sobol points in 2-D should cover every cell
// of a 4x4 grid with close-to-uniform counts (16 each) — far tighter than
// random sampling would guarantee.
func TestSobolLowDiscrepancy(t *testing.T) {
	s, err := NewSobol(2)
	if err != nil {
		t.Fatal(err)
	}
	counts := [4][4]int{}
	for i := 0; i < 256; i++ {
		p := s.Next()
		counts[int(p[0]*4)][int(p[1]*4)]++
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if c := counts[i][j]; c < 12 || c > 20 {
				t.Errorf("cell (%d,%d) has %d points, want ~16", i, j, c)
			}
		}
	}
}

func TestSobolDesignDistinctAndComplete(t *testing.T) {
	pts := grid2D()
	idx, err := SobolDesign(pts, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	distinct(t, idx, len(pts))
	if len(idx) != 5 {
		t.Fatalf("%d indices", len(idx))
	}
}

func TestSobolDesignFullCatalog(t *testing.T) {
	pts := grid2D()
	idx, err := SobolDesign(pts, len(pts), 0)
	if err != nil {
		t.Fatal(err)
	}
	distinct(t, idx, len(pts))
}

func TestSobolDesignSkipChangesDesign(t *testing.T) {
	pts := grid2D()
	a, err := SobolDesign(pts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SobolDesign(pts, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("different skips produced identical designs")
	}
}

func TestSobolDesignDeterministic(t *testing.T) {
	pts := grid2D()
	a, _ := SobolDesign(pts, 4, 3)
	b, _ := SobolDesign(pts, 4, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SobolDesign not deterministic")
		}
	}
}

func TestSobolDesignInvalid(t *testing.T) {
	pts := grid2D()
	if _, err := SobolDesign(nil, 1, 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty error = %v", err)
	}
	if _, err := SobolDesign(pts, 0, 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := SobolDesign(pts, 3, -1); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative skip error = %v", err)
	}
	if _, err := SobolDesign([][]float64{{}}, 1, 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero-dim error = %v", err)
	}
}

func TestSobolDesignCoversQuadrants(t *testing.T) {
	// Sobol' fills space progressively from the center outward, so eight
	// picks on a 4x4 grid must land in all four quadrants.
	pts := grid2D()
	idx, err := SobolDesign(pts, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	quadrants := map[[2]bool]bool{}
	for _, i := range idx {
		quadrants[[2]bool{pts[i][0] >= 2, pts[i][1] >= 2}] = true
	}
	if len(quadrants) < 4 {
		t.Errorf("8 Sobol picks cover only %d of 4 quadrants", len(quadrants))
	}
}
