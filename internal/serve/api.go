// Package serve is the optimizer-as-a-service layer: a long-running
// HTTP server exposing the four optimizers as interactive advisor
// sessions. A client POSTs /v1/sessions with a method configuration and
// gets a session id; it then loops GET next -> measure -> POST observe
// until the session's own stop rule fires, and GET result returns the
// recommendation. The server plans; it never measures — the control
// flow is the public arrow.Advisor (a step-wise inversion of the batch
// search loop), so a session with the same seed and observations yields
// the same recommendation and deterministic trace as an in-process
// Search.
//
// The server is production-shaped: a bounded in-memory session store
// with TTL eviction and a max-session cap, a per-session mutex, a
// server-wide planning semaphore, request-scoped deadlines, graceful
// shutdown that flushes every in-flight session to a salvaged Partial
// result, /healthz and /metricsz, and JSONL audit logging through
// internal/telemetry.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	arrow "repro"
	"repro/internal/telemetry"
)

// Wire limits. Requests beyond them are rejected before any allocation
// proportional to the excess, so a hostile client cannot balloon the
// server's memory through one decode.
const (
	// MaxRequestBytes bounds any request body.
	MaxRequestBytes = 1 << 20
	// MaxCandidates bounds a custom catalog.
	MaxCandidates = 4096
	// MaxFeatureDims bounds one candidate's feature vector.
	MaxFeatureDims = 256
	// MaxBatchK bounds the k of one /nextbatch request at the wire; the
	// server's MaxBatch policy (Config.MaxBatch) clamps below it.
	MaxBatchK = 64
)

// SessionRequest is the body of POST /v1/sessions.
type SessionRequest struct {
	// Method selects the optimizer: "naive-bo", "augmented-bo",
	// "hybrid-bo" or "random-search" (short forms "naive", "augmented",
	// "hybrid", "random" are accepted).
	Method string `json:"method"`
	// Objective selects what to minimize: "time", "cost" (default) or
	// "product".
	Objective string `json:"objective,omitempty"`
	// Seed makes the session reproducible.
	Seed int64 `json:"seed"`
	// MaxMeasurements caps the session cost (0 = whole catalog).
	MaxMeasurements int `json:"max_measurements,omitempty"`
	// NumInitial sets the initial design size (0 = default 3).
	NumInitial int `json:"num_initial,omitempty"`
	// DeltaThreshold tunes Augmented BO's stopping rule (0 = default).
	DeltaThreshold float64 `json:"delta_threshold,omitempty"`
	// EIStopFraction tunes Naive BO's stopping rule (0 = default).
	EIStopFraction float64 `json:"ei_stop_fraction,omitempty"`
	// SwitchAfter sets Hybrid BO's handover point (0 = default).
	SwitchAfter int `json:"switch_after,omitempty"`
	// Kernel selects Naive BO's GP kernel: "rbf", "matern12",
	// "matern32", "matern52" (default).
	Kernel string `json:"kernel,omitempty"`
	// MaxTimeSLO constrains the search to VMs within this execution-time
	// SLO, in seconds (0 = unconstrained).
	MaxTimeSLO float64 `json:"max_time_slo,omitempty"`
	// Trace attaches a per-session trace recorder; the result response
	// then carries the session's wall-stripped search trace.
	Trace bool `json:"trace,omitempty"`
	// Candidates overrides the catalog to advise over. Empty means the
	// built-in 18-type AWS catalog.
	Candidates []arrow.Candidate `json:"candidates,omitempty"`
}

// ObserveRequest is the body of POST /v1/sessions/{id}/observe.
type ObserveRequest struct {
	// Index must match the pending suggestion.
	Index int `json:"index"`
	// TimeSec / CostUSD / Metrics are the measurement (ignored when
	// Failed is set). Metrics is optional for methods that do not use
	// low-level metrics.
	TimeSec float64   `json:"time_sec,omitempty"`
	CostUSD float64   `json:"cost_usd,omitempty"`
	Metrics []float64 `json:"metrics,omitempty"`
	// Failed reports that the measurement itself failed; the session
	// quarantines the candidate and plans around it.
	Failed bool `json:"failed,omitempty"`
	// Reason documents the failure.
	Reason string `json:"reason,omitempty"`
}

// SessionInfo is the response to POST /v1/sessions (and the entries of
// GET /v1/sessions).
type SessionInfo struct {
	ID            string `json:"id"`
	Method        string `json:"method"`
	Objective     string `json:"objective"`
	Seed          int64  `json:"seed"`
	NumCandidates int    `json:"num_candidates"`
	Done          bool   `json:"done,omitempty"`
}

// ObserveResponse acknowledges an observation. By default the server
// acknowledges as soon as the observation is journaled and plans the
// follow-up suggestion speculatively in the background, so Next is
// omitted and the client's next GET next is answered from the already-
// planned head. With speculation disabled (Config.DisableSpeculation)
// the server drives the session to its next suggestion before answering
// and Next carries it, the pre-PR8 synchronous shape.
type ObserveResponse struct {
	// Step counts the observations accepted so far.
	Step int `json:"step"`
	// Next is the follow-up suggestion (Done when the stop rule fired).
	// Omitted when the server plans speculatively; fetch it with GET
	// next.
	Next *arrow.Suggestion `json:"next,omitempty"`
}

// NextBatchRequest is the body of POST /v1/sessions/{id}/nextbatch.
type NextBatchRequest struct {
	// K is the number of concurrent suggestions wanted. The server may
	// return fewer (budget or stopping rule near, or the method cannot
	// plan ahead at this point), never more.
	K int `json:"k"`
}

// NextBatchResponse carries the batch of concurrent suggestions, in
// issue order (the head — what GET next would return — first). Each may
// be observed in any order; Seq deduplicates retried batches.
type NextBatchResponse struct {
	Suggestions []arrow.Suggestion `json:"suggestions"`
}

// ResultResponse is the response to GET /v1/sessions/{id}/result and
// DELETE /v1/sessions/{id}.
type ResultResponse struct {
	ID   string `json:"id"`
	Done bool   `json:"done"`
	// Result is the recommendation; Result.Partial marks a salvaged
	// session (aborted, evicted or flushed by shutdown).
	Result *arrow.Result `json:"result,omitempty"`
	// SearchError carries the abort cause of a Partial result.
	SearchError string `json:"search_error,omitempty"`
	// Trace is the session's wall-stripped search trace, present when
	// the session was created with "trace": true.
	Trace []telemetry.Event `json:"trace,omitempty"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// DecodeSessionRequest parses and validates a POST /v1/sessions body
// strictly: one JSON object, known fields only, within the wire limits,
// finite feature values. It does not validate cross-field optimizer
// configuration (BuildOptimizer does, with the same error surface as the
// public API).
func DecodeSessionRequest(data []byte) (*SessionRequest, error) {
	if len(data) > MaxRequestBytes {
		return nil, fmt.Errorf("serve: request body %d bytes exceeds %d", len(data), MaxRequestBytes)
	}
	var req SessionRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if len(req.Candidates) > MaxCandidates {
		return nil, fmt.Errorf("serve: %d candidates exceed the %d cap", len(req.Candidates), MaxCandidates)
	}
	for i, c := range req.Candidates {
		if len(c.Features) == 0 {
			return nil, fmt.Errorf("serve: candidate %d has no features", i)
		}
		if len(c.Features) > MaxFeatureDims {
			return nil, fmt.Errorf("serve: candidate %d has %d features, cap %d", i, len(c.Features), MaxFeatureDims)
		}
		for j, v := range c.Features {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("serve: candidate %d feature %d is not finite", i, j)
			}
		}
	}
	if math.IsNaN(req.MaxTimeSLO) || math.IsInf(req.MaxTimeSLO, 0) || req.MaxTimeSLO < 0 {
		return nil, fmt.Errorf("serve: max_time_slo %v invalid", req.MaxTimeSLO)
	}
	return &req, nil
}

// DecodeObserveRequest parses a POST observe body strictly. Outcome
// values are not range-checked here: the session's validation gate
// quarantines poisonous outcomes exactly as a batch search would, which
// is behavior, not a wire error.
func DecodeObserveRequest(data []byte) (*ObserveRequest, error) {
	if len(data) > MaxRequestBytes {
		return nil, fmt.Errorf("serve: request body %d bytes exceeds %d", len(data), MaxRequestBytes)
	}
	var req ObserveRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if req.Index < 0 {
		return nil, fmt.Errorf("serve: negative candidate index %d", req.Index)
	}
	if len(req.Metrics) > MaxFeatureDims {
		return nil, fmt.Errorf("serve: %d metrics exceed the %d cap", len(req.Metrics), MaxFeatureDims)
	}
	return &req, nil
}

// DecodeNextBatchRequest parses a POST nextbatch body strictly and
// bounds k to [1, MaxBatchK] so a hostile k cannot balloon planning
// work through one request.
func DecodeNextBatchRequest(data []byte) (*NextBatchRequest, error) {
	if len(data) > MaxRequestBytes {
		return nil, fmt.Errorf("serve: request body %d bytes exceeds %d", len(data), MaxRequestBytes)
	}
	var req NextBatchRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if req.K < 1 {
		return nil, fmt.Errorf("serve: batch size %d, want at least 1", req.K)
	}
	if req.K > MaxBatchK {
		return nil, fmt.Errorf("serve: batch size %d exceeds the %d cap", req.K, MaxBatchK)
	}
	return &req, nil
}

// decodeStrict unmarshals one JSON object with unknown fields rejected
// and no trailing garbage tolerated.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: undecodable request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("serve: trailing data after request object")
	}
	return nil
}

// BuildOptimizer translates a decoded session request into a configured
// optimizer and its candidate catalog, reusing the public option
// validation so the HTTP surface rejects exactly what the API would.
// extra options (the server's tracer wiring) are applied last.
func BuildOptimizer(req *SessionRequest, extra ...arrow.Option) (*arrow.Optimizer, []arrow.Candidate, error) {
	method, err := parseMethod(req.Method)
	if err != nil {
		return nil, nil, err
	}
	opts := []arrow.Option{arrow.WithMethod(method), arrow.WithSeed(req.Seed)}
	if req.Objective != "" {
		obj, err := parseObjective(req.Objective)
		if err != nil {
			return nil, nil, err
		}
		opts = append(opts, arrow.WithObjective(obj))
	}
	if req.Kernel != "" {
		k, err := parseKernel(req.Kernel)
		if err != nil {
			return nil, nil, err
		}
		opts = append(opts, arrow.WithKernel(k))
	}
	if req.MaxMeasurements != 0 {
		opts = append(opts, arrow.WithMaxMeasurements(req.MaxMeasurements))
	}
	if req.NumInitial != 0 {
		opts = append(opts, arrow.WithNumInitial(req.NumInitial))
	}
	if req.DeltaThreshold != 0 {
		opts = append(opts, arrow.WithDeltaThreshold(req.DeltaThreshold))
	}
	if req.EIStopFraction != 0 {
		opts = append(opts, arrow.WithEIStopFraction(req.EIStopFraction))
	}
	if req.SwitchAfter != 0 {
		opts = append(opts, arrow.WithSwitchAfter(req.SwitchAfter))
	}
	if req.MaxTimeSLO != 0 {
		opts = append(opts, arrow.WithMaxTimeSLO(req.MaxTimeSLO))
	}
	opts = append(opts, extra...)
	opt, err := arrow.New(opts...)
	if err != nil {
		return nil, nil, err
	}
	candidates := req.Candidates
	if len(candidates) == 0 {
		candidates = arrow.CatalogCandidates()
	}
	return opt, candidates, nil
}

// parseMethod maps wire names onto methods.
func parseMethod(name string) (arrow.Method, error) {
	switch strings.ToLower(name) {
	case "naive-bo", "naive":
		return arrow.MethodNaiveBO, nil
	case "augmented-bo", "augmented", "arrow":
		return arrow.MethodAugmentedBO, nil
	case "hybrid-bo", "hybrid":
		return arrow.MethodHybridBO, nil
	case "random-search", "random":
		return arrow.MethodRandomSearch, nil
	default:
		return 0, fmt.Errorf("serve: unknown method %q", name)
	}
}

// parseObjective maps wire names onto objectives.
func parseObjective(name string) (arrow.Objective, error) {
	switch strings.ToLower(name) {
	case "time":
		return arrow.MinimizeTime, nil
	case "cost":
		return arrow.MinimizeCost, nil
	case "product", "time-cost-product", "timecost":
		return arrow.MinimizeTimeCostProduct, nil
	default:
		return 0, fmt.Errorf("serve: unknown objective %q", name)
	}
}

// parseKernel maps wire names onto GP kernels.
func parseKernel(name string) (arrow.Kernel, error) {
	switch strings.ToLower(name) {
	case "rbf":
		return arrow.KernelRBF, nil
	case "matern12":
		return arrow.KernelMatern12, nil
	case "matern32":
		return arrow.KernelMatern32, nil
	case "matern52":
		return arrow.KernelMatern52, nil
	default:
		return 0, fmt.Errorf("serve: unknown kernel %q", name)
	}
}
