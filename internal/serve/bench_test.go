package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	arrow "repro"
)

// benchDo drives one request straight through ServeHTTP (no network), so
// the benchmark measures the handler path: body decode, session work,
// response encode.
func benchDo(b *testing.B, s *Server, method, path string, body, out any) int {
	b.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			b.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			b.Fatalf("%s %s: decoding %d response: %v", method, path, rec.Code, err)
		}
	}
	return rec.Code
}

// BenchmarkServeSession measures one full advisor session over the HTTP
// handlers — create, then the observe/next loop a measuring client
// drives — against the simulated target. B/op and allocs/op cover the
// whole serving path: request decode, planning, response encode.
func BenchmarkServeSession(b *testing.B) {
	target, err := arrow.NewSimulatedTarget("als/spark2.1/medium", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh server per session: ended sessions stay in the store
		// until TTL eviction, so one shared server would hit the session
		// cap on long runs.
		s := New(Config{})
		var info SessionInfo
		if st := benchDo(b, s, "POST", "/v1/sessions",
			SessionRequest{Method: "augmented-bo", Seed: int64(42 + i)}, &info); st != http.StatusCreated {
			b.Fatalf("create: status %d", st)
		}
		var sug arrow.Suggestion
		if st := benchDo(b, s, "GET", "/v1/sessions/"+info.ID+"/next", nil, &sug); st != http.StatusOK {
			b.Fatalf("next: status %d", st)
		}
		for !sug.Done {
			out, merr := target.Measure(sug.Index)
			var req ObserveRequest
			if merr != nil {
				req = ObserveRequest{Index: sug.Index, Failed: true, Reason: merr.Error()}
			} else {
				req = ObserveRequest{Index: sug.Index, TimeSec: out.TimeSec, CostUSD: out.CostUSD, Metrics: out.Metrics}
			}
			var resp ObserveResponse
			if st := benchDo(b, s, "POST", "/v1/sessions/"+info.ID+"/observe", req, &resp); st != http.StatusOK {
				b.Fatalf("observe: status %d", st)
			}
			sug = resp.Next
		}
		if st := benchDo(b, s, "DELETE", "/v1/sessions/"+info.ID, nil, nil); st != http.StatusOK {
			b.Fatalf("delete: status %d", st)
		}
		s.Shutdown(context.Background())
	}
}

// BenchmarkServeJSONPlumbing isolates the wire layer: an observe round
// trip against an already-finished session, whose handler work is a
// decode, a state check and an encode — no planning. This is the
// pooled-buffer fast path.
func BenchmarkServeJSONPlumbing(b *testing.B) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	var info SessionInfo
	if st := benchDo(b, s, "POST", "/v1/sessions",
		SessionRequest{Method: "random-search", Seed: 7, MaxMeasurements: 1}, &info); st != http.StatusCreated {
		b.Fatalf("create: status %d", st)
	}
	var sug arrow.Suggestion
	if st := benchDo(b, s, "GET", "/v1/sessions/"+info.ID+"/next", nil, &sug); st != http.StatusOK {
		b.Fatalf("next: status %d", st)
	}
	body, err := json.Marshal(ObserveRequest{Index: sug.Index, TimeSec: 1, CostUSD: 1})
	if err != nil {
		b.Fatal(err)
	}
	path := "/v1/sessions/" + info.ID + "/observe"
	rd := bytes.NewReader(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		req := httptest.NewRequest("POST", path, rd)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusConflict, http.StatusGone:
		default:
			b.Fatalf("observe: status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
