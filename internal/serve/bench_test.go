package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	arrow "repro"
)

// benchDo drives one request straight through ServeHTTP (no network), so
// the benchmark measures the handler path: body decode, session work,
// response encode.
func benchDo(b *testing.B, s *Server, method, path string, body, out any) int {
	b.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			b.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			b.Fatalf("%s %s: decoding %d response: %v", method, path, rec.Code, err)
		}
	}
	return rec.Code
}

// BenchmarkServeSession measures one full advisor session over the HTTP
// handlers — create, then the observe/next loop a measuring client
// drives — against the simulated target. B/op and allocs/op cover the
// whole serving path: request decode, planning, response encode.
func BenchmarkServeSession(b *testing.B) {
	target, err := arrow.NewSimulatedTarget("als/spark2.1/medium", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh server per session: ended sessions stay in the store
		// until TTL eviction, so one shared server would hit the session
		// cap on long runs. Speculation is disabled so the bench keeps
		// measuring the synchronous observe→plan→next loop, comparable
		// across releases; BenchmarkServeNextPipelined measures the
		// speculative fast path.
		s := New(Config{DisableSpeculation: true})
		var info SessionInfo
		if st := benchDo(b, s, "POST", "/v1/sessions",
			SessionRequest{Method: "augmented-bo", Seed: int64(42 + i)}, &info); st != http.StatusCreated {
			b.Fatalf("create: status %d", st)
		}
		var sug arrow.Suggestion
		if st := benchDo(b, s, "GET", "/v1/sessions/"+info.ID+"/next", nil, &sug); st != http.StatusOK {
			b.Fatalf("next: status %d", st)
		}
		for !sug.Done {
			out, merr := target.Measure(sug.Index)
			var req ObserveRequest
			if merr != nil {
				req = ObserveRequest{Index: sug.Index, Failed: true, Reason: merr.Error()}
			} else {
				req = ObserveRequest{Index: sug.Index, TimeSec: out.TimeSec, CostUSD: out.CostUSD, Metrics: out.Metrics}
			}
			var resp ObserveResponse
			if st := benchDo(b, s, "POST", "/v1/sessions/"+info.ID+"/observe", req, &resp); st != http.StatusOK {
				b.Fatalf("observe: status %d", st)
			}
			sug = *resp.Next
		}
		if st := benchDo(b, s, "DELETE", "/v1/sessions/"+info.ID, nil, nil); st != http.StatusOK {
			b.Fatalf("delete: status %d", st)
		}
		s.Shutdown(context.Background())
	}
}

// BenchmarkServeNextPipelined measures the speculative fast path: the
// same advisor session as BenchmarkServeSession, but with speculation on
// (the default) and a simulated measurement gap between the observe ack
// and the following GET next — while the "client" measures, the server
// plans ahead, so the GET is a cache hit. The p50-ns / p99-ns extra
// metrics time every pipelined GET next; compare against
// BenchmarkAdvisorNext's p99 (the raw planning latency an unpipelined
// client pays on the wire). Two nexts per session are reported apart:
// the first (cold-p50-ns — nothing precedes it for speculation to hide,
// it always pays the session-open plan) and the Done one (end-p50-ns —
// session teardown, not suggestion serving).
func BenchmarkServeNextPipelined(b *testing.B) {
	// A real measurement takes milliseconds to minutes; 2ms is enough of
	// a stand-in for the speculative planner (sub-millisecond per step,
	// per BenchmarkAdvisorNext) to finish before the client comes back.
	const measurementGap = 2 * time.Millisecond
	target, err := arrow.NewSimulatedTarget("als/spark2.1/medium", 1)
	if err != nil {
		b.Fatal(err)
	}
	var lat, cold, end []time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(Config{})
		var info SessionInfo
		if st := benchDo(b, s, "POST", "/v1/sessions",
			SessionRequest{Method: "augmented-bo", Seed: int64(42 + i)}, &info); st != http.StatusCreated {
			b.Fatalf("create: status %d", st)
		}
		next := "/v1/sessions/" + info.ID + "/next"
		// timedNext measures only ServeHTTP — the server's latency — with
		// request construction and response decode outside the window,
		// like a client timing the wire.
		timedNext := func() (arrow.Suggestion, time.Duration) {
			req := httptest.NewRequest("GET", next, bytes.NewReader(nil))
			rec := httptest.NewRecorder()
			t0 := time.Now()
			s.ServeHTTP(rec, req)
			d := time.Since(t0)
			if rec.Code != http.StatusOK {
				b.Fatalf("next: status %d", rec.Code)
			}
			var sug arrow.Suggestion
			if err := json.Unmarshal(rec.Body.Bytes(), &sug); err != nil {
				b.Fatalf("next: decoding response: %v", err)
			}
			return sug, d
		}
		sug, d := timedNext()
		cold = append(cold, d)
		for !sug.Done {
			out, merr := target.Measure(sug.Index)
			var req ObserveRequest
			if merr != nil {
				req = ObserveRequest{Index: sug.Index, Failed: true, Reason: merr.Error()}
			} else {
				req = ObserveRequest{Index: sug.Index, TimeSec: out.TimeSec, CostUSD: out.CostUSD, Metrics: out.Metrics}
			}
			var resp ObserveResponse
			if st := benchDo(b, s, "POST", "/v1/sessions/"+info.ID+"/observe", req, &resp); st != http.StatusOK {
				b.Fatalf("observe: status %d", st)
			}
			time.Sleep(measurementGap)
			sug, d = timedNext()
			if sug.Done {
				// The Done next is session teardown — it finalizes the
				// result and ends the session, work speculation must not
				// do ahead of a client-visible request — not suggestion
				// serving; it gets its own metric.
				end = append(end, d)
			} else {
				lat = append(lat, d)
			}
		}
		if st := benchDo(b, s, "DELETE", "/v1/sessions/"+info.ID, nil, nil); st != http.StatusOK {
			b.Fatalf("delete: status %d", st)
		}
		s.Shutdown(context.Background())
	}
	b.StopTimer()
	quantile := func(sample []time.Duration, q float64) float64 {
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
		idx := int(q * float64(len(sample)-1))
		return float64(sample[idx].Nanoseconds())
	}
	b.ReportMetric(quantile(lat, 0.50), "p50-ns")
	b.ReportMetric(quantile(lat, 0.99), "p99-ns")
	b.ReportMetric(quantile(cold, 0.50), "cold-p50-ns")
	b.ReportMetric(quantile(end, 0.50), "end-p50-ns")
	b.ReportMetric(float64(len(lat)+len(cold)+len(end))/float64(b.N), "nexts/session")
}

// BenchmarkServeJSONPlumbing isolates the wire layer: an observe round
// trip against an already-finished session, whose handler work is a
// decode, a state check and an encode — no planning. This is the
// pooled-buffer fast path.
func BenchmarkServeJSONPlumbing(b *testing.B) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	var info SessionInfo
	if st := benchDo(b, s, "POST", "/v1/sessions",
		SessionRequest{Method: "random-search", Seed: 7, MaxMeasurements: 1}, &info); st != http.StatusCreated {
		b.Fatalf("create: status %d", st)
	}
	var sug arrow.Suggestion
	if st := benchDo(b, s, "GET", "/v1/sessions/"+info.ID+"/next", nil, &sug); st != http.StatusOK {
		b.Fatalf("next: status %d", st)
	}
	body, err := json.Marshal(ObserveRequest{Index: sug.Index, TimeSec: 1, CostUSD: 1})
	if err != nil {
		b.Fatal(err)
	}
	path := "/v1/sessions/" + info.ID + "/observe"
	rd := bytes.NewReader(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		req := httptest.NewRequest("POST", path, rd)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusConflict, http.StatusGone:
		default:
			b.Fatalf("observe: status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
