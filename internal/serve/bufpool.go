package serve

import (
	"bytes"
	"net/http"
	"sync"
)

// maxPooledBuf caps the capacity of buffers returned to the pool, so one
// near-MaxRequestBytes request does not pin a megabyte-sized allocation
// for the life of the process.
const maxPooledBuf = 1 << 16

// bufPool recycles request-body and response-encode buffers across
// requests. Decoding from a recycled buffer is safe because
// encoding/json copies every string and slice it unmarshals.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	return bufPool.Get().(*bytes.Buffer)
}

func putBuf(buf *bytes.Buffer) {
	if buf.Cap() > maxPooledBuf {
		return
	}
	buf.Reset()
	bufPool.Put(buf)
}

// readBody drains the request body into a pooled buffer. The caller
// must putBuf the buffer once the decoded request no longer needs it.
func readBody(r *http.Request) (*bytes.Buffer, error) {
	buf := getBuf()
	if _, err := buf.ReadFrom(r.Body); err != nil {
		putBuf(buf)
		return nil, err
	}
	return buf, nil
}
