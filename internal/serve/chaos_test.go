package serve

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	arrow "repro"
)

// finiteOutcome reports whether every value in out survives JSON.
func finiteOutcome(out arrow.Outcome) bool {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	if !finite(out.TimeSec) || !finite(out.CostUSD) {
		return false
	}
	for _, m := range out.Metrics {
		if !finite(m) {
			return false
		}
	}
	return true
}

// TestServeChaos is the serving layer's survival test: 64 concurrent
// sessions whose measuring clients see injected faults (transient
// failures reported as failed observations, corrupted outcomes passed
// through to the server's validation gate), with a graceful shutdown
// firing while half of them are mid-search. The server must not
// deadlock, every finished session must return a complete result, and
// every in-flight session must be flushed to a salvaged Partial that is
// still readable over HTTP. Run under -race, this also shakes the
// stepper's channel choreography and the store's locking.
func TestServeChaos(t *testing.T) {
	const sessions = 64

	s := New(Config{MaxSessions: sessions})
	hs := httptest.NewServer(s)
	defer hs.Close()
	defer s.Shutdown(context.Background())

	methods := []string{"naive-bo", "augmented-bo", "hybrid-bo", "random-search"}
	var (
		wg          sync.WaitGroup
		finished    atomic.Int64 // sessions whose client saw Done (naturally or via the abort)
		flushed     atomic.Int64 // sessions whose client walked away or got cut off
		shutdownNow = make(chan struct{})
	)
	ids := make([]string, sessions)

	// Create every session up front so the later shutdown races only
	// the next/observe stepping, never session creation.
	setup := newClient(t, hs)
	for i := range sessions {
		ids[i] = setup.create(SessionRequest{
			Method:          methods[i%len(methods)],
			Seed:            int64(i),
			MaxMeasurements: 6,
		}).ID
	}

	for i := range sessions {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := newClient(t, hs)

			base, err := arrow.NewSimulatedTarget("als/spark2.1/medium", int64(i%5))
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			target := arrow.NewChaosTarget(base, arrow.ChaosConfig{
				Seed:              int64(i),
				TransientRate:     0.2,
				CorruptRate:       0.15,
				PermanentFailures: []int{i % base.NumCandidates()},
			})
			info := SessionInfo{ID: ids[i]}

			for {
				select {
				case <-shutdownNow:
					// Walk away mid-search; the shutdown must salvage us.
					flushed.Add(1)
					return
				default:
				}
				var sug arrow.Suggestion
				switch st := c.do("GET", "/v1/sessions/"+info.ID+"/next", nil, &sug); st {
				case http.StatusOK:
				case http.StatusGatewayTimeout:
					continue // planning queue contention; retry
				default:
					t.Errorf("session %s: next status %d", info.ID, st)
					return
				}
				if sug.Done {
					finished.Add(1)
					return
				}
				out, merr := target.Measure(sug.Index)
				var req ObserveRequest
				switch {
				case merr != nil:
					req = ObserveRequest{Index: sug.Index, Failed: true, Reason: merr.Error()}
				case !finiteOutcome(out):
					// JSON cannot carry NaN/Inf, so a real client reports
					// a non-finite measurement as a failure; finite
					// corruptions (negative time/cost) go through and the
					// server's validation gate quarantines them.
					req = ObserveRequest{Index: sug.Index, Failed: true, Reason: "non-finite measurement"}
				default:
					req = ObserveRequest{Index: sug.Index, TimeSec: out.TimeSec, CostUSD: out.CostUSD, Metrics: out.Metrics}
				}
				var oresp ObserveResponse
				st := c.do("POST", "/v1/sessions/"+info.ID+"/observe", req, &oresp)
				if st == http.StatusBadRequest && !req.Failed {
					// A malformed payload (e.g. a truncated metric vector)
					// is rejected without consuming the suggestion; the
					// client re-reports it as a failed measurement.
					req = ObserveRequest{Index: sug.Index, Failed: true, Reason: "malformed measurement payload"}
					oresp = ObserveResponse{}
					st = c.do("POST", "/v1/sessions/"+info.ID+"/observe", req, &oresp)
				}
				switch st {
				case http.StatusOK:
					// Under speculation (the default) Next is omitted and
					// the loop's GET next picks up the precomputed plan.
					if oresp.Next != nil && oresp.Next.Done {
						finished.Add(1)
						return
					}
				case http.StatusConflict:
					// The shutdown aborted the session between our next
					// and observe; the salvage owns it now.
					flushed.Add(1)
					return
				default:
					t.Errorf("session %s: observe status %d", info.ID, st)
					return
				}
			}
		}()
	}

	// Let roughly half the sessions finish, then pull the plug on the
	// rest. The sleep only shapes the finished/flushed mix; correctness
	// does not depend on it.
	time.Sleep(1500 * time.Millisecond)
	close(shutdownNow)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	t.Logf("chaos: %d finished, %d flushed", finished.Load(), flushed.Load())
	if finished.Load()+flushed.Load() != sessions {
		t.Fatalf("%d finished + %d flushed != %d sessions", finished.Load(), flushed.Load(), sessions)
	}

	// Every session — finished or flushed — must still answer over HTTP
	// with a coherent result: complete for finished sessions, salvaged
	// Partial for flushed ones. Nothing may hang or 500.
	c := newClient(t, hs)
	complete, partial := 0, 0
	for _, id := range ids {
		if id == "" {
			t.Fatal("a session never got an id")
		}
		var res ResultResponse
		if st := c.do("GET", "/v1/sessions/"+id+"/result", nil, &res); st != http.StatusOK {
			t.Errorf("session %s: result status %d after shutdown", id, st)
			continue
		}
		if res.Result == nil {
			t.Errorf("session %s: no result after shutdown", id)
			continue
		}
		if res.Result.Partial {
			partial++
		} else {
			complete++
		}
	}
	if complete+partial != sessions {
		t.Errorf("%d complete + %d partial != %d", complete, partial, sessions)
	}
	// A client that walked away mid-search left a session the shutdown
	// had to salvage, so the Partial count can never undercount them.
	// (A client that saw Done may still hold a Partial session: next
	// reports Done for aborted sessions too.)
	if int64(partial) < flushed.Load() {
		t.Errorf("%d partial results but %d sessions were flushed mid-search", partial, flushed.Load())
	}
	t.Logf("chaos: %d complete, %d partial results", complete, partial)
}
